// Package parmm is the public API of the reproduction of "Brief
// Announcement: Tight Memory-Independent Parallel Matrix Multiplication
// Communication Lower Bounds" (Al Daas, Ballard, Grigori, Kumar, Rouse,
// SPAA 2022).
//
// It exposes three layers:
//
//   - The lower-bound calculator: Theorem 3's memory-independent bound with
//     tight constants 1/2/3 across the three aspect-ratio regimes, the
//     Lemma 2 optimization machinery behind it, Corollary 4 for square
//     matrices, the prior-work constants of Table 1, and the §6.2
//     memory-dependent interplay.
//   - The simulated distributed machine (§3.1's α-β-γ model) with
//     bandwidth-optimal collectives, and parallel multiplication algorithms
//     on it: the paper's Algorithm 1 plus 1D, SUMMA, Cannon, 2.5D, and
//     All-to-All-3D baselines, all measured in exact word counts.
//   - The experiment suite regenerating every table and figure of the
//     paper.
//
// Quick start:
//
//	d := parmm.NewDims(9600, 2400, 600)
//	words := parmm.LowerBound(d, 512)          // Theorem 3
//	g := parmm.OptimalGrid(d, 512)             // 32x8x2 (§5.2 / Figure 2)
//	res, err := parmm.Alg1(a, b, 512, parmm.Opts{
//	    Config: parmm.BandwidthOnly(), Grid: g,
//	})
//	// res.CommCost() == words, exactly.
package parmm

import (
	"context"

	"repro/internal/algs"
	"repro/internal/caps"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/extension"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/model"
	"repro/internal/topo"
)

// Dims is the shape of a multiplication: an N1×N2 matrix times an N2×N3
// matrix.
type Dims = core.Dims

// NewDims constructs a Dims.
func NewDims(n1, n2, n3 int) Dims { return core.NewDims(n1, n2, n3) }

// SquareDims returns the shape of an n×n by n×n multiplication.
func SquareDims(n int) Dims { return core.Square(n) }

// Case identifies the Theorem 3 regime (1 = 1D, 2 = 2D, 3 = 3D).
type Case = core.Case

// The three regimes of Theorem 3.
const (
	Case1 = core.Case1
	Case2 = core.Case2
	Case3 = core.Case3
)

// CaseOf returns the regime of (d, p): Case1 for P ≤ m/n, Case2 up to
// mn/k², Case3 beyond.
func CaseOf(d Dims, p int) Case { return core.CaseOf(d, p) }

// Thresholds returns the regime boundaries (m/n, mn/k²).
func Thresholds(d Dims) (float64, float64) { return core.Thresholds(d) }

// LowerBound returns Theorem 3's memory-independent communication lower
// bound in words per processor: D − (mn+mk+nk)/P.
func LowerBound(d Dims, p int) float64 { return core.LowerBound(d, p) }

// DataFootprint returns the paper's D: the minimum total per-processor data
// footprint (the optimum of Lemma 2).
func DataFootprint(d Dims, p int) float64 { return core.D(d, p) }

// LeadingTerm returns the leading term of the bound in the applicable case.
func LeadingTerm(d Dims, p int) float64 { return core.LeadingTerm(d, p) }

// Corollary4 returns the square-matrix bound 3n²/P^{2/3} − 3n²/P.
func Corollary4(n, p int) float64 { return core.Corollary4(n, p) }

// MemoryDependentLowerBound returns the leading term 2mnk/(P·sqrt(M)) of
// the classical memory-dependent bound for per-processor memory M.
func MemoryDependentLowerBound(d Dims, p int, mem float64) float64 {
	return core.MemoryDependentLeading(d, p, mem)
}

// StrongScalingLimit returns the §6.2 crossover P = (8/27)·mnk/M^{3/2}
// beyond which the memory-independent bound binds and perfect strong
// scaling must end.
func StrongScalingLimit(d Dims, mem float64) float64 {
	return core.PerfectStrongScalingLimit(d, mem)
}

// Grid is a p1×p2×p3 logical processor grid.
type Grid = grid.Grid

// OptimalGrid returns the integer grid of P processors minimizing the
// eq. (3) communication cost of Algorithm 1 (exhaustive divisor search).
func OptimalGrid(d Dims, p int) Grid { return grid.Optimal(d, p) }

// CaseGrid returns the §5.2 analytic grid when it is integral and divides
// the dimensions (the configuration in which the bound is attained
// word-exactly), or an error.
func CaseGrid(d Dims, p int) (Grid, error) { return grid.CaseGrid(d, p) }

// GridCommCost evaluates eq. (3): Algorithm 1's per-processor communication
// volume on the given grid.
func GridCommCost(d Dims, g Grid) float64 { return grid.CommCost(d, g) }

// Matrix is a dense row-major matrix of float64.
type Matrix = matrix.Dense

// NewMatrix returns a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix { return matrix.New(r, c) }

// RandomMatrix returns a deterministic pseudo-random r×c matrix with
// entries in [-1, 1), seeded by seed.
func RandomMatrix(r, c int, seed uint64) *Matrix { return matrix.Random(r, c, seed) }

// Mul returns the sequential product a·b (the verification oracle).
func Mul(a, b *Matrix) *Matrix { return matrix.Mul(a, b) }

// MachineConfig sets the α-β-γ cost parameters of the simulated machine.
type MachineConfig = machine.Config

// BandwidthOnly returns the cost model charging 1 per word and nothing
// else, so costs read directly in words.
func BandwidthOnly() MachineConfig { return machine.BandwidthOnly() }

// Opts configures a simulated algorithm run. Build it with NewOpts and the
// With* functional options (the recommended path), or fill the struct
// directly (the low-level path; see internal/algs for field semantics).
// Opts.Validate reports taxonomy errors (ErrBadOpts, ErrGridMismatch) for
// inconsistent values.
type Opts = algs.Opts

// Result is the outcome of a simulated run: the assembled product, the
// grid, and the machine statistics.
type Result = algs.Result

// Alg1 runs the paper's communication-optimal Algorithm 1 on p simulated
// processors.
func Alg1(a, b *Matrix, p int, opts Opts) (*Result, error) { return algs.Alg1(a, b, p, opts) }

// AllToAll3D runs the Agarwal et al. 1995 All-to-All variant of the 3D
// algorithm.
func AllToAll3D(a, b *Matrix, p int, opts Opts) (*Result, error) {
	return algs.AllToAll3D(a, b, p, opts)
}

// OneD runs the classical block-row algorithm.
func OneD(a, b *Matrix, p int, opts Opts) (*Result, error) { return algs.OneD(a, b, p, opts) }

// SUMMA runs the 2D SUMMA algorithm.
func SUMMA(a, b *Matrix, p int, opts Opts) (*Result, error) { return algs.SUMMA(a, b, p, opts) }

// Cannon runs Cannon's algorithm on a square grid.
func Cannon(a, b *Matrix, p int, opts Opts) (*Result, error) { return algs.Cannon(a, b, p, opts) }

// TwoPointFiveD runs the Solomonik-Demmel 2.5D algorithm.
func TwoPointFiveD(a, b *Matrix, p int, opts Opts) (*Result, error) {
	return algs.TwoPointFiveD(a, b, p, opts)
}

// Experiment is one regenerated table or figure of the paper.
type Experiment = experiments.Artifact

// RunAllExperiments regenerates every table and figure at the default
// (scaled) parameters.
func RunAllExperiments() ([]Experiment, error) { return experiments.All() }

// RunAllExperimentsContext is RunAllExperiments honoring cancellation: ctx
// is checked between experiments and between sweep points inside the
// simulation-heavy ones, so a long run stops promptly when ctx is done and
// returns ctx's error.
func RunAllExperimentsContext(ctx context.Context) ([]Experiment, error) {
	return experiments.AllContext(ctx)
}

// --- Fast (Strassen-like) regime: §2.3 ---

// CAPSResult is the outcome of a parallel Strassen run.
type CAPSResult = caps.Result

// CAPS runs Communication-Avoiding Parallel Strassen on 7^levels simulated
// processors (square matrices, dimensions divisible by 2^levels). Its
// volume follows the fast floor n²/P^{2/log2 7} of Ballard et al. 2012b
// rather than Theorem 3's classical floor.
func CAPS(a, b *Matrix, levels int, cfg MachineConfig) (*CAPSResult, error) {
	return caps.Multiply(a, b, levels, cfg)
}

// FastMatmulLowerBound returns the leading term n²/P^{2/ω0} of the
// memory-independent bound for Strassen-like algorithms with exponent
// omega0 (classical 3 recovers Theorem 3's Case 3 leading term).
func FastMatmulLowerBound(n, p int, omega0 float64) float64 {
	return core.FastMatmulLeading(n, p, omega0)
}

// --- §6.3 extension: d-dimensional cuboid computations ---

// CuboidProblem is a d-dimensional iteration-space computation with one
// array per omitted index (d = 3 is classical matmul).
type CuboidProblem = extension.Problem

// NewCuboidProblem constructs the §6.3 generalized problem.
func NewCuboidProblem(dims ...int) (CuboidProblem, error) { return extension.NewProblem(dims...) }

// CuboidLowerBound returns the generalized memory-independent bound for a
// cuboid problem on p processors.
func CuboidLowerBound(pr CuboidProblem, p int) float64 { return pr.LowerBound(p) }

// --- Runtime model ---

// Prediction decomposes Algorithm 1's predicted execution time.
type Prediction = model.Prediction

// PredictAlg1Time returns the closed-form α-β-γ execution time of
// Algorithm 1 on grid g — equal to the simulated critical path on
// conforming configurations.
func PredictAlg1Time(d Dims, g Grid, cfg MachineConfig) Prediction {
	return model.Alg1Time(d, g, cfg, collective.Auto)
}

// --- Interconnect topologies ---

// Topology is a concrete interconnect fabric the simulated machine can run
// on: flat (the paper's fully connected model, the default), two-level
// shared-NIC clusters, k-ary tori, and fat or skinny trees. Build one with
// ParseTopology and attach it to a run with WithTopology.
type Topology = topo.Topology

// Link is one cable's α-β cost, the base price a topology scales by route
// length and contention.
type Link = topo.Link

// Placement is the policy embedding grid ranks into a fabric's endpoints.
type Placement = topo.Policy

// The placement policies.
const (
	// PlaceContiguous packs consecutive ranks onto the same node (the
	// default).
	PlaceContiguous = topo.Contiguous
	// PlaceRoundRobin deals consecutive ranks across nodes.
	PlaceRoundRobin = topo.RoundRobin
)

// ParseTopology builds the fabric described by spec — "flat",
// "twolevel=<g>", "torus=<d1>x<d2>[x...]", "fattree=<radix>x<levels>", or
// "tree=<radix>x<levels>" — with exactly p endpoints, each cable priced at
// link. Unknown or ill-sized specs wrap ErrBadTopology.
func ParseTopology(spec string, p int, link Link) (Topology, error) {
	return topo.Parse(spec, p, link)
}

// TopologyKinds lists the recognized spec forms, for error messages and
// interfaces.
func TopologyKinds() []string { return topo.Kinds() }

// TopoPrediction is a topology-aware prediction: the flat decomposition
// plus the congestion slowdown the fabric imposes.
type TopoPrediction = model.TopoPrediction

// PredictAlg1TimeOnTopology prices Algorithm 1 on a concrete fabric: each
// collective phase is charged at the worst contended route among its fiber
// pairs. On the flat fabric it collapses exactly to PredictAlg1Time with
// Slowdown 1; elsewhere Slowdown is the factor by which the paper's
// dedicated-link constant degrades.
func PredictAlg1TimeOnTopology(d Dims, g Grid, cfg MachineConfig, t Topology, place Placement) (TopoPrediction, error) {
	pl, err := topo.Map(g, t, place)
	if err != nil {
		return TopoPrediction{}, err
	}
	net, err := topo.NewNetwork(t, pl)
	if err != nil {
		return TopoPrediction{}, err
	}
	return model.Alg1TimeTopo(d, g, cfg, collective.Auto, net)
}

// CARMA runs the Demmel et al. 2013 recursive algorithm (P must be a power
// of two): asymptotically optimal in all three regimes via greedy halving.
func CARMA(a, b *Matrix, p int, opts Opts) (*Result, error) { return algs.CARMA(a, b, p, opts) }

// Alg1LowMem runs the §6.2 low-memory adaptation of Algorithm 1: panels
// are gathered in the given number of chunks, shrinking the temporary
// footprint at the cost of latency, with bandwidth unchanged.
func Alg1LowMem(a, b *Matrix, p, chunks int, opts Opts) (*Result, error) {
	return algs.Alg1LowMem(a, b, p, chunks, opts)
}
