package parmm_test

import (
	"fmt"

	parmm "repro"
)

// ExampleCaseOf shows the three-regime classification on the paper's
// Figure 2 instance.
func ExampleCaseOf() {
	d := parmm.NewDims(9600, 2400, 600)
	t1, t2 := parmm.Thresholds(d)
	fmt.Printf("thresholds: m/n = %.0f, mn/k² = %.0f\n", t1, t2)
	for _, p := range []int{3, 36, 512} {
		fmt.Printf("P=%d → %v\n", p, parmm.CaseOf(d, p))
	}
	// Output:
	// thresholds: m/n = 4, mn/k² = 64
	// P=3 → Case 1 (1D)
	// P=36 → Case 2 (2D)
	// P=512 → Case 3 (3D)
}

// ExampleCaseGrid derives the paper's Figure 2 grids.
func ExampleCaseGrid() {
	d := parmm.NewDims(9600, 2400, 600)
	for _, p := range []int{3, 36, 512} {
		g, err := parmm.CaseGrid(d, p)
		if err != nil {
			fmt.Println(err)
			continue
		}
		fmt.Printf("P=%d → grid %v\n", p, g)
	}
	// Output:
	// P=3 → grid 3x1x1
	// P=36 → grid 12x3x1
	// P=512 → grid 32x8x2
}

// ExampleAlg1 runs the paper's algorithm on a simulated machine and shows
// exact attainment of the lower bound.
func ExampleAlg1() {
	a := parmm.RandomMatrix(96, 96, 1)
	b := parmm.RandomMatrix(96, 96, 2)
	res, err := parmm.Alg1(a, b, 64, parmm.Opts{Config: parmm.BandwidthOnly()})
	if err != nil {
		fmt.Println(err)
		return
	}
	bound := parmm.Corollary4(96, 64)
	fmt.Printf("grid %v: measured %.0f words/proc, bound %.0f\n", res.Grid, res.CommCost(), bound)
	fmt.Printf("correct: %v\n", res.C.MaxAbsDiff(parmm.Mul(a, b)) < 1e-9)
	// Output:
	// grid 4x4x4: measured 1296 words/proc, bound 1296
	// correct: true
}

// ExampleGridCommCost evaluates eq. (3) for a hand-picked grid.
func ExampleGridCommCost() {
	d := parmm.NewDims(9600, 2400, 600)
	g := parmm.Grid{P1: 32, P2: 8, P3: 2}
	fmt.Printf("eq.(3): %.1f words; bound: %.1f words\n",
		parmm.GridCommCost(d, g), parmm.LowerBound(d, 512))
	// Output:
	// eq.(3): 210937.5 words; bound: 210937.5 words
}

// ExampleMemoryDependentLowerBound reproduces the §6.2 crossover logic.
func ExampleMemoryDependentLowerBound() {
	d := parmm.SquareDims(1200)
	mem := 67500.0
	fmt.Printf("strong-scaling limit: P = %.1f\n", parmm.StrongScalingLimit(d, mem))
	for _, p := range []int{16, 64} {
		mi := parmm.DataFootprint(d, p)
		md := parmm.MemoryDependentLowerBound(d, p, mem)
		binding := "memory-independent"
		if md > mi {
			binding = "memory-dependent"
		}
		fmt.Printf("P=%d: %s binds\n", p, binding)
	}
	// Output:
	// strong-scaling limit: P = 29.2
	// P=16: memory-dependent binds
	// P=64: memory-independent binds
}
