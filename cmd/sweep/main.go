// Command sweep runs configurable parameter sweeps over problem shapes,
// processor counts, and algorithms on the simulated machine, emitting a
// table or CSV — the workload-generator half of the benchmark harness:
//
//	sweep -dims 768x192x48 -procs 1,4,16,64,512 -algs Alg1,SUMMA
//	sweep -dims 64x64x64,128x32x8 -procs 16 -algs all -csv -alpha 1 -gamma 0.01
//	sweep -dims 768x192x48 -procs 1,4,16,64 -workers 4
//
// Every run is verified against a serial product; each row reports the
// measured per-processor communication, Theorem 3's bound, and the ratio.
// Sweep points are independent simulations, so -workers N fans them out
// across N goroutines; rows are emitted in sweep order either way, making
// the output byte-identical for every worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/algs"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/report"
)

// shapeInput bundles one problem shape with its inputs and the serial
// reference product every sweep point on that shape is checked against.
type shapeInput struct {
	d          core.Dims
	a, b, want *matrix.Dense
}

// point is one sweep cell: shape si × processor count procs[pi] ×
// algorithm entries[ei].
type point struct{ si, pi, ei int }

func main() {
	dimsFlag := flag.String("dims", "768x192x48", "comma-separated list of n1xn2xn3 shapes")
	procsFlag := flag.String("procs", "1,4,16,64", "comma-separated processor counts")
	algsFlag := flag.String("algs", "Alg1", "comma-separated algorithm names or 'all'")
	alpha := flag.Float64("alpha", 0, "per-message latency cost")
	beta := flag.Float64("beta", 1, "per-word bandwidth cost")
	gamma := flag.Float64("gamma", 0, "per-flop compute cost")
	csv := flag.Bool("csv", false, "emit CSV instead of a table")
	seed := flag.Uint64("seed", 1, "input matrix seed")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"sweep points evaluated concurrently; output is identical for every value")
	flag.Parse()

	shapes, err := parseDims(*dimsFlag)
	if err != nil {
		fatal(err)
	}
	procs, err := parseInts(*procsFlag)
	if err != nil {
		fatal(err)
	}
	entries, err := parseAlgs(*algsFlag)
	if err != nil {
		fatal(err)
	}
	experiments.SetWorkers(*workers)

	// Each shape's inputs and serial reference are built once, in parallel
	// across shapes; the sweep points then only read them.
	inputs, err := experiments.Map(len(shapes), func(i int) (shapeInput, error) {
		d := shapes[i]
		a := matrix.Random(d.N1, d.N2, *seed)
		b := matrix.Random(d.N2, d.N3, *seed+1)
		return shapeInput{d: d, a: a, b: b, want: matrix.Mul(a, b)}, nil
	})
	if err != nil {
		fatal(err)
	}

	var points []point
	for si := range shapes {
		for pi := range procs {
			for ei := range entries {
				points = append(points, point{si, pi, ei})
			}
		}
	}

	cfg := machine.Config{Alpha: *alpha, Beta: *beta, Gamma: *gamma}
	type row struct {
		cells []string
		wrong bool
	}
	rows, err := experiments.Map(len(points), func(i int) (row, error) {
		pt := points[i]
		in, p, e := inputs[pt.si], procs[pt.pi], entries[pt.ei]
		d := in.d
		bound := core.LowerBound(d, p)
		res, err := e.Run(in.a, in.b, p, algs.Opts{Config: cfg})
		if err != nil {
			return row{cells: []string{d.String(), strconv.Itoa(p), core.CaseOf(d, p).String(),
				e.Name, "-", "-", report.Num(bound), "-", "-", "n/a: " + err.Error()}}, nil
		}
		status := "ok"
		wrong := res.C.MaxAbsDiff(in.want) > 1e-9*float64(d.N2)
		if wrong {
			status = "WRONG RESULT"
		}
		ratio := "1.000"
		if bound > 0 {
			ratio = fmt.Sprintf("%.3f", res.CommCost()/bound)
		}
		return row{
			cells: []string{
				d.String(), strconv.Itoa(p), core.CaseOf(d, p).String(),
				e.Name, res.Grid.String(),
				report.Num(res.CommCost()), report.Num(bound), ratio,
				report.Num(res.Stats.CriticalPath), status,
			},
			wrong: wrong,
		}, nil
	})
	if err != nil {
		fatal(err)
	}

	tb := report.NewTable(
		fmt.Sprintf("sweep (alpha=%g beta=%g gamma=%g)", *alpha, *beta, *gamma),
		"dims", "P", "case", "algorithm", "grid", "words/proc", "bound", "ratio", "critical path", "status",
	)
	exitCode := 0
	for _, r := range rows {
		tb.AddRow(r.cells...)
		if r.wrong {
			exitCode = 1
		}
	}
	if *csv {
		fmt.Print(tb.CSV())
	} else {
		fmt.Print(tb.String())
	}
	os.Exit(exitCode)
}

func parseDims(s string) ([]core.Dims, error) {
	var out []core.Dims
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), "x")
		if len(fields) != 3 {
			return nil, fmt.Errorf("sweep: bad dims %q (want n1xn2xn3)", part)
		}
		var v [3]int
		for i, f := range fields {
			n, err := strconv.Atoi(f)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("sweep: bad dimension %q in %q", f, part)
			}
			v[i] = n
		}
		out = append(out, core.NewDims(v[0], v[1], v[2]))
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("sweep: bad processor count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseAlgs(s string) ([]algs.Entry, error) {
	if strings.EqualFold(s, "all") {
		return algs.Registry(), nil
	}
	byName := map[string]algs.Entry{}
	for _, e := range algs.Registry() {
		byName[strings.ToLower(e.Name)] = e
	}
	var out []algs.Entry
	for _, part := range strings.Split(s, ",") {
		e, ok := byName[strings.ToLower(strings.TrimSpace(part))]
		if !ok {
			return nil, fmt.Errorf("sweep: unknown algorithm %q", part)
		}
		out = append(out, e)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
