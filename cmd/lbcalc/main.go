// Command lbcalc computes the paper's communication lower bounds for a
// given multiplication shape and processor count:
//
//	lbcalc -n1 9600 -n2 2400 -n3 600 -p 512 [-mem 67500]
//
// It reports the Theorem 3 case, thresholds, the bound and its leading
// term, the Lemma 2 optimizer with its KKT certificate residual, the
// optimal processor grids (§5.2 analytic and exhaustive), the prior-work
// bounds of Table 1, and — when -mem is given — the §6.2 memory-dependent
// comparison.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/report"
)

func main() {
	n1 := flag.Int("n1", 9600, "rows of A")
	n2 := flag.Int("n2", 2400, "columns of A / rows of B")
	n3 := flag.Int("n3", 600, "columns of B")
	p := flag.Int("p", 512, "number of processors")
	mem := flag.Float64("mem", 0, "per-processor memory in words (0: memory-independent analysis only)")
	flag.Parse()

	d := core.NewDims(*n1, *n2, *n3)
	if err := d.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *p < 1 {
		fmt.Fprintln(os.Stderr, "lbcalc: -p must be positive")
		os.Exit(2)
	}

	t1, t2 := core.Thresholds(d)
	fmt.Printf("problem: %v on P = %d processors\n", d, *p)
	fmt.Printf("case: %v (thresholds m/n = %s, mn/k² = %s)\n\n",
		core.CaseOf(d, *p), report.Num(t1), report.Num(t2))

	sol := core.Lemma2Closed(d, *p)
	fmt.Printf("Lemma 2 optimizer: x* = (%s, %s, %s), D = %s (relative KKT residual %.2e)\n",
		report.Num(sol.X1), report.Num(sol.X2), report.Num(sol.X3), report.Num(sol.Sum()),
		core.Lemma2KKTRelativeResidual(d, *p))
	fmt.Printf("Theorem 3 bound:   %s words per processor (leading term %s × %s)\n\n",
		report.Num(core.LowerBound(d, *p)),
		report.Num(core.TightConstant(core.CaseOf(d, *p))),
		report.Num(core.LeadingTerm(d, *p)))

	g1, g2, g3 := grid.Analytic(d, *p)
	fmt.Printf("analytic grid (§5.2): %.3f x %.3f x %.3f\n", g1, g2, g3)
	opt := grid.Optimal(d, *p)
	fmt.Printf("best integer grid:    %v  (eq.(3) cost %s words, %.4f× bound)\n",
		opt, report.Num(grid.CommCost(d, opt)), ratio(grid.CommCost(d, opt), core.LowerBound(d, *p)))
	if cg, err := grid.CaseGrid(d, *p); err == nil {
		fmt.Printf("exact case grid:      %v  (attains the bound word-for-word)\n", cg)
	}
	fmt.Println()

	tb := report.NewTable("prior-work bounds (leading term only, Table 1)", "work", "bound (words)")
	for _, w := range core.AllWorks() {
		tb.AddRow(w.String(), report.Num(w.Bound(d, *p)))
	}
	fmt.Print(tb.String())

	if *mem > 0 {
		fmt.Println()
		md := core.MemoryDependentLeading(d, *p, *mem)
		_, mdBinds := core.BindingBound(d, *p, *mem)
		fmt.Printf("§6.2 with M = %s words/processor:\n", report.Num(*mem))
		fmt.Printf("  memory-dependent bound 2mnk/(P√M) = %s words\n", report.Num(md))
		fmt.Printf("  minimum memory to hold 1/P of data = %s words\n", report.Num(core.MinLocalMemory(d, *p)))
		fmt.Printf("  Algorithm 1 footprint (D)          = %s words (fits: %v)\n",
			report.Num(core.Alg1LocalMemory(d, *p)), core.Alg1LocalMemory(d, *p) <= *mem)
		which := "memory-independent (Theorem 3)"
		if mdBinds {
			which = "memory-dependent"
		}
		fmt.Printf("  binding bound: %s\n", which)
		fmt.Printf("  strong-scaling limit P = (8/27)·mnk/M^(3/2) = %s\n",
			report.Num(core.PerfectStrongScalingLimit(d, *mem)))
	}
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 1
	}
	return a / b
}
