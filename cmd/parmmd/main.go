// Command parmmd serves the paper's decision data over HTTP: Theorem 3
// lower bounds, optimal processor grids, closed-form runtime predictions,
// and asynchronous simulated runs, as a versioned JSON API.
//
//	parmmd -addr :8080
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/lowerbound \
//	    -d '{"n1":9600,"n2":2400,"n3":600,"p":512}'
//
// Endpoints: POST /v1/lowerbound (single, batch, and envelope),
// POST /v1/grid, POST /v1/predict, POST /v1/simulate (async; poll
// GET /v1/jobs/{id}, list with GET /v1/jobs?state=&limit=&cursor=, cancel
// with DELETE), POST /v1/plan (strong-scaling sweeps; large ranges stream
// NDJSON, capped at -max-plan-points per problem), GET /healthz,
// GET /metrics (Prometheus text format), GET /debug/vars, and — with
// -pprof — the net/http/pprof profiles under GET /debug/pprof/. With
// -artifact-dir, jobs store durable artifacts (Chrome traces via
// "trace": true, result JSON/CSV, async plan NDJSON via "job": true)
// served by GET /v1/jobs/{id}/artifacts[/{name}] with Range support; the
// artifacts survive job eviction. With -push-addr, every metric family is
// also pushed to a statsd sink each -push-interval (counters as interval
// deltas, histograms as count/sum plus p50/p90/p99 gauges). Expensive
// pure computations are memoized in a sharded LRU with singleflight
// coalescing; synchronous endpoints admit at most -compute-concurrency
// (plans: -plan-concurrency) requests at once and answer 503 beyond;
// simulations run on a bounded job pool with per-job deadlines, and
// finished jobs stay queryable for -job-ttl (capped at -job-retain) before
// eviction. Every request is answered with an X-Request-ID and logged as
// one JSON line on stderr. SIGINT/SIGTERM shut down gracefully: the
// listener closes, then in-flight jobs drain (up to -drain), then whatever
// remains is cancelled through its context.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheSize := flag.Int("cache", 4096, "memo cache capacity (entries)")
	workers := flag.Int("workers", 0, "job pool width (0: GOMAXPROCS)")
	queue := flag.Int("queue", 64, "job queue depth (full queue answers 503)")
	jobTimeout := flag.Duration("job-timeout", time.Minute, "per-job deadline (negative: none)")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain budget for in-flight jobs")
	maxFlops := flag.Float64("max-sim-flops", 1e9, "largest n1·n2·n3 a simulation may request")
	maxProcs := flag.Int("max-sim-procs", 4096, "largest P a simulation may request")
	maxTopoProcs := flag.Int("max-topo-procs", 1<<17, "largest P a synchronous topology prediction may request")
	maxPlanPoints := flag.Int("max-plan-points", 1<<20, "largest point count a /v1/plan problem may expand to")
	planInline := flag.Int("plan-inline", 512, "total plan points up to which /v1/plan answers inline JSON instead of NDJSON")
	planConc := flag.Int("plan-concurrency", 4, "concurrent /v1/plan requests admitted before 503")
	computeConc := flag.Int("compute-concurrency", 256, "concurrent synchronous compute requests admitted before 503")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	jobTTL := flag.Duration("job-ttl", 10*time.Minute, "how long finished jobs stay queryable (negative: forever)")
	jobRetain := flag.Int("job-retain", 4096, "max finished jobs kept regardless of age (negative: uncapped)")
	accessLog := flag.Bool("access-log", true, "log one JSON line per request to stderr")
	artifactDir := flag.String("artifact-dir", "", "directory for durable job artifacts (empty: artifacts disabled)")
	artifactMax := flag.Int64("artifact-max-bytes", 0, "per-artifact size cap in bytes (0: 64 MiB)")
	pushAddr := flag.String("push-addr", "", "statsd sink for pushed metrics: udp://host:port, tcp://host:port, or host:port (empty: push disabled)")
	pushInterval := flag.Duration("push-interval", 10*time.Second, "metrics push flush interval")
	pushPrefix := flag.String("push-prefix", "parmmd", "statsd key prefix for pushed metrics")
	flag.Parse()

	// Turn on the simulator/collective instrumentation so /metrics carries
	// machine_* and collective_* families; the flag costs one atomic load
	// per counter site, and the service exists to run simulations worth
	// observing.
	obs.SetEnabled(true)

	experiments.SetWorkers(*workers)
	cfg := service.Config{
		CacheSize:          *cacheSize,
		Workers:            *workers,
		QueueDepth:         *queue,
		JobTimeout:         *jobTimeout,
		MaxSimFlops:        *maxFlops,
		MaxSimProcs:        *maxProcs,
		MaxTopoProcs:       *maxTopoProcs,
		MaxPlanPoints:      *maxPlanPoints,
		PlanInlineLimit:    *planInline,
		PlanConcurrency:    *planConc,
		ComputeConcurrency: *computeConc,
		EnablePprof:        *pprofOn,
		JobRetention:       *jobTTL,
		MaxJobsRetained:    *jobRetain,
	}
	if *accessLog {
		cfg.AccessLog = os.Stderr
	}
	if *artifactDir != "" {
		fs, err := store.NewFS(*artifactDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parmmd: %v\n", err)
			os.Exit(1)
		}
		cfg.ArtifactStore = fs
		cfg.MaxArtifactBytes = *artifactMax
	}
	srv := service.New(cfg)
	if *pushAddr != "" {
		pusher, err := obs.NewPusher(obs.PushConfig{
			Addr:       *pushAddr,
			Interval:   *pushInterval,
			Prefix:     *pushPrefix,
			Registries: []*obs.Registry{srv.Registry(), obs.Default},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "parmmd: %v\n", err)
			os.Exit(1)
		}
		// Closed on shutdown below: the final flush ships the last
		// interval's deltas before the process exits.
		defer pusher.Close()
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "parmmd: listening on %s\n", *addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "parmmd: %v, shutting down\n", sig)
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "parmmd: %v\n", err)
		os.Exit(1)
	}

	// Stop the listener first so no new jobs arrive, then drain the pool.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "parmmd: http shutdown: %v\n", err)
	}
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "parmmd: job drain: %v\n", err)
	}
}
