// Command paper regenerates the evaluation artifacts of the paper — every
// table and figure — and prints them to stdout (optionally writing CSVs):
//
//	paper                # all artifacts
//	paper -only table1   # one artifact: table1, lemma2, bounds, fig1,
//	                     # fig2, tight, algs, scaling, memory
//	paper -csv out/      # additionally write <id>.csv files
//	paper -workers 4     # evaluate sweep points on 4 goroutines
//
// The simulation-backed experiments fan their sweep points across -workers
// goroutines (default GOMAXPROCS); the artifacts are byte-identical for
// every worker count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single artifact (table1|lemma2|bounds|fig1|fig2|tight|algs|scaling|memory|geometry|carma|extension|fastmm|models|caps|memtradeoff|topology|hbl|fabricscale)")
	csvDir := flag.String("csv", "", "directory to write <id>.csv files into")
	jsonOut := flag.Bool("json", false, "emit the artifacts as a JSON array instead of text")
	list := flag.Bool("list", false, "list the available artifact names and exit")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"sweep points evaluated concurrently; output is identical for every value")
	flag.Parse()
	experiments.SetWorkers(*workers)

	if *list {
		for _, name := range []string{
			"table1", "lemma2", "bounds", "fig1", "fig2", "tight", "algs",
			"scaling", "memory", "geometry", "carma", "extension", "fastmm",
			"models", "caps", "memtradeoff", "topology", "hbl", "fabricscale",
		} {
			fmt.Println(name)
		}
		return
	}

	arts, err := selectArtifacts(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(arts); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	for _, a := range arts {
		fmt.Println(a.String())
		if *csvDir != "" && a.CSV != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, a.ID+".csv")
			if err := os.WriteFile(path, []byte(a.CSV), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("(csv written to %s)\n\n", path)
		}
	}
}

func selectArtifacts(only string) ([]experiments.Artifact, error) {
	switch strings.ToLower(only) {
	case "":
		arts, err := experiments.All()
		if err != nil {
			return nil, err
		}
		// Append the extras not in the default set.
		extra, err := experiments.StrongScaling(experiments.DefaultRectDims, []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512})
		if err != nil {
			return nil, err
		}
		return append(arts,
			experiments.Table1Numeric(experiments.PaperRectDims, []int{1, 3, 4, 16, 36, 64, 256, 512, 4096}),
			extra,
		), nil
	case "table1":
		return []experiments.Artifact{
			experiments.Table1(),
			experiments.Table1Numeric(experiments.PaperRectDims, []int{1, 3, 4, 16, 36, 64, 256, 512, 4096}),
		}, nil
	case "lemma2":
		return []experiments.Artifact{experiments.Lemma2Cases(experiments.DefaultRectDims)}, nil
	case "bounds":
		return []experiments.Artifact{experiments.BoundCurves(experiments.PaperRectDims, 1<<20)}, nil
	case "fig1":
		a, err := experiments.Figure1(experiments.DefaultFig1N, 27)
		return []experiments.Artifact{a}, err
	case "fig2":
		return []experiments.Artifact{experiments.Figure2()}, nil
	case "tight":
		a, err := experiments.Tightness()
		return []experiments.Artifact{a}, err
	case "algs":
		a, err := experiments.AlgorithmComparison(experiments.DefaultCompareN, experiments.DefaultCompareP)
		return []experiments.Artifact{a}, err
	case "scaling":
		a, err := experiments.StrongScaling(experiments.DefaultRectDims, []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512})
		return []experiments.Artifact{a}, err
	case "memory":
		return []experiments.Artifact{experiments.LimitedMemory(experiments.DefaultSquareN, experiments.DefaultMemoryWords)}, nil
	case "geometry":
		a, err := experiments.Geometry()
		return []experiments.Artifact{a}, err
	case "carma":
		return []experiments.Artifact{experiments.CARMAComparison()}, nil
	case "extension":
		a, err := experiments.Extension()
		return []experiments.Artifact{a}, err
	case "memtradeoff":
		a, err := experiments.MemoryTradeoff(experiments.DefaultRectDims, 512)
		return []experiments.Artifact{a}, err
	case "caps":
		a, err := experiments.CAPSExperiment(56)
		return []experiments.Artifact{a}, err
	case "models":
		return []experiments.Artifact{experiments.ModelRobustness()}, nil
	case "fastmm":
		a, err := experiments.FastMatmul(4096, []int{1, 8, 64, 512, 4096})
		return []experiments.Artifact{a}, err
	case "topology":
		a, err := experiments.TopologySweep()
		return []experiments.Artifact{a}, err
	case "hbl":
		a, err := experiments.HBLPrograms()
		return []experiments.Artifact{a}, err
	case "fabricscale":
		// The datacenter-scale payoff run: P = 65536 on the event engine,
		// priced by the walk-mode charge oracle. Not part of the default
		// set — it takes tens of seconds where the rest take milliseconds.
		a, err := experiments.FabricScale(65536)
		return []experiments.Artifact{a}, err
	default:
		return nil, fmt.Errorf("paper: unknown artifact %q", only)
	}
}
