package main

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/algs"
	"repro/internal/core"
	"repro/internal/topo"
)

// TestFlagParsing table-drives parseFlags + resolve: every registry
// algorithm resolves case-insensitively, unknown names fail listing the
// valid ones, and the topology flags produce typed taxonomy errors.
func TestFlagParsing(t *testing.T) {
	small := []string{"-n1", "16", "-n2", "16", "-n3", "16", "-p", "4"}
	cases := []struct {
		name    string
		args    []string
		wantErr error  // sentinel the resolve error must wrap (nil = success)
		errHas  string // substring the error message must contain
		check   func(t *testing.T, s runSpec)
	}{
		{
			name: "defaults",
			args: nil,
			check: func(t *testing.T, s runSpec) {
				if len(s.entries) != 1 || s.entries[0].Name != "Alg1" {
					t.Fatalf("entries = %+v", s.entries)
				}
				if s.opts.Topo != nil {
					t.Fatalf("default run got a topology: %v", s.opts.Topo)
				}
			},
		},
		{
			name: "all algorithms",
			args: append([]string{"-alg", "all"}, small...),
			check: func(t *testing.T, s runSpec) {
				if len(s.entries) != len(algs.Registry()) {
					t.Fatalf("got %d entries, want the full registry (%d)", len(s.entries), len(algs.Registry()))
				}
			},
		},
		{
			name: "case insensitive alg",
			args: append([]string{"-alg", "cannon"}, small...),
			check: func(t *testing.T, s runSpec) {
				if len(s.entries) != 1 || s.entries[0].Name != "Cannon" {
					t.Fatalf("entries = %+v", s.entries)
				}
			},
		},
		{
			name:    "unknown alg lists registry",
			args:    append([]string{"-alg", "Strassen9000"}, small...),
			wantErr: core.ErrUnsupportedAlg,
			errHas:  "Alg1",
		},
		{
			name: "topology and placement",
			args: []string{"-n1", "64", "-n2", "64", "-n3", "64", "-p", "64", "-topo", "torus=4x4x4", "-place", "roundrobin"},
			check: func(t *testing.T, s runSpec) {
				if s.opts.Topo == nil || s.opts.Topo.Name() != "torus=4x4x4" {
					t.Fatalf("topo = %v", s.opts.Topo)
				}
				if s.opts.Place != topo.RoundRobin {
					t.Fatalf("place = %v", s.opts.Place)
				}
			},
		},
		{
			name:    "unknown topology lists kinds",
			args:    append([]string{"-topo", "hypercube=2"}, small...),
			wantErr: core.ErrBadTopology,
			errHas:  "torus=",
		},
		{
			name:    "topology size mismatch",
			args:    append([]string{"-topo", "torus=4x4"}, small...),
			wantErr: core.ErrBadTopology,
		},
		{
			name:    "unknown placement",
			args:    append([]string{"-topo", "flat", "-place", "zigzag"}, small...),
			wantErr: core.ErrBadTopology,
		},
		{
			name:    "placement without topology still validated",
			args:    append([]string{"-place", "zigzag"}, small...),
			wantErr: core.ErrBadTopology,
		},
		{
			name:    "bad dims",
			args:    []string{"-n1", "0"},
			wantErr: core.ErrBadDims,
		},
		{
			name:    "bad processor count",
			args:    []string{"-p", "0"},
			wantErr: core.ErrBadProcessorCount,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := parseFlags(tc.args, io.Discard)
			if err != nil {
				t.Fatalf("parseFlags: %v", err)
			}
			s, err := resolve(cfg)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("resolve err = %v, want %v", err, tc.wantErr)
				}
				if tc.errHas != "" && !strings.Contains(err.Error(), tc.errHas) {
					t.Fatalf("error %q does not mention %q", err, tc.errHas)
				}
				return
			}
			if err != nil {
				t.Fatalf("resolve: %v", err)
			}
			if tc.check != nil {
				tc.check(t, s)
			}
		})
	}
}

// TestFlagSyntaxError checks malformed flags surface as parse errors (main
// then exits 2) instead of panicking or exiting from inside the parser.
func TestFlagSyntaxError(t *testing.T) {
	var buf bytes.Buffer
	if _, err := parseFlags([]string{"-p", "not-a-number"}, &buf); err == nil {
		t.Fatal("bad -p value parsed")
	}
	if _, err := parseFlags([]string{"-definitely-not-a-flag"}, &buf); err == nil {
		t.Fatal("unknown flag parsed")
	}
}

// TestRunTopologySmoke runs the resolved pipeline in-process on a small
// problem with and without a fabric: same words, longer critical path, both
// verified, exit code 0.
func TestRunTopologySmoke(t *testing.T) {
	args := []string{"-alg", "Alg1", "-n1", "32", "-n2", "32", "-n3", "32", "-p", "8", "-alpha", "2", "-beta", "1"}
	runOut := func(extra ...string) (string, int) {
		t.Helper()
		cfg, err := parseFlags(append(args, extra...), io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		s, err := resolve(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var out, errOut bytes.Buffer
		code := run(s, &out, &errOut)
		return out.String(), code
	}
	flatOut, code := runOut()
	if code != 0 {
		t.Fatalf("flat run exit %d:\n%s", code, flatOut)
	}
	treeOut, code := runOut("-topo", "tree=2x3")
	if code != 0 {
		t.Fatalf("tree run exit %d:\n%s", code, treeOut)
	}
	if !strings.Contains(treeOut, "topology tree=2x3, placement contiguous") {
		t.Fatalf("tree run does not announce its fabric:\n%s", treeOut)
	}
	if strings.Contains(flatOut, "topology ") {
		t.Fatalf("flat run announces a fabric:\n%s", flatOut)
	}
	if !strings.Contains(flatOut, "true") || !strings.Contains(treeOut, "true") {
		t.Fatalf("verification column missing:\nflat:\n%s\ntree:\n%s", flatOut, treeOut)
	}
}
