// Command mmsim runs a parallel matrix multiplication algorithm on the
// simulated α-β-γ machine and reports measured communication against the
// predictions and Theorem 3's lower bound:
//
//	mmsim -alg Alg1 -n1 768 -n2 192 -n3 48 -p 512
//	mmsim -alg all  -n1 64 -n2 64 -n3 64 -p 64 -alpha 1 -beta 1 -gamma 0.01
//	mmsim -alg Alg1 -n1 64 -n2 64 -n3 64 -p 64 -topo torus=4x4x4 -place contiguous
//
// Algorithms: Alg1, AllToAll3D, OneD, SUMMA, Cannon, TwoPointFiveD, or
// "all". The product is always verified against a serial reference. With
// -topo, messages are priced through the fabric's routes and contention
// factors instead of the paper's dedicated per-pair links.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/algs"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/report"
	"repro/internal/topo"
)

// cliConfig is the raw command line after flag parsing, before validation.
type cliConfig struct {
	alg                 string
	n1, n2, n3, p       int
	alpha, beta, gamma  float64
	layers              int
	seed                uint64
	trace               string
	timeline, traffic   bool
	topoSpec, placeName string
	engine              string
}

// parseFlags parses args (not including the program name) into a cliConfig.
// Flag-syntax errors come back as errors rather than exiting, so tests can
// table-drive the parser.
func parseFlags(args []string, errOut io.Writer) (cliConfig, error) {
	var c cliConfig
	fs := flag.NewFlagSet("mmsim", flag.ContinueOnError)
	fs.SetOutput(errOut)
	fs.StringVar(&c.alg, "alg", "Alg1", "algorithm name or 'all'")
	fs.IntVar(&c.n1, "n1", 768, "rows of A")
	fs.IntVar(&c.n2, "n2", 192, "columns of A / rows of B")
	fs.IntVar(&c.n3, "n3", 48, "columns of B")
	fs.IntVar(&c.p, "p", 64, "number of processors")
	fs.Float64Var(&c.alpha, "alpha", 0, "per-message latency cost")
	fs.Float64Var(&c.beta, "beta", 1, "per-word bandwidth cost")
	fs.Float64Var(&c.gamma, "gamma", 0, "per-flop compute cost")
	fs.IntVar(&c.layers, "layers", 0, "2.5D replication factor (0 = auto)")
	fs.Uint64Var(&c.seed, "seed", 1, "input matrix seed")
	fs.StringVar(&c.trace, "trace", "", "write a Chrome-trace JSON file (chrome://tracing, Perfetto) to this path (single algorithm only)")
	fs.BoolVar(&c.timeline, "timeline", false, "print a simulated-time Gantt timeline (single algorithm only)")
	fs.BoolVar(&c.traffic, "traffic", false, "print the traffic heatmap (single algorithm only)")
	fs.StringVar(&c.topoSpec, "topo", "", "interconnect topology: "+strings.Join(topo.Kinds(), ", ")+" (empty = flat dedicated links)")
	fs.StringVar(&c.placeName, "place", "", "rank placement on the topology: "+strings.Join(topo.Policies(), ", ")+" (default contiguous)")
	fs.StringVar(&c.engine, "engine", "", "simulator scheduling backend: "+strings.Join(machine.EngineNames(), ", ")+" (default goroutine; use event for very large P)")
	if err := fs.Parse(args); err != nil {
		return c, err
	}
	return c, nil
}

// runSpec is a fully validated invocation: everything run needs, resolved
// against the algorithm registry and the topology parser.
type runSpec struct {
	d                 core.Dims
	p                 int
	entries           []algs.Entry
	opts              algs.Opts
	seed              uint64
	trace             string
	timeline, traffic bool
}

// resolve validates a cliConfig into a runSpec. Unknown algorithm and
// topology names are errors listing the valid choices.
func resolve(c cliConfig) (runSpec, error) {
	s := runSpec{
		p:        c.p,
		seed:     c.seed,
		trace:    c.trace,
		timeline: c.timeline,
		traffic:  c.traffic,
	}
	s.d = core.NewDims(c.n1, c.n2, c.n3)
	if err := s.d.Validate(); err != nil {
		return s, err
	}
	if c.p < 1 {
		return s, fmt.Errorf("P must be ≥ 1, got %d: %w", c.p, core.ErrBadProcessorCount)
	}
	for _, e := range algs.Registry() {
		if strings.EqualFold(c.alg, "all") || strings.EqualFold(c.alg, e.Name) {
			s.entries = append(s.entries, e)
		}
	}
	if len(s.entries) == 0 {
		return s, fmt.Errorf("unknown algorithm %q (valid: %s, or \"all\"): %w",
			c.alg, strings.Join(algs.Names(), ", "), core.ErrUnsupportedAlg)
	}
	engine, err := machine.ParseEngine(c.engine)
	if err != nil {
		return s, fmt.Errorf("unknown engine %q (valid: %s): %w",
			c.engine, strings.Join(machine.EngineNames(), ", "), core.ErrBadOpts)
	}
	s.opts = algs.Opts{
		Config:  machine.Config{Alpha: c.alpha, Beta: c.beta, Gamma: c.gamma},
		Layers:  c.layers,
		Trace:   c.trace != "" || c.timeline,
		Traffic: c.traffic,
		Engine:  engine,
	}
	if c.topoSpec != "" {
		fabric, err := topo.Parse(c.topoSpec, c.p, topo.Link{Alpha: c.alpha, Beta: c.beta})
		if err != nil {
			return s, err
		}
		place, err := topo.ParsePolicy(c.placeName)
		if err != nil {
			return s, err
		}
		s.opts.Topo = fabric
		s.opts.Place = place
	} else if c.placeName != "" {
		if _, err := topo.ParsePolicy(c.placeName); err != nil {
			return s, err
		}
	}
	return s, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(2)
	}
	spec, err := resolve(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmsim: %v\n", err)
		os.Exit(2)
	}
	os.Exit(run(spec, os.Stdout, os.Stderr))
}

// run executes the resolved spec and returns the process exit code: 0 on
// success, 1 on a failed run or wrong product.
func run(s runSpec, out, errOut io.Writer) int {
	a := matrix.Random(s.d.N1, s.d.N2, s.seed)
	b := matrix.Random(s.d.N2, s.d.N3, s.seed+1)
	want := matrix.Mul(a, b)
	bound := core.LowerBound(s.d, s.p)

	fmt.Fprintf(out, "problem %v, P = %d, %v; Theorem 3 bound = %s words/proc\n",
		s.d, s.p, core.CaseOf(s.d, s.p), report.Num(bound))
	if s.opts.Topo != nil {
		fmt.Fprintf(out, "topology %s, placement %s\n", s.opts.Topo.Name(), s.opts.Place)
	}
	fmt.Fprintln(out)
	tb := report.NewTable("", "algorithm", "grid", "words/proc", "ratio", "msgs/proc", "flops/proc", "peak mem", "critical path", "correct")
	failed := false
	var lastTrace *machine.Trace
	var lastTraffic *machine.TrafficMatrix
	for _, e := range s.entries {
		res, err := e.Run(a, b, s.p, s.opts)
		if err != nil {
			tb.AddRow(e.Name, "-", "-", "-", "-", "-", "-", "-", err.Error())
			failed = true
			continue
		}
		ok := res.C.MaxAbsDiff(want) <= 1e-9*float64(s.d.N2)
		if !ok {
			failed = true
		}
		lastTrace = res.Trace
		lastTraffic = res.Traffic
		maxMsgs, maxFlops := 0, 0.0
		for _, rs := range res.Stats.Ranks {
			if rs.MsgsRecv > maxMsgs {
				maxMsgs = rs.MsgsRecv
			}
			if rs.Flops > maxFlops {
				maxFlops = rs.Flops
			}
		}
		tb.AddRow(
			e.Name,
			res.Grid.String(),
			report.Num(res.CommCost()),
			fmt.Sprintf("%.3f", ratio(res.CommCost(), bound)),
			fmt.Sprintf("%d", maxMsgs),
			report.Num(maxFlops),
			report.Num(res.Stats.MaxPeakMemory),
			report.Num(res.Stats.CriticalPath),
			fmt.Sprintf("%v", ok),
		)
	}
	fmt.Fprint(out, tb.String())
	if s.traffic {
		if len(s.entries) == 1 && lastTraffic != nil {
			fmt.Fprintln(out)
			fmt.Fprint(out, lastTraffic.Heatmap())
			fmt.Fprintf(out, "active pairs: %d of %d\n", lastTraffic.ActivePairs(), s.p*(s.p-1))
		} else {
			fmt.Fprintln(errOut, "mmsim: -traffic requires a single algorithm")
		}
	}
	if s.timeline {
		if len(s.entries) == 1 && lastTrace != nil {
			fmt.Fprintln(out)
			fmt.Fprint(out, lastTrace.Timeline(s.p, 100))
			fmt.Fprintln(out)
			fmt.Fprint(out, lastTrace.Summary(s.p))
		} else {
			fmt.Fprintln(errOut, "mmsim: -timeline requires a single algorithm")
		}
	}
	if s.trace != "" {
		if len(s.entries) == 1 && lastTrace != nil {
			if err := writeChromeTrace(s.trace, lastTrace, s.p); err != nil {
				fmt.Fprintf(errOut, "mmsim: %v\n", err)
				return 1
			}
			fmt.Fprintf(out, "\nwrote Chrome trace to %s (open in chrome://tracing or https://ui.perfetto.dev)\n", s.trace)
		} else {
			fmt.Fprintln(errOut, "mmsim: -trace requires a single algorithm")
		}
	}
	if failed {
		return 1
	}
	return 0
}

func writeChromeTrace(path string, tr *machine.Trace, p int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f, p); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func ratio(a, b float64) float64 {
	if b <= 0 {
		return 1
	}
	return a / b
}
