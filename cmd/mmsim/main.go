// Command mmsim runs a parallel matrix multiplication algorithm on the
// simulated α-β-γ machine and reports measured communication against the
// predictions and Theorem 3's lower bound:
//
//	mmsim -alg Alg1 -n1 768 -n2 192 -n3 48 -p 512
//	mmsim -alg all  -n1 64 -n2 64 -n3 64 -p 64 -alpha 1 -beta 1 -gamma 0.01
//
// Algorithms: Alg1, AllToAll3D, OneD, SUMMA, Cannon, TwoPointFiveD, or
// "all". The product is always verified against a serial reference.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/algs"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/report"
)

func main() {
	algName := flag.String("alg", "Alg1", "algorithm name or 'all'")
	n1 := flag.Int("n1", 768, "rows of A")
	n2 := flag.Int("n2", 192, "columns of A / rows of B")
	n3 := flag.Int("n3", 48, "columns of B")
	p := flag.Int("p", 64, "number of processors")
	alpha := flag.Float64("alpha", 0, "per-message latency cost")
	beta := flag.Float64("beta", 1, "per-word bandwidth cost")
	gamma := flag.Float64("gamma", 0, "per-flop compute cost")
	layers := flag.Int("layers", 0, "2.5D replication factor (0 = auto)")
	seed := flag.Uint64("seed", 1, "input matrix seed")
	trace := flag.String("trace", "", "write a Chrome-trace JSON file (chrome://tracing, Perfetto) to this path (single algorithm only)")
	timeline := flag.Bool("timeline", false, "print a simulated-time Gantt timeline (single algorithm only)")
	traffic := flag.Bool("traffic", false, "print the traffic heatmap (single algorithm only)")
	flag.Parse()

	d := core.NewDims(*n1, *n2, *n3)
	if err := d.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opts := algs.Opts{
		Config:  machine.Config{Alpha: *alpha, Beta: *beta, Gamma: *gamma},
		Layers:  *layers,
		Trace:   *trace != "" || *timeline,
		Traffic: *traffic,
	}
	a := matrix.Random(*n1, *n2, *seed)
	b := matrix.Random(*n2, *n3, *seed+1)
	want := matrix.Mul(a, b)
	bound := core.LowerBound(d, *p)

	var entries []algs.Entry
	for _, e := range algs.Registry() {
		if strings.EqualFold(*algName, "all") || strings.EqualFold(*algName, e.Name) {
			entries = append(entries, e)
		}
	}
	if len(entries) == 0 {
		fmt.Fprintf(os.Stderr, "mmsim: unknown algorithm %q\n", *algName)
		os.Exit(2)
	}

	fmt.Printf("problem %v, P = %d, %v; Theorem 3 bound = %s words/proc\n\n",
		d, *p, core.CaseOf(d, *p), report.Num(bound))
	tb := report.NewTable("", "algorithm", "grid", "words/proc", "ratio", "msgs/proc", "flops/proc", "peak mem", "critical path", "correct")
	failed := false
	var lastTrace *machine.Trace
	var lastTraffic *machine.TrafficMatrix
	for _, e := range entries {
		res, err := e.Run(a, b, *p, opts)
		if err != nil {
			tb.AddRow(e.Name, "-", "-", "-", "-", "-", "-", "-", err.Error())
			failed = true
			continue
		}
		ok := res.C.MaxAbsDiff(want) <= 1e-9*float64(*n2)
		if !ok {
			failed = true
		}
		lastTrace = res.Trace
		lastTraffic = res.Traffic
		maxMsgs, maxFlops := 0, 0.0
		for _, rs := range res.Stats.Ranks {
			if rs.MsgsRecv > maxMsgs {
				maxMsgs = rs.MsgsRecv
			}
			if rs.Flops > maxFlops {
				maxFlops = rs.Flops
			}
		}
		tb.AddRow(
			e.Name,
			res.Grid.String(),
			report.Num(res.CommCost()),
			fmt.Sprintf("%.3f", ratio(res.CommCost(), bound)),
			fmt.Sprintf("%d", maxMsgs),
			report.Num(maxFlops),
			report.Num(res.Stats.MaxPeakMemory),
			report.Num(res.Stats.CriticalPath),
			fmt.Sprintf("%v", ok),
		)
	}
	fmt.Print(tb.String())
	if *traffic {
		if len(entries) == 1 && lastTraffic != nil {
			fmt.Println()
			fmt.Print(lastTraffic.Heatmap())
			fmt.Printf("active pairs: %d of %d\n", lastTraffic.ActivePairs(), *p*(*p-1))
		} else {
			fmt.Fprintln(os.Stderr, "mmsim: -traffic requires a single algorithm")
		}
	}
	if *timeline {
		if len(entries) == 1 && lastTrace != nil {
			fmt.Println()
			fmt.Print(lastTrace.Timeline(*p, 100))
			fmt.Println()
			fmt.Print(lastTrace.Summary(*p))
		} else {
			fmt.Fprintln(os.Stderr, "mmsim: -timeline requires a single algorithm")
		}
	}
	if *trace != "" {
		if len(entries) == 1 && lastTrace != nil {
			if err := writeChromeTrace(*trace, lastTrace, *p); err != nil {
				fmt.Fprintf(os.Stderr, "mmsim: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("\nwrote Chrome trace to %s (open in chrome://tracing or https://ui.perfetto.dev)\n", *trace)
		} else {
			fmt.Fprintln(os.Stderr, "mmsim: -trace requires a single algorithm")
		}
	}
	if failed {
		os.Exit(1)
	}
}

func writeChromeTrace(path string, tr *machine.Trace, p int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f, p); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func ratio(a, b float64) float64 {
	if b <= 0 {
		return 1
	}
	return a / b
}
