// Command benchrec records simulator performance as JSON so the perf
// trajectory is tracked across PRs (ROADMAP item 4). Two modes:
//
//	benchrec [-out BENCH_engine_scaling.json] [-p 1024,4096,65536]
//	    runs the engine-scaling matrix (goroutine and event engines at each
//	    P) through testing.Benchmark and writes the JSON record.
//
//	benchrec -counting 1000000 [-engine event]
//	    runs a single BandwidthOnly counting world of that many ranks and
//	    prints wall time and totals — the CI smoke proving a million-rank
//	    world fits and finishes.
//
//	benchrec -topo [-out BENCH_topo_scaling.json] [-p 1024,4096,65536]
//	    records topology charge-oracle construction time and Charge
//	    throughput per fabric at each P (table mode at small P, O(hops)
//	    walk mode at 65536).
//
// Exit status is 0 on success, 1 on any failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/benchrec"
	"repro/internal/machine"
)

func main() {
	out := flag.String("out", "BENCH_engine_scaling.json", "output path for the scaling record")
	plist := flag.String("p", "1024,4096,65536", "comma-separated processor counts for the scaling matrix")
	counting := flag.Int("counting", 0, "run one BandwidthOnly counting world of this many ranks instead of the matrix")
	engine := flag.String("engine", "event", "engine for -counting runs")
	topoScaling := flag.Bool("topo", false, "record the topology charge-oracle scaling matrix instead of the engine matrix")
	flag.Parse()

	if *topoScaling && *out == "BENCH_engine_scaling.json" {
		*out = "BENCH_topo_scaling.json"
	}
	if err := run(*out, *plist, *counting, *engine, *topoScaling); err != nil {
		fmt.Fprintln(os.Stderr, "benchrec:", err)
		os.Exit(1)
	}
}

func run(out, plist string, counting int, engineName string, topoScaling bool) error {
	if counting > 0 {
		eng, err := machine.ParseEngine(engineName)
		if err != nil {
			return err
		}
		fmt.Printf("counting run: engine=%s P=%d\n", eng, counting)
		wall, stats, err := benchrec.CountingRun(eng, counting)
		if err != nil {
			return err
		}
		fmt.Printf("done in %v: %d messages, %.0f words, critical path %.0f\n",
			wall, stats.TotalMessages, stats.TotalWordsSent, stats.CriticalPath)
		return nil
	}

	ps, err := parsePs(plist)
	if err != nil {
		return err
	}
	if topoScaling {
		rec, err := benchrec.RunTopoScaling(ps, func(fabric string, p int) {
			fmt.Printf("bench: fabric=%s P=%d\n", fabric, p)
		})
		if err != nil {
			return err
		}
		for _, s := range rec.Samples {
			fmt.Printf("  %-18s P=%-6d %-5s build %10.0f ns  charge %8.1f ns/op %12.0f charges/s\n",
				s.Fabric, s.P, s.Mode, s.BuildNs, s.ChargeNsPerOp, s.ChargesPerSec)
		}
		if err := rec.WriteFile(out); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d samples)\n", out, len(rec.Samples))
		return nil
	}
	rec := benchrec.RunEngineScaling(ps, func(engine string, p int) {
		fmt.Printf("bench: engine=%s P=%d\n", engine, p)
	})
	for _, s := range rec.Samples {
		fmt.Printf("  %-9s P=%-6d %12.0f ns/op %12.0f msgs/s\n", s.Engine, s.P, s.NsPerOp, s.MsgsPerSec)
	}
	if err := rec.WriteFile(out); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d samples)\n", out, len(rec.Samples))
	return nil
}

func parsePs(plist string) ([]int, error) {
	var ps []int
	for _, f := range strings.Split(plist, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		p, err := strconv.Atoi(f)
		if err != nil || p <= 0 {
			return nil, fmt.Errorf("bad processor count %q", f)
		}
		ps = append(ps, p)
	}
	if len(ps) == 0 {
		return nil, fmt.Errorf("no processor counts in %q", plist)
	}
	return ps, nil
}
