// Command loadgen drives mixed traffic at a parmmd instance —
// /v1/lowerbound, /v1/predict, and generalized HBL /v1/bound envelopes
// plus inline and streaming /v1/plan sweeps — and records sustained
// throughput, latency percentiles, and the singleflight dedup evidence to
// BENCH_serving.json.
//
//	loadgen -duration 10s -clients 8 -out BENCH_serving.json
//
// With no -addr, an in-process parmmd serves on a loopback listener, so the
// run needs no external setup (this is what the CI smoke uses). Clients in
// the same 250 ms epoch issue identical plan requests over a fresh key
// space, so every epoch is a burst of concurrent cold misses — the workload
// singleflight coalescing exists for; the recorded cacheShared counter is
// the number of duplicate computations it absorbed. Exits non-zero when no
// request succeeds, making any short run a liveness assertion.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/benchrec"
	"repro/internal/service"
	"repro/internal/store"
)

// outcome is one request's measurement.
type outcome struct {
	endpoint string
	latency  time.Duration
	ok       bool
}

// client loops over the traffic mix until ctx is done, appending one
// outcome per request. epoch0 anchors the shared plan-epoch clock. With
// artifacts on, every eighth request is an artifact round trip: submit a
// traced simulation, poll the job, list its artifacts, and issue a ranged
// GET against the trace — the serving path for durable job outputs.
func client(ctx context.Context, base string, epoch0 time.Time, artifacts bool, out *[]outcome) {
	hc := &http.Client{}
	bodies := []struct{ endpoint, path, body string }{
		{"POST /v1/lowerbound", "/v1/lowerbound",
			`{"problems":[{"n1":9600,"n2":2400,"n3":600,"p":512},{"n1":2000,"n2":2000,"n3":2000,"p":64},{"n1":100,"n2":100,"n3":100,"p":8}]}`},
		{"POST /v1/predict", "/v1/predict",
			`{"problems":[{"n1":9600,"n2":2400,"n3":600,"p":512,"alpha":1e-6,"beta":1e-9,"gamma":1e-11},{"n1":64,"n2":64,"n3":64,"p":8,"beta":1}]}`},
		{"POST /v1/bound", "/v1/bound",
			`{"problems":[{"program":"A[i,k]*B[k,j] -> C[i,j] | i=9600 k=600 j=2400","p":512},` +
				`{"program":"F[i] += X[i]*Y[j] | i=4096 j=4096","p":64},` +
				`{"program":"A[a1,a2,c1]*B[c1,b1] -> C[a1,a2,b1] | a1=48 a2=48 c1=48 b1=48","p":27}]}`},
	}
	for i := 0; ctx.Err() == nil; i++ {
		var endpoint, path, body string
		stream := false
		if artifacts && i%8 == 5 {
			start := time.Now()
			ok := artifactRoundTrip(ctx, hc, base)
			*out = append(*out, outcome{endpoint: "artifact round-trip", latency: time.Since(start), ok: ok})
			continue
		}
		if i%4 == 3 {
			// Every client sleeps to the next epoch boundary and then fires
			// the identical plan request over a key space nobody has
			// computed before: a synchronized burst of concurrent cold
			// misses, the singleflight showcase. The large P range makes
			// each cold point a real divisor search, so the burst genuinely
			// overlaps in flight.
			const epochLen = 250 * time.Millisecond
			wait := epochLen - time.Since(epoch0)%epochLen
			select {
			case <-ctx.Done():
				return
			case <-time.After(wait):
			}
			epoch := int(time.Since(epoch0) / epochLen)
			endpoint, path = "POST /v1/plan", "/v1/plan"
			stream = epoch%4 == 3 // every fourth epoch exercises NDJSON
			body = fmt.Sprintf(
				`{"problems":[{"n1":2000,"n2":2000,"n3":2000,"mem":%d,"pMin":100000,"pMax":104999}],"stream":%v}`,
				10000+epoch, stream)
		} else {
			b := bodies[i%4]
			endpoint, path, body = b.endpoint, b.path, b.body
		}
		start := time.Now()
		ok := doRequest(ctx, hc, base+path, body, stream)
		*out = append(*out, outcome{endpoint: endpoint, latency: time.Since(start), ok: ok})
	}
}

// doRequest posts body and drains the response; streaming responses are
// read line by line so the measured latency includes the full sweep.
func doRequest(ctx context.Context, hc *http.Client, url, body string, stream bool) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return false
	}
	if stream {
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		n := 0
		for sc.Scan() {
			n++
		}
		return sc.Err() == nil && n > 0
	}
	_, err = io.Copy(io.Discard, resp.Body)
	return err == nil
}

// artifactRoundTrip drives the durable-artifact path end to end: a traced
// simulate job, the job poll loop, the artifact listing, and a ranged GET
// of the Chrome trace (which must answer 206 with at most the window).
func artifactRoundTrip(ctx context.Context, hc *http.Client, base string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/simulate",
		strings.NewReader(`{"n1":16,"n2":16,"n3":16,"p":4,"trace":true}`))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return false
	}
	var job struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	err = json.NewDecoder(resp.Body).Decode(&job)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		return false
	}
	for job.Status == "queued" || job.Status == "running" {
		select {
		case <-ctx.Done():
			return false
		case <-time.After(5 * time.Millisecond):
		}
		r, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+job.ID, nil)
		if err != nil {
			return false
		}
		resp, err = hc.Do(r)
		if err != nil {
			return false
		}
		err = json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			return false
		}
	}
	if job.Status != "done" {
		return false
	}
	r, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+job.ID+"/artifacts", nil)
	if err != nil {
		return false
	}
	resp, err = hc.Do(r)
	if err != nil {
		return false
	}
	var listing struct {
		Artifacts []struct {
			Name string `json:"name"`
		} `json:"artifacts"`
	}
	err = json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || len(listing.Artifacts) == 0 {
		return false
	}
	r, err = http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+job.ID+"/artifacts/trace.json", nil)
	if err != nil {
		return false
	}
	r.Header.Set("Range", "bytes=0-99")
	resp, err = hc.Do(r)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	n, err := io.Copy(io.Discard, resp.Body)
	return err == nil && resp.StatusCode == http.StatusPartialContent && n <= 100
}

func main() {
	addr := flag.String("addr", "", "parmmd base URL (e.g. http://127.0.0.1:8080); empty serves in-process")
	duration := flag.Duration("duration", 10*time.Second, "how long to sustain the load")
	clients := flag.Int("clients", 8, "concurrent load-generating clients")
	out := flag.String("out", "BENCH_serving.json", "output record path (empty: stdout only)")
	artifacts := flag.Bool("artifacts", false, "mix in artifact round trips (traced simulate job → listing → ranged GET); requires the target to run with artifact storage. Always on for the in-process server.")
	flag.Parse()

	base := *addr
	if base == "" {
		dir, err := os.MkdirTemp("", "loadgen-artifacts-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
		fs, err := store.NewFS(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		*artifacts = true
		srv := service.New(service.Config{
			PlanConcurrency:    *clients,
			ComputeConcurrency: 4 * *clients,
			// Keep the 5000-point epoch sweep inline unless the client asks
			// to stream, so both response modes appear in the mix.
			PlanInlineLimit: 8192,
			CacheSize:       1 << 16,
			ArtifactStore:   fs,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		defer srv.Shutdown(context.Background())
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "loadgen: in-process parmmd on %s\n", base)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	perClient := make([][]outcome, *clients)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client(ctx, base, start, *artifacts, &perClient[i])
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	latencies := make(map[string][]time.Duration)
	errors := make(map[string]int)
	total := 0
	for _, list := range perClient {
		for _, o := range list {
			if o.ok {
				latencies[o.endpoint] = append(latencies[o.endpoint], o.latency)
				total++
			} else {
				errors[o.endpoint]++
			}
		}
	}
	if total == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: no request succeeded")
		os.Exit(1)
	}

	rec := benchrec.NewServingRecord(*clients)
	rec.DurationSec = wall.Seconds()
	rec.TotalRequests = total
	rec.TotalRequestsPerSec = float64(total) / wall.Seconds()
	endpoints := make([]string, 0, len(latencies))
	for ep := range latencies {
		endpoints = append(endpoints, ep)
	}
	for ep := range errors {
		if _, ok := latencies[ep]; !ok {
			endpoints = append(endpoints, ep)
		}
	}
	sort.Strings(endpoints)
	for _, ep := range endpoints {
		rec.Samples = append(rec.Samples, benchrec.ServingSampleOf(ep, latencies[ep], errors[ep], wall))
	}

	var vars service.VarsResponse
	if resp, err := http.Get(base + "/debug/vars"); err == nil {
		err = json.NewDecoder(resp.Body).Decode(&vars)
		resp.Body.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: reading /debug/vars: %v\n", err)
		}
	} else {
		fmt.Fprintf(os.Stderr, "loadgen: reading /debug/vars: %v\n", err)
	}
	rec.PlanPoints = vars.PlanPoints
	rec.Overloads = vars.Overloads
	rec.Singleflight = benchrec.ServingSingleflight{
		CacheHits:   vars.CacheHits,
		CacheMisses: vars.CacheMisses,
		CacheShared: vars.CacheShared,
	}
	if d := vars.CacheMisses + vars.CacheShared; d > 0 {
		rec.Singleflight.DedupedPercent = 100 * float64(vars.CacheShared) / float64(d)
	}

	blob, _ := json.MarshalIndent(rec, "", "\t")
	fmt.Println(string(blob))
	if *out != "" {
		if err := rec.WriteFile(*out); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "loadgen: %d requests (%.0f req/s), %d shared memo flights, wrote %s\n",
			total, rec.TotalRequestsPerSec, vars.CacheShared, *out)
	}
}
