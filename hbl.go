package parmm

import (
	"math/big"

	"repro/internal/hbl"
)

// The generalized array-program layer: Hölder-Brascamp-Lieb communication
// lower bounds for any nested-loop program referencing arrays via subsets
// of the loop indices (Christ-Demmel-Knight-Scanlon-Yelick, arXiv
// 1308.0068). Matmul is the special case the rest of this package serves
// with closed forms; BoundForProgram handles tensor contractions, n-body,
// convolutions, and anything else the DSL expresses:
//
//	p, _ := parmm.ParseProgram("A[i,k]*B[k,j] -> C[i,j] | i=9600 k=600 j=2400")
//	b, _ := parmm.BoundForProgram(p, 512)
//	// b.Exponent == 2/3, b.LowerBound == parmm.LowerBound(dims, 512)

// Program is a typed nested-loop array program: loop indices (optionally
// with extents), array references with their index subsets, and an output
// designation.
type Program = hbl.Program

// ProgramArray is one array reference of a Program.
type ProgramArray = hbl.Array

// ProgramExponents is the exact solution of a program's HBL linear
// program: σ_HBL, per-array exponents, and the dual certificate, all in
// exact rationals with a zero duality gap.
type ProgramExponents = hbl.Exponents

// ProgramBound is the memory-independent communication lower bound for a
// program on P processors: the Theorem 3 generalization, with FreeArrays
// extending the paper's Case 1/2/3 index.
type ProgramBound = hbl.Bound

// ParseProgram parses the textual program DSL:
// "A[i,k]*B[k,j] -> C[i,j] | i=9600 k=600 j=2400" or loop-body style
// "C[i,j] += A[i,k]*B[k,j]". Failures wrap ErrBadProgram.
func ParseProgram(src string) (Program, error) { return hbl.ParseProgram(src) }

// SolveProgram computes the program's optimal HBL exponents exactly: the
// minimal σ = Σ s_j with every loop index covered by total exponent ≥ 1.
// The per-processor footprint bound is (volume/P)^{1/σ}.
func SolveProgram(p Program) (ProgramExponents, error) { return hbl.Solve(p) }

// BoundForProgram returns the memory-independent lower bound for the
// program on p processors: the optimal footprint under the HBL constraint
// and the Lemma 1 per-array access bounds, minus the one-copy footprint
// over P. The program must carry extents. On matmul and cuboid programs it
// reproduces LowerBound and the internal extension package exactly.
func BoundForProgram(prog Program, p int) (ProgramBound, error) {
	return hbl.MemIndependentBound(prog, p)
}

// ProgramSigma returns the program's σ_HBL as an exact rational.
func ProgramSigma(p Program) (*big.Rat, error) {
	e, err := hbl.Solve(p)
	if err != nil {
		return nil, err
	}
	return e.Sigma, nil
}

// MatMulProgram returns classical matmul C[i,j] += A[i,k]·B[k,j] as a
// Program (σ = 3/2, exponent 2/3, Theorem 3's constants).
func MatMulProgram(m, n, k int) Program { return hbl.MatMul(m, n, k) }

// CuboidProgram returns the d-dimensional cuboid computation of §6.3 —
// one array per omitted dimension — matching the internal extension
// package array-for-array (σ = d/(d−1)).
func CuboidProgram(dims ...int) Program { return hbl.Cuboid(dims...) }

// TensorContractionProgram returns a binary tensor contraction
// C[a…,b…] += A[a…,c…]·B[c…,b…] with the given free and contracted extent
// groups (σ = 3/2 whenever all groups are non-empty).
func TensorContractionProgram(freeA, freeB, contracted []int) Program {
	return hbl.TensorContraction(freeA, freeB, contracted)
}

// NBodyProgram returns the all-pairs n-body interaction F[i] += f(X[i],
// Y[j]) (σ = 2: the classic √(n²/P) footprint bound).
func NBodyProgram(n int) Program { return hbl.NBody(n) }

// Conv2DProgram returns a direct 2-D convolution over an h×w output and
// kh×kw kernel under the shift-dropping subset approximation (σ = 2); see
// the internal hbl package for the approximation's exact caveat.
func Conv2DProgram(h, w, kh, kw int) Program { return hbl.Conv2D(h, w, kh, kw) }
