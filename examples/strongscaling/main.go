// Strongscaling: fix a rectangular problem and sweep the processor count
// across the three regimes of Theorem 3, running Algorithm 1 with the best
// integer grid at every P. The per-processor bound is flat in Case 1,
// decays as P^{-1/2} in Case 2 and as P^{-2/3} in Case 3 — so the *total*
// communication grows, which is why strong scaling of communication
// eventually stalls (§6.2, Ballard et al. 2012b).
//
//	go run ./examples/strongscaling
package main

import (
	"fmt"
	"log"

	parmm "repro"
)

func main() {
	d := parmm.NewDims(768, 192, 48)
	a := parmm.RandomMatrix(d.N1, d.N2, 5)
	b := parmm.RandomMatrix(d.N2, d.N3, 6)
	want := parmm.Mul(a, b)

	fmt.Printf("strong scaling of Algorithm 1 on %v\n", d)
	fmt.Printf("%-6s %-12s %-10s %12s %12s %8s\n", "P", "case", "grid", "words/proc", "bound", "ratio")
	prevCase := parmm.Case(0)
	for p := 1; p <= 1024; p *= 2 {
		res, err := parmm.Alg1(a, b, p, parmm.Opts{Config: parmm.BandwidthOnly()})
		if err != nil {
			log.Fatal(err)
		}
		if res.C.MaxAbsDiff(want) > 1e-8 {
			log.Fatalf("P=%d: wrong product", p)
		}
		c := parmm.CaseOf(d, p)
		if c != prevCase {
			fmt.Printf("---- entering %v ----\n", c)
			prevCase = c
		}
		bound := parmm.LowerBound(d, p)
		ratio := 1.0
		if bound > 0 {
			ratio = res.CommCost() / bound
		}
		fmt.Printf("%-6d %-12v %-10v %12.0f %12.0f %8.3f\n",
			p, c, res.Grid, res.CommCost(), bound, ratio)
	}
	fmt.Println("\nnote: ratios exceed 1 only where no integer grid divides the dimensions;")
	fmt.Println("through Case 1 the bound approaches the flat leading term nk — every")
	fmt.Println("processor still needs the whole smallest matrix — then falls as P^(-1/2)")
	fmt.Println("in Case 2 and P^(-2/3) in Case 3.")
}
