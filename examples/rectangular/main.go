// Rectangular: the paper's Figure 2 scenario. A 9600×2400 by 2400×600
// multiplication (scaled 1/12.5 to 768×192×48 for a fast simulation —
// same aspect ratios, same thresholds m/n = 4 and mn/k² = 64) is run at
// P = 3 (1D case), P = 36 (2D case) and P = 512 (3D case), showing the
// optimal grid, which matrices move, and exact attainment of Theorem 3.
//
//	go run ./examples/rectangular
package main

import (
	"fmt"
	"log"

	parmm "repro"
)

func main() {
	d := parmm.NewDims(768, 192, 48)
	a := parmm.RandomMatrix(d.N1, d.N2, 11)
	b := parmm.RandomMatrix(d.N2, d.N3, 12)
	want := parmm.Mul(a, b)

	t1, t2 := parmm.Thresholds(d)
	fmt.Printf("problem %v: thresholds m/n = %.0f, mn/k² = %.0f\n\n", d, t1, t2)

	for _, p := range []int{3, 36, 512} {
		g, err := parmm.CaseGrid(d, p)
		if err != nil {
			log.Fatal(err)
		}
		res, err := parmm.Alg1(a, b, p, parmm.Opts{Config: parmm.BandwidthOnly(), Grid: g})
		if err != nil {
			log.Fatal(err)
		}
		if res.C.MaxAbsDiff(want) > 1e-8 {
			log.Fatalf("P=%d: wrong product", p)
		}
		bound := parmm.LowerBound(d, p)
		moved := ""
		if g.P3 > 1 {
			moved += "A "
		}
		if g.P1 > 1 {
			moved += "B "
		}
		if g.P2 > 1 {
			moved += "C"
		}
		fmt.Printf("P=%-4d %-12v grid %-8v local brick %4dx%3dx%2d  moves: %-6s",
			p, parmm.CaseOf(d, p), g, d.N1/g.P1, d.N2/g.P2, d.N3/g.P3, moved)
		fmt.Printf("  measured %7.0f = bound %7.0f (ratio %.6f)\n",
			res.CommCost(), bound, res.CommCost()/bound)
	}
	fmt.Println("\nAlgorithm 1 attains the lower bound word-for-word in all three cases.")
}
