// Quickstart: multiply two square matrices on a simulated 64-processor
// machine with the paper's Algorithm 1 and check the measured
// communication against Corollary 4's lower bound 3n²/P^{2/3} − 3n²/P.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	parmm "repro"
)

func main() {
	const n, p = 96, 64

	// Inputs: deterministic pseudo-random matrices.
	a := parmm.RandomMatrix(n, n, 1)
	b := parmm.RandomMatrix(n, n, 2)

	// The lower bound: square multiplication is always in Case 3, so the
	// bound is Corollary 4's 3n²/P^{2/3} − 3n²/P.
	d := parmm.SquareDims(n)
	bound := parmm.Corollary4(n, p)
	fmt.Printf("problem: %v on P = %d (%v)\n", d, p, parmm.CaseOf(d, p))
	fmt.Printf("Corollary 4 bound: %.0f words per processor\n", bound)

	// The optimal grid for a cube number of processors is cubic.
	g := parmm.OptimalGrid(d, p)
	fmt.Printf("optimal grid: %v (eq.(3) predicts %.0f words)\n", g, parmm.GridCommCost(d, g))

	// Run Algorithm 1 on the simulated machine, charging 1 per word.
	res, err := parmm.Alg1(a, b, p, parmm.Opts{Config: parmm.BandwidthOnly(), Grid: g})
	if err != nil {
		log.Fatal(err)
	}

	// Verify the product against a serial reference.
	if diff := res.C.MaxAbsDiff(parmm.Mul(a, b)); diff > 1e-9 {
		log.Fatalf("wrong product: max diff %g", diff)
	}

	fmt.Printf("measured: %.0f words per processor (%.4fx the bound)\n",
		res.CommCost(), res.CommCost()/bound)
	fmt.Printf("total traffic: %.0f words in %d messages; critical path %.0f\n",
		res.Stats.TotalWordsSent, res.Stats.TotalMessages, res.Stats.CriticalPath)
	fmt.Println("product verified against the serial reference ✓")
}
