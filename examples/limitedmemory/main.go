// Limitedmemory: the §6.2 story. For a square problem under a per-processor
// memory cap, the memory-dependent bound 2mnk/(P√M) binds at small P and
// the memory-independent Theorem 3 bound takes over beyond the crossover
// P = (8/27)·mnk/M^{3/2}. The 2.5D algorithm family walks this trade-off in
// practice: more replication layers c → more memory, less communication —
// demonstrated here with simulated runs at several c.
//
//	go run ./examples/limitedmemory
package main

import (
	"fmt"
	"log"

	parmm "repro"
)

func main() {
	// Part 1: where each bound binds (pure analysis, paper-scale problem).
	d := parmm.SquareDims(1200)
	mem := 67500.0
	cross := parmm.StrongScalingLimit(d, mem)
	fmt.Printf("problem %v with M = %.0f words/processor\n", d, mem)
	fmt.Printf("crossover P = (8/27)mnk/M^(3/2) = %.1f\n\n", cross)
	fmt.Printf("%-8s %18s %18s  %s\n", "P", "Theorem 3 (D)", "2mnk/(P*sqrt(M))", "binding")
	for p := 4; p <= 4096; p *= 4 {
		mi := parmm.DataFootprint(d, p)
		md := parmm.MemoryDependentLowerBound(d, p, mem)
		binding := "memory-independent"
		if md > mi {
			binding = "memory-dependent"
		}
		fmt.Printf("%-8d %18.0f %18.0f  %s\n", p, mi, md, binding)
	}

	// Part 2: the 2.5D trade-off measured in simulation.
	fmt.Println("\n2.5D replication trade-off (n=64, P=256, simulated):")
	fmt.Printf("%-4s %12s %12s %16s\n", "c", "words/proc", "peak memory", "memory x volume")
	n, p := 64, 256
	a := parmm.RandomMatrix(n, n, 8)
	b := parmm.RandomMatrix(n, n, 9)
	want := parmm.Mul(a, b)
	for _, c := range []int{1, 4} {
		res, err := parmm.TwoPointFiveD(a, b, p, parmm.Opts{Config: parmm.BandwidthOnly(), Layers: c})
		if err != nil {
			log.Fatal(err)
		}
		if res.C.MaxAbsDiff(want) > 1e-9 {
			log.Fatalf("c=%d: wrong product", c)
		}
		fmt.Printf("%-4d %12.0f %12.0f %16.0f\n",
			c, res.CommCost(), res.Stats.MaxPeakMemory,
			res.CommCost()*res.Stats.MaxPeakMemory)
	}
	fmt.Println("\nmore layers: more memory, less communication — exactly the regime where")
	fmt.Println("Theorem 3 is the binding bound and Algorithm 1's 3D footprint requires")
	fmt.Println("M >= 3(mnk/P)^(2/3); below (4/9)(mnk/P)^(2/3) only 2.5D-style algorithms apply.")
}
