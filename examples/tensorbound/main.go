// Tensorbound: the paper's §6.3 extension in action, driven through the
// generalized HBL array-program engine. The 4-dimensional cuboid
// computation — three input arrays and one output, array j indexed by all
// dims except j — is declared as a typed hbl.Program; the exact-rational
// LP solver recovers σ_HBL = 4/3 (every s_j = 1/3), and the
// memory-independent constant layer reproduces the dedicated
// internal/extension water-filling bound bit-for-bit. The generalized
// All-Gather/Reduce-Scatter algorithm then attains the bound exactly in
// simulation.
//
//	go run ./examples/tensorbound
package main

import (
	"fmt"
	"log"

	"repro/internal/extension"
	"repro/internal/hbl"
	"repro/internal/machine"
)

func main() {
	dims := []int{32, 16, 16, 8}

	// The same computation, declared twice: as the dedicated cuboid
	// problem of internal/extension, and as a generic array program.
	pr, err := extension.NewProblem(dims...)
	if err != nil {
		log.Fatal(err)
	}
	prog := hbl.Cuboid(dims...)
	exp, err := hbl.Solve(prog)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("4-dimensional cuboid computation, dims %v\n", pr.N)
	fmt.Printf("as an array program: %s\n", prog)
	fmt.Printf("HBL exponents: σ = %s (each array s_j = %s), footprint exponent 1/σ = %s\n",
		exp.Sigma.RatString(), exp.S[0].RatString(), exp.BoundExponent().RatString())
	fmt.Printf("total one-copy data: %.0f words, %.0f multiply-accumulates\n\n", pr.TotalWords(), pr.Volume())

	fmt.Printf("%-8s %-12s %-10s %14s %14s %10s %14s\n",
		"P", "free vars", "grid", "measured", "bound", "ratio", "KKT residual")
	for _, p := range []int{1, 4, 16, 64} {
		// The generic engine must agree with the dedicated solver
		// bit-for-bit: same share, same water-filling arithmetic.
		b, err := hbl.MemIndependentBound(prog, p)
		if err != nil {
			log.Fatal(err)
		}
		footprint, free := pr.DataFootprint(p)
		bound := pr.LowerBound(p)
		if b.Footprint != footprint || b.LowerBound != bound || b.FreeArrays != free {
			log.Fatalf("P=%d: HBL engine (footprint %v, bound %v, free %d) != extension (%v, %v, %d)",
				p, b.Footprint, b.LowerBound, b.FreeArrays, footprint, bound, free)
		}
		for j := range prog.Arrays {
			if got, want := prog.ArraySize(j), pr.ArraySize(j); got != want {
				log.Fatalf("P=%d: array %d size %v != %v", p, j, got, want)
			}
		}

		g := extension.Optimal(pr, p)
		res, err := extension.Run(pr, g, 13, machine.BandwidthOnly())
		if err != nil {
			log.Fatal(err)
		}
		// Verify against the serial reference.
		want := extension.Serial(pr, 13)
		out := want.Data[pr.D()-1]
		for i := range out {
			if diff := res.Output[i] - out[i]; diff > 1e-8 || diff < -1e-8 {
				log.Fatalf("P=%d: wrong result at %d", p, i)
			}
		}
		ratio := 1.0
		if bound > 0 {
			ratio = res.Stats.CommCost() / bound
		}
		fmt.Printf("%-8d %-12s %-10v %14.0f %14.0f %10.4f %14.2e\n",
			p, fmt.Sprintf("%d of 4", free), g, res.Stats.CommCost(), bound, ratio, pr.KKTCertificate(p))
	}
	fmt.Println("\ngeneric HBL engine and dedicated §6.3 solver agree bit-exactly at every P.")
	fmt.Println("the d = 3 instance of this machinery is exactly Theorem 3; the case")
	fmt.Println("structure generalizes to 'how many arrays are pinned at their access bounds'.")
}
