// Tensorbound: the paper's §6.3 extension in action. The lower-bound
// technique — sum of projections, Loomis-Whitney product constraint,
// per-array access bounds, solved by water-filling — applies verbatim to
// higher-dimensional cuboid iteration spaces. Here a 4-dimensional
// computation (three input arrays and one output, each omitting one index)
// gets its generalized bound, and the generalized
// All-Gather/Reduce-Scatter algorithm attains it exactly in simulation.
//
//	go run ./examples/tensorbound
package main

import (
	"fmt"
	"log"

	"repro/internal/extension"
	"repro/internal/machine"
)

func main() {
	pr, err := extension.NewProblem(32, 16, 16, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4-dimensional cuboid computation, dims %v\n", pr.N)
	fmt.Printf("arrays: 3 inputs + 1 output, array j indexed by all dims except j\n")
	fmt.Printf("total one-copy data: %.0f words, %.0f multiply-accumulates\n\n", pr.TotalWords(), pr.Volume())

	fmt.Printf("%-8s %-12s %-10s %14s %14s %10s %14s\n",
		"P", "free vars", "grid", "measured", "bound", "ratio", "KKT residual")
	for _, p := range []int{1, 4, 16, 64} {
		g := extension.Optimal(pr, p)
		res, err := extension.Run(pr, g, 13, machine.BandwidthOnly())
		if err != nil {
			log.Fatal(err)
		}
		// Verify against the serial reference.
		want := extension.Serial(pr, 13)
		out := want.Data[pr.D()-1]
		for i := range out {
			if diff := res.Output[i] - out[i]; diff > 1e-8 || diff < -1e-8 {
				log.Fatalf("P=%d: wrong result at %d", p, i)
			}
		}
		_, free := pr.DataFootprint(p)
		bound := pr.LowerBound(p)
		ratio := 1.0
		if bound > 0 {
			ratio = res.Stats.CommCost() / bound
		}
		fmt.Printf("%-8d %-12s %-10v %14.0f %14.0f %10.4f %14.2e\n",
			p, fmt.Sprintf("%d of 4", free), g, res.Stats.CommCost(), bound, ratio, pr.KKTCertificate(p))
	}
	fmt.Println("\nthe d = 3 instance of this machinery is exactly Theorem 3; the case")
	fmt.Println("structure generalizes to 'how many arrays are pinned at their access bounds'.")
}
