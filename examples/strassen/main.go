// Strassen: the §2.3 fast-matmul regime, executably. Classical algorithms
// are floored by Theorem 3's 3(n³/P)^{2/3}; Strassen-like algorithms
// perform fewer multiplications and live under the lower fast floor
// n²/P^{2/ω0} (ω0 = log₂ 7). This example runs Communication-Avoiding
// Parallel Strassen (BFS steps) on 1, 7, and 49 simulated processors,
// verifies the product classically, and compares the measured volumes with
// both floors.
//
//	go run ./examples/strassen
package main

import (
	"fmt"
	"log"

	"repro/internal/caps"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/matrix"
)

func main() {
	n := 56
	a := matrix.Random(n, n, 1)
	b := matrix.Random(n, n, 2)
	want := matrix.Mul(a, b)

	fmt.Printf("CAPS (parallel Strassen) on %dx%d matrices\n\n", n, n)
	fmt.Printf("%-4s %-8s %20s %20s %24s\n", "P", "levels", "measured words/proc", "fast floor n²/P^0.712", "classical floor 3(n³/P)^⅔")
	p := 1
	for levels := 0; levels <= 2; levels++ {
		res, err := caps.Multiply(a, b, levels, machine.BandwidthOnly())
		if err != nil {
			log.Fatal(err)
		}
		if res.C.MaxAbsDiff(want) > 1e-8*float64(n) {
			log.Fatalf("levels=%d: wrong product", levels)
		}
		classical := 0.0
		if p > 1 {
			classical = 3 * core.LeadingTerm(core.Square(n), p)
		}
		fmt.Printf("%-4d %-8d %20.0f %20.0f %24.0f\n",
			p, levels, res.CommCost(), caps.FastLeadingTerm(n, p), classical)
		p *= 7
	}
	fmt.Println("\nper-rank volumes equal the BFS schedule's counting twin exactly, and the")
	fmt.Println("volume decays with the fast exponent 2/log2(7) ≈ 0.712 instead of 2/3 —")
	fmt.Println("Theorem 3 constrains classical algorithms only, which is why the paper's")
	fmt.Println("§2.3 separates the two regimes.")
}
