GO ?= go

.PHONY: build test race bench-engines bench-serving bench-topo paper

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/machine/... ./internal/collective/... \
		./internal/experiments/... ./internal/obs/... ./internal/topo/... \
		./internal/plan/... ./internal/service/... ./internal/store/... \
		./internal/hbl/...

# Record the goroutine-vs-event scheduler head-to-head matrix
# (P = 1024, 4096, 65536) to BENCH_engine_scaling.json. Same cells as
# `go test -bench EngineScaling`; see "Event engine" in DESIGN.md.
bench-engines:
	$(GO) run ./cmd/benchrec -out BENCH_engine_scaling.json

# Record serving throughput, latency percentiles, and singleflight dedup
# evidence to BENCH_serving.json by driving mixed traffic at an in-process
# parmmd; see "Planner & serving levers" in DESIGN.md.
bench-serving:
	$(GO) run ./cmd/loadgen -duration 15s -clients 8 -out BENCH_serving.json

# Record topology charge-oracle construction time and Charge throughput
# per fabric (P = 1024, 4096, 65536; table mode below 2048 ranks, O(hops)
# walk mode above) to BENCH_topo_scaling.json; see "Topology at scale" in
# DESIGN.md.
bench-topo:
	$(GO) run ./cmd/benchrec -topo -out BENCH_topo_scaling.json

paper:
	$(GO) run ./cmd/paper
