package parmm

import (
	"fmt"
	"math"
	"testing"
)

// TestPublicAPIEndToEnd exercises the quick-start path from the package
// documentation: bound, grid, simulated run, exact attainment.
func TestPublicAPIEndToEnd(t *testing.T) {
	d := NewDims(768, 192, 48)
	p := 512
	g, err := CaseGrid(d, p)
	if err != nil {
		t.Fatal(err)
	}
	a := RandomMatrix(768, 192, 1)
	b := RandomMatrix(192, 48, 2)
	res, err := Alg1(a, b, p, Opts{Config: BandwidthOnly(), Grid: g})
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.C.MaxAbsDiff(Mul(a, b)); diff > 1e-7 {
		t.Fatalf("wrong product: %g", diff)
	}
	bound := LowerBound(d, p)
	if math.Abs(res.CommCost()-bound) > 1e-9*bound {
		t.Fatalf("cost %v, bound %v", res.CommCost(), bound)
	}
	if math.Abs(GridCommCost(d, g)-bound) > 1e-9*bound {
		t.Fatalf("eq.(3) %v, bound %v", GridCommCost(d, g), bound)
	}
}

func TestPublicBoundsSurface(t *testing.T) {
	d := NewDims(9600, 2400, 600)
	if CaseOf(d, 3) != Case1 || CaseOf(d, 36) != Case2 || CaseOf(d, 512) != Case3 {
		t.Fatal("CaseOf broken")
	}
	t1, t2 := Thresholds(d)
	if t1 != 4 || t2 != 64 {
		t.Fatal("Thresholds broken")
	}
	if LowerBound(d, 1) != 0 || DataFootprint(d, 1) != d.InputOutputWords() {
		t.Fatal("P=1 bound broken")
	}
	if math.Abs(Corollary4(100, 8)-LowerBound(SquareDims(100), 8)) > 1e-9 {
		t.Fatal("Corollary4 disagrees with Theorem 3")
	}
	if LeadingTerm(d, 3) != 2400*600 {
		t.Fatal("LeadingTerm broken")
	}
	if MemoryDependentLowerBound(d, 64, 1e6) <= 0 {
		t.Fatal("memory-dependent bound broken")
	}
	if StrongScalingLimit(d, 1e6) <= 0 {
		t.Fatal("strong-scaling limit broken")
	}
	if OptimalGrid(d, 512).Size() != 512 {
		t.Fatal("OptimalGrid broken")
	}
}

func TestPublicAlgorithms(t *testing.T) {
	a := RandomMatrix(16, 16, 3)
	b := RandomMatrix(16, 16, 4)
	want := Mul(a, b)
	runs := []struct {
		name string
		run  func() (*Result, error)
	}{
		{"Alg1", func() (*Result, error) { return Alg1(a, b, 8, Opts{Config: BandwidthOnly()}) }},
		{"AllToAll3D", func() (*Result, error) { return AllToAll3D(a, b, 8, Opts{Config: BandwidthOnly()}) }},
		{"OneD", func() (*Result, error) { return OneD(a, b, 4, Opts{Config: BandwidthOnly()}) }},
		{"SUMMA", func() (*Result, error) { return SUMMA(a, b, 4, Opts{Config: BandwidthOnly()}) }},
		{"Cannon", func() (*Result, error) { return Cannon(a, b, 4, Opts{Config: BandwidthOnly()}) }},
		{"TwoPointFiveD", func() (*Result, error) { return TwoPointFiveD(a, b, 8, Opts{Config: BandwidthOnly(), Layers: 2}) }},
	}
	for _, r := range runs {
		res, err := r.run()
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		if diff := res.C.MaxAbsDiff(want); diff > 1e-9 {
			t.Fatalf("%s: wrong product (%g)", r.name, diff)
		}
	}
}

func TestRunAllExperiments(t *testing.T) {
	arts, err := RunAllExperiments()
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) == 0 {
		t.Fatal("no experiments")
	}
}

// ExampleLowerBound demonstrates the three-case bound on the paper's
// Figure 2 instance.
func ExampleLowerBound() {
	d := NewDims(9600, 2400, 600)
	for _, p := range []int{3, 36, 512} {
		fmt.Printf("P=%d %v bound=%.0f words\n", p, CaseOf(d, p), LowerBound(d, p))
	}
	// Output:
	// P=3 Case 1 (1D) bound=960000 words
	// P=36 Case 2 (2D) bound=760000 words
	// P=512 Case 3 (3D) bound=210937 words
}

func TestPublicFastAndExtensionSurface(t *testing.T) {
	// CAPS end to end.
	a := RandomMatrix(16, 16, 1)
	b := RandomMatrix(16, 16, 2)
	res, err := CAPS(a, b, 1, BandwidthOnly())
	if err != nil {
		t.Fatal(err)
	}
	if res.C.MaxAbsDiff(Mul(a, b)) > 1e-9 {
		t.Fatal("CAPS wrong product")
	}
	if FastMatmulLowerBound(64, 49, 3) <= FastMatmulLowerBound(64, 49, 2.807354922) {
		t.Fatal("fast bound ordering wrong")
	}
	// Cuboid extension.
	pr, err := NewCuboidProblem(8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(CuboidLowerBound(pr, 8)-LowerBound(SquareDims(8), 8)) > 1e-9 {
		t.Fatal("d=3 cuboid bound should equal Theorem 3")
	}
	// Runtime model.
	d := SquareDims(48)
	g := Grid{P1: 4, P2: 4, P3: 4}
	pred := PredictAlg1Time(d, g, MachineConfig{Beta: 1})
	if math.Abs(pred.Words-LowerBound(d, 64)) > 1e-9 {
		t.Fatalf("prediction words %v, bound %v", pred.Words, LowerBound(d, 64))
	}
}
