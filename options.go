package parmm

import (
	"repro/internal/collective"
	"repro/internal/machine"
)

// Engine selects the scheduling backend of the simulated machine. The
// choice affects only wall-clock performance and capacity — every
// simulated observable is bit-identical across engines.
type Engine = machine.Engine

// The execution engines.
const (
	// EngineGoroutine runs one goroutine per simulated rank — the default
	// and the reference implementation, capped at 2^21−1 ranks.
	EngineGoroutine = machine.EngineGoroutine
	// EngineEvent multiplexes ranks onto a small worker pool, suspending
	// them at the blocking points. Use it for cluster-scale runs: P=65536
	// full simulations interactively, P ≥ 10^6 for communication counting.
	EngineEvent = machine.EngineEvent
)

// ParseEngine resolves an engine name ("goroutine" or "event"; empty
// selects the default goroutine engine). Unknown names wrap ErrBadOpts.
func ParseEngine(name string) (Engine, error) { return machine.ParseEngine(name) }

// Collective selects the collective-algorithm family used by the simulated
// runs (see internal/collective): Auto picks recursive doubling/halving for
// power-of-two group sizes and ring algorithms otherwise.
type Collective = collective.Algorithm

// The collective families.
const (
	// CollectiveAuto dispatches per group: recursive doubling/halving on
	// power-of-two sizes, ring otherwise. The default.
	CollectiveAuto = collective.Auto
	// CollectiveRing forces the ring algorithms (p−1 steps).
	CollectiveRing = collective.Ring
	// CollectiveRecursive forces recursive doubling/halving (group sizes
	// must be powers of two).
	CollectiveRecursive = collective.Recursive
)

// Option configures a simulated run; build an Opts with NewOpts. This is
// the recommended construction path — it composes and stays
// source-compatible as fields are added. Filling the Opts struct directly
// remains supported as the low-level path.
type Option func(*Opts)

// NewOpts builds an Opts from functional options. The zero Opts (no
// options) charges nothing per word, so most callers start with
// WithConfig(BandwidthOnly()) or an explicit α-β-γ model.
func NewOpts(options ...Option) Opts {
	var o Opts
	for _, opt := range options {
		opt(&o)
	}
	return o
}

// WithConfig sets the machine cost model.
func WithConfig(cfg MachineConfig) Option { return func(o *Opts) { o.Config = cfg } }

// WithGrid fixes the processor grid for the 3D algorithms; without it the
// eq. (3)-optimal grid is chosen.
func WithGrid(g Grid) Option { return func(o *Opts) { o.Grid = g } }

// WithCollective selects the collective implementation family.
func WithCollective(alg Collective) Option { return func(o *Opts) { o.Collective = alg } }

// WithLayers sets the replication factor c for TwoPointFiveD.
func WithLayers(c int) Option { return func(o *Opts) { o.Layers = c } }

// WithWorkers bounds local matmul parallelism inside each simulated rank.
func WithWorkers(n int) Option { return func(o *Opts) { o.Workers = n } }

// WithTopology runs the simulation on a concrete interconnect (built with
// ParseTopology): every message is priced through its route and the
// fabric's contention factors instead of the uniform α-β charge.
func WithTopology(t Topology) Option { return func(o *Opts) { o.Topo = t } }

// WithPlacement selects how grid ranks embed into the topology's endpoints;
// the default is PlaceContiguous. Only meaningful together with
// WithTopology.
func WithPlacement(p Placement) Option { return func(o *Opts) { o.Place = p } }

// WithTrace enables event tracing (returned in Result.Trace).
func WithTrace() Option { return func(o *Opts) { o.Trace = true } }

// WithTraffic enables per-pair traffic accounting (returned in
// Result.Traffic).
func WithTraffic() Option { return func(o *Opts) { o.Traffic = true } }

// WithEngine selects the simulator's scheduling backend; the default is
// EngineGoroutine. Results are bit-identical across engines.
func WithEngine(e Engine) Option { return func(o *Opts) { o.Engine = e } }
