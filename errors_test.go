package parmm

import (
	"context"
	"errors"
	"math"
	"testing"
)

// TestErrorTaxonomy pins the v1 contract: every rejection from the public
// API wraps one of the exported sentinels, so callers dispatch with
// errors.Is instead of string matching. Each entry exercises one former
// string-error site.
func TestErrorTaxonomy(t *testing.T) {
	bw := Opts{Config: BandwidthOnly()}
	sq := func(n int, seed uint64) *Matrix { return RandomMatrix(n, n, seed) }
	cases := []struct {
		name string
		want error
		run  func() error
	}{
		{"CaseGrid non-conforming", ErrGridMismatch, func() error {
			_, err := CaseGrid(NewDims(1000, 999, 998), 7)
			return err
		}},
		{"Alg1 wrong grid size", ErrGridMismatch, func() error {
			_, err := Alg1(sq(8, 1), sq(8, 2), 4, Opts{Config: BandwidthOnly(), Grid: Grid{P1: 3, P2: 1, P3: 1}})
			return err
		}},
		{"Alg1 grid exceeds dims", ErrGridMismatch, func() error {
			_, err := Alg1(RandomMatrix(2, 8, 1), RandomMatrix(8, 8, 2), 4, Opts{Config: BandwidthOnly(), Grid: Grid{P1: 4, P2: 1, P3: 1}})
			return err
		}},
		{"Alg1 inner dims disagree", ErrBadDims, func() error {
			_, err := Alg1(RandomMatrix(4, 5, 1), RandomMatrix(6, 4, 2), 2, bw)
			return err
		}},
		{"OneD too many processors", ErrBadProcessorCount, func() error {
			_, err := OneD(sq(4, 1), sq(4, 2), 8, bw)
			return err
		}},
		{"SUMMA indivisible steps", ErrGridMismatch, func() error {
			_, err := SUMMA(RandomMatrix(6, 5, 1), RandomMatrix(5, 6, 2), 4, bw)
			return err
		}},
		{"Cannon non-square P", ErrBadProcessorCount, func() error {
			_, err := Cannon(sq(8, 1), sq(8, 2), 6, bw)
			return err
		}},
		{"Cannon indivisible dims", ErrGridMismatch, func() error {
			_, err := Cannon(sq(5, 1), sq(5, 2), 4, bw)
			return err
		}},
		{"CARMA non-power-of-two P", ErrBadProcessorCount, func() error {
			_, err := CARMA(sq(8, 1), sq(8, 2), 6, bw)
			return err
		}},
		{"TwoPointFiveD non-square dims", ErrBadDims, func() error {
			_, err := TwoPointFiveD(RandomMatrix(4, 8, 1), RandomMatrix(8, 4, 2), 4, bw)
			return err
		}},
		{"TwoPointFiveD P not q^2·c", ErrBadProcessorCount, func() error {
			_, err := TwoPointFiveD(sq(12, 1), sq(12, 2), 6, bw)
			return err
		}},
		{"Alg1LowMem zero chunks", ErrBadOpts, func() error {
			_, err := Alg1LowMem(sq(8, 1), sq(8, 2), 4, 0, bw)
			return err
		}},
		{"CAPS non-square dims", ErrBadDims, func() error {
			_, err := CAPS(RandomMatrix(4, 8, 1), RandomMatrix(8, 4, 2), 1, BandwidthOnly())
			return err
		}},
		{"CAPS negative levels", ErrBadProcessorCount, func() error {
			_, err := CAPS(sq(8, 1), sq(8, 2), -1, BandwidthOnly())
			return err
		}},
		{"CAPS indivisible dims", ErrGridMismatch, func() error {
			_, err := CAPS(sq(6, 1), sq(6, 2), 2, BandwidthOnly())
			return err
		}},
		{"Opts negative workers", ErrBadOpts, func() error {
			return Opts{Workers: -1}.Validate()
		}},
		{"Opts bad pinned grid", ErrGridMismatch, func() error {
			return NewOpts(WithGrid(Grid{P1: -1, P2: 2, P3: 2})).Validate()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			if err == nil {
				t.Fatal("expected an error")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("errors.Is(%v, %v) = false", err, tc.want)
			}
		})
	}
}

// TestFunctionalOptions: NewOpts with the With* options must build the same
// Opts as the low-level struct literal, and the two paths must drive the
// simulator to bit-identical costs.
func TestFunctionalOptions(t *testing.T) {
	d := NewDims(768, 192, 48)
	p := 512
	g, err := CaseGrid(d, p)
	if err != nil {
		t.Fatal(err)
	}
	built := NewOpts(
		WithConfig(BandwidthOnly()),
		WithGrid(g),
		WithCollective(CollectiveRing),
		WithWorkers(2),
		WithTrace(),
		WithTraffic(),
	)
	literal := Opts{
		Config:     BandwidthOnly(),
		Grid:       g,
		Collective: CollectiveRing,
		Workers:    2,
		Trace:      true,
		Traffic:    true,
	}
	if built != literal {
		t.Fatalf("NewOpts built %+v, struct literal %+v", built, literal)
	}
	if err := built.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if o := NewOpts(WithLayers(3)); o.Layers != 3 {
		t.Fatalf("WithLayers: %+v", o)
	}

	a := RandomMatrix(768, 192, 1)
	b := RandomMatrix(192, 48, 2)
	r1, err := Alg1(a, b, p, built)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Alg1(a, b, p, literal)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CommCost() != r2.CommCost() {
		t.Fatalf("option-built run cost %v, struct-built %v", r1.CommCost(), r2.CommCost())
	}
	if math.IsNaN(r1.CommCost()) || r1.CommCost() <= 0 {
		t.Fatalf("degenerate cost %v", r1.CommCost())
	}
}

// TestRunAllExperimentsContextCancelled: a cancelled context stops the
// suite before any heavy work and surfaces the context's own error.
func TestRunAllExperimentsContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	arts, err := RunAllExperimentsContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(arts) != 0 {
		t.Fatalf("cancelled run produced %d artifacts", len(arts))
	}
}
