package bsp

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
)

func TestMachineBasics(t *testing.T) {
	m := New(3, 2, 10)
	s1 := m.Step()
	s1.Send(0, 1, 5)
	s1.Send(2, 1, 3) // proc 1 receives 8: h = 8
	s1.Compute(2, 100)
	s2 := m.Step()
	s2.Send(1, 0, 4)
	c := m.Cost()
	if c.Supersteps != 2 {
		t.Fatalf("supersteps = %d", c.Supersteps)
	}
	if c.HSum != 12 {
		t.Fatalf("HSum = %v, want 12", c.HSum)
	}
	if c.Flops != 100 {
		t.Fatalf("flops = %v", c.Flops)
	}
	if c.Total != 2*12+10*2+100 {
		t.Fatalf("total = %v", c.Total)
	}
	if m.ReceivedTotal(1) != 8 || m.ReceivedTotal(0) != 4 || m.MaxReceivedTotal() != 8 {
		t.Fatal("received accounting wrong")
	}
}

func TestMachinePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 1, 1) },
		func() { New(2, 1, 1).Step().Send(0, 5, 1) },
		func() { New(2, 1, 1).Step().Send(0, 1, -1) },
		func() { New(2, 1, 1).Step().Compute(7, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestAlg1BSPVolumesMatchTheorem3: the BSP schedule of Algorithm 1 moves
// exactly the Theorem 3 volume per processor — the bounds are
// model-robust — in all three cases, for both collective families.
func TestAlg1BSPVolumesMatchTheorem3(t *testing.T) {
	d := core.NewDims(768, 192, 48)
	for _, p := range []int{2, 3, 4, 16, 36, 64, 512} {
		g, err := grid.CaseGrid(d, p)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		for _, recursive := range []bool{false, true} {
			_, m := Alg1BSP(d, g, 1, 0, recursive)
			got := m.MaxReceivedTotal()
			want := core.LowerBound(d, p)
			if math.Abs(got-want) > 1e-9*(1+want) {
				t.Errorf("P=%d recursive=%v: BSP volume %v, bound %v", p, recursive, got, want)
			}
		}
	}
}

// TestAlg1BSPHRelations: with balanced fibers the per-superstep h-relation
// equals what any single processor sends, so HSum equals the per-processor
// volume as well.
func TestAlg1BSPHRelations(t *testing.T) {
	d := core.NewDims(768, 192, 48)
	g, _ := grid.CaseGrid(d, 512)
	cost, m := Alg1BSP(d, g, 1, 0, true)
	if math.Abs(cost.HSum-m.MaxReceivedTotal()) > 1e-9 {
		t.Fatalf("HSum %v != max received %v (balanced schedule)", cost.HSum, m.MaxReceivedTotal())
	}
	// Superstep count: log2 of each fiber + 1 compute step.
	want := log2(g.P3) + log2(g.P1) + log2(g.P2) + 1
	if cost.Supersteps != want {
		t.Fatalf("supersteps = %d, want %d", cost.Supersteps, want)
	}
}

func TestAlg1BSPRingMoreSupersteps(t *testing.T) {
	d := core.Square(64)
	g := grid.Grid{P1: 4, P2: 4, P3: 4}
	rec, _ := Alg1BSP(d, g, 1, 1, true)
	ring, _ := Alg1BSP(d, g, 1, 1, false)
	if ring.Supersteps <= rec.Supersteps {
		t.Fatalf("ring %d supersteps, recursive %d", ring.Supersteps, rec.Supersteps)
	}
	if math.Abs(ring.HSum-rec.HSum) > 1e-9 {
		t.Fatalf("bandwidth differs: ring %v recursive %v", ring.HSum, rec.HSum)
	}
}

// TestLPRAMTightness: in the LPRAM model the bound is the full D and
// Algorithm 1 attains it with the §5.2 grid — tightening Aggarwal et
// al.'s (1/2)^{2/3} constant to the paper's 3 in the cubic case.
func TestLPRAMTightness(t *testing.T) {
	d := core.NewDims(9600, 2400, 600)
	for _, p := range []int{3, 36, 512} {
		g, err := grid.CaseGrid(d, p)
		if err != nil {
			t.Fatal(err)
		}
		got := LPRAMAlg1Cost(d, g)
		want := LPRAMLowerBound(d, p)
		if math.Abs(got-want) > 1e-6*want {
			t.Errorf("P=%d: LPRAM cost %v, bound %v", p, got, want)
		}
	}
	// The LPRAM bound exceeds the distributed bound by the owned-data term.
	if LPRAMLowerBound(d, 512) <= core.LowerBound(d, 512) {
		t.Error("LPRAM bound should exceed the distributed bound")
	}
}

// TestBSPComputeBalance: the computation superstep charges mnk/P.
func TestBSPComputeBalance(t *testing.T) {
	d := core.Square(32)
	g := grid.Grid{P1: 2, P2: 2, P3: 2}
	cost, _ := Alg1BSP(d, g, 0, 0, true)
	// mnk/P plus the reduce-scatter additions.
	minWant := d.Flops() / 8
	if cost.Flops < minWant {
		t.Fatalf("flops %v below local multiply %v", cost.Flops, minWant)
	}
}
