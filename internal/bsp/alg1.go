package bsp

import (
	"repro/internal/core"
	"repro/internal/grid"
)

// Alg1Schedule builds the BSP superstep schedule of the paper's Algorithm 1
// on processor grid g: the A All-Gather rounds (all Axis3 fibers in
// parallel — BSP supersteps are global, so concurrent fibers share
// supersteps), the B All-Gather rounds, one computation superstep, and the
// C Reduce-Scatter rounds. recursive selects recursive doubling/halving
// (power-of-two fibers only) versus ring schedules; word counts mirror
// internal/algs exactly, including uneven shares.
func Alg1Schedule(d core.Dims, g grid.Grid, m *Machine, recursive bool) {
	scheduleAllGather(d, g, m, grid.Axis3, blockWordsA, recursive)
	scheduleAllGather(d, g, m, grid.Axis1, blockWordsB, recursive)
	// Local computation superstep.
	comp := m.Step()
	for r := 0; r < g.Size(); r++ {
		comp.Compute(r, d.Flops()/float64(g.Size()))
	}
	scheduleReduceScatter(d, g, m, recursive)
}

// blockWordsA returns the packed size of rank r's A block on grid g.
func blockWordsA(d core.Dims, g grid.Grid, r int) int {
	i1, i2, _ := g.Coords(r)
	return partSize(d.N1, g.P1, i1) * partSize(d.N2, g.P2, i2)
}

// blockWordsB returns the packed size of rank r's B block on grid g.
func blockWordsB(d core.Dims, g grid.Grid, r int) int {
	_, i2, i3 := g.Coords(r)
	return partSize(d.N2, g.P2, i2) * partSize(d.N3, g.P3, i3)
}

// blockWordsD returns the packed size of rank r's C contribution on grid g.
func blockWordsD(d core.Dims, g grid.Grid, r int) int {
	i1, _, i3 := g.Coords(r)
	return partSize(d.N1, g.P1, i1) * partSize(d.N3, g.P3, i3)
}

func partSize(n, p, i int) int {
	q, rem := n/p, n%p
	if i < rem {
		return q + 1
	}
	return q
}

// fairCounts splits total into f balanced parts.
func fairCounts(total, f int) []int {
	return fairCountsInto(make([]int, f), total)
}

// fairCountsInto is fairCounts writing into counts (len f), returning it;
// the schedule builders reuse one buffer across their rank loops.
func fairCountsInto(counts []int, total int) []int {
	f := len(counts)
	q, rem := total/f, total%f
	for i := range counts {
		counts[i] = q
		if i < rem {
			counts[i]++
		}
	}
	return counts
}

// scheduleAllGather adds the All-Gather rounds of one input matrix: every
// fiber along axis gathers its block (distributed as balanced packed
// shares) with the ring or recursive-doubling pattern.
func scheduleAllGather(d core.Dims, g grid.Grid, m *Machine, axis grid.Axis, blockWords func(core.Dims, grid.Grid, int) int, recursive bool) {
	f := fiberSize(g, axis)
	if f <= 1 {
		return
	}
	useRec := recursive && f&(f-1) == 0
	rounds := f - 1
	if useRec {
		rounds = log2(f)
	}
	fiber := make([]int, f)
	counts := make([]int, f)
	for s := 0; s < rounds; s++ {
		step := m.Step()
		for r := 0; r < g.Size(); r++ {
			g.FiberInto(fiber, r, axis)
			me := indexIn(fiber, r)
			fairCountsInto(counts, blockWords(d, g, r))
			if useRec {
				span := 1 << s
				partner := me ^ span
				lo := me &^ (span - 1)
				w := 0
				for q := lo; q < lo+span; q++ {
					w += counts[q]
				}
				step.Send(r, fiber[partner], float64(w))
			} else {
				sendIdx := ((me-s)%f + f) % f
				right := fiber[(me+1)%f]
				step.Send(r, right, float64(counts[sendIdx]))
			}
		}
	}
}

// scheduleReduceScatter adds the Reduce-Scatter rounds over Axis2 fibers.
func scheduleReduceScatter(d core.Dims, g grid.Grid, m *Machine, recursive bool) {
	f := g.P2
	if f <= 1 {
		return
	}
	useRec := recursive && f&(f-1) == 0
	rounds := f - 1
	if useRec {
		rounds = log2(f)
	}
	fiber := make([]int, f)
	counts := make([]int, f)
	for s := 0; s < rounds; s++ {
		step := m.Step()
		for r := 0; r < g.Size(); r++ {
			g.FiberInto(fiber, r, grid.Axis2)
			me := indexIn(fiber, r)
			fairCountsInto(counts, blockWordsD(d, g, r))
			if useRec {
				// Recursive halving: at step s the active span is f/2^s;
				// send the half not containing me.
				span := f >> s
				half := span / 2
				lo := me &^ (span - 1)
				mid := lo + half
				w := 0
				var partner int
				if me < mid {
					partner = me + half
					for q := mid; q < lo+span; q++ {
						w += counts[q]
					}
				} else {
					partner = me - half
					for q := lo; q < mid; q++ {
						w += counts[q]
					}
				}
				step.Send(r, fiber[partner], float64(w))
				step.Compute(r, float64(w)) // the received half is added
			} else {
				sendIdx := ((me-s-1)%f + f) % f
				recvIdx := ((me-s-2)%f + f) % f
				right := fiber[(me+1)%f]
				step.Send(r, right, float64(counts[sendIdx]))
				step.Compute(r, float64(counts[recvIdx]))
			}
		}
	}
}

func fiberSize(g grid.Grid, axis grid.Axis) int {
	switch axis {
	case grid.Axis1:
		return g.P1
	case grid.Axis2:
		return g.P2
	default:
		return g.P3
	}
}

func indexIn(fiber []int, r int) int {
	for i, v := range fiber {
		if v == r {
			return i
		}
	}
	panic("bsp: rank not in its own fiber")
}

func log2(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}

// Alg1BSP schedules Algorithm 1 on grid g and returns the BSP cost for gap
// gGap and latency l.
func Alg1BSP(d core.Dims, g grid.Grid, gGap, l float64, recursive bool) (Cost, *Machine) {
	m := New(g.Size(), gGap, l)
	Alg1Schedule(d, g, m, recursive)
	return m.Cost(), m
}

// LPRAMLowerBound is the memory-independent bound in the LPRAM model: the
// inputs live in shared memory and the output must be written back, so a
// processor's traffic is the full projection sum — the Lemma 2 optimum D —
// with no deduction for initially-owned data.
func LPRAMLowerBound(d core.Dims, p int) float64 { return core.D(d, p) }

// LPRAMAlg1Cost is Algorithm 1's LPRAM traffic on grid g: each processor
// reads its gathered A and B panels from shared memory and writes its C
// contribution — the positive terms of eq. (3). With the §5.2 grid it
// equals LPRAMLowerBound exactly, so the Theorem 3 analysis is tight in
// the LPRAM model too (improving the (1/2)^{2/3} constant of Aggarwal et
// al. 1990 to 3 in the cubic case).
func LPRAMAlg1Cost(d core.Dims, g grid.Grid) float64 { return grid.MemoryCost(d, g) }
