// Package bsp implements the two alternative machine models the paper's
// related work (§2.3) states memory-independent bounds in, alongside the
// α-β-γ model of internal/machine:
//
//   - BSP (Valiant; Scquizzato and Silvestri 2014 prove the matching
//     asymptotic matmul bounds here): computation proceeds in supersteps;
//     a superstep in which every processor sends and receives at most h
//     words (an h-relation) costs g·h + L, plus the maximum local
//     computation.
//   - LPRAM (Aggarwal, Chandra, Snir 1990): processors share a global
//     memory holding the inputs and, at the end, the output; the
//     communication cost is the words each processor reads from and writes
//     to shared memory. Unlike the distributed model, nothing starts in
//     local memory, so the lower bound is the full Lemma 2 optimum D with
//     no (mn+mk+nk)/P deduction.
//
// The package provides a superstep cost accumulator, BSP schedules of the
// paper's Algorithm 1 (ring and recursive-doubling collectives), and the
// LPRAM cost analysis — each shown by tests to move exactly the same words
// as the α-β-γ simulation, demonstrating that Theorem 3's volumes are
// model-robust.
package bsp

import "fmt"

// Machine is a BSP machine: P processors, per-word gap G, per-superstep
// latency L.
type Machine struct {
	P    int
	G, L float64

	steps []*Superstep
}

// New creates a BSP machine.
func New(p int, g, l float64) *Machine {
	if p <= 0 {
		panic(fmt.Sprintf("bsp: machine size %d", p))
	}
	return &Machine{P: p, G: g, L: l}
}

// Superstep accumulates one communication/computation phase.
type Superstep struct {
	p        int
	sent     []float64
	received []float64
	flops    []float64
}

// Step opens a new superstep.
func (m *Machine) Step() *Superstep {
	s := &Superstep{
		p:        m.P,
		sent:     make([]float64, m.P),
		received: make([]float64, m.P),
		flops:    make([]float64, m.P),
	}
	m.steps = append(m.steps, s)
	return s
}

// Send records a message of words from src to dst within the superstep.
func (s *Superstep) Send(src, dst int, words float64) {
	if src < 0 || src >= s.p || dst < 0 || dst >= s.p {
		panic(fmt.Sprintf("bsp: send %d→%d on %d processors", src, dst, s.p))
	}
	if words < 0 {
		panic("bsp: negative message")
	}
	s.sent[src] += words
	s.received[dst] += words
}

// Compute records local computation on proc within the superstep.
func (s *Superstep) Compute(proc int, flops float64) {
	if proc < 0 || proc >= s.p {
		panic(fmt.Sprintf("bsp: compute on proc %d of %d", proc, s.p))
	}
	s.flops[proc] += flops
}

// H returns the superstep's h-relation: the maximum over processors of
// max(words sent, words received).
func (s *Superstep) H() float64 {
	h := 0.0
	for i := 0; i < s.p; i++ {
		if s.sent[i] > h {
			h = s.sent[i]
		}
		if s.received[i] > h {
			h = s.received[i]
		}
	}
	return h
}

// maxFlops returns the superstep's computation term.
func (s *Superstep) maxFlops() float64 {
	f := 0.0
	for _, v := range s.flops {
		if v > f {
			f = v
		}
	}
	return f
}

// Cost summarizes a BSP execution.
type Cost struct {
	// Supersteps is the number of phases (the L multiplier).
	Supersteps int
	// HSum is Σ_s h_s: the bandwidth term the BSP matmul lower bounds
	// constrain (Scquizzato-Silvestri).
	HSum float64
	// Flops is Σ_s (max local computation).
	Flops float64
	// Total is G·HSum + L·Supersteps + Flops.
	Total float64
}

// Cost evaluates the machine's accumulated schedule.
func (m *Machine) Cost() Cost {
	c := Cost{Supersteps: len(m.steps)}
	for _, s := range m.steps {
		c.HSum += s.H()
		c.Flops += s.maxFlops()
	}
	c.Total = m.G*c.HSum + m.L*float64(c.Supersteps) + c.Flops
	return c
}

// ReceivedTotal returns the words processor proc received over the whole
// schedule — comparable with the α-β-γ per-rank volume.
func (m *Machine) ReceivedTotal(proc int) float64 {
	t := 0.0
	for _, s := range m.steps {
		t += s.received[proc]
	}
	return t
}

// MaxReceivedTotal is the per-processor maximum of ReceivedTotal.
func (m *Machine) MaxReceivedTotal() float64 {
	best := 0.0
	for p := 0; p < m.P; p++ {
		if v := m.ReceivedTotal(p); v > best {
			best = v
		}
	}
	return best
}
