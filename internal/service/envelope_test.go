package service

import (
	"net/http"
	"reflect"
	"testing"
)

// TestLowerBoundEnvelope: the unified {"problems": [...]} shape answers an
// envelope with per-index partial success, and the legacy single and batch
// shapes keep answering their old bodies for the same inputs.
func TestLowerBoundEnvelope(t *testing.T) {
	_, ts := newTestServer(t)
	status, raw := post(t, ts, "/v1/lowerbound", `{"problems":[
		{"n1":9600,"n2":2400,"n3":600,"p":512},
		{"n1":0,"n2":5,"n3":5,"p":4},
		{"n1":100,"n2":100,"n3":100,"p":0}]}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	env := decode[Envelope[LowerBoundResponse]](t, raw)
	if len(env.Results) != 3 || env.Results[0] == nil || env.Results[1] != nil || env.Results[2] != nil {
		t.Fatalf("results = %+v", env.Results)
	}
	if len(env.Errors) != 2 ||
		env.Errors[0].Index != 1 || env.Errors[0].Code != "bad_dims" ||
		env.Errors[1].Index != 2 || env.Errors[1].Code != "bad_processor_count" {
		t.Fatalf("errors = %+v", env.Errors)
	}

	// The envelope result for a valid problem is bit-for-bit the legacy
	// single response.
	status, legacyRaw := post(t, ts, "/v1/lowerbound", `{"n1":9600,"n2":2400,"n3":600,"p":512}`)
	if status != http.StatusOK {
		t.Fatalf("legacy status %d", status)
	}
	legacy := decode[LowerBoundResponse](t, legacyRaw)
	if !reflect.DeepEqual(*env.Results[0], legacy) {
		t.Fatalf("envelope result %+v differs from legacy %+v", *env.Results[0], legacy)
	}
}

// TestPredictEnvelope: each envelope entry carries its own machine model
// and optional grid/topology, and matches the legacy single-shape answer.
func TestPredictEnvelope(t *testing.T) {
	_, ts := newTestServer(t)
	status, raw := post(t, ts, "/v1/predict", `{"problems":[
		{"n1":9600,"n2":2400,"n3":600,"p":512,"alpha":1e-6,"beta":1e-9,"gamma":1e-11},
		{"n1":64,"n2":64,"n3":64,"p":8,"beta":1,"grid":{"p1":2,"p2":2,"p3":2}},
		{"n1":64,"n2":64,"n3":64,"p":8,"beta":1,"grid":{"p1":2,"p2":2,"p3":3}}]}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	env := decode[Envelope[PredictResponse]](t, raw)
	if len(env.Results) != 3 || env.Results[0] == nil || env.Results[1] == nil || env.Results[2] != nil {
		t.Fatalf("results = %+v", env.Results)
	}
	if len(env.Errors) != 1 || env.Errors[0].Index != 2 || env.Errors[0].Code != "grid_mismatch" {
		t.Fatalf("errors = %+v", env.Errors)
	}
	if g := env.Results[1].Grid; g != (GridJSON{2, 2, 2}) {
		t.Fatalf("pinned grid lost: %+v", g)
	}

	status, legacyRaw := post(t, ts, "/v1/predict",
		`{"n1":9600,"n2":2400,"n3":600,"p":512,"alpha":1e-6,"beta":1e-9,"gamma":1e-11}`)
	if status != http.StatusOK {
		t.Fatalf("legacy status %d", status)
	}
	legacy := decode[PredictResponse](t, legacyRaw)
	if !reflect.DeepEqual(*env.Results[0], legacy) {
		t.Fatalf("envelope result %+v differs from legacy %+v", *env.Results[0], legacy)
	}
}

// TestSimulateEnvelope: {"problems": [...]} collects every bad index into
// a 400 envelope; a valid list runs as one job whose result is an
// Envelope[SimulateResult].
func TestSimulateEnvelope(t *testing.T) {
	_, ts := newTestServer(t)
	status, raw := post(t, ts, "/v1/simulate", `{"problems":[
		{"n1":64,"n2":64,"n3":64,"p":8},
		{"n1":0,"n2":64,"n3":64,"p":8},
		{"n1":64,"n2":64,"n3":64,"p":100000}]}`)
	if status != http.StatusBadRequest {
		t.Fatalf("status %d: %s", status, raw)
	}
	env := decode[Envelope[SimulateResult]](t, raw)
	if len(env.Results) != 3 || len(env.Errors) != 2 ||
		env.Errors[0].Index != 1 || env.Errors[0].Code != "bad_dims" ||
		env.Errors[1].Index != 2 || env.Errors[1].Code != "too_many_ranks" {
		t.Fatalf("validation envelope = %+v", env)
	}

	status, raw = post(t, ts, "/v1/simulate", `{"problems":[
		{"n1":64,"n2":64,"n3":64,"p":8},
		{"n1":48,"n2":48,"n3":48,"p":4}]}`)
	if status != http.StatusAccepted {
		t.Fatalf("accept status %d: %s", status, raw)
	}
	final := waitJob(t, ts, decode[JobResponse](t, raw).ID)
	if final.Status != string(JobDone) {
		t.Fatalf("job = %+v", final)
	}
	result := decode[Envelope[SimulateResult]](t, mustMarshal(t, final.Result))
	if len(result.Results) != 2 || len(result.Errors) != 0 {
		t.Fatalf("job result envelope = %+v", result)
	}
	for i, r := range result.Results {
		if r == nil || r.CommCost < r.Bound || r.Alg != "Alg1" {
			t.Fatalf("results[%d] = %+v", i, r)
		}
	}
	if result.Results[0].Problem.P != 8 || result.Results[1].Problem.P != 4 {
		t.Fatalf("problem order lost: %+v", result.Results)
	}
}
