package service

import (
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/hbl"
)

// POST /v1/bound: memory-independent communication lower bounds for
// arbitrary array programs (the HBL generalization of /v1/lowerbound,
// which remains the matmul fast path). The primary request shape is the
// unified v1 envelope {"problems": [...]}, answered by an
// Envelope[BoundResponse] with per-index partial success; a single inline
// problem is also accepted and answered bare, failures as taxonomy-coded
// non-2xx. Programs are given either as DSL text
// ("A[i,k]*B[k,j] -> C[i,j] | i=100 k=100 j=100") or structurally; invalid
// programs answer kind "bad_program".

// ArrayRefJSON is one array reference of a structurally-given program.
type ArrayRefJSON struct {
	// Name identifies the array.
	Name string `json:"name"`
	// Indices is the subscript subset, e.g. ["i", "k"].
	Indices []string `json:"indices"`
}

// BoundProblem is one array-program instance. Exactly one of Program (the
// DSL text) or Arrays (the structured form) must be given. Without extents
// the answer is exponents-only; with extents and P ≥ 1 it carries the full
// memory-independent bound.
type BoundProblem struct {
	// Program is the DSL text: "A[i,k]*B[k,j] -> C[i,j]" or
	// "C[i,j] += A[i,k]*B[k,j]", optionally "... | i=9600 k=600 j=2400".
	Program string `json:"program,omitempty"`
	// Indices declares the loop indices of a structured program, in loop
	// order. Optional — indices are collected from the arrays in first-
	// appearance order when omitted.
	Indices []string `json:"indices,omitempty"`
	// Arrays holds the structured program's references.
	Arrays []ArrayRefJSON `json:"arrays,omitempty"`
	// Output names the output array; empty means the last one.
	Output string `json:"output,omitempty"`
	// Extents maps index names to iteration counts. It must cover every
	// index and overrides any extents clause in the DSL text.
	Extents map[string]int `json:"extents,omitempty"`
	// P is the processor count; required (≥ 1) when extents are given.
	P int `json:"p,omitempty"`
}

// BoundRequest is the body of POST /v1/bound: either the unified v1
// envelope {"problems": [...]} (answered with an Envelope and per-index
// partial success) or a single inline problem (answered with a bare
// BoundResponse, failures as taxonomy-coded non-2xx).
type BoundRequest struct {
	BoundProblem
	// Problems is the unified v1 envelope form.
	Problems []BoundProblem `json:"problems"`
}

// normalize resolves the accepted request shapes to one problem list;
// envelope reports the v1 {"problems": [...]} form.
func (r BoundRequest) normalize() (list []BoundProblem, envelope bool) {
	if len(r.Problems) > 0 {
		return r.Problems, true
	}
	return []BoundProblem{r.BoundProblem}, false
}

// BoundArrayJSON reports one array's share of the bound.
type BoundArrayJSON struct {
	// Name identifies the array.
	Name string `json:"name"`
	// S is the array's optimal HBL exponent, with SExact the exact rational
	// ("1/2").
	S      float64 `json:"s"`
	SExact string  `json:"sExact"`
	// AccessBound is the Lemma 1 access bound Π_{i∈φ_j} n_i / P in words,
	// and Footprint the array's share x*_j of the optimal footprint; both
	// present only when the request carried extents.
	AccessBound float64 `json:"accessBound,omitempty"`
	Footprint   float64 `json:"footprint,omitempty"`
}

// BoundResponse answers one array-program bound.
type BoundResponse struct {
	// Program is the canonical rendering of the program (reparseable; also
	// the memoization key).
	Program string `json:"program"`
	// Sigma is σ_HBL = Σ_j s_j, with SigmaExact the exact rational ("3/2").
	Sigma      float64 `json:"sigma"`
	SigmaExact string  `json:"sigmaExact"`
	// Exponent is 1/σ — footprint ≥ (volume/P)^exponent; ExponentExact is
	// the exact rational ("2/3").
	Exponent      float64 `json:"exponent"`
	ExponentExact string  `json:"exponentExact"`
	// Arrays reports the per-array exponents and, with extents, the
	// per-array access bounds and optimal footprints.
	Arrays []BoundArrayJSON `json:"arrays"`
	// The remaining fields are present only when the request carried
	// extents and a processor count.
	//
	// P echoes the processor count.
	P int `json:"p,omitempty"`
	// Volume is the iteration-space size Π n_i.
	Volume float64 `json:"volume,omitempty"`
	// TotalWords is the one-copy footprint of all arrays.
	TotalWords float64 `json:"totalWords,omitempty"`
	// FreeArrays counts arrays governed by the water level — the
	// generalization of Theorem 3's case number (matmul: 1, 2, 3).
	FreeArrays int `json:"freeArrays,omitempty"`
	// Footprint is the minimum per-processor data footprint Σ_j x*_j.
	Footprint float64 `json:"footprint,omitempty"`
	// Bound is the memory-independent lower bound Footprint − TotalWords/P
	// in words per processor.
	Bound float64 `json:"bound,omitempty"`
}

// toProgram resolves the two accepted program shapes into a validated
// hbl.Program.
func (bp BoundProblem) toProgram() (hbl.Program, error) {
	var p hbl.Program
	switch {
	case bp.Program != "" && len(bp.Arrays) > 0:
		return p, fmt.Errorf(`service: give "program" text or "arrays", not both: %w`, core.ErrBadProgram)
	case bp.Program != "":
		var err error
		if p, err = hbl.ParseProgram(bp.Program); err != nil {
			return p, err
		}
	case len(bp.Arrays) > 0:
		p.Indices = bp.Indices
		p.Output = bp.Output
		seen := make(map[string]bool, len(p.Indices))
		for _, name := range p.Indices {
			seen[name] = true
		}
		for _, a := range bp.Arrays {
			p.Arrays = append(p.Arrays, hbl.Array{Name: a.Name, Indices: a.Indices})
			if len(bp.Indices) == 0 {
				for _, name := range a.Indices {
					if !seen[name] {
						seen[name] = true
						p.Indices = append(p.Indices, name)
					}
				}
			}
		}
	default:
		return p, fmt.Errorf(`service: a bound problem needs "program" text or "arrays": %w`, core.ErrBadProgram)
	}
	if len(bp.Extents) > 0 {
		p.Extents = nil // the request's map overrides any DSL extents clause
		var err error
		if p, err = p.WithExtents(bp.Extents); err != nil {
			return p, err
		}
	}
	return p, p.Validate()
}

// boundOne answers one program from the memo layer.
func (s *Server) boundOne(bp BoundProblem) (BoundResponse, error) {
	prog, err := bp.toProgram()
	if err != nil {
		return BoundResponse{}, err
	}
	if len(prog.Extents) == 0 {
		if bp.P != 0 {
			return BoundResponse{}, fmt.Errorf("service: P=%d given without extents — a bound needs both: %w", bp.P, core.ErrBadProgram)
		}
		return s.exponentsFor(prog)
	}
	if bp.P < 1 {
		return BoundResponse{}, fmt.Errorf("service: P must be ≥ 1 when extents are given, got %d: %w", bp.P, core.ErrBadProcessorCount)
	}
	return s.boundFor(prog, bp.P)
}

// exponentResult and boundResult cache outcomes, deterministic errors
// included.
type boundResult struct {
	resp BoundResponse
	err  error
}

// exponentsFor is hbl.Solve through the cache, keyed by the canonical
// program rendering.
func (s *Server) exponentsFor(prog hbl.Program) (BoundResponse, error) {
	key := "hb:" + prog.String()
	r := s.cache.GetOrCompute(key, func() any {
		e, err := hbl.Solve(prog)
		if err != nil {
			return boundResult{err: err}
		}
		return boundResult{resp: exponentsResponse(prog, e)}
	}).(boundResult)
	return r.resp, r.err
}

// boundFor is hbl.MemIndependentBound through the cache. The canonical
// program string embeds the extents, so key + P pins the full input tuple.
func (s *Server) boundFor(prog hbl.Program, p int) (BoundResponse, error) {
	key := fmt.Sprintf("hb:%s:%d", prog, p)
	r := s.cache.GetOrCompute(key, func() any {
		b, err := hbl.MemIndependentBound(prog, p)
		if err != nil {
			return boundResult{err: err}
		}
		resp := exponentsResponse(prog, b.Exponents)
		resp.P = p
		resp.Volume = b.Volume
		resp.TotalWords = b.TotalWords
		resp.FreeArrays = b.FreeArrays
		resp.Footprint = b.Footprint
		resp.Bound = b.LowerBound
		for j := range resp.Arrays {
			resp.Arrays[j].AccessBound = b.AccessBounds[j]
			resp.Arrays[j].Footprint = b.X[j]
		}
		return boundResult{resp: resp}
	}).(boundResult)
	return r.resp, r.err
}

// exponentsResponse builds the exponents-only part of a response.
func exponentsResponse(prog hbl.Program, e hbl.Exponents) BoundResponse {
	resp := BoundResponse{
		Program:       prog.String(),
		Sigma:         e.SigmaFloat(),
		SigmaExact:    e.Sigma.RatString(),
		ExponentExact: e.BoundExponent().RatString(),
		Arrays:        make([]BoundArrayJSON, len(prog.Arrays)),
	}
	resp.Exponent = 1 / resp.Sigma
	sf := e.SFloat()
	for j, a := range prog.Arrays {
		resp.Arrays[j] = BoundArrayJSON{Name: a.Name, S: sf[j], SExact: e.S[j].RatString()}
	}
	return resp
}

func (s *Server) handleBound(w http.ResponseWriter, r *http.Request) {
	var req BoundRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	problems, envelope := req.normalize()
	if !s.checkBatch(w, len(problems)) {
		return
	}
	if envelope {
		writeJSON(w, http.StatusOK, envelopeOf(problems, s.boundOne))
		return
	}
	resp, err := s.boundOne(problems[0])
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
