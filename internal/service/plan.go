package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/plan"
)

// POST /v1/plan — the strong-scaling planner. The request uses the v1
// envelope from day one: {"problems": [...]} with per-problem P ranges.
// Small plans (total points ≤ Config.PlanInlineLimit) answer one inline
// JSON envelope; larger plans stream NDJSON rows — per problem a summary
// row, then one row per point in P order, flushed chunk by chunk so a
// 10⁵-point range holds neither the connection's buffer nor the full
// result in memory. "stream" forces either mode.
//
// Validation is all-or-nothing: every problem is vetted before any point
// is computed, and a request with invalid problems answers 400 carrying
// one envelope error per bad problem. Runtime failures after that (e.g. a
// fabric outgrowing the per-pair charge tables mid-range) surface as an
// error row (streaming) or an envelope error (inline) for that problem
// only. Per-point results are memoized under range-independent keys, so
// overlapping ranges and repeated plans share work; concurrent identical
// requests collapse to one computation per point (singleflight).

// PlanProblem is one planning problem: shape, per-rank memory, machine,
// optional topology, and the P range to sweep.
type PlanProblem struct {
	// N1, N2, N3 are the matrix dimensions (A is N1×N2, B is N2×N3).
	N1 int `json:"n1"`
	N2 int `json:"n2"`
	N3 int `json:"n3"`
	// Mem is the local memory per processor in words.
	Mem float64 `json:"mem"`
	// PMin and PMax bound the processor range, inclusive.
	PMin int `json:"pMin"`
	PMax int `json:"pMax"`
	// PStep is the linear stride (default 1); Log2 sweeps PMin, 2·PMin, …
	// instead.
	PStep int  `json:"pStep,omitempty"`
	Log2  bool `json:"log2,omitempty"`
	// Alpha, Beta, Gamma set the α-β-γ machine; all zero selects the
	// bandwidth-only model, so times read directly in words.
	Alpha float64 `json:"alpha,omitempty"`
	Beta  float64 `json:"beta,omitempty"`
	Gamma float64 `json:"gamma,omitempty"`
	// Topology, when present, prices every point on that fabric. Only
	// size-flexible specs (flat, twolevel=g) can span a multi-point range.
	Topology *TopologyJSON `json:"topology,omitempty"`
}

// PlanRequest is the body of POST /v1/plan.
type PlanRequest struct {
	// Problems lists the plans to compute.
	Problems []PlanProblem `json:"problems"`
	// Stream forces the response mode: true streams NDJSON regardless of
	// size, false forces one inline envelope (still subject to
	// MaxPlanPoints). Absent, the server picks by total point count.
	Stream *bool `json:"stream,omitempty"`
	// Job runs the sweep asynchronously instead: the request answers 202
	// with a job id, the sweep executes on the job pool, and the full
	// NDJSON output (the same rows a streamed response carries) lands in
	// the durable artifact plan.ndjson — fetchable, Range requests
	// included, even after the job is evicted. Requires artifact storage;
	// without it the request answers 400. Job ignores Stream.
	Job bool `json:"job,omitempty"`
}

// PlanJobResult is the job-table result of an async plan job (the rows
// themselves are in the plan.ndjson artifact).
type PlanJobResult struct {
	// Problems is the number of planning problems swept.
	Problems int `json:"problems"`
	// Points is the total point-row count across problems.
	Points int `json:"points"`
	// Errors carries per-problem runtime failures, indexed like the
	// request's problems list.
	Errors []EnvelopeError `json:"errors,omitempty"`
	// Artifact names the NDJSON artifact holding every row.
	Artifact string `json:"artifact"`
}

// PlanResult is one problem's full plan in the inline envelope.
type PlanResult struct {
	// Summary is the range-level analysis (crossover, boundaries, floor).
	Summary plan.Summary `json:"summary"`
	// Points are the per-P rows in P order.
	Points []plan.Point `json:"points"`
}

// PlanEnvelope is the inline response: the unified v1 envelope over
// PlanResult (results[i] answers problems[i], null when that problem
// failed; its failure is in errors).
type PlanEnvelope = Envelope[PlanResult]

// PlanRow is one line of the NDJSON stream. Exactly one of Summary,
// Point, and Error is set, except the final row, which sets only Done.
// Problem indexes into the request's problems list.
type PlanRow struct {
	Problem int            `json:"problem"`
	Summary *plan.Summary  `json:"summary,omitempty"`
	Point   *plan.Point    `json:"point,omitempty"`
	Error   *EnvelopeError `json:"error,omitempty"`
	// Done marks the final row; a stream without it was cut short.
	Done bool `json:"done,omitempty"`
}

// planChunk is the streaming fan-out granularity: points per
// MapChunksContext chunk, and therefore per flush.
const planChunk = 256

// planRequest converts the wire problem into the plan package's request,
// attaching the server's point budget.
func (s *Server) planRequest(p PlanProblem) plan.Request {
	req := plan.Request{
		Dims: core.NewDims(p.N1, p.N2, p.N3),
		Mem:  p.Mem,
		PMin: p.PMin, PMax: p.PMax, PStep: p.PStep, Log2: p.Log2,
		Config:    machine.Config{Alpha: p.Alpha, Beta: p.Beta, Gamma: p.Gamma},
		MaxPoints: s.cfg.MaxPlanPoints,
	}
	if p.Topology != nil {
		req.TopoSpec = p.Topology.Spec
		req.Place = p.Topology.Place
	}
	return req
}

// planPointResult caches one plan point, error included (a fabric that
// cannot be built at some P fails identically every time).
type planPointResult struct {
	pt  plan.Point
	err error
}

// planner returns a planner whose points go through the memo cache with
// singleflight, under the "pp:" namespace.
func (s *Server) planner() plan.Planner {
	return plan.Planner{PointMemo: func(key string, compute func() (plan.Point, error)) (plan.Point, error) {
		r := s.cache.GetOrCompute("pp:"+key, func() any {
			pt, err := compute()
			return planPointResult{pt: pt, err: err}
		}).(planPointResult)
		return r.pt, r.err
	}}
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Problems) == 0 {
		writeBadRequest(w, `plan request needs a non-empty "problems" list`)
		return
	}
	if len(req.Problems) > s.cfg.MaxBatch {
		writeBadRequest(w, fmt.Sprintf("batch of %d exceeds the limit %d", len(req.Problems), s.cfg.MaxBatch))
		return
	}
	reqs := make([]plan.Request, len(req.Problems))
	var errs []EnvelopeError
	total := 0
	for i, p := range req.Problems {
		reqs[i] = s.planRequest(p)
		err := reqs[i].Validate()
		if err == nil {
			err = s.checkSearchP(p.PMax)
		}
		if err != nil {
			errs = append(errs, EnvelopeError{Index: i, Code: kindFor(err), Message: err.Error()})
			continue
		}
		total += reqs[i].Points()
	}
	if len(errs) > 0 {
		// All-or-nothing: a malformed problem fails the whole request
		// before any sweeping starts — plans are the service's most
		// expensive synchronous work, and the envelope tells the client
		// exactly which entries to fix.
		writeJSON(w, http.StatusBadRequest, PlanEnvelope{
			Results: make([]*PlanResult, len(req.Problems)),
			Errors:  errs,
		})
		return
	}
	if req.Job {
		s.submitPlanJob(w, reqs)
		return
	}
	stream := total > s.cfg.PlanInlineLimit
	if req.Stream != nil {
		stream = *req.Stream
	}
	if stream {
		s.streamPlan(w, r, reqs)
		return
	}
	s.inlinePlan(w, r, reqs)
}

// submitPlanJob runs the validated sweep on the job pool, writing every
// NDJSON row into the plan.ndjson artifact. The job's result records the
// point count and any per-problem runtime failures; the rows themselves
// live only in the artifact, which survives job eviction.
func (s *Server) submitPlanJob(w http.ResponseWriter, reqs []plan.Request) {
	if s.artifacts == nil {
		writeBadRequest(w, `"job": true requires artifact storage (start the server with an artifact store, e.g. parmmd -artifact-dir)`)
		return
	}
	id, err := s.jobs.Submit(func(ctx context.Context) (any, error) {
		pl := s.planner()
		result := PlanJobResult{Problems: len(reqs), Artifact: "plan.ndjson"}
		_, err := s.writeArtifact(ctx, "plan.ndjson", "application/x-ndjson", func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetEscapeHTML(false)
			for i, pr := range reqs {
				sum, err := plan.Summarize(pr)
				if err == nil {
					if err = enc.Encode(PlanRow{Problem: i, Summary: &sum}); err != nil {
						return err
					}
					n := 0
					_, err = pl.Sweep(ctx, pr, planChunk, func(chunk []plan.Point) error {
						for j := range chunk {
							if encErr := enc.Encode(PlanRow{Problem: i, Point: &chunk[j]}); encErr != nil {
								return encErr
							}
						}
						n += len(chunk)
						return nil
					})
					result.Points += n
					s.planPoints.Add(int64(n))
				}
				if err != nil {
					if ctx.Err() != nil {
						return err // cancelled job: fail, don't persist a truncated sweep
					}
					ee := EnvelopeError{Index: i, Code: kindFor(err), Message: err.Error()}
					result.Errors = append(result.Errors, ee)
					if encErr := enc.Encode(PlanRow{Problem: i, Error: &ee}); encErr != nil {
						return encErr
					}
				}
			}
			return enc.Encode(PlanRow{Done: true})
		})
		if err != nil {
			return nil, err
		}
		return result, nil
	})
	if err != nil {
		writeError(w, err)
		return
	}
	s.jobsTotal.Add(1)
	writeJSON(w, http.StatusAccepted, JobResponse{ID: id, Status: string(JobQueued)})
}

// inlinePlan evaluates every problem and answers one envelope. Runtime
// failures are partial: the envelope carries the successes plus one error
// per failed problem, under 200 (validation already passed; what failed
// is the computation, not the request).
func (s *Server) inlinePlan(w http.ResponseWriter, r *http.Request, reqs []plan.Request) {
	pl := s.planner()
	env := PlanEnvelope{Results: make([]*PlanResult, len(reqs))}
	for i, pr := range reqs {
		sum, pts, err := pl.Run(r.Context(), pr)
		if err != nil {
			if r.Context().Err() != nil {
				return // client gone; nobody to answer
			}
			env.Errors = append(env.Errors, EnvelopeError{Index: i, Code: kindFor(err), Message: err.Error()})
			continue
		}
		s.planPoints.Add(int64(len(pts)))
		env.Results[i] = &PlanResult{Summary: sum, Points: pts}
	}
	writeJSON(w, http.StatusOK, env)
}

// streamPlan writes the NDJSON stream: per problem a summary row then its
// point rows in P order, flushed every planChunk points so the client
// reads progress while later chunks are still computing and the server
// never buffers more than one chunk per problem. An encode failure (the
// client hung up) or context cancellation aborts the sweep — the emit
// error/ctx paths stop pool workers from claiming further points.
func (s *Server) streamPlan(w http.ResponseWriter, r *http.Request, reqs []plan.Request) {
	ctx := r.Context()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	pl := s.planner()
	for i, pr := range reqs {
		sum, err := plan.Summarize(pr)
		if err == nil {
			if err = enc.Encode(PlanRow{Problem: i, Summary: &sum}); err != nil {
				return
			}
			flush()
			n := 0
			_, err = pl.Sweep(ctx, pr, planChunk, func(chunk []plan.Point) error {
				for j := range chunk {
					if encErr := enc.Encode(PlanRow{Problem: i, Point: &chunk[j]}); encErr != nil {
						return encErr
					}
				}
				n += len(chunk)
				flush()
				return nil
			})
			s.planPoints.Add(int64(n))
		}
		if err != nil {
			if ctx.Err() != nil {
				return // client cancelled; the truncated stream says it all
			}
			ee := EnvelopeError{Index: i, Code: kindFor(err), Message: err.Error()}
			if encErr := enc.Encode(PlanRow{Problem: i, Error: &ee}); encErr != nil {
				return
			}
			flush()
		}
	}
	_ = enc.Encode(PlanRow{Done: true})
	flush()
}
