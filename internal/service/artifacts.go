package service

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/store"
)

// Durable job artifacts. Jobs write large outputs — Chrome traces, batch
// CSVs, plan NDJSON — into the content-addressed artifact store under
// their own job id (read from the job context with JobIDFrom), and
// clients fetch them through
//
//	GET /v1/jobs/{id}/artifacts          — the job's artifact catalog
//	GET /v1/jobs/{id}/artifacts/{name}   — one artifact's content
//
// Content is served with http.ServeContent, so HTTP Range requests
// answer 206 with the exact byte window — a client can pull the tail of
// a long NDJSON sweep without transferring the whole file. Every content
// response carries the artifact's SHA-256 (as a strong ETag and in
// X-Checksum-Sha256), letting clients verify integrity end to end.
//
// Artifacts deliberately outlive job retention: the runner evicts
// finished job metadata on a TTL and cap, while the catalog keeps the
// blobs until deleted out of band. A 404 from GET /v1/jobs/{id} with a
// 200 from its /artifacts listing is therefore a normal state, not a
// consistency bug.

// writeArtifact writes one named artifact for the executing job and
// bumps the artifact counters. It must be called from inside a JobFunc
// (the job id comes from ctx). Artifact failures are returned, not
// swallowed: a job that promised a durable output and cannot deliver it
// is a failed job.
func (s *Server) writeArtifact(ctx context.Context, name, contentType string, write func(io.Writer) error) (store.Info, error) {
	if s.artifacts == nil {
		return store.Info{}, fmt.Errorf("service: artifact store disabled")
	}
	id, ok := JobIDFrom(ctx)
	if !ok {
		return store.Info{}, fmt.Errorf("service: writeArtifact outside a job context")
	}
	info, err := s.artifacts.Write(id, name, contentType, write)
	if err != nil {
		return store.Info{}, err
	}
	s.artifactsWritten.Add(1)
	s.artifactBytes.Add(info.Size)
	return info, nil
}

// writeResultArtifacts persists a finished simulate job's outcome:
// result.json always, plus results.csv when the job carried multiple
// problems (the grep-able form for sweep analysis). No-op without a
// store.
func (s *Server) writeResultArtifacts(ctx context.Context, result any, rows []SimulateResult) error {
	if s.artifacts == nil {
		return nil
	}
	if _, err := s.writeArtifact(ctx, "result.json", "application/json", func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetEscapeHTML(false)
		return enc.Encode(result)
	}); err != nil {
		return err
	}
	if len(rows) < 2 {
		return nil
	}
	_, err := s.writeArtifact(ctx, "results.csv", "text/csv", func(w io.Writer) error {
		cw := csv.NewWriter(w)
		if err := cw.Write([]string{"n1", "n2", "n3", "p", "alg", "commCost", "bound", "ratioToBound", "totalWords", "criticalPath"}); err != nil {
			return err
		}
		for _, r := range rows {
			rec := []string{
				strconv.Itoa(r.Problem.N1), strconv.Itoa(r.Problem.N2), strconv.Itoa(r.Problem.N3),
				strconv.Itoa(r.Problem.P), r.Alg,
				formatCSVFloat(r.CommCost), formatCSVFloat(r.Bound), formatCSVFloat(r.RatioToBound),
				formatCSVFloat(r.TotalWords), formatCSVFloat(r.CriticalPath),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	})
	return err
}

func formatCSVFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// artifactJSONOf converts a catalog entry to the wire form.
func artifactJSONOf(in store.Info) ArtifactJSON {
	return ArtifactJSON{
		Name:        in.Name,
		Size:        in.Size,
		SHA256:      in.SHA256,
		ContentType: in.ContentType,
		Created:     in.Created,
	}
}

// jobArtifacts lists the job's artifacts for embedding in a JobResponse;
// empty (not an error) when artifacts are disabled or the listing fails —
// job polling must not break because the catalog hiccuped.
func (s *Server) jobArtifacts(id string) []ArtifactJSON {
	if s.artifacts == nil {
		return nil
	}
	infos, err := s.artifacts.List(id)
	if err != nil || len(infos) == 0 {
		return nil
	}
	out := make([]ArtifactJSON, len(infos))
	for i, in := range infos {
		out[i] = artifactJSONOf(in)
	}
	return out
}

// handleArtifactList serves GET /v1/jobs/{id}/artifacts. The listing
// reads the catalog, not the job table, so it keeps answering after the
// job's metadata is evicted — an empty list distinguishes "no artifacts"
// from nothing.
func (s *Server) handleArtifactList(w http.ResponseWriter, r *http.Request) {
	if s.artifacts == nil {
		writeNotFound(w, "artifact storage is disabled on this server")
		return
	}
	id := r.PathValue("id")
	infos, err := s.artifacts.List(id)
	if err != nil {
		if errors.Is(err, store.ErrBadKey) {
			writeBadRequest(w, err.Error())
			return
		}
		writeError(w, err)
		return
	}
	resp := ArtifactListResponse{Job: id, Artifacts: make([]ArtifactJSON, len(infos))}
	for i, in := range infos {
		resp.Artifacts[i] = artifactJSONOf(in)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleArtifactGet serves GET /v1/jobs/{id}/artifacts/{name}, honoring
// Range (via http.ServeContent) and If-None-Match against the
// content-hash ETag.
func (s *Server) handleArtifactGet(w http.ResponseWriter, r *http.Request) {
	if s.artifacts == nil {
		writeNotFound(w, "artifact storage is disabled on this server")
		return
	}
	id, name := r.PathValue("id"), r.PathValue("name")
	info, obj, err := s.artifacts.Open(id, name)
	if err != nil {
		switch {
		case errors.Is(err, store.ErrNotExist):
			writeNotFound(w, fmt.Sprintf("no artifact %s/%s", id, name))
		case errors.Is(err, store.ErrBadKey):
			writeBadRequest(w, err.Error())
		default:
			writeError(w, err)
		}
		return
	}
	defer obj.Close()
	s.artifactFetches.Add(1)
	w.Header().Set("Content-Type", info.ContentType)
	w.Header().Set("ETag", `"sha256-`+info.SHA256+`"`)
	w.Header().Set("X-Checksum-Sha256", info.SHA256)
	// ServeContent handles Range (206 with the byte window), precondition
	// headers, and HEAD; the blob Object is an io.ReadSeeker by contract.
	http.ServeContent(w, r, "", info.Created, obj)
}
