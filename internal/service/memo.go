package service

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/topo"
)

// The memo layer: typed wrappers putting the sharded LRU in front of the
// expensive pure computations. Keys spell out the full input tuple — dims,
// P, and the machine config where the result depends on it — so equal keys
// imply equal computations and a hit can be returned verbatim. Keys are
// namespaced per computation ("og:", "cg:", "lb:", "pr:") because the same
// (dims, P) pair appears under several of them.

// caseGridResult is the cached value of grid.CaseGrid: the grid or the
// (deterministic) error.
type caseGridResult struct {
	g   grid.Grid
	err error
}

func dimsKey(d core.Dims, p int) string {
	return fmt.Sprintf("%d:%d:%d:%d", d.N1, d.N2, d.N3, p)
}

// optimalGrid is grid.Optimal through the cache — the exhaustive divisor
// search is the service's most expensive synchronous computation (quadratic
// in the divisor count of P).
func (s *Server) optimalGrid(d core.Dims, p int) grid.Grid {
	return s.cache.GetOrCompute("og:"+dimsKey(d, p), func() any {
		return grid.Optimal(d, p)
	}).(grid.Grid)
}

// caseGrid is grid.CaseGrid through the cache; the error outcome is cached
// too (it is as deterministic as the grid).
func (s *Server) caseGrid(d core.Dims, p int) (grid.Grid, error) {
	r := s.cache.GetOrCompute("cg:"+dimsKey(d, p), func() any {
		g, err := grid.CaseGrid(d, p)
		return caseGridResult{g: g, err: err}
	}).(caseGridResult)
	return r.g, r.err
}

// lowerBound is core.LowerBound through the cache, paired with the Lemma 2
// footprint D (they share the optimization).
func (s *Server) lowerBound(d core.Dims, p int) (bound, footprint float64) {
	v := s.cache.GetOrCompute("lb:"+dimsKey(d, p), func() any {
		return [2]float64{core.LowerBound(d, p), core.D(d, p)}
	}).([2]float64)
	return v[0], v[1]
}

// predict is model.Alg1Time through the cache, keyed by grid and config as
// well as the problem shape.
func (s *Server) predict(d core.Dims, g grid.Grid, cfg machine.Config) model.Prediction {
	key := fmt.Sprintf("pr:%s:%d:%d:%d:%g:%g:%g",
		dimsKey(d, g.Size()), g.P1, g.P2, g.P3, cfg.Alpha, cfg.Beta, cfg.Gamma)
	return s.cache.GetOrCompute(key, func() any {
		return model.Alg1Time(d, g, cfg, collective.Auto)
	}).(model.Prediction)
}

// topoPredictResult caches model.Alg1TimeTopo's outcome, error included —
// a too-large fabric is as deterministic as a prediction.
type topoPredictResult struct {
	pred model.TopoPrediction
	err  error
}

// predictTopo is model.Alg1TimeTopo through the cache: building the
// network's charge oracle is O(links) (plus the p² table fast path below
// 2048 ranks) and the fiber sweep is linear in P on fabrics without
// translation symmetry, so repeated requests for the same fabric amortize
// both. The key extends the flat predict key with the fabric name and
// placement.
func (s *Server) predictTopo(d core.Dims, g grid.Grid, cfg machine.Config, fabric topo.Topology, place topo.Policy) (model.TopoPrediction, error) {
	key := fmt.Sprintf("pt:%s:%d:%d:%d:%g:%g:%g:%s:%s",
		dimsKey(d, g.Size()), g.P1, g.P2, g.P3, cfg.Alpha, cfg.Beta, cfg.Gamma, fabric.Name(), place)
	r := s.cache.GetOrCompute(key, func() any {
		pl, err := topo.Map(g, fabric, place)
		if err != nil {
			return topoPredictResult{err: err}
		}
		net, err := topo.NewNetwork(fabric, pl)
		if err != nil {
			return topoPredictResult{err: err}
		}
		pred, err := model.Alg1TimeTopo(d, g, cfg, collective.Auto, net)
		return topoPredictResult{pred: pred, err: err}
	}).(topoPredictResult)
	return r.pred, r.err
}
