package service

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/core"
)

// ErrOverloaded is returned when a per-endpoint concurrency limit turns a
// request away; clients should retry with backoff (the service maps it to
// 503, like ErrJobQueueFull).
var ErrOverloaded = errors.New("server overloaded")

// statusFor maps the core error taxonomy onto HTTP status codes,
// deterministically:
//
//	ErrBadDims, ErrBadProcessorCount, ErrTooManyRanks,
//	ErrBadOpts, ErrBadTopology, ErrBadPlanRange,
//	ErrBadProgram                                 → 400 Bad Request
//	ErrUnsupportedAlg                             → 404 Not Found
//	ErrGridMismatch                               → 422 Unprocessable Entity
//	ErrJobQueueFull, ErrOverloaded                → 503 Service Unavailable
//	anything else                                 → 500 Internal Server Error
//
// Malformed JSON never reaches this function; the handlers answer 400 with
// kind "bad_request" directly.
func statusFor(err error) int {
	switch {
	case errors.Is(err, core.ErrBadDims),
		errors.Is(err, core.ErrBadProcessorCount),
		errors.Is(err, core.ErrTooManyRanks),
		errors.Is(err, core.ErrBadOpts),
		errors.Is(err, core.ErrBadTopology),
		errors.Is(err, core.ErrBadPlanRange),
		errors.Is(err, core.ErrBadProgram):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrUnsupportedAlg):
		return http.StatusNotFound
	case errors.Is(err, core.ErrGridMismatch):
		return http.StatusUnprocessableEntity
	case errors.Is(err, ErrJobQueueFull), errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// kindFor tags the taxonomy member for the machine-readable error body.
func kindFor(err error) string {
	switch {
	case errors.Is(err, core.ErrBadDims):
		return "bad_dims"
	case errors.Is(err, core.ErrBadProcessorCount):
		return "bad_processor_count"
	case errors.Is(err, core.ErrTooManyRanks):
		return "too_many_ranks"
	case errors.Is(err, core.ErrBadOpts):
		return "bad_opts"
	case errors.Is(err, core.ErrBadTopology):
		return "bad_topology"
	case errors.Is(err, core.ErrBadPlanRange):
		return "bad_plan_range"
	case errors.Is(err, core.ErrBadProgram):
		return "bad_program"
	case errors.Is(err, core.ErrUnsupportedAlg):
		return "unsupported_alg"
	case errors.Is(err, core.ErrGridMismatch):
		return "grid_mismatch"
	case errors.Is(err, ErrJobQueueFull):
		return "queue_full"
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	default:
		return "internal"
	}
}

// writeError answers with the taxonomy-mapped status and an ErrorResponse
// body.
func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, statusFor(err), ErrorResponse{Error: err.Error(), Kind: kindFor(err)})
}

// writeBadRequest answers 400 for protocol-level failures (malformed JSON,
// oversize bodies) that never reach the taxonomy.
func writeBadRequest(w http.ResponseWriter, msg string) {
	writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: msg, Kind: "bad_request"})
}

// writeNotFound answers 404 for missing resources (unknown job ids).
func writeNotFound(w http.ResponseWriter, msg string) {
	writeJSON(w, http.StatusNotFound, ErrorResponse{Error: msg, Kind: "not_found"})
}

// writeJSON writes v as the JSON body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}
