package service

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/plan"
)

// planRow mirrors PlanRow for decoding the NDJSON stream in tests.
type planRow struct {
	Problem int            `json:"problem"`
	Summary *plan.Summary  `json:"summary"`
	Point   *plan.Point    `json:"point"`
	Error   *EnvelopeError `json:"error"`
	Done    bool           `json:"done"`
}

// TestPlanInline: a small range answers one inline envelope that matches
// the plan package's own Run output exactly.
func TestPlanInline(t *testing.T) {
	_, ts := newTestServer(t)
	status, raw := post(t, ts, "/v1/plan",
		`{"problems":[{"n1":64,"n2":64,"n3":64,"mem":1e9,"pMin":1,"pMax":16}]}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	env := decode[struct {
		Results []*PlanResult   `json:"results"`
		Errors  []EnvelopeError `json:"errors"`
	}](t, raw)
	if len(env.Results) != 1 || env.Results[0] == nil || len(env.Errors) != 0 {
		t.Fatalf("envelope = %+v", env)
	}
	wantSum, wantPts, err := plan.Run(context.Background(), plan.Request{
		Dims: core.NewDims(64, 64, 64), Mem: 1e9, PMin: 1, PMax: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := env.Results[0].Summary; !reflect.DeepEqual(got, wantSum) {
		t.Fatalf("summary = %+v, want %+v", got, wantSum)
	}
	if got := env.Results[0].Points; !reflect.DeepEqual(got, wantPts) {
		t.Fatalf("points differ from plan.Run: %d vs %d", len(got), len(wantPts))
	}
}

// TestPlanValidationEnvelope: invalid problems fail the whole request with
// 400 and one indexed envelope error each; valid entries compute nothing.
func TestPlanValidationEnvelope(t *testing.T) {
	_, ts := newTestServer(t)
	status, raw := post(t, ts, "/v1/plan", `{"problems":[
		{"n1":64,"n2":64,"n3":64,"mem":1e9,"pMin":1,"pMax":8},
		{"n1":64,"n2":64,"n3":64,"mem":0,"pMin":1,"pMax":8},
		{"n1":0,"n2":64,"n3":64,"mem":1e9,"pMin":1,"pMax":8}]}`)
	if status != http.StatusBadRequest {
		t.Fatalf("status %d: %s", status, raw)
	}
	env := decode[PlanEnvelope](t, raw)
	if len(env.Results) != 3 || env.Results[0] != nil {
		t.Fatalf("results = %+v, want three nulls", env.Results)
	}
	if len(env.Errors) != 2 ||
		env.Errors[0].Index != 1 || env.Errors[0].Code != "bad_plan_range" ||
		env.Errors[1].Index != 2 || env.Errors[1].Code != "bad_dims" {
		t.Fatalf("errors = %+v", env.Errors)
	}

	status, _ = post(t, ts, "/v1/plan", `{"problems":[]}`)
	if status != http.StatusBadRequest {
		t.Fatalf("empty problems status %d", status)
	}
}

// streamPlanRows posts body to /v1/plan under ctx and decodes every NDJSON
// row until EOF.
func streamPlanRows(t *testing.T, ts *httptest.Server, body string) []planRow {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var rows []planRow
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		rows = append(rows, decode[planRow](t, sc.Bytes()))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestPlanStreamNDJSON: a range past the inline limit streams NDJSON —
// summary row first, then every point in P order, then the done row.
func TestPlanStreamNDJSON(t *testing.T) {
	_, ts := newTestServer(t) // inline limit defaults to 512; 600 points stream
	rows := streamPlanRows(t, ts,
		`{"problems":[{"n1":96,"n2":96,"n3":96,"mem":1e9,"pMin":1,"pMax":600}]}`)
	if len(rows) != 602 {
		t.Fatalf("got %d rows, want summary + 600 points + done", len(rows))
	}
	if rows[0].Summary == nil || rows[0].Summary.Points != 600 {
		t.Fatalf("first row = %+v, want the summary", rows[0])
	}
	for i, row := range rows[1:601] {
		if row.Point == nil || row.Problem != 0 {
			t.Fatalf("row %d = %+v, want a point", i+1, row)
		}
		if row.Point.P != i+1 {
			t.Fatalf("row %d out of order: P = %d, want %d", i+1, row.Point.P, i+1)
		}
	}
	if !rows[601].Done {
		t.Fatalf("last row = %+v, want done", rows[601])
	}

	// Forcing stream on a tiny range exercises the same path end to end.
	rows = streamPlanRows(t, ts,
		`{"problems":[{"n1":64,"n2":64,"n3":64,"mem":1e9,"pMin":1,"pMax":4}],"stream":true}`)
	if len(rows) != 6 || rows[0].Summary == nil || !rows[5].Done {
		t.Fatalf("forced stream rows = %+v", rows)
	}
}

// TestPlanStreamCancel: cancelling a client mid-stream stops the sweep and
// releases the pool workers; the server keeps serving. Run with -race this
// is the cancellation-correctness test for the streaming path.
func TestPlanStreamCancel(t *testing.T) {
	_, ts := newTestServer(t)
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	body := `{"problems":[{"n1":512,"n2":512,"n3":512,"mem":1e9,"pMin":1,"pMax":30000}]}`
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/plan", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read a couple of rows so the stream is demonstrably live, then hang up.
	sc := bufio.NewScanner(resp.Body)
	for i := 0; i < 3 && sc.Scan(); i++ {
	}
	cancel()
	resp.Body.Close()

	// The sweep's workers must exit once the context error propagates.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline+8 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after cancel: %d, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// And the limiter slot is back: a fresh plan succeeds.
	status, raw := post(t, ts, "/v1/plan",
		`{"problems":[{"n1":64,"n2":64,"n3":64,"mem":1e9,"pMin":1,"pMax":8}]}`)
	if status != http.StatusOK {
		t.Fatalf("post-cancel plan status %d: %s", status, raw)
	}
}

// TestPlanOverload503: with one plan slot, a live stream makes the next
// plan request answer 503 "overloaded" immediately; releasing the slot
// restores service.
func TestPlanOverload503(t *testing.T) {
	s := New(Config{Workers: 2, PlanConcurrency: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	// Headers arrive once streamPlan starts writing, so receiving the
	// response means the handler holds the only slot.
	resp, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(
		`{"problems":[{"n1":512,"n2":512,"n3":512,"mem":1e9,"pMin":1,"pMax":30000}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}

	status, raw := post(t, ts, "/v1/plan",
		`{"problems":[{"n1":64,"n2":64,"n3":64,"mem":1e9,"pMin":1,"pMax":8}]}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("second plan status %d: %s", status, raw)
	}
	if e := decode[ErrorResponse](t, raw); e.Kind != "overloaded" {
		t.Fatalf("kind = %q", e.Kind)
	}
	if s.overloads.Load() == 0 {
		t.Fatal("overload counter not incremented")
	}

	resp.Body.Close() // hang up; the handler notices and releases the slot
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, _ = post(t, ts, "/v1/plan",
			`{"problems":[{"n1":64,"n2":64,"n3":64,"mem":1e9,"pMin":1,"pMax":8}]}`)
		if status == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never released: status %d", status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPlanSingleflightCollapse: concurrent identical plans compute each
// point exactly once — the singleflight guarantee the serving benchmark
// relies on. 6 clients × 200 points must cost 200 misses, not 1200.
func TestPlanSingleflightCollapse(t *testing.T) {
	s := New(Config{Workers: 2, PlanConcurrency: 8, PlanInlineLimit: 1000})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	const clients, points = 6, 200
	body := `{"problems":[{"n1":64,"n2":64,"n3":64,"mem":1e9,"pMin":1,"pMax":200}]}`
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, raw := post(t, ts, "/v1/plan", body)
			if status != http.StatusOK {
				t.Errorf("plan status %d: %s", status, raw)
			}
		}()
	}
	wg.Wait()

	hits, misses := s.Cache().Stats()
	if misses != points {
		t.Fatalf("misses = %d, want exactly %d (one compute per point)", misses, points)
	}
	if hits+s.Cache().Shared() != int64(clients-1)*points {
		t.Fatalf("hits %d + shared %d ≠ %d", hits, s.Cache().Shared(), (clients-1)*points)
	}
	if got := s.planPoints.Load(); got != clients*points {
		t.Fatalf("planPoints = %d, want %d", got, clients*points)
	}

	status, raw := get(t, ts, "/debug/vars")
	if status != http.StatusOK {
		t.Fatalf("vars status %d", status)
	}
	vars := decode[VarsResponse](t, raw)
	if vars.PlanPoints != clients*points || vars.CacheShared != s.Cache().Shared() {
		t.Fatalf("vars = %+v", vars)
	}
}

// TestJobListEndpoint drives GET /v1/jobs end to end: ordering, cursor
// pagination, state filter, and parameter validation.
func TestJobListEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var ids []string
	for i := 0; i < 3; i++ {
		status, raw := post(t, ts, "/v1/simulate", `{"n1":64,"n2":64,"n3":64,"p":8}`)
		if status != http.StatusAccepted {
			t.Fatalf("simulate status %d: %s", status, raw)
		}
		id := decode[JobResponse](t, raw).ID
		waitJob(t, ts, id)
		ids = append(ids, id)
	}

	status, raw := get(t, ts, "/v1/jobs")
	if status != http.StatusOK {
		t.Fatalf("list status %d: %s", status, raw)
	}
	all := decode[JobListResponse](t, raw)
	if len(all.Jobs) != 3 || all.NextCursor != "" {
		t.Fatalf("list = %+v", all)
	}
	for i, j := range all.Jobs {
		if j.ID != ids[i] || j.Status != string(JobDone) || j.Created.IsZero() {
			t.Fatalf("jobs[%d] = %+v, want %s done", i, j, ids[i])
		}
	}

	_, raw = get(t, ts, "/v1/jobs?limit=2")
	page := decode[JobListResponse](t, raw)
	if len(page.Jobs) != 2 || page.NextCursor != ids[1] {
		t.Fatalf("page 1 = %+v", page)
	}
	_, raw = get(t, ts, "/v1/jobs?limit=2&cursor="+page.NextCursor)
	page = decode[JobListResponse](t, raw)
	if len(page.Jobs) != 1 || page.Jobs[0].ID != ids[2] || page.NextCursor != "" {
		t.Fatalf("page 2 = %+v", page)
	}

	_, raw = get(t, ts, "/v1/jobs?state=done")
	if done := decode[JobListResponse](t, raw); len(done.Jobs) != 3 {
		t.Fatalf("state=done = %+v", done)
	}
	_, raw = get(t, ts, "/v1/jobs?state=failed")
	if failed := decode[JobListResponse](t, raw); len(failed.Jobs) != 0 {
		t.Fatalf("state=failed = %+v", failed)
	}

	for _, q := range []string{"state=bogus", "limit=0", "limit=x", "cursor=7", "cursor=jx"} {
		if status, raw := get(t, ts, "/v1/jobs?"+q); status != http.StatusBadRequest {
			t.Fatalf("%s status %d: %s", q, status, raw)
		}
	}
}
