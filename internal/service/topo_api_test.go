package service

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestPredictTopologyFlat checks the topology block's degenerate case: on
// the flat fabric the topology-aware prediction must agree with the bare
// one exactly, with slowdown 1.
func TestPredictTopologyFlat(t *testing.T) {
	_, ts := newTestServer(t)
	base := `{"n1":64,"n2":64,"n3":64,"p":8,"alpha":2,"beta":1,"gamma":0.0625`
	status, raw := post(t, ts, "/v1/predict", base+`}`)
	if status != http.StatusOK {
		t.Fatalf("bare status %d: %s", status, raw)
	}
	bare := decode[PredictResponse](t, raw)

	status, raw = post(t, ts, "/v1/predict", base+`,"topology":{"spec":"flat"}}`)
	if status != http.StatusOK {
		t.Fatalf("flat status %d: %s", status, raw)
	}
	flat := decode[PredictResponse](t, raw)
	if flat.Total != bare.Total {
		t.Fatalf("flat topology total %v != bare %v", flat.Total, bare.Total)
	}
	if flat.Topology != "flat" || flat.Placement != "contiguous" {
		t.Fatalf("echo = %q/%q", flat.Topology, flat.Placement)
	}
	if flat.FlatTotal != bare.Total || flat.Slowdown != 1 {
		t.Fatalf("flatTotal %v slowdown %v, want %v and 1", flat.FlatTotal, flat.Slowdown, bare.Total)
	}
}

// TestPredictTopologyCongestion checks a contended fabric reports a
// slowdown > 1 decomposing as Total = FlatTotal · Slowdown.
func TestPredictTopologyCongestion(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"n1":64,"n2":64,"n3":64,"p":64,"alpha":2,"beta":1,"gamma":0.0625,` +
		`"topology":{"spec":"twolevel=8","place":"roundrobin"}}`
	status, raw := post(t, ts, "/v1/predict", body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	resp := decode[PredictResponse](t, raw)
	if resp.Slowdown <= 1 {
		t.Fatalf("twolevel=8 slowdown = %v, want > 1", resp.Slowdown)
	}
	if resp.Topology != "twolevel=8" || resp.Placement != "roundrobin" {
		t.Fatalf("echo = %q/%q", resp.Topology, resp.Placement)
	}
	if math.Abs(resp.Total-resp.FlatTotal*resp.Slowdown) > 1e-9*resp.Total {
		t.Fatalf("total %v != flatTotal %v · slowdown %v", resp.Total, resp.FlatTotal, resp.Slowdown)
	}
}

// TestSimulateTopologyJob runs the same problem on the flat and skinny-tree
// fabrics through the job API: the tree run must echo the fabric and come
// back with a strictly longer critical path, same communication volume.
func TestSimulateTopologyJob(t *testing.T) {
	_, ts := newTestServer(t)
	run := func(body string) SimulateResult {
		t.Helper()
		status, raw := post(t, ts, "/v1/simulate", body)
		if status != http.StatusAccepted {
			t.Fatalf("accept status %d: %s", status, raw)
		}
		final := waitJob(t, ts, decode[JobResponse](t, raw).ID)
		if final.Status != string(JobDone) {
			t.Fatalf("job = %+v", final)
		}
		return decode[SimulateResult](t, mustMarshal(t, final.Result))
	}
	base := `{"n1":48,"n2":48,"n3":48,"p":8,"alpha":2,"beta":1,"gamma":0.0625,"verify":true`
	flat := run(base + `}`)
	tree := run(base + `,"topology":{"spec":"tree=2x3","place":"contiguous"}}`)

	if tree.Topology != "tree=2x3" || tree.Placement != "contiguous" {
		t.Fatalf("echo = %q/%q", tree.Topology, tree.Placement)
	}
	if flat.Topology != "" || flat.Placement != "" {
		t.Fatalf("flat run echoed a topology: %q/%q", flat.Topology, flat.Placement)
	}
	if tree.CriticalPath <= flat.CriticalPath {
		t.Fatalf("tree critical path %v not above flat %v", tree.CriticalPath, flat.CriticalPath)
	}
	if tree.TotalWords != flat.TotalWords || tree.CommCost != flat.CommCost {
		t.Fatalf("topology changed communication volume: %+v vs %+v", tree, flat)
	}
	if tree.MaxAbsDiff == nil || *tree.MaxAbsDiff > 1e-9*48 {
		t.Fatalf("verification failed: %+v", tree.MaxAbsDiff)
	}
}

// TestPredictTopologyWalkMode checks a synchronous topology prediction
// above the table fast-path threshold (P = 4096 > 2048): the walk-mode
// charge oracle must serve it with the usual Total = FlatTotal · Slowdown
// decomposition intact.
func TestPredictTopologyWalkMode(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"n1":512,"n2":512,"n3":512,"p":4096,"alpha":2,"beta":1,"gamma":0.0625,` +
		`"topology":{"spec":"torus=16x16x16","place":"roundrobin"}}`
	status, raw := post(t, ts, "/v1/predict", body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	resp := decode[PredictResponse](t, raw)
	if resp.Slowdown < 1 {
		t.Fatalf("torus=16x16x16 slowdown = %v, want ≥ 1", resp.Slowdown)
	}
	if math.Abs(resp.Total-resp.FlatTotal*resp.Slowdown) > 1e-9*resp.Total {
		t.Fatalf("total %v != flatTotal %v · slowdown %v", resp.Total, resp.FlatTotal, resp.Slowdown)
	}
}

// TestPredictTopologyProcsLimit checks the MaxTopoProcs admission gate: a
// topology prediction beyond the configured ceiling is a 400 bad_topology
// naming the effective limit, and the same request without a topology
// block still succeeds.
func TestPredictTopologyProcsLimit(t *testing.T) {
	s := New(Config{Workers: 2, MaxTopoProcs: 512})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Shutdown(context.Background()); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	base := `{"n1":256,"n2":256,"n3":256,"p":1024,"alpha":2,"beta":1`
	status, raw := post(t, ts, "/v1/predict", base+`,"topology":{"spec":"torus=8x8x16"}}`)
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", status, raw)
	}
	e := decode[ErrorResponse](t, raw)
	if e.Kind != "bad_topology" {
		t.Fatalf("kind = %q, want bad_topology (%s)", e.Kind, e.Error)
	}
	if !strings.Contains(e.Error, "512") {
		t.Fatalf("rejection does not name the limit 512: %q", e.Error)
	}
	if status, raw := post(t, ts, "/v1/predict", base+`}`); status != http.StatusOK {
		t.Fatalf("bare predict at the same P rejected: %d %s", status, raw)
	}
}

// TestSimulateTopologyLargeP runs a P = 65536 torus problem through the
// job API on the event engine — above the goroutine engine's admission cap,
// legal on the event engine, and served by the walk-mode charge oracle.
func TestSimulateTopologyLargeP(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("65536-rank simulation")
	}
	_, ts := newTestServer(t)
	body := `{"n1":64,"n2":64,"n3":64,"p":65536,"engine":"event",` +
		`"topology":{"spec":"torus=16x16x16x16","place":"contiguous"}}`
	status, raw := post(t, ts, "/v1/simulate", body)
	if status != http.StatusAccepted {
		t.Fatalf("accept status %d: %s", status, raw)
	}
	final := waitJob(t, ts, decode[JobResponse](t, raw).ID)
	if final.Status != string(JobDone) {
		t.Fatalf("job = %+v", final)
	}
	res := decode[SimulateResult](t, mustMarshal(t, final.Result))
	if res.Topology != "torus=16x16x16x16" {
		t.Fatalf("echo = %q", res.Topology)
	}
	if res.CriticalPath <= 0 || res.TotalWords <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

// TestPredictTopologyCacheHit checks the topology prediction is served from
// the memo layer on repeat, byte-identical.
func TestPredictTopologyCacheHit(t *testing.T) {
	s, ts := newTestServer(t)
	body := `{"n1":64,"n2":64,"n3":64,"p":64,"alpha":2,"beta":1,"gamma":0.0625,` +
		`"topology":{"spec":"torus=4x4x4"}}`
	status, cold := post(t, ts, "/v1/predict", body)
	if status != http.StatusOK {
		t.Fatalf("cold status %d: %s", status, cold)
	}
	hitsBefore, _ := s.Cache().Stats()
	status, warm := post(t, ts, "/v1/predict", body)
	if status != http.StatusOK {
		t.Fatalf("warm status %d", status)
	}
	if string(cold) != string(warm) {
		t.Fatalf("cached topology prediction differs:\n%s\n%s", cold, warm)
	}
	if hitsAfter, _ := s.Cache().Stats(); hitsAfter <= hitsBefore {
		t.Fatal("repeat topology predict did not hit the cache")
	}
}
