package service

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// newArtifactServer builds a server with a temp-dir filesystem artifact
// store, plus any extra config the test needs.
func newArtifactServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	fs, err := store.NewFS(t.TempDir())
	if err != nil {
		t.Fatalf("NewFS: %v", err)
	}
	cfg.ArtifactStore = fs
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.JobTimeout == 0 {
		cfg.JobTimeout = 30 * time.Second
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Shutdown(context.Background()); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return s, ts
}

// getRange GETs path with a Range header, returning status, body, and the
// Content-Range header.
func getRange(t *testing.T, ts *httptest.Server, path, rng string) (int, []byte, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Range", rng)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header.Get("Content-Range")
}

// TestTraceArtifactRoundTrip is the tentpole acceptance path: a simulate
// job with "trace": true stores a Chrome trace artifact, the job response
// names it, the listing returns it with its hash, full and ranged GETs
// serve the exact bytes, and everything keeps working after the job's own
// metadata is evicted.
func TestTraceArtifactRoundTrip(t *testing.T) {
	_, ts := newArtifactServer(t, Config{JobRetention: 40 * time.Millisecond})
	status, raw := post(t, ts, "/v1/simulate", `{"n1":8,"n2":8,"n3":8,"p":4,"trace":true}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", status, raw)
	}
	id := decode[JobResponse](t, raw).ID
	job := waitJob(t, ts, id)
	if job.Status != string(JobDone) {
		t.Fatalf("job = %+v", job)
	}
	// The done job's response lists its artifacts and the result names the
	// trace.
	res := decode[SimulateResult](t, mustJSON(t, job.Result))
	if res.TraceArtifact != "trace.json" {
		t.Fatalf("traceArtifact = %q", res.TraceArtifact)
	}
	names := map[string]ArtifactJSON{}
	for _, a := range job.Artifacts {
		names[a.Name] = a
	}
	if _, ok := names["trace.json"]; !ok {
		t.Fatalf("job artifacts missing trace.json: %+v", job.Artifacts)
	}
	if _, ok := names["result.json"]; !ok {
		t.Fatalf("job artifacts missing result.json: %+v", job.Artifacts)
	}

	// Listing endpoint agrees.
	status, raw = get(t, ts, "/v1/jobs/"+id+"/artifacts")
	if status != http.StatusOK {
		t.Fatalf("list status %d: %s", status, raw)
	}
	listing := decode[ArtifactListResponse](t, raw)
	if listing.Job != id || len(listing.Artifacts) != len(job.Artifacts) {
		t.Fatalf("listing = %+v", listing)
	}

	// Full GET: bytes hash to the advertised sha256, valid trace JSON.
	status, body := get(t, ts, "/v1/jobs/"+id+"/artifacts/trace.json")
	if status != http.StatusOK {
		t.Fatalf("artifact status %d", status)
	}
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != names["trace.json"].SHA256 {
		t.Fatalf("content hash mismatch: %x vs %s", sum, names["trace.json"].SHA256)
	}
	var trace struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &trace); err != nil || len(trace.TraceEvents) == 0 {
		t.Fatalf("trace.json not Chrome trace JSON (%v): %.120s", err, body)
	}

	// Ranged GET: 206 with exactly the requested window.
	status, part, cr := getRange(t, ts, "/v1/jobs/"+id+"/artifacts/trace.json", "bytes=10-29")
	if status != http.StatusPartialContent {
		t.Fatalf("range status %d", status)
	}
	if string(part) != string(body[10:30]) {
		t.Fatalf("range bytes = %q, want %q", part, body[10:30])
	}
	if want := fmt.Sprintf("bytes 10-29/%d", len(body)); cr != want {
		t.Fatalf("Content-Range = %q, want %q", cr, want)
	}

	// Evict the job (40ms retention) and re-fetch: the job 404s, the
	// artifacts do not — durability past retention is the contract.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if status, _ := get(t, ts, "/v1/jobs/"+id); status == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never evicted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	status, raw = get(t, ts, "/v1/jobs/"+id+"/artifacts")
	if status != http.StatusOK || len(decode[ArtifactListResponse](t, raw).Artifacts) != len(listing.Artifacts) {
		t.Fatalf("post-eviction listing: status %d, %s", status, raw)
	}
	status, part, _ = getRange(t, ts, "/v1/jobs/"+id+"/artifacts/trace.json", "bytes=10-29")
	if status != http.StatusPartialContent || string(part) != string(body[10:30]) {
		t.Fatalf("post-eviction ranged GET: status %d, %q", status, part)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestBatchTraceAndCSVArtifacts(t *testing.T) {
	_, ts := newArtifactServer(t, Config{})
	status, raw := post(t, ts, "/v1/simulate",
		`{"problems":[{"n1":8,"n2":8,"n3":8,"p":4},{"n1":8,"n2":8,"n3":8,"p":2}],"trace":true}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", status, raw)
	}
	id := decode[JobResponse](t, raw).ID
	job := waitJob(t, ts, id)
	if job.Status != string(JobDone) {
		t.Fatalf("job = %+v", job)
	}
	var got []string
	for _, a := range job.Artifacts {
		got = append(got, a.Name)
	}
	want := []string{"result.json", "results.csv", "trace-0.json", "trace-1.json"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("artifacts = %v, want %v", got, want)
	}
	status, body := get(t, ts, "/v1/jobs/"+id+"/artifacts/results.csv")
	if status != http.StatusOK {
		t.Fatalf("csv status %d", status)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "n1,n2,n3,p,alg") {
		t.Fatalf("csv = %q", body)
	}
}

func TestTraceWithoutStoreIs400(t *testing.T) {
	_, ts := newTestServer(t) // no artifact store
	status, raw := post(t, ts, "/v1/simulate", `{"n1":8,"n2":8,"n3":8,"p":4,"trace":true}`)
	if status != http.StatusBadRequest {
		t.Fatalf("status %d: %s", status, raw)
	}
	if !strings.Contains(string(raw), "artifact storage") {
		t.Fatalf("error does not explain the fix: %s", raw)
	}
	// And the artifact routes answer 404, not 500.
	if status, _ := get(t, ts, "/v1/jobs/j1/artifacts"); status != http.StatusNotFound {
		t.Fatalf("artifact list without store = %d", status)
	}
}

func TestArtifactMissingAnd400s(t *testing.T) {
	_, ts := newArtifactServer(t, Config{})
	if status, _ := get(t, ts, "/v1/jobs/j999/artifacts/nope.json"); status != http.StatusNotFound {
		t.Fatalf("missing artifact = %d", status)
	}
	// Unknown job's listing is empty 200 (the catalog cannot distinguish
	// never-existed from wrote-nothing).
	status, raw := get(t, ts, "/v1/jobs/j999/artifacts")
	if status != http.StatusOK || len(decode[ArtifactListResponse](t, raw).Artifacts) != 0 {
		t.Fatalf("unknown job listing = %d: %s", status, raw)
	}
	// Traversal-shaped ids are 400, not filesystem errors.
	if status, _ := get(t, ts, "/v1/jobs/%2e%2e/artifacts"); status != http.StatusBadRequest {
		t.Fatalf("traversal id = %d", status)
	}
}

func TestPlanJobWritesNDJSONArtifact(t *testing.T) {
	_, ts := newArtifactServer(t, Config{})
	status, raw := post(t, ts, "/v1/plan",
		`{"problems":[{"n1":64,"n2":64,"n3":64,"mem":100000,"pMin":1,"pMax":16}],"job":true}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", status, raw)
	}
	id := decode[JobResponse](t, raw).ID
	job := waitJob(t, ts, id)
	if job.Status != string(JobDone) {
		t.Fatalf("job = %+v", job)
	}
	var res PlanJobResult
	if err := json.Unmarshal(mustJSON(t, job.Result), &res); err != nil {
		t.Fatal(err)
	}
	if res.Points != 16 || res.Artifact != "plan.ndjson" || len(res.Errors) != 0 {
		t.Fatalf("plan job result = %+v", res)
	}
	status, body := get(t, ts, "/v1/jobs/"+id+"/artifacts/plan.ndjson")
	if status != http.StatusOK {
		t.Fatalf("artifact status %d", status)
	}
	sc := bufio.NewScanner(strings.NewReader(string(body)))
	var rows []PlanRow
	for sc.Scan() {
		var row PlanRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad NDJSON row %q: %v", sc.Text(), err)
		}
		rows = append(rows, row)
	}
	// 1 summary + 16 points + 1 done row.
	if len(rows) != 18 || rows[0].Summary == nil || !rows[len(rows)-1].Done {
		t.Fatalf("rows = %d (first %+v, last %+v)", len(rows), rows[0], rows[len(rows)-1])
	}
	points := 0
	for _, r := range rows {
		if r.Point != nil {
			points++
		}
	}
	if points != 16 {
		t.Fatalf("point rows = %d, want 16", points)
	}
}

func TestPlanJobWithoutStoreIs400(t *testing.T) {
	_, ts := newTestServer(t)
	status, raw := post(t, ts, "/v1/plan",
		`{"problems":[{"n1":64,"n2":64,"n3":64,"mem":100000,"pMin":1,"pMax":4}],"job":true}`)
	if status != http.StatusBadRequest || !strings.Contains(string(raw), "artifact storage") {
		t.Fatalf("status %d: %s", status, raw)
	}
}

// TestMetricsAndStatsdAgree is the push-pipeline acceptance check: after
// one flush interval, the statsd sink's counters and the /metrics
// exposition report the same counts.
func TestMetricsAndStatsdAgree(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen udp: %v", err)
	}
	defer pc.Close()
	lines := make(chan string, 256)
	go func() {
		buf := make([]byte, 64<<10)
		for {
			n, _, err := pc.ReadFrom(buf)
			if err != nil {
				return
			}
			for _, l := range strings.Split(strings.TrimRight(string(buf[:n]), "\n"), "\n") {
				lines <- l
			}
		}
	}()

	s, ts := newArtifactServer(t, Config{})
	pusher, err := obs.NewPusher(obs.PushConfig{
		Addr:       pc.LocalAddr().String(),
		Interval:   time.Hour, // flushed explicitly
		Registries: []*obs.Registry{s.Registry()},
	})
	if err != nil {
		t.Fatalf("NewPusher: %v", err)
	}
	defer pusher.Close()

	const reqs = 5
	for i := 0; i < reqs; i++ {
		post(t, ts, "/v1/lowerbound", `{"n1":64,"n2":64,"n3":64,"p":8}`)
	}
	pusher.Flush()

	// The statsd side of service_requests_total.
	var pushed float64
	deadline := time.After(5 * time.Second)
	for pushed == 0 {
		select {
		case l := <-lines:
			if v, ok := strings.CutPrefix(l, "service_requests_total:"); ok {
				c, _, _ := strings.Cut(v, "|")
				pushed, _ = strconv.ParseFloat(c, 64)
			}
		case <-deadline:
			t.Fatal("statsd sink never received service_requests_total")
		}
	}
	if pushed < reqs {
		t.Fatalf("statsd counted %v requests, want ≥ %d", pushed, reqs)
	}

	// The /metrics side. The scrape itself is one more request; the pushed
	// flush happened before it, so pushed ≤ scraped ≤ pushed+poll slack.
	status, raw := get(t, ts, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	var scraped float64
	for _, line := range strings.Split(string(raw), "\n") {
		if v, ok := strings.CutPrefix(line, "service_requests_total "); ok {
			scraped, _ = strconv.ParseFloat(v, 64)
		}
	}
	if scraped < pushed || scraped > pushed+2 {
		t.Fatalf("scraped %v vs pushed %v: the two pipelines disagree", scraped, pushed)
	}
	// Artifact counters are exported on both paths too.
	if !strings.Contains(string(raw), "service_artifacts_written_total") {
		t.Fatalf("/metrics missing artifact counters:\n%.400s", raw)
	}
}
