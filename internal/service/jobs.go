package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// JobStatus is the lifecycle state of an async job.
type JobStatus string

// The job lifecycle: queued → running → one of the three terminal states.
const (
	// JobQueued means the job is accepted and waiting for a worker.
	JobQueued JobStatus = "queued"
	// JobRunning means a worker is executing the job.
	JobRunning JobStatus = "running"
	// JobDone means the job finished and its result is available.
	JobDone JobStatus = "done"
	// JobFailed means the job returned an error.
	JobFailed JobStatus = "failed"
	// JobCancelled means the job's context was cancelled (client request,
	// deadline, or server shutdown) before it produced a result.
	JobCancelled JobStatus = "cancelled"
)

// ErrJobQueueFull is returned by Submit when the bounded queue cannot
// accept another job; clients should retry later (the service maps it to
// 503).
var ErrJobQueueFull = errors.New("job queue full")

// ErrRunnerClosed is returned by Submit after Shutdown has begun.
var ErrRunnerClosed = errors.New("job runner closed")

// Job is one asynchronous unit of work with its own context. Fields are
// guarded by the owning runner's mutex; read them through Snapshot.
type Job struct {
	id       string
	num      int64 // monotone submit sequence; the listing cursor orders by it
	status   JobStatus
	result   any
	err      error
	cancel   context.CancelFunc
	done     chan struct{} // closed when the job reaches a terminal state
	created  time.Time
	finished time.Time
}

// JobView is an immutable snapshot of a job's state.
type JobView struct {
	// ID is the job identifier, as returned by Submit.
	ID string
	// Status is the lifecycle state at snapshot time.
	Status JobStatus
	// Result holds the job's result when Status is JobDone, else nil.
	Result any
	// Err holds the failure when Status is JobFailed or JobCancelled.
	Err error
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobFunc is the work a job performs. It must honor ctx: return ctx.Err()
// (or an error wrapping it) promptly once the context is done. The ctx
// carries the job's own id, readable with JobIDFrom — how a JobFunc names
// the artifacts it writes without the runner knowing about storage.
type JobFunc func(ctx context.Context) (any, error)

// jobIDKey keys the executing job's id in its context.
type jobIDKey struct{}

// JobIDFrom returns the id of the job whose JobFunc is executing under
// ctx, and whether ctx belongs to a job at all.
func JobIDFrom(ctx context.Context) (string, bool) {
	id, ok := ctx.Value(jobIDKey{}).(string)
	return id, ok
}

// Runner executes jobs on a bounded worker pool with per-job
// cancellation and deadline. It is the service's async half: Submit
// enqueues, workers drain, Shutdown stops intake and drains (or cancels)
// what is in flight. The pool mirrors the experiments.Map machinery — a
// fixed set of goroutines pulling from a shared work source — but persists
// across requests and tracks each unit as an addressable Job. Batch jobs
// fan their points out through experiments.MapContext under the job's own
// context, so one cancellation stops the whole sweep.
type Runner struct {
	mu       sync.Mutex
	jobs     map[string]*Job
	queue    chan *Job
	run      map[string]JobFunc // pending work, keyed by job id
	terminal []*Job             // terminal jobs in retirement order (oldest first)
	evicted  int64
	timeout  time.Duration
	retain   time.Duration
	maxKeep  int
	nextID   atomic.Int64
	inFlight atomic.Int64
	closed   bool
	wg       sync.WaitGroup
	stop     chan struct{} // closes the janitor on Shutdown
}

// RunnerConfig tunes a Runner. The zero value selects the defaults noted on
// each field.
type RunnerConfig struct {
	// Workers is the pool width; ≤ 0 selects 2.
	Workers int
	// QueueDepth bounds the job queue; ≤ 0 selects 64.
	QueueDepth int
	// Timeout is the per-job deadline; 0 disables it.
	Timeout time.Duration
	// Retention is how long a finished job stays queryable before it is
	// evicted. 0 selects ten minutes; negative retains forever. Without a
	// bound, every job the service ever ran would sit in memory for the
	// life of the process.
	Retention time.Duration
	// MaxRetained caps the number of finished jobs kept regardless of age,
	// evicting oldest-first. 0 selects 4096; negative removes the cap.
	MaxRetained int
}

// withDefaults fills the zero fields and normalizes the sentinels:
// Retention < 0 and MaxRetained < 0 become "disabled" (stored as zero).
func (c RunnerConfig) withDefaults() RunnerConfig {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Retention == 0 {
		c.Retention = 10 * time.Minute
	}
	if c.Retention < 0 {
		c.Retention = 0
	}
	if c.MaxRetained == 0 {
		c.MaxRetained = 4096
	}
	if c.MaxRetained < 0 {
		c.MaxRetained = 0
	}
	return c
}

// NewRunner starts a runner with the given worker count, queue depth, and
// per-job timeout (0 means no deadline), using the default retention
// policy. workers and queueDepth default to 2 and 64 when non-positive.
func NewRunner(workers, queueDepth int, timeout time.Duration) *Runner {
	return NewRunnerConfig(RunnerConfig{Workers: workers, QueueDepth: queueDepth, Timeout: timeout})
}

// NewRunnerConfig starts a runner with the full configuration, including
// the finished-job retention policy.
func NewRunnerConfig(cfg RunnerConfig) *Runner {
	cfg = cfg.withDefaults()
	r := &Runner{
		jobs:    make(map[string]*Job),
		run:     make(map[string]JobFunc),
		queue:   make(chan *Job, cfg.QueueDepth),
		timeout: cfg.Timeout,
		retain:  cfg.Retention,
		maxKeep: cfg.MaxRetained,
		stop:    make(chan struct{}),
	}
	r.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go r.worker()
	}
	if r.retain > 0 {
		go r.janitor()
	}
	return r
}

// janitor periodically evicts expired terminal jobs so retention holds even
// when the runner goes idle (no Submit/Get/Len to trigger lazy eviction).
func (r *Runner) janitor() {
	interval := r.retain / 4
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case now := <-t.C:
			r.mu.Lock()
			r.evictLocked(now)
			r.mu.Unlock()
		}
	}
}

// retireLocked records a job's arrival in a terminal state: stamps the
// finish time, queues it for eviction in retirement order, and applies the
// cap immediately. Callers hold r.mu and have already set the terminal
// status.
func (r *Runner) retireLocked(j *Job) {
	if j.finished.IsZero() {
		j.finished = time.Now()
	}
	r.terminal = append(r.terminal, j)
	r.evictLocked(j.finished)
}

// evictLocked drops terminal jobs that are over the cap or past the
// retention deadline, oldest first. Retirement order is append order under
// r.mu, so the front of the slice is always the eviction candidate.
func (r *Runner) evictLocked(now time.Time) {
	for len(r.terminal) > 0 {
		j := r.terminal[0]
		over := r.maxKeep > 0 && len(r.terminal) > r.maxKeep
		expired := r.retain > 0 && now.Sub(j.finished) >= r.retain
		if !over && !expired {
			return
		}
		r.terminal[0] = nil
		r.terminal = r.terminal[1:]
		delete(r.jobs, j.id)
		r.evicted++
	}
}

// Submit enqueues fn as a new job and returns its id. It fails fast with
// ErrJobQueueFull when the queue is at capacity and ErrRunnerClosed after
// shutdown has begun.
func (r *Runner) Submit(fn JobFunc) (string, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return "", ErrRunnerClosed
	}
	r.evictLocked(time.Now())
	num := r.nextID.Add(1)
	id := fmt.Sprintf("j%d", num)
	j := &Job{id: id, num: num, status: JobQueued, done: make(chan struct{}), created: time.Now()}
	select {
	case r.queue <- j:
	default:
		r.mu.Unlock()
		return "", ErrJobQueueFull
	}
	r.jobs[id] = j
	r.run[id] = fn
	r.mu.Unlock()
	return id, nil
}

// worker drains the queue until it is closed by Shutdown.
func (r *Runner) worker() {
	defer r.wg.Done()
	for j := range r.queue {
		r.execute(j)
	}
}

// execute runs one job under its own context.
func (r *Runner) execute(j *Job) {
	r.mu.Lock()
	fn := r.run[j.id]
	delete(r.run, j.id)
	if j.status == JobCancelled { // cancelled while queued
		r.mu.Unlock()
		return
	}
	ctx := context.WithValue(context.Background(), jobIDKey{}, j.id)
	var cancel context.CancelFunc
	if r.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, r.timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	j.cancel = cancel
	j.status = JobRunning
	r.mu.Unlock()
	r.inFlight.Add(1)
	defer r.inFlight.Add(-1)
	defer cancel()

	res, err := fn(ctx)

	r.mu.Lock()
	defer r.mu.Unlock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.status, j.result = JobDone, res
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.status, j.err = JobCancelled, err
	default:
		j.status, j.err = JobFailed, err
	}
	close(j.done)
	r.retireLocked(j)
}

// Get returns a snapshot of the job with the given id. An id whose job has
// been evicted by the retention policy reports false, exactly like an id
// that never existed.
func (r *Runner) Get(id string) (JobView, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evictLocked(time.Now())
	j, ok := r.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return JobView{ID: j.id, Status: j.status, Result: j.result, Err: j.err}, true
}

// Wait returns the job channel closed at completion, or false for an
// unknown id. Like every other accessor it applies the retention policy
// first, so it can never hand out a done channel for an id that Get and
// the HTTP API already report as evicted.
func (r *Runner) Wait(id string) (<-chan struct{}, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evictLocked(time.Now())
	j, ok := r.jobs[id]
	if !ok {
		return nil, false
	}
	return j.done, true
}

// Cancel cancels the job with the given id: a queued job goes straight to
// JobCancelled, a running job has its context cancelled (and reaches
// JobCancelled when its JobFunc returns the context error). It reports
// whether the id was known.
func (r *Runner) Cancel(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	if !ok {
		return false
	}
	switch j.status {
	case JobQueued:
		delete(r.run, id)
		j.status = JobCancelled
		j.err = context.Canceled
		close(j.done)
		r.retireLocked(j)
	case JobRunning:
		j.cancel()
	}
	return true
}

// InFlight returns the number of jobs currently executing.
func (r *Runner) InFlight() int64 { return r.inFlight.Load() }

// Len returns the number of jobs the runner remembers (all states), after
// applying the retention policy.
func (r *Runner) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evictLocked(time.Now())
	return len(r.jobs)
}

// Counts returns the number of remembered jobs per lifecycle state, after
// applying the retention policy.
func (r *Runner) Counts() map[JobStatus]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evictLocked(time.Now())
	out := make(map[JobStatus]int, 5)
	for _, j := range r.jobs {
		out[j.status]++
	}
	return out
}

// JobInfo is one row of a job listing: identity, lifecycle state, and
// submission time.
type JobInfo struct {
	ID      string
	Num     int64
	Status  JobStatus
	Created time.Time
}

// List returns up to limit jobs in submission order, optionally filtered
// by state ("" matches every state), starting after the given sequence
// number (0 starts from the beginning — pass the Num of the last row seen
// to continue). next is the cursor for the following page, or 0 when this
// page exhausted the listing. limit ≤ 0 selects 100. The retention policy
// is applied first, so evicted jobs never appear.
func (r *Runner) List(state JobStatus, after int64, limit int) (items []JobInfo, next int64) {
	if limit <= 0 {
		limit = 100
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evictLocked(time.Now())
	sel := make([]*Job, 0, len(r.jobs))
	for _, j := range r.jobs {
		if j.num <= after || (state != "" && j.status != state) {
			continue
		}
		sel = append(sel, j)
	}
	sort.Slice(sel, func(a, b int) bool { return sel[a].num < sel[b].num })
	more := len(sel) > limit
	if more {
		sel = sel[:limit]
	}
	items = make([]JobInfo, len(sel))
	for i, j := range sel {
		items[i] = JobInfo{ID: j.id, Num: j.num, Status: j.status, Created: j.created}
	}
	if more {
		next = sel[len(sel)-1].num
	}
	return items, next
}

// Evicted returns the cumulative number of jobs removed by the retention
// policy (age or cap).
func (r *Runner) Evicted() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evicted
}

// Shutdown stops accepting jobs and drains the pool. In-flight and queued
// jobs are given until ctx is done to finish; after that every remaining
// job's context is cancelled and Shutdown waits for the workers to return.
// The error is ctx.Err() when the deadline forced cancellation, else nil.
func (r *Runner) Shutdown(ctx context.Context) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	close(r.queue)
	close(r.stop)
	r.mu.Unlock()

	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Deadline passed: cancel everything still alive and wait it out.
	r.mu.Lock()
	for id, j := range r.jobs {
		switch j.status {
		case JobQueued:
			delete(r.run, id)
			j.status = JobCancelled
			j.err = context.Canceled
			close(j.done)
			r.retireLocked(j)
		case JobRunning:
			j.cancel()
		}
	}
	r.mu.Unlock()
	<-done
	return ctx.Err()
}
