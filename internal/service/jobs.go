package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// JobStatus is the lifecycle state of an async job.
type JobStatus string

// The job lifecycle: queued → running → one of the three terminal states.
const (
	// JobQueued means the job is accepted and waiting for a worker.
	JobQueued JobStatus = "queued"
	// JobRunning means a worker is executing the job.
	JobRunning JobStatus = "running"
	// JobDone means the job finished and its result is available.
	JobDone JobStatus = "done"
	// JobFailed means the job returned an error.
	JobFailed JobStatus = "failed"
	// JobCancelled means the job's context was cancelled (client request,
	// deadline, or server shutdown) before it produced a result.
	JobCancelled JobStatus = "cancelled"
)

// ErrJobQueueFull is returned by Submit when the bounded queue cannot
// accept another job; clients should retry later (the service maps it to
// 503).
var ErrJobQueueFull = errors.New("job queue full")

// ErrRunnerClosed is returned by Submit after Shutdown has begun.
var ErrRunnerClosed = errors.New("job runner closed")

// Job is one asynchronous unit of work with its own context. Fields are
// guarded by the owning runner's mutex; read them through Snapshot.
type Job struct {
	id       string
	status   JobStatus
	result   any
	err      error
	cancel   context.CancelFunc
	done     chan struct{} // closed when the job reaches a terminal state
	created  time.Time
	finished time.Time
}

// JobView is an immutable snapshot of a job's state.
type JobView struct {
	// ID is the job identifier, as returned by Submit.
	ID string
	// Status is the lifecycle state at snapshot time.
	Status JobStatus
	// Result holds the job's result when Status is JobDone, else nil.
	Result any
	// Err holds the failure when Status is JobFailed or JobCancelled.
	Err error
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobFunc is the work a job performs. It must honor ctx: return ctx.Err()
// (or an error wrapping it) promptly once the context is done.
type JobFunc func(ctx context.Context) (any, error)

// Runner executes jobs on a bounded worker pool with per-job
// cancellation and deadline. It is the service's async half: Submit
// enqueues, workers drain, Shutdown stops intake and drains (or cancels)
// what is in flight. The pool mirrors the experiments.Map machinery — a
// fixed set of goroutines pulling from a shared work source — but persists
// across requests and tracks each unit as an addressable Job. Batch jobs
// fan their points out through experiments.MapContext under the job's own
// context, so one cancellation stops the whole sweep.
type Runner struct {
	mu       sync.Mutex
	jobs     map[string]*Job
	queue    chan *Job
	run      map[string]JobFunc // pending work, keyed by job id
	timeout  time.Duration
	nextID   atomic.Int64
	inFlight atomic.Int64
	closed   bool
	wg       sync.WaitGroup
}

// NewRunner starts a runner with the given worker count, queue depth, and
// per-job timeout (0 means no deadline). workers and queueDepth default to
// 2 and 64 when non-positive.
func NewRunner(workers, queueDepth int, timeout time.Duration) *Runner {
	if workers <= 0 {
		workers = 2
	}
	if queueDepth <= 0 {
		queueDepth = 64
	}
	r := &Runner{
		jobs:    make(map[string]*Job),
		run:     make(map[string]JobFunc),
		queue:   make(chan *Job, queueDepth),
		timeout: timeout,
	}
	r.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go r.worker()
	}
	return r
}

// Submit enqueues fn as a new job and returns its id. It fails fast with
// ErrJobQueueFull when the queue is at capacity and ErrRunnerClosed after
// shutdown has begun.
func (r *Runner) Submit(fn JobFunc) (string, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return "", ErrRunnerClosed
	}
	id := fmt.Sprintf("j%d", r.nextID.Add(1))
	j := &Job{id: id, status: JobQueued, done: make(chan struct{}), created: time.Now()}
	select {
	case r.queue <- j:
	default:
		r.mu.Unlock()
		return "", ErrJobQueueFull
	}
	r.jobs[id] = j
	r.run[id] = fn
	r.mu.Unlock()
	return id, nil
}

// worker drains the queue until it is closed by Shutdown.
func (r *Runner) worker() {
	defer r.wg.Done()
	for j := range r.queue {
		r.execute(j)
	}
}

// execute runs one job under its own context.
func (r *Runner) execute(j *Job) {
	r.mu.Lock()
	fn := r.run[j.id]
	delete(r.run, j.id)
	if j.status == JobCancelled { // cancelled while queued
		r.mu.Unlock()
		return
	}
	ctx := context.Background()
	var cancel context.CancelFunc
	if r.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, r.timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	j.cancel = cancel
	j.status = JobRunning
	r.mu.Unlock()
	r.inFlight.Add(1)
	defer r.inFlight.Add(-1)
	defer cancel()

	res, err := fn(ctx)

	r.mu.Lock()
	defer r.mu.Unlock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.status, j.result = JobDone, res
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.status, j.err = JobCancelled, err
	default:
		j.status, j.err = JobFailed, err
	}
	close(j.done)
}

// Get returns a snapshot of the job with the given id.
func (r *Runner) Get(id string) (JobView, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return JobView{ID: j.id, Status: j.status, Result: j.result, Err: j.err}, true
}

// Wait returns the job channel closed at completion, or false for an
// unknown id.
func (r *Runner) Wait(id string) (<-chan struct{}, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	if !ok {
		return nil, false
	}
	return j.done, true
}

// Cancel cancels the job with the given id: a queued job goes straight to
// JobCancelled, a running job has its context cancelled (and reaches
// JobCancelled when its JobFunc returns the context error). It reports
// whether the id was known.
func (r *Runner) Cancel(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	if !ok {
		return false
	}
	switch j.status {
	case JobQueued:
		delete(r.run, id)
		j.status = JobCancelled
		j.err = context.Canceled
		close(j.done)
	case JobRunning:
		j.cancel()
	}
	return true
}

// InFlight returns the number of jobs currently executing.
func (r *Runner) InFlight() int64 { return r.inFlight.Load() }

// Len returns the number of jobs the runner remembers (all states).
func (r *Runner) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.jobs)
}

// Shutdown stops accepting jobs and drains the pool. In-flight and queued
// jobs are given until ctx is done to finish; after that every remaining
// job's context is cancelled and Shutdown waits for the workers to return.
// The error is ctx.Err() when the deadline forced cancellation, else nil.
func (r *Runner) Shutdown(ctx context.Context) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	close(r.queue)
	r.mu.Unlock()

	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Deadline passed: cancel everything still alive and wait it out.
	r.mu.Lock()
	for id, j := range r.jobs {
		switch j.status {
		case JobQueued:
			delete(r.run, id)
			j.status = JobCancelled
			j.err = context.Canceled
			close(j.done)
		case JobRunning:
			j.cancel()
		}
	}
	r.mu.Unlock()
	<-done
	return ctx.Err()
}
