package service

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// cacheShards is the fixed shard count of the LRU cache. Sixteen shards
// keep lock contention negligible at the request rates one process serves
// while costing only sixteen list heads of overhead.
const cacheShards = 16

// Cache is a sharded LRU memo for the service's pure computations
// (OptimalGrid's exhaustive divisor search, CaseGrid, PredictAlg1Time,
// LowerBound). Keys are strings built from the full input tuple — dims, P,
// and machine config where it matters — so a hit is exactly a repeat of an
// earlier computation and the stored value can be returned verbatim.
// Get/Put are safe for concurrent use; hit and miss counts are exposed for
// /debug/vars.
type Cache struct {
	shards [cacheShards]cacheShard
	hits   atomic.Int64
	misses atomic.Int64
	shared atomic.Int64
}

type cacheShard struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	order    *list.List // front = most recently used
	// flight holds the in-progress GetOrCompute calls of this shard, so
	// concurrent misses on one key collapse to a single computation.
	flight map[string]*flightCall
}

// flightCall is one in-progress computation: the owner closes done after
// publishing val, and ok distinguishes a completed computation from one
// abandoned by a panic (waiters then compute for themselves).
type flightCall struct {
	done chan struct{}
	val  any
	ok   bool
}

type cacheEntry struct {
	key string
	val any
}

// NewCache returns a cache holding about capacity entries in total
// (capacity/16 per shard, minimum one). capacity ≤ 0 selects the default
// of 4096.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 4096
	}
	per := (capacity + cacheShards - 1) / cacheShards
	if per < 1 {
		per = 1
	}
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].capacity = per
		c.shards[i].entries = make(map[string]*list.Element)
		c.shards[i].order = list.New()
	}
	return c
}

// shardFor picks the shard by FNV-1a hash of the key.
func (c *Cache) shardFor(key string) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &c.shards[h%cacheShards]
}

// Get returns the cached value for key and whether it was present, marking
// the entry most recently used.
func (c *Cache) Get(key string) (any, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	s.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).val, true
}

// Put stores val under key, evicting the least recently used entry of the
// shard when it is full.
func (c *Cache) Put(key string, val any) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.putLocked(key, val)
}

func (s *cacheShard) putLocked(key string, val any) {
	if el, ok := s.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		s.order.MoveToFront(el)
		return
	}
	if s.order.Len() >= s.capacity {
		oldest := s.order.Back()
		if oldest != nil {
			s.order.Remove(oldest)
			delete(s.entries, oldest.Value.(*cacheEntry).key)
		}
	}
	s.entries[key] = s.order.PushFront(&cacheEntry{key: key, val: val})
}

// GetOrCompute returns the cached value for key, computing and storing it
// on a miss. Concurrent misses on the same key collapse to one computation
// (singleflight): the first caller runs fn outside the shard lock while
// later callers wait on its result, counted under Shared() rather than as
// misses. This is what keeps a burst of identical plan or grid requests
// from multiplying the divisor-search work P-fold — the original
// duplicated-compute design was fine for microsecond memo bodies but not
// for plan points, whose OptimalUnderMemory search is the request cost.
func (c *Cache) GetOrCompute(key string, fn func() any) any {
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		c.hits.Add(1)
		v := el.Value.(*cacheEntry).val
		s.mu.Unlock()
		return v
	}
	if fc, ok := s.flight[key]; ok {
		c.shared.Add(1)
		s.mu.Unlock()
		<-fc.done
		if fc.ok {
			return fc.val
		}
		// The owner panicked before publishing; compute independently.
		return c.GetOrCompute(key, fn)
	}
	c.misses.Add(1)
	fc := &flightCall{done: make(chan struct{})}
	if s.flight == nil {
		s.flight = make(map[string]*flightCall)
	}
	s.flight[key] = fc
	s.mu.Unlock()
	// The flight entry must be cleared and waiters released even if fn
	// panics — otherwise every later caller of this key would block
	// forever. The cached value is only stored on success.
	defer func() {
		s.mu.Lock()
		delete(s.flight, key)
		if fc.ok {
			s.putLocked(key, fc.val)
		}
		s.mu.Unlock()
		close(fc.done)
	}()
	fc.val = fn()
	fc.ok = true
	return fc.val
}

// Len returns the current number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Shared returns how many GetOrCompute calls were satisfied by waiting on
// another caller's in-flight computation instead of computing themselves —
// the work singleflight saved. It is disjoint from both hits and misses.
func (c *Cache) Shared() int64 {
	return c.shared.Load()
}
