package service

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// cacheShards is the fixed shard count of the LRU cache. Sixteen shards
// keep lock contention negligible at the request rates one process serves
// while costing only sixteen list heads of overhead.
const cacheShards = 16

// Cache is a sharded LRU memo for the service's pure computations
// (OptimalGrid's exhaustive divisor search, CaseGrid, PredictAlg1Time,
// LowerBound). Keys are strings built from the full input tuple — dims, P,
// and machine config where it matters — so a hit is exactly a repeat of an
// earlier computation and the stored value can be returned verbatim.
// Get/Put are safe for concurrent use; hit and miss counts are exposed for
// /debug/vars.
type Cache struct {
	shards [cacheShards]cacheShard
	hits   atomic.Int64
	misses atomic.Int64
}

type cacheShard struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	order    *list.List // front = most recently used
}

type cacheEntry struct {
	key string
	val any
}

// NewCache returns a cache holding about capacity entries in total
// (capacity/16 per shard, minimum one). capacity ≤ 0 selects the default
// of 4096.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 4096
	}
	per := (capacity + cacheShards - 1) / cacheShards
	if per < 1 {
		per = 1
	}
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].capacity = per
		c.shards[i].entries = make(map[string]*list.Element)
		c.shards[i].order = list.New()
	}
	return c
}

// shardFor picks the shard by FNV-1a hash of the key.
func (c *Cache) shardFor(key string) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &c.shards[h%cacheShards]
}

// Get returns the cached value for key and whether it was present, marking
// the entry most recently used.
func (c *Cache) Get(key string) (any, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	s.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).val, true
}

// Put stores val under key, evicting the least recently used entry of the
// shard when it is full.
func (c *Cache) Put(key string, val any) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		s.order.MoveToFront(el)
		return
	}
	if s.order.Len() >= s.capacity {
		oldest := s.order.Back()
		if oldest != nil {
			s.order.Remove(oldest)
			delete(s.entries, oldest.Value.(*cacheEntry).key)
		}
	}
	s.entries[key] = s.order.PushFront(&cacheEntry{key: key, val: val})
}

// GetOrCompute returns the cached value for key, computing and storing it
// on a miss. Concurrent misses on the same key may compute fn more than
// once — fn is pure, so the duplicates are identical and merely redundant;
// a singleflight layer is not worth its synchronization on these
// microsecond-to-millisecond computations.
func (c *Cache) GetOrCompute(key string, fn func() any) any {
	if v, ok := c.Get(key); ok {
		return v
	}
	v := fn()
	c.Put(key, v)
	return v
}

// Len returns the current number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
