package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{Workers: 2, JobTimeout: 30 * time.Second})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Shutdown(context.Background()); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return s, ts
}

// post sends body to path and returns the status and raw response body.
func post(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func decode[T any](t *testing.T, raw []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("unmarshal %T from %s: %v", v, raw, err)
	}
	return v
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	status, raw := get(t, ts, "/healthz")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if h := decode[HealthResponse](t, raw); h.Status != "ok" {
		t.Fatalf("health = %+v", h)
	}
}

func TestPprofGatedByConfig(t *testing.T) {
	// Off by default: the profile endpoints must not exist.
	_, ts := newTestServer(t)
	if status, _ := get(t, ts, "/debug/pprof/"); status != http.StatusNotFound {
		t.Fatalf("pprof disabled but /debug/pprof/ answered %d", status)
	}

	s := New(Config{Workers: 2, EnablePprof: true})
	tsOn := httptest.NewServer(s.Handler())
	defer tsOn.Close()
	defer s.Shutdown(context.Background())
	status, raw := get(t, tsOn, "/debug/pprof/")
	if status != http.StatusOK {
		t.Fatalf("pprof enabled but /debug/pprof/ answered %d", status)
	}
	if !bytes.Contains(raw, []byte("goroutine")) {
		t.Fatalf("pprof index does not list profiles: %.200s", raw)
	}
}

func TestLowerBoundSingle(t *testing.T) {
	_, ts := newTestServer(t)
	status, raw := post(t, ts, "/v1/lowerbound", `{"n1":9600,"n2":2400,"n3":600,"p":512}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	resp := decode[LowerBoundResponse](t, raw)
	d := core.NewDims(9600, 2400, 600)
	if want := core.LowerBound(d, 512); resp.Bound != want {
		t.Fatalf("bound = %v, want %v", resp.Bound, want)
	}
	if resp.Case != int(core.CaseOf(d, 512)) {
		t.Fatalf("case = %d", resp.Case)
	}
	if resp.Footprint != core.D(d, 512) {
		t.Fatalf("footprint = %v", resp.Footprint)
	}
}

func TestLowerBoundBatch(t *testing.T) {
	_, ts := newTestServer(t)
	status, raw := post(t, ts, "/v1/lowerbound",
		`{"batch":[{"n1":100,"n2":100,"n3":100,"p":8},{"n1":9600,"n2":2400,"n3":600,"p":512}]}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	resp := decode[BatchLowerBoundResponse](t, raw)
	if len(resp.Results) != 2 {
		t.Fatalf("got %d results", len(resp.Results))
	}
	if want := core.LowerBound(core.Square(100), 8); resp.Results[0].Bound != want {
		t.Fatalf("batch[0].bound = %v, want %v", resp.Results[0].Bound, want)
	}
	if resp.Results[1].Problem.P != 512 {
		t.Fatalf("batch order lost: %+v", resp.Results[1].Problem)
	}
}

// TestErrorStatusMapping pins the taxonomy → HTTP status contract of every
// v1 endpoint.
func TestErrorStatusMapping(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, path, body string
		wantStatus       int
		wantKind         string
	}{
		{"bad dims", "/v1/lowerbound", `{"n1":0,"n2":5,"n3":5,"p":4}`, 400, "bad_dims"},
		{"bad dims in batch", "/v1/lowerbound", `{"batch":[{"n1":5,"n2":5,"n3":5,"p":4},{"n1":-1,"n2":5,"n3":5,"p":4}]}`, 400, "bad_dims"},
		{"bad P", "/v1/lowerbound", `{"n1":5,"n2":5,"n3":5,"p":0}`, 400, "bad_processor_count"},
		{"malformed JSON", "/v1/lowerbound", `{"n1":`, 400, "bad_request"},
		{"bad dims grid", "/v1/grid", `{"n1":5,"n2":-2,"n3":5,"p":4}`, 400, "bad_dims"},
		{"grid mismatch", "/v1/predict", `{"n1":64,"n2":64,"n3":64,"p":8,"grid":{"p1":2,"p2":2,"p3":3},"beta":1}`, 422, "grid_mismatch"},
		{"bad grid extents", "/v1/predict", `{"n1":64,"n2":64,"n3":64,"p":8,"grid":{"p1":0,"p2":2,"p3":4},"beta":1}`, 422, "grid_mismatch"},
		{"unknown alg", "/v1/simulate", `{"alg":"Strassen9000","n1":8,"n2":8,"n3":8,"p":4}`, 404, "unsupported_alg"},
		{"sim too large", "/v1/simulate", `{"n1":4000,"n2":4000,"n3":4000,"p":8}`, 400, "bad_dims"},
		{"sim too many procs", "/v1/simulate", `{"n1":64,"n2":64,"n3":64,"p":100000}`, 400, "too_many_ranks"},
		{"sim too many procs event", "/v1/simulate", `{"n1":64,"n2":64,"n3":64,"p":2000000,"engine":"event"}`, 400, "too_many_ranks"},
		{"unknown engine", "/v1/simulate", `{"n1":64,"n2":64,"n3":64,"p":8,"engine":"fibers"}`, 400, "bad_opts"},
		{"sim grid mismatch", "/v1/simulate", `{"n1":64,"n2":64,"n3":64,"p":8,"grid":{"p1":-1,"p2":2,"p3":4}}`, 422, "grid_mismatch"},
		{"unknown topology", "/v1/predict", `{"n1":64,"n2":64,"n3":64,"p":8,"beta":1,"topology":{"spec":"hypercube=3"}}`, 400, "bad_topology"},
		{"topology size mismatch", "/v1/predict", `{"n1":64,"n2":64,"n3":64,"p":8,"beta":1,"topology":{"spec":"torus=4x4"}}`, 400, "bad_topology"},
		{"unknown placement", "/v1/simulate", `{"n1":64,"n2":64,"n3":64,"p":8,"topology":{"spec":"flat","place":"zigzag"}}`, 400, "bad_topology"},
		{"batch topology mismatch", "/v1/simulate", `{"batch":[{"n1":64,"n2":64,"n3":64,"p":8},{"n1":48,"n2":48,"n3":48,"p":4}],"topology":{"spec":"torus=2x2x2"}}`, 400, "bad_topology"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, raw := post(t, ts, tc.path, tc.body)
			if status != tc.wantStatus {
				t.Fatalf("status = %d, want %d (%s)", status, tc.wantStatus, raw)
			}
			if e := decode[ErrorResponse](t, raw); e.Kind != tc.wantKind {
				t.Fatalf("kind = %q, want %q (%s)", e.Kind, tc.wantKind, e.Error)
			}
		})
	}
	if status, raw := get(t, ts, "/v1/jobs/nope"); status != 404 {
		t.Fatalf("unknown job status = %d: %s", status, raw)
	}
}

func TestGridEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	status, raw := post(t, ts, "/v1/grid", `{"n1":9600,"n2":2400,"n3":600,"p":512}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	resp := decode[GridResponse](t, raw)
	d := core.NewDims(9600, 2400, 600)
	want := grid.Optimal(d, 512)
	if resp.Optimal != (GridJSON{want.P1, want.P2, want.P3}) {
		t.Fatalf("optimal = %+v, want %v", resp.Optimal, want)
	}
	if resp.CommCost != grid.CommCost(d, want) {
		t.Fatalf("commCost = %v", resp.CommCost)
	}
	if resp.CaseGrid == nil {
		t.Fatalf("caseGrid missing (this shape admits the exact §5.2 grid): %s", raw)
	}
	// The §5.2 grid on this shape attains the bound: ratio 1.
	if math.Abs(resp.RatioToBound-1) > 1e-9 {
		t.Fatalf("ratioToBound = %v", resp.RatioToBound)
	}
	// With a memory limit admitting the optimal grid (its footprint here
	// is D = 270000 words) the constrained answer matches it; tighter
	// limits report that nothing fits, since eq. (3)'s positive terms are
	// exactly the footprint.
	status, raw = post(t, ts, "/v1/grid", `{"n1":9600,"n2":2400,"n3":600,"p":512,"mem":300000}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	memResp := decode[GridResponse](t, raw)
	if !memResp.UnderMemoryFits || memResp.UnderMemory == nil {
		t.Fatalf("underMemory missing: %s", raw)
	}
	if memResp.UnderMemoryCost < memResp.CommCost {
		t.Fatalf("memory-constrained cost %v below unconstrained %v", memResp.UnderMemoryCost, memResp.CommCost)
	}
}

func TestPredictEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	status, raw := post(t, ts, "/v1/predict",
		`{"n1":9600,"n2":2400,"n3":600,"p":512,"alpha":1e-6,"beta":1e-9,"gamma":1e-11}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	resp := decode[PredictResponse](t, raw)
	if resp.Total <= 0 || resp.Total != resp.Compute+resp.Bandwidth+resp.Latency {
		t.Fatalf("inconsistent decomposition: %+v", resp)
	}
	if resp.Words <= 0 || resp.Messages <= 0 {
		t.Fatalf("words/messages missing: %+v", resp)
	}
}

// TestCacheHitBitIdentical asserts a cache hit serves byte-identical JSON
// to the cold computation, and that the hit is observable via /debug/vars.
func TestCacheHitBitIdentical(t *testing.T) {
	s, ts := newTestServer(t)
	body := `{"n1":9600,"n2":2400,"n3":600,"p":512}`
	for _, path := range []string{"/v1/grid", "/v1/lowerbound", "/v1/predict"} {
		req := body
		if path == "/v1/predict" {
			req = `{"n1":9600,"n2":2400,"n3":600,"p":512,"alpha":1,"beta":2,"gamma":3}`
		}
		status, cold := post(t, ts, path, req)
		if status != http.StatusOK {
			t.Fatalf("%s cold status %d: %s", path, status, cold)
		}
		hitsBefore, _ := s.Cache().Stats()
		status, warm := post(t, ts, path, req)
		if status != http.StatusOK {
			t.Fatalf("%s warm status %d", path, status)
		}
		if !bytes.Equal(cold, warm) {
			t.Fatalf("%s: cached response differs from cold:\n%s\n%s", path, cold, warm)
		}
		if hitsAfter, _ := s.Cache().Stats(); hitsAfter <= hitsBefore {
			t.Fatalf("%s: repeat request did not hit the cache", path)
		}
	}
	status, raw := get(t, ts, "/debug/vars")
	if status != http.StatusOK {
		t.Fatalf("vars status %d", status)
	}
	vars := decode[VarsResponse](t, raw)
	if vars.CacheHits == 0 || vars.CacheMisses == 0 || vars.CacheEntries == 0 {
		t.Fatalf("cache counters not visible: %+v", vars)
	}
	if vars.Requests == 0 {
		t.Fatalf("request counter not visible: %+v", vars)
	}
}

// waitJob polls the job API until the job leaves the queue/run states.
func waitJob(t *testing.T, ts *httptest.Server, id string) JobResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		status, raw := get(t, ts, "/v1/jobs/"+id)
		if status != http.StatusOK {
			t.Fatalf("jobs/%s status %d: %s", id, status, raw)
		}
		resp := decode[JobResponse](t, raw)
		if resp.Status != string(JobQueued) && resp.Status != string(JobRunning) {
			return resp
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, resp.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSimulateJobLifecycle drives POST /v1/simulate → GET /v1/jobs/{id}
// end-to-end and checks the simulated run attains the Theorem 3 bound on a
// conforming configuration.
func TestSimulateJobLifecycle(t *testing.T) {
	s, ts := newTestServer(t)
	status, raw := post(t, ts, "/v1/simulate", `{"n1":64,"n2":64,"n3":64,"p":8,"verify":true}`)
	if status != http.StatusAccepted {
		t.Fatalf("accept status %d: %s", status, raw)
	}
	accepted := decode[JobResponse](t, raw)
	if accepted.ID == "" || accepted.Status != string(JobQueued) {
		t.Fatalf("accept = %+v", accepted)
	}
	final := waitJob(t, ts, accepted.ID)
	if final.Status != string(JobDone) {
		t.Fatalf("job = %+v", final)
	}
	res := decode[SimulateResult](t, mustMarshal(t, final.Result))
	if res.Alg != "Alg1" {
		t.Fatalf("alg = %q", res.Alg)
	}
	// 64³ on P=8 admits the exact 2×2×2 grid: measured == bound.
	if math.Abs(res.RatioToBound-1) > 1e-9 {
		t.Fatalf("ratioToBound = %v (grid %+v)", res.RatioToBound, res.Grid)
	}
	if res.MaxAbsDiff == nil || *res.MaxAbsDiff > 1e-9*64 {
		t.Fatalf("verification failed: %+v", res.MaxAbsDiff)
	}
	if s.WordsSimulated() <= 0 {
		t.Fatal("wordsSimulated counter not incremented")
	}
}

func TestSimulateBatchJob(t *testing.T) {
	_, ts := newTestServer(t)
	status, raw := post(t, ts, "/v1/simulate",
		`{"alg":"alg1","batch":[{"n1":64,"n2":64,"n3":64,"p":8},{"n1":48,"n2":48,"n3":48,"p":4}]}`)
	if status != http.StatusAccepted {
		t.Fatalf("accept status %d: %s", status, raw)
	}
	accepted := decode[JobResponse](t, raw)
	final := waitJob(t, ts, accepted.ID)
	if final.Status != string(JobDone) {
		t.Fatalf("job = %+v", final)
	}
	results := decode[[]SimulateResult](t, mustMarshal(t, final.Result))
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Problem.P != 8 || results[1].Problem.P != 4 {
		t.Fatalf("batch order lost: %+v", results)
	}
	for _, r := range results {
		if r.CommCost <= 0 || r.CommCost < r.Bound {
			t.Fatalf("measured %v below bound %v", r.CommCost, r.Bound)
		}
	}
}

func TestSimulateJobCancel(t *testing.T) {
	_, ts := newTestServer(t)
	// A wide batch keeps the job running long enough to cancel; the
	// between-point context checks then stop it.
	var sb strings.Builder
	sb.WriteString(`{"batch":[`)
	for i := 0; i < 64; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"n1":96,"n2":96,"n3":96,"p":16}`)
	}
	sb.WriteString(`]}`)
	status, raw := post(t, ts, "/v1/simulate", sb.String())
	if status != http.StatusAccepted {
		t.Fatalf("accept status %d: %s", status, raw)
	}
	id := decode[JobResponse](t, raw).ID
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	final := waitJob(t, ts, id)
	// The job may have finished before the cancel landed; both terminal
	// states are legal, but a cancelled job must report the context error.
	if final.Status == string(JobCancelled) && final.Error == "" {
		t.Fatalf("cancelled without error: %+v", final)
	}
	if final.Status == string(JobFailed) {
		t.Fatalf("job failed: %+v", final)
	}
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}
