package service

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheBasics(t *testing.T) {
	c := NewCache(64)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	c.Put("a", 2)
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatalf("overwrite lost: %v", v)
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses, want 2, 1", hits, misses)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	// Capacity 32 = two entries per shard. Collect three keys landing in
	// one shard and check the least recently *used* (not inserted) entry
	// is the one evicted.
	c := NewCache(32)
	shard := c.shardFor("k0")
	keys := []string{"k0"}
	for i := 1; len(keys) < 3; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shardFor(k) == shard {
			keys = append(keys, k)
		}
	}
	c.Put(keys[0], 0)
	c.Put(keys[1], 1)
	if _, ok := c.Get(keys[0]); !ok { // touch keys[0]: keys[1] becomes LRU
		t.Fatal("entry missing before eviction")
	}
	c.Put(keys[2], 2) // shard full: evicts keys[1]
	if _, ok := c.Get(keys[1]); ok {
		t.Fatal("LRU entry not evicted")
	}
	for _, want := range []int{0, 2} {
		if v, ok := c.Get(keys[want]); !ok || v.(int) != want {
			t.Fatalf("recently used %s evicted", keys[want])
		}
	}
}

func TestCacheGetOrCompute(t *testing.T) {
	c := NewCache(64)
	calls := 0
	fn := func() any { calls++; return 42 }
	if v := c.GetOrCompute("k", fn); v.(int) != 42 {
		t.Fatalf("computed %v", v)
	}
	if v := c.GetOrCompute("k", fn); v.(int) != 42 {
		t.Fatalf("cached %v", v)
	}
	if calls != 1 {
		t.Fatalf("fn called %d times, want 1", calls)
	}
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCacheSingleflight: concurrent GetOrCompute calls on one cold key run
// the compute function exactly once; the late arrivals park on the
// in-flight call and are counted as shared, not as hits or misses.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache(64)
	const waiters = 8
	release := make(chan struct{})
	var calls atomic.Int64
	var wg sync.WaitGroup
	results := make([]int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.GetOrCompute("k", func() any {
				calls.Add(1)
				<-release
				return 42
			}).(int)
		}(i)
	}
	// Hold the compute open until every other goroutine has joined the
	// flight, so the collapse is forced, not a race we might win.
	waitUntil(t, "waiters to join the flight", func() bool { return c.Shared() == waiters-1 })
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("waiter %d got %d", i, v)
		}
	}
	hits, misses := c.Stats()
	if hits != 0 || misses != 1 || c.Shared() != waiters-1 {
		t.Fatalf("stats = %d hits, %d misses, %d shared; want 0, 1, %d",
			hits, misses, c.Shared(), waiters-1)
	}
}

// TestCacheSingleflightPanic: a compute that panics publishes nothing; the
// parked waiter retries with its own function instead of receiving a stale
// zero value or deadlocking on a never-closed flight.
func TestCacheSingleflightPanic(t *testing.T) {
	c := NewCache(64)
	gate := make(chan struct{})
	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		c.GetOrCompute("k", func() any { <-gate; panic("boom") })
	}()
	waitUntil(t, "panicking flight to register", func() bool { _, m := c.Stats(); return m == 1 })
	got := make(chan int, 1)
	go func() {
		got <- c.GetOrCompute("k", func() any { return 7 }).(int)
	}()
	waitUntil(t, "waiter to join the flight", func() bool { return c.Shared() == 1 })
	close(gate)
	if p := <-panicked; p == nil {
		t.Fatal("compute did not panic through GetOrCompute")
	}
	if v := <-got; v != 7 {
		t.Fatalf("waiter after panic got %d, want its own computation 7", v)
	}
	if v, ok := c.Get("k"); !ok || v.(int) != 7 {
		t.Fatalf("cache after retry = %v, %v", v, ok)
	}
}

// TestCacheSingleflightPanicReleasesManyWaiters: the abandonment path with
// a full crowd — every waiter parked on a panicking flight must be
// released (fc.ok == false) and recompute for itself via the recursive
// GetOrCompute, none deadlocking on the never-published value. Run with
// -race this also proves the flight map's cleanup is synchronized.
func TestCacheSingleflightPanicReleasesManyWaiters(t *testing.T) {
	c := NewCache(64)
	const waiters = 6
	gate := make(chan struct{})
	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		c.GetOrCompute("k", func() any { <-gate; panic("boom") })
	}()
	waitUntil(t, "panicking flight to register", func() bool { _, m := c.Stats(); return m == 1 })
	got := make(chan int, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			got <- c.GetOrCompute("k", func() any { return 7 }).(int)
		}()
	}
	waitUntil(t, "waiters to join the flight", func() bool { return c.Shared() >= waiters })
	close(gate)
	if p := <-panicked; p == nil {
		t.Fatal("compute did not panic through GetOrCompute")
	}
	for i := 0; i < waiters; i++ {
		select {
		case v := <-got:
			if v != 7 {
				t.Fatalf("waiter got %d, want 7", v)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("waiter %d still parked after the owner panicked", i)
		}
	}
}

// TestCacheSingleflightSurvivesEviction: waiters read the flight's
// published value, not the cache entry, so a value evicted from the LRU
// the instant it is stored (here: a capacity-starved shard flooded during
// the flight) still reaches every waiter. Run with -race.
func TestCacheSingleflightSurvivesEviction(t *testing.T) {
	c := NewCache(1) // one entry per shard: any flood evicts
	release := make(chan struct{})
	const waiters = 4
	got := make(chan int, waiters+1)
	go func() {
		got <- c.GetOrCompute("k", func() any { <-release; return 42 }).(int)
	}()
	waitUntil(t, "flight to register", func() bool { _, m := c.Stats(); return m == 1 })
	for i := 0; i < waiters; i++ {
		go func() {
			got <- c.GetOrCompute("k", func() any { return 42 }).(int)
		}()
	}
	waitUntil(t, "waiters to join the flight", func() bool { return c.Shared() == waiters })
	// Flood every shard while the flight is still open, so whichever
	// shard "k" hashes to has its (single) slot churned before and after
	// the owner publishes.
	for i := 0; i < 64; i++ {
		c.Put(fmt.Sprintf("flood%d", i), i)
	}
	close(release)
	for i := 0; i < waiters+1; i++ {
		select {
		case v := <-got:
			if v != 42 {
				t.Fatalf("caller got %d, want 42 despite eviction", v)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("caller never received the in-flight value")
		}
	}
}

// TestCacheConcurrent hammers the cache from many goroutines; run with
// -race this is the shard-locking correctness test.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%200)
				v := c.GetOrCompute(k, func() any { return i % 200 })
				// Values are keyed deterministically, so any hit must
				// return the key's own value.
				if v.(int) != i%200 {
					t.Errorf("GetOrCompute(%s) = %v", k, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 128+cacheShards {
		t.Fatalf("cache grew past capacity: %d", c.Len())
	}
}
