package service

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
)

// benchDims/benchP: a large-divisor processor count (55440 = 2^4·3^2·5·7·11
// has 120 divisors) makes the exhaustive divisor search of grid.Optimal
// genuinely expensive, which is what the memo layer exists to absorb.
var (
	benchDims = core.NewDims(55440, 27720, 13860)
	benchP    = 55440
)

// BenchmarkOptimalGridCold is the uncached exhaustive search.
func BenchmarkOptimalGridCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = grid.Optimal(benchDims, benchP)
	}
}

// BenchmarkOptimalGridCached is the same query through the memo layer
// after warm-up; the acceptance target is ≥ 10× faster than the cold
// search (in practice it is orders of magnitude).
func BenchmarkOptimalGridCached(b *testing.B) {
	s := New(Config{})
	defer s.Shutdown(context.Background())
	_ = s.optimalGrid(benchDims, benchP) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.optimalGrid(benchDims, benchP)
	}
}

// TestCachedOptimalGridSpeedup pins the acceptance criterion without
// relying on running the benchmarks: the cached path must be at least 10×
// faster than the cold divisor search for a large-divisor P. The margin in
// practice is ~1000×, so the assertion has huge slack against noisy CI.
func TestCachedOptimalGridSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	s := New(Config{})
	defer s.Shutdown(context.Background())
	cold := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = grid.Optimal(benchDims, benchP)
		}
	})
	warm := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = s.optimalGrid(benchDims, benchP)
		}
	})
	coldNs := float64(cold.NsPerOp())
	warmNs := float64(warm.NsPerOp())
	if warmNs <= 0 {
		return
	}
	if coldNs < 10*warmNs {
		t.Fatalf("cached OptimalGrid only %.1f× faster than cold (%v vs %v)", coldNs/warmNs, cold, warm)
	}
	t.Logf("cached OptimalGrid %.0f× faster (cold %v, cached %v)", coldNs/warmNs, cold, warm)
}
