// Package service implements parmmd, the long-running HTTP JSON tuning
// oracle over the library: Theorem 3 lower bounds, generalized HBL
// array-program bounds, optimal grids, runtime predictions, and
// asynchronous simulation jobs, behind a versioned v1 API.
// Expensive pure computations are memoized in a sharded LRU keyed by the
// full input tuple; simulations run on a bounded job pool with per-job
// context cancellation and deadline; /debug/vars exposes the operational
// counters. See DESIGN.md "Service architecture".
package service

import "time"

// Problem identifies one multiplication instance: the shape (an N1×N2
// matrix times an N2×N3 matrix) and the processor count P.
type Problem struct {
	// N1 is the number of rows of A and C.
	N1 int `json:"n1"`
	// N2 is the contracted dimension (columns of A, rows of B).
	N2 int `json:"n2"`
	// N3 is the number of columns of B and C.
	N3 int `json:"n3"`
	// P is the number of processors.
	P int `json:"p"`
}

// LowerBoundRequest is the body of POST /v1/lowerbound. The v1 envelope
// shape is {"problems": [...]}, answered by an Envelope[LowerBoundResponse]
// with per-index partial success. Two legacy shapes are still accepted for
// one version: a single inline Problem (answered by a bare
// LowerBoundResponse) and {"batch": [...]} (answered by a
// BatchLowerBoundResponse, first error failing the whole batch). When
// Problems is non-empty it wins; otherwise Batch; otherwise the inline
// fields.
type LowerBoundRequest struct {
	Problem
	// Problems is the unified v1 envelope form.
	Problems []Problem `json:"problems,omitempty"`
	// Batch is the legacy batch form.
	Batch []Problem `json:"batch,omitempty"`
}

// Envelope is the unified v1 response envelope: Results[i] answers
// Problems[i] from the request, nil when that entry failed; each failure
// appears in Errors with its index. A response with some nil results is
// partial success and still answers 200 — only request-level failures
// (malformed JSON, empty or oversized problem lists) and, for expensive
// endpoints like /v1/plan, validation failures answer non-2xx.
type Envelope[T any] struct {
	Results []*T            `json:"results"`
	Errors  []EnvelopeError `json:"errors,omitempty"`
}

// GridJSON is a processor grid in responses: P1×P2×P3 with P1 partitioning
// n1, P2 the contracted n2, and P3 partitioning n3.
type GridJSON struct {
	// P1 is the grid extent along n1.
	P1 int `json:"p1"`
	// P2 is the grid extent along n2.
	P2 int `json:"p2"`
	// P3 is the grid extent along n3.
	P3 int `json:"p3"`
}

// LowerBoundResponse is the answer for one problem: Theorem 3's bound with
// its regime and decomposition, the decision data for choosing a
// replication strategy.
type LowerBoundResponse struct {
	// Problem echoes the request.
	Problem Problem `json:"problem"`
	// Case is the Theorem 3 regime: 1, 2, or 3.
	Case int `json:"case"`
	// CaseName names the regime ("Case 3 (3D)").
	CaseName string `json:"caseName"`
	// Thresholds holds the regime boundaries [m/n, mn/k²].
	Thresholds [2]float64 `json:"thresholds"`
	// Bound is the Theorem 3 memory-independent lower bound in words per
	// processor: D − (mn+mk+nk)/P.
	Bound float64 `json:"bound"`
	// LeadingTerm is the bound's leading term in the applicable case.
	LeadingTerm float64 `json:"leadingTerm"`
	// Footprint is the paper's D, the Lemma 2 optimum.
	Footprint float64 `json:"footprint"`
}

// BatchLowerBoundResponse is the answer to a batch request.
type BatchLowerBoundResponse struct {
	// Results holds one LowerBoundResponse per batch entry, in order.
	Results []LowerBoundResponse `json:"results"`
}

// GridRequest is the body of POST /v1/grid: a problem, optionally with a
// per-processor memory limit.
type GridRequest struct {
	Problem
	// Mem, when positive, also asks for the cheapest grid whose
	// per-processor footprint fits in Mem words (the §6.2 trade-off).
	Mem float64 `json:"mem,omitempty"`
}

// GridResponse reports the grid selection for a problem.
type GridResponse struct {
	// Problem echoes the request.
	Problem Problem `json:"problem"`
	// Optimal is the integer grid minimizing eq. (3), by exhaustive
	// divisor search.
	Optimal GridJSON `json:"optimal"`
	// CommCost is eq. (3) evaluated on Optimal (words per processor).
	CommCost float64 `json:"commCost"`
	// MemoryCost is Optimal's per-processor footprint in words.
	MemoryCost float64 `json:"memoryCost"`
	// RatioToBound is CommCost divided by the Theorem 3 bound (1 exactly
	// when the bound is attained; 0 when the bound is 0).
	RatioToBound float64 `json:"ratioToBound"`
	// Divides reports whether Optimal divides the matrix dimensions (the
	// exact-attainment assumption of §5.2).
	Divides bool `json:"divides"`
	// Analytic is the real-valued §5.2 grid [g1, g2, g3].
	Analytic [3]float64 `json:"analytic"`
	// CaseGrid is the exact §5.2 integer grid when it exists.
	CaseGrid *GridJSON `json:"caseGrid,omitempty"`
	// CaseGridError explains why CaseGrid is absent (non-integral analytic
	// grid or non-dividing dimensions).
	CaseGridError string `json:"caseGridError,omitempty"`
	// UnderMemory is the cheapest grid fitting in Mem words, when Mem was
	// given and any grid fits.
	UnderMemory *GridJSON `json:"underMemory,omitempty"`
	// UnderMemoryCost is eq. (3) on UnderMemory.
	UnderMemoryCost float64 `json:"underMemoryCost,omitempty"`
	// UnderMemoryFits reports whether any grid fit in Mem (only meaningful
	// when Mem was given).
	UnderMemoryFits bool `json:"underMemoryFits,omitempty"`
}

// TopologyJSON selects an interconnect topology for predictions and
// simulations. The spec strings and placement names are those of
// internal/topo: flat, twolevel=<g>, torus=<d1>x<d2>[x...],
// fattree=<radix>x<levels>, tree=<radix>x<levels>; placements contiguous
// (default) and roundrobin. Invalid values answer 400 with kind
// "bad_topology".
type TopologyJSON struct {
	// Spec names the fabric (e.g. "torus=4x4x4"); its endpoint count must
	// equal the problem's P.
	Spec string `json:"spec"`
	// Place selects the rank embedding; empty means contiguous.
	Place string `json:"place,omitempty"`
}

// PredictProblem is one prediction instance: a problem plus the α-β-γ
// machine model; Grid optionally pins the processor grid (it must multiply
// to P), otherwise the eq. (3)-optimal grid is used.
type PredictProblem struct {
	Problem
	// Grid, when non-zero, is the grid to predict on.
	Grid *GridJSON `json:"grid,omitempty"`
	// Alpha is the per-message latency cost.
	Alpha float64 `json:"alpha"`
	// Beta is the per-word bandwidth cost.
	Beta float64 `json:"beta"`
	// Gamma is the per-flop computation cost.
	Gamma float64 `json:"gamma"`
	// Topology, when present, prices the prediction on a concrete fabric
	// (worst contended route per collective phase) instead of the paper's
	// fully connected network; the response then carries the topology
	// fields.
	Topology *TopologyJSON `json:"topology,omitempty"`
}

// PredictRequest is the body of POST /v1/predict. The v1 envelope shape is
// {"problems": [...]} with one full PredictProblem per entry, answered by
// an Envelope[PredictResponse] with per-index partial success; the legacy
// single inline shape is still accepted for one version and answered by a
// bare PredictResponse.
type PredictRequest struct {
	PredictProblem
	// Problems is the unified v1 envelope form; when non-empty the inline
	// fields are ignored.
	Problems []PredictProblem `json:"problems,omitempty"`
}

// PredictResponse decomposes Algorithm 1's predicted execution time on the
// chosen grid.
type PredictResponse struct {
	// Problem echoes the request.
	Problem Problem `json:"problem"`
	// Grid is the grid the prediction was evaluated on.
	Grid GridJSON `json:"grid"`
	// Total is Compute + Bandwidth + Latency.
	Total float64 `json:"total"`
	// Compute is γ·(local multiply-adds + reduction additions).
	Compute float64 `json:"compute"`
	// Bandwidth is β·(communicated words per processor).
	Bandwidth float64 `json:"bandwidth"`
	// Latency is α·(messages per processor).
	Latency float64 `json:"latency"`
	// Words is the communicated words per processor (the Theorem 3
	// quantity).
	Words float64 `json:"words"`
	// Messages is the per-processor message count.
	Messages float64 `json:"messages"`
	// Topology and Placement echo the fabric the prediction was priced on,
	// present only when the request selected one.
	Topology  string `json:"topology,omitempty"`
	Placement string `json:"placement,omitempty"`
	// FlatTotal is the uniform-model total under the same config, and
	// Slowdown is Total/FlatTotal — the congestion degradation factor.
	// Present only with a topology.
	FlatTotal float64 `json:"flatTotal,omitempty"`
	Slowdown  float64 `json:"slowdown,omitempty"`
}

// SimulateRequest is the body of POST /v1/simulate: run one algorithm (or
// a batch of problems under one job) on the simulated α-β-γ machine. The
// response is a JobResponse; poll GET /v1/jobs/{id} for the result.
type SimulateRequest struct {
	Problem
	// Alg names the algorithm (registry name, case-insensitive): Alg1,
	// AllToAll3D, CARMA, Alg1LowMem, OneD, SUMMA, Cannon, TwoPointFiveD.
	// Empty selects Alg1.
	Alg string `json:"alg,omitempty"`
	// Problems is the unified v1 envelope form: every listed problem runs
	// with the request-level alg/machine/topology under a single job.
	// Validation failures answer 400 with an Envelope listing every bad
	// index; the accepted job's result is an Envelope[SimulateResult] with
	// per-index partial success. When non-empty, Batch and the inline
	// problem fields are ignored.
	Problems []Problem `json:"problems,omitempty"`
	// Batch is the legacy batch form: one job whose result is a plain list
	// of SimulateResult, any failure failing the whole job.
	Batch []Problem `json:"batch,omitempty"`
	// Seed seeds the deterministic pseudo-random input matrices.
	Seed uint64 `json:"seed,omitempty"`
	// Alpha, Beta, Gamma set the machine cost model; all zero selects the
	// bandwidth-only model (β = 1), so costs read directly in words.
	Alpha float64 `json:"alpha,omitempty"`
	Beta  float64 `json:"beta,omitempty"`
	Gamma float64 `json:"gamma,omitempty"`
	// Grid, when non-zero, pins the processor grid.
	Grid *GridJSON `json:"grid,omitempty"`
	// Verify also computes the serial product and reports the maximum
	// absolute deviation (doubles the arithmetic; off by default).
	Verify bool `json:"verify,omitempty"`
	// Topology, when present, runs the simulation on a concrete fabric:
	// every message is priced through its routes and contention factors.
	// The spec must fit every problem's P (batch entries included).
	Topology *TopologyJSON `json:"topology,omitempty"`
	// Engine selects the simulator's scheduling backend: "goroutine" (the
	// default) or "event". Results are bit-identical; the event engine
	// admits far larger P (see Config.MaxSimProcsEvent), so requests
	// rejected as too large on the goroutine engine can retry with
	// "engine": "event". Unknown names answer 400 with kind "bad_opts".
	Engine string `json:"engine,omitempty"`
	// Trace records each run's event timeline and stores it as a Chrome
	// trace-event JSON artifact (trace.json, or trace-<i>.json per batch
	// index), fetchable from GET /v1/jobs/{id}/artifacts/{name} after the
	// job finishes — and still after the job itself is evicted. Requires
	// the server to run with artifact storage; without it the request
	// answers 400.
	Trace bool `json:"trace,omitempty"`
}

// SimulateResult is the outcome of one simulated run.
type SimulateResult struct {
	// Problem identifies the simulated instance.
	Problem Problem `json:"problem"`
	// Alg is the algorithm that ran.
	Alg string `json:"alg"`
	// Grid is the processor grid used.
	Grid GridJSON `json:"grid"`
	// CommCost is the measured per-processor communication volume in words
	// (max words received by any rank — the Theorem 3 quantity).
	CommCost float64 `json:"commCost"`
	// Bound is the Theorem 3 lower bound for the problem.
	Bound float64 `json:"bound"`
	// RatioToBound is CommCost/Bound (0 when the bound is 0).
	RatioToBound float64 `json:"ratioToBound"`
	// TotalWords is the network-wide traffic in words.
	TotalWords float64 `json:"totalWords"`
	// CriticalPath is the simulated α-β-γ critical-path time.
	CriticalPath float64 `json:"criticalPath"`
	// MaxAbsDiff is the maximum deviation from the serial product, present
	// only when Verify was requested.
	MaxAbsDiff *float64 `json:"maxAbsDiff,omitempty"`
	// Topology and Placement echo the fabric the run was priced on, present
	// only when the request selected one.
	Topology  string `json:"topology,omitempty"`
	Placement string `json:"placement,omitempty"`
	// TraceArtifact names this run's Chrome trace artifact (fetch it from
	// GET /v1/jobs/{id}/artifacts/{name}), present only when the request
	// set "trace": true.
	TraceArtifact string `json:"traceArtifact,omitempty"`
}

// JobResponse reports an async job's state; it is the body of the
// /v1/simulate accept response and of GET /v1/jobs/{id}.
type JobResponse struct {
	// ID is the job identifier.
	ID string `json:"id"`
	// Status is the lifecycle state: queued, running, done, failed, or
	// cancelled.
	Status string `json:"status"`
	// Result holds the job's outcome when Status is "done": a
	// SimulateResult, or a list of them for a batch job.
	Result any `json:"result,omitempty"`
	// Error holds the failure message when Status is "failed" or
	// "cancelled".
	Error string `json:"error,omitempty"`
	// Artifacts lists the job's durable artifacts (present only on GET
	// /v1/jobs/{id} responses when the job has any); fetch each from
	// GET /v1/jobs/{id}/artifacts/{name}.
	Artifacts []ArtifactJSON `json:"artifacts,omitempty"`
}

// ArtifactJSON describes one durable job artifact.
type ArtifactJSON struct {
	// Name is the artifact's name within its job.
	Name string `json:"name"`
	// Size is the content length in bytes.
	Size int64 `json:"size"`
	// SHA256 is the content's hex digest — also the ETag and
	// X-Checksum-Sha256 of the content response.
	SHA256 string `json:"sha256"`
	// ContentType is the MIME type the content is served with.
	ContentType string `json:"contentType"`
	// Created is when the artifact was written (UTC).
	Created time.Time `json:"created"`
}

// ArtifactListResponse is the body of GET /v1/jobs/{id}/artifacts. It
// answers from the artifact catalog, which outlives job retention: a job
// whose metadata is already evicted (404 from GET /v1/jobs/{id}) still
// lists — and serves — its artifacts here.
type ArtifactListResponse struct {
	// Job is the job id the listing is for.
	Job string `json:"job"`
	// Artifacts is the catalog, sorted by name; empty when the job wrote
	// none (or never existed — the catalog cannot tell).
	Artifacts []ArtifactJSON `json:"artifacts"`
}

// EnvelopeError locates one failed problem inside a v1 envelope response:
// the problem's index in the request's "problems" list, the machine-
// readable taxonomy code (same vocabulary as ErrorResponse.Kind), and the
// human-readable message.
type EnvelopeError struct {
	Index   int    `json:"index"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

// JobListItem is one row of GET /v1/jobs: identity, state, and submit
// time — enough for an operator or load generator to enumerate work
// without fetching each job's (possibly large) result.
type JobListItem struct {
	// ID is the job identifier.
	ID string `json:"id"`
	// Status is the lifecycle state.
	Status string `json:"status"`
	// Created is the submission time (UTC).
	Created time.Time `json:"created"`
}

// JobListResponse is the body of GET /v1/jobs: jobs in submission order,
// cursor-paginated.
type JobListResponse struct {
	// Jobs is this page, oldest submission first.
	Jobs []JobListItem `json:"jobs"`
	// NextCursor, when non-empty, is the cursor= value for the next page;
	// absent when this page exhausted the listing.
	NextCursor string `json:"nextCursor,omitempty"`
}

// normalize resolves the accepted request shapes to one problem list:
// envelope reports the v1 {"problems": [...]} form (answered with an
// Envelope), batch the legacy {"batch": [...]} form (answered with the
// legacy batch response), and neither means the legacy single inline form.
func (r LowerBoundRequest) normalize() (list []Problem, envelope, batch bool) {
	if len(r.Problems) > 0 {
		return r.Problems, true, false
	}
	if len(r.Batch) > 0 {
		return r.Batch, false, true
	}
	return []Problem{r.Problem}, false, false
}

// normalize resolves the accepted request shapes to one problem list;
// envelope reports the v1 {"problems": [...]} form.
func (r PredictRequest) normalize() (list []PredictProblem, envelope bool) {
	if len(r.Problems) > 0 {
		return r.Problems, true
	}
	return []PredictProblem{r.PredictProblem}, false
}

// normalize resolves the accepted request shapes to one problem list:
// envelope reports the v1 {"problems": [...]} form (collected validation
// errors, partial-success job result), batch the legacy {"batch": [...]}
// form, and neither the legacy single inline form.
func (r SimulateRequest) normalize() (list []Problem, envelope, batch bool) {
	if len(r.Problems) > 0 {
		return r.Problems, true, false
	}
	if len(r.Batch) > 0 {
		return r.Batch, false, true
	}
	return []Problem{r.Problem}, false, false
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	// Error is the human-readable message (the wrapped error chain).
	Error string `json:"error"`
	// Kind is the machine-readable taxonomy tag: bad_dims,
	// bad_processor_count, too_many_ranks, grid_mismatch, unsupported_alg,
	// bad_opts, bad_topology, bad_program, bad_request, not_found,
	// queue_full, or internal.
	Kind string `json:"kind"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	// Status is "ok" when the server is accepting work.
	Status string `json:"status"`
}

// VarsResponse is the body of GET /debug/vars: the service's operational
// counters.
type VarsResponse struct {
	// Requests is the number of HTTP requests served (all endpoints).
	Requests int64 `json:"requests"`
	// CacheHits and CacheMisses count memo-cache lookups; CacheShared
	// counts lookups satisfied by waiting on a concurrent caller's
	// in-flight computation (singleflight) — duplicate work avoided.
	CacheHits   int64 `json:"cacheHits"`
	CacheMisses int64 `json:"cacheMisses"`
	CacheShared int64 `json:"cacheShared"`
	// CacheEntries is the current number of cached values.
	CacheEntries int `json:"cacheEntries"`
	// Overloads counts requests refused with 503 by the per-endpoint
	// concurrency limits.
	Overloads int64 `json:"overloads"`
	// PlanPoints counts strong-scaling plan points served (inline and
	// streamed).
	PlanPoints int64 `json:"planPoints"`
	// JobsInFlight is the number of jobs currently executing.
	JobsInFlight int64 `json:"jobsInFlight"`
	// JobsTotal is the number of jobs ever accepted.
	JobsTotal int `json:"jobsTotal"`
	// JobsByState counts the jobs currently remembered per lifecycle
	// state, after retention eviction.
	JobsByState map[string]int `json:"jobsByState"`
	// JobsEvicted is the cumulative number of finished jobs evicted by the
	// retention policy (age or cap).
	JobsEvicted int64 `json:"jobsEvicted"`
	// WordsSimulated accumulates the network-wide words moved by completed
	// simulations.
	WordsSimulated float64 `json:"wordsSimulated"`
	// ArtifactsWritten, ArtifactBytes, and ArtifactFetches count durable
	// artifact writes, their total bytes, and content fetches served.
	ArtifactsWritten int64 `json:"artifactsWritten"`
	ArtifactBytes    int64 `json:"artifactBytes"`
	ArtifactFetches  int64 `json:"artifactFetches"`
}
