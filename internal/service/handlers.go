package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/algs"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/topo"
)

// maxBodyBytes bounds request bodies; batch requests at the MaxBatch limit
// fit comfortably.
const maxBodyBytes = 1 << 20

// decodeJSON reads the request body into dst, answering 400 itself on
// failure.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		writeBadRequest(w, "invalid JSON body: "+err.Error())
		return false
	}
	return true
}

// parseTopology resolves a request's topology block against a rank count:
// the spec must describe exactly p endpoints, the rank count must fit the
// fabric's charge-oracle limit (unbounded for every spec'd fabric — their
// link loads have closed forms — so this binds only custom fabrics), and
// the placement must name a known policy. All failure modes wrap
// core.ErrBadTopology, and the limit rejection names the fabric's actual
// limit.
func parseTopology(t *TopologyJSON, p int, link topo.Link) (topo.Topology, topo.Policy, error) {
	fabric, err := topo.Parse(t.Spec, p, link)
	if err != nil {
		return nil, 0, err
	}
	if m := topo.MaxP(fabric); p > m {
		return nil, 0, fmt.Errorf("service: P=%d exceeds %s's charge-oracle limit %d: %w",
			p, fabric.Name(), m, core.ErrBadTopology)
	}
	pol, err := topo.ParsePolicy(t.Place)
	if err != nil {
		return nil, 0, err
	}
	return fabric, pol, nil
}

// parseProblem validates a Problem against the taxonomy.
func parseProblem(p Problem) (core.Dims, error) {
	d := core.NewDims(p.N1, p.N2, p.N3)
	if err := d.Validate(); err != nil {
		return d, err
	}
	if p.P < 1 {
		return d, fmt.Errorf("service: P must be ≥ 1, got %d: %w", p.P, core.ErrBadProcessorCount)
	}
	return d, nil
}

// checkSearchP guards the linear-in-P divisor search.
func (s *Server) checkSearchP(p int) error {
	if p > s.cfg.MaxSearchProcs {
		return fmt.Errorf("service: P=%d exceeds the search limit %d: %w",
			p, s.cfg.MaxSearchProcs, core.ErrBadProcessorCount)
	}
	return nil
}

// checkTopoP guards synchronous topology-aware predictions: the
// worst-fiber sweep is linear in P on fabrics without translation
// symmetry, so it gets its own ceiling, tightened further by the fabric's
// charge-oracle limit. The rejection names the effective limit so clients
// learn the actual per-fabric bound, not a generic refusal.
func (s *Server) checkTopoP(fabric topo.Topology, p int) error {
	limit := s.cfg.MaxTopoProcs
	if m := topo.MaxP(fabric); m < limit {
		limit = m
	}
	if p > limit {
		return fmt.Errorf("service: P=%d exceeds the topology prediction limit %d for %s: %w",
			p, limit, fabric.Name(), core.ErrBadTopology)
	}
	return nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok"})
}

func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	hits, misses := s.cache.Stats()
	byState := make(map[string]int)
	for st, n := range s.jobs.Counts() {
		byState[string(st)] = n
	}
	writeJSON(w, http.StatusOK, VarsResponse{
		Requests:       s.requests.Load(),
		CacheHits:      hits,
		CacheMisses:    misses,
		CacheShared:    s.cache.Shared(),
		CacheEntries:   s.cache.Len(),
		Overloads:      s.overloads.Load(),
		PlanPoints:     s.planPoints.Load(),
		JobsInFlight:   s.jobs.InFlight(),
		JobsTotal:      int(s.jobsTotal.Load()),
		JobsByState:    byState,
		JobsEvicted:      s.jobs.Evicted(),
		WordsSimulated:   s.WordsSimulated(),
		ArtifactsWritten: s.artifactsWritten.Load(),
		ArtifactBytes:    s.artifactBytes.Load(),
		ArtifactFetches:  s.artifactFetches.Load(),
	})
}

// lowerBoundOne answers one problem from the memo layer.
func (s *Server) lowerBoundOne(p Problem) (LowerBoundResponse, error) {
	d, err := parseProblem(p)
	if err != nil {
		return LowerBoundResponse{}, err
	}
	bound, footprint := s.lowerBound(d, p.P)
	t1, t2 := core.Thresholds(d)
	c := core.CaseOf(d, p.P)
	return LowerBoundResponse{
		Problem:     p,
		Case:        int(c),
		CaseName:    c.String(),
		Thresholds:  [2]float64{t1, t2},
		Bound:       bound,
		LeadingTerm: core.LeadingTerm(d, p.P),
		Footprint:   footprint,
	}, nil
}

// checkBatch bounds a problem-list length against MaxBatch, answering 400
// itself when it does not fit.
func (s *Server) checkBatch(w http.ResponseWriter, n int) bool {
	if n > s.cfg.MaxBatch {
		writeBadRequest(w, fmt.Sprintf("batch of %d exceeds the limit %d", n, s.cfg.MaxBatch))
		return false
	}
	return true
}

// envelopeOf evaluates one cheap synchronous computation per problem and
// folds the outcomes into the unified v1 envelope: failures become indexed
// errors, the rest partial success.
func envelopeOf[P, T any](problems []P, eval func(P) (T, error)) Envelope[T] {
	env := Envelope[T]{Results: make([]*T, len(problems))}
	for i, p := range problems {
		res, err := eval(p)
		if err != nil {
			env.Errors = append(env.Errors, EnvelopeError{Index: i, Code: kindFor(err), Message: err.Error()})
			continue
		}
		env.Results[i] = &res
	}
	return env
}

func (s *Server) handleLowerBound(w http.ResponseWriter, r *http.Request) {
	var req LowerBoundRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	problems, envelope, batch := req.normalize()
	if !s.checkBatch(w, len(problems)) {
		return
	}
	switch {
	case envelope:
		writeJSON(w, http.StatusOK, envelopeOf(problems, s.lowerBoundOne))
	case batch:
		out := BatchLowerBoundResponse{Results: make([]LowerBoundResponse, len(problems))}
		for i, p := range problems {
			resp, err := s.lowerBoundOne(p)
			if err != nil {
				writeError(w, fmt.Errorf("batch[%d]: %w", i, err))
				return
			}
			out.Results[i] = resp
		}
		writeJSON(w, http.StatusOK, out)
	default:
		resp, err := s.lowerBoundOne(problems[0])
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

func (s *Server) handleGrid(w http.ResponseWriter, r *http.Request) {
	var req GridRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	d, err := parseProblem(req.Problem)
	if err != nil {
		writeError(w, err)
		return
	}
	if err := s.checkSearchP(req.P); err != nil {
		writeError(w, err)
		return
	}
	opt := s.optimalGrid(d, req.P)
	bound, _ := s.lowerBound(d, req.P)
	cost := grid.CommCost(d, opt)
	ratio := 0.0
	if bound > 0 {
		ratio = cost / bound
	}
	g1, g2, g3 := grid.Analytic(d, req.P)
	resp := GridResponse{
		Problem:      req.Problem,
		Optimal:      GridJSON{opt.P1, opt.P2, opt.P3},
		CommCost:     cost,
		MemoryCost:   grid.MemoryCost(d, opt),
		RatioToBound: ratio,
		Divides:      grid.Divides(d, opt),
		Analytic:     [3]float64{g1, g2, g3},
	}
	if cg, cgErr := s.caseGrid(d, req.P); cgErr == nil {
		resp.CaseGrid = &GridJSON{cg.P1, cg.P2, cg.P3}
	} else {
		resp.CaseGridError = cgErr.Error()
	}
	if req.Mem > 0 {
		um, ok := s.optimalUnderMemory(d, req.P, req.Mem)
		resp.UnderMemoryFits = ok
		if ok {
			resp.UnderMemory = &GridJSON{um.P1, um.P2, um.P3}
			resp.UnderMemoryCost = grid.CommCost(d, um)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// optimalUnderMemory is grid.OptimalUnderMemory through the cache.
func (s *Server) optimalUnderMemory(d core.Dims, p int, mem float64) (grid.Grid, bool) {
	type result struct {
		g  grid.Grid
		ok bool
	}
	key := fmt.Sprintf("om:%s:%g", dimsKey(d, p), mem)
	r := s.cache.GetOrCompute(key, func() any {
		g, ok := grid.OptimalUnderMemory(d, p, mem)
		return result{g, ok}
	}).(result)
	return r.g, r.ok
}

// predictOne answers one prediction instance from the memo layer.
func (s *Server) predictOne(pp PredictProblem) (PredictResponse, error) {
	d, err := parseProblem(pp.Problem)
	if err != nil {
		return PredictResponse{}, err
	}
	var g grid.Grid
	if pp.Grid != nil {
		g = grid.Grid{P1: pp.Grid.P1, P2: pp.Grid.P2, P3: pp.Grid.P3}
		if err := g.Validate(); err != nil {
			return PredictResponse{}, err
		}
		if g.Size() != pp.P {
			return PredictResponse{}, fmt.Errorf("service: grid %v has %d processors, want %d: %w",
				g, g.Size(), pp.P, core.ErrGridMismatch)
		}
	} else {
		if err := s.checkSearchP(pp.P); err != nil {
			return PredictResponse{}, err
		}
		g = s.optimalGrid(d, pp.P)
	}
	cfg := machine.Config{Alpha: pp.Alpha, Beta: pp.Beta, Gamma: pp.Gamma}
	resp := PredictResponse{
		Problem: pp.Problem,
		Grid:    GridJSON{g.P1, g.P2, g.P3},
	}
	if pp.Topology != nil {
		fabric, pol, err := parseTopology(pp.Topology, pp.P, topo.Link{Alpha: cfg.Alpha, Beta: cfg.Beta})
		if err != nil {
			return PredictResponse{}, err
		}
		if err := s.checkTopoP(fabric, pp.P); err != nil {
			return PredictResponse{}, err
		}
		pred, err := s.predictTopo(d, g, cfg, fabric, pol)
		if err != nil {
			return PredictResponse{}, err
		}
		resp.Total = pred.Total()
		resp.Compute, resp.Bandwidth, resp.Latency = pred.Compute, pred.Bandwidth, pred.Latency
		resp.Words, resp.Messages = pred.Words, pred.Messages
		resp.Topology, resp.Placement = pred.Topology, pred.Placement
		resp.FlatTotal, resp.Slowdown = pred.FlatTotal, pred.Slowdown
		return resp, nil
	}
	pred := s.predict(d, g, cfg)
	resp.Total = pred.Total()
	resp.Compute, resp.Bandwidth, resp.Latency = pred.Compute, pred.Bandwidth, pred.Latency
	resp.Words, resp.Messages = pred.Words, pred.Messages
	return resp, nil
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req PredictRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	problems, envelope := req.normalize()
	if !s.checkBatch(w, len(problems)) {
		return
	}
	if envelope {
		writeJSON(w, http.StatusOK, envelopeOf(problems, s.predictOne))
		return
	}
	resp, err := s.predictOne(problems[0])
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// checkSimProblem validates one simulation instance against the
// engine-aware admission limits: each engine has its own P ceiling (the
// goroutine engine schedules one goroutine per rank, so it gets the tight
// default), and a goroutine-engine rejection points the client at the
// event engine instead of just refusing.
func (s *Server) checkSimProblem(p Problem, engine machine.Engine) (core.Dims, error) {
	d, err := parseProblem(p)
	if err != nil {
		return d, err
	}
	switch engine {
	case machine.EngineEvent:
		if p.P > s.cfg.MaxSimProcsEvent {
			return d, fmt.Errorf("service: P=%d exceeds the event-engine simulation limit %d: %w",
				p.P, s.cfg.MaxSimProcsEvent, core.ErrTooManyRanks)
		}
	default:
		if p.P > s.cfg.MaxSimProcs {
			return d, fmt.Errorf(`service: P=%d exceeds the goroutine-engine simulation limit %d; retry with "engine": "event" (limit %d): %w`,
				p.P, s.cfg.MaxSimProcs, s.cfg.MaxSimProcsEvent, core.ErrTooManyRanks)
		}
	}
	if d.Flops() > s.cfg.MaxSimFlops {
		return d, fmt.Errorf("service: %v needs %.3g flops, over the simulation limit %.3g: %w",
			d, d.Flops(), s.cfg.MaxSimFlops, core.ErrBadDims)
	}
	return d, nil
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Alg == "" {
		req.Alg = "Alg1"
	}
	entry, err := algs.Lookup(req.Alg)
	if err != nil {
		writeError(w, err)
		return
	}
	problems, envelope, batch := req.normalize()
	if !s.checkBatch(w, len(problems)) {
		return
	}
	engine, err := machine.ParseEngine(req.Engine)
	if err != nil {
		writeError(w, err)
		return
	}
	opts := algs.Opts{
		Config: machine.Config{Alpha: req.Alpha, Beta: req.Beta, Gamma: req.Gamma},
		Engine: engine,
	}
	if req.Alpha == 0 && req.Beta == 0 && req.Gamma == 0 {
		opts.Config = machine.BandwidthOnly()
	}
	if req.Grid != nil {
		opts.Grid = grid.Grid{P1: req.Grid.P1, P2: req.Grid.P2, P3: req.Grid.P3}
	}
	if err := opts.Validate(); err != nil {
		writeError(w, err)
		return
	}
	if req.Trace && s.artifacts == nil {
		writeBadRequest(w, `"trace": true requires artifact storage (start the server with an artifact store, e.g. parmmd -artifact-dir)`)
		return
	}
	// Validate everything synchronously so taxonomy errors come back on
	// the submit, not buried in a failed job. The topology spec is sized
	// against each problem's own P, so in a batch it must fit every entry.
	// The envelope form collects every bad index before refusing; the
	// legacy forms keep their first-error behavior.
	var envErrs []EnvelopeError
	for i, p := range problems {
		_, err := s.checkSimProblem(p, engine)
		if err == nil && req.Topology != nil {
			_, _, err = parseTopology(req.Topology, p.P,
				topo.Link{Alpha: opts.Config.Alpha, Beta: opts.Config.Beta})
		}
		if err == nil {
			continue
		}
		if envelope {
			envErrs = append(envErrs, EnvelopeError{Index: i, Code: kindFor(err), Message: err.Error()})
			continue
		}
		if batch {
			err = fmt.Errorf("batch[%d]: %w", i, err)
		}
		writeError(w, err)
		return
	}
	if len(envErrs) > 0 {
		writeJSON(w, http.StatusBadRequest, Envelope[SimulateResult]{
			Results: make([]*SimulateResult, len(problems)),
			Errors:  envErrs,
		})
		return
	}

	// traceName names the per-problem trace artifact: the single form gets
	// the stable "trace.json", multi-problem forms index by position.
	multi := len(problems) > 1 || envelope || batch
	traceName := func(i int) string {
		if !req.Trace {
			return ""
		}
		if multi {
			return fmt.Sprintf("trace-%d.json", i)
		}
		return "trace.json"
	}
	id, err := s.jobs.Submit(func(ctx context.Context) (any, error) {
		if envelope {
			// Partial success: each problem's failure is recorded at its
			// index; only cancellation aborts the whole job.
			type outcome struct {
				res SimulateResult
				err error
			}
			outcomes, err := experiments.MapContext(ctx, len(problems), func(i int) (outcome, error) {
				res, err := s.simulateOne(ctx, entry, problems[i], req, opts, traceName(i))
				if err != nil && ctx.Err() != nil {
					return outcome{}, err
				}
				return outcome{res, err}, nil
			})
			if err != nil {
				return nil, err
			}
			env := Envelope[SimulateResult]{Results: make([]*SimulateResult, len(problems))}
			var rows []SimulateResult
			for i := range outcomes {
				if e := outcomes[i].err; e != nil {
					env.Errors = append(env.Errors, EnvelopeError{Index: i, Code: kindFor(e), Message: e.Error()})
					continue
				}
				env.Results[i] = &outcomes[i].res
				rows = append(rows, outcomes[i].res)
			}
			if err := s.writeResultArtifacts(ctx, env, rows); err != nil {
				return nil, err
			}
			return env, nil
		}
		results, err := experiments.MapContext(ctx, len(problems), func(i int) (SimulateResult, error) {
			return s.simulateOne(ctx, entry, problems[i], req, opts, traceName(i))
		})
		if err != nil {
			return nil, err
		}
		if !batch {
			if err := s.writeResultArtifacts(ctx, results[0], results); err != nil {
				return nil, err
			}
			return results[0], nil
		}
		if err := s.writeResultArtifacts(ctx, results, results); err != nil {
			return nil, err
		}
		return results, nil
	})
	if err != nil {
		writeError(w, err)
		return
	}
	s.jobsTotal.Add(1)
	writeJSON(w, http.StatusAccepted, JobResponse{ID: id, Status: string(JobQueued)})
}

// simulateOne runs one simulation point. ctx is honored at the point
// boundary: a cancelled job stops before starting the next point (a single
// simulated run is not interruptible mid-flight; the limits keep runs
// short). A non-empty traceName turns on event tracing and stores the
// timeline as a Chrome trace artifact under that name; a trace that cannot
// be stored fails the run — the trace was the point of the request.
func (s *Server) simulateOne(ctx context.Context, entry algs.Entry, p Problem, req SimulateRequest, opts algs.Opts, traceName string) (SimulateResult, error) {
	if err := ctx.Err(); err != nil {
		return SimulateResult{}, err
	}
	opts.Trace = traceName != ""
	var topoName, placeName string
	if req.Topology != nil {
		// opts is a per-call copy; sizing the fabric to this problem's P
		// cannot leak into the other batch entries.
		fabric, pol, err := parseTopology(req.Topology, p.P,
			topo.Link{Alpha: opts.Config.Alpha, Beta: opts.Config.Beta})
		if err != nil {
			return SimulateResult{}, err
		}
		opts.Topo = fabric
		opts.Place = pol
		topoName, placeName = fabric.Name(), pol.String()
	}
	a := matrix.Random(p.N1, p.N2, 2*req.Seed+17)
	b := matrix.Random(p.N2, p.N3, 2*req.Seed+18)
	res, err := entry.Run(a, b, p.P, opts)
	if err != nil {
		return SimulateResult{}, err
	}
	d := core.NewDims(p.N1, p.N2, p.N3)
	bound, _ := s.lowerBound(d, p.P)
	out := SimulateResult{
		Problem:      p,
		Alg:          entry.Name,
		Grid:         GridJSON{res.Grid.P1, res.Grid.P2, res.Grid.P3},
		CommCost:     res.CommCost(),
		Bound:        bound,
		TotalWords:   res.Stats.TotalWordsSent,
		CriticalPath: res.Stats.CriticalPath,
		Topology:     topoName,
		Placement:    placeName,
	}
	if bound > 0 {
		out.RatioToBound = out.CommCost / bound
	}
	if req.Verify {
		diff := res.C.MaxAbsDiff(matrix.Mul(a, b))
		out.MaxAbsDiff = &diff
	}
	if traceName != "" {
		if res.Trace == nil {
			return SimulateResult{}, fmt.Errorf("service: %s produced no trace", entry.Name)
		}
		if _, err := s.writeArtifact(ctx, traceName, "application/json", func(w io.Writer) error {
			return res.Trace.WriteChromeTrace(w, p.P)
		}); err != nil {
			return SimulateResult{}, err
		}
		out.TraceArtifact = traceName
	}
	s.addWordsSimulated(res.Stats.TotalWordsSent)
	return out, nil
}

// handleJobList serves GET /v1/jobs?state=&limit=&cursor=: jobs in
// submission order, filtered by state, paginated by an opaque cursor (the
// last job id of the previous page).
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	state := JobStatus(q.Get("state"))
	switch state {
	case "", JobQueued, JobRunning, JobDone, JobFailed, JobCancelled:
	default:
		writeBadRequest(w, fmt.Sprintf("unknown state %q (valid: queued, running, done, failed, cancelled)", state))
		return
	}
	limit := 100
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeBadRequest(w, "limit must be a positive integer")
			return
		}
		limit = n
	}
	if limit > 1000 {
		limit = 1000
	}
	var after int64
	if v := q.Get("cursor"); v != "" {
		n, err := strconv.ParseInt(strings.TrimPrefix(v, "j"), 10, 64)
		if err != nil || !strings.HasPrefix(v, "j") || n < 1 {
			writeBadRequest(w, "cursor must be a nextCursor value from a previous page")
			return
		}
		after = n
	}
	items, next := s.jobs.List(state, after, limit)
	resp := JobListResponse{Jobs: make([]JobListItem, len(items))}
	for i, it := range items {
		resp.Jobs[i] = JobListItem{ID: it.ID, Status: string(it.Status), Created: it.Created.UTC()}
	}
	if next > 0 {
		resp.NextCursor = fmt.Sprintf("j%d", next)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	view, ok := s.jobs.Get(id)
	if !ok {
		writeNotFound(w, "no job "+id)
		return
	}
	resp := jobResponseOf(view)
	if view.Status == JobDone || view.Status == JobFailed {
		resp.Artifacts = s.jobArtifacts(id)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.jobs.Cancel(id) {
		writeNotFound(w, "no job "+id)
		return
	}
	view, _ := s.jobs.Get(id)
	writeJSON(w, http.StatusOK, jobResponseOf(view))
}

// jobResponseOf converts a runner snapshot to the wire form.
func jobResponseOf(v JobView) JobResponse {
	resp := JobResponse{ID: v.ID, Status: string(v.Status), Result: v.Result}
	if v.Err != nil {
		resp.Error = v.Err.Error()
	}
	return resp
}
