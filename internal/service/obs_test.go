package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// parseProm extracts the sample lines of a Prometheus text exposition into
// a map from "name{labels}" (or bare name) to value.
func parseProm(t *testing.T, body []byte) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in line %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestMetricsEndpoint round-trips GET /metrics: valid exposition, the
// service families present, and the request and cache counters moving in
// response to real traffic.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	resp.Body.Close()

	_, before := get(t, ts, "/metrics")
	m0 := parseProm(t, before)
	for _, want := range []string{
		"service_requests_total",
		"service_cache_hits_total",
		"service_cache_misses_total",
		"service_cache_entries",
		"service_jobs_submitted_total",
		"service_jobs_inflight",
		`service_jobs{state="done"}`,
		"service_jobs_evicted_total",
		"service_words_simulated_total",
		`service_request_seconds_count{endpoint="GET /metrics"}`,
		"machine_worlds_total",
		`collective_ops_total{op="allgather"}`,
	} {
		if _, ok := m0[want]; !ok {
			t.Errorf("exposition missing %s", want)
		}
	}

	// One repeated lowerbound request: first computes (miss), second hits.
	body := `{"n1":96,"n2":24,"n3":6,"p":8}`
	for i := 0; i < 2; i++ {
		if status, raw := post(t, ts, "/v1/lowerbound", body); status != http.StatusOK {
			t.Fatalf("lowerbound status %d: %s", status, raw)
		}
	}
	_, after := get(t, ts, "/metrics")
	m1 := parseProm(t, after)
	if m1["service_requests_total"] < m0["service_requests_total"]+2 {
		t.Errorf("service_requests_total %v -> %v, want +2 at least",
			m0["service_requests_total"], m1["service_requests_total"])
	}
	if m1["service_cache_misses_total"] <= m0["service_cache_misses_total"] {
		t.Errorf("cache misses did not move: %v -> %v",
			m0["service_cache_misses_total"], m1["service_cache_misses_total"])
	}
	if m1["service_cache_hits_total"] <= m0["service_cache_hits_total"] {
		t.Errorf("cache hits did not move: %v -> %v",
			m0["service_cache_hits_total"], m1["service_cache_hits_total"])
	}
	if m1[`service_request_seconds_count{endpoint="POST /v1/lowerbound"}`] < 2 {
		t.Errorf("lowerbound latency histogram count = %v, want >= 2",
			m1[`service_request_seconds_count{endpoint="POST /v1/lowerbound"}`])
	}
}

// TestMetricsSimulatorCountersMove checks the simulator side of /metrics:
// with instrumentation enabled (as parmmd runs), a completed simulation
// moves the machine_* and collective_* families.
func TestMetricsSimulatorCountersMove(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	_, ts := newTestServer(t)

	_, before := get(t, ts, "/metrics")
	m0 := parseProm(t, before)

	status, raw := post(t, ts, "/v1/simulate", `{"n1":64,"n2":64,"n3":64,"p":8}`)
	if status != http.StatusAccepted {
		t.Fatalf("accept status %d: %s", status, raw)
	}
	accepted := decode[JobResponse](t, raw)
	if final := waitJob(t, ts, accepted.ID); final.Status != string(JobDone) {
		t.Fatalf("job = %+v", final)
	}

	_, after := get(t, ts, "/metrics")
	m1 := parseProm(t, after)
	for _, name := range []string{
		"machine_worlds_total",
		"machine_sends_total",
		"machine_words_sent_total",
		`collective_ops_total{op="allgather"}`,
		`collective_ops_total{op="reducescatter"}`,
	} {
		if m1[name] <= m0[name] {
			t.Errorf("%s did not move: %v -> %v", name, m0[name], m1[name])
		}
	}
	if m1["service_jobs_submitted_total"] <= m0["service_jobs_submitted_total"] {
		t.Errorf("service_jobs_submitted_total did not move")
	}
}

// TestRequestIDAndAccessLog checks the request-logging middleware: every
// response carries an X-Request-ID (honoring an inbound one), and each
// request emits one structured JSON log line with the id.
func TestRequestIDAndAccessLog(t *testing.T) {
	var logBuf bytes.Buffer
	s := New(Config{Workers: 1, AccessLog: &logBuf})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})

	// Generated id.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	genID := resp.Header.Get("X-Request-ID")
	if genID == "" {
		t.Fatal("no X-Request-ID on response")
	}

	// Inbound id echoed.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "corr-42")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "corr-42" {
		t.Errorf("X-Request-ID = %q, want corr-42", got)
	}

	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2:\n%s", len(lines), logBuf.String())
	}
	ids := make([]string, 0, 2)
	for _, line := range lines {
		var entry struct {
			Msg      string  `json:"msg"`
			ID       string  `json:"id"`
			Method   string  `json:"method"`
			Path     string  `json:"path"`
			Endpoint string  `json:"endpoint"`
			Status   int     `json:"status"`
			Bytes    int64   `json:"bytes"`
			Duration float64 `json:"duration"`
		}
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", line, err)
		}
		if entry.Msg != "request" || entry.Method != http.MethodGet ||
			entry.Path != "/healthz" || entry.Endpoint != "GET /healthz" ||
			entry.Status != http.StatusOK || entry.Bytes == 0 {
			t.Errorf("log entry = %+v", entry)
		}
		ids = append(ids, entry.ID)
	}
	if ids[0] != genID || ids[1] != "corr-42" {
		t.Errorf("logged ids %v, want [%s corr-42]", ids, genID)
	}
}

// TestJobGetAfterEviction404 is the HTTP-level regression test for the
// job-retention bug: once the retention TTL evicts a finished job, GET on
// its id answers 404 like an id that never existed.
func TestJobGetAfterEviction404(t *testing.T) {
	s := New(Config{Workers: 1, JobRetention: 30 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})

	status, raw := post(t, ts, "/v1/simulate", `{"n1":8,"n2":8,"n3":8,"p":2}`)
	if status != http.StatusAccepted {
		t.Fatalf("accept status %d: %s", status, raw)
	}
	accepted := decode[JobResponse](t, raw)
	if final := waitJob(t, ts, accepted.ID); final.Status != string(JobDone) {
		t.Fatalf("job = %+v", final)
	}
	time.Sleep(60 * time.Millisecond)
	if status, raw := get(t, ts, "/v1/jobs/"+accepted.ID); status != http.StatusNotFound {
		t.Fatalf("evicted job answered %d: %s", status, raw)
	}
	if n := s.Jobs().Evicted(); n < 1 {
		t.Errorf("Evicted() = %d, want >= 1", n)
	}
	// The eviction shows in /debug/vars too.
	_, varsRaw := get(t, ts, "/debug/vars")
	vars := decode[VarsResponse](t, varsRaw)
	if vars.JobsEvicted < 1 {
		t.Errorf("vars.JobsEvicted = %d, want >= 1", vars.JobsEvicted)
	}
	if vars.JobsByState[string(JobDone)] != 0 {
		t.Errorf("vars.JobsByState[done] = %d after eviction", vars.JobsByState[string(JobDone)])
	}
}
