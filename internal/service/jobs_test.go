package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func waitStatus(t *testing.T, r *Runner, id string) JobView {
	t.Helper()
	done, ok := r.Wait(id)
	if !ok {
		t.Fatalf("job %s unknown", id)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s did not finish", id)
	}
	v, _ := r.Get(id)
	return v
}

func TestRunnerLifecycle(t *testing.T) {
	r := NewRunner(2, 8, 0)
	defer r.Shutdown(context.Background())
	id, err := r.Submit(func(context.Context) (any, error) { return 7, nil })
	if err != nil {
		t.Fatal(err)
	}
	v := waitStatus(t, r, id)
	if v.Status != JobDone || v.Result.(int) != 7 {
		t.Fatalf("job = %+v", v)
	}

	boom := errors.New("boom")
	id, _ = r.Submit(func(context.Context) (any, error) { return nil, boom })
	if v := waitStatus(t, r, id); v.Status != JobFailed || !errors.Is(v.Err, boom) {
		t.Fatalf("failed job = %+v", v)
	}
}

func TestRunnerCancelRunning(t *testing.T) {
	r := NewRunner(1, 8, 0)
	defer r.Shutdown(context.Background())
	started := make(chan struct{})
	id, err := r.Submit(func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done() // honor cancellation, as JobFuncs must
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if !r.Cancel(id) {
		t.Fatal("Cancel returned false for a known job")
	}
	if v := waitStatus(t, r, id); v.Status != JobCancelled {
		t.Fatalf("cancelled job = %+v", v)
	}
}

func TestRunnerCancelQueued(t *testing.T) {
	r := NewRunner(1, 8, 0)
	defer r.Shutdown(context.Background())
	release := make(chan struct{})
	blocker, _ := r.Submit(func(context.Context) (any, error) { <-release; return nil, nil })
	queued, _ := r.Submit(func(context.Context) (any, error) { return "ran", nil })
	if !r.Cancel(queued) {
		t.Fatal("Cancel returned false")
	}
	if v, _ := r.Get(queued); v.Status != JobCancelled {
		t.Fatalf("queued job after cancel = %+v", v)
	}
	close(release)
	if v := waitStatus(t, r, blocker); v.Status != JobDone {
		t.Fatalf("blocker = %+v", v)
	}
	// The cancelled job must never run even though the worker is free now.
	if v, _ := r.Get(queued); v.Status != JobCancelled || v.Result != nil {
		t.Fatalf("cancelled job ran: %+v", v)
	}
}

func TestRunnerTimeout(t *testing.T) {
	r := NewRunner(1, 8, 20*time.Millisecond)
	defer r.Shutdown(context.Background())
	id, _ := r.Submit(func(ctx context.Context) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if v := waitStatus(t, r, id); v.Status != JobCancelled || !errors.Is(v.Err, context.DeadlineExceeded) {
		t.Fatalf("timed-out job = %+v", v)
	}
}

func TestRunnerQueueFull(t *testing.T) {
	r := NewRunner(1, 1, 0)
	defer r.Shutdown(context.Background())
	release := make(chan struct{})
	defer close(release)
	block := func(context.Context) (any, error) { <-release; return nil, nil }
	if _, err := r.Submit(block); err != nil { // taken by the worker
		t.Fatal(err)
	}
	// Give the worker a moment to drain the queue slot, then fill it.
	deadline := time.Now().Add(time.Second)
	for {
		if _, err := r.Submit(block); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue slot never freed")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := r.Submit(block); !errors.Is(err, ErrJobQueueFull) {
		t.Fatalf("Submit on full queue = %v, want ErrJobQueueFull", err)
	}
}

// TestRunnerShutdownDrains: jobs in flight at shutdown complete when they
// finish within the drain budget.
func TestRunnerShutdownDrains(t *testing.T) {
	r := NewRunner(2, 8, 0)
	release := make(chan struct{})
	id, _ := r.Submit(func(context.Context) (any, error) { <-release; return "drained", nil })
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	if err := r.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	v, _ := r.Get(id)
	if v.Status != JobDone || v.Result.(string) != "drained" {
		t.Fatalf("in-flight job after drain = %+v", v)
	}
	if _, err := r.Submit(func(context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrRunnerClosed) {
		t.Fatalf("Submit after shutdown = %v, want ErrRunnerClosed", err)
	}
}

// TestRunnerShutdownCancels: a job outliving the drain budget has its
// context cancelled and ends JobCancelled.
func TestRunnerShutdownCancels(t *testing.T) {
	r := NewRunner(1, 8, 0)
	started := make(chan struct{})
	id, _ := r.Submit(func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := r.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	v, _ := r.Get(id)
	if v.Status != JobCancelled {
		t.Fatalf("job after forced shutdown = %+v", v)
	}
}

// TestRunnerConcurrent floods the runner from many goroutines; with -race
// this is the locking correctness test.
func TestRunnerConcurrent(t *testing.T) {
	r := NewRunner(4, 256, 0)
	defer r.Shutdown(context.Background())
	var wg sync.WaitGroup
	ids := make([][]string, 8)
	for g := range ids {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				id, err := r.Submit(func(context.Context) (any, error) { return g, nil })
				if err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				ids[g] = append(ids[g], id)
			}
		}(g)
	}
	wg.Wait()
	for g, list := range ids {
		for _, id := range list {
			if v := waitStatus(t, r, id); v.Status != JobDone || v.Result.(int) != g {
				t.Fatalf("job %s = %+v, want done/%d", id, v, g)
			}
		}
	}
}

// submitAndWait runs a trivial job to completion and returns its id.
func submitAndWait(t *testing.T, r *Runner, v int) string {
	t.Helper()
	id, err := r.Submit(func(context.Context) (any, error) { return v, nil })
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, r, id)
	return id
}

// TestRunnerRetentionTTL is the regression test for the job-retention bug:
// finished jobs used to stay in the runner's map forever. With a TTL, a
// finished job is queryable within the window and evicted after it.
func TestRunnerRetentionTTL(t *testing.T) {
	r := NewRunnerConfig(RunnerConfig{Workers: 1, Retention: 40 * time.Millisecond})
	defer r.Shutdown(context.Background())
	id := submitAndWait(t, r, 1)
	if _, ok := r.Get(id); !ok {
		t.Fatal("finished job gone before its TTL")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := r.Get(id); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job still queryable long after its TTL")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := r.Len(); n != 0 {
		t.Errorf("Len() = %d after eviction", n)
	}
	if n := r.Evicted(); n != 1 {
		t.Errorf("Evicted() = %d, want 1", n)
	}
}

// TestRunnerWaitAppliesRetention is the regression test for Wait bypassing
// the retention policy: it used to return a live done channel for ids that
// Get, Len, Counts, and List (and therefore the whole HTTP API) already
// reported as evicted. Wait must apply eviction first and agree with Get.
func TestRunnerWaitAppliesRetention(t *testing.T) {
	// An hour-long TTL keeps the janitor (which ticks at retain/4, capped
	// at 30s) out of the test: backdating the finish time makes lazy
	// eviction inside the accessor under test the only possible path.
	r := NewRunnerConfig(RunnerConfig{Workers: 1, Retention: time.Hour})
	defer r.Shutdown(context.Background())
	id := submitAndWait(t, r, 1)
	if _, ok := r.Wait(id); !ok {
		t.Fatal("Wait lost a finished job before its TTL")
	}
	r.mu.Lock()
	r.jobs[id].finished = time.Now().Add(-2 * time.Hour)
	r.mu.Unlock()
	// Wait runs first, so a lazily-evicting Get cannot be what removed
	// the job.
	done, ok := r.Wait(id)
	if ok {
		t.Fatalf("Wait returned a done channel (%v) for an expired job", done)
	}
	if _, ok := r.Get(id); ok {
		t.Fatal("Get disagrees with Wait about the evicted job")
	}
	if n := r.Evicted(); n != 1 {
		t.Errorf("Evicted() = %d, want 1", n)
	}
}

// TestRunnerRetentionCap: with age-based eviction disabled, the cap bounds
// the retained set and evicts oldest-first.
func TestRunnerRetentionCap(t *testing.T) {
	r := NewRunnerConfig(RunnerConfig{Workers: 1, Retention: -1, MaxRetained: 3})
	defer r.Shutdown(context.Background())
	ids := make([]string, 5)
	for i := range ids {
		ids[i] = submitAndWait(t, r, i)
	}
	if n := r.Len(); n != 3 {
		t.Fatalf("Len() = %d, want 3", n)
	}
	for _, id := range ids[:2] {
		if _, ok := r.Get(id); ok {
			t.Errorf("oldest job %s not evicted", id)
		}
	}
	for i, id := range ids[2:] {
		v, ok := r.Get(id)
		if !ok || v.Result.(int) != i+2 {
			t.Errorf("recent job %s = %+v, want result %d", id, v, i+2)
		}
	}
	if n := r.Evicted(); n != 2 {
		t.Errorf("Evicted() = %d, want 2", n)
	}
}

// TestRunnerJanitorEvicts: expired jobs are evicted by the background
// janitor even when nothing calls Get/Len/Submit to trigger the lazy path.
// Evicted() takes the lock but does not itself evict.
func TestRunnerJanitorEvicts(t *testing.T) {
	r := NewRunnerConfig(RunnerConfig{Workers: 1, Retention: 30 * time.Millisecond})
	defer r.Shutdown(context.Background())
	submitAndWait(t, r, 1)
	deadline := time.Now().Add(5 * time.Second)
	for r.Evicted() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("janitor never evicted the expired job")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunnerList: the listing walks jobs in submission order with a
// sequence-number cursor and an optional state filter.
func TestRunnerList(t *testing.T) {
	r := NewRunnerConfig(RunnerConfig{Workers: 1, Retention: -1})
	defer r.Shutdown(context.Background())
	ids := make([]string, 5)
	for i := range ids {
		ids[i] = submitAndWait(t, r, i)
	}
	boom := errors.New("boom")
	fid, _ := r.Submit(func(context.Context) (any, error) { return nil, boom })
	waitStatus(t, r, fid)

	items, next := r.List("", 0, 0)
	if len(items) != 6 || next != 0 {
		t.Fatalf("List all = %d items, next %d; want 6, 0", len(items), next)
	}
	for i, it := range items[:5] {
		if it.ID != ids[i] || it.Status != JobDone || it.Created.IsZero() {
			t.Fatalf("items[%d] = %+v, want %s done", i, it, ids[i])
		}
	}

	// Pagination: two pages of 2 carry a cursor, and resuming from it
	// continues without gap or overlap.
	var walked []string
	var after int64
	for {
		page, n := r.List("", after, 2)
		for _, it := range page {
			walked = append(walked, it.ID)
		}
		if n == 0 {
			break
		}
		after = n
	}
	if len(walked) != 6 || walked[0] != ids[0] || walked[5] != fid {
		t.Fatalf("cursor walk = %v", walked)
	}

	failed, _ := r.List(JobFailed, 0, 0)
	if len(failed) != 1 || failed[0].ID != fid {
		t.Fatalf("List(failed) = %+v", failed)
	}
	done, _ := r.List(JobDone, 0, 0)
	if len(done) != 5 {
		t.Fatalf("List(done) = %d items", len(done))
	}
}

// TestRunnerCountsByState: Counts tracks the lifecycle states of the
// remembered jobs.
func TestRunnerCountsByState(t *testing.T) {
	r := NewRunnerConfig(RunnerConfig{Workers: 1, Retention: -1})
	defer r.Shutdown(context.Background())
	submitAndWait(t, r, 1)
	boom := errors.New("boom")
	id, _ := r.Submit(func(context.Context) (any, error) { return nil, boom })
	waitStatus(t, r, id)
	c := r.Counts()
	if c[JobDone] != 1 || c[JobFailed] != 1 {
		t.Errorf("Counts() = %v, want one done and one failed", c)
	}
}
