package service

import (
	"math"
	"net/http"
	"testing"

	"repro/internal/core"
)

// TestBoundMatMul: matmul through /v1/bound reproduces /v1/lowerbound's
// numbers (the generalized engine collapsing onto Theorem 3) with the exact
// rational exponents alongside.
func TestBoundMatMul(t *testing.T) {
	_, ts := newTestServer(t)
	status, raw := post(t, ts, "/v1/bound", `{"problems":[
		{"program":"A[i,k]*B[k,j] -> C[i,j] | i=9600 k=600 j=2400","p":512}]}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	env := decode[Envelope[BoundResponse]](t, raw)
	if len(env.Results) != 1 || env.Results[0] == nil || len(env.Errors) != 0 {
		t.Fatalf("envelope = %+v", env)
	}
	b := *env.Results[0]
	if b.SigmaExact != "3/2" || b.ExponentExact != "2/3" {
		t.Fatalf("exponents %q/%q, want 3/2 and 2/3", b.SigmaExact, b.ExponentExact)
	}
	for _, a := range b.Arrays {
		if a.SExact != "1/2" {
			t.Fatalf("array %s exponent %q, want 1/2", a.Name, a.SExact)
		}
	}
	d := core.Dims{N1: 9600, N2: 600, N3: 2400}
	if want := core.LowerBound(d, 512); math.Abs(b.Bound-want) > 1e-9*(1+want) {
		t.Fatalf("bound %v, want %v", b.Bound, want)
	}
	if b.FreeArrays != 3 {
		t.Fatalf("freeArrays = %d, want 3 (Case 3)", b.FreeArrays)
	}
}

// TestBoundEnvelope: partial success with per-index taxonomy codes, the
// structured program form, and the exponents-only mode.
func TestBoundEnvelope(t *testing.T) {
	_, ts := newTestServer(t)
	status, raw := post(t, ts, "/v1/bound", `{"problems":[
		{"arrays":[{"name":"X","indices":["i"]},{"name":"Y","indices":["j"]},{"name":"F","indices":["i"]}],
		 "output":"F","extents":{"i":4096,"j":4096},"p":64},
		{"program":"A[i]*B[i]"},
		{"program":"A[i,k]*B[k,j] -> C[i,j]"},
		{"program":"A[i,k]*B[k,j] -> C[i,j] | i=8 k=8 j=8","p":0}]}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	env := decode[Envelope[BoundResponse]](t, raw)
	if len(env.Results) != 4 || env.Results[0] == nil || env.Results[1] != nil ||
		env.Results[2] == nil || env.Results[3] != nil {
		t.Fatalf("results = %+v", env.Results)
	}
	if len(env.Errors) != 2 ||
		env.Errors[0].Index != 1 || env.Errors[0].Code != "bad_program" ||
		env.Errors[1].Index != 3 || env.Errors[1].Code != "bad_processor_count" {
		t.Fatalf("errors = %+v", env.Errors)
	}
	if nb := env.Results[0]; nb.SigmaExact != "2" || nb.Bound <= 0 {
		t.Fatalf("n-body result = %+v", nb)
	}
	// Exponents-only: no extents, so no bound fields.
	if exp := env.Results[2]; exp.SigmaExact != "3/2" || exp.P != 0 || exp.Bound != 0 || exp.Footprint != 0 {
		t.Fatalf("exponents-only result = %+v", exp)
	}
}

// TestBoundRejects: request-level failures answer non-2xx directly.
func TestBoundRejects(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct {
		body   string
		status int
	}{
		{`{}`, http.StatusBadRequest},
		{`{"problems":[]}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	} {
		status, raw := post(t, ts, "/v1/bound", tc.body)
		if status != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.body, status, tc.status, raw)
		}
	}
}

// TestBoundSingleInline: the bare single-problem form answers a bare
// BoundResponse on success and a taxonomy-coded 400 on a bad program.
func TestBoundSingleInline(t *testing.T) {
	_, ts := newTestServer(t)
	status, raw := post(t, ts, "/v1/bound",
		`{"program":"A[a,c]*B[c,b] -> C[a,b] | a=48 c=48 b=48","p":27}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	b := decode[BoundResponse](t, raw)
	if b.SigmaExact != "3/2" || b.P != 27 || b.Bound <= 0 {
		t.Fatalf("inline response = %+v", b)
	}
	status, raw = post(t, ts, "/v1/bound", `{"program":"A[i]*B[i]"}`)
	if status != http.StatusBadRequest {
		t.Fatalf("malformed program: status %d, want 400 (%s)", status, raw)
	}
	er := decode[ErrorResponse](t, raw)
	if er.Kind != "bad_program" {
		t.Fatalf("kind = %q, want bad_program (%s)", er.Kind, raw)
	}
}

// TestBoundMemoized: a repeated program answers from the cache.
func TestBoundMemoized(t *testing.T) {
	s, ts := newTestServer(t)
	body := `{"problems":[{"program":"A[i,k]*B[k,j] -> C[i,j] | i=64 k=64 j=64","p":8}]}`
	if status, raw := post(t, ts, "/v1/bound", body); status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	_, missesBefore := s.cache.Stats()
	hitsBefore, _ := s.cache.Stats()
	if status, _ := post(t, ts, "/v1/bound", body); status != http.StatusOK {
		t.Fatal("second request failed")
	}
	hits, misses := s.cache.Stats()
	if hits <= hitsBefore || misses != missesBefore {
		t.Fatalf("second request not served from cache: hits %d→%d misses %d→%d",
			hitsBefore, hits, missesBefore, misses)
	}
}
