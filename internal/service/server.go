package service

import (
	"context"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/store"
)

// Config tunes a Server. The zero value selects sensible defaults
// throughout.
type Config struct {
	// CacheSize bounds the memo cache (total entries); ≤ 0 selects 4096.
	CacheSize int
	// Workers is the job pool width; ≤ 0 selects the experiment driver's
	// width (experiments.Workers, i.e. GOMAXPROCS unless overridden).
	Workers int
	// QueueDepth bounds the job queue; ≤ 0 selects 64. A full queue makes
	// /v1/simulate answer 503 rather than buffering without bound.
	QueueDepth int
	// JobTimeout is the per-job deadline; 0 selects a minute, negative
	// disables the deadline.
	JobTimeout time.Duration
	// MaxSimFlops rejects simulation requests whose n1·n2·n3 exceeds it
	// (the simulator is exact, not sampled, so flops are real work); ≤ 0
	// selects 1e9.
	MaxSimFlops float64
	// MaxSimProcs rejects goroutine-engine simulation requests whose P
	// exceeds it (that engine runs one goroutine per rank, so admitting
	// huge P would let one request exhaust the daemon); ≤ 0 selects 4096.
	// The rejection message points at the event engine, whose own limit is
	// MaxSimProcsEvent.
	MaxSimProcs int
	// MaxSimProcsEvent rejects event-engine simulation requests whose P
	// exceeds it; ≤ 0 selects 1 << 20. The event engine multiplexes ranks
	// onto a worker pool, so it admits far larger worlds than the
	// goroutine engine for the same memory budget.
	MaxSimProcsEvent int
	// MaxSearchProcs rejects grid/predict requests whose P exceeds it (the
	// divisor search is linear in P); ≤ 0 selects 1 << 24.
	MaxSearchProcs int
	// MaxTopoProcs rejects topology-aware predict requests whose P exceeds
	// it: the synchronous worst-fiber sweep is linear in P on fabrics
	// without translation symmetry, so it gets its own ceiling below
	// MaxSearchProcs. A fabric's own charge-oracle limit (topo.MaxP, which
	// binds only custom fabrics without closed-form link loads) tightens
	// the effective limit further; rejections name whichever limit fired.
	// ≤ 0 selects 1 << 17.
	MaxTopoProcs int
	// MaxBatch bounds the batch length of batch requests; ≤ 0 selects
	// 1024.
	MaxBatch int
	// MaxPlanPoints caps how many points a single /v1/plan problem's P
	// range may expand to; ≤ 0 selects 1 << 20. Oversize ranges answer 400
	// with kind "bad_plan_range".
	MaxPlanPoints int
	// PlanInlineLimit is the total point count up to which /v1/plan
	// answers with one inline JSON envelope; larger plans stream NDJSON.
	// ≤ 0 selects 512.
	PlanInlineLimit int
	// PlanConcurrency caps concurrently executing /v1/plan requests; the
	// excess answers 503 with kind "overloaded" immediately (plans are
	// long-lived streams, so queueing them would hold connections). ≤ 0
	// selects 4.
	PlanConcurrency int
	// ComputeConcurrency caps concurrently executing synchronous compute
	// requests (/v1/lowerbound, /v1/grid, /v1/predict) the same way; ≤ 0
	// selects 256.
	ComputeConcurrency int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ so simulator
	// hotspots are profilable in production. Off by default: the profile
	// endpoints expose internals and can themselves burn CPU, so they are
	// opt-in (parmmd -pprof).
	EnablePprof bool
	// JobRetention is how long finished jobs stay queryable through
	// /v1/jobs/{id} before eviction; 0 selects ten minutes, negative
	// retains forever.
	JobRetention time.Duration
	// MaxJobsRetained caps the number of finished jobs kept regardless of
	// age (oldest evicted first); 0 selects 4096, negative removes the cap.
	MaxJobsRetained int
	// AccessLog, when non-nil, receives one structured JSON line per
	// request (id, method, path, matched endpoint, status, bytes,
	// duration). Each response also carries the id in X-Request-ID,
	// honoring an inbound header of that name for end-to-end correlation.
	AccessLog io.Writer
	// ArtifactStore, when non-nil, enables durable job artifacts: jobs
	// write large outputs (Chrome traces, batch CSVs, plan NDJSON) into
	// the store, served by GET /v1/jobs/{id}/artifacts[/{name}] with
	// Range support — and, unlike job metadata, surviving retention
	// eviction. Nil disables artifacts; requests that need them (e.g.
	// "trace": true) then answer 400.
	ArtifactStore store.Store
	// MaxArtifactBytes caps a single artifact; ≤ 0 selects
	// store.DefaultMaxArtifactBytes (64 MiB).
	MaxArtifactBytes int64
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 4096
	}
	if c.Workers <= 0 {
		c.Workers = experiments.Workers()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = time.Minute
	}
	if c.JobTimeout < 0 {
		c.JobTimeout = 0
	}
	if c.MaxSimFlops <= 0 {
		c.MaxSimFlops = 1e9
	}
	if c.MaxSimProcs <= 0 {
		c.MaxSimProcs = 4096
	}
	if c.MaxSimProcsEvent <= 0 {
		c.MaxSimProcsEvent = 1 << 20
	}
	if c.MaxSearchProcs <= 0 {
		c.MaxSearchProcs = 1 << 24
	}
	if c.MaxTopoProcs <= 0 {
		c.MaxTopoProcs = 1 << 17
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	if c.MaxPlanPoints <= 0 {
		c.MaxPlanPoints = 1 << 20
	}
	if c.PlanInlineLimit <= 0 {
		c.PlanInlineLimit = 512
	}
	if c.PlanConcurrency <= 0 {
		c.PlanConcurrency = 4
	}
	if c.ComputeConcurrency <= 0 {
		c.ComputeConcurrency = 256
	}
	return c
}

// limiter is a non-blocking concurrency gate: acquire fails immediately at
// the cap so the caller can answer 503 instead of queueing work the client
// may no longer be waiting for.
type limiter chan struct{}

func newLimiter(n int) limiter { return make(limiter, n) }

func (l limiter) acquire() bool {
	select {
	case l <- struct{}{}:
		return true
	default:
		return false
	}
}

func (l limiter) release() { <-l }

// Server is the parmmd HTTP service: the v1 API over the lower-bound
// calculator, grid selector, runtime model, and simulator, with the memo
// cache and the async job pool behind it. Create with New, mount Handler,
// and Shutdown to drain.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	cache  *Cache
	jobs   *Runner
	logger *slog.Logger

	// reg holds this server's metric families (cache, jobs, HTTP). It is
	// per-instance, not process-global, so tests can run many Servers
	// without families colliding; /metrics concatenates it with the
	// process-wide obs.Default carrying the simulator counters.
	reg     *obs.Registry
	latency map[string]*obs.Histogram // request-duration histograms by route pattern

	// planLimit and computeLimit are the per-endpoint-group concurrency
	// gates; overloads counts requests they turned away with 503.
	planLimit    limiter
	computeLimit limiter
	overloads    atomic.Int64
	// planPoints counts plan points served (inline and streamed).
	planPoints atomic.Int64

	// artifacts is the content-addressed catalog over Config.ArtifactStore;
	// nil when artifacts are disabled.
	artifacts        *store.Artifacts
	artifactsWritten atomic.Int64
	artifactBytes    atomic.Int64
	artifactFetches  atomic.Int64

	requests  atomic.Int64
	reqID     atomic.Int64
	jobsTotal atomic.Int64
	// wordsSimulated accumulates float64 words as IEEE-754 bits under CAS,
	// so /debug/vars needs no lock.
	wordsSimulated atomic.Uint64
}

// New builds a Server and starts its job pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: NewCache(cfg.CacheSize),
		jobs: NewRunnerConfig(RunnerConfig{
			Workers:     cfg.Workers,
			QueueDepth:  cfg.QueueDepth,
			Timeout:     cfg.JobTimeout,
			Retention:   cfg.JobRetention,
			MaxRetained: cfg.MaxJobsRetained,
		}),
		reg:          obs.NewRegistry(),
		planLimit:    newLimiter(cfg.PlanConcurrency),
		computeLimit: newLimiter(cfg.ComputeConcurrency),
	}
	if cfg.AccessLog != nil {
		s.logger = slog.New(slog.NewJSONHandler(cfg.AccessLog, nil))
	}
	if cfg.ArtifactStore != nil {
		s.artifacts = store.NewArtifacts(cfg.ArtifactStore, cfg.MaxArtifactBytes)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/vars", s.handleVars)
	s.mux.HandleFunc("POST /v1/lowerbound", s.limited(s.computeLimit, s.handleLowerBound))
	s.mux.HandleFunc("POST /v1/bound", s.limited(s.computeLimit, s.handleBound))
	s.mux.HandleFunc("POST /v1/grid", s.limited(s.computeLimit, s.handleGrid))
	s.mux.HandleFunc("POST /v1/predict", s.limited(s.computeLimit, s.handlePredict))
	s.mux.HandleFunc("POST /v1/plan", s.limited(s.planLimit, s.handlePlan))
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/artifacts", s.handleArtifactList)
	s.mux.HandleFunc("GET /v1/jobs/{id}/artifacts/{name}", s.handleArtifactGet)
	if cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.registerMetrics()
	return s
}

// limited wraps a handler behind a concurrency gate: at the cap the
// request is refused with 503 "overloaded" before any body is read.
// /v1/simulate needs no gate — its work runs on the bounded job pool
// behind the queue-full 503 — but synchronous endpoints execute on the
// request goroutine, so without a cap a traffic burst would run unbounded
// divisor searches concurrently.
func (s *Server) limited(l limiter, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !l.acquire() {
			s.overloads.Add(1)
			writeError(w, ErrOverloaded)
			return
		}
		defer l.release()
		h(w, r)
	}
}

// registerMetrics builds the server's metric families. Cheap live values
// (cache stats, job states) are exported as func metrics read at scrape
// time; only the request-latency histograms are updated on the request
// path.
func (s *Server) registerMetrics() {
	s.reg.CounterFunc("service_requests_total",
		"HTTP requests served (all endpoints).",
		func() float64 { return float64(s.requests.Load()) })
	s.reg.CounterFunc("service_cache_hits_total",
		"Memo-cache lookups answered from cache.",
		func() float64 { h, _ := s.cache.Stats(); return float64(h) })
	s.reg.CounterFunc("service_cache_misses_total",
		"Memo-cache lookups that had to compute.",
		func() float64 { _, m := s.cache.Stats(); return float64(m) })
	s.reg.CounterFunc("service_cache_shared_total",
		"Memo-cache lookups satisfied by a concurrent caller's in-flight computation (singleflight).",
		func() float64 { return float64(s.cache.Shared()) })
	s.reg.CounterFunc("service_overloads_total",
		"Requests refused with 503 by the per-endpoint concurrency limits.",
		func() float64 { return float64(s.overloads.Load()) })
	s.reg.CounterFunc("service_plan_points_total",
		"Strong-scaling plan points served (inline and streamed).",
		func() float64 { return float64(s.planPoints.Load()) })
	s.reg.GaugeFunc("service_cache_entries",
		"Current memo-cache entries.",
		func() float64 { return float64(s.cache.Len()) })
	s.reg.CounterFunc("service_jobs_submitted_total",
		"Jobs ever accepted by /v1/simulate.",
		func() float64 { return float64(s.jobsTotal.Load()) })
	s.reg.GaugeFunc("service_jobs_inflight",
		"Jobs currently executing.",
		func() float64 { return float64(s.jobs.InFlight()) })
	for _, st := range []JobStatus{JobQueued, JobRunning, JobDone, JobFailed, JobCancelled} {
		st := st
		s.reg.GaugeFunc("service_jobs",
			"Remembered jobs by lifecycle state, after retention eviction.",
			func() float64 { return float64(s.jobs.Counts()[st]) },
			"state", string(st))
	}
	s.reg.CounterFunc("service_jobs_evicted_total",
		"Finished jobs evicted by the retention policy (age or cap).",
		func() float64 { return float64(s.jobs.Evicted()) })
	s.reg.CounterFunc("service_words_simulated_total",
		"Network-wide words moved by completed simulations.",
		s.WordsSimulated)
	s.reg.CounterFunc("service_artifacts_written_total",
		"Job artifacts written to the artifact store.",
		func() float64 { return float64(s.artifactsWritten.Load()) })
	s.reg.CounterFunc("service_artifact_bytes_total",
		"Bytes of job artifacts written to the artifact store.",
		func() float64 { return float64(s.artifactBytes.Load()) })
	s.reg.CounterFunc("service_artifact_fetches_total",
		"Artifact content fetches served (full and ranged).",
		func() float64 { return float64(s.artifactFetches.Load()) })

	s.latency = make(map[string]*obs.Histogram)
	for _, pattern := range []string{
		"GET /healthz", "GET /metrics", "GET /debug/vars",
		"POST /v1/lowerbound", "POST /v1/bound", "POST /v1/grid", "POST /v1/predict",
		"POST /v1/plan", "POST /v1/simulate",
		"GET /v1/jobs", "GET /v1/jobs/{id}", "DELETE /v1/jobs/{id}",
		"GET /v1/jobs/{id}/artifacts", "GET /v1/jobs/{id}/artifacts/{name}",
		"other",
	} {
		s.latency[pattern] = s.reg.Histogram("service_request_seconds",
			"HTTP request latency by route pattern.", nil,
			"endpoint", pattern)
	}
}

// statusRecorder captures the status code and body size written by a
// handler for access logging.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so NDJSON streaming flushes
// through the access-log wrapper (embedding alone would hide the
// interface: the wrapped method set does not satisfy http.Flusher
// dynamically when r.ResponseWriter does).
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Handler returns the root handler; mount it on an http.Server or
// httptest.Server. It counts requests, assigns each a request id (echoed in
// X-Request-ID, honoring an inbound one), observes per-endpoint latency,
// and — when Config.AccessLog is set — emits one structured log line per
// request.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = "req-" + strconv.FormatInt(s.reqID.Add(1), 10)
		}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		rec.Header().Set("X-Request-ID", id)
		s.mux.ServeHTTP(rec, r)
		elapsed := time.Since(start)
		pattern := "other"
		if _, p := s.mux.Handler(r); p != "" {
			pattern = p
		}
		if h, ok := s.latency[pattern]; ok {
			h.Observe(elapsed.Seconds())
		} else {
			s.latency["other"].Observe(elapsed.Seconds())
		}
		if s.logger != nil {
			s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("id", id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("endpoint", pattern),
				slog.Int("status", rec.status),
				slog.Int64("bytes", rec.bytes),
				slog.Duration("duration", elapsed),
			)
		}
	})
}

// handleMetrics serves the Prometheus text exposition: this server's
// families followed by the process-wide simulator families (disjoint name
// spaces, so the concatenation is a valid exposition).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
	obs.Default.WritePrometheus(w)
}

// Shutdown drains the job pool: in-flight and queued jobs get until ctx is
// done to finish, then their contexts are cancelled. Call it after the
// http.Server's own Shutdown so no new jobs arrive while draining.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.jobs.Shutdown(ctx)
}

// Cache exposes the memo cache (for tests and benchmarks).
func (s *Server) Cache() *Cache { return s.cache }

// Jobs exposes the job runner (for tests).
func (s *Server) Jobs() *Runner { return s.jobs }

// Registry exposes this server's metric registry, so a metrics pusher can
// export the per-instance families alongside the process-wide obs.Default.
func (s *Server) Registry() *obs.Registry { return s.reg }

// addWordsSimulated accumulates the words-moved counter.
func (s *Server) addWordsSimulated(words float64) {
	for {
		old := s.wordsSimulated.Load()
		val := math.Float64frombits(old) + words
		if s.wordsSimulated.CompareAndSwap(old, math.Float64bits(val)) {
			return
		}
	}
}

// WordsSimulated returns the accumulated network-wide words moved by
// completed simulations.
func (s *Server) WordsSimulated() float64 {
	return math.Float64frombits(s.wordsSimulated.Load())
}
