package service

import (
	"context"
	"math"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
)

// Config tunes a Server. The zero value selects sensible defaults
// throughout.
type Config struct {
	// CacheSize bounds the memo cache (total entries); ≤ 0 selects 4096.
	CacheSize int
	// Workers is the job pool width; ≤ 0 selects the experiment driver's
	// width (experiments.Workers, i.e. GOMAXPROCS unless overridden).
	Workers int
	// QueueDepth bounds the job queue; ≤ 0 selects 64. A full queue makes
	// /v1/simulate answer 503 rather than buffering without bound.
	QueueDepth int
	// JobTimeout is the per-job deadline; 0 selects a minute, negative
	// disables the deadline.
	JobTimeout time.Duration
	// MaxSimFlops rejects simulation requests whose n1·n2·n3 exceeds it
	// (the simulator is exact, not sampled, so flops are real work); ≤ 0
	// selects 1e9.
	MaxSimFlops float64
	// MaxSimProcs rejects simulation requests whose P exceeds it (the
	// simulator runs one goroutine per rank); ≤ 0 selects 4096.
	MaxSimProcs int
	// MaxSearchProcs rejects grid/predict requests whose P exceeds it (the
	// divisor search is linear in P); ≤ 0 selects 1 << 24.
	MaxSearchProcs int
	// MaxBatch bounds the batch length of batch requests; ≤ 0 selects
	// 1024.
	MaxBatch int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ so simulator
	// hotspots are profilable in production. Off by default: the profile
	// endpoints expose internals and can themselves burn CPU, so they are
	// opt-in (parmmd -pprof).
	EnablePprof bool
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 4096
	}
	if c.Workers <= 0 {
		c.Workers = experiments.Workers()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = time.Minute
	}
	if c.JobTimeout < 0 {
		c.JobTimeout = 0
	}
	if c.MaxSimFlops <= 0 {
		c.MaxSimFlops = 1e9
	}
	if c.MaxSimProcs <= 0 {
		c.MaxSimProcs = 4096
	}
	if c.MaxSearchProcs <= 0 {
		c.MaxSearchProcs = 1 << 24
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	return c
}

// Server is the parmmd HTTP service: the v1 API over the lower-bound
// calculator, grid selector, runtime model, and simulator, with the memo
// cache and the async job pool behind it. Create with New, mount Handler,
// and Shutdown to drain.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	cache *Cache
	jobs  *Runner

	requests  atomic.Int64
	jobsTotal atomic.Int64
	// wordsSimulated accumulates float64 words as IEEE-754 bits under CAS,
	// so /debug/vars needs no lock.
	wordsSimulated atomic.Uint64
}

// New builds a Server and starts its job pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: NewCache(cfg.CacheSize),
		jobs:  NewRunner(cfg.Workers, cfg.QueueDepth, cfg.JobTimeout),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /debug/vars", s.handleVars)
	s.mux.HandleFunc("POST /v1/lowerbound", s.handleLowerBound)
	s.mux.HandleFunc("POST /v1/grid", s.handleGrid)
	s.mux.HandleFunc("POST /v1/predict", s.handlePredict)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	if cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the root handler (counting requests); mount it on an
// http.Server or httptest.Server.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		s.mux.ServeHTTP(w, r)
	})
}

// Shutdown drains the job pool: in-flight and queued jobs get until ctx is
// done to finish, then their contexts are cancelled. Call it after the
// http.Server's own Shutdown so no new jobs arrive while draining.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.jobs.Shutdown(ctx)
}

// Cache exposes the memo cache (for tests and benchmarks).
func (s *Server) Cache() *Cache { return s.cache }

// Jobs exposes the job runner (for tests).
func (s *Server) Jobs() *Runner { return s.jobs }

// addWordsSimulated accumulates the words-moved counter.
func (s *Server) addWordsSimulated(words float64) {
	for {
		old := s.wordsSimulated.Load()
		val := math.Float64frombits(old) + words
		if s.wordsSimulated.CompareAndSwap(old, math.Float64bits(val)) {
			return
		}
	}
}

// WordsSimulated returns the accumulated network-wide words moved by
// completed simulations.
func (s *Server) WordsSimulated() float64 {
	return math.Float64frombits(s.wordsSimulated.Load())
}
