//go:build race

package service

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation slows 65536-rank simulations past the job-poll deadline,
// so the large-P topology test skips itself.
const raceEnabled = true
