package kkt

import "math"

// SolveDescent minimizes the ProductMin problem numerically by projected
// gradient descent on a reduced parametrization, independent of both the
// analytic water-filling solution and the grid-search oracle. It works in
// any dimension d.
//
// Parametrization: at any optimum the product constraint is tight (unless
// already slack at the lower-bound corner), so we optimize over
// y = log x and descend the objective Σ exp(y_i) along the constraint
// manifold Σ y_i = log L, projecting y back onto the box y_i ≥ log l_i
// after every step. The projection of the gradient onto the manifold's
// tangent space keeps the product fixed; box clipping followed by
// re-normalization of the free coordinates restores feasibility. The method
// converges linearly for this smooth convex-over-the-manifold problem;
// iterations and step size are fixed generously since this is a test
// oracle, not a production solver.
func (p ProductMin) SolveDescent(iters int, step float64) Vector {
	d := len(p.Lower)
	if p.L <= p.Lower.Prod() {
		return p.Lower.Clone()
	}
	logL := math.Log(p.L)
	lb := make([]float64, d)
	for i, l := range p.Lower {
		lb[i] = math.Log(l)
	}
	// Start at the scaled point y_i = logL/d adjusted to the box.
	y := make([]float64, d)
	for i := range y {
		y[i] = logL / float64(d)
	}
	project(y, lb, logL)
	for it := 0; it < iters; it++ {
		// Gradient of Σ exp(y_i) is exp(y_i); project out the all-ones
		// direction (the constraint normal in y-space).
		g := make([]float64, d)
		mean := 0.0
		for i := range y {
			g[i] = math.Exp(y[i])
			mean += g[i]
		}
		mean /= float64(d)
		norm := 0.0
		for i := range g {
			g[i] -= mean
			norm += g[i] * g[i]
		}
		if norm < 1e-24 {
			break
		}
		for i := range y {
			y[i] -= step * g[i] / math.Sqrt(norm+1)
		}
		project(y, lb, logL)
	}
	out := make(Vector, d)
	for i := range y {
		out[i] = math.Exp(y[i])
	}
	return out
}

// project restores feasibility of y: clip to the box y ≥ lb, then spread
// any product deficit or surplus uniformly over the coordinates that remain
// strictly above their bounds (iterating because the spread can push new
// coordinates onto their bounds).
func project(y, lb []float64, logL float64) {
	d := len(y)
	for pass := 0; pass < d+1; pass++ {
		sum := 0.0
		for i := range y {
			if y[i] < lb[i] {
				y[i] = lb[i]
			}
			sum += y[i]
		}
		deficit := logL - sum
		if math.Abs(deficit) < 1e-15*(1+math.Abs(logL)) {
			return
		}
		if deficit > 0 {
			// Raise all coordinates uniformly; never violates the box.
			for i := range y {
				y[i] += deficit / float64(d)
			}
			return
		}
		// Lower only the coordinates with slack, equally.
		var free []int
		for i := range y {
			if y[i] > lb[i]+1e-15 {
				free = append(free, i)
			}
		}
		if len(free) == 0 {
			return // fully pinned; product exceeds L, still feasible
		}
		for _, i := range free {
			y[i] += deficit / float64(len(free))
		}
	}
}
