package kkt

import (
	"fmt"
	"math"
	"sort"
)

// ProductMin is the optimization problem at the heart of the paper's
// Lemma 2, in any dimension d ≥ 1:
//
//	minimize    Σ_i x_i
//	subject to  Π_i x_i ≥ L
//	            x_i ≥ Lower_i > 0
//
// For the matrix multiplication bound, d = 3, L = (mnk/P)², and the lower
// bounds are the per-array access bounds nk/P, mk/P, mn/P of Lemma 1.
type ProductMin struct {
	L     float64
	Lower Vector
}

// Solve returns the unique optimum of the problem using the water-filling
// structure: every variable is max(Lower_i, t) where the water level t is
// chosen so the product constraint is tight; if the lower bounds alone
// already satisfy the product constraint, the optimum is the lower-bound
// vector itself.
//
// The returned activeFree is the number of variables strictly governed by
// the water level (the paper's Case 1/2/3 for d = 3 correspond to
// activeFree = 1, 2, 3).
func (p ProductMin) Solve() (x Vector, activeFree int) {
	d := len(p.Lower)
	if d == 0 {
		panic("kkt: ProductMin with no variables")
	}
	for i, l := range p.Lower {
		if l <= 0 {
			panic(fmt.Sprintf("kkt: ProductMin lower bound %d = %v must be positive", i, l))
		}
	}
	if p.L <= p.Lower.Prod() {
		// Product constraint is slack at the lower-bound corner.
		return p.Lower.Clone(), 0
	}

	// Sort indices by ascending lower bound; the j variables with the
	// smallest bounds are the free ones for the smallest feasible j.
	idx := make([]int, d)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return p.Lower[idx[a]] < p.Lower[idx[b]] })

	for j := 1; j <= d; j++ {
		// Free variables: idx[0..j); fixed at bounds: idx[j..d).
		fixedProd := 1.0
		for _, i := range idx[j:] {
			fixedProd *= p.Lower[i]
		}
		t := math.Pow(p.L/fixedProd, 1/float64(j))
		// Validity: t must dominate every free bound and not exceed any
		// fixed bound (otherwise that variable should be free as well).
		if t < p.Lower[idx[j-1]]-1e-12*p.Lower[idx[j-1]] {
			continue
		}
		if j < d && t > p.Lower[idx[j]]*(1+1e-12) {
			continue
		}
		x = p.Lower.Clone()
		for _, i := range idx[:j] {
			x[i] = t
		}
		return x, j
	}
	panic(fmt.Sprintf("kkt: ProductMin.Solve found no consistent active set for L=%v lower=%v", p.L, p.Lower))
}

// Optimum returns the optimal objective value Σ_i x*_i.
func (p ProductMin) Optimum() float64 {
	x, _ := p.Solve()
	return x.Sum()
}

// Problem converts the ProductMin instance into the generic KKT Problem
// form of Definition 4, with the product constraint first followed by the
// d individual lower-bound constraints (matching the paper's ordering of
// g(x) in the proof of Lemma 2).
func (p ProductMin) Problem() *Problem {
	d := len(p.Lower)
	obj := func(x Vector) float64 { return x.Sum() }
	objGrad := func(x Vector) Vector {
		g := make(Vector, d)
		for i := range g {
			g[i] = 1
		}
		return g
	}
	prodF, prodG := ProductConstraint(p.L)
	cons := []Constraint{{G: prodF, Grad: prodG}}
	for i := 0; i < d; i++ {
		i := i
		cons = append(cons, Constraint{
			G: func(x Vector) float64 { return p.Lower[i] - x[i] },
			Grad: func(x Vector) Vector {
				g := make(Vector, d)
				g[i] = -1
				return g
			},
		})
	}
	return &Problem{F: obj, FGrad: objGrad, Cons: cons}
}

// DualCertificate constructs multipliers μ that, together with the optimum
// x* returned by Solve, satisfy the KKT conditions. Stationarity requires
// μ_0·(Π_{j≠i} x*_j) + μ_i = 1 for each i, with μ_i = 0 for free variables,
// which fixes μ_0 = 1/(Π_{j≠f} x*_j) for any free variable f and
// μ_i = 1 − μ_0·Π_{j≠i} x*_j for the bound-tight ones. This generalizes the
// explicit dual vectors the paper exhibits in Cases 1–3 of Lemma 2.
func (p ProductMin) DualCertificate() Point {
	x, free := p.Solve()
	d := len(x)
	mu := make([]float64, d+1)
	if free == 0 {
		// Product constraint slack: μ_0 = 0 and μ_i = 1 for all i.
		for i := 1; i <= d; i++ {
			mu[i] = 1
		}
		return Point{X: x, Mu: mu}
	}
	// Identify one free variable: any i with x_i > Lower_i (or equality in
	// the boundary case — then the certificate still works since the
	// corresponding μ_i is 0).
	prod := x.Prod()
	// Find the water level t = min over free candidates; free variables are
	// exactly those with the smallest x values equal to t.
	t := math.Inf(1)
	for i := range x {
		if x[i] < t {
			t = x[i]
		}
	}
	mu[0] = t / prod // 1 / (Π_{j≠f} x_j) where x_f = t
	for i := 0; i < d; i++ {
		mu[i+1] = 1 - mu[0]*prod/x[i]
		if mu[i+1] < 0 && mu[i+1] > -1e-12 {
			mu[i+1] = 0
		}
	}
	return Point{X: x, Mu: mu}
}

// BruteForce numerically minimizes the problem with a coarse multiplicative
// grid search followed by iterated local refinement, projecting onto the
// tight product constraint. It is slow and approximate by design — an
// independent oracle used in tests to validate Solve. The dimension must
// be 3.
func (p ProductMin) BruteForce(steps, refinements int) Vector {
	if len(p.Lower) != 3 {
		panic("kkt: BruteForce supports d = 3 only")
	}
	if p.L <= p.Lower.Prod() {
		return p.Lower.Clone()
	}
	// Search x1 in [l1, hi1], x2 in [l2, hi2]; x3 = max(l3, L/(x1 x2)).
	// Upper limits: at the optimum each x_i ≤ L / (l_j l_k) (since the
	// others are at least their bounds and the product is tight).
	lo1, lo2 := p.Lower[0], p.Lower[1]
	hi1 := p.L / (p.Lower[1] * p.Lower[2])
	hi2 := p.L / (p.Lower[0] * p.Lower[2])
	best := Vector{hi1, p.Lower[1], p.Lower[2]}
	best[2] = math.Max(p.Lower[2], p.L/(best[0]*best[1]))
	bestVal := best.Sum()
	eval := func(x1, x2 float64) {
		x3 := math.Max(p.Lower[2], p.L/(x1*x2))
		if v := x1 + x2 + x3; v < bestVal {
			bestVal = v
			best = Vector{x1, x2, x3}
		}
	}
	for r := 0; r <= refinements; r++ {
		d1 := (hi1 - lo1) / float64(steps)
		d2 := (hi2 - lo2) / float64(steps)
		for i := 0; i <= steps; i++ {
			for j := 0; j <= steps; j++ {
				eval(lo1+float64(i)*d1, lo2+float64(j)*d2)
			}
		}
		// Refine around the incumbent.
		lo1 = math.Max(p.Lower[0], best[0]-2*d1)
		hi1 = best[0] + 2*d1
		lo2 = math.Max(p.Lower[1], best[1]-2*d2)
		hi2 = best[1] + 2*d2
	}
	return best
}
