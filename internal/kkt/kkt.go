package kkt

import "fmt"

// Constraint is one inequality constraint g(x) ≤ 0 with its gradient.
type Constraint struct {
	G    Func
	Grad Grad
}

// Problem is a differentiable inequality-constrained minimization problem of
// the form of the paper's eq. (1): minimize F subject to G_i(x) ≤ 0.
type Problem struct {
	F     Func
	FGrad Grad
	Cons  []Constraint
}

// Point pairs a primal candidate X with dual multipliers Mu (one per
// constraint).
type Point struct {
	X  Vector
	Mu []float64
}

// Residuals reports how far a point is from satisfying each of the four KKT
// conditions of Definition 4. All residuals are ≤ tol at an exact KKT point.
type Residuals struct {
	// PrimalFeasibility is max_i max(G_i(x), 0).
	PrimalFeasibility float64
	// DualFeasibility is max_i max(−μ_i, 0).
	DualFeasibility float64
	// Stationarity is the max-norm of ∇F(x) + Σ μ_i ∇G_i(x).
	Stationarity float64
	// ComplementarySlackness is max_i |μ_i · G_i(x)|.
	ComplementarySlackness float64
}

// Max returns the largest of the four residuals.
func (r Residuals) Max() float64 {
	m := r.PrimalFeasibility
	if r.DualFeasibility > m {
		m = r.DualFeasibility
	}
	if r.Stationarity > m {
		m = r.Stationarity
	}
	if r.ComplementarySlackness > m {
		m = r.ComplementarySlackness
	}
	return m
}

// Check evaluates the KKT residuals of pt for problem p (Definition 4).
func (p *Problem) Check(pt Point) Residuals {
	if len(pt.Mu) != len(p.Cons) {
		panic(fmt.Sprintf("kkt: %d multipliers for %d constraints", len(pt.Mu), len(p.Cons)))
	}
	var r Residuals
	// Stationarity: ∇F(x) + Σ μ_i ∇G_i(x) = 0.
	station := p.FGrad(pt.X).Clone()
	for i, c := range p.Cons {
		gi := c.G(pt.X)
		if gi > r.PrimalFeasibility {
			r.PrimalFeasibility = gi
		}
		if -pt.Mu[i] > r.DualFeasibility {
			r.DualFeasibility = -pt.Mu[i]
		}
		if cs := abs(pt.Mu[i] * gi); cs > r.ComplementarySlackness {
			r.ComplementarySlackness = cs
		}
		cg := c.Grad(pt.X)
		for j := range station {
			station[j] += pt.Mu[i] * cg[j]
		}
	}
	for _, v := range station {
		if abs(v) > r.Stationarity {
			r.Stationarity = abs(v)
		}
	}
	return r
}

// IsKKT reports whether pt satisfies all four KKT conditions within tol.
// Under the hypotheses of the paper's Lemma 6 (convex objective, quasiconvex
// constraints) this certifies global optimality of pt.X.
func (p *Problem) IsKKT(pt Point, tol float64) bool {
	return p.Check(pt).Max() <= tol
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
