// Package kkt implements the convex-optimization machinery of §3.2 of the
// paper: differentiable convexity and quasiconvexity (Definitions 2 and 3),
// the Karush-Kuhn-Tucker conditions (Definition 4), a verifier for KKT
// sufficiency in the setting of Lemma 6 (convex objective, quasiconvex
// constraints), and analytic plus brute-force solvers for the "product
// lower bound" optimization problem that is the crux of the paper's Lemma 2:
//
//	minimize    x_1 + ... + x_d
//	subject to  x_1 · ... · x_d ≥ L
//	            x_i ≥ l_i          (i = 1..d)
//
// The analytic solver implements the water-filling structure the paper
// derives case-by-case for d = 3, generalized to any dimension: variables
// with large individual lower bounds sit at those bounds, and the remaining
// free variables are equal, raised just enough to make the product
// constraint tight. The brute-force solver exists purely as an independent
// numerical oracle for tests.
package kkt

import "fmt"

// Vector is a point in R^d.
type Vector []float64

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Sum returns the sum of the components of v.
func (v Vector) Sum() float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Prod returns the product of the components of v.
func (v Vector) Prod() float64 {
	p := 1.0
	for _, x := range v {
		p *= x
	}
	return p
}

// Dot returns the inner product ⟨v, w⟩.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("kkt: Dot length mismatch %d vs %d", len(v), len(w)))
	}
	s := 0.0
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Sub returns v − w.
func (v Vector) Sub(w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("kkt: Sub length mismatch %d vs %d", len(v), len(w)))
	}
	out := make(Vector, len(v))
	for i := range out {
		out[i] = v[i] - w[i]
	}
	return out
}

// Func is a scalar function on R^d.
type Func func(Vector) float64

// Grad is a gradient function on R^d.
type Grad func(Vector) Vector

// NumericalGrad approximates the gradient of f at x by central differences
// with step h per coordinate.
func NumericalGrad(f Func, x Vector, h float64) Vector {
	g := make(Vector, len(x))
	for i := range x {
		xp, xm := x.Clone(), x.Clone()
		xp[i] += h
		xm[i] -= h
		g[i] = (f(xp) - f(xm)) / (2 * h)
	}
	return g
}

// ConvexOnSamples checks Definition 2 — f(y) ≥ f(x) + ⟨∇f(x), y−x⟩ — for
// every ordered pair of the supplied sample points, within tol. It is a
// falsification tool for tests, not a proof of convexity.
func ConvexOnSamples(f Func, grad Grad, samples []Vector, tol float64) bool {
	for _, x := range samples {
		gx := grad(x)
		fx := f(x)
		for _, y := range samples {
			if f(y) < fx+gx.Dot(y.Sub(x))-tol {
				return false
			}
		}
	}
	return true
}

// QuasiconvexOnSamples checks Definition 3 — g(y) ≤ g(x) implies
// ⟨∇g(x), y−x⟩ ≤ 0 — for every ordered pair of the supplied sample points,
// within tol.
func QuasiconvexOnSamples(g Func, grad Grad, samples []Vector, tol float64) bool {
	for _, x := range samples {
		gx := grad(x)
		vx := g(x)
		for _, y := range samples {
			if g(y) <= vx && gx.Dot(y.Sub(x)) > tol {
				return false
			}
		}
	}
	return true
}

// ProductConstraint returns the paper's Lemma 5 function
// g0(x) = L − x_1·x_2·...·x_d together with its gradient. Lemma 5 proves g0
// quasiconvex on the positive orthant (for d = 3; the AM-GM argument is
// dimension-free).
func ProductConstraint(l float64) (Func, Grad) {
	f := func(x Vector) float64 { return l - x.Prod() }
	grad := func(x Vector) Vector {
		g := make(Vector, len(x))
		for i := range x {
			p := 1.0
			for j := range x {
				if j != i {
					p *= x[j]
				}
			}
			g[i] = -p
		}
		return g
	}
	return f, grad
}
