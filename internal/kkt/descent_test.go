package kkt

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSolveDescentMatchesAnalytic(t *testing.T) {
	instances := []ProductMin{
		{L: 100, Lower: Vector{1, 1, 1}},
		{L: 100, Lower: Vector{1, 2, 30}},
		{L: 64, Lower: Vector{0.5, 6, 7}},
		{L: 1000, Lower: Vector{9, 9.5, 10}},
		{L: 5, Lower: Vector{0.1, 0.2, 0.3}},
		{L: 1e6, Lower: Vector{1, 1, 1, 1}},    // d = 4
		{L: 1e4, Lower: Vector{1, 2, 3, 4, 5}}, // d = 5
		{L: 12, Lower: Vector{100, 100, 100}},  // slack product
	}
	for _, p := range instances {
		x, _ := p.Solve()
		y := p.SolveDescent(20000, 0.05)
		if math.Abs(x.Sum()-y.Sum()) > 1e-4*(1+x.Sum()) {
			t.Errorf("L=%v lower=%v: analytic sum %v, descent sum %v (%v)", p.L, p.Lower, x.Sum(), y.Sum(), y)
		}
		// Descent result must be feasible.
		if y.Prod() < p.L*(1-1e-9) && p.L > p.Lower.Prod() {
			t.Errorf("descent infeasible: prod %v < L %v", y.Prod(), p.L)
		}
		for i := range y {
			if y[i] < p.Lower[i]*(1-1e-9) {
				t.Errorf("descent violates bound %d: %v < %v", i, y[i], p.Lower[i])
			}
		}
	}
}

func TestSolveDescentNeverBeatsAnalytic(t *testing.T) {
	// If descent ever found a strictly better feasible point, the
	// analytic optimum (certified by KKT) would be wrong.
	f := func(lRaw, aRaw, bRaw, cRaw uint16) bool {
		l := float64(lRaw)/50 + 0.1
		lower := Vector{
			float64(aRaw)/2000 + 0.05,
			float64(bRaw)/2000 + 0.05,
			float64(cRaw)/2000 + 0.05,
		}
		p := ProductMin{L: l, Lower: lower}
		x, _ := p.Solve()
		y := p.SolveDescent(3000, 0.05)
		return y.Sum() >= x.Sum()-1e-6*(1+x.Sum())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
