package kkt

import (
	"math"
	"testing"
	"testing/quick"
)

func vecsApproxEqual(a, b Vector, rel float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		scale := math.Max(math.Abs(a[i]), math.Abs(b[i]))
		if scale == 0 {
			continue
		}
		if math.Abs(a[i]-b[i]) > rel*scale {
			return false
		}
	}
	return true
}

func TestVectorOps(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if v.Sum() != 6 || v.Prod() != 6 {
		t.Fatalf("Sum/Prod = %v/%v", v.Sum(), v.Prod())
	}
	if v.Dot(w) != 32 {
		t.Fatalf("Dot = %v", v.Dot(w))
	}
	d := w.Sub(v)
	if d[0] != 3 || d[1] != 3 || d[2] != 3 {
		t.Fatalf("Sub = %v", d)
	}
	c := v.Clone()
	c[0] = 99
	if v[0] == 99 {
		t.Fatal("Clone aliases original")
	}
}

func TestNumericalGradMatchesAnalytic(t *testing.T) {
	f := func(x Vector) float64 { return x[0]*x[0] + 3*x[1] }
	g := NumericalGrad(f, Vector{2, 5}, 1e-6)
	if math.Abs(g[0]-4) > 1e-5 || math.Abs(g[1]-3) > 1e-5 {
		t.Fatalf("grad = %v", g)
	}
}

// TestLemma5Quasiconvex checks the paper's Lemma 5: g0(x) = L − x1·x2·x3 is
// quasiconvex on the positive octant, by falsification on random samples.
func TestLemma5Quasiconvex(t *testing.T) {
	g, grad := ProductConstraint(10)
	rng := uint64(1)
	next := func() float64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return 0.1 + 5*float64(rng%1000)/1000
	}
	var samples []Vector
	for i := 0; i < 60; i++ {
		samples = append(samples, Vector{next(), next(), next()})
	}
	if !QuasiconvexOnSamples(g, grad, samples, 1e-9) {
		t.Fatal("Lemma 5 falsified: L - x1x2x3 not quasiconvex on samples")
	}
	// Verify the gradient is correct numerically.
	x := Vector{1.5, 2.5, 0.5}
	if !vecsApproxEqual(grad(x), NumericalGrad(g, x, 1e-6), 1e-4) {
		t.Fatal("ProductConstraint gradient wrong")
	}
}

// TestProductNotConvex documents why Lemma 6 (quasiconvexity suffices) is
// needed: −x1·x2·x3 is not convex on the positive octant, so Definition 2
// alone cannot be used for the product constraint.
func TestProductNotConvex(t *testing.T) {
	g, grad := ProductConstraint(0)
	samples := []Vector{{1, 1, 1}, {4, 4, 4}, {1, 4, 4}, {4, 1, 1}, {2, 2, 2}}
	if ConvexOnSamples(g, grad, samples, 1e-9) {
		t.Fatal("−x1x2x3 unexpectedly passed the convexity check; samples too weak")
	}
}

func TestConvexOnSamplesAffine(t *testing.T) {
	f := func(x Vector) float64 { return 2*x[0] - x[1] + 7 }
	grad := func(x Vector) Vector { return Vector{2, -1} }
	samples := []Vector{{0, 0}, {1, 5}, {-3, 2}, {10, -10}}
	if !ConvexOnSamples(f, grad, samples, 1e-12) {
		t.Fatal("affine function failed convexity check")
	}
	if !QuasiconvexOnSamples(f, grad, samples, 1e-12) {
		t.Fatal("affine function failed quasiconvexity check")
	}
}

func TestProductMinCaseStructure(t *testing.T) {
	// Mirror the paper's three cases with m=8, n=4, k=2 (m/n = 2,
	// mn/k² = 8) and exact expected solutions from Lemma 2.
	m, n, k := 8.0, 4.0, 2.0
	cases := []struct {
		p        float64
		want     Vector
		wantFree int
	}{
		{1, Vector{n * k, m * k / 1, m * n / 1}, 1}, // boundary P=1: x=(8,16,32)
		{2, Vector{n * k, m * k / 2, m * n / 2}, 1}, // Case 1 boundary P = m/n
		{4, Vector{8, 8, m * n / 4}, 2},             // Case 2: sqrt(mnk²/P) = sqrt(512/4)... check below
		{8, Vector{4, 4, 4}, 3},                     // boundary P = mn/k²: (mnk/P)^{2/3} = 8^{2/3}=4
		{64, Vector{1, 1, 1}, 3},                    // deep Case 3: (64/64)^{2/3} = 1
	}
	// Fix case P=4 expectation: sqrt(mnk²/P) = sqrt(8·4·4/4) = sqrt(32).
	cases[2].want = Vector{math.Sqrt(32), math.Sqrt(32), 8}
	for _, c := range cases {
		prob := ProductMin{
			L:     math.Pow(m*n*k/c.p, 2),
			Lower: Vector{n * k / c.p, m * k / c.p, m * n / c.p},
		}
		x, free := prob.Solve()
		if !vecsApproxEqual(x, c.want, 1e-9) {
			t.Errorf("P=%v: x = %v, want %v", c.p, x, c.want)
		}
		// Boundary cases may legitimately report either adjacent active-set
		// count; only check free away from boundaries.
		if c.p == 4 || c.p == 64 {
			if free != c.wantFree {
				t.Errorf("P=%v: free = %d, want %d", c.p, free, c.wantFree)
			}
		}
	}
}

func TestProductMinSlackProduct(t *testing.T) {
	p := ProductMin{L: 1, Lower: Vector{2, 3, 4}}
	x, free := p.Solve()
	if free != 0 || !vecsApproxEqual(x, Vector{2, 3, 4}, 0) {
		t.Fatalf("slack-product solve = %v free=%d", x, free)
	}
	pt := p.DualCertificate()
	if !p.Problem().IsKKT(pt, 1e-9) {
		t.Fatalf("KKT fails for slack product: %+v", p.Problem().Check(pt))
	}
}

// TestKKTCertificateAlwaysValid is the computational content of Lemma 2's
// proof: at the analytic optimum there exist dual multipliers satisfying
// all four KKT conditions (which by Lemma 6 certifies global optimality).
func TestKKTCertificateAlwaysValid(t *testing.T) {
	f := func(mRaw, nRaw, kRaw, pRaw uint8) bool {
		m := float64(mRaw%40) + 2
		n := float64(nRaw % 40)
		if n > m {
			n = m
		}
		if n < 1 {
			n = 1
		}
		k := float64(kRaw % 40)
		if k > n {
			k = n
		}
		if k < 1 {
			k = 1
		}
		p := float64(pRaw%100) + 1
		prob := ProductMin{
			L:     math.Pow(m*n*k/p, 2),
			Lower: Vector{n * k / p, m * k / p, m * n / p},
		}
		pt := prob.DualCertificate()
		res := prob.Problem().Check(pt)
		// Scale-aware tolerance: constraint values scale like the data.
		tol := 1e-7 * (1 + m*n*k)
		return res.Max() <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSolveMatchesBruteForce validates the analytic water-filling solution
// against an independent numerical search.
func TestSolveMatchesBruteForce(t *testing.T) {
	instances := []ProductMin{
		{L: 100, Lower: Vector{1, 1, 1}},
		{L: 100, Lower: Vector{1, 2, 30}},
		{L: 64, Lower: Vector{0.5, 6, 7}},
		{L: 1000, Lower: Vector{9, 9.5, 10}},
		{L: 5, Lower: Vector{0.1, 0.2, 0.3}},
	}
	for _, p := range instances {
		x, _ := p.Solve()
		bf := p.BruteForce(60, 8)
		if math.Abs(x.Sum()-bf.Sum()) > 1e-3*(1+x.Sum()) {
			t.Errorf("L=%v lower=%v: analytic %v (sum %v) vs brute %v (sum %v)",
				p.L, p.Lower, x, x.Sum(), bf, bf.Sum())
		}
		if x.Sum() > bf.Sum()+1e-6*(1+bf.Sum()) {
			t.Errorf("analytic solution worse than brute force: %v > %v", x.Sum(), bf.Sum())
		}
	}
}

// TestSolveGeneralDimensions exercises the water-filling solver beyond d=3
// (the §6.3 extension direction: iteration spaces with more dimensions).
func TestSolveGeneralDimensions(t *testing.T) {
	// d = 1: x = max(l, L).
	x, _ := ProductMin{L: 10, Lower: Vector{2}}.Solve()
	if x[0] != 10 {
		t.Fatalf("d=1: %v", x)
	}
	// d = 2 symmetric: x = (sqrt(L), sqrt(L)).
	x, free := ProductMin{L: 16, Lower: Vector{1, 1}}.Solve()
	if !vecsApproxEqual(x, Vector{4, 4}, 1e-12) || free != 2 {
		t.Fatalf("d=2: %v free=%d", x, free)
	}
	// d = 4 with one dominant bound.
	p := ProductMin{L: 10000, Lower: Vector{1, 1, 1, 50}}
	x, free = p.Solve()
	if free != 3 {
		t.Fatalf("d=4 free = %d, want 3", free)
	}
	want := math.Cbrt(10000.0 / 50.0)
	if !vecsApproxEqual(x, Vector{want, want, want, 50}, 1e-9) {
		t.Fatalf("d=4 x = %v", x)
	}
	pt := p.DualCertificate()
	if !p.Problem().IsKKT(pt, 1e-6) {
		t.Fatalf("d=4 KKT residuals %+v", p.Problem().Check(pt))
	}
}

func TestSolveFeasibility(t *testing.T) {
	f := func(lRaw, aRaw, bRaw, cRaw uint16) bool {
		l := float64(lRaw)/100 + 0.01
		lower := Vector{
			float64(aRaw)/1000 + 0.01,
			float64(bRaw)/1000 + 0.01,
			float64(cRaw)/1000 + 0.01,
		}
		p := ProductMin{L: l, Lower: lower}
		x, _ := p.Solve()
		for i := range x {
			if x[i] < lower[i]*(1-1e-9) {
				return false
			}
		}
		return x.Prod() >= l*(1-1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSolvePanics(t *testing.T) {
	for _, p := range []ProductMin{
		{L: 1, Lower: Vector{}},
		{L: 1, Lower: Vector{1, -1, 1}},
		{L: 1, Lower: Vector{0, 1, 1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %+v", p)
				}
			}()
			p.Solve()
		}()
	}
}

func TestResidualsMax(t *testing.T) {
	r := Residuals{PrimalFeasibility: 1, DualFeasibility: 3, Stationarity: 2, ComplementarySlackness: 0.5}
	if r.Max() != 3 {
		t.Fatalf("Max = %v", r.Max())
	}
}

func TestCheckRejectsBadPoint(t *testing.T) {
	p := ProductMin{L: 100, Lower: Vector{1, 1, 1}}
	prob := p.Problem()
	// Infeasible point.
	bad := Point{X: Vector{0.5, 1, 1}, Mu: []float64{0, 0, 0, 0}}
	if prob.IsKKT(bad, 1e-9) {
		t.Fatal("infeasible point passed KKT check")
	}
	// Feasible but non-stationary point.
	bad2 := Point{X: Vector{100, 100, 100}, Mu: []float64{0, 0, 0, 0}}
	res := prob.Check(bad2)
	if res.Stationarity < 0.5 {
		t.Fatalf("expected stationarity violation, got %+v", res)
	}
}
