// Package model provides closed-form α-β-γ execution-time predictions for
// the paper's Algorithm 1 and derived strong-scaling analyses (speedup,
// efficiency, and the processor count at which communication overtakes
// computation). The predictions follow §5.1's cost accounting exactly —
// per collective, (p−1 or ⌈log₂ p⌉)·α latency, (1 − 1/p)·w·β bandwidth,
// and (1 − 1/p)·w·γ reduction arithmetic — and the tests verify that they
// match the simulator's critical path to machine precision on conforming
// configurations, tying the analytic and measured halves of the repository
// together.
package model

import (
	"fmt"
	"math"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
)

// Prediction decomposes Algorithm 1's predicted execution time.
type Prediction struct {
	// Compute is γ·(local multiply-adds + reduction additions).
	Compute float64
	// Bandwidth is β·(communicated words per processor).
	Bandwidth float64
	// Latency is α·(messages per processor).
	Latency float64
	// Words is the communicated words per processor (the Theorem 3
	// quantity).
	Words float64
	// Messages is the per-processor message count.
	Messages float64
}

// Total returns Compute + Bandwidth + Latency.
func (p Prediction) Total() float64 { return p.Compute + p.Bandwidth + p.Latency }

// String renders the decomposition.
func (p Prediction) String() string {
	return fmt.Sprintf("total %.6g (compute %.6g, bandwidth %.6g, latency %.6g; %.0f words, %.0f msgs)",
		p.Total(), p.Compute, p.Bandwidth, p.Latency, p.Words, p.Messages)
}

// collectiveSteps returns the per-rank message count of an All-Gather or
// Reduce-Scatter over p ranks for the given algorithm family (ring: p−1;
// recursive doubling/halving: log₂ p; Auto dispatches like the
// implementation).
func collectiveSteps(p int, alg collective.Algorithm) float64 {
	if p <= 1 {
		return 0
	}
	pow2 := p&(p-1) == 0
	useRec := alg == collective.Recursive || (alg == collective.Auto && pow2)
	if useRec {
		return math.Log2(float64(p))
	}
	return float64(p - 1)
}

// Alg1Time predicts Algorithm 1's execution time on grid g under cfg with
// the given collective family. The prediction is exact (equal to the
// simulated critical path) when the grid divides the matrix dimensions and
// every block divides its fiber size; otherwise it is the balanced-load
// approximation.
func Alg1Time(d core.Dims, g grid.Grid, cfg machine.Config, alg collective.Algorithm) Prediction {
	p1, p2, p3 := float64(g.P1), float64(g.P2), float64(g.P3)
	aBlk := d.SizeA() / (p1 * p2)
	bBlk := d.SizeB() / (p2 * p3)
	dBlk := d.SizeC() / (p1 * p3)
	frac := func(p float64) float64 {
		if p <= 1 {
			return 0
		}
		return 1 - 1/p
	}
	words := frac(p3)*aBlk + frac(p1)*bBlk + frac(p2)*dBlk
	msgs := collectiveSteps(g.P3, alg) + collectiveSteps(g.P1, alg) + collectiveSteps(g.P2, alg)
	flops := d.Flops()/float64(g.Size()) + frac(p2)*dBlk
	return Prediction{
		Compute:   cfg.Gamma * flops,
		Bandwidth: cfg.Beta * words,
		Latency:   cfg.Alpha * msgs,
		Words:     words,
		Messages:  msgs,
	}
}

// Alg1TimeUnderMemory predicts Algorithm 1 on the cheapest grid whose
// per-processor footprint fits in mem words (grid.OptimalUnderMemory),
// returning the chosen grid alongside the prediction. ok is false when no
// grid over p processors fits — the regime left of the §6.2 memory floor,
// where the planner reports the bound but no feasible schedule.
func Alg1TimeUnderMemory(d core.Dims, p int, mem float64, cfg machine.Config, alg collective.Algorithm) (pred Prediction, g grid.Grid, ok bool) {
	g, ok = grid.OptimalUnderMemory(d, p, mem)
	if !ok {
		return Prediction{}, grid.Grid{}, false
	}
	return Alg1Time(d, g, cfg, alg), g, true
}

// SerialTime returns the single-processor execution time γ·mnk.
func SerialTime(d core.Dims, cfg machine.Config) float64 {
	return cfg.Gamma * d.Flops()
}

// Speedup returns SerialTime / Alg1Time on the optimal grid for each P.
func Speedup(d core.Dims, cfg machine.Config, ps []int) []float64 {
	out := make([]float64, len(ps))
	serial := SerialTime(d, cfg)
	for i, p := range ps {
		g := grid.Optimal(d, p)
		t := Alg1Time(d, g, cfg, collective.Auto).Total()
		if t > 0 {
			out[i] = serial / t
		} else {
			out[i] = 1
		}
	}
	return out
}

// Efficiency returns Speedup/P for each P.
func Efficiency(d core.Dims, cfg machine.Config, ps []int) []float64 {
	sp := Speedup(d, cfg, ps)
	for i, p := range ps {
		sp[i] /= float64(p)
	}
	return sp
}

// CommBoundProcessors returns the processor count beyond which Algorithm
// 1's bandwidth term exceeds its compute term (using the Case 3 bound and
// optimal grids): γ·mnk/P = β·3(mnk/P)^{2/3} gives
// P* = (γ/(3β))³·mnk — past it, adding processors buys little, the
// communication-bound regime the lower bounds make unavoidable.
func CommBoundProcessors(d core.Dims, cfg machine.Config) float64 {
	if cfg.Beta == 0 {
		return math.Inf(1)
	}
	r := cfg.Gamma / (3 * cfg.Beta)
	return r * r * r * d.Flops()
}
