package model

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/topo"
)

// TopoPrediction is Alg1Time evaluated against a concrete interconnect: the
// same §5.1 cost accounting, but with each collective phase priced at the
// worst effective (α, β) its fiber pairs see through the topology's routes
// and contention. Comparing Total against FlatTotal quantifies how much of
// the paper's memory-independent bound — attainable with constant 3 on the
// fully connected model — survives on the fabric.
type TopoPrediction struct {
	Prediction
	// FlatTotal is the uniform-model Alg1Time total under the same Config —
	// the cost the paper's analysis promises on a dedicated-link network.
	FlatTotal float64
	// Slowdown is Total()/FlatTotal: 1 on Flat, > 1 once routes share
	// contended links. It is the factor by which the constant in front of
	// the memory-independent bound degrades.
	Slowdown float64
	// Topology and Placement name the fabric and embedding evaluated.
	Topology  string
	Placement string
}

// String renders the prediction with its degradation factor.
func (p TopoPrediction) String() string {
	return fmt.Sprintf("%s on %s/%s: %s (flat %.6g, slowdown %.4g)",
		"alg1", p.Topology, p.Placement, p.Prediction.String(), p.FlatTotal, p.Slowdown)
}

// Alg1TimeTopo predicts Algorithm 1's execution time on grid g when the
// machine's interconnect is net's topology rather than the paper's fully
// connected network. Each collective phase runs over fibers of one grid
// axis; the prediction charges that phase's latency and bandwidth at the
// worst per-message (α, β) among the ordered rank pairs of any fiber — the
// pair whose route crosses the most contended links gates the collective,
// since every step of a ring or doubling schedule is only as fast as its
// slowest exchange. On a Flat network every pair charges exactly
// (cfg.Alpha, cfg.Beta) and the result collapses to Alg1Time.
//
// The grid must match net's rank count; a mismatch wraps
// core.ErrBadTopology.
func Alg1TimeTopo(d core.Dims, g grid.Grid, cfg machine.Config, alg collective.Algorithm, net *topo.Network) (TopoPrediction, error) {
	if g.Size() != net.P() {
		return TopoPrediction{}, fmt.Errorf("model: grid %v has %d ranks, network has %d: %w",
			g, g.Size(), net.P(), core.ErrBadTopology)
	}
	flat := Alg1Time(d, g, cfg, alg)

	p1, p2, p3 := float64(g.P1), float64(g.P2), float64(g.P3)
	frac := func(p float64) float64 {
		if p <= 1 {
			return 0
		}
		return 1 - 1/p
	}
	phases := []struct {
		axis   grid.Axis
		extent int
		words  float64 // per-rank words the phase moves
	}{
		{grid.Axis3, g.P3, frac(p3) * d.SizeA() / (p1 * p2)},
		{grid.Axis1, g.P1, frac(p1) * d.SizeB() / (p2 * p3)},
		{grid.Axis2, g.P2, frac(p2) * d.SizeC() / (p1 * p3)},
	}

	pred := TopoPrediction{
		Topology:  net.Topology().Name(),
		Placement: net.Placement().Policy.String(),
		FlatTotal: flat.Total(),
	}
	pred.Compute = flat.Compute
	pred.Words = flat.Words
	pred.Messages = flat.Messages
	for _, ph := range phases {
		if ph.extent <= 1 {
			continue
		}
		alphaW, betaW := worstFiberCharge(g, ph.axis, net)
		steps := collectiveSteps(ph.extent, alg)
		pred.Latency += alphaW * steps
		pred.Bandwidth += betaW * ph.words
	}
	if pred.FlatTotal > 0 {
		pred.Slowdown = pred.Total() / pred.FlatTotal
	} else {
		pred.Slowdown = 1
	}
	return pred, nil
}

// worstFiberCharge returns the largest per-message α and β any ordered rank
// pair within any fiber of the axis is charged. The maxima are taken
// independently: latency and bandwidth may be gated by different pairs.
//
// Two exact shortcuts keep the sweep affordable at datacenter P: a uniform
// network (Flat) charges every pair identically, so one pair answers for
// all; and on fabrics with translation symmetry, fibers in the same
// symmetry class (topo.FiberClassKey) see identical charge sets, so only
// one fiber per class is priced — on a torus that is a single fiber per
// axis regardless of P.
func worstFiberCharge(g grid.Grid, axis grid.Axis, net *topo.Network) (alpha, beta float64) {
	k := g.FiberLen(axis)
	if k <= 1 {
		return 0, 0
	}
	if net.Uniform() {
		fiber := make([]int, k)
		g.FiberInto(fiber, 0, axis)
		return net.Charge(fiber[0], fiber[1])
	}
	fiber := make([]int, k)
	seen := make([]bool, g.Size())
	classes := make(map[string]struct{})
	for r := 0; r < g.Size(); r++ {
		if seen[r] {
			continue
		}
		g.FiberInto(fiber, r, axis)
		for _, m := range fiber {
			seen[m] = true
		}
		if key, ok := topo.FiberClassKey(net.Topology(), net.Placement(), fiber); ok {
			if _, dup := classes[key]; dup {
				continue
			}
			classes[key] = struct{}{}
		}
		for _, s := range fiber {
			for _, d := range fiber {
				if s == d {
					continue
				}
				a, b := net.Charge(s, d)
				if a > alpha {
					alpha = a
				}
				if b > beta {
					beta = b
				}
			}
		}
	}
	return alpha, beta
}
