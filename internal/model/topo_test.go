package model

import (
	"errors"
	"testing"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/topo"
)

func testNetwork(t *testing.T, spec string, p int, cfg machine.Config, pol topo.Policy) *topo.Network {
	t.Helper()
	fabric, err := topo.Parse(spec, p, topo.Link{Alpha: cfg.Alpha, Beta: cfg.Beta})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := topo.PlaceRanks(p, fabric, pol)
	if err != nil {
		t.Fatal(err)
	}
	net, err := topo.NewNetwork(fabric, pl)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestAlg1TimeTopoFlatCollapses pins the consistency contract: on the Flat
// network the topology-aware prediction equals the closed-form Alg1Time in
// every component — the same floats, since the worst pair charge is exactly
// (cfg.Alpha, cfg.Beta).
func TestAlg1TimeTopoFlatCollapses(t *testing.T) {
	d := core.NewDims(64, 64, 64)
	g := grid.Grid{P1: 4, P2: 4, P3: 4}
	cfg := machine.Config{Alpha: 2, Beta: 1, Gamma: 1.0 / 16}
	net := testNetwork(t, "flat", 64, cfg, topo.Contiguous)
	for _, alg := range []collective.Algorithm{collective.Auto, collective.Ring, collective.Recursive} {
		want := Alg1Time(d, g, cfg, alg)
		got, err := Alg1TimeTopo(d, g, cfg, alg, net)
		if err != nil {
			t.Fatal(err)
		}
		if got.Prediction != want {
			t.Errorf("alg %v: flat topo prediction %+v, want %+v", alg, got.Prediction, want)
		}
		if got.Slowdown != 1 {
			t.Errorf("alg %v: flat slowdown = %v, want 1", alg, got.Slowdown)
		}
		if got.FlatTotal != want.Total() {
			t.Errorf("alg %v: FlatTotal = %v, want %v", alg, got.FlatTotal, want.Total())
		}
	}
}

// TestAlg1TimeTopoCongestionSlows checks a shared-NIC cluster predicts a
// strictly slower run than the paper's model, with compute untouched.
func TestAlg1TimeTopoCongestionSlows(t *testing.T) {
	d := core.NewDims(64, 64, 64)
	g := grid.Grid{P1: 4, P2: 4, P3: 4}
	cfg := machine.Config{Alpha: 2, Beta: 1, Gamma: 1.0 / 16}
	net := testNetwork(t, "twolevel=8", 64, cfg, topo.Contiguous)
	got, err := Alg1TimeTopo(d, g, cfg, collective.Auto, net)
	if err != nil {
		t.Fatal(err)
	}
	flat := Alg1Time(d, g, cfg, collective.Auto)
	if got.Slowdown <= 1 {
		t.Errorf("twolevel slowdown = %v, want > 1", got.Slowdown)
	}
	if got.Compute != flat.Compute {
		t.Errorf("topology changed compute: %v vs %v", got.Compute, flat.Compute)
	}
	if got.Bandwidth <= flat.Bandwidth {
		t.Errorf("congested bandwidth %v not above flat %v", got.Bandwidth, flat.Bandwidth)
	}
}

// TestAlg1TimeTopoSizeMismatch checks grid/network disagreement errors.
func TestAlg1TimeTopoSizeMismatch(t *testing.T) {
	cfg := machine.BandwidthOnly()
	net := testNetwork(t, "flat", 8, cfg, topo.Contiguous)
	_, err := Alg1TimeTopo(core.NewDims(8, 8, 8), grid.Grid{P1: 2, P2: 2, P3: 4}, cfg, collective.Auto, net)
	if !errors.Is(err, core.ErrBadTopology) {
		t.Errorf("mismatch = %v, want ErrBadTopology", err)
	}
}
