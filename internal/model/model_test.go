package model

import (
	"math"
	"testing"

	"repro/internal/algs"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/matrix"
)

// TestPredictionMatchesSimulation ties the analytic cost model to the
// simulator: on conforming configurations (dividing grids and shares),
// Alg1Time equals the simulated critical path to machine precision, for
// both collective families and several cost models.
func TestPredictionMatchesSimulation(t *testing.T) {
	cases := []struct {
		d   core.Dims
		g   grid.Grid
		cfg machine.Config
		alg collective.Algorithm
	}{
		{core.NewDims(768, 192, 48), grid.Grid{P1: 32, P2: 8, P3: 2}, machine.BandwidthOnly(), collective.Recursive},
		{core.NewDims(768, 192, 48), grid.Grid{P1: 32, P2: 8, P3: 2}, machine.Config{Alpha: 5, Beta: 2, Gamma: 0.25}, collective.Recursive},
		{core.NewDims(768, 192, 48), grid.Grid{P1: 12, P2: 3, P3: 1}, machine.Config{Alpha: 1, Beta: 1, Gamma: 0.01}, collective.Ring},
		{core.Square(48), grid.Grid{P1: 4, P2: 4, P3: 4}, machine.Config{Alpha: 3, Beta: 1.5, Gamma: 0.125}, collective.Recursive},
		{core.Square(48), grid.Grid{P1: 2, P2: 2, P3: 2}, machine.Config{Alpha: 0.5, Beta: 1, Gamma: 0}, collective.Ring},
	}
	for _, c := range cases {
		a := matrix.Random(c.d.N1, c.d.N2, 1)
		b := matrix.Random(c.d.N2, c.d.N3, 2)
		res, err := algs.Alg1(a, b, c.g.Size(), algs.Opts{Config: c.cfg, Grid: c.g, Collective: c.alg})
		if err != nil {
			t.Fatalf("%v %v: %v", c.d, c.g, err)
		}
		pred := Alg1Time(c.d, c.g, c.cfg, c.alg)
		if rel := math.Abs(pred.Total()-res.Stats.CriticalPath) / (1 + res.Stats.CriticalPath); rel > 1e-9 {
			t.Errorf("%v grid %v cfg %+v %v: predicted %v, simulated %v",
				c.d, c.g, c.cfg, c.alg, pred.Total(), res.Stats.CriticalPath)
		}
		if math.Abs(pred.Words-res.CommCost()) > 1e-9*(1+pred.Words) {
			t.Errorf("%v grid %v: predicted %v words, measured %v", c.d, c.g, pred.Words, res.CommCost())
		}
	}
}

func TestPredictionDecomposition(t *testing.T) {
	d := core.Square(64)
	g := grid.Grid{P1: 4, P2: 4, P3: 4}
	cfg := machine.Config{Alpha: 2, Beta: 3, Gamma: 5}
	pred := Alg1Time(d, g, cfg, collective.Recursive)
	if pred.Total() != pred.Compute+pred.Bandwidth+pred.Latency {
		t.Fatal("Total != sum of parts")
	}
	// Bandwidth = β × Theorem 3 bound (cubic grid attains it).
	if want := cfg.Beta * core.LowerBound(d, 64); math.Abs(pred.Bandwidth-want) > 1e-9 {
		t.Fatalf("bandwidth %v, want %v", pred.Bandwidth, want)
	}
	// Messages: 3 collectives × log2(4) steps.
	if pred.Messages != 6 {
		t.Fatalf("messages = %v, want 6", pred.Messages)
	}
	if pred.String() == "" {
		t.Fatal("empty String")
	}
}

func TestCollectiveSteps(t *testing.T) {
	if collectiveSteps(1, collective.Ring) != 0 {
		t.Fatal("singleton should cost nothing")
	}
	if collectiveSteps(8, collective.Ring) != 7 {
		t.Fatal("ring steps")
	}
	if collectiveSteps(8, collective.Auto) != 3 || collectiveSteps(8, collective.Recursive) != 3 {
		t.Fatal("recursive steps")
	}
	if collectiveSteps(6, collective.Auto) != 5 {
		t.Fatal("auto on non-power-of-two should be ring")
	}
}

func TestSpeedupMonotoneThenSaturating(t *testing.T) {
	d := core.Square(512)
	cfg := machine.Config{Alpha: 0, Beta: 1, Gamma: 1}
	ps := []int{1, 8, 64, 512, 4096}
	sp := Speedup(d, cfg, ps)
	if sp[0] < 0.99 || sp[0] > 1.01 {
		t.Fatalf("speedup at P=1 is %v", sp[0])
	}
	for i := 1; i < len(sp); i++ {
		if sp[i] < sp[i-1]*0.99 {
			t.Fatalf("speedup decreased: %v", sp)
		}
	}
	// Efficiency decays once communication matters.
	eff := Efficiency(d, cfg, ps)
	if eff[len(eff)-1] >= eff[0] {
		t.Fatalf("efficiency did not decay: %v", eff)
	}
}

func TestCommBoundProcessors(t *testing.T) {
	d := core.Square(1024)
	cfg := machine.Config{Beta: 1, Gamma: 1}
	pStar := CommBoundProcessors(d, cfg)
	// γ=β: P* = mnk/27.
	if want := d.Flops() / 27; math.Abs(pStar-want) > 1e-6*want {
		t.Fatalf("P* = %v, want %v", pStar, want)
	}
	if !math.IsInf(CommBoundProcessors(d, machine.Config{Gamma: 1}), 1) {
		t.Fatal("zero beta should give infinite P*")
	}
	// At P ≪ P*, compute dominates; at P ≫ P*, bandwidth dominates.
	small := Alg1Time(d, grid.Optimal(d, 8), cfg, collective.Auto)
	if small.Compute < small.Bandwidth {
		t.Fatalf("compute should dominate at small P: %+v", small)
	}
}
