// Package machine implements the distributed-memory parallel machine model
// of the paper's §3.1 (the α-β-γ model) as a deterministic simulator.
//
// A World holds P ranks (processors), each with its own local memory and a
// simulated clock. Ranks run as goroutines executing the same SPMD body.
// Point-to-point messages over the fully connected network cost
// α + β·w for a message of w words, charged to the sender (link occupancy)
// and realized at the receiver no earlier than the send completes; local
// computation costs γ per flop. Because each pair of processors has a
// dedicated bidirectional link, there is no contention: simultaneous
// messages between different pairs overlap freely, which the per-rank
// clocks model naturally.
//
// The communication cost of an algorithm is counted along its critical
// path — the maximum final clock over ranks — exactly the quantity the
// paper's lower bounds constrain. The simulator additionally tracks, per
// rank, words sent and received (total and per named phase), message
// counts, flops, and a peak-memory watermark, so experiments can compare
// measured volumes against Theorem 3 word-for-word.
//
// The simulator is deterministic: matching is FIFO per (source,
// destination, tag), clocks are pure functions of the communication
// pattern, and no wall-clock time leaks into results.
package machine

import (
	"fmt"
	"sync"
)

// Config sets the machine cost parameters of the α-β-γ model.
type Config struct {
	// Alpha is the per-message latency cost.
	Alpha float64
	// Beta is the per-word bandwidth cost.
	Beta float64
	// Gamma is the per-flop computation cost.
	Gamma float64
}

// BandwidthOnly returns a Config that charges 1 per word and nothing for
// latency or computation, so a rank's final clock reads directly in words —
// convenient when comparing against bandwidth lower bounds.
func BandwidthOnly() Config { return Config{Alpha: 0, Beta: 1, Gamma: 0} }

// message is one in-flight point-to-point message. Structs are pooled in
// the global arena and queues link them intrusively through next, so the
// steady-state send path allocates nothing.
type message struct {
	src, dst int
	tag      int
	data     []float64
	// sendClock is the sender's simulated time when the send was posted;
	// the message is available at the receiver at sendClock + α + β·w.
	sendClock float64
	next      *message
}

// msgQueue is a FIFO of in-flight messages for one (src, dst) pair, stored
// by value in the queues map so enqueue/dequeue never allocate.
type msgQueue struct {
	head, tail *message
}

// World is a simulated machine of P ranks.
type World struct {
	p   int
	cfg Config

	mu       sync.Mutex
	cond     *sync.Cond
	queues   map[pairKey]msgQueue
	inflight int
	blocked  int
	done     int
	failed   bool
	failMsg  string

	// barrier state (generation-counted reusable barrier). barClock
	// accumulates the max clock of the generation in progress; barRelease
	// holds the released clock of the generation that last completed. A
	// completed generation's release value cannot be overwritten until
	// every rank has left the barrier, because the next generation needs
	// all P arrivals to complete.
	barArrived int
	barGen     int
	barClock   float64
	barRelease float64

	trace   *Trace
	traffic *TrafficMatrix

	ranks []Rank
}

type pairKey struct{ src, dst int }

// NewWorld creates a machine with p ranks and the given cost model.
func NewWorld(p int, cfg Config) *World {
	if p <= 0 {
		panic(fmt.Sprintf("machine: world size %d", p))
	}
	w := &World{
		p:      p,
		cfg:    cfg,
		queues: make(map[pairKey]msgQueue),
	}
	w.cond = sync.NewCond(&w.mu)
	// Ranks are allocated in one block; per-phase stat maps are created
	// lazily on first use (see Rank.addPhase).
	w.ranks = make([]Rank, p)
	for i := range w.ranks {
		w.ranks[i] = Rank{id: i, world: w}
	}
	return w
}

// P returns the number of ranks.
func (w *World) P() int { return w.p }

// Config returns the cost model.
func (w *World) Config() Config { return w.cfg }

// Run executes body on every rank concurrently and blocks until all ranks
// return. It returns an error if any rank panicked (including simulator-
// detected deadlocks). A World can be Run only once; create a fresh World
// per experiment.
func (w *World) Run(body func(*Rank)) (err error) {
	var wg sync.WaitGroup
	errs := make([]error, w.p)
	for i := 0; i < w.p; i++ {
		wg.Add(1)
		go func(r *Rank) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					errs[r.id] = fmt.Errorf("rank %d: %v", r.id, rec)
					w.fail(fmt.Sprintf("rank %d panicked: %v", r.id, rec))
					return
				}
				// A rank that returns while peers still wait for its
				// messages leaves them stuck: fold completion into the
				// deadlock check.
				w.mu.Lock()
				w.done++
				if w.deadlockedLocked() {
					w.failed = true
					w.failMsg = fmt.Sprintf("deadlock: %d ranks finished, the rest blocked with no messages in flight", w.done)
				}
				w.mu.Unlock()
				w.cond.Broadcast()
			}()
			body(r)
		}(&w.ranks[i])
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// fail marks the world failed and wakes all blocked ranks so they can abort
// instead of waiting forever for messages that will never arrive.
func (w *World) fail(msg string) {
	w.mu.Lock()
	if !w.failed {
		w.failed = true
		w.failMsg = msg
	}
	w.mu.Unlock()
	w.cond.Broadcast()
}

// send enqueues a message (eager, non-blocking delivery).
func (w *World) send(m *message) {
	w.mu.Lock()
	key := pairKey{m.src, m.dst}
	q := w.queues[key]
	if q.tail == nil {
		q.head, q.tail = m, m
	} else {
		q.tail.next = m
		q.tail = m
	}
	w.queues[key] = q
	w.inflight++
	w.mu.Unlock()
	w.cond.Broadcast()
}

// recv blocks until a message from src to dst with the given tag is
// available and returns it, preserving FIFO order among same-tag messages.
func (w *World) recv(dst, src, tag int) *message {
	key := pairKey{src, dst}
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if w.failed {
			panic("machine: aborted: " + w.failMsg)
		}
		q := w.queues[key]
		var prev *message
		for m := q.head; m != nil; prev, m = m, m.next {
			if m.tag != tag {
				continue
			}
			if prev == nil {
				q.head = m.next
			} else {
				prev.next = m.next
			}
			if q.tail == m {
				q.tail = prev
			}
			w.queues[key] = q
			m.next = nil
			w.inflight--
			return m
		}
		w.blocked++
		if w.deadlockedLocked() {
			w.failed = true
			w.failMsg = fmt.Sprintf("deadlock: all %d ranks blocked (%d in Recv, %d in Barrier) with no messages in flight", w.p, w.blocked, w.barArrived)
			w.blocked--
			w.cond.Broadcast()
			panic("machine: " + w.failMsg)
		}
		w.cond.Wait()
		w.blocked--
	}
}

// deadlockedLocked reports (with w.mu held) whether the simulation can make
// no further progress: every rank is blocked (in Recv or in Barrier) or has
// already returned, with no messages in flight and at least one rank
// waiting for a message. (If every unfinished rank were in the Barrier it
// would release normally; a Barrier waiter with some ranks finished can
// never be released and is also caught here once a Recv waiter exists —
// all-Barrier-plus-done configurations abort via the barrier path's own
// generation check never firing, which this predicate does not cover, so
// algorithms must not mix Barrier with early rank exit.)
func (w *World) deadlockedLocked() bool {
	return w.blocked > 0 && w.blocked+w.barArrived+w.done == w.p && w.inflight == 0
}

// Stats aggregates the per-rank statistics after Run has completed.
func (w *World) Stats() WorldStats {
	ws := WorldStats{Ranks: make([]RankStats, w.p)}
	for i := range w.ranks {
		r := &w.ranks[i]
		ws.Ranks[i] = r.stats
		ws.Ranks[i].FinalClock = r.clock
		if r.clock > ws.CriticalPath {
			ws.CriticalPath = r.clock
		}
		ws.TotalWordsSent += r.stats.WordsSent
		ws.TotalMessages += r.stats.MsgsSent
		if r.stats.WordsRecv > ws.MaxWordsRecv {
			ws.MaxWordsRecv = r.stats.WordsRecv
		}
		if r.stats.WordsSent > ws.MaxWordsSent {
			ws.MaxWordsSent = r.stats.WordsSent
		}
		if r.stats.PeakMemory > ws.MaxPeakMemory {
			ws.MaxPeakMemory = r.stats.PeakMemory
		}
	}
	return ws
}
