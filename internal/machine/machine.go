// Package machine implements the distributed-memory parallel machine model
// of the paper's §3.1 (the α-β-γ model) as a deterministic simulator.
//
// A World holds P ranks (processors), each with its own local memory and a
// simulated clock. Ranks execute the same SPMD body. Point-to-point
// messages over the fully connected network cost α + β·w for a message of
// w words, charged to the sender (link occupancy) and realized at the
// receiver no earlier than the send completes; local computation costs γ
// per flop. Because each pair of processors has a dedicated bidirectional
// link, there is no contention: simultaneous messages between different
// pairs overlap freely, which the per-rank clocks model naturally.
//
// The communication cost of an algorithm is counted along its critical
// path — the maximum final clock over ranks — exactly the quantity the
// paper's lower bounds constrain. The simulator additionally tracks, per
// rank, words sent and received (total and per named phase), message
// counts, flops, and a peak-memory watermark, so experiments can compare
// measured volumes against Theorem 3 word-for-word.
//
// The simulator is deterministic: matching is FIFO per (source,
// destination, tag), clocks are pure functions of the communication
// pattern, and no wall-clock time leaks into results. Every observable
// statistic is therefore independent of how rank execution is scheduled,
// which is what lets the two execution engines below produce bit-identical
// WorldStats.
//
// # Execution engines
//
// Two engines run the SPMD bodies (select with WithEngine):
//
//   - EngineGoroutine (the default and reference): one goroutine per rank,
//     per-receiver sharded mailboxes with targeted wakeups, and packed-
//     atomic idle accounting with exact two-phase deadlock detection. See
//     goroutine_engine.go. Scale is bounded by MaxRanks (the packed
//     accounting) and, in practice, by Go scheduler pressure well below it.
//
//   - EngineEvent: ranks run as cooperatively scheduled tasks multiplexed
//     onto a small worker pool, suspending at the blocking points (Recv,
//     Barrier) and resuming when the event that unblocks them (a matching
//     message, a barrier release) is delivered. The Go scheduler never
//     sees more than a handful of runnable goroutines, there are no
//     per-rank condition variables or broadcast storms, and deadlock
//     detection is an exact, nearly free check when the worker pool goes
//     idle. This is the engine for cluster-scale worlds (P ≥ 10^6 for
//     communication counting). See event_engine.go.
//
// The SPMD body API (Rank) is identical on both engines, and WorldStats
// are bit-identical across them — pinned by the golden-stats test in
// internal/algs over the full algorithm registry.
package machine

import (
	"fmt"

	"repro/internal/obs"
)

// Config sets the machine cost parameters of the α-β-γ model.
type Config struct {
	// Alpha is the per-message latency cost.
	Alpha float64
	// Beta is the per-word bandwidth cost.
	Beta float64
	// Gamma is the per-flop computation cost.
	Gamma float64
}

// BandwidthOnly returns a Config that charges 1 per word and nothing for
// latency or computation, so a rank's final clock reads directly in words —
// convenient when comparing against bandwidth lower bounds.
func BandwidthOnly() Config { return Config{Alpha: 0, Beta: 1, Gamma: 0} }

// Network prices messages per (source, destination) pair, replacing the
// uniform α/β of Config for worlds simulating a non-flat interconnect (see
// internal/topo). Charge must be deterministic, allocation-free, and safe
// for concurrent calls: every rank consults it on every send, and the
// simulator's results must not depend on execution scheduling. The cost
// of one message of w words from src to dst is alpha + beta·w, charged to
// the sender exactly like the uniform model.
type Network interface {
	Charge(src, dst int) (alpha, beta float64)
}

// message is one in-flight point-to-point message. Structs are pooled in
// the global arena and queues link them intrusively through next, so the
// steady-state send path allocates nothing.
type message struct {
	src, dst int
	tag      int
	data     []float64
	// sendClock is the sender's simulated time when the send was posted;
	// the message is available at the receiver at sendClock + α + β·w.
	sendClock float64
	next      *message
}

// msgQueue is a FIFO of in-flight messages from one source, linked
// intrusively so enqueue/dequeue never allocate.
type msgQueue struct {
	head, tail *message
}

// msgStore holds one receiver's undelivered messages, keyed by source, with
// the in-flight count the deadlock verifiers report. It carries no lock of
// its own: the goroutine engine guards each store with its mailbox mutex,
// the event engine with the receiver's shard mutex.
type msgStore struct {
	// queues holds the undelivered messages per source rank, created
	// lazily so worlds whose pairs never communicate pay nothing.
	queues map[int]*msgQueue
	// inflight counts undelivered messages queued here; the deadlock
	// verifiers sum it across receivers for diagnostics.
	inflight int
}

// enqueue appends m to the queue for its source.
func (s *msgStore) enqueue(m *message) {
	q := s.queues[m.src]
	if q == nil {
		if s.queues == nil {
			s.queues = make(map[int]*msgQueue, 4)
		}
		q = &msgQueue{}
		s.queues[m.src] = q
	}
	if q.tail == nil {
		q.head, q.tail = m, m
	} else {
		q.tail.next = m
		q.tail = m
	}
	s.inflight++
}

// take removes and returns the oldest message from src with the given tag,
// or nil. Skipping non-matching tags preserves FIFO order among same-tag
// messages, the simulator's matching guarantee.
func (s *msgStore) take(src, tag int) *message {
	q := s.queues[src]
	if q == nil {
		return nil
	}
	var prev *message
	for m := q.head; m != nil; prev, m = m, m.next {
		if m.tag != tag {
			continue
		}
		if prev == nil {
			q.head = m.next
		} else {
			prev.next = m.next
		}
		if q.tail == m {
			q.tail = prev
		}
		m.next = nil
		s.inflight--
		return m
	}
	return nil
}

// peek reports whether a message from src with the given tag is queued.
func (s *msgStore) peek(src, tag int) bool {
	q := s.queues[src]
	if q == nil {
		return false
	}
	for m := q.head; m != nil; m = m.next {
		if m.tag == tag {
			return true
		}
	}
	return false
}

// engineCore is the scheduling backend of a World: it executes the SPMD
// bodies and implements the blocking points. Rank's bookkeeping (clocks,
// stats, tracing) is engine-independent and lives in rank.go; everything
// behind these four calls is engine-private.
type engineCore interface {
	// run executes body on every rank and blocks until all return; it
	// reports the first (lowest-rank) panic, including detected deadlocks.
	run(body func(*Rank)) error
	// send delivers m eagerly (never blocks the caller).
	send(m *message)
	// recv blocks rank dst until a message from src with tag is available.
	recv(dst, src, tag int) *message
	// barrier parks r until all P ranks arrive, aligning clocks to the max.
	barrier(r *Rank)
}

// World is a simulated machine of P ranks.
type World struct {
	p      int
	cfg    Config
	engine Engine

	// eng is the scheduling backend selected by WithEngine.
	eng engineCore

	trace   *Trace
	traffic *TrafficMatrix

	// net, when non-nil, prices each send per (src, dst) pair instead of
	// the uniform cfg.Alpha/cfg.Beta. Nil worlds keep the original scalar
	// arithmetic — the topology-disabled hot path is untouched.
	net Network

	ranks []Rank
}

// New creates a machine with p ranks, the given cost model, and any engine
// options, reporting invalid configurations as typed errors: a non-positive
// p wraps core.ErrBadProcessorCount, and a p beyond the selected engine's
// capacity (MaxRanks for the goroutine engine) wraps core.ErrTooManyRanks.
func New(p int, cfg Config, opts ...Option) (*World, error) {
	w := &World{p: p, cfg: cfg}
	var wopts worldOptions
	for _, o := range opts {
		o(&wopts)
	}
	w.engine = wopts.engine
	if err := w.engine.validate(); err != nil {
		return nil, err
	}
	if err := checkRankCount(p, w.engine); err != nil {
		return nil, err
	}
	// Ranks are allocated in one block; per-phase stat maps are created
	// lazily on first use (see Rank.addPhase).
	w.ranks = make([]Rank, p)
	for i := range w.ranks {
		w.ranks[i] = Rank{id: i, world: w}
	}
	switch w.engine {
	case EngineEvent:
		w.eng = newEventEngine(w, wopts.workers)
	default:
		w.eng = newGoroutineEngine(w)
	}
	if obs.Enabled() {
		mWorlds.Inc()
	}
	return w, nil
}

// NewWorld creates a machine with p ranks and the given cost model on the
// default (goroutine) engine, panicking on invalid sizes. Prefer New in
// paths that must report capacity limits as errors instead of crashing.
func NewWorld(p int, cfg Config) *World {
	w, err := New(p, cfg)
	if err != nil {
		panic(fmt.Sprintf("machine: world size %d (supported: 1..%d)", p, MaxRanks))
	}
	return w
}

// SetNetwork installs a per-pair message-pricing oracle; call before Run.
// A nil network restores the uniform Config pricing.
func (w *World) SetNetwork(n Network) { w.net = n }

// P returns the number of ranks.
func (w *World) P() int { return w.p }

// Config returns the cost model.
func (w *World) Config() Config { return w.cfg }

// Engine returns the execution engine the world runs on.
func (w *World) Engine() Engine { return w.engine }

// Run executes body on every rank concurrently and blocks until all ranks
// return. It returns an error if any rank panicked (including simulator-
// detected deadlocks). A World can be Run only once; create a fresh World
// per experiment.
func (w *World) Run(body func(*Rank)) error { return w.eng.run(body) }

// Stats aggregates the per-rank statistics after Run has completed.
func (w *World) Stats() WorldStats {
	ws := WorldStats{Ranks: make([]RankStats, w.p)}
	for i := range w.ranks {
		r := &w.ranks[i]
		ws.Ranks[i] = r.stats
		ws.Ranks[i].FinalClock = r.clock
		if r.clock > ws.CriticalPath {
			ws.CriticalPath = r.clock
		}
		ws.TotalWordsSent += r.stats.WordsSent
		ws.TotalMessages += r.stats.MsgsSent
		if r.stats.WordsRecv > ws.MaxWordsRecv {
			ws.MaxWordsRecv = r.stats.WordsRecv
		}
		if r.stats.WordsSent > ws.MaxWordsSent {
			ws.MaxWordsSent = r.stats.WordsSent
		}
		if r.stats.PeakMemory > ws.MaxPeakMemory {
			ws.MaxPeakMemory = r.stats.PeakMemory
		}
	}
	return ws
}

// deadlockMessage renders the verdict of a deadlock verification. Both
// engines use it, so a given stuck communication pattern aborts with the
// same diagnostic regardless of the engine. The empty string means the
// state is not a deadlock (all ranks parked in a barrier with no finished
// rank resolves via the barrier's own release).
func deadlockMessage(recvBlocked, barParked, done, inflight int) string {
	switch {
	case recvBlocked == 0 && barParked > 0 && done > 0:
		return fmt.Sprintf("deadlock: %d ranks in Barrier can never be released (%d ranks already finished)", barParked, done)
	case recvBlocked == 0:
		return ""
	case barParked > 0 || done > 0:
		return fmt.Sprintf("deadlock: %d ranks blocked in Recv, %d in Barrier, %d finished, with %d undeliverable messages in flight", recvBlocked, barParked, done, inflight)
	default:
		return fmt.Sprintf("deadlock: all %d ranks blocked in Recv with %d undeliverable messages in flight", recvBlocked, inflight)
	}
}
