// Package machine implements the distributed-memory parallel machine model
// of the paper's §3.1 (the α-β-γ model) as a deterministic simulator.
//
// A World holds P ranks (processors), each with its own local memory and a
// simulated clock. Ranks run as goroutines executing the same SPMD body.
// Point-to-point messages over the fully connected network cost
// α + β·w for a message of w words, charged to the sender (link occupancy)
// and realized at the receiver no earlier than the send completes; local
// computation costs γ per flop. Because each pair of processors has a
// dedicated bidirectional link, there is no contention: simultaneous
// messages between different pairs overlap freely, which the per-rank
// clocks model naturally.
//
// The communication cost of an algorithm is counted along its critical
// path — the maximum final clock over ranks — exactly the quantity the
// paper's lower bounds constrain. The simulator additionally tracks, per
// rank, words sent and received (total and per named phase), message
// counts, flops, and a peak-memory watermark, so experiments can compare
// measured volumes against Theorem 3 word-for-word.
//
// The simulator is deterministic: matching is FIFO per (source,
// destination, tag), clocks are pure functions of the communication
// pattern, and no wall-clock time leaks into results.
//
// # Execution engine
//
// The engine is built to scale to thousands of ranks. Message state is
// sharded into one mailbox per receiver, each with its own lock and
// condition variable, so a send touches only the destination's mailbox and
// wakes at most the one rank that can consume the message — and only when
// that rank is parked waiting for exactly the message's (source, tag).
// Global progress accounting (ranks blocked in Recv, parked in Barrier, or
// finished) lives in a single packed atomic word, mutated only while
// holding the transitioning rank's mailbox (or the barrier) lock. Deadlock
// detection is two-phase: a rank about to park performs one atomic add and
// compares the packed sum against P (phase 1, O(1), almost always
// negative); only on a hit does it freeze the world — detector mutex, then
// every mailbox lock, then the barrier lock — and verify exactly (phase 2),
// checking for pending wakeups (a parked receiver with a matching queued
// message, or barrier waiters whose generation has already been released)
// before declaring the simulation stuck. Phase 2 is exact: it can neither
// fire on a live simulation nor miss a genuine deadlock, because the last
// rank to park or finish always runs the check after its own transition.
package machine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Config sets the machine cost parameters of the α-β-γ model.
type Config struct {
	// Alpha is the per-message latency cost.
	Alpha float64
	// Beta is the per-word bandwidth cost.
	Beta float64
	// Gamma is the per-flop computation cost.
	Gamma float64
}

// BandwidthOnly returns a Config that charges 1 per word and nothing for
// latency or computation, so a rank's final clock reads directly in words —
// convenient when comparing against bandwidth lower bounds.
func BandwidthOnly() Config { return Config{Alpha: 0, Beta: 1, Gamma: 0} }

// Network prices messages per (source, destination) pair, replacing the
// uniform α/β of Config for worlds simulating a non-flat interconnect (see
// internal/topo). Charge must be deterministic, allocation-free, and safe
// for concurrent calls: every rank goroutine consults it on every send, and
// the simulator's results must not depend on goroutine scheduling. The cost
// of one message of w words from src to dst is alpha + beta·w, charged to
// the sender exactly like the uniform model.
type Network interface {
	Charge(src, dst int) (alpha, beta float64)
}

// message is one in-flight point-to-point message. Structs are pooled in
// the global arena and queues link them intrusively through next, so the
// steady-state send path allocates nothing.
type message struct {
	src, dst int
	tag      int
	data     []float64
	// sendClock is the sender's simulated time when the send was posted;
	// the message is available at the receiver at sendClock + α + β·w.
	sendClock float64
	next      *message
}

// msgQueue is a FIFO of in-flight messages from one source, linked
// intrusively so enqueue/dequeue never allocate.
type msgQueue struct {
	head, tail *message
}

// mailbox is one receiver's share of the network state: the queues of
// messages addressed to it (keyed by source), its own lock and condition
// variable, and the description of the Recv it is currently parked in, if
// any. Only the owning rank ever waits on cond, so a Signal wakes exactly
// the rank that can make progress. The trailing padding keeps neighboring
// mailboxes off one cache line.
type mailbox struct {
	mu   sync.Mutex
	cond sync.Cond
	// queues holds the undelivered messages per source rank, created
	// lazily so worlds whose pairs never communicate pay nothing.
	queues map[int]*msgQueue
	// inflight counts undelivered messages queued here (under mu); the
	// deadlock verifier sums it across mailboxes for diagnostics.
	inflight int
	// waiting/wantSrc/wantTag describe the owner's parked Recv: senders
	// use them to decide whether to Signal, and the deadlock verifier uses
	// them to recognize a pending wakeup (a queued matching message).
	waiting bool
	wantSrc int
	wantTag int

	_ [40]byte // padding against false sharing between adjacent ranks
}

// enqueue appends m to the queue for its source (under mb.mu).
func (mb *mailbox) enqueue(m *message) {
	q := mb.queues[m.src]
	if q == nil {
		if mb.queues == nil {
			mb.queues = make(map[int]*msgQueue, 4)
		}
		q = &msgQueue{}
		mb.queues[m.src] = q
	}
	if q.tail == nil {
		q.head, q.tail = m, m
	} else {
		q.tail.next = m
		q.tail = m
	}
	mb.inflight++
}

// take removes and returns the oldest message from src with the given tag,
// or nil (under mb.mu). Skipping non-matching tags preserves FIFO order
// among same-tag messages, the simulator's matching guarantee.
func (mb *mailbox) take(src, tag int) *message {
	q := mb.queues[src]
	if q == nil {
		return nil
	}
	var prev *message
	for m := q.head; m != nil; prev, m = m, m.next {
		if m.tag != tag {
			continue
		}
		if prev == nil {
			q.head = m.next
		} else {
			prev.next = m.next
		}
		if q.tail == m {
			q.tail = prev
		}
		m.next = nil
		mb.inflight--
		return m
	}
	return nil
}

// peek reports whether a message from src with the given tag is queued
// (under mb.mu).
func (mb *mailbox) peek(src, tag int) bool {
	q := mb.queues[src]
	if q == nil {
		return false
	}
	for m := q.head; m != nil; m = m.next {
		if m.tag == tag {
			return true
		}
	}
	return false
}

// Scheduler state is one packed atomic word holding three counters — ranks
// blocked in Recv, ranks parked in Barrier, ranks finished — so a single
// load (or the value returned by a single Add) yields a consistent
// snapshot. Each counter gets stateBits bits, bounding P at 2^21-1 ranks.
const (
	stateBits = 21
	stateMask = 1<<stateBits - 1
	recvUnit  = uint64(1)
	barUnit   = uint64(1) << stateBits
	doneUnit  = uint64(1) << (2 * stateBits)
	// MaxRanks is the largest world the packed scheduler state supports.
	MaxRanks = stateMask
)

// unpackState splits the packed scheduler word.
func unpackState(s uint64) (recvBlocked, barParked, done int) {
	return int(s & stateMask), int((s >> stateBits) & stateMask), int(s >> (2 * stateBits) & stateMask)
}

// stateSum returns the total number of ranks accounted idle (blocked,
// parked, or finished) in the packed word.
func stateSum(s uint64) int {
	r, b, d := unpackState(s)
	return r + b + d
}

// neg returns the two's-complement delta that subtracts unit from the
// packed word via atomic Add.
func neg(unit uint64) uint64 { return ^unit + 1 }

// World is a simulated machine of P ranks.
type World struct {
	p   int
	cfg Config

	// boxes[i] is rank i's mailbox; all message state is sharded here.
	boxes []mailbox

	// state is the packed (recvBlocked, barParked, done) word. Mutations
	// happen only while holding the transitioning rank's mailbox lock (or
	// the barrier lock), which is what lets the deadlock verifier freeze
	// the counters by holding every lock.
	state atomic.Uint64

	// failed flips once, after failMsg is set; parked ranks observe it and
	// abort. detMu serializes deadlock verification and failure injection.
	failed  atomic.Bool
	failMsg string
	detMu   sync.Mutex

	// bar is the generation-counted reusable barrier. departing counts
	// waiters of a released generation that have not yet left — evidence
	// of pending wakeups for the deadlock verifier.
	bar struct {
		mu        sync.Mutex
		cond      sync.Cond
		arrived   int
		departing int
		gen       int
		clock     float64
		release   float64
	}

	trace   *Trace
	traffic *TrafficMatrix

	// net, when non-nil, prices each send per (src, dst) pair instead of
	// the uniform cfg.Alpha/cfg.Beta. Nil worlds keep the original scalar
	// arithmetic — the topology-disabled hot path is untouched.
	net Network

	ranks []Rank
}

// NewWorld creates a machine with p ranks and the given cost model.
func NewWorld(p int, cfg Config) *World {
	if p <= 0 || p > MaxRanks {
		panic(fmt.Sprintf("machine: world size %d (supported: 1..%d)", p, MaxRanks))
	}
	w := &World{
		p:     p,
		cfg:   cfg,
		boxes: make([]mailbox, p),
	}
	for i := range w.boxes {
		w.boxes[i].cond.L = &w.boxes[i].mu
	}
	w.bar.cond.L = &w.bar.mu
	// Ranks are allocated in one block; per-phase stat maps are created
	// lazily on first use (see Rank.addPhase).
	w.ranks = make([]Rank, p)
	for i := range w.ranks {
		w.ranks[i] = Rank{id: i, world: w}
	}
	if obs.Enabled() {
		mWorlds.Inc()
	}
	return w
}

// SetNetwork installs a per-pair message-pricing oracle; call before Run.
// A nil network restores the uniform Config pricing.
func (w *World) SetNetwork(n Network) { w.net = n }

// P returns the number of ranks.
func (w *World) P() int { return w.p }

// Config returns the cost model.
func (w *World) Config() Config { return w.cfg }

// Run executes body on every rank concurrently and blocks until all ranks
// return. It returns an error if any rank panicked (including simulator-
// detected deadlocks). A World can be Run only once; create a fresh World
// per experiment.
func (w *World) Run(body func(*Rank)) (err error) {
	var wg sync.WaitGroup
	errs := make([]error, w.p)
	for i := 0; i < w.p; i++ {
		wg.Add(1)
		go func(r *Rank) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					errs[r.id] = fmt.Errorf("rank %d: %v", r.id, rec)
					w.fail(fmt.Sprintf("rank %d panicked: %v", r.id, rec))
					return
				}
				// Close any phase span left open by the body, then fold
				// completion into the deadlock check: a rank that returns
				// while peers still wait for its messages leaves them stuck.
				r.endPhase()
				w.finishRank(r.id)
			}()
			body(r)
		}(&w.ranks[i])
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// finishRank records a rank's normal completion and runs the deadlock
// check: completion is a transition into the idle set, so it can be the
// step that strands the remaining ranks.
func (w *World) finishRank(id int) {
	mb := &w.boxes[id]
	mb.mu.Lock()
	s := w.state.Add(doneUnit)
	mb.mu.Unlock()
	if stateSum(s) == w.p {
		w.verifyStalled()
	}
}

// fail marks the world failed and wakes all parked ranks so they can abort
// instead of waiting forever for messages that will never arrive. Taking
// each mailbox lock before broadcasting orders the wakeup after any
// receiver's park-or-proceed decision, so no rank sleeps through it.
func (w *World) fail(msg string) {
	w.detMu.Lock()
	if !w.failed.Load() {
		w.failMsg = msg
		w.failed.Store(true)
	}
	w.detMu.Unlock()
	w.wakeAll()
}

// wakeAll broadcasts on every mailbox and the barrier so parked ranks
// re-check the failure flag.
func (w *World) wakeAll() {
	for i := range w.boxes {
		mb := &w.boxes[i]
		mb.mu.Lock()
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
	w.bar.mu.Lock()
	w.bar.cond.Broadcast()
	w.bar.mu.Unlock()
}

// abort panics with the recorded failure message.
func (w *World) abort() {
	panic("machine: aborted: " + w.failMsg)
}

// send enqueues a message (eager, non-blocking delivery), signalling the
// receiver only if it is parked waiting for exactly this (src, tag). The
// sender uncounts the matched receiver on its behalf, under the mailbox
// lock, so a rank with a delivered-but-unconsumed wakeup is classified as
// running, not blocked: the phase-1 stall check (sum == P) then only fires
// when no rank has a pending wakeup, instead of on every transient
// everyone-parked scheduling state.
func (w *World) send(m *message) {
	mb := &w.boxes[m.dst]
	mb.mu.Lock()
	mb.enqueue(m)
	wake := mb.waiting && mb.wantSrc == m.src && mb.wantTag == m.tag
	if wake {
		mb.waiting = false
		w.state.Add(neg(recvUnit))
	}
	mb.mu.Unlock()
	if wake {
		mb.cond.Signal()
	}
}

// recv blocks until a message from src to dst with the given tag is
// available and returns it, preserving FIFO order among same-tag messages.
func (w *World) recv(dst, src, tag int) *message {
	mb := &w.boxes[dst]
	mb.mu.Lock()
	if w.failed.Load() {
		mb.mu.Unlock()
		w.abort()
	}
	if m := mb.take(src, tag); m != nil {
		mb.mu.Unlock()
		return m
	}
	// Park: advertise what we wait for, count ourselves blocked, and run
	// the phase-1 deadlock check on the packed sum returned by our own
	// increment — parking may be the transition that strands the world,
	// and the last rank to go idle always observes sum == P and verifies.
	// The matching sender uncounts us and clears waiting when it delivers,
	// so we stay counted — and verify at most once — exactly as long as we
	// are genuinely blocked.
	mb.waiting, mb.wantSrc, mb.wantTag = true, src, tag
	if s := w.state.Add(recvUnit); stateSum(s) == w.p {
		// Possible global stall. Verification takes every mailbox lock,
		// so drop ours first; we stay counted and marked waiting — the
		// verifier treats us exactly like a parked rank — then re-scan,
		// since a message may have landed during verification.
		mb.mu.Unlock()
		w.verifyStalled()
		mb.mu.Lock()
	}
	for {
		if w.failed.Load() {
			if mb.waiting {
				mb.waiting = false
				w.state.Add(neg(recvUnit))
			}
			mb.mu.Unlock()
			w.abort()
		}
		if !mb.waiting {
			// A sender matched our advertised (src, tag): it uncounted us
			// and left the message at the head of its FIFO queue.
			m := mb.take(src, tag)
			if m == nil {
				panic("machine: woken without a matching message")
			}
			mb.mu.Unlock()
			return m
		}
		mb.cond.Wait()
	}
}

// verifyStalled is phase 2 of deadlock detection: freeze all scheduler
// state by holding the detector mutex, every mailbox lock, and the barrier
// lock, then decide exactly whether the simulation can ever make progress.
// With the locks held no rank can park, unpark, finish, send, or consume,
// so the packed counters and queue contents form a consistent snapshot. A
// rank counted idle but due to wake leaves evidence the verifier checks: a
// parked receiver with a matching queued message (its sender signalled it),
// or barrier waiters whose generation was already released (departing > 0).
func (w *World) verifyStalled() {
	w.detMu.Lock()
	defer w.detMu.Unlock()
	if w.failed.Load() {
		return
	}
	for i := range w.boxes {
		w.boxes[i].mu.Lock()
	}
	w.bar.mu.Lock()
	defer func() {
		w.bar.mu.Unlock()
		for i := range w.boxes {
			w.boxes[i].mu.Unlock()
		}
	}()

	recvBlocked, barParked, done := unpackState(w.state.Load())
	if recvBlocked+barParked+done != w.p {
		return // raced with a wakeup: somebody is running again
	}
	if done == w.p || w.bar.departing > 0 {
		return // normal termination, or barrier waiters on their way out
	}
	inflight := 0
	for i := range w.boxes {
		mb := &w.boxes[i]
		inflight += mb.inflight
		if mb.waiting && mb.peek(mb.wantSrc, mb.wantTag) {
			return // pending wakeup: a matching message is queued
		}
	}

	// Verified: every rank is blocked, parked, or finished, no blocked
	// Recv can be satisfied, and (with finished ranks) no Barrier can
	// complete. Nothing will ever run again — abort the world.
	var msg string
	switch {
	case recvBlocked == 0 && barParked > 0 && done > 0:
		msg = fmt.Sprintf("deadlock: %d ranks in Barrier can never be released (%d ranks already finished)", barParked, done)
	case recvBlocked == 0:
		return // all-Barrier with no finisher resolves via the barrier itself
	case barParked > 0 || done > 0:
		msg = fmt.Sprintf("deadlock: %d ranks blocked in Recv, %d in Barrier, %d finished, with %d undeliverable messages in flight", recvBlocked, barParked, done, inflight)
	default:
		msg = fmt.Sprintf("deadlock: all %d ranks blocked in Recv with %d undeliverable messages in flight", recvBlocked, inflight)
	}
	if obs.Enabled() {
		mDeadlocks.Inc()
	}
	w.failMsg = msg
	w.failed.Store(true)
	for i := range w.boxes {
		w.boxes[i].cond.Broadcast()
	}
	w.bar.cond.Broadcast()
}

// Stats aggregates the per-rank statistics after Run has completed.
func (w *World) Stats() WorldStats {
	ws := WorldStats{Ranks: make([]RankStats, w.p)}
	for i := range w.ranks {
		r := &w.ranks[i]
		ws.Ranks[i] = r.stats
		ws.Ranks[i].FinalClock = r.clock
		if r.clock > ws.CriticalPath {
			ws.CriticalPath = r.clock
		}
		ws.TotalWordsSent += r.stats.WordsSent
		ws.TotalMessages += r.stats.MsgsSent
		if r.stats.WordsRecv > ws.MaxWordsRecv {
			ws.MaxWordsRecv = r.stats.WordsRecv
		}
		if r.stats.WordsSent > ws.MaxWordsSent {
			ws.MaxWordsSent = r.stats.WordsSent
		}
		if r.stats.PeakMemory > ws.MaxPeakMemory {
			ws.MaxPeakMemory = r.stats.PeakMemory
		}
	}
	return ws
}
