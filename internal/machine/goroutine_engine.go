package machine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// goroutineEngine is the reference scheduling backend: one goroutine per
// rank, blocking on condition variables at Recv and Barrier.
//
// It is built to scale to thousands of ranks. Message state is sharded
// into one mailbox per receiver, each with its own lock and condition
// variable, so a send touches only the destination's mailbox and wakes at
// most the one rank that can consume the message — and only when that rank
// is parked waiting for exactly the message's (source, tag). Global
// progress accounting (ranks blocked in Recv, parked in Barrier, or
// finished) lives in a single packed atomic word, mutated only while
// holding the transitioning rank's mailbox (or the barrier) lock. Deadlock
// detection is two-phase: a rank about to park performs one atomic add and
// compares the packed sum against P (phase 1, O(1), almost always
// negative); only on a hit does it freeze the world — detector mutex, then
// every mailbox lock, then the barrier lock — and verify exactly (phase 2),
// checking for pending wakeups (a parked receiver with a matching queued
// message, or barrier waiters whose generation has already been released)
// before declaring the simulation stuck. Phase 2 is exact: it can neither
// fire on a live simulation nor miss a genuine deadlock, because the last
// rank to park or finish always runs the check after its own transition.
type goroutineEngine struct {
	w *World

	// boxes[i] is rank i's mailbox; all message state is sharded here.
	boxes []mailbox

	// state is the packed (recvBlocked, barParked, done) word. Mutations
	// happen only while holding the transitioning rank's mailbox lock (or
	// the barrier lock), which is what lets the deadlock verifier freeze
	// the counters by holding every lock.
	state atomic.Uint64

	// failed flips once, after failMsg is set; parked ranks observe it and
	// abort. detMu serializes deadlock verification and failure injection.
	failed  atomic.Bool
	failMsg string
	detMu   sync.Mutex

	// bar is the generation-counted reusable barrier. departing counts
	// waiters of a released generation that have not yet left — evidence
	// of pending wakeups for the deadlock verifier.
	bar struct {
		mu        sync.Mutex
		cond      sync.Cond
		arrived   int
		departing int
		gen       int
		clock     float64
		release   float64
	}
}

// mailbox is one receiver's share of the network state: its message store,
// its own lock and condition variable, and the description of the Recv it
// is currently parked in, if any. Only the owning rank ever waits on cond,
// so a Signal wakes exactly the rank that can make progress. The trailing
// padding keeps neighboring mailboxes off one cache line.
type mailbox struct {
	mu   sync.Mutex
	cond sync.Cond
	msgStore
	// waiting/wantSrc/wantTag describe the owner's parked Recv: senders
	// use them to decide whether to Signal, and the deadlock verifier uses
	// them to recognize a pending wakeup (a queued matching message).
	waiting bool
	wantSrc int
	wantTag int

	_ [40]byte // padding against false sharing between adjacent ranks
}

// Scheduler state is one packed atomic word holding three counters — ranks
// blocked in Recv, ranks parked in Barrier, ranks finished — so a single
// load (or the value returned by a single Add) yields a consistent
// snapshot. Each counter gets stateBits bits, bounding P at 2^21-1 ranks.
const (
	stateBits = 21
	stateMask = 1<<stateBits - 1
	recvUnit  = uint64(1)
	barUnit   = uint64(1) << stateBits
	doneUnit  = uint64(1) << (2 * stateBits)
	// MaxRanks is the largest world the goroutine engine's packed
	// scheduler state supports. The event engine (EngineEvent) has no such
	// bound; see MaxEventRanks.
	MaxRanks = stateMask
)

// unpackState splits the packed scheduler word.
func unpackState(s uint64) (recvBlocked, barParked, done int) {
	return int(s & stateMask), int((s >> stateBits) & stateMask), int(s >> (2 * stateBits) & stateMask)
}

// stateSum returns the total number of ranks accounted idle (blocked,
// parked, or finished) in the packed word.
func stateSum(s uint64) int {
	r, b, d := unpackState(s)
	return r + b + d
}

// neg returns the two's-complement delta that subtracts unit from the
// packed word via atomic Add.
func neg(unit uint64) uint64 { return ^unit + 1 }

// newGoroutineEngine builds the backend for w.
func newGoroutineEngine(w *World) *goroutineEngine {
	e := &goroutineEngine{w: w, boxes: make([]mailbox, w.p)}
	for i := range e.boxes {
		e.boxes[i].cond.L = &e.boxes[i].mu
	}
	e.bar.cond.L = &e.bar.mu
	return e
}

// run executes body on every rank, one goroutine each, and blocks until
// all return.
func (e *goroutineEngine) run(body func(*Rank)) error {
	var wg sync.WaitGroup
	errs := make([]error, e.w.p)
	for i := 0; i < e.w.p; i++ {
		wg.Add(1)
		go func(r *Rank) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					errs[r.id] = fmt.Errorf("rank %d: %v", r.id, rec)
					e.fail(fmt.Sprintf("rank %d panicked: %v", r.id, rec))
					return
				}
				// Close any phase span left open by the body, then fold
				// completion into the deadlock check: a rank that returns
				// while peers still wait for its messages leaves them stuck.
				r.endPhase()
				e.finishRank(r.id)
			}()
			body(r)
		}(&e.w.ranks[i])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// finishRank records a rank's normal completion and runs the deadlock
// check: completion is a transition into the idle set, so it can be the
// step that strands the remaining ranks.
func (e *goroutineEngine) finishRank(id int) {
	mb := &e.boxes[id]
	mb.mu.Lock()
	s := e.state.Add(doneUnit)
	mb.mu.Unlock()
	if stateSum(s) == e.w.p {
		e.verifyStalled()
	}
}

// fail marks the world failed and wakes all parked ranks so they can abort
// instead of waiting forever for messages that will never arrive. Taking
// each mailbox lock before broadcasting orders the wakeup after any
// receiver's park-or-proceed decision, so no rank sleeps through it.
func (e *goroutineEngine) fail(msg string) {
	e.detMu.Lock()
	if !e.failed.Load() {
		e.failMsg = msg
		e.failed.Store(true)
	}
	e.detMu.Unlock()
	e.wakeAll()
}

// wakeAll broadcasts on every mailbox and the barrier so parked ranks
// re-check the failure flag.
func (e *goroutineEngine) wakeAll() {
	for i := range e.boxes {
		mb := &e.boxes[i]
		mb.mu.Lock()
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
	e.bar.mu.Lock()
	e.bar.cond.Broadcast()
	e.bar.mu.Unlock()
}

// abort panics with the recorded failure message.
func (e *goroutineEngine) abort() {
	panic("machine: aborted: " + e.failMsg)
}

// send enqueues a message (eager, non-blocking delivery), signalling the
// receiver only if it is parked waiting for exactly this (src, tag). The
// sender uncounts the matched receiver on its behalf, under the mailbox
// lock, so a rank with a delivered-but-unconsumed wakeup is classified as
// running, not blocked: the phase-1 stall check (sum == P) then only fires
// when no rank has a pending wakeup, instead of on every transient
// everyone-parked scheduling state.
func (e *goroutineEngine) send(m *message) {
	mb := &e.boxes[m.dst]
	mb.mu.Lock()
	mb.enqueue(m)
	wake := mb.waiting && mb.wantSrc == m.src && mb.wantTag == m.tag
	if wake {
		mb.waiting = false
		e.state.Add(neg(recvUnit))
	}
	mb.mu.Unlock()
	if wake {
		mb.cond.Signal()
	}
}

// recv blocks until a message from src to dst with the given tag is
// available and returns it, preserving FIFO order among same-tag messages.
func (e *goroutineEngine) recv(dst, src, tag int) *message {
	mb := &e.boxes[dst]
	mb.mu.Lock()
	if e.failed.Load() {
		mb.mu.Unlock()
		e.abort()
	}
	if m := mb.take(src, tag); m != nil {
		mb.mu.Unlock()
		return m
	}
	// Park: advertise what we wait for, count ourselves blocked, and run
	// the phase-1 deadlock check on the packed sum returned by our own
	// increment — parking may be the transition that strands the world,
	// and the last rank to go idle always observes sum == P and verifies.
	// The matching sender uncounts us and clears waiting when it delivers,
	// so we stay counted — and verify at most once — exactly as long as we
	// are genuinely blocked.
	mb.waiting, mb.wantSrc, mb.wantTag = true, src, tag
	if s := e.state.Add(recvUnit); stateSum(s) == e.w.p {
		// Possible global stall. Verification takes every mailbox lock,
		// so drop ours first; we stay counted and marked waiting — the
		// verifier treats us exactly like a parked rank — then re-scan,
		// since a message may have landed during verification.
		mb.mu.Unlock()
		e.verifyStalled()
		mb.mu.Lock()
	}
	for {
		if e.failed.Load() {
			if mb.waiting {
				mb.waiting = false
				e.state.Add(neg(recvUnit))
			}
			mb.mu.Unlock()
			e.abort()
		}
		if !mb.waiting {
			// A sender matched our advertised (src, tag): it uncounted us
			// and left the message at the head of its FIFO queue.
			m := mb.take(src, tag)
			if m == nil {
				panic("machine: woken without a matching message")
			}
			mb.mu.Unlock()
			return m
		}
		mb.cond.Wait()
	}
}

// barrier synchronizes all ranks of the world and aligns their clocks to
// the maximum.
func (e *goroutineEngine) barrier(r *Rank) {
	b := &e.bar
	b.mu.Lock()
	if e.failed.Load() {
		b.mu.Unlock()
		e.abort()
	}
	if r.clock > b.clock {
		b.clock = r.clock
	}
	if b.arrived == e.w.p-1 {
		// Last arrival releases the generation: publish the max clock,
		// uncount the waiters in one step (a released waiter has a pending
		// wakeup, so it counts as running, not parked), mark them as
		// departing, and reset for the next generation.
		b.release = b.clock
		b.clock = 0
		b.departing += b.arrived
		e.state.Add(neg(uint64(b.arrived) * barUnit))
		b.arrived = 0
		b.gen++
		r.clock = b.release
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	b.arrived++
	gen := b.gen
	// Park: count ourselves and run the phase-1 deadlock check — arriving
	// at a barrier some ranks can never reach (blocked Recv, early exit)
	// may be the transition that strands the world. The releasing rank
	// uncounts us, so we stay counted exactly while the generation is
	// still pending.
	if s := e.state.Add(barUnit); stateSum(s) == e.w.p {
		b.mu.Unlock()
		e.verifyStalled()
		b.mu.Lock()
	}
	for b.gen == gen && !e.failed.Load() {
		b.cond.Wait()
	}
	if b.gen == gen {
		// Not released: the world failed while we waited, and we are
		// still counted (only a release uncounts waiters).
		e.state.Add(neg(barUnit))
		b.mu.Unlock()
		e.abort()
	}
	b.departing--
	r.clock = b.release
	b.mu.Unlock()
}

// verifyStalled is phase 2 of deadlock detection: freeze all scheduler
// state by holding the detector mutex, every mailbox lock, and the barrier
// lock, then decide exactly whether the simulation can ever make progress.
// With the locks held no rank can park, unpark, finish, send, or consume,
// so the packed counters and queue contents form a consistent snapshot. A
// rank counted idle but due to wake leaves evidence the verifier checks: a
// parked receiver with a matching queued message (its sender signalled it),
// or barrier waiters whose generation was already released (departing > 0).
func (e *goroutineEngine) verifyStalled() {
	e.detMu.Lock()
	defer e.detMu.Unlock()
	if e.failed.Load() {
		return
	}
	for i := range e.boxes {
		e.boxes[i].mu.Lock()
	}
	e.bar.mu.Lock()
	defer func() {
		e.bar.mu.Unlock()
		for i := range e.boxes {
			e.boxes[i].mu.Unlock()
		}
	}()

	recvBlocked, barParked, done := unpackState(e.state.Load())
	if recvBlocked+barParked+done != e.w.p {
		return // raced with a wakeup: somebody is running again
	}
	if done == e.w.p || e.bar.departing > 0 {
		return // normal termination, or barrier waiters on their way out
	}
	inflight := 0
	for i := range e.boxes {
		mb := &e.boxes[i]
		inflight += mb.inflight
		if mb.waiting && mb.peek(mb.wantSrc, mb.wantTag) {
			return // pending wakeup: a matching message is queued
		}
	}

	// Verified: every rank is blocked, parked, or finished, no blocked
	// Recv can be satisfied, and (with finished ranks) no Barrier can
	// complete. Nothing will ever run again — abort the world.
	msg := deadlockMessage(recvBlocked, barParked, done, inflight)
	if msg == "" {
		return // all-Barrier with no finisher resolves via the barrier itself
	}
	if obs.Enabled() {
		mDeadlocks.Inc()
	}
	e.failMsg = msg
	e.failed.Store(true)
	for i := range e.boxes {
		e.boxes[i].cond.Broadcast()
	}
	e.bar.cond.Broadcast()
}
