package machine

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"
)

func TestNewWorldValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for P=0")
		}
	}()
	NewWorld(0, BandwidthOnly())
}

func TestPingPongTimingAndStats(t *testing.T) {
	cfg := Config{Alpha: 10, Beta: 2, Gamma: 0}
	w := NewWorld(2, cfg)
	err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 7, []float64{1, 2, 3}) // clock: 10 + 2*3 = 16
			got := r.Recv(1, 8)              // arrives at 16+10+2 = 28
			if len(got) != 1 || got[0] != 42 {
				t.Errorf("reply = %v", got)
			}
		case 1:
			msg := r.Recv(0, 7) // clock: max(0, 16) = 16
			if len(msg) != 3 || msg[2] != 3 {
				t.Errorf("msg = %v", msg)
			}
			r.Send(0, 8, []float64{42}) // clock: 16 + 10 + 2 = 28
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s := w.Stats()
	if s.CriticalPath != 28 {
		t.Errorf("critical path = %v, want 28", s.CriticalPath)
	}
	if s.Ranks[0].WordsSent != 3 || s.Ranks[0].WordsRecv != 1 {
		t.Errorf("rank 0 words = %v sent %v recv", s.Ranks[0].WordsSent, s.Ranks[0].WordsRecv)
	}
	if s.Ranks[1].MsgsRecv != 1 || s.Ranks[1].MsgsSent != 1 {
		t.Errorf("rank 1 msgs = %+v", s.Ranks[1])
	}
	if s.TotalWordsSent != 4 || s.TotalMessages != 2 {
		t.Errorf("totals = %v words %v msgs", s.TotalWordsSent, s.TotalMessages)
	}
}

func TestSendCopiesData(t *testing.T) {
	w := NewWorld(2, BandwidthOnly())
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			buf := []float64{1}
			r.Send(1, 0, buf)
			buf[0] = 999 // must not affect the in-flight message
		} else {
			if got := r.Recv(0, 0); got[0] != 1 {
				t.Errorf("received %v, want 1 (send must copy)", got[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	w := NewWorld(2, BandwidthOnly())
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 1, []float64{1})
			r.Send(1, 2, []float64{2})
		} else {
			// Receive tag 2 first even though tag 1 was sent first.
			if got := r.Recv(0, 2); got[0] != 2 {
				t.Errorf("tag 2 payload = %v", got)
			}
			if got := r.Recv(0, 1); got[0] != 1 {
				t.Errorf("tag 1 payload = %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOWithinTag(t *testing.T) {
	w := NewWorld(2, BandwidthOnly())
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			for i := 0; i < 5; i++ {
				r.Send(1, 3, []float64{float64(i)})
			}
		} else {
			for i := 0; i < 5; i++ {
				if got := r.Recv(0, 3); got[0] != float64(i) {
					t.Errorf("message %d = %v", i, got[0])
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	w := NewWorld(1, Config{Gamma: 0.5})
	err := w.Run(func(r *Rank) {
		r.Compute(10)
		if r.Clock() != 5 {
			t.Errorf("clock = %v, want 5", r.Clock())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Stats().Ranks[0].Flops != 10 {
		t.Error("flops not recorded")
	}
}

func TestBarrierAlignsClocks(t *testing.T) {
	w := NewWorld(4, Config{Gamma: 1})
	err := w.Run(func(r *Rank) {
		r.Compute(float64(r.ID()) * 10) // clocks 0, 10, 20, 30
		r.Barrier()
		if r.Clock() != 30 {
			t.Errorf("rank %d clock after barrier = %v, want 30", r.ID(), r.Clock())
		}
		// Barrier must be reusable with fresh state.
		r.Compute(5)
		r.Barrier()
		if r.Clock() != 35 {
			t.Errorf("rank %d clock after 2nd barrier = %v, want 35", r.ID(), r.Clock())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierManyIterationsStress(t *testing.T) {
	w := NewWorld(8, Config{})
	var count int64
	err := w.Run(func(r *Rank) {
		for i := 0; i < 200; i++ {
			atomic.AddInt64(&count, 1)
			r.Barrier()
			// After the barrier every rank must observe all arrivals of
			// this round.
			if c := atomic.LoadInt64(&count); c < int64((i+1)*8) {
				t.Errorf("barrier leaked: round %d count %d", i, c)
			}
			r.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetectionAllRecv(t *testing.T) {
	w := NewWorld(3, BandwidthOnly())
	err := w.Run(func(r *Rank) {
		r.Recv((r.ID()+1)%3, 0) // nobody ever sends
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock error, got %v", err)
	}
}

func TestDeadlockDetectionRecvPlusBarrier(t *testing.T) {
	w := NewWorld(2, BandwidthOnly())
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Recv(1, 0)
		} else {
			r.Barrier()
		}
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock error, got %v", err)
	}
}

// TestDeadlockDetectionBarrierWithEarlyExit is the regression test for the
// detection gap the old engine documented in deadlockedLocked: ranks parked
// in Barrier combined with a rank that returned early used to hang forever
// instead of aborting, because the all-Recv-shaped check never examined
// barrier waiters against finished ranks.
func TestDeadlockDetectionBarrierWithEarlyExit(t *testing.T) {
	w := NewWorld(4, BandwidthOnly())
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			return // exits without reaching the barrier: it can never release
		}
		r.Barrier()
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock error, got %v", err)
	}
	if !strings.Contains(err.Error(), "Barrier") {
		t.Fatalf("expected the barrier-specific diagnosis, got %v", err)
	}
}

// TestDeadlockDetectionUndeliverableInflight: a message nobody will ever
// consume (wrong tag) must not mask the stall — the receiver is blocked on
// tag 6 while tag 5 sits in its mailbox and the sender has finished.
func TestDeadlockDetectionUndeliverableInflight(t *testing.T) {
	w := NewWorld(2, BandwidthOnly())
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 5, []float64{1})
			return
		}
		r.Recv(0, 6)
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock error, got %v", err)
	}
	if !strings.Contains(err.Error(), "1 undeliverable") {
		t.Fatalf("expected the in-flight message to be reported, got %v", err)
	}
}

// TestDeadlockDetectionMixedRecvBarrierExit drives all three idle states at
// once: one rank finished, one parked in Barrier, the rest blocked in Recv.
func TestDeadlockDetectionMixedRecvBarrierExit(t *testing.T) {
	w := NewWorld(4, BandwidthOnly())
	err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			return
		case 1:
			r.Barrier()
		default:
			r.Recv(0, 9)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock error, got %v", err)
	}
}

// TestConcurrentTaggedSendsStress floods every mailbox with messages on
// many tags at once and consumes them out of send order: each rank sends
// two messages per tag to every other rank, and receivers drain each
// sender's tags in reverse, so at peak every per-(src,dst) queue holds
// messages for several tags and the scheduler's targeted wakeups must pick
// the one the receiver advertised. FIFO order within a (src, tag) pair must
// still hold.
func TestConcurrentTaggedSendsStress(t *testing.T) {
	const (
		p       = 48
		tags    = 4
		perTag  = 2
		payload = 3
	)
	w := NewWorld(p, BandwidthOnly())
	err := w.Run(func(r *Rank) {
		me := r.ID()
		buf := make([]float64, payload)
		for dst := 0; dst < p; dst++ {
			if dst == me {
				continue
			}
			for tag := 0; tag < tags; tag++ {
				for seq := 0; seq < perTag; seq++ {
					buf[0] = float64(me)
					buf[1] = float64(tag)
					buf[2] = float64(seq)
					r.Send(dst, tag, buf)
				}
			}
		}
		for src := 0; src < p; src++ {
			if src == me {
				continue
			}
			for tag := tags - 1; tag >= 0; tag-- { // reverse of send order
				for seq := 0; seq < perTag; seq++ {
					got := r.Recv(src, tag)
					if got[0] != float64(src) || got[1] != float64(tag) || got[2] != float64(seq) {
						t.Errorf("rank %d from %d tag %d: got (%v,%v,%v), want (%d,%d,%d)",
							me, src, tag, got[0], got[1], got[2], src, tag, seq)
					}
					r.PutBuffer(got)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRankPanicPropagatesAndUnblocksPeers(t *testing.T) {
	w := NewWorld(2, BandwidthOnly())
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			panic("boom")
		}
		r.Recv(0, 0) // would block forever without failure propagation
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("expected panic propagation, got %v", err)
	}
}

func TestSelfSendPanics(t *testing.T) {
	w := NewWorld(1, BandwidthOnly())
	err := w.Run(func(r *Rank) { r.Send(0, 0, []float64{1}) })
	if err == nil {
		t.Fatal("expected error for self-send")
	}
}

func TestInvalidPeerPanics(t *testing.T) {
	w := NewWorld(2, BandwidthOnly())
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(5, 0, nil)
		}
	})
	if err == nil {
		t.Fatal("expected error for out-of-range destination")
	}
}

func TestSendRecvExchangeOverlaps(t *testing.T) {
	// Both ranks exchange w words simultaneously; with bidirectional links
	// the critical path is α + β·w, not twice that.
	cfg := Config{Alpha: 1, Beta: 1}
	w := NewWorld(2, cfg)
	data := make([]float64, 9)
	err := w.Run(func(r *Rank) {
		peer := 1 - r.ID()
		r.SendRecv(peer, peer, 0, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().CriticalPath; got != 10 {
		t.Errorf("exchange critical path = %v, want 10 (α+β·w)", got)
	}
}

func TestPhaseAccounting(t *testing.T) {
	w := NewWorld(2, BandwidthOnly())
	err := w.Run(func(r *Rank) {
		peer := 1 - r.ID()
		r.SetPhase("warmup")
		r.SendRecv(peer, peer, 0, make([]float64, 4))
		r.SetPhase("main")
		r.SendRecv(peer, peer, 1, make([]float64, 6))
		r.SetPhase("")
		r.SendRecv(peer, peer, 2, make([]float64, 5))
	})
	if err != nil {
		t.Fatal(err)
	}
	s := w.Stats()
	if s.PhaseRecvTotal("warmup") != 8 || s.PhaseRecvTotal("main") != 12 {
		t.Errorf("phase totals: warmup %v main %v", s.PhaseRecvTotal("warmup"), s.PhaseRecvTotal("main"))
	}
	if s.MaxPhaseRecv("main") != 6 {
		t.Errorf("max phase recv = %v", s.MaxPhaseRecv("main"))
	}
	if s.Ranks[0].WordsRecv != 15 {
		t.Errorf("unlabelled words missing: %v", s.Ranks[0].WordsRecv)
	}
}

func TestMemoryAccounting(t *testing.T) {
	w := NewWorld(1, BandwidthOnly())
	err := w.Run(func(r *Rank) {
		r.GrowMemory(100)
		r.GrowMemory(50)
		if r.MemoryInUse() != 150 {
			t.Errorf("in use = %v", r.MemoryInUse())
		}
		r.ShrinkMemory(120)
		r.GrowMemory(10) // peak stays 150
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().MaxPeakMemory; got != 150 {
		t.Errorf("peak = %v, want 150", got)
	}
}

func TestNegativeMemoryPanics(t *testing.T) {
	w := NewWorld(1, BandwidthOnly())
	if err := w.Run(func(r *Rank) { r.ShrinkMemory(1) }); err == nil {
		t.Fatal("expected error for negative memory accounting")
	}
}

func TestDeterministicClocks(t *testing.T) {
	run := func() float64 {
		w := NewWorld(4, Config{Alpha: 3, Beta: 0.5, Gamma: 0.1})
		err := w.Run(func(r *Rank) {
			// Ring shift repeated: deterministic pattern.
			for step := 0; step < 10; step++ {
				next := (r.ID() + 1) % 4
				prev := (r.ID() + 3) % 4
				r.Send(next, step, make([]float64, 8))
				r.Recv(prev, step)
				r.Compute(100)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.Stats().CriticalPath
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("nondeterministic critical path: %v vs %v", got, first)
		}
	}
	if first <= 0 || math.IsNaN(first) {
		t.Fatalf("critical path = %v", first)
	}
}

func TestBandwidthOnlyReadsInWords(t *testing.T) {
	w := NewWorld(2, BandwidthOnly())
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, make([]float64, 77))
		} else {
			r.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().CriticalPath; got != 77 {
		t.Errorf("critical path = %v, want 77 words", got)
	}
	if got := w.Stats().CommCost(); got != 77 {
		t.Errorf("CommCost = %v", got)
	}
}
