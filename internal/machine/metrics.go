package machine

import "repro/internal/obs"

// Machine-level metrics, registered once in the process-wide obs registry.
// Every update site is gated on obs.Enabled() (off by default), and the
// per-message counters are striped by rank id so enabling metrics does not
// put one contended cache line in the middle of the sharded scheduler.
var (
	mWorlds = obs.Default.Counter("machine_worlds_total",
		"Simulated worlds created.")
	mDeadlocks = obs.Default.Counter("machine_deadlocks_total",
		"Simulations aborted by the exact deadlock verifier.")
	mSends = obs.Default.Striped("machine_sends_total",
		"Point-to-point messages posted by simulated ranks.")
	mRecvs = obs.Default.Striped("machine_recvs_total",
		"Point-to-point messages consumed by simulated ranks.")
	mWordsSent = obs.Default.Striped("machine_words_sent_total",
		"Words of payload posted by simulated ranks.")
	mWordsRecv = obs.Default.Striped("machine_words_recv_total",
		"Words of payload consumed by simulated ranks.")
	mBarrierWaits = obs.Default.Striped("machine_barrier_waits_total",
		"Barrier entries by simulated ranks.")
)
