package machine

import (
	"fmt"
	"strings"
	"sync"
)

// TrafficMatrix accumulates per-(source, destination) word counts — the
// network's full traffic pattern, useful for checking that an algorithm's
// communication stays on its intended fibers and for visualizing locality.
type TrafficMatrix struct {
	p     int
	mu    sync.Mutex
	words []float64 // p×p, row-major [src*p+dst]
}

// EnableTraffic attaches a traffic matrix to the world; call before Run.
func (w *World) EnableTraffic() *TrafficMatrix {
	w.traffic = &TrafficMatrix{p: w.p, words: make([]float64, w.p*w.p)}
	return w.traffic
}

// add records a message (called from rank goroutines).
func (t *TrafficMatrix) add(src, dst int, words float64) {
	t.mu.Lock()
	t.words[src*t.p+dst] += words
	t.mu.Unlock()
}

// Words returns the total words sent from src to dst.
func (t *TrafficMatrix) Words(src, dst int) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.words[src*t.p+dst]
}

// ActivePairs returns the number of ordered (src, dst) pairs that
// exchanged any data — a locality measure (an all-to-all uses p(p−1)
// pairs; fiber-structured algorithms far fewer).
func (t *TrafficMatrix) ActivePairs() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, v := range t.words {
		if v > 0 {
			n++
		}
	}
	return n
}

// Heatmap renders the matrix as an ASCII density grid (rows = sources,
// columns = destinations; ' ' none, '.' light, '+' medium, '#' heavy,
// scaled to the maximum cell). Intended for small P.
func (t *TrafficMatrix) Heatmap() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	max := 0.0
	for _, v := range t.words {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "traffic heatmap (%d ranks, max cell %.4g words)\n", t.p, max)
	for s := 0; s < t.p; s++ {
		b.WriteString("|")
		for d := 0; d < t.p; d++ {
			v := t.words[s*t.p+d]
			switch {
			case v == 0:
				b.WriteByte(' ')
			case v < max/3:
				b.WriteByte('.')
			case v < 2*max/3:
				b.WriteByte('+')
			default:
				b.WriteByte('#')
			}
		}
		b.WriteString("|\n")
	}
	return b.String()
}
