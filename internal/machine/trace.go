package machine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// EventKind classifies a traced simulator event.
type EventKind int

const (
	// EventSend is a message injection (link occupancy at the sender).
	EventSend EventKind = iota
	// EventRecv is a message delivery, including any wait for the sender.
	EventRecv
	// EventCompute is local computation.
	EventCompute
)

// String names the event kind.
func (k EventKind) String() string {
	return [...]string{"send", "recv", "compute"}[k]
}

// Event is one traced simulator action with simulated start/end times.
type Event struct {
	Rank  int
	Kind  EventKind
	Peer  int // -1 when not applicable
	Tag   int
	Words float64
	Start float64
	End   float64
	Phase string
}

// PhaseSpan is one contiguous stretch of a rank's execution under a single
// SetPhase label — the per-rank, per-phase interval the Chrome-trace export
// renders as one span per algorithm phase (All-Gather A, All-Gather B,
// Reduce-Scatter C for Algorithm 1).
type PhaseSpan struct {
	Rank  int
	Phase string
	Start float64
	End   float64
}

// Trace collects events and phase spans from all ranks of a world.
type Trace struct {
	mu     sync.Mutex
	events []Event
	phases []PhaseSpan
}

// add appends an event (called from rank goroutines).
func (t *Trace) add(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// addPhase appends a closed phase span (called from rank goroutines).
func (t *Trace) addPhase(s PhaseSpan) {
	t.mu.Lock()
	t.phases = append(t.phases, s)
	t.mu.Unlock()
}

// Phases returns the recorded phase spans sorted by (rank, start time). A
// nil trace has none.
func (t *Trace) Phases() []PhaseSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]PhaseSpan, len(t.phases))
	copy(out, t.phases)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// Events returns the recorded events sorted by (rank, start time). A nil
// trace has none.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].End < out[j].End
	})
	return out
}

// EnableTracing attaches a Trace to the world; call before Run. Tracing
// records every Send, Recv, and Compute with simulated timestamps, at some
// memory cost per event.
func (w *World) EnableTracing() *Trace {
	w.trace = &Trace{}
	return w.trace
}

// Timeline renders an ASCII Gantt chart of the trace: one row per rank,
// time scaled to width columns; '#' marks computation, '>' send occupancy,
// '.' receive waiting, ' ' idle. Overlapping events favor compute > send >
// recv for visibility.
func (t *Trace) Timeline(p int, width int) string {
	if width <= 0 {
		width = 80
	}
	events := t.Events()
	maxEnd := 0.0
	for _, e := range events {
		if e.End > maxEnd {
			maxEnd = e.End
		}
	}
	if maxEnd == 0 {
		maxEnd = 1
	}
	glyph := map[EventKind]byte{EventCompute: '#', EventSend: '>', EventRecv: '.'}
	priority := map[EventKind]int{EventCompute: 3, EventSend: 2, EventRecv: 1}
	rows := make([][]byte, p)
	prio := make([][]int, p)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(" ", width))
		prio[i] = make([]int, width)
	}
	for _, e := range events {
		if e.Rank < 0 || e.Rank >= p {
			continue
		}
		lo := int(e.Start / maxEnd * float64(width-1))
		hi := int(e.End / maxEnd * float64(width-1))
		for x := lo; x <= hi && x < width; x++ {
			if priority[e.Kind] > prio[e.Rank][x] {
				rows[e.Rank][x] = glyph[e.Kind]
				prio[e.Rank][x] = priority[e.Kind]
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline (0 .. %.4g simulated time units; #=compute >=send .=recv)\n", maxEnd)
	for r := 0; r < p; r++ {
		fmt.Fprintf(&b, "rank %3d |%s|\n", r, rows[r])
	}
	return b.String()
}

// Summary aggregates per-kind totals (simulated time units per rank).
func (t *Trace) Summary(p int) string {
	events := t.Events()
	type agg struct{ compute, send, recv float64 }
	per := make([]agg, p)
	for _, e := range events {
		if e.Rank < 0 || e.Rank >= p {
			continue
		}
		d := e.End - e.Start
		switch e.Kind {
		case EventCompute:
			per[e.Rank].compute += d
		case EventSend:
			per[e.Rank].send += d
		case EventRecv:
			per[e.Rank].recv += d
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %12s %12s %12s\n", "rank", "compute", "send", "recv-wait")
	for r := 0; r < p; r++ {
		fmt.Fprintf(&b, "%-8d %12.4g %12.4g %12.4g\n", r, per[r].compute, per[r].send, per[r].recv)
	}
	return b.String()
}
