package machine

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Engine selects the scheduling backend that executes a World's SPMD
// bodies. The choice affects only wall-clock performance and capacity;
// every simulated observable (WorldStats, traces, traffic matrices) is
// bit-identical across engines because the simulator's results are pure
// functions of the deterministic FIFO communication pattern.
type Engine int

const (
	// EngineGoroutine runs one goroutine per rank — the default and the
	// reference implementation. Best for small and medium worlds
	// (P up to tens of thousands); capacity is capped at MaxRanks.
	EngineGoroutine Engine = iota
	// EngineEvent multiplexes ranks as cooperatively scheduled tasks over
	// a small worker pool, suspending them at the blocking points. Use it
	// for cluster-scale worlds: P=65536 full simulations interactively and
	// P ≥ 10^6 for communication-counting runs.
	EngineEvent
)

// MaxEventRanks is the largest world the event engine supports; task ids
// are kept in 32-bit run queues.
const MaxEventRanks = math.MaxInt32

// String returns the engine's canonical name as accepted by ParseEngine.
func (e Engine) String() string {
	switch e {
	case EngineGoroutine:
		return "goroutine"
	case EngineEvent:
		return "event"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// validate rejects Engine values outside the defined set.
func (e Engine) validate() error {
	switch e {
	case EngineGoroutine, EngineEvent:
		return nil
	default:
		return fmt.Errorf("%w: unknown engine %d", core.ErrBadOpts, int(e))
	}
}

// maxRanks returns the largest world size the engine supports.
func (e Engine) maxRanks() int {
	if e == EngineEvent {
		return MaxEventRanks
	}
	return MaxRanks
}

// ParseEngine resolves an engine name ("goroutine" or "event", the values
// of Engine.String). The empty string selects the default goroutine
// engine; an unknown name wraps core.ErrBadOpts.
func ParseEngine(name string) (Engine, error) {
	switch name {
	case "", EngineGoroutine.String():
		return EngineGoroutine, nil
	case EngineEvent.String():
		return EngineEvent, nil
	default:
		return 0, fmt.Errorf("%w: unknown engine %q (valid: %q, %q)",
			core.ErrBadOpts, name, EngineGoroutine.String(), EngineEvent.String())
	}
}

// EngineNames lists the engine names ParseEngine accepts, in definition
// order, for flag usage strings and API documentation.
func EngineNames() []string {
	return []string{EngineGoroutine.String(), EngineEvent.String()}
}

// worldOptions collects the option values New applies.
type worldOptions struct {
	engine  Engine
	workers int
}

// Option configures a World at construction (see New).
type Option func(*worldOptions)

// WithEngine selects the scheduling backend. The default is
// EngineGoroutine.
func WithEngine(e Engine) Option {
	return func(o *worldOptions) { o.engine = e }
}

// WithEventWorkers sets the event engine's worker-pool size. Values below
// one select the default (GOMAXPROCS). The goroutine engine ignores it.
func WithEventWorkers(n int) Option {
	return func(o *worldOptions) { o.workers = n }
}

// checkRankCount validates p against the engine's capacity.
func checkRankCount(p int, e Engine) error {
	if p <= 0 {
		return fmt.Errorf("%w: world size %d", core.ErrBadProcessorCount, p)
	}
	if limit := e.maxRanks(); p > limit {
		return fmt.Errorf("%w: world size %d exceeds the %s engine's limit of %d",
			core.ErrTooManyRanks, p, e, limit)
	}
	return nil
}
