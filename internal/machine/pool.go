package machine

import (
	"math/bits"
	"sync"
)

// arena recycles the simulator's hot-path allocations: message payload
// buffers, in-flight message structs, and small integer scratch slices.
// Buffers are grouped into power-of-two size classes; get returns a buffer
// with at least the requested length (contents undefined), put makes a
// buffer available for reuse. The arena only ever hands a buffer to one
// owner at a time, so the hot path — copy-on-send into a pooled buffer,
// recycle after receive — runs allocation-free once the free lists are warm.
//
// A single process-wide arena (globalArena) backs every World: worlds are
// typically short-lived (one per experiment sweep point, one per benchmark
// iteration), so per-world free lists would start cold every time and the
// pool would never amortize. Sharing is safe — ownership hand-off goes
// through the mutex, which also publishes buffer contents between
// goroutines — and the contention is negligible next to the simulation work
// between acquisitions.
type arena struct {
	mu   sync.Mutex
	free [arenaClasses][][]float64
	ints [intClasses][][]int
	msgs *message
}

// globalArena is the process-wide recycling arena shared by all Worlds.
var globalArena arena

// arenaClasses bounds the float64 size classes at 2^47 words — far beyond
// any simulated payload. intClasses bounds integer scratch at 2^31 entries.
const (
	arenaClasses = 48
	intClasses   = 32
)

// classFor returns the smallest size class whose buffers hold n words.
func classFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// get returns a buffer of length n with undefined contents. Callers must
// fully overwrite the requested prefix before reading it.
func (a *arena) get(n int) []float64 {
	if n == 0 {
		return nil
	}
	c := classFor(n)
	a.mu.Lock()
	if l := a.free[c]; len(l) > 0 {
		buf := l[len(l)-1]
		a.free[c] = l[:len(l)-1]
		a.mu.Unlock()
		return buf[:n]
	}
	a.mu.Unlock()
	return make([]float64, n, 1<<c)
}

// put recycles a buffer. Buffers whose capacity is not an exact power of
// two (e.g. slices allocated outside the arena) are filed under the largest
// class their capacity fully backs, so foreign buffers are safe to donate.
func (a *arena) put(buf []float64) {
	if cap(buf) == 0 {
		return
	}
	c := bits.Len(uint(cap(buf))) - 1
	if c >= arenaClasses {
		return
	}
	buf = buf[:0 : 1<<c]
	a.mu.Lock()
	a.free[c] = append(a.free[c], buf)
	a.mu.Unlock()
}

// getInts returns an integer scratch slice of length n, contents undefined.
func (a *arena) getInts(n int) []int {
	if n == 0 {
		return nil
	}
	c := classFor(n)
	a.mu.Lock()
	if l := a.ints[c]; len(l) > 0 {
		buf := l[len(l)-1]
		a.ints[c] = l[:len(l)-1]
		a.mu.Unlock()
		return buf[:n]
	}
	a.mu.Unlock()
	return make([]int, n, 1<<c)
}

// putInts recycles an integer scratch slice.
func (a *arena) putInts(buf []int) {
	if cap(buf) == 0 {
		return
	}
	c := bits.Len(uint(cap(buf))) - 1
	if c >= intClasses {
		return
	}
	buf = buf[:0 : 1<<c]
	a.mu.Lock()
	a.ints[c] = append(a.ints[c], buf)
	a.mu.Unlock()
}

// getMsg returns a zeroed message struct from the free list.
func (a *arena) getMsg() *message {
	a.mu.Lock()
	m := a.msgs
	if m != nil {
		a.msgs = m.next
		a.mu.Unlock()
		m.next = nil
		return m
	}
	a.mu.Unlock()
	return &message{}
}

// putMsg recycles a message struct. The payload reference is dropped so the
// pool never pins (or accidentally resurrects) a payload buffer.
func (a *arena) putMsg(m *message) {
	m.data = nil
	a.mu.Lock()
	m.next = a.msgs
	a.msgs = m
	a.mu.Unlock()
}

// GetBuffer returns a buffer of n words from the recycling arena. The
// contents are undefined: callers must fully overwrite the buffer before
// reading it. Pair with PutBuffer when the buffer is dead to keep the hot
// path allocation-free.
func (r *Rank) GetBuffer(n int) []float64 { return globalArena.get(n) }

// PutBuffer returns a buffer to the recycling arena. The caller must not
// use the slice (or any alias of it) afterwards: the arena will hand it to
// the next GetBuffer or Send on any rank.
func (r *Rank) PutBuffer(buf []float64) { globalArena.put(buf) }

// GetInts returns an integer scratch slice of length n from the recycling
// arena, contents undefined. Pair with PutInts.
func (r *Rank) GetInts(n int) []int { return globalArena.getInts(n) }

// PutInts returns an integer scratch slice to the recycling arena.
func (r *Rank) PutInts(buf []int) { globalArena.putInts(buf) }
