package machine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// eventEngine is the cluster-scale scheduling backend: ranks run as
// cooperatively scheduled tasks multiplexed onto a small worker pool.
//
// Go has no stack-capturing continuations, so each task still owns a
// goroutine — but a parked one, blocked on its private handoff channel.
// Only the ≤ W tasks currently stepped by workers are ever runnable, so
// the Go scheduler's run queues stay tiny regardless of P, there are no
// per-rank condition variables, and no broadcast storms: a barrier release
// is one batched run-queue append instead of P condvar wakeups. That is
// what makes P=65536 full simulations interactive and P ≥ 10^6
// communication-counting runs feasible in a few GB (the residual per-rank
// cost is one small task struct, one channel, and one parked goroutine
// stack).
//
// Scheduling is sharded: ranks are pinned to one of W shards by contiguous
// blocks, and each shard has one execution token — at most one of its
// tasks runs at any moment. A task blocked in Recv or Barrier is resumed
// by pushing its id onto its home shard's run queue under that shard's
// lock; pushes happen only from running tasks (senders, barrier releasers)
// or from the failure paths, never for a running task, so a task is
// enqueued at most once per suspension, and therefore resumed by exactly
// one party per suspension.
//
// The token is passed by direct handoff: a task that suspends or finishes
// pops the next runnable id from its home shard itself and resumes that
// task directly — one channel send, one context switch — without bouncing
// through the worker. The worker only seeds a chain when the shard is idle
// (token free) and new work arrives, and parks otherwise, so in steady
// state the whole simulation is one continuous chain of task-to-task
// handoffs per shard and the workers sleep. Run-queue pushes to a shard
// whose token is held do not signal anyone: the chain is obligated to
// drain the queue before releasing the token (the release path pops under
// the same lock), so the wakeup cannot be lost.
//
// Suspension points are exactly the blocking operations of the machine
// model: Recv (no matching message queued) and Barrier (generation not yet
// released). Send never suspends (eager delivery).
//
// Deadlock detection: a worker with no poppable work counts itself parked;
// the last worker to park (parked == W) with no live chain anywhere
// (active == 0) verifies exactly under the detector mutex, all shard
// locks, and the barrier lock: if every token is free, every run queue is
// empty, and no blocked Recv has a matching queued message, the world is
// stuck, and every blocked task is requeued so it can observe the failure
// and abort. A task that was pushed but not yet resumed keeps the verdict
// conservative: it is neither waiting nor finished, so the state sum check
// fails and the verifier stands down. The verdict strings are shared with
// the goroutine engine (deadlockMessage), so a stuck pattern reports
// identically on both engines.
//
// Lock ordering: outside verifyStalled, at most one engine lock is held at
// a time (barrier release snapshots its waiters under the barrier lock,
// unlocks, then pushes). verifyStalled alone nests: detMu → every shard
// lock in index order → barrier lock.
type eventEngine struct {
	w    *World
	body func(*Rank)

	// nw is the worker-pool width; shards[i] is drained only by worker i.
	nw     int
	shards []eventShard
	tasks  []eventTask
	errs   []error

	// remaining counts unfinished tasks; the last finisher (panicked or
	// not — unlike the goroutine engine there is no per-rank WaitGroup)
	// stops the pool.
	remaining atomic.Int64
	// parked counts workers blocked on their shard condvar; active counts
	// shards whose execution token is held by a task chain. parked == nw
	// with active == 0 suggests global quiescence and triggers exact
	// deadlock verification (the verifier re-checks both under the locks).
	parked atomic.Int32
	active atomic.Int32
	stop   atomic.Bool

	failed  atomic.Bool
	failMsg string
	detMu   sync.Mutex

	// bar is the generation-counted reusable barrier. Waiters are held as
	// task ids and released by one batched requeue — no condition
	// variable, no broadcast.
	bar struct {
		mu      sync.Mutex
		gen     int
		clock   float64
		release float64
		waiters []int32
	}
}

// eventShard is one shard's run queue plus its execution token. head
// indexes the next runnable id; the slice is compacted when drained.
// running is 1 while a task chain holds the token (guarded by mu); the
// worker pops only with the token free, and a suspending or finishing task
// passes the token onward itself.
//
// next and hotq mirror the Go scheduler's runnext + local run queue: a
// receiver woken by a matching send is scheduled in the hot slot, ahead of
// everything, so it runs as soon as the current task parks and consumes
// the message while the payload is still warm in cache; a send that finds
// the slot occupied displaces the previous occupant into hotq, which is
// drained before the cold main queue. Without this two-level order a woken
// receiver waits behind every previously queued task — at P=65536 up to
// tens of thousands of steps — and every payload copy touches cold memory,
// which alone made the engine twice as slow as the goroutine backend.
// Batch wakeups (barrier releases, failure paths) go straight to the main
// queue: they carry no hot data. The trailing padding keeps adjacent
// shards off one cache line.
type eventShard struct {
	mu      sync.Mutex
	cond    sync.Cond
	runq    []int32
	head    int
	hotq    []int32
	hoth    int
	running int
	next    int32

	_ [32]byte
}

// empty reports whether no runnable id is queued (hot slot, hot queue, and
// main queue all clear). Callers hold mu.
func (sh *eventShard) empty() bool {
	return sh.next < 0 && sh.hoth == len(sh.hotq) && sh.head == len(sh.runq)
}

// take removes and returns the next runnable id: hot slot, then displaced
// hot entries, then the main queue. Callers hold mu and have checked the
// shard is non-empty.
func (sh *eventShard) take() int32 {
	if sh.next >= 0 {
		id := sh.next
		sh.next = -1
		return id
	}
	if sh.hoth < len(sh.hotq) {
		id := sh.hotq[sh.hoth]
		sh.hoth++
		if sh.hoth == len(sh.hotq) {
			sh.hotq, sh.hoth = sh.hotq[:0], 0
		}
		return id
	}
	return sh.pop()
}

// pop removes and returns the next runnable id. Callers hold mu and have
// checked the queue is non-empty. The consumed prefix is compacted away
// once it dominates the slice — a steady chain pops and pushes in balance
// and may never fully drain the queue, so without amortized compaction the
// slice would grow with every push for the whole run.
func (sh *eventShard) pop() int32 {
	id := sh.runq[sh.head]
	sh.head++
	if sh.head == len(sh.runq) {
		sh.runq, sh.head = sh.runq[:0], 0
	} else if sh.head >= 1024 && sh.head*2 >= len(sh.runq) {
		n := copy(sh.runq, sh.runq[sh.head:])
		sh.runq, sh.head = sh.runq[:n], 0
	}
	return id
}

// eventTask is the suspension state of one rank: its handoff channel, its
// message store, and the description of the Recv it is parked in, if any.
// All fields except ch are guarded by the home shard's lock; ch is touched
// only by the home worker and the task itself.
type eventTask struct {
	id      int32
	started bool
	// waiting/wantSrc/wantTag describe a parked Recv, exactly like the
	// goroutine engine's mailbox fields.
	waiting bool
	wantSrc int32
	wantTag int32
	ch      chan struct{}
	store   msgStore
}

// newEventEngine builds the backend for w with the given worker count
// (values below one select GOMAXPROCS, capped at P).
func newEventEngine(w *World, workers int) *eventEngine {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > w.p {
		workers = w.p
	}
	e := &eventEngine{
		w:      w,
		nw:     workers,
		shards: make([]eventShard, workers),
		tasks:  make([]eventTask, w.p),
		errs:   make([]error, w.p),
	}
	for i := range e.shards {
		e.shards[i].cond.L = &e.shards[i].mu
		e.shards[i].next = -1
	}
	for i := range e.tasks {
		e.tasks[i].id = int32(i)
	}
	return e
}

// shardOf maps a rank to its home shard: contiguous blocks of p/nw ranks.
func (e *eventEngine) shardOf(id int) int {
	return int(int64(id) * int64(e.nw) / int64(e.w.p))
}

// shardRange returns the half-open rank interval [lo, hi) pinned to shard
// si (the preimage of shardOf).
func (e *eventEngine) shardRange(si int) (lo, hi int) {
	lo = (si*e.w.p + e.nw - 1) / e.nw
	hi = ((si+1)*e.w.p + e.nw - 1) / e.nw
	return lo, hi
}

// run seeds every task runnable on its home shard and drives the pool to
// completion.
func (e *eventEngine) run(body func(*Rank)) error {
	e.body = body
	e.remaining.Store(int64(e.w.p))
	for si := range e.shards {
		lo, hi := e.shardRange(si)
		runq := make([]int32, 0, hi-lo)
		for id := lo; id < hi; id++ {
			runq = append(runq, int32(id))
		}
		e.shards[si].runq = runq
	}
	var wg sync.WaitGroup
	for si := 0; si < e.nw; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			e.worker(si)
		}(si)
	}
	wg.Wait()
	for _, err := range e.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// worker seeds task chains on shard si until the world stops: with the
// shard's token free and a runnable task queued, take the token and resume
// the task; the chain then sustains itself through direct handoffs, and
// the worker parks until the token comes back or the pool stops.
func (e *eventEngine) worker(si int) {
	sh := &e.shards[si]
	sh.mu.Lock()
	for {
		for sh.running != 0 || sh.empty() {
			if e.stop.Load() {
				sh.mu.Unlock()
				return
			}
			if e.parked.Add(1) == int32(e.nw) && e.active.Load() == 0 {
				// Last worker to park with every token free: the pool
				// looks quiescent. Verify exactly whether the world is
				// stuck (the common outcome is that a mid-transition task
				// or freshly queued work shows it is not). Drop our lock
				// first — verification takes all of them.
				sh.mu.Unlock()
				e.verifyStalled()
				sh.mu.Lock()
				e.parked.Add(-1)
				continue
			}
			sh.cond.Wait()
			e.parked.Add(-1)
		}
		id := sh.take()
		sh.running = 1
		e.active.Add(1)
		sh.mu.Unlock()
		e.resume(&e.tasks[id])
		sh.mu.Lock()
	}
}

// resume hands the shard's execution token to t: start its goroutine on
// first schedule, unblock its handoff channel afterwards. The caller must
// hold the token (have popped t's id) and nothing else; resume does not
// wait for t — the resumer either parks right after (task chains) or goes
// back to its own wait loop (workers).
func (e *eventEngine) resume(t *eventTask) {
	if !t.started {
		// Mutating started/ch outside any lock is safe: the right to
		// resume a task is handed over through its run-queue entry, so
		// successive resumers are ordered by the shard lock and by this
		// task's own suspensions in between.
		t.started = true
		t.ch = make(chan struct{})
		go e.taskMain(t)
		return
	}
	t.ch <- struct{}{}
}

// park suspends the calling task, which holds its home shard's execution
// token: pass the token to the next runnable task of the shard, or release
// it if none is queued, then block until resumed. Called with sh.mu held;
// returns with no locks held.
func (e *eventEngine) park(t *eventTask, sh *eventShard) {
	next := int32(-1)
	if !sh.empty() {
		next = sh.take()
	} else {
		sh.running = 0
		e.active.Add(-1)
	}
	sh.mu.Unlock()
	if next == t.id {
		// Our own wakeup was already queued (a barrier release or failure
		// path ran between this task recording its suspension and this
		// pop): consume it and keep running — the token never leaves us.
		return
	}
	if next >= 0 {
		e.resume(&e.tasks[next])
	} else {
		// Token released with an empty queue: wake the worker so the last
		// one to park can re-examine the pool for quiescence.
		sh.cond.Signal()
	}
	<-t.ch
}

// release hands a finished task's execution token onward: resume the next
// runnable task of the home shard, or return the token to the worker. A
// finished task can never be requeued (it is neither waiting nor a barrier
// waiter), so unlike park there is no self-pop case and nothing to block
// on.
func (e *eventEngine) release(t *eventTask) {
	sh := &e.shards[e.shardOf(int(t.id))]
	sh.mu.Lock()
	if !sh.empty() {
		next := sh.take()
		sh.mu.Unlock()
		e.resume(&e.tasks[next])
		return
	}
	sh.running = 0
	e.active.Add(-1)
	sh.mu.Unlock()
	sh.cond.Signal()
}

// taskMain is the goroutine body of one task: run the SPMD body, record
// the outcome, count down the pool, and pass the execution token onward.
func (e *eventEngine) taskMain(t *eventTask) {
	r := &e.w.ranks[t.id]
	defer func() {
		if rec := recover(); rec != nil {
			e.errs[t.id] = fmt.Errorf("rank %d: %v", t.id, rec)
			e.fail(fmt.Sprintf("rank %d panicked: %v", t.id, rec))
		} else {
			// Close any phase span left open by the body. Completion
			// while peers still wait for this rank's messages is caught
			// by quiescence-triggered verification, not here.
			r.endPhase()
		}
		// Count down every task, panicked or not, so the pool always
		// observes termination even on an aborted world.
		if e.remaining.Add(-1) == 0 {
			e.stopAll()
		}
		e.release(t)
	}()
	e.body(r)
}

// stopAll wakes every worker for exit after the last task finishes.
func (e *eventEngine) stopAll() {
	e.stop.Store(true)
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		sh.cond.Broadcast()
		sh.mu.Unlock()
	}
}

// abort panics with the recorded failure message (caught in taskMain).
func (e *eventEngine) abort() {
	panic("machine: aborted: " + e.failMsg)
}

// fail marks the world failed and requeues every blocked task so it can
// observe the failure and abort. Later failers return immediately: the
// requeue is ordered after the failure flag, so any task that parks later
// saw the flag under its shard lock and aborted instead of parking.
func (e *eventEngine) fail(msg string) {
	e.detMu.Lock()
	if e.failed.Load() {
		e.detMu.Unlock()
		return
	}
	e.failMsg = msg
	e.failed.Store(true)
	e.detMu.Unlock()
	e.wakeAllBlocked()
}

// wakeAllBlocked requeues every parked task — barrier waiters first, then
// parked Recvs shard by shard — taking one lock at a time (the barrier
// waiters are snapshotted under the barrier lock and pushed after it is
// released, preserving the single-lock rule).
func (e *eventEngine) wakeAllBlocked() {
	b := &e.bar
	b.mu.Lock()
	waiters := b.waiters
	b.waiters = nil
	b.mu.Unlock()
	e.enqueueReady(waiters)
	for si := range e.shards {
		sh := &e.shards[si]
		lo, hi := e.shardRange(si)
		sh.mu.Lock()
		for id := lo; id < hi; id++ {
			t := &e.tasks[id]
			if t.waiting {
				t.waiting = false
				sh.runq = append(sh.runq, t.id)
			}
		}
		idle := sh.running == 0
		sh.mu.Unlock()
		if idle {
			sh.cond.Signal()
		}
	}
}

// enqueueReady pushes a batch of task ids onto their home shards' run
// queues, grouping consecutive same-shard ids into one lock acquisition
// (with few shards a whole barrier release is a handful of appends). Only
// an idle shard's worker is signaled; a held token obligates its chain to
// drain the queue, so the wakeup is never lost.
func (e *eventEngine) enqueueReady(ids []int32) {
	for i := 0; i < len(ids); {
		si := e.shardOf(int(ids[i]))
		j := i + 1
		for j < len(ids) && e.shardOf(int(ids[j])) == si {
			j++
		}
		sh := &e.shards[si]
		sh.mu.Lock()
		sh.runq = append(sh.runq, ids[i:j]...)
		idle := sh.running == 0
		sh.mu.Unlock()
		if idle {
			sh.cond.Signal()
		}
		i = j
	}
}

// send enqueues a message (eager, non-blocking delivery), requeueing the
// receiver only if it is parked waiting for exactly this (src, tag) — the
// same sender-side matching the goroutine engine does, with a run-queue
// push in place of a condvar signal. The receiver's shard is woken only if
// its token is free; otherwise the chain holding it picks the receiver up
// on its next handoff.
func (e *eventEngine) send(m *message) {
	t := &e.tasks[m.dst]
	sh := &e.shards[e.shardOf(m.dst)]
	sh.mu.Lock()
	t.store.enqueue(m)
	if t.waiting && int(t.wantSrc) == m.src && int(t.wantTag) == m.tag {
		t.waiting = false
		// Schedule the receiver in the hot slot so it consumes m while the
		// payload is still in cache, displacing any previous occupant into
		// the hot queue (still ahead of the cold main queue).
		if sh.next >= 0 {
			sh.hotq = append(sh.hotq, sh.next)
		}
		sh.next = t.id
		idle := sh.running == 0
		sh.mu.Unlock()
		if idle {
			sh.cond.Signal()
		}
		return
	}
	sh.mu.Unlock()
}

// recv returns the next message from src to dst with the given tag,
// suspending the task if none is queued yet. FIFO order among same-tag
// messages is preserved by the store, identically to the goroutine engine.
func (e *eventEngine) recv(dst, src, tag int) *message {
	t := &e.tasks[dst]
	sh := &e.shards[e.shardOf(dst)]
	sh.mu.Lock()
	if e.failed.Load() {
		sh.mu.Unlock()
		e.abort()
	}
	if m := t.store.take(src, tag); m != nil {
		sh.mu.Unlock()
		return m
	}
	// Park: advertise what we wait for, then suspend, passing the shard's
	// execution token onward in the same critical section. The matching
	// sender (or a failure path) clears waiting and requeues us; whoever
	// holds our shard's token then resumes us — the unbuffered handoff
	// channel holds the wakeup even if it arrives before we block.
	t.waiting, t.wantSrc, t.wantTag = true, int32(src), int32(tag)
	e.park(t, sh)
	sh.mu.Lock()
	if e.failed.Load() {
		sh.mu.Unlock()
		e.abort()
	}
	m := t.store.take(src, tag)
	sh.mu.Unlock()
	if m == nil {
		panic("machine: woken without a matching message")
	}
	return m
}

// barrier synchronizes all ranks and aligns their clocks to the maximum.
// The last arrival publishes the max clock and releases the whole
// generation with one batched requeue; everyone else records itself as a
// waiter and suspends.
func (e *eventEngine) barrier(r *Rank) {
	b := &e.bar
	t := &e.tasks[r.id]
	b.mu.Lock()
	if e.failed.Load() {
		b.mu.Unlock()
		e.abort()
	}
	if r.clock > b.clock {
		b.clock = r.clock
	}
	if len(b.waiters) == e.w.p-1 {
		// Last arrival: release the generation. Snapshot the waiters and
		// requeue them after dropping the lock (single-lock rule). The
		// release clock stays readable until every waiter departs — no
		// rank can re-arrive before all of this generation have left.
		b.release = b.clock
		b.clock = 0
		waiters := b.waiters
		b.waiters = nil
		b.gen++
		r.clock = b.release
		b.mu.Unlock()
		e.enqueueReady(waiters)
		return
	}
	b.waiters = append(b.waiters, t.id)
	gen := b.gen
	b.mu.Unlock()
	// Suspend, passing the home shard's token onward. Unlike Recv the
	// suspension is recorded under the barrier lock, not the shard lock,
	// so the release (or a failure path) may already have requeued us by
	// the time park pops — park consumes that self-wakeup and returns
	// immediately.
	sh := &e.shards[e.shardOf(int(t.id))]
	sh.mu.Lock()
	e.park(t, sh)
	b.mu.Lock()
	if b.gen == gen {
		// Resumed without a release: the world failed while we waited.
		b.mu.Unlock()
		e.abort()
	}
	r.clock = b.release
	b.mu.Unlock()
}

// verifyStalled decides exactly whether the idle pool is a deadlock.
// Called by the last worker to park once no chain appears live; under the
// detector mutex, every shard lock, and the barrier lock, the task states,
// run queues, and message stores form a consistent snapshot. If some token
// is held or some run queue is non-empty, the world is live. A task that
// was requeued but not yet resumed is neither waiting nor finished, so the
// state sum check below fails and the verdict stays conservative.
// Otherwise every task is waiting, a barrier waiter, or finished; the
// world is stuck unless a waiting task has a matching queued message
// (impossible by construction here, but checked for exactness). On a
// verified deadlock every blocked task is requeued, still under the locks,
// to resume and abort.
func (e *eventEngine) verifyStalled() {
	e.detMu.Lock()
	defer e.detMu.Unlock()
	if e.failed.Load() || e.stop.Load() {
		return
	}
	for i := range e.shards {
		e.shards[i].mu.Lock()
	}
	e.bar.mu.Lock()
	unlock := func() {
		e.bar.mu.Unlock()
		for i := range e.shards {
			e.shards[i].mu.Unlock()
		}
	}
	for i := range e.shards {
		if e.shards[i].running != 0 {
			unlock()
			return // a chain still holds this shard's token
		}
		if !e.shards[i].empty() {
			unlock()
			return // queued work: its worker has a pending wakeup
		}
	}
	recvBlocked, inflight := 0, 0
	for i := range e.tasks {
		t := &e.tasks[i]
		inflight += t.store.inflight
		if t.waiting {
			recvBlocked++
			if t.store.peek(int(t.wantSrc), int(t.wantTag)) {
				unlock()
				return // pending wakeup: a matching message is queued
			}
		}
	}
	barParked := len(e.bar.waiters)
	done := e.w.p - int(e.remaining.Load())
	if recvBlocked+barParked+done != e.w.p {
		unlock()
		return // raced with a task between states; not truly quiescent
	}
	if done == e.w.p {
		unlock()
		return // normal termination; stopAll is already on its way
	}
	msg := deadlockMessage(recvBlocked, barParked, done, inflight)
	if msg == "" {
		unlock()
		return // all-Barrier with no finisher resolves via the release
	}
	if obs.Enabled() {
		mDeadlocks.Inc()
	}
	e.failMsg = msg
	e.failed.Store(true)
	// Requeue every blocked task, still under all the locks, so each
	// resumes, observes the failure, and aborts. The barrier generation
	// stays unreleased: resumed waiters see gen unchanged and abort.
	for _, id := range e.bar.waiters {
		sh := &e.shards[e.shardOf(int(id))]
		sh.runq = append(sh.runq, id)
	}
	e.bar.waiters = nil
	for i := range e.tasks {
		t := &e.tasks[i]
		if t.waiting {
			t.waiting = false
			sh := &e.shards[e.shardOf(i)]
			sh.runq = append(sh.runq, t.id)
		}
	}
	unlock()
	for i := range e.shards {
		e.shards[i].cond.Signal()
	}
}
