package machine

import "testing"

// pingPongRun returns a closure running a fresh 2-rank world that
// exchanges msgs round trips of 256-word messages, recycling the received
// pooled buffers. Worlds are deliberately fresh each call: the buffer
// arena is process-global, so steady-state message traffic must not
// allocate even across World lifetimes.
func pingPongRun(t *testing.T, msgs int) func() {
	payload := make([]float64, 256)
	return func() {
		w := NewWorld(2, BandwidthOnly())
		err := w.Run(func(r *Rank) {
			for i := 0; i < msgs; i++ {
				if r.ID() == 0 {
					r.Send(1, 7, payload)
					r.PutBuffer(r.Recv(1, 8))
				} else {
					r.PutBuffer(r.Recv(0, 7))
					r.Send(0, 8, payload)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestSendRecvSteadyStateAllocs pins the allocation cost of the message
// hot path: once the global arena is warm, Send (copy into a pooled
// buffer, pooled message header, intrusive queue link) and Recv (unlink,
// hand the pooled payload to the caller) must be allocation-free, so extra
// messages add nothing on top of a run's fixed World-construction cost.
func TestSendRecvSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts shift under -race instrumentation")
	}
	base := testing.AllocsPerRun(20, pingPongRun(t, 4))
	heavy := testing.AllocsPerRun(20, pingPongRun(t, 68))
	perMsg := (heavy - base) / (2 * 64) // 64 extra round trips = 128 messages
	if perMsg > 0.05 {
		t.Errorf("steady-state send/recv allocates %.3f allocs/message (base run %.1f, heavy run %.1f); want ~0", perMsg, base, heavy)
	}
	// Absolute ceiling for a whole 2-rank run: world construction, two
	// rank goroutines, and stats. Seed code paid ~3 allocs per message on
	// top; catch any such regression with generous headroom.
	if heavy > 60 {
		t.Errorf("2-rank world with 68 round trips costs %.1f allocs, want <= 60", heavy)
	}
}
