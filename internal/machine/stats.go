package machine

// RankStats holds the per-processor accounting the lower bounds constrain.
type RankStats struct {
	// WordsSent and WordsRecv count the words of all point-to-point
	// messages posted and received by the rank. For the balanced
	// collectives in internal/collective, WordsRecv per rank equals the
	// textbook (1 − 1/p)·w collective cost the paper's §5.1 uses.
	WordsSent, WordsRecv float64
	// MsgsSent and MsgsRecv count messages (the latency term multiplier).
	MsgsSent, MsgsRecv int
	// Flops counts scalar operations charged via Compute.
	Flops float64
	// PeakMemory is the high-water mark of GrowMemory/ShrinkMemory
	// accounting, in words.
	PeakMemory float64
	// FinalClock is the rank's simulated time when the SPMD body returned.
	FinalClock float64
	// PhaseRecvWords and PhaseSentWords break communication down by the
	// labels set with SetPhase.
	PhaseRecvWords map[string]float64
	PhaseSentWords map[string]float64
}

// WorldStats aggregates rank statistics after a Run.
type WorldStats struct {
	Ranks []RankStats
	// CriticalPath is the maximum final clock over ranks — the simulated
	// execution time under the α-β-γ model.
	CriticalPath float64
	// MaxWordsRecv and MaxWordsSent are the per-rank maxima: the
	// quantities Theorem 3 lower-bounds (communication along the critical
	// path is at least what the busiest processor moves).
	MaxWordsRecv, MaxWordsSent float64
	// TotalWordsSent is the network-wide traffic (each word counted once).
	TotalWordsSent float64
	// TotalMessages is the network-wide message count.
	TotalMessages int
	// MaxPeakMemory is the largest per-rank memory watermark.
	MaxPeakMemory float64
}

// CommCost returns the per-processor communication volume used throughout
// the experiments: the maximum over ranks of words received. For the
// symmetric algorithms in this repository it equals the maximum of words
// sent; both are reported in WorldStats for asymmetric patterns.
func (s WorldStats) CommCost() float64 { return s.MaxWordsRecv }

// PhaseRecvTotal sums a named phase's received words over ranks.
func (s WorldStats) PhaseRecvTotal(phase string) float64 {
	t := 0.0
	for _, r := range s.Ranks {
		t += r.PhaseRecvWords[phase]
	}
	return t
}

// MaxPhaseRecv returns the per-rank maximum of received words in a phase.
func (s WorldStats) MaxPhaseRecv(phase string) float64 {
	m := 0.0
	for _, r := range s.Ranks {
		if v := r.PhaseRecvWords[phase]; v > m {
			m = v
		}
	}
	return m
}
