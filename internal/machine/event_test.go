package machine

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

// eventWorld creates a world on the event engine, failing the test on
// construction errors.
func eventWorld(t *testing.T, p int, cfg Config, opts ...Option) *World {
	t.Helper()
	w, err := New(p, cfg, append([]Option{WithEngine(EngineEvent)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// runBothEngines runs the same body on a goroutine-engine world and an
// event-engine world and returns the two stats, failing on any run error.
// The body must be engine-agnostic (pure Rank API), which is the contract
// the event engine exists to preserve.
func runBothEngines(t *testing.T, p int, cfg Config, body func(*Rank)) (gor, evt WorldStats) {
	t.Helper()
	gw := NewWorld(p, cfg)
	if err := gw.Run(body); err != nil {
		t.Fatalf("goroutine engine: %v", err)
	}
	ew := eventWorld(t, p, cfg)
	if err := ew.Run(body); err != nil {
		t.Fatalf("event engine: %v", err)
	}
	return gw.Stats(), ew.Stats()
}

func TestParseEngine(t *testing.T) {
	for _, tc := range []struct {
		name string
		want Engine
	}{
		{"", EngineGoroutine},
		{"goroutine", EngineGoroutine},
		{"event", EngineEvent},
	} {
		got, err := ParseEngine(tc.name)
		if err != nil || got != tc.want {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v", tc.name, got, err, tc.want)
		}
	}
	if _, err := ParseEngine("fibers"); !errors.Is(err, core.ErrBadOpts) {
		t.Errorf("ParseEngine(fibers) err = %v, want ErrBadOpts", err)
	}
	if EngineGoroutine.String() != "goroutine" || EngineEvent.String() != "event" {
		t.Errorf("engine names: %v %v", EngineGoroutine, EngineEvent)
	}
}

func TestNewValidatesRankCount(t *testing.T) {
	if _, err := New(0, BandwidthOnly()); !errors.Is(err, core.ErrBadProcessorCount) {
		t.Errorf("New(0) err = %v, want ErrBadProcessorCount", err)
	}
	if _, err := New(MaxRanks+1, BandwidthOnly()); !errors.Is(err, core.ErrTooManyRanks) {
		t.Errorf("New(MaxRanks+1) on goroutine engine err = %v, want ErrTooManyRanks", err)
	}
	// The event engine lifts the packed-state cap: a world one past the
	// goroutine limit constructs fine (construction only — running it
	// would be a multi-gigabyte simulation).
	w, err := New(MaxRanks+1, BandwidthOnly(), WithEngine(EngineEvent))
	if err != nil {
		t.Fatalf("New(MaxRanks+1) on event engine: %v", err)
	}
	if w.P() != MaxRanks+1 || w.Engine() != EngineEvent {
		t.Errorf("world: P=%d engine=%v", w.P(), w.Engine())
	}
	if _, err := New(MaxEventRanks+1, BandwidthOnly(), WithEngine(EngineEvent)); !errors.Is(err, core.ErrTooManyRanks) {
		t.Errorf("New(MaxEventRanks+1) err = %v, want ErrTooManyRanks", err)
	}
	if _, err := New(4, BandwidthOnly(), WithEngine(Engine(99))); !errors.Is(err, core.ErrBadOpts) {
		t.Errorf("New with bogus engine err = %v, want ErrBadOpts", err)
	}
}

// TestEventEnginePingPong pins the event engine's clock arithmetic to the
// same hand-computed values the goroutine-engine test uses.
func TestEventEnginePingPong(t *testing.T) {
	cfg := Config{Alpha: 10, Beta: 2, Gamma: 0}
	w := eventWorld(t, 2, cfg)
	err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 7, []float64{1, 2, 3}) // clock: 10 + 2*3 = 16
			got := r.Recv(1, 8)              // arrives at 16+10+2 = 28
			if len(got) != 1 || got[0] != 42 {
				t.Errorf("reply = %v", got)
			}
		case 1:
			msg := r.Recv(0, 7) // clock: max(0, 16) = 16
			if len(msg) != 3 || msg[2] != 3 {
				t.Errorf("msg = %v", msg)
			}
			r.Send(0, 8, []float64{42}) // clock: 16 + 10 + 2 = 28
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().CriticalPath; got != 28 {
		t.Errorf("critical path = %v, want 28", got)
	}
}

// TestEventEngineStatsBitIdentical runs a body exercising every Rank
// operation — tagged sends consumed out of order, SendRecv exchanges,
// phases, compute, memory accounting, barriers — on both engines and
// requires the full WorldStats to match exactly.
func TestEventEngineStatsBitIdentical(t *testing.T) {
	const p = 12
	body := func(r *Rank) {
		me := r.ID()
		next, prev := (me+1)%p, (me+p-1)%p
		r.SetPhase("shift")
		for step := 0; step < 4; step++ {
			r.Send(next, step, make([]float64, 3+me%3))
			r.Recv(prev, step)
			r.Compute(float64(10 * (1 + me%2)))
		}
		r.Barrier()
		r.SetPhase("exchange")
		r.GrowMemory(float64(8 * (me + 1)))
		got := r.SendRecv(next, prev, 90, make([]float64, 5))
		r.PutBuffer(got)
		r.ShrinkMemory(float64(8 * (me + 1)))
		r.Barrier()
		r.SetPhase("")
		// Out-of-order tag consumption after the barrier.
		r.Send(next, 201, []float64{1})
		r.Send(next, 202, []float64{2, 2})
		if w := r.Recv(prev, 202); len(w) != 2 {
			t.Errorf("rank %d tag 202 len %d", me, len(w))
		}
		r.Recv(prev, 201)
	}
	gor, evt := runBothEngines(t, p, Config{Alpha: 2, Beta: 0.5, Gamma: 0.125}, body)
	if !reflect.DeepEqual(gor, evt) {
		t.Fatalf("WorldStats diverge between engines:\ngoroutine: %+v\nevent:     %+v", gor, evt)
	}
}

// TestEventEngineFIFOAndTagMatching mirrors the goroutine-engine matching
// tests: FIFO within a tag, arbitrary order across tags.
func TestEventEngineFIFOAndTagMatching(t *testing.T) {
	w := eventWorld(t, 2, BandwidthOnly())
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 1, []float64{10})
			for i := 0; i < 5; i++ {
				r.Send(1, 3, []float64{float64(i)})
			}
			r.Send(1, 2, []float64{20})
		} else {
			if got := r.Recv(0, 2); got[0] != 20 {
				t.Errorf("tag 2 payload = %v", got)
			}
			for i := 0; i < 5; i++ {
				if got := r.Recv(0, 3); got[0] != float64(i) {
					t.Errorf("message %d = %v", i, got[0])
				}
			}
			if got := r.Recv(0, 1); got[0] != 10 {
				t.Errorf("tag 1 payload = %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestEventEngineDeadlockParity drives the deadlock suites on both engines
// and requires identical diagnostics: same verdict from the shared message
// formatter, reported by the same (lowest panicking) rank.
func TestEventEngineDeadlockParity(t *testing.T) {
	cases := []struct {
		name string
		p    int
		body func(*Rank)
	}{
		{"all-recv", 3, func(r *Rank) { r.Recv((r.ID()+1)%3, 0) }},
		{"recv-plus-barrier", 2, func(r *Rank) {
			if r.ID() == 0 {
				r.Recv(1, 0)
			} else {
				r.Barrier()
			}
		}},
		{"barrier-early-exit", 4, func(r *Rank) {
			if r.ID() == 0 {
				return
			}
			r.Barrier()
		}},
		{"undeliverable-inflight", 2, func(r *Rank) {
			if r.ID() == 0 {
				r.Send(1, 5, []float64{1})
				return
			}
			r.Recv(0, 6)
		}},
		{"mixed", 4, func(r *Rank) {
			switch r.ID() {
			case 0:
				return
			case 1:
				r.Barrier()
			default:
				r.Recv(0, 9)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gw := NewWorld(tc.p, BandwidthOnly())
			gerr := gw.Run(tc.body)
			ew := eventWorld(t, tc.p, BandwidthOnly())
			eerr := ew.Run(tc.body)
			if gerr == nil || eerr == nil {
				t.Fatalf("expected deadlock on both engines, got goroutine=%v event=%v", gerr, eerr)
			}
			if !strings.Contains(eerr.Error(), "deadlock") {
				t.Fatalf("event engine error lacks deadlock verdict: %v", eerr)
			}
			if gerr.Error() != eerr.Error() {
				t.Fatalf("deadlock diagnostics diverge:\ngoroutine: %v\nevent:     %v", gerr, eerr)
			}
		})
	}
}

// TestEventEnginePanicPropagates mirrors the goroutine-engine test: a
// panicking rank must fail the world and unblock parked peers.
func TestEventEnginePanicPropagates(t *testing.T) {
	w := eventWorld(t, 2, BandwidthOnly())
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			panic("boom")
		}
		r.Recv(0, 0) // would block forever without failure propagation
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("expected panic propagation, got %v", err)
	}
}

// TestEventEngineWorkerPoolStress forces a multi-worker pool (the default
// on a single-CPU host is one worker, which would serialize everything)
// and floods it with cross-shard traffic, out-of-order tag consumption,
// and repeated barriers. Run under -race in CI, this is the test that
// exercises the scheduler's cross-worker handoffs: senders on one shard
// requeueing receivers pinned to another, barrier releases batching tasks
// onto all shards at once, and the parked-counter quiescence protocol.
func TestEventEngineWorkerPoolStress(t *testing.T) {
	const (
		p      = 32
		rounds = 6
	)
	for _, workers := range []int{2, 4, 7} {
		w := eventWorld(t, p, BandwidthOnly(), WithEventWorkers(workers))
		err := w.Run(func(r *Rank) {
			me := r.ID()
			for round := 0; round < rounds; round++ {
				for d := 1; d <= 3; d++ {
					r.Send((me+d)%p, round*10+d, []float64{float64(me)})
				}
				for d := 3; d >= 1; d-- { // reverse of send order
					got := r.Recv((me+p-d)%p, round*10+d)
					if got[0] != float64((me+p-d)%p) {
						t.Errorf("rank %d round %d d %d: got %v", me, round, d, got[0])
					}
					r.PutBuffer(got)
				}
				r.Barrier()
			}
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := w.Stats().TotalMessages; got != p*rounds*3 {
			t.Errorf("workers=%d: total messages = %v, want %d", workers, got, p*rounds*3)
		}
	}
}

// TestEventEngineDeadlockUnderManyWorkers verifies quiescence detection
// with a pool wider than one: the last parking worker must verify and
// abort the world even when the blocked tasks span several shards.
func TestEventEngineDeadlockUnderManyWorkers(t *testing.T) {
	w := eventWorld(t, 16, BandwidthOnly(), WithEventWorkers(4))
	err := w.Run(func(r *Rank) {
		r.Recv((r.ID()+1)%16, 0) // nobody ever sends
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock error, got %v", err)
	}
}

// TestEventEngineLargeWorldCounting is the in-package scale smoke: a
// BandwidthOnly ring-counting run at P far beyond what the goroutine
// engine could schedule comfortably. CI drives the full P=10^6 version
// through cmd/benchrec; this keeps a quarter-scale variant in `go test`.
func TestEventEngineLargeWorldCounting(t *testing.T) {
	if testing.Short() {
		t.Skip("large-world smoke skipped in -short mode")
	}
	const p = 1 << 17 // 131072 ranks
	w := eventWorld(t, p, BandwidthOnly())
	err := w.Run(func(r *Rank) {
		me := r.ID()
		r.Send((me+1)%p, 0, []float64{float64(me)})
		got := r.Recv((me+p-1)%p, 0)
		r.PutBuffer(got)
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	s := w.Stats()
	if s.TotalMessages != p {
		t.Errorf("total messages = %v, want %d", s.TotalMessages, p)
	}
	if s.TotalWordsSent != p {
		t.Errorf("total words = %v, want %d", s.TotalWordsSent, p)
	}
}
