package machine

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Trace Event Format consumed by
// chrome://tracing and Perfetto: a complete ("X") slice with microsecond
// timestamps, or a metadata ("M") record naming processes and threads.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the format (the variant that
// tolerates extra top-level metadata).
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the trace as Chrome trace-event JSON, loadable in
// chrome://tracing or https://ui.perfetto.dev. One simulated time unit maps
// to one microsecond. Each rank renders as a thread carrying:
//
//   - one slice per phase span (cat "phase") — for Algorithm 1 these are
//     the All-Gather A, All-Gather B, and Reduce-Scatter C phases whose
//     per-phase costs eq. (3) decomposes, so the exported schedule can be
//     compared against the paper's cost split visually;
//   - one slice per traced send/recv/compute event (cat by kind), nested
//     inside its phase slice, with words, peer, and tag in args.
//
// p is the world size (rank count), used to emit thread names.
//
// The export degrades gracefully at the edges: a nil or empty trace (and a
// single-rank world, which never communicates) still writes a valid JSON
// document whose traceEvents is a JSON array — metadata records only, or
// literally [] when there is nothing at all to name.
func (t *Trace) WriteChromeTrace(w io.Writer, p int) error {
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	if p > 0 {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Args: map[string]any{"name": "mmsim"},
		})
	}
	for r := 0; r < p; r++ {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Tid: r,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", r)},
		})
	}
	for _, s := range t.Phases() {
		dur := s.End - s.Start
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: s.Phase, Cat: "phase", Ph: "X",
			Ts: s.Start, Dur: &dur, Tid: s.Rank,
		})
	}
	for _, e := range t.Events() {
		dur := e.End - e.Start
		ce := chromeEvent{Cat: e.Kind.String(), Ph: "X", Ts: e.Start, Dur: &dur, Tid: e.Rank}
		switch e.Kind {
		case EventSend:
			ce.Name = fmt.Sprintf("send→%d", e.Peer)
			ce.Args = map[string]any{"words": e.Words, "peer": e.Peer, "tag": e.Tag, "phase": e.Phase}
		case EventRecv:
			ce.Name = fmt.Sprintf("recv←%d", e.Peer)
			ce.Args = map[string]any{"words": e.Words, "peer": e.Peer, "tag": e.Tag, "phase": e.Phase}
		case EventCompute:
			ce.Name = "compute"
			ce.Args = map[string]any{"flops": e.Words, "phase": e.Phase}
		default:
			continue
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return enc.Encode(out)
}
