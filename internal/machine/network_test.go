package machine

import (
	"testing"
)

// uniformNet is a Network charging the same (α, β) to every pair — the
// shape topo's Flat fast path takes.
type uniformNet struct{ alpha, beta float64 }

func (n uniformNet) Charge(int, int) (float64, float64) { return n.alpha, n.beta }

// pairNet doubles the charge between ranks in different halves of the
// world, a minimal stand-in for a hierarchical fabric.
type pairNet struct {
	p           int
	alpha, beta float64
}

func (n pairNet) Charge(src, dst int) (float64, float64) {
	if (src < n.p/2) != (dst < n.p/2) {
		return 2 * n.alpha, 2 * n.beta
	}
	return n.alpha, n.beta
}

// ringRun runs a p-rank ring exchange of 16-word messages and returns the
// world's stats.
func ringRun(t *testing.T, p int, cfg Config, net Network) WorldStats {
	t.Helper()
	w := NewWorld(p, cfg)
	if net != nil {
		w.SetNetwork(net)
	}
	payload := make([]float64, 16)
	if err := w.Run(func(r *Rank) {
		next := (r.ID() + 1) % p
		prev := (r.ID() + p - 1) % p
		r.PutBuffer(r.SendRecv(next, prev, 3, payload))
	}); err != nil {
		t.Fatal(err)
	}
	return w.Stats()
}

// TestUniformNetworkMatchesConfig pins the bit-identity contract at the
// simulator level: a Network returning exactly (cfg.Alpha, cfg.Beta) yields
// WorldStats identical to running with no network at all — same floats,
// not merely close ones.
func TestUniformNetworkMatchesConfig(t *testing.T) {
	cfg := Config{Alpha: 2, Beta: 0.5, Gamma: 0.125}
	base := ringRun(t, 8, cfg, nil)
	with := ringRun(t, 8, cfg, uniformNet{alpha: cfg.Alpha, beta: cfg.Beta})
	if base.CriticalPath != with.CriticalPath || base.TotalWordsSent != with.TotalWordsSent {
		t.Fatalf("uniform network diverged: base %+v, with %+v", base, with)
	}
	for i := range base.Ranks {
		if base.Ranks[i].FinalClock != with.Ranks[i].FinalClock {
			t.Fatalf("rank %d clock %v with network, %v without", i, with.Ranks[i].FinalClock, base.Ranks[i].FinalClock)
		}
	}
}

// TestNetworkChangesCharges checks a pair-dependent network actually moves
// clocks: cross-half messages cost double.
func TestNetworkChangesCharges(t *testing.T) {
	cfg := Config{Alpha: 1, Beta: 1}
	w := NewWorld(4, cfg)
	w.SetNetwork(pairNet{p: 4, alpha: cfg.Alpha, beta: cfg.Beta})
	var nearClock, farClock float64
	if err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 0, make([]float64, 8)) // same half: 1 + 8
			nearClock = r.Clock()
			r.Send(3, 1, make([]float64, 8)) // cross half: 2 + 16
			farClock = r.Clock()
		case 1:
			r.PutBuffer(r.Recv(0, 0))
		case 3:
			r.PutBuffer(r.Recv(0, 1))
		}
	}); err != nil {
		t.Fatal(err)
	}
	if nearClock != 9 {
		t.Errorf("same-half send clock = %v, want 9", nearClock)
	}
	if farClock != 9+18 {
		t.Errorf("cross-half send clock = %v, want 27", farClock)
	}
}

// TestNetworkSendSteadyStateAllocs pins the topology-enabled hot path: with
// a Network installed, steady-state Send must stay allocation-free — the
// Charge call is an interface dispatch plus arithmetic, nothing more.
func TestNetworkSendSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts shift under -race instrumentation")
	}
	run := func(msgs int) func() {
		payload := make([]float64, 256)
		net := uniformNet{alpha: 1, beta: 0.5}
		return func() {
			w := NewWorld(2, BandwidthOnly())
			w.SetNetwork(net)
			err := w.Run(func(r *Rank) {
				for i := 0; i < msgs; i++ {
					if r.ID() == 0 {
						r.Send(1, 7, payload)
						r.PutBuffer(r.Recv(1, 8))
					} else {
						r.PutBuffer(r.Recv(0, 7))
						r.Send(0, 8, payload)
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	base := testing.AllocsPerRun(20, run(4))
	heavy := testing.AllocsPerRun(20, run(68))
	perMsg := (heavy - base) / (2 * 64)
	if perMsg > 0.05 {
		t.Errorf("networked send/recv allocates %.3f allocs/message (base %.1f, heavy %.1f); want ~0", perMsg, base, heavy)
	}
}
