package machine

import (
	"fmt"

	"repro/internal/obs"
)

// Rank is one simulated processor. All methods must be called only from the
// goroutine executing this rank's SPMD body.
type Rank struct {
	id    int
	world *World
	clock float64
	phase string
	stats RankStats

	// phaseStart is the clock when the current phase label was set; used by
	// the trace's per-phase span recorder.
	phaseStart float64

	curMemory float64
}

// ID returns the rank's index in [0, P).
func (r *Rank) ID() int { return r.id }

// P returns the world size.
func (r *Rank) P() int { return r.world.p }

// Clock returns the rank's current simulated time.
func (r *Rank) Clock() float64 { return r.clock }

// SetPhase labels subsequent communication for per-phase accounting (e.g.
// "allgather-A"). The empty string disables attribution. With tracing
// enabled, each contiguous stretch under one label is also recorded as a
// PhaseSpan — the per-rank, per-phase intervals the Chrome-trace export
// renders as one span per algorithm phase.
func (r *Rank) SetPhase(name string) {
	if t := r.world.trace; t != nil && name != r.phase {
		if r.phase != "" {
			t.addPhase(PhaseSpan{Rank: r.id, Phase: r.phase, Start: r.phaseStart, End: r.clock})
		}
		r.phaseStart = r.clock
	}
	r.phase = name
}

// endPhase closes a phase span left open when the SPMD body returns.
func (r *Rank) endPhase() {
	if r.phase != "" {
		r.SetPhase("")
	}
}

// Send posts a message of data to rank dst with the given tag. Sends are
// eager (non-blocking): the sender's clock advances by the link-occupancy
// cost α + β·w and the message becomes available to the receiver at that
// time. The data is copied, simulating serialization into the network; the
// copy lands in a pooled buffer from the world's arena, so the caller keeps
// ownership of data and steady-state sends allocate nothing. The in-flight
// buffer is recycled when the receiver uses RecvInto (or releases it with
// PutBuffer after a plain Recv).
func (r *Rank) Send(dst, tag int, data []float64) {
	if dst < 0 || dst >= r.world.p {
		panic(fmt.Sprintf("machine: send to rank %d of %d", dst, r.world.p))
	}
	if dst == r.id {
		panic("machine: self-send; keep local data local")
	}
	w := float64(len(data))
	cp := globalArena.get(len(data))
	copy(cp, data)
	start := r.clock
	if n := r.world.net; n != nil {
		a, b := n.Charge(r.id, dst)
		r.clock += a + b*w
	} else {
		r.clock += r.world.cfg.Alpha + r.world.cfg.Beta*w
	}
	if t := r.world.trace; t != nil {
		t.add(Event{Rank: r.id, Kind: EventSend, Peer: dst, Tag: tag, Words: w, Start: start, End: r.clock, Phase: r.phase})
	}
	if tm := r.world.traffic; tm != nil {
		tm.add(r.id, dst, w)
	}
	r.stats.WordsSent += w
	r.stats.MsgsSent++
	if r.phase != "" {
		addPhase(&r.stats.PhaseSentWords, r.phase, w)
	}
	if obs.Enabled() {
		mSends.Inc(r.id)
		mWordsSent.Add(r.id, uint64(len(data)))
	}
	m := globalArena.getMsg()
	m.src, m.dst, m.tag, m.data, m.sendClock = r.id, dst, tag, cp, r.clock
	r.world.eng.send(m)
}

// addPhase accumulates words under a phase label, creating the map on first
// use so phase-free runs never allocate it.
func addPhase(m *map[string]float64, phase string, w float64) {
	if *m == nil {
		*m = make(map[string]float64)
	}
	(*m)[phase] += w
}

// recvMsg blocks for a message from src with the given tag and performs the
// shared receive bookkeeping (clock advance, tracing, statistics).
func (r *Rank) recvMsg(src, tag int) *message {
	if src < 0 || src >= r.world.p {
		panic(fmt.Sprintf("machine: recv from rank %d of %d", src, r.world.p))
	}
	if src == r.id {
		panic("machine: self-recv")
	}
	start := r.clock
	m := r.world.eng.recv(r.id, src, tag)
	if m.sendClock > r.clock {
		r.clock = m.sendClock
	}
	w := float64(len(m.data))
	if t := r.world.trace; t != nil {
		t.add(Event{Rank: r.id, Kind: EventRecv, Peer: src, Tag: tag, Words: w, Start: start, End: r.clock, Phase: r.phase})
	}
	r.stats.WordsRecv += w
	r.stats.MsgsRecv++
	if r.phase != "" {
		addPhase(&r.stats.PhaseRecvWords, r.phase, w)
	}
	if obs.Enabled() {
		mRecvs.Inc(r.id)
		mWordsRecv.Add(r.id, uint64(len(m.data)))
	}
	return m
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload. The receiver's clock advances to the message's
// arrival time (send completion) if that is later than its current time.
// Ownership of the returned buffer transfers to the caller; it is never
// recycled behind the caller's back, but callers that finish with it may
// hand it back with PutBuffer. Callers that only need the payload copied
// into a buffer they already own should prefer RecvInto, which recycles
// the in-flight buffer immediately.
func (r *Rank) Recv(src, tag int) []float64 {
	m := r.recvMsg(src, tag)
	data := m.data
	globalArena.putMsg(m)
	return data
}

// RecvInto receives like Recv but copies the payload into dst and recycles
// the in-flight buffer, returning the number of words received. dst must be
// at least as long as the payload; only the returned prefix is written. The
// simulated cost, clocks, and statistics are identical to Recv.
func (r *Rank) RecvInto(src, tag int, dst []float64) int {
	m := r.recvMsg(src, tag)
	n := len(m.data)
	if n > len(dst) {
		panic(fmt.Sprintf("machine: RecvInto buffer holds %d words, message has %d", len(dst), n))
	}
	copy(dst[:n], m.data)
	globalArena.put(m.data)
	globalArena.putMsg(m)
	return n
}

// SendRecv posts a send to dst and then receives from src, modelling the
// simultaneous exchange permitted by the bidirectional links of §3.1.
func (r *Rank) SendRecv(dst, src, tag int, data []float64) []float64 {
	r.Send(dst, tag, data)
	return r.Recv(src, tag)
}

// SendRecvInto is SendRecv with the received payload copied into dst and
// the in-flight buffer recycled (see RecvInto). data and dst may alias:
// Send serializes data into a pooled buffer before the receive overwrites
// dst.
func (r *Rank) SendRecvInto(dst, src, tag int, data, into []float64) int {
	r.Send(dst, tag, data)
	return r.RecvInto(src, tag, into)
}

// Compute advances the rank's clock by γ·flops and records the flop count.
func (r *Rank) Compute(flops float64) {
	if flops < 0 {
		panic("machine: negative flops")
	}
	start := r.clock
	r.clock += r.world.cfg.Gamma * flops
	if t := r.world.trace; t != nil && flops > 0 {
		t.add(Event{Rank: r.id, Kind: EventCompute, Peer: -1, Words: flops, Start: start, End: r.clock, Phase: r.phase})
	}
	r.stats.Flops += flops
}

// Barrier synchronizes all ranks of the world and aligns their clocks to
// the maximum. It charges no communication cost: it is a measurement
// device separating phases, not an algorithmic collective.
func (r *Rank) Barrier() {
	if obs.Enabled() {
		mBarrierWaits.Inc(r.id)
	}
	r.world.eng.barrier(r)
}

// GrowMemory records an allocation of the given number of words in the
// rank's local memory, updating the peak watermark. Algorithms call it
// (paired with ShrinkMemory) around their buffers so experiments can check
// the §6.2 memory-footprint claims.
func (r *Rank) GrowMemory(words float64) {
	if words < 0 {
		panic("machine: negative allocation")
	}
	r.curMemory += words
	if r.curMemory > r.stats.PeakMemory {
		r.stats.PeakMemory = r.curMemory
	}
}

// ShrinkMemory records the release of words of local memory.
func (r *Rank) ShrinkMemory(words float64) {
	r.curMemory -= words
	if r.curMemory < -1e-9 {
		panic("machine: memory accounting went negative")
	}
}

// MemoryInUse returns the currently recorded local-memory usage in words.
func (r *Rank) MemoryInUse() float64 { return r.curMemory }
