package machine

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceRecordsEvents(t *testing.T) {
	w := NewWorld(2, Config{Alpha: 1, Beta: 1, Gamma: 0.5})
	tr := w.EnableTracing()
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Compute(10) // [0, 5]
			r.SetPhase("main")
			r.Send(1, 7, []float64{1, 2, 3}) // [5, 9]
		} else {
			r.Recv(0, 7) // [0, 9]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("got %d events: %+v", len(events), events)
	}
	// Sorted by rank then start: compute, send, recv.
	if events[0].Kind != EventCompute || events[0].Start != 0 || events[0].End != 5 {
		t.Fatalf("compute event wrong: %+v", events[0])
	}
	if events[1].Kind != EventSend || events[1].Start != 5 || events[1].End != 9 || events[1].Peer != 1 || events[1].Phase != "main" {
		t.Fatalf("send event wrong: %+v", events[1])
	}
	if events[2].Kind != EventRecv || events[2].Rank != 1 || events[2].Start != 0 || events[2].End != 9 {
		t.Fatalf("recv event wrong: %+v", events[2])
	}
	if EventSend.String() != "send" || EventRecv.String() != "recv" || EventCompute.String() != "compute" {
		t.Fatal("kind names")
	}
}

func TestTimelineAndSummaryRender(t *testing.T) {
	w := NewWorld(3, Config{Alpha: 0, Beta: 1, Gamma: 1})
	tr := w.EnableTracing()
	err := w.Run(func(r *Rank) {
		r.Compute(50)
		next := (r.ID() + 1) % 3
		prev := (r.ID() + 2) % 3
		r.Send(next, 0, make([]float64, 25))
		r.Recv(prev, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	tl := tr.Timeline(3, 60)
	if !strings.Contains(tl, "rank   0") || !strings.Contains(tl, "#") || !strings.Contains(tl, ">") {
		t.Fatalf("timeline missing content:\n%s", tl)
	}
	if lines := strings.Count(tl, "\n"); lines != 4 { // header + 3 ranks
		t.Fatalf("timeline has %d lines:\n%s", lines, tl)
	}
	sum := tr.Summary(3)
	if !strings.Contains(sum, "compute") || !strings.Contains(sum, "50") {
		t.Fatalf("summary missing content:\n%s", sum)
	}
}

func TestTimelineEmptyTrace(t *testing.T) {
	tr := &Trace{}
	if s := tr.Timeline(2, 40); !strings.Contains(s, "rank") {
		t.Fatalf("empty timeline broken:\n%s", s)
	}
}

func TestTracingDisabledByDefault(t *testing.T) {
	w := NewWorld(2, BandwidthOnly())
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, []float64{1})
		} else {
			r.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.trace != nil {
		t.Fatal("trace attached without EnableTracing")
	}
}

func TestTrafficMatrix(t *testing.T) {
	w := NewWorld(3, BandwidthOnly())
	tm := w.EnableTraffic()
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, make([]float64, 10))
			r.Send(2, 0, make([]float64, 5))
		} else {
			r.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if tm.Words(0, 1) != 10 || tm.Words(0, 2) != 5 || tm.Words(1, 0) != 0 {
		t.Fatalf("traffic wrong: %v %v %v", tm.Words(0, 1), tm.Words(0, 2), tm.Words(1, 0))
	}
	if tm.ActivePairs() != 2 {
		t.Fatalf("active pairs = %d", tm.ActivePairs())
	}
	hm := tm.Heatmap()
	if !strings.Contains(hm, "#") || strings.Count(hm, "|") != 6 {
		t.Fatalf("heatmap broken:\n%s", hm)
	}
}

// TestTrafficLocalityOfAlg1Fibers: Algorithm 1's traffic stays on grid
// fibers — far fewer active pairs than an all-to-all pattern would use.
// (Uses raw sends shaped like the fiber pattern to keep the machine
// package dependency-free; the algs-level check lives in that package.)
func TestTrafficHeatmapAllZero(t *testing.T) {
	w := NewWorld(2, BandwidthOnly())
	tm := w.EnableTraffic()
	if err := w.Run(func(r *Rank) {}); err != nil {
		t.Fatal(err)
	}
	if tm.ActivePairs() != 0 {
		t.Fatal("no traffic expected")
	}
	if hm := tm.Heatmap(); !strings.Contains(hm, "max cell 0") {
		t.Fatalf("zero heatmap: %s", hm)
	}
}

// TestChromeTraceEmpty pins the degenerate exports: a nil trace, an
// enabled-but-empty trace, and a zero-rank request must all emit valid JSON
// whose traceEvents is an array, never null — downstream viewers reject the
// latter.
func TestChromeTraceEmpty(t *testing.T) {
	cases := []struct {
		name  string
		trace *Trace
		p     int
	}{
		{"nil trace, no ranks", nil, 0},
		{"nil trace, ranks named", nil, 2},
		{"empty trace", &Trace{}, 0},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		if err := tc.trace.WriteChromeTrace(&buf, tc.p); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var doc struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("%s: invalid JSON: %v\n%s", tc.name, err, buf.String())
		}
		if !strings.Contains(buf.String(), `"traceEvents":[`) {
			t.Errorf("%s: traceEvents is not an array:\n%s", tc.name, buf.String())
		}
		if tc.p == 0 && len(doc.TraceEvents) != 0 {
			t.Errorf("%s: want zero events, got %d", tc.name, len(doc.TraceEvents))
		}
	}
}

// TestChromeTraceSingleRank checks a 1-rank world — which can never send or
// receive — still exports a valid document with its thread metadata and any
// compute slices.
func TestChromeTraceSingleRank(t *testing.T) {
	w := NewWorld(1, Config{Gamma: 1})
	tr := w.EnableTracing()
	if err := w.Run(func(r *Rank) { r.Compute(4) }); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, w.P()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var compute, thread bool
	for _, e := range doc.TraceEvents {
		compute = compute || e.Name == "compute"
		thread = thread || e.Name == "thread_name"
	}
	if !compute || !thread {
		t.Errorf("single-rank export missing compute slice (%v) or thread metadata (%v):\n%s", compute, thread, buf.String())
	}
}

// TestTraceNilAccessors checks the nil-trace accessors used by the export.
func TestTraceNilAccessors(t *testing.T) {
	var tr *Trace
	if got := tr.Events(); got != nil {
		t.Errorf("nil Events = %v", got)
	}
	if got := tr.Phases(); got != nil {
		t.Errorf("nil Phases = %v", got)
	}
}
