// Package matrix provides the dense linear-algebra substrate used by the
// parallel matrix multiplication simulator: a row-major dense matrix type,
// sequential and blocked shared-memory parallel multiplication kernels,
// balanced block partitioning of index ranges (the distribution logic used
// by every distributed algorithm), and small utilities (norms, comparisons,
// transposes, sub-block copies).
//
// The package is deliberately self-contained and uses only the standard
// library, playing the role that a BLAS implementation plays in the paper's
// experimental setting: it supplies the local computation whose communication
// the rest of the repository measures and bounds.
package matrix

import (
	"fmt"
	"math"
)

// Dense is a dense row-major matrix of float64 values.
//
// The zero value is an empty 0×0 matrix. Dense values returned by New share
// no storage with their inputs; views are created explicitly via Slice-like
// helpers that document their aliasing.
type Dense struct {
	rows, cols int
	// stride is the distance in Data between vertically adjacent elements;
	// stride == cols for freshly allocated matrices, but sub-matrix views
	// keep the parent's stride.
	stride int
	data   []float64
}

// New returns a zeroed r×c matrix.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, stride: c, data: make([]float64, r*c)}
}

// Wrap returns an r×c matrix value backed directly by data (no copy), which
// must hold exactly r*c elements in row-major order. The matrix aliases
// data: writes through either are visible in both, and the caller must keep
// data alive (and unrecycled) for the matrix's lifetime. Because Wrap
// returns a value rather than a pointer, hot paths can wrap pooled buffers
// without heap allocation.
func Wrap(r, c int, data []float64) Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("matrix: Wrap got %d elements for %dx%d", len(data), r, c))
	}
	return Dense{rows: r, cols: c, stride: c, data: data}
}

// NewFromSlice returns an r×c matrix backed by a copy of data, which must
// have exactly r*c elements in row-major order.
func NewFromSlice(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("matrix: NewFromSlice got %d elements for %dx%d", len(data), r, c))
	}
	d := New(r, c)
	copy(d.data, data)
	return d
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// Size returns the number of elements (rows × cols).
func (m *Dense) Size() int { return m.rows * m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.checkIndex(i, j)
	return m.data[i*m.stride+j]
}

// Set assigns v to the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.checkIndex(i, j)
	m.data[i*m.stride+j] = v
}

// Add adds v to the element at row i, column j.
func (m *Dense) Add(i, j int, v float64) {
	m.checkIndex(i, j)
	m.data[i*m.stride+j] += v
}

func (m *Dense) checkIndex(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range for %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns the i'th row as a slice. For contiguous matrices (and all
// views) the returned slice aliases the matrix storage.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of range for %dx%d", i, m.rows, m.cols))
	}
	return m.data[i*m.stride : i*m.stride+m.cols]
}

// View returns an r×c sub-matrix view starting at (i, j). The view aliases
// the receiver's storage: writes through the view are visible in m.
func (m *Dense) View(i, j, r, c int) *Dense {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > m.rows || j+c > m.cols {
		panic(fmt.Sprintf("matrix: view (%d,%d)+%dx%d out of range for %dx%d", i, j, r, c, m.rows, m.cols))
	}
	return &Dense{rows: r, cols: c, stride: m.stride, data: m.data[i*m.stride+j:]}
}

// Clone returns a deep copy of m with contiguous storage.
func (m *Dense) Clone() *Dense {
	out := New(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		copy(out.Row(i), m.Row(i))
	}
	return out
}

// CopyFrom copies src into m; dimensions must match exactly.
func (m *Dense) CopyFrom(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("matrix: CopyFrom shape mismatch %dx%d <- %dx%d", m.rows, m.cols, src.rows, src.cols))
	}
	for i := 0; i < m.rows; i++ {
		copy(m.Row(i), src.Row(i))
	}
}

// Zero sets every element of m to zero.
func (m *Dense) Zero() {
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
}

// Pack returns the elements of m in row-major order as a fresh contiguous
// slice. It is the serialization used when a matrix block travels through
// the simulated network.
func (m *Dense) Pack() []float64 {
	out := make([]float64, 0, m.rows*m.cols)
	for i := 0; i < m.rows; i++ {
		out = append(out, m.Row(i)...)
	}
	return out
}

// PackInto writes the elements of m in row-major order into dst, which
// must hold exactly Rows×Cols elements, and returns dst. It is the
// allocation-free variant of Pack for callers that recycle serialization
// buffers.
func (m *Dense) PackInto(dst []float64) []float64 {
	if len(dst) != m.rows*m.cols {
		panic(fmt.Sprintf("matrix: PackInto got %d elements for %dx%d", len(dst), m.rows, m.cols))
	}
	for i := 0; i < m.rows; i++ {
		copy(dst[i*m.cols:(i+1)*m.cols], m.Row(i))
	}
	return dst
}

// Unpack fills m from a row-major slice produced by Pack. The slice must
// hold exactly Rows×Cols elements.
func (m *Dense) Unpack(data []float64) {
	if len(data) != m.rows*m.cols {
		panic(fmt.Sprintf("matrix: Unpack got %d elements for %dx%d", len(data), m.rows, m.cols))
	}
	for i := 0; i < m.rows; i++ {
		copy(m.Row(i), data[i*m.cols:(i+1)*m.cols])
	}
}

// Transpose returns a newly allocated transpose of m.
func (m *Dense) Transpose() *Dense {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.data[j*out.stride+i] = v
		}
	}
	return out
}

// Scale multiplies every element of m by s in place.
func (m *Dense) Scale(s float64) {
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= s
		}
	}
}

// AddInto accumulates src into m element-wise; shapes must match.
func (m *Dense) AddInto(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("matrix: AddInto shape mismatch %dx%d += %dx%d", m.rows, m.cols, src.rows, src.cols))
	}
	for i := 0; i < m.rows; i++ {
		dst, s := m.Row(i), src.Row(i)
		for j := range dst {
			dst[j] += s[j]
		}
	}
}

// Equal reports whether m and other have identical shape and all elements
// within tol of each other.
func (m *Dense) Equal(other *Dense, tol float64) bool {
	if m.rows != other.rows || m.cols != other.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		a, b := m.Row(i), other.Row(i)
		for j := range a {
			if math.Abs(a[j]-b[j]) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute element-wise difference between m
// and other, which must have the same shape.
func (m *Dense) MaxAbsDiff(other *Dense) float64 {
	if m.rows != other.rows || m.cols != other.cols {
		panic(fmt.Sprintf("matrix: MaxAbsDiff shape mismatch %dx%d vs %dx%d", m.rows, m.cols, other.rows, other.cols))
	}
	max := 0.0
	for i := 0; i < m.rows; i++ {
		a, b := m.Row(i), other.Row(i)
		for j := range a {
			if d := math.Abs(a[j] - b[j]); d > max {
				max = d
			}
		}
	}
	return max
}

// FrobeniusNorm returns sqrt(sum of squared elements).
func (m *Dense) FrobeniusNorm() float64 {
	sum := 0.0
	for i := 0; i < m.rows; i++ {
		for _, v := range m.Row(i) {
			sum += v * v
		}
	}
	return math.Sqrt(sum)
}

// String renders small matrices for debugging; large matrices are elided.
func (m *Dense) String() string {
	const limit = 8
	if m.rows > limit || m.cols > limit {
		return fmt.Sprintf("Dense{%dx%d}", m.rows, m.cols)
	}
	s := ""
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			s += fmt.Sprintf("%8.3f ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}
