package matrix

// MulStrassen multiplies a and b with Strassen's algorithm (7
// multiplications per 2×2 block split, O(n^{log2 7}) ≈ O(n^{2.81}) scalar
// multiplications), recursing `levels` times before falling back to the
// blocked classical kernel. Inputs of any shape are padded to multiples of
// 2^levels and the result trimmed. It exists as the fast-matmul context of
// the paper's §2.3: memory-independent communication lower bounds for
// Strassen-like algorithms scale as n²/P^{2/ω0} with ω0 = log2 7 (Ballard
// et al. 2012b), versus n²/P^{2/3} classically; see core.FastMatmulLeading.
func MulStrassen(a, b *Dense, levels int) *Dense {
	if a.Cols() != b.Rows() {
		panic("matrix: MulStrassen inner dimension mismatch")
	}
	if levels < 0 {
		panic("matrix: MulStrassen negative levels")
	}
	if levels == 0 {
		return Mul(a, b)
	}
	unit := 1 << levels
	m := roundUp(a.Rows(), unit)
	k := roundUp(a.Cols(), unit)
	n := roundUp(b.Cols(), unit)
	ap := padTo(a, m, k)
	bp := padTo(b, k, n)
	cp := strassenRec(ap, bp, levels)
	out := New(a.Rows(), b.Cols())
	out.CopyFrom(cp.View(0, 0, a.Rows(), b.Cols()))
	return out
}

// StrassenFlops returns the number of scalar multiplications Strassen
// performs for an n×n×n product with the given recursion depth:
// 7^levels · (n/2^levels)³ — the quantity whose reduction lowers the
// fast-matmul communication bound.
func StrassenFlops(n, levels int) float64 {
	base := float64(n) / float64(int(1)<<levels)
	f := base * base * base
	for i := 0; i < levels; i++ {
		f *= 7
	}
	return f
}

func roundUp(n, unit int) int {
	if n%unit == 0 {
		return n
	}
	return (n/unit + 1) * unit
}

func padTo(m *Dense, r, c int) *Dense {
	if m.Rows() == r && m.Cols() == c {
		return m
	}
	out := New(r, c)
	out.View(0, 0, m.Rows(), m.Cols()).CopyFrom(m)
	return out
}

// strassenRec multiplies matrices whose dimensions are all even (guaranteed
// by padding) with one Strassen step per level.
func strassenRec(a, b *Dense, levels int) *Dense {
	if levels == 0 {
		return Mul(a, b)
	}
	mh := a.Rows() / 2
	kh := a.Cols() / 2
	nh := b.Cols() / 2
	a11 := a.View(0, 0, mh, kh)
	a12 := a.View(0, kh, mh, kh)
	a21 := a.View(mh, 0, mh, kh)
	a22 := a.View(mh, kh, mh, kh)
	b11 := b.View(0, 0, kh, nh)
	b12 := b.View(0, nh, kh, nh)
	b21 := b.View(kh, 0, kh, nh)
	b22 := b.View(kh, nh, kh, nh)

	add := func(x, y *Dense) *Dense {
		out := x.Clone()
		out.AddInto(y)
		return out
	}
	sub := func(x, y *Dense) *Dense {
		out := y.Clone()
		out.Scale(-1)
		out.AddInto(x)
		return out
	}

	m1 := strassenRec(add(a11, a22), add(b11, b22), levels-1)
	m2 := strassenRec(add(a21, a22), b11.Clone(), levels-1)
	m3 := strassenRec(a11.Clone(), sub(b12, b22), levels-1)
	m4 := strassenRec(a22.Clone(), sub(b21, b11), levels-1)
	m5 := strassenRec(add(a11, a12), b22.Clone(), levels-1)
	m6 := strassenRec(sub(a21, a11), add(b11, b12), levels-1)
	m7 := strassenRec(sub(a12, a22), add(b21, b22), levels-1)

	c := New(a.Rows(), b.Cols())
	c11 := c.View(0, 0, mh, nh)
	c12 := c.View(0, nh, mh, nh)
	c21 := c.View(mh, 0, mh, nh)
	c22 := c.View(mh, nh, mh, nh)
	// C11 = M1 + M4 − M5 + M7
	c11.CopyFrom(m1)
	c11.AddInto(m4)
	m5neg := m5.Clone()
	m5neg.Scale(-1)
	c11.AddInto(m5neg)
	c11.AddInto(m7)
	// C12 = M3 + M5
	c12.CopyFrom(m3)
	c12.AddInto(m5)
	// C21 = M2 + M4
	c21.CopyFrom(m2)
	c21.AddInto(m4)
	// C22 = M1 − M2 + M3 + M6
	c22.CopyFrom(m1)
	m2neg := m2.Clone()
	m2neg.Scale(-1)
	c22.AddInto(m2neg)
	c22.AddInto(m3)
	c22.AddInto(m6)
	return c
}
