package matrix

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 || m.Size() != 12 {
		t.Fatalf("shape = %dx%d size %d", m.Rows(), m.Cols(), m.Size())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestSetAtAdd(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 1, 3.5)
	m.Add(0, 1, 1.5)
	if got := m.At(0, 1); got != 5 {
		t.Fatalf("At(0,1) = %v, want 5", got)
	}
}

func TestIndexPanics(t *testing.T) {
	m := New(2, 2)
	for _, fn := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, -1) },
		func() { m.Set(-1, 0, 1) },
		func() { m.Row(5) },
		func() { m.View(1, 1, 2, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic for out-of-range access")
				}
			}()
			fn()
		}()
	}
}

func TestNewFromSliceAndPackRoundTrip(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	m := NewFromSlice(2, 3, data)
	if m.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v", m.At(1, 2))
	}
	packed := m.Pack()
	m2 := New(2, 3)
	m2.Unpack(packed)
	if !m.Equal(m2, 0) {
		t.Fatal("pack/unpack round trip changed values")
	}
}

func TestViewAliasesParent(t *testing.T) {
	m := Indexed(4, 5)
	v := m.View(1, 2, 2, 3)
	if v.At(0, 0) != m.At(1, 2) {
		t.Fatalf("view (0,0) = %v, want %v", v.At(0, 0), m.At(1, 2))
	}
	v.Set(1, 1, -99)
	if m.At(2, 3) != -99 {
		t.Fatal("write through view not visible in parent")
	}
	// Pack of a view must be row-major of just the view.
	p := v.Pack()
	if len(p) != 6 || p[4] != -99 {
		t.Fatalf("view pack = %v", p)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := Indexed(3, 3)
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) == 42 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestTranspose(t *testing.T) {
	m := Indexed(2, 3)
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		m := Random(5, 7, seed)
		return m.Transpose().Transpose().Equal(m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScaleAddInto(t *testing.T) {
	m := Indexed(2, 2)
	n := m.Clone()
	m.Scale(2)
	m.AddInto(n) // m = 3*original
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if m.At(i, j) != 3*n.At(i, j) {
				t.Fatalf("(%d,%d) = %v, want %v", i, j, m.At(i, j), 3*n.At(i, j))
			}
		}
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := NewFromSlice(1, 2, []float64{3, 4})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("norm = %v, want 5", got)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := NewFromSlice(1, 3, []float64{1, 2, 3})
	b := NewFromSlice(1, 3, []float64{1, 0.5, 3})
	if got := a.MaxAbsDiff(b); got != 1.5 {
		t.Fatalf("MaxAbsDiff = %v, want 1.5", got)
	}
}

func TestMulAgainstNaive(t *testing.T) {
	shapes := []struct{ m, n, k int }{
		{1, 1, 1}, {2, 3, 4}, {5, 5, 5}, {7, 1, 9}, {64, 64, 64},
		{65, 33, 17}, {100, 3, 100}, {3, 100, 3},
	}
	for _, s := range shapes {
		a := Random(s.m, s.n, uint64(s.m*1000+s.n))
		b := Random(s.n, s.k, uint64(s.n*1000+s.k))
		want := MulNaive(a, b)
		if got := Mul(a, b); !got.Equal(want, 1e-9) {
			t.Fatalf("Mul mismatch for %dx%dx%d: max diff %g", s.m, s.n, s.k, got.MaxAbsDiff(want))
		}
		if got := MulParallel(a, b, 4); !got.Equal(want, 1e-9) {
			t.Fatalf("MulParallel mismatch for %dx%dx%d", s.m, s.n, s.k)
		}
	}
}

func TestMulIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		a := Random(6, 6, seed)
		return Mul(a, Identity(6)).Equal(a, 1e-12) && Mul(Identity(6), a).Equal(a, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulAddAccumulates(t *testing.T) {
	a := Random(4, 5, 1)
	b := Random(5, 6, 2)
	c := Random(4, 6, 3)
	orig := c.Clone()
	MulAdd(c, a, b)
	prod := MulNaive(a, b)
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			want := orig.At(i, j) + prod.At(i, j)
			if math.Abs(c.At(i, j)-want) > 1e-9 {
				t.Fatalf("MulAdd (%d,%d) = %v, want %v", i, j, c.At(i, j), want)
			}
		}
	}
}

func TestMulIntoOverwritesDirtyDestination(t *testing.T) {
	shapes := []struct{ m, n, k int }{
		{1, 1, 1}, {4, 5, 6}, {65, 33, 17},
		// k > mulJBlock exercises the j-tiled path across a block boundary.
		{8, 40, 600},
	}
	for _, s := range shapes {
		a := Random(s.m, s.n, uint64(s.m*100+s.n))
		b := Random(s.n, s.k, uint64(s.n*100+s.k))
		want := Mul(a, b)
		c := Random(s.m, s.k, 99) // dirty destination must be ignored
		if got := c.MulInto(a, b); got != c {
			t.Fatalf("MulInto must return its receiver")
		}
		// Bit-identical to Mul: the tiling must not reorder any summation.
		for i := 0; i < s.m; i++ {
			for j := 0; j < s.k; j++ {
				if c.At(i, j) != want.At(i, j) {
					t.Fatalf("MulInto (%d,%d) = %v, Mul gives %v (shape %dx%dx%d)",
						i, j, c.At(i, j), want.At(i, j), s.m, s.n, s.k)
				}
			}
		}
		if !c.Equal(MulNaive(a, b), 1e-9) {
			t.Fatalf("MulInto diverges from naive oracle for %dx%dx%d", s.m, s.n, s.k)
		}
	}
}

func TestMulIntoValMatchesMulInto(t *testing.T) {
	a := Random(20, 30, 5)
	b := Random(30, 40, 6)
	want := Mul(a, b)
	for _, workers := range []int{1, 4} {
		buf := make([]float64, 20*40)
		for i := range buf {
			buf[i] = -1 // dirty
		}
		c := Wrap(20, 40, buf)
		MulIntoVal(c, Wrap(20, 30, a.Pack()), Wrap(30, 40, b.Pack()), workers)
		if !c.Equal(want, 0) {
			t.Fatalf("MulIntoVal(workers=%d) mismatch: max diff %g", workers, c.MaxAbsDiff(want))
		}
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inner dimension mismatch")
		}
	}()
	Mul(New(2, 3), New(4, 2))
}

func TestMulParallelWorkerCounts(t *testing.T) {
	a := Random(33, 20, 7)
	b := Random(20, 29, 8)
	want := MulNaive(a, b)
	for _, w := range []int{-1, 0, 1, 2, 3, 16, 100} {
		if got := MulParallel(a, b, w); !got.Equal(want, 1e-9) {
			t.Fatalf("MulParallel(workers=%d) mismatch", w)
		}
	}
}

// BenchmarkMulInto measures the tiled local kernel that backs the simulated
// ranks' local compute; sizes straddle the mulJBlock boundary so the j-tiled
// path is exercised.
func BenchmarkMulInto(b *testing.B) {
	for _, n := range []int{128, 384, 768} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			x := Random(n, n, 1)
			y := Random(n, n, 2)
			c := New(n, n)
			b.SetBytes(int64(8 * n * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.MulInto(x, y)
			}
		})
	}
}

func TestPartitionBalanced(t *testing.T) {
	cases := []struct{ n, p int }{{10, 3}, {10, 10}, {10, 1}, {3, 7}, {0, 4}, {100, 7}}
	for _, c := range cases {
		segs := Partition(c.n, c.p)
		if len(segs) != c.p {
			t.Fatalf("Partition(%d,%d) produced %d segments", c.n, c.p, len(segs))
		}
		total, prev := 0, 0
		minLen, maxLen := c.n+1, -1
		for i, s := range segs {
			if s.Lo != prev {
				t.Fatalf("Partition(%d,%d): segment %d starts at %d, want %d", c.n, c.p, i, s.Lo, prev)
			}
			if s.Len() < 0 {
				t.Fatalf("negative segment %v", s)
			}
			if s.Len() < minLen {
				minLen = s.Len()
			}
			if s.Len() > maxLen {
				maxLen = s.Len()
			}
			total += s.Len()
			prev = s.Hi
		}
		if total != c.n {
			t.Fatalf("Partition(%d,%d) covers %d indices", c.n, c.p, total)
		}
		if maxLen-minLen > 1 {
			t.Fatalf("Partition(%d,%d) unbalanced: min %d max %d", c.n, c.p, minLen, maxLen)
		}
	}
}

func TestPartSizeStartAgreeWithPartition(t *testing.T) {
	f := func(nRaw, pRaw uint8) bool {
		n := int(nRaw)
		p := int(pRaw)%16 + 1
		segs := Partition(n, p)
		for i, s := range segs {
			if PartSize(n, p, i) != s.Len() || PartStart(n, p, i) != s.Lo {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockOfSetBlockRoundTrip(t *testing.T) {
	m := Indexed(10, 13)
	out := New(10, 13)
	pr, pc := 3, 4
	for i := 0; i < pr; i++ {
		for j := 0; j < pc; j++ {
			SetBlock(out, pr, pc, i, j, BlockOf(m, pr, pc, i, j))
		}
	}
	if !out.Equal(m, 0) {
		t.Fatal("reassembling blocks did not reproduce the matrix")
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(8, 8, 42)
	b := Random(8, 8, 42)
	c := Random(8, 8, 43)
	if !a.Equal(b, 0) {
		t.Fatal("same seed produced different matrices")
	}
	if a.Equal(c, 0) {
		t.Fatal("different seeds produced identical matrices")
	}
	for i := 0; i < 8; i++ {
		for _, v := range a.Row(i) {
			if v < -1 || v >= 1 {
				t.Fatalf("Random value %v outside [-1,1)", v)
			}
		}
	}
}

func TestIndexedEncodesPosition(t *testing.T) {
	m := Indexed(3, 4)
	if m.At(2, 3) != 12 || m.At(0, 0) != 1 {
		t.Fatalf("Indexed values wrong: %v %v", m.At(0, 0), m.At(2, 3))
	}
}

func TestZero(t *testing.T) {
	m := Indexed(3, 3)
	m.Zero()
	if m.FrobeniusNorm() != 0 {
		t.Fatal("Zero left nonzero elements")
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	if s := New(2, 2).String(); len(s) == 0 {
		t.Fatal("empty String for small matrix")
	}
	if s := New(100, 100).String(); s != "Dense{100x100}" {
		t.Fatalf("large matrix String = %q", s)
	}
}
