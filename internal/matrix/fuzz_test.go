package matrix

import "testing"

// FuzzStrassenMatchesClassical fuzzes shapes, seeds, and recursion depths:
// Strassen must agree with the classical product everywhere.
func FuzzStrassenMatchesClassical(f *testing.F) {
	f.Add(uint8(8), uint8(8), uint8(8), uint8(2), uint64(1))
	f.Add(uint8(7), uint8(9), uint8(5), uint8(1), uint64(2))
	f.Add(uint8(1), uint8(1), uint8(1), uint8(3), uint64(3))
	f.Fuzz(func(t *testing.T, mRaw, kRaw, nRaw, lRaw uint8, seed uint64) {
		m := int(mRaw%24) + 1
		k := int(kRaw%24) + 1
		n := int(nRaw%24) + 1
		levels := int(lRaw % 4)
		a := Random(m, k, seed)
		b := Random(k, n, seed+1)
		want := Mul(a, b)
		got := MulStrassen(a, b, levels)
		if diff := got.MaxAbsDiff(want); diff > 1e-9*float64(k+1)*float64(uint(1)<<uint(levels)) {
			t.Fatalf("%dx%dx%d levels=%d: max diff %g", m, k, n, levels, diff)
		}
	})
}

// FuzzPartitionInvariants fuzzes the balanced partition helpers.
func FuzzPartitionInvariants(f *testing.F) {
	f.Add(uint16(10), uint8(3))
	f.Add(uint16(0), uint8(1))
	f.Fuzz(func(t *testing.T, nRaw uint16, pRaw uint8) {
		n := int(nRaw % 1000)
		p := int(pRaw%32) + 1
		segs := Partition(n, p)
		total := 0
		for i, s := range segs {
			if s.Lo != PartStart(n, p, i) || s.Len() != PartSize(n, p, i) {
				t.Fatal("PartStart/PartSize disagree with Partition")
			}
			total += s.Len()
		}
		if total != n {
			t.Fatalf("partition covers %d of %d", total, n)
		}
	})
}
