package matrix

// splitMix64 is a tiny deterministic PRNG (SplitMix64) used to fill test and
// benchmark matrices reproducibly without importing math/rand, so that the
// same seed yields identical matrices on every platform and Go version.
type splitMix64 struct{ state uint64 }

func (s *splitMix64) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (s *splitMix64) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// Random returns an r×c matrix with deterministic pseudo-random entries in
// [-1, 1) derived from seed.
func Random(r, c int, seed uint64) *Dense {
	rng := splitMix64{state: seed}
	m := New(r, c)
	for i := 0; i < r; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = 2*rng.float64() - 1
		}
	}
	return m
}

// Indexed returns an r×c matrix whose (i, j) entry encodes its coordinates
// as i*cols+j+1. Useful in tests for checking data placement: every element
// value identifies its global position.
func Indexed(r, c int) *Dense {
	m := New(r, c)
	for i := 0; i < r; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = float64(i*c + j + 1)
		}
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}
