package matrix

import (
	"fmt"
	"runtime"
	"sync"
)

// mulBlock is the cache-blocking tile edge used by the blocked kernels. The
// exact value only affects local wall-clock performance, never the simulated
// communication costs that the rest of the repository studies.
const mulBlock = 64

// mulJBlock tiles the j (output-column) dimension so the b-panel and c-row
// segments touched by one (i,k) tile stay L2-resident even when b has many
// columns: the working set per tile is bounded by mulBlock·mulJBlock words
// instead of mulBlock·b.cols. Tiling j never reorders the per-element
// k-summation, so results stay bit-identical to the untiled kernel.
const mulJBlock = 512

// Mul returns the product a·b using the blocked sequential kernel.
// It panics if the inner dimensions disagree.
func Mul(a, b *Dense) *Dense {
	c := New(a.rows, b.cols)
	MulAdd(c, a, b)
	return c
}

// MulAdd computes c += a·b with a blocked i-k-j loop order that keeps the
// innermost loop streaming over contiguous rows of b and c.
func MulAdd(c, a, b *Dense) {
	checkMulShapes(c, a, b)
	mulAddRange(c, a, b, 0, a.rows)
}

// mulAddRange accumulates rows [i0, i1) of the product into c with a blocked
// i-k-j loop nest, tiled over all three dimensions. For each output element
// the k-summands are added in ascending k order — the j tiling only narrows
// which columns an (i,k) tile updates — so the floating-point result is
// independent of the tile sizes.
func mulAddRange(c, a, b *Dense, i0, i1 int) {
	n2 := a.cols
	n3 := b.cols
	for ib := i0; ib < i1; ib += mulBlock {
		iMax := min(ib+mulBlock, i1)
		for jb := 0; jb < n3; jb += mulJBlock {
			jMax := min(jb+mulJBlock, n3)
			for kb := 0; kb < n2; kb += mulBlock {
				kMax := min(kb+mulBlock, n2)
				for i := ib; i < iMax; i++ {
					arow := a.Row(i)
					crow := c.Row(i)[jb:jMax]
					for k := kb; k < kMax; k++ {
						aik := arow[k]
						if aik == 0 {
							continue
						}
						brow := b.Row(k)[jb:jMax]
						for j, bv := range brow {
							crow[j] += aik * bv
						}
					}
				}
			}
		}
	}
}

// MulInto computes c = a·b with the blocked kernel, reusing c's existing
// storage (c is zeroed first), and returns c. It is the allocation-free
// counterpart of Mul for callers that hold a destination — typically a
// pooled buffer wrapped with Wrap — and panics on shape mismatch.
func (c *Dense) MulInto(a, b *Dense) *Dense {
	checkMulShapes(c, a, b)
	c.Zero()
	mulAddRange(c, a, b, 0, a.rows)
	return c
}

// MulIntoVal is MulInto on matrix values (typically Wrap-ped pooled
// buffers): like MulAddVal, the sequential path keeps the headers on the
// caller's stack, and workers > 1 delegates to the parallel kernel.
func MulIntoVal(c, a, b Dense, workers int) {
	checkMulShapes(&c, &a, &b)
	c.Zero()
	if workers > 1 {
		mulAddParallelCopy(c, a, b, workers)
		return
	}
	mulAddRange(&c, &a, &b, 0, a.rows)
}

// MulParallel returns a·b computed with up to workers goroutines splitting
// the row range of the output. workers <= 0 selects GOMAXPROCS.
func MulParallel(a, b *Dense, workers int) *Dense {
	c := New(a.rows, b.cols)
	MulAddParallel(c, a, b, workers)
	return c
}

// MulAddParallel computes c += a·b in parallel over disjoint row bands of c,
// so no synchronization beyond the final join is needed.
func MulAddParallel(c, a, b *Dense, workers int) {
	checkMulShapes(c, a, b)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > a.rows {
		workers = a.rows
	}
	if workers <= 1 {
		mulAddRange(c, a, b, 0, a.rows)
		return
	}
	var wg sync.WaitGroup
	for _, seg := range Partition(a.rows, workers) {
		if seg.Len() == 0 {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulAddRange(c, a, b, lo, hi)
		}(seg.Lo, seg.Hi)
	}
	wg.Wait()
}

// MulAddVal is MulAdd on matrix values (typically Wrap-ped pooled buffers):
// because the sequential path never lets the headers reach a goroutine
// closure, escape analysis keeps them on the caller's stack. workers > 1
// delegates to the parallel kernel, paying the three header allocations
// only on that branch.
func MulAddVal(c, a, b Dense, workers int) {
	if workers > 1 {
		mulAddParallelCopy(c, a, b, workers)
		return
	}
	checkMulShapes(&c, &a, &b)
	mulAddRange(&c, &a, &b, 0, a.rows)
}

// mulAddParallelCopy hands fresh header copies to MulAddParallel. It must
// not be inlined: inlining would merge its escaping copies into MulAddVal's
// frame and force the sequential path's headers onto the heap too.
//
//go:noinline
func mulAddParallelCopy(c, a, b Dense, workers int) {
	MulAddParallel(&c, &a, &b, workers)
}

// MulNaive is the unblocked triple loop, kept as an independent oracle for
// testing the optimized kernels.
func MulNaive(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("matrix: Mul inner dimension mismatch %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	c := New(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < b.cols; j++ {
			sum := 0.0
			for k := 0; k < a.cols; k++ {
				sum += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, sum)
		}
	}
	return c
}

func checkMulShapes(c, a, b *Dense) {
	if a.cols != b.rows {
		panic(fmt.Sprintf("matrix: Mul inner dimension mismatch %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	if c.rows != a.rows || c.cols != b.cols {
		panic(fmt.Sprintf("matrix: Mul output shape %dx%d for %dx%d · %dx%d", c.rows, c.cols, a.rows, a.cols, b.rows, b.cols))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
