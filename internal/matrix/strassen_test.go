package matrix

import (
	"math"
	"testing"
)

func TestMulStrassenMatchesClassical(t *testing.T) {
	cases := []struct{ m, k, n, levels int }{
		{8, 8, 8, 1}, {8, 8, 8, 2}, {8, 8, 8, 3},
		{16, 16, 16, 2},
		{7, 9, 5, 2},   // odd dims, padded
		{1, 1, 1, 3},   // degenerate
		{32, 8, 16, 2}, // rectangular
		{20, 20, 20, 0},
	}
	for _, c := range cases {
		a := Random(c.m, c.k, uint64(c.m*100+c.k))
		b := Random(c.k, c.n, uint64(c.k*100+c.n))
		want := Mul(a, b)
		got := MulStrassen(a, b, c.levels)
		if diff := got.MaxAbsDiff(want); diff > 1e-9*float64(c.k+1) {
			t.Errorf("Strassen %dx%dx%d levels=%d: max diff %g", c.m, c.k, c.n, c.levels, diff)
		}
	}
}

func TestMulStrassenPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { MulStrassen(New(2, 3), New(4, 2), 1) },
		func() { MulStrassen(New(2, 2), New(2, 2), -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestStrassenFlops(t *testing.T) {
	// levels=0: classical n³.
	if StrassenFlops(8, 0) != 512 {
		t.Fatalf("flops(8,0) = %v", StrassenFlops(8, 0))
	}
	// One level: 7·(n/2)³ = 7/8 of classical.
	if got, want := StrassenFlops(8, 1), 7.0*64; got != want {
		t.Fatalf("flops(8,1) = %v, want %v", got, want)
	}
	// Full recursion on n=2^L: 7^L, the n^{log2 7} law.
	if got, want := StrassenFlops(8, 3), math.Pow(7, 3); got != want {
		t.Fatalf("flops(8,3) = %v, want %v", got, want)
	}
	// Strassen beats classical asymptotically.
	if StrassenFlops(1024, 5) >= StrassenFlops(1024, 0) {
		t.Fatal("recursion should reduce multiplications")
	}
}
