package matrix

import "fmt"

// Segment is a half-open index range [Lo, Hi) describing one part of a
// balanced 1D block partition.
type Segment struct {
	Lo, Hi int
}

// Len returns the number of indices in the segment.
func (s Segment) Len() int { return s.Hi - s.Lo }

// Partition splits the index range [0, n) into p contiguous segments whose
// lengths differ by at most one: the first n mod p segments get ceil(n/p)
// indices, the rest floor(n/p). It is the canonical block distribution used
// by every distributed algorithm in this repository, and it degrades
// gracefully when p does not divide n (segments may be empty when p > n).
func Partition(n, p int) []Segment {
	if n < 0 || p <= 0 {
		panic(fmt.Sprintf("matrix: Partition(%d, %d)", n, p))
	}
	segs := make([]Segment, p)
	q, r := n/p, n%p
	lo := 0
	for i := range segs {
		length := q
		if i < r {
			length++
		}
		segs[i] = Segment{Lo: lo, Hi: lo + length}
		lo += length
	}
	return segs
}

// PartSize returns the length of segment i of Partition(n, p) without
// materializing the slice.
func PartSize(n, p, i int) int {
	if i < 0 || i >= p {
		panic(fmt.Sprintf("matrix: PartSize index %d of %d", i, p))
	}
	q, r := n/p, n%p
	if i < r {
		return q + 1
	}
	return q
}

// PartStart returns the starting index of segment i of Partition(n, p).
func PartStart(n, p, i int) int {
	if i < 0 || i >= p {
		panic(fmt.Sprintf("matrix: PartStart index %d of %d", i, p))
	}
	q, r := n/p, n%p
	if i < r {
		return i * (q + 1)
	}
	return r*(q+1) + (i-r)*q
}

// BlockOf returns the (i, j) block of m under a pr×pc balanced 2D block
// partition, as a copy with contiguous storage.
func BlockOf(m *Dense, pr, pc, i, j int) *Dense {
	r0 := PartStart(m.Rows(), pr, i)
	c0 := PartStart(m.Cols(), pc, j)
	return m.View(r0, c0, PartSize(m.Rows(), pr, i), PartSize(m.Cols(), pc, j)).Clone()
}

// BlockView returns block (i, j) of the balanced pr×pc partition of m as a
// view value: it aliases m's storage without copying or allocating. The
// allocation-free counterpart of BlockOf for read-only block access.
func BlockView(m *Dense, pr, pc, i, j int) Dense {
	r0 := PartStart(m.Rows(), pr, i)
	c0 := PartStart(m.Cols(), pc, j)
	r := PartSize(m.Rows(), pr, i)
	c := PartSize(m.Cols(), pc, j)
	return Dense{rows: r, cols: c, stride: m.stride, data: m.data[r0*m.stride+c0:]}
}

// SetBlock copies block into position (i, j) of the pr×pc balanced 2D block
// partition of m.
func SetBlock(m *Dense, pr, pc, i, j int, block *Dense) {
	r0 := PartStart(m.Rows(), pr, i)
	c0 := PartStart(m.Cols(), pc, j)
	m.View(r0, c0, block.Rows(), block.Cols()).CopyFrom(block)
}
