package extension

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/machine"
)

func TestNewProblemValidation(t *testing.T) {
	if _, err := NewProblem(4); err == nil {
		t.Fatal("expected error for d=1")
	}
	if _, err := NewProblem(4, 0, 3); err == nil {
		t.Fatal("expected error for zero dim")
	}
	pr, err := NewProblem(2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pr.D() != 3 || pr.Volume() != 24 {
		t.Fatalf("problem metadata: %+v", pr)
	}
	if pr.ArraySize(0) != 12 || pr.ArraySize(2) != 6 || pr.TotalWords() != 26 {
		t.Fatalf("array sizes wrong")
	}
}

// TestD3ReducesToTheorem3: for d = 3 the generalized bound is exactly the
// paper's Theorem 3.
func TestD3ReducesToTheorem3(t *testing.T) {
	f := func(aRaw, bRaw, cRaw, pRaw uint8) bool {
		n1, n2, n3 := int(aRaw%50)+1, int(bRaw%50)+1, int(cRaw%50)+1
		p := int(pRaw) + 1
		pr, err := NewProblem(n1, n2, n3)
		if err != nil {
			return false
		}
		want := core.LowerBound(core.NewDims(n1, n2, n3), p)
		got := pr.LowerBound(p)
		return math.Abs(got-want) <= 1e-9*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestCaseStructureGeneralizes: the number of free variables plays the
// role of the paper's case index, growing with P.
func TestCaseStructureGeneralizes(t *testing.T) {
	pr, _ := NewProblem(512, 64, 16, 16)
	prevFree := 0
	for _, p := range []int{1, 2, 8, 64, 4096, 1 << 16} {
		_, free := pr.DataFootprint(p)
		if free < prevFree {
			t.Errorf("free variables decreased: %d -> %d at P=%d", prevFree, free, p)
		}
		prevFree = free
	}
	if prevFree != 4 {
		t.Errorf("large P should free all 4 variables, got %d", prevFree)
	}
}

func TestKKTCertificateGeneral(t *testing.T) {
	for _, dims := range [][]int{{8, 8, 8}, {64, 8, 4, 2}, {32, 32, 32, 32, 32}} {
		pr, err := NewProblem(dims...)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{1, 4, 16, 256, 4096} {
			if r := pr.KKTCertificate(p); r > 1e-9 {
				t.Errorf("dims %v P=%d: KKT residual %g", dims, p, r)
			}
		}
	}
}

func TestGridRoundTripAndFibers(t *testing.T) {
	g := NewGrid(2, 3, 2, 2)
	if g.Size() != 24 || g.String() != "2x3x2x2" {
		t.Fatalf("grid metadata: %v size %d", g, g.Size())
	}
	for r := 0; r < g.Size(); r++ {
		if got := g.Rank(g.Coords(r)); got != r {
			t.Fatalf("round trip %d -> %d", r, got)
		}
	}
	fiber := g.Fiber(g.Rank([]int{1, 2, 0, 1}), 1)
	if len(fiber) != 3 {
		t.Fatalf("fiber length %d", len(fiber))
	}
	for v, r := range fiber {
		c := g.Coords(r)
		if c[1] != v || c[0] != 1 || c[2] != 0 || c[3] != 1 {
			t.Fatalf("fiber member %d has coords %v", v, c)
		}
	}
}

func TestCommCostMatchesBoundOnOptimalGrid(t *testing.T) {
	// d=4 cube with P=16: optimal grid 2x2x2x2, bound attained.
	pr, _ := NewProblem(8, 8, 8, 8)
	g := Optimal(pr, 16)
	if g.Size() != 16 {
		t.Fatalf("optimal grid %v", g)
	}
	cost := CommCost(pr, g)
	bound := pr.LowerBound(16)
	if math.Abs(cost-bound) > 1e-9 {
		t.Fatalf("cost %v, bound %v (grid %v)", cost, bound, g)
	}
	if !Divides(pr, g) {
		t.Fatalf("grid %v should divide", g)
	}
}

func TestOptimalNeverBeatsBound(t *testing.T) {
	f := func(aRaw, bRaw, cRaw, dRaw, pRaw uint8) bool {
		dims := []int{int(aRaw%16) + 1, int(bRaw%16) + 1, int(cRaw%16) + 1, int(dRaw%16) + 1}
		p := int(pRaw)%32 + 1
		pr, err := NewProblem(dims...)
		if err != nil {
			return false
		}
		g := Optimal(pr, p)
		return g.Size() == p && CommCost(pr, g) >= pr.LowerBound(p)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSerialMatchesMatmulSemantics(t *testing.T) {
	// d=3: Out[i0,i1] += In0[i1,i2]·In1[i0,i2]; verify one entry by hand.
	pr, _ := NewProblem(2, 2, 2)
	a := Serial(pr, 5)
	in0, in1, out := a.Data[0], a.Data[1], a.Data[2]
	// Out[0,0] = Σ_{i2} In0[0·2+i2]·In1[0·2+i2]
	want := in0[0]*in1[0] + in0[1]*in1[1]
	if math.Abs(out[0]-want) > 1e-12 {
		t.Fatalf("out[0] = %v, want %v", out[0], want)
	}
}

func TestRunMatchesSerial(t *testing.T) {
	cases := []struct {
		dims []int
		grid []int
	}{
		{[]int{6, 6, 6}, []int{2, 1, 3}},
		{[]int{8, 8, 8, 8}, []int{2, 2, 2, 2}},
		{[]int{5, 7, 3, 4}, []int{2, 2, 1, 2}}, // non-dividing
		{[]int{4, 4}, []int{2, 2}},             // degenerate d=2
		{[]int{6, 5, 4, 3, 2}, []int{2, 1, 2, 1, 1}},
	}
	for _, c := range cases {
		pr, err := NewProblem(c.dims...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(pr, NewGrid(c.grid...), 9, machine.BandwidthOnly())
		if err != nil {
			t.Fatalf("dims %v grid %v: %v", c.dims, c.grid, err)
		}
		want := Serial(pr, 9)
		out := want.Data[pr.D()-1]
		if len(res.Output) != len(out) {
			t.Fatalf("dims %v: output length %d, want %d", c.dims, len(res.Output), len(out))
		}
		for i := range out {
			if math.Abs(res.Output[i]-out[i]) > 1e-9 {
				t.Fatalf("dims %v grid %v: output[%d] = %v, want %v", c.dims, c.grid, i, res.Output[i], out[i])
			}
		}
	}
}

// TestRunAttainsGeneralBound is the §6.3 tightness result one dimension
// up: the simulated d=4 algorithm on the optimal dividing grid moves
// exactly the generalized lower bound.
func TestRunAttainsGeneralBound(t *testing.T) {
	pr, _ := NewProblem(8, 8, 8, 8)
	g := Optimal(pr, 16)
	res, err := Run(pr, g, 3, machine.BandwidthOnly())
	if err != nil {
		t.Fatal(err)
	}
	bound := pr.LowerBound(16)
	if math.Abs(res.Stats.CommCost()-bound) > 1e-9 {
		t.Fatalf("measured %v, bound %v", res.Stats.CommCost(), bound)
	}
}

func TestRunGridValidation(t *testing.T) {
	pr, _ := NewProblem(4, 4, 4)
	if _, err := Run(pr, NewGrid(2, 2), 1, machine.BandwidthOnly()); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
	if _, err := Run(pr, NewGrid(8, 1, 1), 1, machine.BandwidthOnly()); err == nil {
		t.Fatal("expected grid-exceeds-dims error")
	}
}

func TestGridPanics(t *testing.T) {
	g := NewGrid(2, 2)
	for _, fn := range []func(){
		func() { g.Rank([]int{1}) },
		func() { g.Rank([]int{2, 0}) },
		func() { g.Coords(4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
