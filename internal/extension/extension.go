// Package extension implements the paper's §6.3 program: the lower-bound
// technique of Theorem 3 — a sum-of-projections objective constrained by a
// Loomis-Whitney product inequality plus per-array access bounds — applied
// beyond matrix multiplication, to any computation whose iteration space is
// a d-dimensional cuboid N_0 × … × N_{d-1} with one array per omitted
// dimension (array j is indexed by every index except i_j). Classical
// matrix multiplication is the d = 3 instance; d = 4 covers three-input
// multilinear kernels of the kind studied for tensors by Ballard and Rouse
// (cited in §6.3 as the adjacent development).
//
// For such a computation, the d-dimensional Loomis-Whitney inequality gives
// |V|^{d-1} ≤ Π_j |φ_j(V)|, and the Lemma 1 argument gives
// |φ_j(V)| ≥ (Π N / N_j)/P for any processor performing a 1/P share, so
// the per-processor data footprint is lower-bounded by the optimum of
//
//	min Σ x_j   s.t.   Π x_j ≥ (ΠN/P)^{d-1},  x_j ≥ (ΠN/N_j)/P,
//
// solved in closed form by the water-filling solver of internal/kkt. The
// package also provides d-dimensional processor grids, the eq. (3)
// generalization, exhaustive optimal-grid search, and a simulated
// All-Gather/Reduce-Scatter algorithm (the Algorithm 1 generalization) that
// attains the bound exactly on dividing grids — reproducing the paper's
// tightness story one dimension up.
package extension

import (
	"fmt"

	"repro/internal/kkt"
)

// Problem is a d-dimensional cuboid computation: for every lattice point
// (i_0, …, i_{d-1}) of the N_0 × … × N_{d-1} iteration space, the values of
// the d−1 input arrays at the point's projections are multiplied and
// accumulated into the output array (array d−1). Array j omits index j.
type Problem struct {
	// N holds the iteration-space dimensions; len(N) ≥ 2.
	N []int
}

// NewProblem validates and constructs a Problem.
func NewProblem(dims ...int) (Problem, error) {
	if len(dims) < 2 {
		return Problem{}, fmt.Errorf("extension: need at least 2 dimensions, got %d", len(dims))
	}
	for _, n := range dims {
		if n <= 0 {
			return Problem{}, fmt.Errorf("extension: dimensions must be positive, got %v", dims)
		}
	}
	n := make([]int, len(dims))
	copy(n, dims)
	return Problem{N: n}, nil
}

// D returns the order (number of iteration-space dimensions).
func (pr Problem) D() int { return len(pr.N) }

// Volume returns Π N_j, the number of elementary multiply-accumulates.
func (pr Problem) Volume() float64 {
	v := 1.0
	for _, n := range pr.N {
		v *= float64(n)
	}
	return v
}

// ArraySize returns the number of words of array j: Π_{i≠j} N_i.
func (pr Problem) ArraySize(j int) float64 {
	if j < 0 || j >= len(pr.N) {
		panic(fmt.Sprintf("extension: array %d of %d", j, len(pr.N)))
	}
	return pr.Volume() / float64(pr.N[j])
}

// TotalWords returns Σ_j Π_{i≠j} N_i, the one-copy footprint of all arrays.
func (pr Problem) TotalWords() float64 {
	t := 0.0
	for j := range pr.N {
		t += pr.ArraySize(j)
	}
	return t
}

// Optimization returns the §6.3 generalization of Lemma 2's problem for
// this computation on p processors.
func (pr Problem) Optimization(p int) kkt.ProductMin {
	d := len(pr.N)
	fp := float64(p)
	lower := make(kkt.Vector, d)
	for j := range lower {
		lower[j] = pr.ArraySize(j) / fp
	}
	l := 1.0
	share := pr.Volume() / fp
	for i := 0; i < d-1; i++ {
		l *= share
	}
	return kkt.ProductMin{L: l, Lower: lower}
}

// DataFootprint returns the generalized D: the minimum total per-processor
// data footprint (the optimization's optimum), together with the number of
// "free" variables — the generalization of the paper's case index (d free
// variables is the fully 3D-like regime; fewer means some arrays are
// pinned at their access bounds, the 1D/2D-like regimes).
func (pr Problem) DataFootprint(p int) (foot float64, freeVars int) {
	x, free := pr.Optimization(p).Solve()
	return x.Sum(), free
}

// LowerBound returns the memory-independent communication lower bound in
// words per processor: DataFootprint − TotalWords/P, the Theorem 3
// generalization.
func (pr Problem) LowerBound(p int) float64 {
	foot, _ := pr.DataFootprint(p)
	return foot - pr.TotalWords()/float64(p)
}

// KKTCertificate verifies optimality of the water-filling solution via the
// generic dual construction, returning the maximum residual (≈ 0 up to
// floating point; Lemma 6's sufficiency applies since the objective is
// affine and the constraints are quasiconvex in any dimension — Lemma 5's
// AM-GM argument is dimension-free).
func (pr Problem) KKTCertificate(p int) float64 {
	prob := pr.Optimization(p)
	pt := prob.DualCertificate()
	res := prob.Problem().Check(pt)
	scale := 1 + prob.L
	r := res.PrimalFeasibility / scale
	if v := res.ComplementarySlackness / scale; v > r {
		r = v
	}
	if res.DualFeasibility > r {
		r = res.DualFeasibility
	}
	if res.Stationarity > r {
		r = res.Stationarity
	}
	return r
}
