package extension

import (
	"math"
	"testing"

	"repro/internal/machine"
)

// FuzzRunMatchesSerial fuzzes dimensions, grids, and seeds of the
// d-dimensional generalized algorithm against the serial reference, and
// checks the generalized bound is never beaten.
func FuzzRunMatchesSerial(f *testing.F) {
	f.Add(uint8(4), uint8(4), uint8(4), uint8(3), uint8(2), uint8(1), uint8(2), uint64(1))
	f.Add(uint8(5), uint8(3), uint8(2), uint8(4), uint8(1), uint8(2), uint8(1), uint64(9))
	f.Fuzz(func(t *testing.T, aRaw, bRaw, cRaw, dRaw, g1Raw, g2Raw, g3Raw uint8, seed uint64) {
		dims := []int{int(aRaw%6) + 1, int(bRaw%6) + 1, int(cRaw%6) + 1, int(dRaw%6) + 1}
		gdims := []int{int(g1Raw%3) + 1, int(g2Raw%3) + 1, int(g3Raw%3) + 1, 1}
		for i := range gdims {
			if gdims[i] > dims[i] {
				gdims[i] = 1
			}
		}
		pr, err := NewProblem(dims...)
		if err != nil {
			t.Fatal(err)
		}
		g := NewGrid(gdims...)
		res, err := Run(pr, g, seed, machine.BandwidthOnly())
		if err != nil {
			t.Fatal(err)
		}
		want := Serial(pr, seed).Data[pr.D()-1]
		for i := range want {
			if math.Abs(res.Output[i]-want[i]) > 1e-9 {
				t.Fatalf("dims %v grid %v: output[%d] = %v, want %v", dims, gdims, i, res.Output[i], want[i])
			}
		}
		if res.Stats.CommCost() < pr.LowerBound(g.Size())-1e-9 {
			t.Fatalf("dims %v grid %v: volume %v beats bound %v", dims, gdims, res.Stats.CommCost(), pr.LowerBound(g.Size()))
		}
	})
}
