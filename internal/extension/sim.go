package extension

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/machine"
	"repro/internal/matrix"
)

// Arrays holds the flat storage of the d arrays of a Problem: Arrays[j] is
// array j (indexed by all dimensions except j, row-major in increasing
// dimension order).
type Arrays struct {
	pr   Problem
	Data [][]float64
}

// NewArrays allocates zeroed arrays for pr.
func NewArrays(pr Problem) *Arrays {
	a := &Arrays{pr: pr, Data: make([][]float64, pr.D())}
	for j := range a.Data {
		a.Data[j] = make([]float64, int(pr.ArraySize(j)))
	}
	return a
}

// Randomize fills the input arrays (0..d−2) with deterministic values and
// zeroes the output.
func (a *Arrays) Randomize(seed uint64) {
	for j := 0; j < a.pr.D()-1; j++ {
		m := matrix.Random(1, len(a.Data[j]), seed+uint64(j))
		copy(a.Data[j], m.Row(0))
	}
	for i := range a.Data[a.pr.D()-1] {
		a.Data[a.pr.D()-1][i] = 0
	}
}

// arrayDims returns the dimension extents of array j (all dims except j).
func arrayDims(pr Problem, j int) []int {
	var out []int
	for i, n := range pr.N {
		if i != j {
			out = append(out, n)
		}
	}
	return out
}

// strides returns row-major strides for the given extents.
func strides(dims []int) []int {
	s := make([]int, len(dims))
	acc := 1
	for i := len(dims) - 1; i >= 0; i-- {
		s[i] = acc
		acc *= dims[i]
	}
	return s
}

// Serial computes the reference result: for every lattice point, multiply
// the d−1 input values and accumulate into the output array.
func Serial(pr Problem, seed uint64) *Arrays {
	a := NewArrays(pr)
	a.Randomize(seed)
	d := pr.D()
	point := make([]int, d)
	strideOf := make([][]int, d)
	for j := 0; j < d; j++ {
		strideOf[j] = strides(arrayDims(pr, j))
	}
	offset := func(j int) int {
		o, s := 0, 0
		for i := 0; i < d; i++ {
			if i == j {
				continue
			}
			o += point[i] * strideOf[j][s]
			s++
		}
		return o
	}
	for {
		prod := 1.0
		for j := 0; j < d-1; j++ {
			prod *= a.Data[j][offset(j)]
		}
		a.Data[d-1][offset(d-1)] += prod
		// Odometer increment.
		i := d - 1
		for ; i >= 0; i-- {
			point[i]++
			if point[i] < pr.N[i] {
				break
			}
			point[i] = 0
		}
		if i < 0 {
			return a
		}
	}
}

// SimResult is the outcome of a simulated parallel run.
type SimResult struct {
	// Output is the assembled output array (flat, row-major over the
	// output's dimensions).
	Output []float64
	// Stats are the machine statistics.
	Stats machine.WorldStats
	// Grid is the processor grid used.
	Grid Grid
}

// Run executes the Algorithm 1 generalization on the simulated machine:
// every rank All-Gathers each input-array block over that array's fiber,
// multiplies over its local brick, and Reduce-Scatters the output block
// over the output fiber. Inputs start distributed one-copy (each block
// spread evenly over its fiber); the output ends one-copy.
func Run(pr Problem, g Grid, seed uint64, cfg machine.Config) (*SimResult, error) {
	d := pr.D()
	if len(g.Dims) != d {
		return nil, fmt.Errorf("extension: %d-d grid for %d-d problem", len(g.Dims), d)
	}
	for i := range pr.N {
		if g.Dims[i] > pr.N[i] {
			return nil, fmt.Errorf("extension: grid %v exceeds dims %v", g, pr.N)
		}
	}
	full := NewArrays(pr)
	full.Randomize(seed)

	p := g.Size()
	w := machine.NewWorld(p, cfg)
	chunks := make([][]float64, p)
	runErr := w.Run(func(r *machine.Rank) {
		coords := g.Coords(r.ID())
		// Brick ranges per dimension.
		lo := make([]int, d)
		sz := make([]int, d)
		for i := 0; i < d; i++ {
			lo[i] = matrix.PartStart(pr.N[i], g.Dims[i], coords[i])
			sz[i] = matrix.PartSize(pr.N[i], g.Dims[i], coords[i])
		}

		// Gather each input-array block over its fiber.
		blocks := make([][]float64, d)
		blockDims := make([][]int, d)
		for j := 0; j < d; j++ {
			blockDims[j] = blockExtents(sz, j)
		}
		for j := 0; j < d-1; j++ {
			packed := extractBlock(full.Data[j], arrayDims(pr, j), bounds(lo, sz, j))
			counts := fairCounts(len(packed), g.Dims[j])
			share := packed[start(counts, coords[j]) : start(counts, coords[j])+counts[coords[j]]]
			grp := collective.NewGroup(r, g.Fiber(r.ID(), j), j+1, collective.Auto)
			r.SetPhase(fmt.Sprintf("gather-%d", j))
			blocks[j] = grp.AllGatherV(share, counts)
			r.GrowMemory(float64(len(blocks[j])))
		}
		r.SetPhase("")

		// Local computation over the brick.
		outDims := blockDims[d-1]
		outStrides := strides(outDims)
		out := make([]float64, volume(outDims))
		r.GrowMemory(float64(len(out)))
		inStrides := make([][]int, d-1)
		for j := 0; j < d-1; j++ {
			inStrides[j] = strides(blockDims[j])
		}
		point := make([]int, d)
		flops := 1.0
		for _, s := range sz {
			flops *= float64(s)
		}
		r.Compute(flops * float64(d-1))
		if flops > 0 {
			for {
				prod := 1.0
				for j := 0; j < d-1; j++ {
					prod *= blocks[j][localOffset(point, j, inStrides[j])]
				}
				out[localOffset(point, d-1, outStrides)] += prod
				i := d - 1
				for ; i >= 0; i-- {
					point[i]++
					if point[i] < sz[i] {
						break
					}
					point[i] = 0
				}
				if i < 0 {
					break
				}
			}
		}

		// Reduce-Scatter the output block over its fiber.
		counts := fairCounts(len(out), g.Dims[d-1])
		grp := collective.NewGroup(r, g.Fiber(r.ID(), d-1), d+1, collective.Auto)
		r.SetPhase("reduce-out")
		chunks[r.ID()] = grp.ReduceScatterV(out, counts)
		r.SetPhase("")
	})
	if runErr != nil {
		return nil, runErr
	}

	// Assemble the output array.
	output := assembleOutput(pr, g, chunks)
	return &SimResult{Output: output, Stats: w.Stats(), Grid: g}, nil
}

// bounds returns per-dimension (lo, size) pairs of array j's block,
// skipping dimension j.
func bounds(lo, sz []int, j int) [][2]int {
	var out [][2]int
	for i := range lo {
		if i != j {
			out = append(out, [2]int{lo[i], sz[i]})
		}
	}
	return out
}

// blockExtents returns sz with entry j removed.
func blockExtents(sz []int, j int) []int {
	var out []int
	for i, s := range sz {
		if i != j {
			out = append(out, s)
		}
	}
	return out
}

// volume multiplies extents.
func volume(dims []int) int {
	v := 1
	for _, d := range dims {
		v *= d
	}
	return v
}

// localOffset maps brick-local point coordinates to the offset within the
// block of array j (which omits dimension j).
func localOffset(point []int, j int, strd []int) int {
	o, s := 0, 0
	for i := range point {
		if i == j {
			continue
		}
		o += point[i] * strd[s]
		s++
	}
	return o
}

// extractBlock copies the sub-cuboid of a flat row-major array given
// per-dimension (lo, size) bounds.
func extractBlock(data []float64, dims []int, b [][2]int) []float64 {
	strd := strides(dims)
	out := make([]float64, 0, volumeOfBounds(b))
	point := make([]int, len(b))
	if volumeOfBounds(b) == 0 {
		return out
	}
	for {
		o := 0
		for i := range point {
			o += (b[i][0] + point[i]) * strd[i]
		}
		out = append(out, data[o])
		i := len(point) - 1
		for ; i >= 0; i-- {
			point[i]++
			if point[i] < b[i][1] {
				break
			}
			point[i] = 0
		}
		if i < 0 {
			return out
		}
	}
}

func volumeOfBounds(b [][2]int) int {
	v := 1
	for _, x := range b {
		v *= x[1]
	}
	return v
}

// writeBlock writes packed into the sub-cuboid of a flat row-major array.
func writeBlock(data []float64, dims []int, b [][2]int, packed []float64) {
	strd := strides(dims)
	if volumeOfBounds(b) == 0 {
		return
	}
	point := make([]int, len(b))
	idx := 0
	for {
		o := 0
		for i := range point {
			o += (b[i][0] + point[i]) * strd[i]
		}
		data[o] = packed[idx]
		idx++
		i := len(point) - 1
		for ; i >= 0; i-- {
			point[i]++
			if point[i] < b[i][1] {
				break
			}
			point[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

// fairCounts splits total into p balanced integer parts.
func fairCounts(total, p int) []int {
	counts := make([]int, p)
	q, rem := total/p, total%p
	for i := range counts {
		counts[i] = q
		if i < rem {
			counts[i]++
		}
	}
	return counts
}

func start(counts []int, idx int) int {
	s := 0
	for i := 0; i < idx; i++ {
		s += counts[i]
	}
	return s
}

// assembleOutput reconstructs the global output array from per-rank
// reduce-scatter chunks: for each output block (fixed coords on all axes
// except d−1), concatenate the chunks of the axis-(d−1) fiber in order.
func assembleOutput(pr Problem, g Grid, chunks [][]float64) []float64 {
	d := pr.D()
	outDims := arrayDims(pr, d-1)
	output := make([]float64, int(pr.ArraySize(d-1)))
	// Iterate over all grid cells with coords[d-1] = 0; each defines one
	// output block.
	coords := make([]int, d)
	for {
		// Compute the block bounds of this cell.
		lo := make([]int, d)
		sz := make([]int, d)
		for i := 0; i < d; i++ {
			lo[i] = matrix.PartStart(pr.N[i], g.Dims[i], coords[i])
			sz[i] = matrix.PartSize(pr.N[i], g.Dims[i], coords[i])
		}
		var packed []float64
		for v := 0; v < g.Dims[d-1]; v++ {
			coords[d-1] = v
			packed = append(packed, chunks[g.Rank(coords)]...)
		}
		coords[d-1] = 0
		writeBlock(output, outDims, bounds(lo, sz, d-1), packed)
		// Next cell (skip axis d-1).
		i := d - 2
		for ; i >= 0; i-- {
			coords[i]++
			if coords[i] < g.Dims[i] {
				break
			}
			coords[i] = 0
		}
		if i < 0 {
			return output
		}
	}
}
