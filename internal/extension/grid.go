package extension

import (
	"fmt"
	"math"
)

// Grid is a d-dimensional processor grid; Dims[j] partitions iteration
// dimension j.
type Grid struct {
	Dims []int
}

// NewGrid constructs a grid from per-dimension extents.
func NewGrid(dims ...int) Grid {
	g := Grid{Dims: make([]int, len(dims))}
	copy(g.Dims, dims)
	return g
}

// Size returns the number of processors Π Dims[j].
func (g Grid) Size() int {
	s := 1
	for _, p := range g.Dims {
		s *= p
	}
	return s
}

// String renders the grid as "p0xp1x…".
func (g Grid) String() string {
	s := ""
	for i, p := range g.Dims {
		if i > 0 {
			s += "x"
		}
		s += fmt.Sprintf("%d", p)
	}
	return s
}

// Rank linearizes coordinates (last dimension fastest).
func (g Grid) Rank(coords []int) int {
	if len(coords) != len(g.Dims) {
		panic(fmt.Sprintf("extension: %d coords for %d-d grid", len(coords), len(g.Dims)))
	}
	r := 0
	for i, c := range coords {
		if c < 0 || c >= g.Dims[i] {
			panic(fmt.Sprintf("extension: coord %d out of range for %v", c, g))
		}
		r = r*g.Dims[i] + c
	}
	return r
}

// Coords inverts Rank.
func (g Grid) Coords(rank int) []int {
	if rank < 0 || rank >= g.Size() {
		panic(fmt.Sprintf("extension: rank %d out of %v", rank, g))
	}
	out := make([]int, len(g.Dims))
	for i := len(g.Dims) - 1; i >= 0; i-- {
		out[i] = rank % g.Dims[i]
		rank /= g.Dims[i]
	}
	return out
}

// Fiber returns the ranks sharing all of rank's coordinates except axis,
// in increasing coordinate order — the communicator for array axis's
// collective.
func (g Grid) Fiber(rank, axis int) []int {
	coords := g.Coords(rank)
	out := make([]int, g.Dims[axis])
	for v := 0; v < g.Dims[axis]; v++ {
		coords[axis] = v
		out[v] = g.Rank(coords)
	}
	return out
}

// CommCost generalizes eq. (3): the per-processor communication of the
// All-Gather/Reduce-Scatter algorithm on this grid,
// Σ_j (array j block size) − TotalWords/P, where array j's gathered block
// has Π_{i≠j} N_i/p_i words.
func CommCost(pr Problem, g Grid) float64 {
	if len(g.Dims) != pr.D() {
		panic(fmt.Sprintf("extension: %d-d grid for %d-d problem", len(g.Dims), pr.D()))
	}
	total := 0.0
	for j := range pr.N {
		blk := 1.0
		for i := range pr.N {
			if i != j {
				blk *= float64(pr.N[i]) / float64(g.Dims[i])
			}
		}
		total += blk
	}
	return total - pr.TotalWords()/float64(g.Size())
}

// Optimal exhaustively searches factorizations of p over d dimensions for
// the grid minimizing CommCost.
func Optimal(pr Problem, p int) Grid {
	best := make([]int, pr.D())
	for i := range best {
		best[i] = 1
	}
	best[0] = p
	bestCost := math.Inf(1)
	cur := make([]int, pr.D())
	var rec func(axis, rem int)
	rec = func(axis, rem int) {
		if axis == pr.D()-1 {
			cur[axis] = rem
			g := Grid{Dims: cur}
			if c := CommCost(pr, g); c < bestCost-1e-12 {
				bestCost = c
				copy(best, cur)
			}
			return
		}
		for f := 1; f <= rem; f++ {
			if rem%f == 0 {
				cur[axis] = f
				rec(axis+1, rem/f)
			}
		}
	}
	rec(0, p)
	return Grid{Dims: best}
}

// Divides reports whether the grid divides both the iteration dimensions
// and every array block by its fiber size — the conditions for word-exact
// attainment.
func Divides(pr Problem, g Grid) bool {
	for i := range pr.N {
		if pr.N[i]%g.Dims[i] != 0 {
			return false
		}
	}
	for j := range pr.N {
		blk := 1
		for i := range pr.N {
			if i != j {
				blk *= pr.N[i] / g.Dims[i]
			}
		}
		if blk%g.Dims[j] != 0 {
			return false
		}
	}
	return true
}
