// Package experiments regenerates every evaluation artifact of the paper —
// Table 1, the Lemma 2 case structure, the Theorem 3 bound curves, Figure 1
// (Algorithm 1's per-collective data movement), Figure 2 (optimal grids),
// the §5.2 exact-tightness check, the baseline-algorithm comparison, and
// the §6.2 limited-memory analysis — as self-contained functions returning
// renderable artifacts plus structured data that tests and benchmarks
// assert on. The cmd/paper binary and the repository-level benchmarks are
// thin wrappers around this package.
package experiments

import (
	"context"
	"fmt"
)

// Artifact is one regenerated table or figure.
type Artifact struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "E1-table1").
	ID string
	// Title describes the paper artifact being reproduced.
	Title string
	// Text is the rendered terminal output (table or ASCII chart).
	Text string
	// CSV is an optional machine-readable rendition.
	CSV string
}

// String renders the artifact with its header.
func (a Artifact) String() string {
	return fmt.Sprintf("== %s: %s ==\n%s", a.ID, a.Title, a.Text)
}

// All runs every experiment at its default (paper) parameters and returns
// the artifacts in paper order. Simulation-backed experiments use the
// scaled dimensions documented in DESIGN.md so the whole suite runs in
// seconds.
func All() ([]Artifact, error) { return AllContext(context.Background()) }

// AllContext is All honoring cancellation: ctx is checked between
// experiments and threaded into the sweep-based ones, so a long run stops
// within one experiment step (or one sweep point) of ctx being done. The
// error is then ctx.Err().
func AllContext(ctx context.Context) ([]Artifact, error) {
	var out []Artifact
	steps := []func() (Artifact, error){
		func() (Artifact, error) { return Table1(), nil },
		func() (Artifact, error) { return Lemma2Cases(DefaultRectDims), nil },
		func() (Artifact, error) { return BoundCurves(DefaultRectDims, 1<<20), nil },
		func() (Artifact, error) { return Figure2(), nil },
		func() (Artifact, error) { return LimitedMemory(DefaultSquareN, DefaultMemoryWords), nil },
		func() (Artifact, error) { return Figure1(DefaultFig1N, 27) },
		func() (Artifact, error) { return TightnessContext(ctx) },
		func() (Artifact, error) { return AlgorithmComparisonContext(ctx, DefaultCompareN, DefaultCompareP) },
		func() (Artifact, error) { return Geometry() },
		func() (Artifact, error) { return CARMAComparison(), nil },
		func() (Artifact, error) { return Extension() },
		func() (Artifact, error) {
			return RuntimeModelContext(ctx, DefaultRectDims, DefaultRuntimeConfig, []int{1, 4, 16, 64, 512})
		},
		func() (Artifact, error) { return FastMatmul(4096, []int{1, 8, 64, 512, 4096}) },
		func() (Artifact, error) { return ModelRobustness(), nil },
		func() (Artifact, error) { return CAPSExperiment(56) },
		func() (Artifact, error) { return MemoryTradeoff(DefaultRectDims, 512) },
		func() (Artifact, error) { return TopologySweepContext(ctx) },
		func() (Artifact, error) { return HBLPrograms() },
	}
	for _, step := range steps {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		a, err := step()
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}
