// Package experiments regenerates every evaluation artifact of the paper —
// Table 1, the Lemma 2 case structure, the Theorem 3 bound curves, Figure 1
// (Algorithm 1's per-collective data movement), Figure 2 (optimal grids),
// the §5.2 exact-tightness check, the baseline-algorithm comparison, and
// the §6.2 limited-memory analysis — as self-contained functions returning
// renderable artifacts plus structured data that tests and benchmarks
// assert on. The cmd/paper binary and the repository-level benchmarks are
// thin wrappers around this package.
package experiments

import "fmt"

// Artifact is one regenerated table or figure.
type Artifact struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "E1-table1").
	ID string
	// Title describes the paper artifact being reproduced.
	Title string
	// Text is the rendered terminal output (table or ASCII chart).
	Text string
	// CSV is an optional machine-readable rendition.
	CSV string
}

// String renders the artifact with its header.
func (a Artifact) String() string {
	return fmt.Sprintf("== %s: %s ==\n%s", a.ID, a.Title, a.Text)
}

// All runs every experiment at its default (paper) parameters and returns
// the artifacts in paper order. Simulation-backed experiments use the
// scaled dimensions documented in DESIGN.md so the whole suite runs in
// seconds.
func All() ([]Artifact, error) {
	out := []Artifact{
		Table1(),
		Lemma2Cases(DefaultRectDims),
		BoundCurves(DefaultRectDims, 1<<20),
		Figure2(),
		LimitedMemory(DefaultSquareN, DefaultMemoryWords),
	}
	fig1, err := Figure1(DefaultFig1N, 27)
	if err != nil {
		return nil, err
	}
	out = append(out, fig1)
	tight, err := Tightness()
	if err != nil {
		return nil, err
	}
	out = append(out, tight)
	algs, err := AlgorithmComparison(DefaultCompareN, DefaultCompareP)
	if err != nil {
		return nil, err
	}
	out = append(out, algs)
	geo, err := Geometry()
	if err != nil {
		return nil, err
	}
	out = append(out, geo, CARMAComparison())
	ext, err := Extension()
	if err != nil {
		return nil, err
	}
	out = append(out, ext)
	rt, err := RuntimeModel(DefaultRectDims, DefaultRuntimeConfig, []int{1, 4, 16, 64, 512})
	if err != nil {
		return nil, err
	}
	out = append(out, rt)
	fmm, err := FastMatmul(4096, []int{1, 8, 64, 512, 4096})
	if err != nil {
		return nil, err
	}
	out = append(out, fmm, ModelRobustness())
	cp, err := CAPSExperiment(56)
	if err != nil {
		return nil, err
	}
	out = append(out, cp)
	mt, err := MemoryTradeoff(DefaultRectDims, 512)
	if err != nil {
		return nil, err
	}
	out = append(out, mt)
	return out, nil
}
