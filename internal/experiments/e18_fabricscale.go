package experiments

import (
	"context"
	"fmt"

	"repro/internal/algs"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/model"
	"repro/internal/report"
	"repro/internal/topo"
)

// fabricScaleCase pins the grid and fabric specs for one supported P. The
// grids are chosen to divide n = 256 evenly so every rank holds equal
// blocks, and the specs mirror the BENCH_topo_scaling.json matrix.
type fabricScaleCase struct {
	g     grid.Grid
	specs []string
}

var fabricScaleCases = map[int]fabricScaleCase{
	4096:  {grid.Grid{P1: 16, P2: 16, P3: 16}, []string{"flat", "twolevel=64", "torus=16x16x16", "fattree=4x6"}},
	65536: {grid.Grid{P1: 64, P2: 32, P3: 32}, []string{"flat", "twolevel=64", "torus=16x16x16x16", "fattree=4x8"}},
}

// FabricScale is FabricScaleContext without cancellation.
func FabricScale(p int) (Artifact, error) { return FabricScaleContext(context.Background(), p) }

// FabricScaleContext is E17's question asked at datacenter scale: what does
// link contention do to the paper's memory-independent constant when P is
// 65536 rather than 64? The run only became possible in this form — the
// event engine schedules the ranks (PR 6) and the charge oracle prices
// every message from closed-form link loads in O(hops) time and O(links)
// memory rather than P² tables, so a 65536-endpoint torus costs
// milliseconds to build instead of tens of gigabytes.
//
// Each fabric × placement cell runs the full Algorithm 1 schedule at
// n = 256 on the event engine, verifies the product, and reports the
// simulated critical path against the flat α-β prediction (sim/flat, the
// degradation of the constant 3) and the topology-aware prediction
// (sim/topo, how much the worst-route model explains). Supported P values
// are the keys of fabricScaleCases (4096 and 65536).
func FabricScaleContext(ctx context.Context, p int) (Artifact, error) {
	fc, ok := fabricScaleCases[p]
	if !ok {
		return Artifact{}, fmt.Errorf("fabric scale: unsupported P=%d (have 4096, 65536)", p)
	}
	const n = 256
	d := core.Square(n)
	g := fc.g
	cfg := DefaultRuntimeConfig
	link := topo.Link{Alpha: cfg.Alpha, Beta: cfg.Beta}

	a := matrix.Random(n, n, 181)
	b := matrix.Random(n, n, 182)
	want := matrix.Mul(a, b)
	flatPred := model.Alg1Time(d, g, cfg, collective.Auto)

	tb := report.NewTable(
		fmt.Sprintf("Algorithm 1 on datacenter fabrics (event engine): %v, P = %d, grid %v, α=%g β=%g γ=%g (flat prediction %s)",
			d, p, g, cfg.Alpha, cfg.Beta, cfg.Gamma, report.Num(flatPred.Total())),
		"topology", "placement", "oracle", "max χ", "simulated", "sim/flat", "topo-predicted", "sim/topo",
	)

	worstGap := 1.0
	for _, spec := range fc.specs {
		fabric, err := topo.Parse(spec, p, link)
		if err != nil {
			return Artifact{}, fmt.Errorf("fabric scale: %w", err)
		}
		for _, place := range []topo.Policy{topo.Contiguous, topo.RoundRobin} {
			if err := ctx.Err(); err != nil {
				return Artifact{}, err
			}
			pl, err := topo.Map(g, fabric, place)
			if err != nil {
				return Artifact{}, fmt.Errorf("fabric scale %s/%v: %w", spec, place, err)
			}
			net, err := topo.NewNetwork(fabric, pl)
			if err != nil {
				return Artifact{}, fmt.Errorf("fabric scale %s/%v: %w", spec, place, err)
			}
			mode := "walk"
			if net.Uniform() {
				mode = "uniform"
			} else if net.Tabulated() {
				mode = "table"
			}
			congest, err := topo.Congest(g, fabric, pl)
			if err != nil {
				return Artifact{}, fmt.Errorf("fabric scale %s/%v: %w", spec, place, err)
			}
			topoPred, err := model.Alg1TimeTopo(d, g, cfg, collective.Auto, net)
			if err != nil {
				return Artifact{}, fmt.Errorf("fabric scale %s/%v: %w", spec, place, err)
			}
			res, err := algs.Alg1(a, b, p, algs.Opts{
				Config: cfg, Grid: g, Topo: fabric, Place: place,
				Engine: machine.EngineEvent,
			})
			if err != nil {
				return Artifact{}, fmt.Errorf("fabric scale %s/%v: %w", spec, place, err)
			}
			if res.C.MaxAbsDiff(want) > 1e-8 {
				return Artifact{}, fmt.Errorf("fabric scale %s/%v: wrong product", spec, place)
			}
			sim := res.Stats.CriticalPath
			gap := sim / flatPred.Total()
			if gap > worstGap {
				worstGap = gap
			}
			tb.AddRow(
				fabric.Name(),
				place.String(),
				mode,
				fmt.Sprintf("%.2f", congest.MaxChi()),
				report.Num(sim),
				fmt.Sprintf("%.3f", gap),
				report.Num(topoPred.Total()),
				fmt.Sprintf("%.3f", sim/topoPred.Total()),
			)
			// The flat rows anchor the experiment: dedicated links keep the
			// §5.1 accounting exact at any P, so any deviation here is an
			// engine or oracle bug, not congestion.
			if fabric.NodeSize() == 1 && sim != flatPred.Total() {
				return Artifact{}, fmt.Errorf("fabric scale: flat simulation %v != prediction %v", sim, flatPred.Total())
			}
		}
	}
	if worstGap <= 1 {
		return Artifact{}, fmt.Errorf("fabric scale: no fabric showed congestion (worst sim/flat %.3f)", worstGap)
	}

	note := fmt.Sprintf("\nAt P = %d every message is priced by the walk-mode charge oracle —\n"+
		"closed-form link loads, O(hops) per charge, no P² tables — so the whole\n"+
		"study fits in memory that the old all-pairs oracle would have spent on a\n"+
		"single fabric's table row. The worst sim/flat gap here is %.2f×: the\n"+
		"paper's constant 3 is attained on dedicated links at any scale (the flat\n"+
		"rows), while shared fabrics degrade it by their busiest route's\n"+
		"congestion factor, exactly as the χ column predicts.\n", p, worstGap)
	return Artifact{
		ID:    "E18-fabric-scale",
		Title: fmt.Sprintf("Fabric studies at P = %d: contention at datacenter scale", p),
		Text:  tb.String() + note,
		CSV:   tb.CSV(),
	}, nil
}
