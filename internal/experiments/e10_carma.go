package experiments

import (
	"fmt"

	"repro/internal/algs"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/report"
)

// CARMAComparison contrasts the recursive CARMA grid (Demmel et al. 2013,
// §2.4 of the paper) with the §5.2 optimal grid across shapes and
// processor counts: CARMA is asymptotically optimal in all three regimes
// but its greedy halving can lose a constant factor exactly where the
// paper's tight constants bite.
func CARMAComparison() Artifact {
	shapes := []core.Dims{
		core.Square(1024),
		core.NewDims(9600, 2400, 600),
		core.NewDims(1<<14, 1<<7, 1<<7),
		core.NewDims(1000, 1000, 10),
	}
	tb := report.NewTable(
		"CARMA recursive grid vs optimal grid (eq.(3) cost in words/proc)",
		"dims", "P", "case", "CARMA grid", "CARMA cost", "optimal grid", "optimal cost", "bound", "CARMA/bound",
	)
	for _, d := range shapes {
		for _, p := range []int{4, 16, 64, 256} {
			cg, err := algs.CARMAGrid(d, p)
			if err != nil {
				continue
			}
			og := grid.Optimal(d, p)
			bound := core.LowerBound(d, p)
			ratio := 1.0
			if bound > 0 {
				ratio = grid.CommCost(d, cg) / bound
			}
			tb.AddRow(
				d.String(),
				fmt.Sprintf("%d", p),
				core.CaseOf(d, p).String(),
				cg.String(),
				report.Num(grid.CommCost(d, cg)),
				og.String(),
				report.Num(grid.CommCost(d, og)),
				report.Num(bound),
				fmt.Sprintf("%.3f", ratio),
			)
		}
	}
	return Artifact{
		ID:    "E10-carma",
		Title: "Recursive (CARMA) vs optimized grids: asymptotically equal, constants differ",
		Text:  tb.String(),
		CSV:   tb.CSV(),
	}
}
