package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
)

// Table1 regenerates the paper's Table 1: the explicit constants of the
// leading term of the memory-independent communication lower bound, per
// prior work and per case, computed from the implemented bound formulas
// (not hard-coded strings — the cells are evaluated from each work's
// Constant). A "-" marks cases where a work proved no bound.
func Table1() Artifact {
	tb := report.NewTable(
		"Constants of the leading term (m ≥ n ≥ k, P processors)",
		"work",
		"Case 1: nk  (1 ≤ P ≤ m/n)",
		"Case 2: (mnk²/P)^½  (m/n ≤ P ≤ mn/k²)",
		"Case 3: (mnk/P)^⅔  (mn/k² ≤ P)",
	)
	for _, w := range core.AllWorks() {
		tb.AddRow(
			w.String(),
			report.Num(w.Constant(core.Case1)),
			report.Num(w.Constant(core.Case2)),
			report.Num(w.Constant(core.Case3)),
		)
	}

	// Supplement: the improvement factors Theorem 3 achieves, the paper's
	// headline contribution.
	imp := report.NewTable(
		"\nImprovement factor of Theorem 3 over each prior bound",
		"work", "Case 1", "Case 2", "Case 3",
	)
	for _, w := range core.AllWorks() {
		if w == core.ThisPaper {
			continue
		}
		imp.AddRow(
			w.String(),
			report.Num(core.ImprovementFactor(w, core.Case1)),
			report.Num(core.ImprovementFactor(w, core.Case2)),
			report.Num(core.ImprovementFactor(w, core.Case3)),
		)
	}
	return Artifact{
		ID:    "E1-table1",
		Title: "Table 1: explicit constants of parallel memory-independent lower bounds",
		Text:  tb.String() + imp.String(),
		CSV:   tb.CSV(),
	}
}

// Table1Numeric evaluates every work's bound on a concrete instance in each
// case, demonstrating the constant-factor separation on real numbers. Used
// by the benchmark harness and tests.
func Table1Numeric(d core.Dims, ps []int) Artifact {
	tb := report.NewTable(
		fmt.Sprintf("Lower bounds in words for %v", d),
		"P", "case", "leading term", "Aggarwal90", "Irony04", "Demmel13", "Theorem 3",
	)
	for _, p := range ps {
		c := core.CaseOf(d, p)
		tb.AddRow(
			fmt.Sprintf("%d", p),
			c.String(),
			report.Num(core.LeadingTerm(d, p)),
			report.Num(core.AggarwalChandraSnir1990.Bound(d, p)),
			report.Num(core.IronyToledoTiskin2004.Bound(d, p)),
			report.Num(core.DemmelEtAl2013.Bound(d, p)),
			report.Num(core.ThisPaper.Bound(d, p)),
		)
	}
	return Artifact{
		ID:    "E1b-table1-numeric",
		Title: "Table 1 evaluated on the Figure 2 instance",
		Text:  tb.String(),
		CSV:   tb.CSV(),
	}
}
