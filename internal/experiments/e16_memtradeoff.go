package experiments

import (
	"fmt"

	"repro/internal/algs"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/report"
)

// MemoryTradeoff makes the §6.2 discussion concrete, in two parts.
//
// Part 1 (a fact worth stating): eq. (3)'s per-processor footprint is the
// objective of Lemma 2, so the communication-optimal grid is also the
// memory-cheapest one — its footprint IS D. Capping memory below D leaves
// *no* feasible Algorithm 1 grid at all (grid.OptimalUnderMemory returns
// none): within the plain algorithm there is nothing to trade, matching
// the paper's "reducing the memory footprint in this case necessarily
// increases the bandwidth cost".
//
// Part 2 (the actual trade-off): algorithms that replicate — the 2.5D
// family — interpolate between the 2D minimal-memory regime and the 3D
// minimal-communication regime. Sweeping the replication factor c on a
// square problem shows memory rising and communication falling together,
// with the measured volume respecting the memory-dependent bound
// 2mnk/(P·sqrt(M)) evaluated at the measured footprint.
func MemoryTradeoff(d core.Dims, p int) (Artifact, error) {
	// Part 1: feasibility cliff of the plain algorithm.
	unconstrained := core.D(d, p)
	cliff := report.NewTable(
		fmt.Sprintf("Plain Algorithm 1 under a memory cap, %v, P = %d (D = %s)", d, p, report.Num(unconstrained)),
		"memory cap", "best feasible grid",
	)
	for _, frac := range []float64{1.0, 0.99, 0.5} {
		mem := frac * unconstrained
		g, ok := grid.OptimalUnderMemory(d, p, mem+1e-9)
		cell := "none — no grid's footprint is below D"
		if ok {
			cell = g.String()
		}
		cliff.AddRow(report.Num(mem), cell)
	}

	// Part 2: the 2.5D interpolation on a square instance.
	n, p25 := 64, 256
	sq := core.Square(n)
	a := matrix.Random(n, n, 71)
	b := matrix.Random(n, n, 72)
	want := matrix.Mul(a, b)
	tb := report.NewTable(
		fmt.Sprintf("\n2.5D replication sweep, %v, P = %d (3D bound = %s words)",
			sq, p25, report.Num(core.LowerBound(sq, p25))),
		"c", "grid", "measured words/proc", "measured peak mem", "mem-dep bound at that M", "respects it",
	)
	for _, c := range []int{1, 4} {
		res, err := algs.TwoPointFiveD(a, b, p25, algs.Opts{Config: machine.BandwidthOnly(), Layers: c})
		if err != nil {
			return Artifact{}, fmt.Errorf("memtradeoff c=%d: %w", c, err)
		}
		if res.C.MaxAbsDiff(want) > 1e-8 {
			return Artifact{}, fmt.Errorf("memtradeoff c=%d: wrong product", c)
		}
		md := core.MemoryDependentLeading(sq, p25, res.Stats.MaxPeakMemory)
		tb.AddRow(
			fmt.Sprintf("%d", c),
			res.Grid.String(),
			report.Num(res.CommCost()),
			report.Num(res.Stats.MaxPeakMemory),
			report.Num(md),
			fmt.Sprintf("%v", res.CommCost() >= md-1e-9),
		)
	}
	// The ample-memory endpoint: Alg1 on the optimal 3D grid.
	res, err := algs.Alg1(a, b, p25, algs.Opts{Config: machine.BandwidthOnly()})
	if err != nil {
		return Artifact{}, err
	}
	md := core.MemoryDependentLeading(sq, p25, res.Stats.MaxPeakMemory)
	tb.AddRow("3D", res.Grid.String(), report.Num(res.CommCost()),
		report.Num(res.Stats.MaxPeakMemory), report.Num(md),
		fmt.Sprintf("%v", res.CommCost() >= md-1e-9))

	note := "\nMore replication: more memory, less communication — the smooth §6.2\n" +
		"trade-off the 2.5D family realizes; the plain optimal algorithm sits at the\n" +
		"ample-memory endpoint and admits no cheaper-memory grid at all.\n"
	return Artifact{
		ID:    "E16-memtradeoff",
		Title: "§6.2 concrete: the memory/communication trade-off",
		Text:  cliff.String() + tb.String() + note,
		CSV:   tb.CSV(),
	}, nil
}
