package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
)

// LimitedMemory reproduces the §6.2 analysis for a square n×n problem with
// per-processor memory M: sweeping P, it reports the memory-independent
// bound D, the memory-dependent leading term 2mnk/(P√M), which bound binds,
// whether Algorithm 1's 3D footprint fits in M, and the two §6.2
// thresholds — the crossover P = (8/27)·mnk/M^{3/2} and the critical memory
// (4/9)(mnk/P)^{2/3}.
func LimitedMemory(n int, mem float64) Artifact {
	d := core.Square(n)
	crossover := core.CrossoverP(d, mem)
	tb := report.NewTable(
		fmt.Sprintf("Memory-dependent vs memory-independent bounds, %v, M = %s words (crossover P = %s)",
			d, report.Num(mem), report.Num(crossover)),
		"P", "mem-independent D", "mem-dependent 2mnk/(P√M)", "binding", "Alg1 footprint", "fits in M", "critical memory",
	)
	for p := 1; p <= 1<<22; p *= 4 {
		if float64(p) < crossover/64 || float64(p) > crossover*64 {
			continue
		}
		mi := core.D(d, p)
		md := core.MemoryDependentLeading(d, p, mem)
		_, mdBinds := core.BindingBound(d, p, mem)
		binding := "memory-independent"
		if mdBinds {
			binding = "memory-dependent"
		}
		foot := core.Alg1LocalMemory(d, p)
		tb.AddRow(
			fmt.Sprintf("%d", p),
			report.Num(mi),
			report.Num(md),
			binding,
			report.Num(foot),
			fmt.Sprintf("%v", foot <= mem),
			report.Num(core.CriticalMemory(d, p)),
		)
	}
	note := fmt.Sprintf(
		"\nPerfect strong scaling (total communication flat in P) is possible only up to P = %s;\n"+
			"beyond it the memory-independent Case 3 bound, decaying as P^(-2/3), binds (§6.2, Ballard et al. 2012b).\n",
		report.Num(core.PerfectStrongScalingLimit(d, mem)))
	return Artifact{
		ID:    "E8-limited-memory",
		Title: "§6.2: limited-memory regimes and the strong-scaling limit",
		Text:  tb.String() + note,
		CSV:   tb.CSV(),
	}
}
