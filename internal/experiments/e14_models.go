package experiments

import (
	"fmt"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/report"
)

// ModelRobustness compares the same Algorithm 1 execution across the three
// machine models of §2.3/§3.1 — the α-β-γ distributed model (Theorem 3's
// home), BSP (Scquizzato-Silvestri), and LPRAM (Aggarwal-Chandra-Snir) —
// showing that the per-processor volume is the α-β-γ/BSP bound and that
// LPRAM pays the full D (no owned-data deduction), each attained exactly
// with the §5.2 grid.
func ModelRobustness() Artifact {
	d := DefaultRectDims
	tb := report.NewTable(
		fmt.Sprintf("Algorithm 1 volumes per processor across machine models, %v", d),
		"P", "grid", "αβγ/BSP bound", "BSP volume", "BSP supersteps", "LPRAM bound (D)", "LPRAM cost",
	)
	for _, p := range []int{3, 36, 512} {
		g, err := grid.CaseGrid(d, p)
		if err != nil {
			continue
		}
		cost, m := bsp.Alg1BSP(d, g, 1, 0, true)
		tb.AddRow(
			fmt.Sprintf("%d", p),
			g.String(),
			report.Num(core.LowerBound(d, p)),
			report.Num(m.MaxReceivedTotal()),
			fmt.Sprintf("%d", cost.Supersteps),
			report.Num(bsp.LPRAMLowerBound(d, p)),
			report.Num(bsp.LPRAMAlg1Cost(d, g)),
		)
	}
	note := "\nThe distributed and BSP volumes coincide; LPRAM adds back the owned-data term\n" +
		"(mn+mk+nk)/P because nothing starts in local memory (§2.3).\n"
	return Artifact{
		ID:    "E14-models",
		Title: "Model robustness: αβγ vs BSP vs LPRAM",
		Text:  tb.String() + note,
		CSV:   tb.CSV(),
	}
}
