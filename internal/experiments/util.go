package experiments

import "math"

func sqrt(v float64) float64  { return math.Sqrt(v) }
func pow23(v float64) float64 { return math.Pow(v, 2.0/3.0) }
