package experiments

import (
	"fmt"

	"repro/internal/caps"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/report"
)

// CAPSExperiment demonstrates the §2.3 fast-matmul regime executably:
// Communication-Avoiding Parallel Strassen on P = 7^K simulated processors
// moves Θ(n²/P^{2/ω0}) words — below the classical Theorem 3 floor, which
// applies only to classical (O(n³)) algorithms — with measured volumes
// equal to the schedule's counting twin word-for-word and the product
// verified against a classical serial reference.
func CAPSExperiment(n int) (Artifact, error) {
	a := matrix.Random(n, n, 61)
	b := matrix.Random(n, n, 62)
	want := matrix.Mul(a, b)
	tb := report.NewTable(
		fmt.Sprintf("CAPS (parallel Strassen) vs classical bounds, %dx%d", n, n),
		"P", "levels", "measured words/proc", "counting twin", "fast term n²/P^(2/ω0)", "classical bound 3(n³/P)^(2/3)", "flops vs n³",
	)
	p := 1
	for levels := 0; levels <= 2; levels++ {
		res, err := caps.Multiply(a, b, levels, machine.BandwidthOnly())
		if err != nil {
			return Artifact{}, fmt.Errorf("caps levels=%d: %w", levels, err)
		}
		if diff := res.C.MaxAbsDiff(want); diff > 1e-8*float64(n) {
			return Artifact{}, fmt.Errorf("caps levels=%d: wrong product (max diff %g)", levels, diff)
		}
		pred := caps.PredictedVolumes(n, levels)
		maxPred := 0.0
		for _, v := range pred {
			if v > maxPred {
				maxPred = v
			}
		}
		mults := 0.0
		for _, rs := range res.Stats.Ranks {
			mults += rs.Flops
		}
		classical := 3 * core.LeadingTerm(core.Square(n), p)
		if p == 1 {
			classical = 0
		}
		tb.AddRow(
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%d", levels),
			report.Num(res.CommCost()),
			report.Num(maxPred),
			report.Num(caps.FastLeadingTerm(n, p)),
			report.Num(classical),
			fmt.Sprintf("%.3f", mults/(float64(n)*float64(n)*float64(n))),
		)
		p *= 7
	}
	note := "\nThe fast floor decays as P^(-0.712) vs the classical P^(-2/3); CAPS is a\n" +
		"Strassen-like algorithm, so Theorem 3 (which counts classical multiplications)\n" +
		"does not apply to it — exactly the §2.3 distinction. The 'flops vs n³' column\n" +
		"shows the (7/8)^levels-per-level multiplication saving (plus the O(n²)\n" +
		"combination additions) that moves the floor.\n"
	return Artifact{
		ID:    "E15-caps",
		Title: "§2.3 executably: parallel Strassen under the fast memory-independent bound",
		Text:  tb.String() + note,
		CSV:   tb.CSV(),
	}, nil
}
