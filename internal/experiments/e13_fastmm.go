package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/report"
)

// FastMatmul places the paper in its §2.3 context: memory-independent
// bounds also exist for Strassen-like algorithms (Ballard et al. 2012b),
// with leading term n²/P^{2/ω0} — asymptotic only, since tight constants in
// the fast case remain open (the gap the paper closes classically). The
// artifact tabulates the classical Case 3 bound against the Strassen one
// across P, and verifies the implemented Strassen kernel (correct product,
// 7^L·(n/2^L)³ multiplications).
func FastMatmul(n int, ps []int) (Artifact, error) {
	// Verify the Strassen kernel on a live product.
	a := matrix.Random(48, 48, 51)
	b := matrix.Random(48, 48, 52)
	if diff := matrix.MulStrassen(a, b, 3).MaxAbsDiff(matrix.Mul(a, b)); diff > 1e-8 {
		return Artifact{}, fmt.Errorf("fastmm: Strassen kernel wrong (max diff %g)", diff)
	}

	tb := report.NewTable(
		fmt.Sprintf("Memory-independent leading terms for %dx%d square multiplication", n, n),
		"P", "classical n²/P^(2/3) (const 3 tight)", "Strassen n²/P^(2/ω0) (const open)", "classical/Strassen",
	)
	for _, p := range ps {
		tb.AddRow(
			fmt.Sprintf("%d", p),
			report.Num(core.FastMatmulLeading(n, p, 3)),
			report.Num(core.FastMatmulLeading(n, p, core.OmegaStrassen)),
			fmt.Sprintf("%.3f", core.ClassicalVsStrassenBoundRatio(p)),
		)
	}
	note := fmt.Sprintf(
		"\nStrassen multiplications for n=%d at depth 4: %s vs classical %s (ratio %.3f)\n",
		n,
		report.Num(matrix.StrassenFlops(n, 4)),
		report.Num(matrix.StrassenFlops(n, 0)),
		matrix.StrassenFlops(n, 4)/matrix.StrassenFlops(n, 0))
	return Artifact{
		ID:    "E13-fastmm",
		Title: "§2.3 context: fast (Strassen-like) memory-independent bounds",
		Text:  tb.String() + note,
		CSV:   tb.CSV(),
	}, nil
}
