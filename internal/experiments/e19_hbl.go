package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/hbl"
	"repro/internal/report"
)

// HBLPrograms runs the generalized HBL bound engine over the array-program
// zoo. The first table reports each program's exact LP solution — σ_HBL,
// the per-array exponents s_j, and the footprint exponent 1/σ — and the
// second sweeps matmul across the three Theorem 3 regimes, checking that
// the generalized memory-independent constants collapse onto the paper's
// closed-form 1/2/3-free-array bounds.
func HBLPrograms() (Artifact, error) {
	zoo := []struct {
		name string
		p    hbl.Program
	}{
		{"matmul 9600×2400×600", hbl.MatMul(9600, 2400, 600)},
		{"cuboid d=4 (§6.3)", hbl.Cuboid(32, 16, 16, 8)},
		{"tensor contraction (2,1,2)", hbl.TensorContraction([]int{48, 48}, []int{48}, []int{48, 48})},
		{"n-body n=4096", hbl.NBody(4096)},
		{"conv2d 256×256 ⋆ 3×3", hbl.Conv2D(256, 256, 3, 3)},
	}
	exps := report.NewTable(
		"HBL exponents across the program zoo (exact rationals)",
		"program", "arrays", "σ_HBL", "per-array s", "exponent 1/σ", "footprint ≥ (V/P)^{1/σ}, P=64",
	)
	for _, z := range zoo {
		e, err := hbl.Solve(z.p)
		if err != nil {
			return Artifact{}, fmt.Errorf("hbl %s: %w", z.name, err)
		}
		b, err := hbl.MemIndependentBound(z.p, 64)
		if err != nil {
			return Artifact{}, fmt.Errorf("hbl %s bound: %w", z.name, err)
		}
		ss := make([]string, len(e.S))
		for j, s := range e.S {
			ss[j] = fmt.Sprintf("%s=%s", z.p.Arrays[j].Name, s.RatString())
		}
		exps.AddRow(
			z.name,
			fmt.Sprintf("%d", len(z.p.Arrays)),
			e.Sigma.RatString(),
			strings.Join(ss, " "),
			e.BoundExponent().RatString(),
			report.Num(b.Footprint),
		)
	}

	// Matmul across Theorem 3's three regimes: the generalized engine must
	// reproduce the closed forms, with FreeArrays equal to the paper's case
	// number.
	m, n, k := 9600, 2400, 600
	d := core.Dims{N1: m, N2: k, N3: n}
	prog := hbl.MatMul(m, n, k)
	mm := report.NewTable(
		fmt.Sprintf("matmul %d×%d×%d: generalized constants vs Theorem 3 closed forms", m, n, k),
		"P", "Theorem 3 case", "free arrays", "HBL bound", "closed form", "|rel err|",
	)
	for _, p := range []int{2, 16, 512} {
		b, err := hbl.MemIndependentBound(prog, p)
		if err != nil {
			return Artifact{}, fmt.Errorf("hbl matmul P=%d: %w", p, err)
		}
		want := core.LowerBound(d, p)
		relErr := 0.0
		if want > 0 {
			relErr = (b.LowerBound - want) / want
			if relErr < 0 {
				relErr = -relErr
			}
		}
		cs := core.CaseOf(d, p)
		if b.FreeArrays != int(cs) {
			return Artifact{}, fmt.Errorf("hbl matmul P=%d: %d free arrays, Theorem 3 case %d", p, b.FreeArrays, cs)
		}
		if relErr > 1e-9 {
			return Artifact{}, fmt.Errorf("hbl matmul P=%d: bound %v diverges from closed form %v", p, b.LowerBound, want)
		}
		mm.AddRow(
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%d", cs),
			fmt.Sprintf("%d/3", b.FreeArrays),
			report.Num(b.LowerBound),
			report.Num(want),
			fmt.Sprintf("%.2e", relErr),
		)
	}
	note := "\nσ_HBL and the per-array exponents are solved exactly in rationals with a verified\nzero-duality-gap certificate; the cuboid row reproduces internal/extension bit-exactly\n(tested in internal/hbl).\n"
	return Artifact{
		ID:    "E19-hbl",
		Title: "Generalized HBL array-program bounds (matmul pinned to Theorem 3)",
		Text:  exps.String() + "\n" + mm.String() + note,
		CSV:   exps.CSV(),
	}, nil
}
