package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
)

// BoundCurves renders Theorem 3's lower bound as a function of P from 1 to
// maxP (log-log), together with the prior-work bounds, exhibiting the three
// regimes — flat (Case 1), P^{-1/2} (Case 2), P^{-2/3} (Case 3) — and the
// constant-factor gap to prior work. Continuity at the case thresholds is
// reported explicitly.
func BoundCurves(d core.Dims, maxP int) Artifact {
	var ps []int
	for p := 1; p <= maxP; p *= 2 {
		ps = append(ps, p)
	}
	mk := func(f func(p int) float64) ([]float64, []float64) {
		var xs, ys []float64
		for _, p := range ps {
			v := f(p)
			if v > 0 {
				xs = append(xs, float64(p))
				ys = append(ys, v)
			}
		}
		return xs, ys
	}
	t3x, t3y := mk(func(p int) float64 { return core.D(d, p) })
	dmx, dmy := mk(func(p int) float64 {
		return core.DemmelEtAl2013.Constant(core.CaseOf(d, p)) * core.LeadingTerm(d, p)
	})
	ch := report.Chart{
		Title:  fmt.Sprintf("Per-processor data footprint D vs P for %v (log-log)", d),
		Width:  72,
		Height: 18,
		LogX:   true,
		LogY:   true,
		Series: []report.Series{
			{Name: "Theorem 3 (D)", X: t3x, Y: t3y},
			{Name: "Demmel et al. 2013 leading bound", X: dmx, Y: dmy},
		},
	}

	t1, t2 := core.Thresholds(d)
	tb := report.NewTable(
		"\nContinuity at the case thresholds (adjacent case formulas agree)",
		"threshold", "P", "left-case D", "right-case D",
	)
	if p := int(t1); float64(p) == t1 {
		tb.AddRow("m/n", fmt.Sprintf("%d", p),
			report.Num(case1D(d, p)), report.Num(case2D(d, p)))
	}
	if p := int(t2); float64(p) == t2 {
		tb.AddRow("mn/k²", fmt.Sprintf("%d", p),
			report.Num(case2D(d, p)), report.Num(case3D(d, p)))
	}
	return Artifact{
		ID:    "E3-bound-curves",
		Title: "Theorem 3 bound across the three regimes",
		Text:  ch.String() + tb.String(),
	}
}

// case1D, case2D, case3D evaluate each case's formula unconditionally, for
// checking continuity at the thresholds.
func case1D(d core.Dims, p int) float64 {
	m, n, k := d.Sorted()
	return (float64(m)*float64(n)+float64(m)*float64(k))/float64(p) + float64(n)*float64(k)
}

func case2D(d core.Dims, p int) float64 {
	m, n, k := d.Sorted()
	return 2*sqrt(float64(m)*float64(n)*float64(k)*float64(k)/float64(p)) + float64(m)*float64(n)/float64(p)
}

func case3D(d core.Dims, p int) float64 {
	m, n, k := d.Sorted()
	return 3 * pow23(float64(m)*float64(n)*float64(k)/float64(p))
}
