package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/report"
)

// Figure2 reproduces the paper's Figure 2 and §5.3: for the 9600×2400×600
// multiplication it derives the optimal processor grid at P = 3 (1D case),
// P = 36 (2D case) and P = 512 (3D case), reports the local iteration-space
// brick each processor receives, which matrices must be communicated, and
// checks that the eq. (3) cost equals Theorem 3's bound.
func Figure2() Artifact {
	d := PaperRectDims
	tb := report.NewTable(
		fmt.Sprintf("Optimal grids for %v (m/n = %s, mn/k² = %s)",
			d, report.Num(4), report.Num(64)),
		"P", "case", "grid", "local brick (m/p x n/q x k/r)", "matrices moved", "eq.(3) cost", "Theorem 3 bound",
	)
	for _, p := range []int{3, 36, 512} {
		g, err := grid.CaseGrid(d, p)
		if err != nil {
			tb.AddRow(fmt.Sprintf("%d", p), "-", "error", err.Error(), "-", "-", "-")
			continue
		}
		moved := movedMatrices(g)
		brick := fmt.Sprintf("%dx%dx%d", d.N1/g.P1, d.N2/g.P2, d.N3/g.P3)
		tb.AddRow(
			fmt.Sprintf("%d", p),
			core.CaseOf(d, p).String(),
			g.String(),
			brick,
			moved,
			report.Num(grid.CommCost(d, g)),
			report.Num(core.LowerBound(d, p)),
		)
	}
	return Artifact{
		ID:    "E5-figure2",
		Title: "Figure 2: example parallelizations of the 9600x2400x600 iteration space",
		Text:  tb.String(),
		CSV:   tb.CSV(),
	}
}

// movedMatrices names which of A, B, C involve communication on grid g
// (a collective over a singleton fiber moves nothing) — the paper's §5.3
// observations: 1D moves only B, 2D moves B and C, 3D moves all three.
func movedMatrices(g grid.Grid) string {
	s := ""
	if g.P3 > 1 {
		s += "A "
	}
	if g.P1 > 1 {
		s += "B "
	}
	if g.P2 > 1 {
		s += "C"
	}
	if s == "" {
		return "none"
	}
	return s
}
