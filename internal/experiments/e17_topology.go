package experiments

import (
	"context"
	"fmt"

	"repro/internal/algs"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/matrix"
	"repro/internal/model"
	"repro/internal/report"
	"repro/internal/topo"
)

// TopologySweep is TopologySweepContext without cancellation.
func TopologySweep() (Artifact, error) { return TopologySweepContext(context.Background()) }

// TopologySweepContext asks where the paper's model stops describing real
// machines. Theorem 3's bound — and Algorithm 1's matching constant 3 — are
// proved on a fully connected network where every processor pair owns a
// dedicated link. This experiment runs the same Algorithm 1 schedule, same
// §5.2 optimal grid, on simulated hierarchical fabrics (shared-NIC
// clusters, tori, fat and skinny trees) under both rank placements, and
// measures the simulated critical path against two predictions:
//
//   - the flat α-β prediction (Alg1Time) — what the paper promises;
//   - the topology-aware prediction (Alg1TimeTopo), which prices each
//     collective phase at the worst contended route its fibers use.
//
// The sim/flat column is the headline: 1.000 on the flat fabric (the §5.1
// accounting is exact there) and > 1 wherever link sharing stretches the
// critical path — the factor by which the memory-independent constant
// degrades on that fabric. The χ column is the static congestion bound from
// the all-pairs route analysis, and sim/topo shows how much of the gap the
// worst-route model already explains.
func TopologySweepContext(ctx context.Context) (Artifact, error) {
	const n, p = 64, 64
	d := core.Square(n)
	g := grid.Grid{P1: 4, P2: 4, P3: 4}
	cfg := DefaultRuntimeConfig
	link := topo.Link{Alpha: cfg.Alpha, Beta: cfg.Beta}

	a := matrix.Random(n, n, 91)
	b := matrix.Random(n, n, 92)
	want := matrix.Mul(a, b)
	flatPred := model.Alg1Time(d, g, cfg, collective.Auto)

	tb := report.NewTable(
		fmt.Sprintf("Algorithm 1 on real fabrics: %v, P = %d, grid %v, α=%g β=%g γ=%g (flat prediction %s)",
			d, p, g, cfg.Alpha, cfg.Beta, cfg.Gamma, report.Num(flatPred.Total())),
		"topology", "placement", "max χ", "simulated", "sim/flat", "topo-predicted", "sim/topo",
	)

	worstGap := 1.0
	for _, spec := range []string{"flat", "twolevel=8", "torus=4x4x4", "fattree=4x3", "tree=4x3"} {
		fabric, err := topo.Parse(spec, p, link)
		if err != nil {
			return Artifact{}, fmt.Errorf("topology sweep: %w", err)
		}
		for _, place := range []topo.Policy{topo.Contiguous, topo.RoundRobin} {
			if err := ctx.Err(); err != nil {
				return Artifact{}, err
			}
			pl, err := topo.Map(g, fabric, place)
			if err != nil {
				return Artifact{}, fmt.Errorf("topology sweep %s/%v: %w", spec, place, err)
			}
			net, err := topo.NewNetwork(fabric, pl)
			if err != nil {
				return Artifact{}, fmt.Errorf("topology sweep %s/%v: %w", spec, place, err)
			}
			congest, err := topo.Congest(g, fabric, pl)
			if err != nil {
				return Artifact{}, fmt.Errorf("topology sweep %s/%v: %w", spec, place, err)
			}
			topoPred, err := model.Alg1TimeTopo(d, g, cfg, collective.Auto, net)
			if err != nil {
				return Artifact{}, fmt.Errorf("topology sweep %s/%v: %w", spec, place, err)
			}
			res, err := algs.Alg1(a, b, p, algs.Opts{Config: cfg, Grid: g, Topo: fabric, Place: place})
			if err != nil {
				return Artifact{}, fmt.Errorf("topology sweep %s/%v: %w", spec, place, err)
			}
			if res.C.MaxAbsDiff(want) > 1e-8 {
				return Artifact{}, fmt.Errorf("topology sweep %s/%v: wrong product", spec, place)
			}
			sim := res.Stats.CriticalPath
			gap := sim / flatPred.Total()
			if gap > worstGap {
				worstGap = gap
			}
			tb.AddRow(
				fabric.Name(),
				place.String(),
				fmt.Sprintf("%.2f", congest.MaxChi()),
				report.Num(sim),
				fmt.Sprintf("%.3f", gap),
				report.Num(topoPred.Total()),
				fmt.Sprintf("%.3f", sim/topoPred.Total()),
			)
			// Flat must stay exact either way ranks are placed: each pair
			// keeps a dedicated link, so the §5.1 accounting holds to the
			// last bit and the constant 3 is genuinely attained.
			if fabric.NodeSize() == 1 && sim != flatPred.Total() {
				return Artifact{}, fmt.Errorf("topology sweep: flat simulation %v != prediction %v", sim, flatPred.Total())
			}
		}
	}
	if worstGap <= 1 {
		return Artifact{}, fmt.Errorf("topology sweep: no fabric showed congestion (worst sim/flat %.3f)", worstGap)
	}

	note := fmt.Sprintf("\nThe flat rows reproduce the paper's constant exactly (sim/flat = 1.000).\n"+
		"Every shared-link fabric stretches Algorithm 1's critical path — worst\n"+
		"sim/flat here is %.2f× — so the memory-independent constant 3 is a\n"+
		"property of the dedicated-link model, degraded by exactly the congestion\n"+
		"factor of the fabric's busiest route. Placement moves the gap between\n"+
		"phases (contiguous keeps the Axis3 fibers node-local, round-robin trades\n"+
		"them for Axis1) but cannot remove it.\n", worstGap)
	return Artifact{
		ID:    "E17-topology",
		Title: "Topology sweep: the lower-bound constant under link contention",
		Text:  tb.String() + note,
		CSV:   tb.CSV(),
	}, nil
}
