package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestMapOrdering checks that results come back in index order regardless
// of worker count, including with far more points than workers.
func TestMapOrdering(t *testing.T) {
	defer SetWorkers(0)
	for _, w := range []int{1, 2, 8, 64} {
		SetWorkers(w)
		out, err := Map(100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

// TestMapFirstErrorByIndex checks the error returned is that of the lowest
// failing index, independent of scheduling.
func TestMapFirstErrorByIndex(t *testing.T) {
	defer SetWorkers(0)
	for _, w := range []int{1, 8} {
		SetWorkers(w)
		_, err := Map(50, func(i int) (int, error) {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return 0, fmt.Errorf("point %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "point 3" {
			t.Fatalf("workers=%d: err = %v, want point 3", w, err)
		}
	}
}

// TestMapContextPreCancelled: a context that is already done stops the
// sweep before fn ever runs, in both the sequential and parallel drivers.
func TestMapContextPreCancelled(t *testing.T) {
	defer SetWorkers(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, w := range []int{1, 8} {
		SetWorkers(w)
		var calls atomic.Int64
		out, err := MapContext(ctx, 50, func(i int) (int, error) {
			calls.Add(1)
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", w, err)
		}
		if out != nil || calls.Load() != 0 {
			t.Fatalf("workers=%d: fn ran %d times on a dead context", w, calls.Load())
		}
	}
}

// TestMapContextMidSweepCancel cancels from inside a point and checks the
// sweep stops early: the context error wins and far fewer than n points run.
func TestMapContextMidSweepCancel(t *testing.T) {
	defer SetWorkers(0)
	for _, w := range []int{1, 8} {
		SetWorkers(w)
		ctx, cancel := context.WithCancel(context.Background())
		var calls atomic.Int64
		_, err := MapContext(ctx, 10_000, func(i int) (int, error) {
			if calls.Add(1) == 5 {
				cancel()
			}
			return i, nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", w, err)
		}
		// In-flight points may finish, but the sweep must not go on to
		// evaluate anything like all 10k indexes.
		if n := calls.Load(); n > 1000 {
			t.Fatalf("workers=%d: %d points ran after cancellation", w, n)
		}
	}
}

// TestMapZeroPoints checks the degenerate sweep.
func TestMapZeroPoints(t *testing.T) {
	out, err := Map(0, func(int) (int, error) { return 0, errors.New("never called") })
	if err != nil || len(out) != 0 {
		t.Fatalf("Map(0) = %v, %v", out, err)
	}
}

// TestParallelSweepByteIdentical runs simulation-backed experiments with
// the sequential driver and with a wide worker pool and requires the
// rendered artifacts to match byte for byte — the determinism contract the
// -workers flag advertises. Under -race this also exercises concurrent
// Worlds sharing the global buffer arena.
func TestParallelSweepByteIdentical(t *testing.T) {
	defer SetWorkers(0)
	run := func(w int) []Artifact {
		SetWorkers(w)
		tight, err := Tightness()
		if err != nil {
			t.Fatalf("workers=%d: Tightness: %v", w, err)
		}
		algs, err := AlgorithmComparison(DefaultCompareN, DefaultCompareP)
		if err != nil {
			t.Fatalf("workers=%d: AlgorithmComparison: %v", w, err)
		}
		scale, err := StrongScaling(DefaultRectDims, []int{1, 2, 4, 8, 16})
		if err != nil {
			t.Fatalf("workers=%d: StrongScaling: %v", w, err)
		}
		return []Artifact{tight, algs, scale}
	}
	seq := run(1)
	par := run(8)
	for i := range seq {
		if seq[i].Text != par[i].Text || seq[i].CSV != par[i].CSV {
			t.Errorf("%s: parallel output differs from sequential", seq[i].ID)
		}
	}
}

// TestMapStopsClaimingAfterFailure is the regression test for the
// early-abort bug: a multi-worker sweep used to keep claiming and
// evaluating every remaining index after a point had already failed,
// burning a full sweep's work to produce an error. Index 0 fails
// immediately; every other point blocks until that failure is in flight,
// so only points claimed before the failure was recorded may run — far
// fewer than n.
func TestMapStopsClaimingAfterFailure(t *testing.T) {
	defer SetWorkers(0)
	const workers, n = 8, 10_000
	SetWorkers(workers)
	var calls atomic.Int64
	gate := make(chan struct{})
	_, err := Map(n, func(i int) (int, error) {
		calls.Add(1)
		if i == 0 {
			close(gate)
			return 0, errors.New("point 0")
		}
		<-gate
		return i, nil
	})
	if err == nil || err.Error() != "point 0" {
		t.Fatalf("err = %v, want point 0", err)
	}
	// Points already claimed when the failure lands are allowed to finish;
	// anything near n means the pool kept claiming after the failure.
	if c := calls.Load(); c > int64(workers*8) {
		t.Fatalf("%d of %d points ran after index 0 failed", c, n)
	}
}
