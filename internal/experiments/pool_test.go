package experiments

import (
	"errors"
	"fmt"
	"testing"
)

// TestMapOrdering checks that results come back in index order regardless
// of worker count, including with far more points than workers.
func TestMapOrdering(t *testing.T) {
	defer SetWorkers(0)
	for _, w := range []int{1, 2, 8, 64} {
		SetWorkers(w)
		out, err := Map(100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

// TestMapFirstErrorByIndex checks the error returned is that of the lowest
// failing index, independent of scheduling.
func TestMapFirstErrorByIndex(t *testing.T) {
	defer SetWorkers(0)
	for _, w := range []int{1, 8} {
		SetWorkers(w)
		_, err := Map(50, func(i int) (int, error) {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return 0, fmt.Errorf("point %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "point 3" {
			t.Fatalf("workers=%d: err = %v, want point 3", w, err)
		}
	}
}

// TestMapZeroPoints checks the degenerate sweep.
func TestMapZeroPoints(t *testing.T) {
	out, err := Map(0, func(int) (int, error) { return 0, errors.New("never called") })
	if err != nil || len(out) != 0 {
		t.Fatalf("Map(0) = %v, %v", out, err)
	}
}

// TestParallelSweepByteIdentical runs simulation-backed experiments with
// the sequential driver and with a wide worker pool and requires the
// rendered artifacts to match byte for byte — the determinism contract the
// -workers flag advertises. Under -race this also exercises concurrent
// Worlds sharing the global buffer arena.
func TestParallelSweepByteIdentical(t *testing.T) {
	defer SetWorkers(0)
	run := func(w int) []Artifact {
		SetWorkers(w)
		tight, err := Tightness()
		if err != nil {
			t.Fatalf("workers=%d: Tightness: %v", w, err)
		}
		algs, err := AlgorithmComparison(DefaultCompareN, DefaultCompareP)
		if err != nil {
			t.Fatalf("workers=%d: AlgorithmComparison: %v", w, err)
		}
		scale, err := StrongScaling(DefaultRectDims, []int{1, 2, 4, 8, 16})
		if err != nil {
			t.Fatalf("workers=%d: StrongScaling: %v", w, err)
		}
		return []Artifact{tight, algs, scale}
	}
	seq := run(1)
	par := run(8)
	for i := range seq {
		if seq[i].Text != par[i].Text || seq[i].CSV != par[i].CSV {
			t.Errorf("%s: parallel output differs from sequential", seq[i].ID)
		}
	}
}
