package experiments

import (
	"repro/internal/core"
	"repro/internal/machine"
)

// Default parameters for the experiment suite. The paper's Figure 2 uses a
// 9600×2400×600 multiplication; the simulation-backed experiments use the
// same aspect ratios scaled down (768×192×48 keeps the case thresholds
// m/n = 4 and mn/k² = 64 and divides evenly under every §5.2 grid used) so
// that a full run takes seconds while volumes remain exact.
var (
	// PaperRectDims is the exact Figure 2 shape, used by the pure-math
	// experiments.
	PaperRectDims = core.NewDims(9600, 2400, 600)
	// DefaultRectDims is the scaled shape used by simulation experiments.
	DefaultRectDims = core.NewDims(768, 192, 48)
	// DefaultRuntimeConfig is a machine where a flop costs 1/16 of a word
	// transfer, putting the comm-bound transition (P* = (γ/3β)³·mnk = 64)
	// inside the default sweep.
	DefaultRuntimeConfig = machine.Config{Alpha: 2, Beta: 1, Gamma: 1.0 / 16}
)

const (
	// DefaultFig1N is the square dimension for the Figure 1 reproduction
	// on a 3×3×3 grid (blocks of 36 words divide the fiber size 3).
	DefaultFig1N = 18
	// DefaultSquareN is the square dimension for the §6.2 memory
	// analysis.
	DefaultSquareN = 1200
	// DefaultMemoryWords is the per-processor memory for the §6.2
	// crossover experiment (enough for modest P, scarce at large P).
	DefaultMemoryWords = 67500.0
	// DefaultCompareN and DefaultCompareP parameterize the algorithm
	// comparison: P = 64 admits every baseline (8×8 2D grids, 4×4×4 3D
	// grid, 2.5D with c ∈ {1, 4}).
	DefaultCompareN = 64
	DefaultCompareP = 64
)
