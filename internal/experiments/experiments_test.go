package experiments

import (
	"regexp"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestTable1ContainsPaperConstants(t *testing.T) {
	a := Table1()
	for _, want := range []string{
		"Aggarwal", "Irony", "Demmel", "Theorem 3",
		"0.64", "0.8165", "0.63", "0.5", // prior constants
	} {
		if !strings.Contains(a.Text, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, a.Text)
		}
	}
	// The Theorem 3 row ends in constants 1 2 3.
	for _, line := range strings.Split(a.Text, "\n") {
		if strings.HasPrefix(line, "Theorem 3") && strings.Contains(line, "this paper") {
			fields := strings.Fields(line)
			n := len(fields)
			if n < 3 || fields[n-3] != "1" || fields[n-2] != "2" || fields[n-1] != "3" {
				t.Errorf("Theorem 3 row wrong: %q", line)
			}
		}
	}
	if a.CSV == "" || a.ID != "E1-table1" {
		t.Error("artifact metadata missing")
	}
}

func TestTable1Numeric(t *testing.T) {
	a := Table1Numeric(PaperRectDims, []int{3, 36, 512})
	if !strings.Contains(a.Text, "Case 1 (1D)") ||
		!strings.Contains(a.Text, "Case 2 (2D)") ||
		!strings.Contains(a.Text, "Case 3 (3D)") {
		t.Fatalf("numeric table missing cases:\n%s", a.Text)
	}
	// In Case 1 the prior 3D-only bounds have no value.
	lines := strings.Split(a.Text, "\n")
	found := false
	for _, l := range lines {
		if strings.HasPrefix(l, "3 ") && strings.Contains(l, "Case 1") {
			if !strings.Contains(l, "-") {
				t.Errorf("Case 1 row should contain '-' for missing bounds: %q", l)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("P=3 row missing:\n%s", a.Text)
	}
}

func TestLemma2CasesCoversAllThree(t *testing.T) {
	a := Lemma2Cases(DefaultRectDims)
	for _, want := range []string{"Case 1 (1D)", "Case 2 (2D)", "Case 3 (3D)"} {
		if !strings.Contains(a.Text, want) {
			t.Errorf("Lemma 2 sweep missing %q:\n%s", want, a.Text)
		}
	}
	// All KKT residuals rendered are small: no residual of magnitude ≥ 1
	// (which would print as a nonzero mantissa with an e+ exponent).
	if regexp.MustCompile(`[1-9]\.[0-9]{2}e\+`).MatchString(a.Text) {
		t.Errorf("large KKT residual in output:\n%s", a.Text)
	}
}

func TestBoundCurves(t *testing.T) {
	a := BoundCurves(DefaultRectDims, 1<<16)
	if !strings.Contains(a.Text, "Theorem 3 (D)") || !strings.Contains(a.Text, "Demmel") {
		t.Fatalf("curve legend missing:\n%s", a.Text)
	}
	if !strings.Contains(a.Text, "m/n") || !strings.Contains(a.Text, "mn/k²") {
		t.Fatalf("continuity table missing:\n%s", a.Text)
	}
}

func TestFigure1(t *testing.T) {
	a, err := Figure1(DefaultFig1N, 27)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.Text, "3x3x3") {
		t.Fatalf("grid missing:\n%s", a.Text)
	}
	// The paper's highlighted processor (1,3,1).
	if !strings.Contains(a.Text, "(1,3,1)") {
		t.Fatalf("highlighted processor missing:\n%s", a.Text)
	}
	// Per-collective cost (1-1/3)·36 = 24 for n=18.
	if !strings.Contains(a.Text, "24") {
		t.Fatalf("collective cost missing:\n%s", a.Text)
	}
}

func TestFigure1RejectsBadGrid(t *testing.T) {
	if _, err := Figure1(10, 27); err == nil {
		t.Fatal("expected error: 3 does not divide 10")
	}
}

func TestFigure2GridsAndCosts(t *testing.T) {
	a := Figure2()
	for _, want := range []string{
		"3x1x1", "12x3x1", "32x8x2", // the paper's grids
		"3200x2400x600", "800x800x600", "300x300x300", // the paper's local bricks
	} {
		if !strings.Contains(a.Text, want) {
			t.Errorf("Figure 2 missing %q:\n%s", want, a.Text)
		}
	}
	// §5.3 observations about which matrices move.
	lines := strings.Split(a.Text, "\n")
	for _, l := range lines {
		switch {
		case strings.Contains(l, "3x1x1"):
			if !strings.Contains(l, "B") || strings.Contains(l, "A ") {
				t.Errorf("1D row should move only B: %q", l)
			}
		case strings.Contains(l, "32x8x2"):
			if !strings.Contains(l, "A B C") {
				t.Errorf("3D row should move all: %q", l)
			}
		}
	}
}

func TestTightnessRatiosAreOne(t *testing.T) {
	a, err := Tightness()
	if err != nil {
		t.Fatal(err)
	}
	// Every P > 1 row reports measured/bound = 1.000000.
	count := strings.Count(a.Text, "1.000000")
	if count < len(TightnessPoints)-1 {
		t.Fatalf("expected ≥ %d exact rows, got %d:\n%s", len(TightnessPoints)-1, count, a.Text)
	}
	if strings.Contains(a.Text, "false") {
		t.Fatalf("correctness failure in tightness:\n%s", a.Text)
	}
}

func TestAlgorithmComparison(t *testing.T) {
	a, err := AlgorithmComparison(DefaultCompareN, DefaultCompareP)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Alg1", "AllToAll3D", "OneD", "SUMMA", "Cannon", "TwoPointFiveD"} {
		if !strings.Contains(a.Text, name) {
			t.Errorf("comparison missing %s:\n%s", name, a.Text)
		}
	}
	// Alg1 should be at ratio 1.000 (the 4x4x4 grid divides 48 evenly).
	for _, l := range strings.Split(a.Text, "\n") {
		if strings.HasPrefix(l, "Alg1 ") {
			if !strings.Contains(l, "1.000") {
				t.Errorf("Alg1 not at the bound: %q", l)
			}
		}
		if strings.HasPrefix(l, "OneD") {
			// 1D on a square Case 3 problem is far off the bound.
			if strings.Contains(l, "1.000") {
				t.Errorf("OneD unexpectedly at the bound: %q", l)
			}
		}
	}
}

func TestStrongScaling(t *testing.T) {
	a, err := StrongScaling(core.NewDims(64, 32, 16), []int{1, 2, 4, 8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.Text, "Case 1") && !strings.Contains(a.Text, "Case 2") {
		t.Fatalf("scaling sweep missing early cases:\n%s", a.Text)
	}
}

func TestLimitedMemoryShowsCrossover(t *testing.T) {
	a := LimitedMemory(DefaultSquareN, DefaultMemoryWords)
	if !strings.Contains(a.Text, "memory-dependent") || !strings.Contains(a.Text, "memory-independent") {
		t.Fatalf("binding column broken:\n%s", a.Text)
	}
	if !strings.Contains(a.Text, "Perfect strong scaling") {
		t.Fatalf("strong-scaling note missing:\n%s", a.Text)
	}
}

// TestFabricScale runs the datacenter fabric study at its smaller
// supported size (P = 4096, still well above the charge oracle's table
// threshold) and checks the structural invariants: flat rows exact, every
// fabric × placement cell present, some fabric congested.
func TestFabricScale(t *testing.T) {
	if testing.Short() {
		t.Skip("4096-rank simulations")
	}
	a, err := FabricScale(4096)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != "E18-fabric-scale" {
		t.Fatalf("ID = %q", a.ID)
	}
	for _, want := range []string{"flat", "twolevel=64", "torus=16x16x16", "fattree=4x6", "contiguous", "roundrobin", "walk"} {
		if !strings.Contains(a.Text, want) {
			t.Errorf("artifact missing %q:\n%s", want, a.Text)
		}
	}
	if strings.Count(a.CSV, "\n") < 8 {
		t.Fatalf("expected 8 data rows:\n%s", a.CSV)
	}
}

// TestFabricScaleRejectsUnknownP pins the parameterization contract.
func TestFabricScaleRejectsUnknownP(t *testing.T) {
	if _, err := FabricScale(1000); err == nil {
		t.Fatal("P=1000 accepted")
	}
}

func TestAllRuns(t *testing.T) {
	arts, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 18 {
		t.Fatalf("All returned %d artifacts", len(arts))
	}
	seen := map[string]bool{}
	for _, a := range arts {
		if a.ID == "" || a.Text == "" {
			t.Errorf("artifact %q incomplete", a.ID)
		}
		if seen[a.ID] {
			t.Errorf("duplicate artifact %q", a.ID)
		}
		seen[a.ID] = true
		if !strings.Contains(a.String(), a.Title) {
			t.Errorf("String() missing title for %q", a.ID)
		}
	}
}

func TestGeometryExperiment(t *testing.T) {
	a, err := Geometry()
	if err != nil {
		t.Fatal(err)
	}
	// The optimal brick rows sit exactly at the bound.
	if strings.Count(a.Text, "1.000") < 4 {
		t.Fatalf("expected 4 exact rows:\n%s", a.Text)
	}
	if !strings.Contains(a.Text, "random assignment") || !strings.Contains(a.Text, "misoriented") {
		t.Fatalf("adversarial partitions missing:\n%s", a.Text)
	}
}

func TestCARMAComparisonExperiment(t *testing.T) {
	a := CARMAComparison()
	if !strings.Contains(a.Text, "CARMA") {
		t.Fatalf("missing content:\n%s", a.Text)
	}
	// At least one row where CARMA is exactly optimal (square, cube P)
	// and the table runs across all cases.
	if !strings.Contains(a.Text, "Case 3") {
		t.Fatalf("cases missing:\n%s", a.Text)
	}
}

func TestExtensionExperiment(t *testing.T) {
	a, err := Extension()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(a.Text, "1.000000") < 3 {
		t.Fatalf("expected exact attainment rows:\n%s", a.Text)
	}
	if !strings.Contains(a.Text, "4/4") {
		t.Fatalf("expected fully free regime at large P:\n%s", a.Text)
	}
}

func TestRuntimeModelExperiment(t *testing.T) {
	a, err := RuntimeModel(DefaultRectDims, DefaultRuntimeConfig, []int{1, 16, 512})
	if err != nil {
		t.Fatal(err)
	}
	// Relative model error column should be zero-ish on these dividing
	// grids: no entry with a nonzero mantissa and a non-negative exponent.
	if regexp.MustCompile(`[+-][1-9]\.[0-9]{2}e\+`).MatchString(a.Text) {
		t.Fatalf("large model error:\n%s", a.Text)
	}
	if !strings.Contains(a.Text, "comm-bound") && !strings.Contains(a.Text, "communication-bound") {
		t.Fatalf("threshold note missing:\n%s", a.Text)
	}
}

func TestFastMatmulExperiment(t *testing.T) {
	a, err := FastMatmul(4096, []int{1, 64})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.Text, "Strassen") {
		t.Fatalf("missing content:\n%s", a.Text)
	}
}

func TestModelRobustnessExperiment(t *testing.T) {
	a := ModelRobustness()
	if !strings.Contains(a.Text, "LPRAM") || !strings.Contains(a.Text, "supersteps") {
		t.Fatalf("missing content:\n%s", a.Text)
	}
}

func TestCAPSExperiment(t *testing.T) {
	a, err := CAPSExperiment(16)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.Text, "Strassen") || !strings.Contains(a.Text, "counting twin") {
		t.Fatalf("missing content:\n%s", a.Text)
	}
}

func TestMemoryTradeoffExperiment(t *testing.T) {
	a, err := MemoryTradeoff(DefaultRectDims, 512)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.Text, "none — no grid") {
		t.Fatalf("expected the feasibility cliff below D:\n%s", a.Text)
	}
	if !strings.Contains(a.Text, "2.5D replication sweep") || strings.Contains(a.Text, "false") {
		t.Fatalf("trade-off sweep broken:\n%s", a.Text)
	}
}

// TestSuiteDeterminism runs the entire experiment suite twice and demands
// byte-identical artifacts: the simulator is deterministic (no wall clock,
// no scheduling dependence), inputs are seeded, and every table renders
// stably — the property that makes EXPERIMENTS.md's recorded numbers
// reproducible.
func TestSuiteDeterminism(t *testing.T) {
	first, err := All()
	if err != nil {
		t.Fatal(err)
	}
	second, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("artifact counts differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i].Text != second[i].Text || first[i].CSV != second[i].CSV {
			t.Errorf("artifact %s not deterministic", first[i].ID)
		}
	}
}

func TestTopologySweep(t *testing.T) {
	a, err := TopologySweep()
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != "E17-topology" {
		t.Errorf("ID = %q", a.ID)
	}
	// The flat fabric must reproduce the paper's model exactly, and at
	// least one shared-link fabric must show a quantified gap; both are
	// enforced inside the experiment, so here we pin the rendering.
	for _, want := range []string{"flat", "twolevel=8", "torus=4x4x4", "fattree=4x3", "tree=4x3", "roundrobin", "sim/flat", "1.000"} {
		if !strings.Contains(a.Text, want) {
			t.Errorf("artifact missing %q:\n%s", want, a.Text)
		}
	}
	if a.CSV == "" {
		t.Error("no CSV emitted")
	}
}
