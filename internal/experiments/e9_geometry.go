package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/lattice"
	"repro/internal/report"
)

// Geometry runs the lattice-level verification of Theorem 3: on a small
// instance (32×8×2, the minimal Figure 2 aspect ratio), it enumerates
// explicit work partitions — Algorithm 1's bricks on the optimal grid,
// bricks on misoriented grids, and random balanced assignments — and
// compares each partition's loaded projection sum |φ_A|+|φ_B|+|φ_C|
// against the Lemma 2 optimum D. The theorem says no partition can go
// below D; the optimal bricks meet it exactly.
func Geometry() (Artifact, error) {
	d := core.NewDims(32, 8, 2)
	type entry struct {
		name string
		p    int
		pt   *lattice.Partition
	}
	entries := []entry{
		{"optimal bricks 4x1x1", 4, lattice.BrickPartition(32, 8, 2, 4, 1, 1)},
		{"optimal bricks 8x2x1", 16, lattice.BrickPartition(32, 8, 2, 8, 2, 1)},
		{"optimal bricks 16x4x1", 64, lattice.BrickPartition(32, 8, 2, 16, 4, 1)},
		{"optimal bricks 32x8x2", 512, lattice.BrickPartition(32, 8, 2, 32, 8, 2)},
		{"misoriented bricks 1x8x2", 16, lattice.BrickPartition(32, 8, 2, 1, 8, 2)},
		{"misoriented bricks 2x8x1", 16, lattice.BrickPartition(32, 8, 2, 2, 8, 1)},
		{"random assignment", 16, lattice.RandomPartition(32, 8, 2, 16, 7)},
	}
	tb := report.NewTable(
		fmt.Sprintf("Projection sums of explicit partitions of the %v iteration space", d),
		"partition", "P", "max loaded |φA|+|φB|+|φC|", "Lemma 2 optimum D", "ratio",
	)
	for _, e := range entries {
		if err := e.pt.Validate(); err != nil {
			return Artifact{}, fmt.Errorf("geometry %s: %w", e.name, err)
		}
		if err := e.pt.CheckLowerBoundInvariants(); err != nil {
			return Artifact{}, fmt.Errorf("geometry %s: %w", e.name, err)
		}
		sum, loaded := e.pt.MaxLoadedProjectionSum()
		dOpt := core.D(d, e.p)
		if !loaded {
			tb.AddRow(e.name, fmt.Sprintf("%d", e.p), "(no 1/P-loaded processor)", report.Num(dOpt), "-")
			continue
		}
		if float64(sum) < dOpt-1e-9 {
			return Artifact{}, fmt.Errorf("geometry %s: projection sum %d below D = %v — Theorem 3 violated", e.name, sum, dOpt)
		}
		tb.AddRow(
			e.name,
			fmt.Sprintf("%d", e.p),
			fmt.Sprintf("%d", sum),
			report.Num(dOpt),
			fmt.Sprintf("%.3f", float64(sum)/dOpt),
		)
	}
	return Artifact{
		ID:    "E9-geometry",
		Title: "Lattice-level verification: every partition's footprint ≥ D, optimal bricks = D",
		Text:  tb.String(),
		CSV:   tb.CSV(),
	}, nil
}
