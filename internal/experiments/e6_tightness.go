package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/algs"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/report"
)

// TightnessPoints lists the (P) values of the tightness sweep on the scaled
// Figure 2 shape; each admits an exact §5.2 grid that divides the
// dimensions and fiber shares evenly, so attainment is word-exact.
var TightnessPoints = []int{1, 2, 3, 4, 16, 36, 64, 512}

// Tightness runs the §5.2 tightness experiment in simulation: Algorithm 1
// with the case-optimal grid on the scaled Figure 2 shape, at P values
// covering all three cases. For each P it reports the measured per-rank
// communication, the eq. (3) prediction, and Theorem 3's bound — all three
// agree to the word — plus the product-correctness check.
func Tightness() (Artifact, error) { return TightnessContext(context.Background()) }

// TightnessContext is Tightness honoring cancellation between sweep points.
func TightnessContext(ctx context.Context) (Artifact, error) {
	d := DefaultRectDims
	a := matrix.Random(d.N1, d.N2, 7)
	b := matrix.Random(d.N2, d.N3, 8)
	want := matrix.Mul(a, b)

	tb := report.NewTable(
		fmt.Sprintf("Algorithm 1 vs Theorem 3 on %v (words per processor)", d),
		"P", "case", "grid", "measured", "eq.(3)", "Theorem 3 bound", "measured/bound", "correct",
	)
	rows, err := MapContext(ctx, len(TightnessPoints), func(i int) ([]string, error) {
		p := TightnessPoints[i]
		g, err := grid.CaseGrid(d, p)
		if err != nil {
			return nil, fmt.Errorf("tightness P=%d: %w", p, err)
		}
		res, err := algs.Alg1(a, b, p, algs.Opts{Config: machine.BandwidthOnly(), Grid: g})
		if err != nil {
			return nil, fmt.Errorf("tightness P=%d: %w", p, err)
		}
		bound := core.LowerBound(d, p)
		ratio := 1.0
		if bound > 0 {
			ratio = res.CommCost() / bound
		}
		ok := res.C.MaxAbsDiff(want) <= 1e-9*float64(d.N2)
		if !ok {
			return nil, fmt.Errorf("tightness P=%d: wrong product", p)
		}
		if bound > 0 && math.Abs(res.CommCost()-bound) > 1e-9*(1+bound) {
			return nil, fmt.Errorf("tightness P=%d: measured %v != bound %v", p, res.CommCost(), bound)
		}
		return []string{
			fmt.Sprintf("%d", p),
			core.CaseOf(d, p).String(),
			g.String(),
			report.Num(res.CommCost()),
			report.Num(grid.CommCost(d, g)),
			report.Num(bound),
			fmt.Sprintf("%.6f", ratio),
			fmt.Sprintf("%v", ok),
		}, nil
	})
	if err != nil {
		return Artifact{}, err
	}
	for _, row := range rows {
		tb.AddRow(row...)
	}
	return Artifact{
		ID:    "E6-tightness",
		Title: "§5.2: Algorithm 1 attains the lower bound exactly in all three cases",
		Text:  tb.String(),
		CSV:   tb.CSV(),
	}, nil
}
