package experiments

import (
	"fmt"

	"repro/internal/extension"
	"repro/internal/machine"
	"repro/internal/report"
)

// Extension runs the §6.3 generalization one dimension up: the d = 4
// cuboid computation (three input arrays, one output, each omitting one
// index) with the generalized water-filling bound, verifying that the
// simulated All-Gather/Reduce-Scatter algorithm attains it on the optimal
// grid and that the KKT certificates hold, exactly as for matmul.
func Extension() (Artifact, error) {
	pr, err := extension.NewProblem(16, 16, 16, 16)
	if err != nil {
		return Artifact{}, err
	}
	tb := report.NewTable(
		fmt.Sprintf("d = 4 cuboid computation, dims %v (generalized Theorem 3)", pr.N),
		"P", "free vars (case analog)", "grid", "measured words/proc", "bound", "ratio", "KKT residual",
	)
	for _, p := range []int{1, 4, 16, 256} {
		g := extension.Optimal(pr, p)
		res, err := extension.Run(pr, g, 21, machine.BandwidthOnly())
		if err != nil {
			return Artifact{}, fmt.Errorf("extension P=%d: %w", p, err)
		}
		_, free := pr.DataFootprint(p)
		bound := pr.LowerBound(p)
		ratio := 1.0
		if bound > 0 {
			ratio = res.Stats.CommCost() / bound
		}
		tb.AddRow(
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%d/4", free),
			g.String(),
			report.Num(res.Stats.CommCost()),
			report.Num(bound),
			fmt.Sprintf("%.6f", ratio),
			fmt.Sprintf("%.2e", pr.KKTCertificate(p)),
		)
	}
	note := "\nThe d = 3 instance of this machinery reproduces Theorem 3 exactly (tested in internal/extension).\n"
	return Artifact{
		ID:    "E11-extension",
		Title: "§6.3: the technique generalized to 4-dimensional iteration spaces",
		Text:  tb.String() + note,
		CSV:   tb.CSV(),
	}, nil
}
