package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
)

// Lemma2Cases reproduces the case diagram of Lemma 2: sweeping P across the
// thresholds m/n and mn/k², it reports the optimizer x* (from the closed
// form), the independent water-filling solution, the active-set size, and
// the maximum KKT residual of the paper's dual certificate — the
// machine-checked content of the Lemma 2 proof.
func Lemma2Cases(d core.Dims) Artifact {
	t1, t2 := core.Thresholds(d)
	tb := report.NewTable(
		fmt.Sprintf("Lemma 2 optimum for %v (thresholds m/n = %s, mn/k² = %s)",
			d, report.Num(t1), report.Num(t2)),
		"P", "case", "x1*", "x2*", "x3*", "D = Σx*", "numeric Σx*", "KKT residual",
	)
	for _, p := range lemma2SweepPoints(t1, t2) {
		sol := core.Lemma2Closed(d, p)
		num := core.Lemma2Numeric(d, p)
		tb.AddRow(
			fmt.Sprintf("%d", p),
			sol.Case.String(),
			report.Num(sol.X1), report.Num(sol.X2), report.Num(sol.X3),
			report.Num(sol.Sum()),
			report.Num(num.Sum()),
			fmt.Sprintf("%.2e", core.Lemma2KKTRelativeResidual(d, p)),
		)
	}
	return Artifact{
		ID:    "E2-lemma2",
		Title: "Lemma 2: optimizer, case structure, and KKT certificates",
		Text:  tb.String(),
		CSV:   tb.CSV(),
	}
}

// lemma2SweepPoints picks P values covering all three regimes including the
// exact thresholds (when integral) and points just beside them.
func lemma2SweepPoints(t1, t2 float64) []int {
	add := func(set map[int]bool, v float64) {
		if v >= 1 {
			set[int(v)] = true
		}
	}
	set := map[int]bool{1: true}
	add(set, t1/2)
	add(set, t1)
	add(set, t1+1)
	add(set, (t1+t2)/2)
	add(set, t2)
	add(set, t2+1)
	add(set, 4*t2)
	add(set, 64*t2)
	var ps []int
	for p := range set {
		ps = append(ps, p)
	}
	// Insertion sort: the slice is tiny.
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j] < ps[j-1]; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
	return ps
}
