package experiments

import (
	"context"
	"fmt"

	"repro/internal/algs"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/model"
	"repro/internal/report"
)

// RuntimeModel validates the closed-form α-β-γ execution-time model against
// the simulator and derives the strong-scaling consequences the lower
// bounds impose: predicted == simulated on conforming grids, speedup
// saturates, and efficiency decays once P passes the communication-bound
// threshold (γ/3β)³·mnk.
func RuntimeModel(d core.Dims, cfg machine.Config, ps []int) (Artifact, error) {
	return RuntimeModelContext(context.Background(), d, cfg, ps)
}

// RuntimeModelContext is RuntimeModel honoring cancellation between sweep
// points.
func RuntimeModelContext(ctx context.Context, d core.Dims, cfg machine.Config, ps []int) (Artifact, error) {
	a := matrix.Random(d.N1, d.N2, 31)
	b := matrix.Random(d.N2, d.N3, 32)
	serial := model.SerialTime(d, cfg)
	tb := report.NewTable(
		fmt.Sprintf("Runtime model vs simulation for %v (α=%g β=%g γ=%g)", d, cfg.Alpha, cfg.Beta, cfg.Gamma),
		"P", "grid", "predicted", "simulated", "rel err", "speedup", "efficiency", "compute share",
	)
	rows, err := MapContext(ctx, len(ps), func(i int) ([]string, error) {
		p := ps[i]
		g := grid.Optimal(d, p)
		pred := model.Alg1Time(d, g, cfg, collective.Auto)
		res, err := algs.Alg1(a, b, p, algs.Opts{Config: cfg, Grid: g})
		if err != nil {
			return nil, fmt.Errorf("runtime P=%d: %w", p, err)
		}
		sim := res.Stats.CriticalPath
		rel := 0.0
		if sim > 0 {
			rel = (pred.Total() - sim) / sim
		}
		speedup := 1.0
		if pred.Total() > 0 {
			speedup = serial / pred.Total()
		}
		share := 1.0
		if pred.Total() > 0 {
			share = pred.Compute / pred.Total()
		}
		return []string{
			fmt.Sprintf("%d", p),
			g.String(),
			report.Num(pred.Total()),
			report.Num(sim),
			fmt.Sprintf("%+.2e", rel),
			fmt.Sprintf("%.1f", speedup),
			fmt.Sprintf("%.3f", speedup/float64(p)),
			fmt.Sprintf("%.3f", share),
		}, nil
	})
	if err != nil {
		return Artifact{}, err
	}
	for _, row := range rows {
		tb.AddRow(row...)
	}
	note := fmt.Sprintf("\ncommunication-bound threshold P* = (γ/3β)³·mnk = %s\n",
		report.Num(model.CommBoundProcessors(d, cfg)))
	return Artifact{
		ID:    "E12-runtime",
		Title: "Runtime model: predicted vs simulated time, speedup, and the comm-bound regime",
		Text:  tb.String() + note,
		CSV:   tb.CSV(),
	}, nil
}
