package experiments

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// workerCount is the configured fan-out width for Map; 0 means "use
// runtime.GOMAXPROCS(0) at call time".
var workerCount atomic.Int32

// SetWorkers sets how many goroutines Map uses to evaluate sweep points.
// n ≤ 0 restores the default (runtime.GOMAXPROCS(0)). The cmd/sweep and
// cmd/paper binaries expose this as their -workers flag.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workerCount.Store(int32(n))
}

// Workers reports the fan-out width Map will use.
func Workers() int {
	if n := int(workerCount.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map evaluates fn(0), …, fn(n-1) across Workers() goroutines and returns
// the results in index order, so output built from them is byte-identical
// regardless of the worker count. fn must therefore be safe to call
// concurrently (the experiment sweeps qualify: every point builds its own
// simulated World and only reads the shared input matrices).
//
// If any call fails, Map returns the error of the lowest failing index —
// again independent of scheduling. With one worker the points run strictly
// in order and evaluation stops at the first error.
func Map[T any](n int, fn func(int) (T, error)) ([]T, error) {
	return MapContext(context.Background(), n, fn)
}

// MapContext is Map honoring cancellation: workers stop picking up new
// indexes once ctx is done, already-running fn calls finish, and the ctx
// error is returned (taking precedence over any fn error, since the
// un-evaluated indexes make the sweep incomplete either way). A failing fn
// call likewise stops further claims — in-flight points finish, points not
// yet claimed are never evaluated — without changing which error is
// returned. fn itself is not passed the context; sweep points are short
// relative to a sweep, so between-point cancellation is what long runs
// need.
// MapChunksContext evaluates fn(0), …, fn(n-1) in chunks of chunk indexes:
// each chunk fans out across the worker pool exactly like MapContext, then
// emit receives the chunk's results in index order before the next chunk
// starts. Peak memory is one chunk of results rather than all n, which is
// what lets a caller stream a very large sweep (the /v1/plan NDJSON path)
// without buffering it. chunk ≤ 0 selects 256. An fn error aborts with the
// lowest failing index of its chunk (MapContext's contract); an emit error
// aborts with that error; ctx cancellation stops new claims and returns
// ctx's error.
func MapChunksContext[T any](ctx context.Context, n, chunk int, fn func(int) (T, error), emit func([]T) error) error {
	if chunk <= 0 {
		chunk = 256
	}
	for start := 0; start < n; start += chunk {
		m := chunk
		if start+m > n {
			m = n - start
		}
		out, err := MapContext(ctx, m, func(j int) (T, error) { return fn(start + j) })
		if err != nil {
			return err
		}
		if err := emit(out); err != nil {
			return err
		}
	}
	return nil
}

func MapContext[T any](ctx context.Context, n int, fn func(int) (T, error)) ([]T, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]T, n)
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	// failedAt is the lowest index whose fn call has failed so far (n =
	// none). Workers stop claiming once any failure is recorded: indexes
	// are claimed monotonically, so everything below the recorded failure
	// is already claimed and will finish, which keeps the
	// lowest-failing-index contract exact while sparing the (possibly
	// expensive) evaluation of every point above it.
	var failedAt atomic.Int64
	failedAt.Store(int64(n))
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				if failedAt.Load() < int64(n) {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
				if errs[i] != nil {
					for {
						cur := failedAt.Load()
						if int64(i) >= cur || failedAt.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if f := failedAt.Load(); f < int64(n) {
		return nil, errs[f]
	}
	return out, nil
}
