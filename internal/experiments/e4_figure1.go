package experiments

import (
	"fmt"

	"repro/internal/algs"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/report"
)

// Figure1 reproduces the structure of the paper's Figure 1: Algorithm 1 on
// a 3×3×3 grid (P = 27) for a square problem, reporting per processor the
// initially owned data, and the words received in each of the three
// collectives (the All-Gather of A over the Axis3 fiber, the All-Gather of
// B over the Axis1 fiber, and the Reduce-Scatter of C over the Axis2
// fiber), verified against the (1 − 1/p)·w collective cost formula and the
// total against Theorem 3.
func Figure1(n, p int) (Artifact, error) {
	d := core.Square(n)
	g, err := grid.CaseGrid(d, p)
	if err != nil {
		return Artifact{}, err
	}
	a := matrix.Random(n, n, 41)
	b := matrix.Random(n, n, 42)
	res, err := algs.Alg1(a, b, p, algs.Opts{Config: machine.BandwidthOnly(), Grid: g})
	if err != nil {
		return Artifact{}, err
	}
	if diff := res.C.MaxAbsDiff(matrix.Mul(a, b)); diff > 1e-9*float64(n) {
		return Artifact{}, fmt.Errorf("figure1: wrong product (max diff %g)", diff)
	}

	blockWords := float64((n / g.P1) * (n / g.P2))
	predicted := (1 - 1.0/float64(g.P3)) * blockWords
	tb := report.NewTable(
		fmt.Sprintf("Algorithm 1 on a %v grid, %v (bandwidth-only cost model)", g, d),
		"rank", "coords", "owned words", "recv A-gather", "recv B-gather", "recv C-reduce", "recv total",
	)
	// Show the paper's highlighted processor (1,3,1) → zero-based (0,2,0)
	// first, then a few others.
	highlight := g.Rank(0, 2, 0)
	order := []int{highlight}
	for r := 0; r < p && len(order) < 5; r++ {
		if r != highlight {
			order = append(order, r)
		}
	}
	for _, r := range order {
		i1, i2, i3 := g.Coords(r)
		rs := res.Stats.Ranks[r]
		tb.AddRow(
			fmt.Sprintf("%d", r),
			fmt.Sprintf("(%d,%d,%d)", i1+1, i2+1, i3+1),
			report.Num(3*blockWords/3), // one third of each of the three blocks
			report.Num(rs.PhaseRecvWords[algs.PhaseGatherA]),
			report.Num(rs.PhaseRecvWords[algs.PhaseGatherB]),
			report.Num(rs.PhaseRecvWords[algs.PhaseReduceC]),
			report.Num(rs.WordsRecv),
		)
	}
	summary := fmt.Sprintf(
		"\nper-collective formula (1-1/p)·w = %s words; measured max total = %s; Theorem 3 bound = %s\n",
		report.Num(predicted), report.Num(res.CommCost()), report.Num(core.LowerBound(d, p)))
	return Artifact{
		ID:    "E4-figure1",
		Title: "Figure 1: data movement of Algorithm 1 on a 3x3x3 grid",
		Text:  tb.String() + summary,
		CSV:   tb.CSV(),
	}, nil
}
