package experiments

import (
	"context"
	"fmt"

	"repro/internal/algs"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/report"
)

// AlgorithmComparison runs every implemented algorithm on the same square
// n×n problem with P processors and compares measured per-processor
// communication, message counts, peak memory, and the ratio to Theorem 3's
// bound. On a square problem all P > 1 fall in Case 3, so the 3D
// algorithms win and the 1D/2D baselines pay the predicted factors.
func AlgorithmComparison(n, p int) (Artifact, error) {
	return AlgorithmComparisonContext(context.Background(), n, p)
}

// AlgorithmComparisonContext is AlgorithmComparison honoring cancellation
// between algorithms.
func AlgorithmComparisonContext(ctx context.Context, n, p int) (Artifact, error) {
	d := core.Square(n)
	a := matrix.Random(n, n, 17)
	b := matrix.Random(n, n, 18)
	want := matrix.Mul(a, b)
	bound := core.LowerBound(d, p)

	tb := report.NewTable(
		fmt.Sprintf("Algorithms on %v, P = %d (bound = %s words/proc)", d, p, report.Num(bound)),
		"algorithm", "grid", "words/proc", "ratio to bound", "messages/proc", "peak memory", "correct",
	)
	entries := algs.Registry()
	rows, err := MapContext(ctx, len(entries), func(i int) ([]string, error) {
		e := entries[i]
		res, err := e.Run(a, b, p, algs.Opts{Config: machine.BandwidthOnly()})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name, err)
		}
		ok := res.C.MaxAbsDiff(want) <= 1e-9*float64(n)
		if !ok {
			return nil, fmt.Errorf("%s: wrong product", e.Name)
		}
		maxMsgs := 0
		for _, rs := range res.Stats.Ranks {
			if rs.MsgsRecv > maxMsgs {
				maxMsgs = rs.MsgsRecv
			}
		}
		return []string{
			e.Name,
			res.Grid.String(),
			report.Num(res.CommCost()),
			fmt.Sprintf("%.3f", res.CommCost()/bound),
			fmt.Sprintf("%d", maxMsgs),
			report.Num(res.Stats.MaxPeakMemory),
			fmt.Sprintf("%v", ok),
		}, nil
	})
	if err != nil {
		return Artifact{}, err
	}
	for _, row := range rows {
		tb.AddRow(row...)
	}
	return Artifact{
		ID:    "E7-algorithms",
		Title: "Baseline comparison: who attains the bound, who pays more (§2.4 context)",
		Text:  tb.String(),
		CSV:   tb.CSV(),
	}, nil
}

// StrongScaling sweeps P for a fixed rectangular problem, running Algorithm
// 1 with the exhaustively optimal grid at every P (dividing or not) and
// reporting measured communication against the bound — showing the regime
// transitions of Theorem 3 on measured data.
func StrongScaling(d core.Dims, ps []int) (Artifact, error) {
	return StrongScalingContext(context.Background(), d, ps)
}

// StrongScalingContext is StrongScaling honoring cancellation between sweep
// points.
func StrongScalingContext(ctx context.Context, d core.Dims, ps []int) (Artifact, error) {
	a := matrix.Random(d.N1, d.N2, 23)
	b := matrix.Random(d.N2, d.N3, 29)
	want := matrix.Mul(a, b)
	tb := report.NewTable(
		fmt.Sprintf("Strong scaling of Algorithm 1 on %v", d),
		"P", "case", "grid", "words/proc", "bound", "ratio", "critical path (words)",
	)
	rows, err := MapContext(ctx, len(ps), func(i int) ([]string, error) {
		p := ps[i]
		res, err := algs.Alg1(a, b, p, algs.Opts{Config: machine.BandwidthOnly()})
		if err != nil {
			return nil, fmt.Errorf("P=%d: %w", p, err)
		}
		if res.C.MaxAbsDiff(want) > 1e-9*float64(d.N2) {
			return nil, fmt.Errorf("P=%d: wrong product", p)
		}
		bound := core.LowerBound(d, p)
		ratio := 1.0
		if bound > 0 {
			ratio = res.CommCost() / bound
		}
		return []string{
			fmt.Sprintf("%d", p),
			core.CaseOf(d, p).String(),
			res.Grid.String(),
			report.Num(res.CommCost()),
			report.Num(bound),
			fmt.Sprintf("%.3f", ratio),
			report.Num(res.Stats.CriticalPath),
		}, nil
	})
	if err != nil {
		return Artifact{}, err
	}
	for _, row := range rows {
		tb.AddRow(row...)
	}
	return Artifact{
		ID:    "E7b-strong-scaling",
		Title: "Strong scaling across the three regimes",
		Text:  tb.String(),
		CSV:   tb.CSV(),
	}, nil
}
