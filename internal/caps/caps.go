// Package caps implements a Communication-Avoiding Parallel Strassen
// (CAPS-style, Ballard et al. 2012) matrix multiplication on the simulated
// α-β-γ machine, for P = 7^K processors — the algorithm family that
// attains the *fast* memory-independent communication bounds of §2.3
// (Ballard et al. 2012b): per-processor volume Θ(n²/P^{2/ω0}) with
// ω0 = log₂ 7, strictly below the classical Theorem 3 floor of
// 3(n³/P)^{2/3} for large P, because Strassen performs fewer scalar
// multiplications.
//
// The implementation executes breadth-first (BFS) Strassen steps: at each
// recursion level the current group of q = 7^j processors jointly forms
// the seven operand pairs (T_i, S_i) from quadrant linear combinations —
// local arithmetic, thanks to a distribution invariant — then
// redistributes each pair to one subgroup of q/7 processors, recurses, and
// redistributes the seven products M_i back to combine them into the
// quadrants of C.
//
// Distribution invariant: a group of q = 7^j processors holds an m×m
// matrix as its quadtree *leaf blocks* at depth j (4^j blocks of
// (m/2^j)×(m/2^j), in NW, NE, SW, SE recursive order), each leaf's packed
// words split into q balanced contiguous ranges, one per group member.
// Because every leaf has the same word count, each member's share of the
// four quadrant subtrees are equal-length aligned vectors, so the Strassen
// combinations T_i, S_i (and later the C quadrants) are elementwise vector
// arithmetic on local data. The BFS redistributions are then pure interval
// reshuffles — per leaf, the q-way balanced partition is exchanged for the
// (q/7)-way partition of the owning subgroup (downward), and back
// (upward) — whose volumes are exactly the CAPS BFS-step costs.
package caps

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/matrix"
)

// Result is the outcome of a CAPS multiplication.
type Result struct {
	// C is the assembled product.
	C *matrix.Dense
	// Stats are the machine statistics of the run.
	Stats machine.WorldStats
	// Levels is the number of BFS Strassen levels (P = 7^Levels).
	Levels int
}

// CommCost returns the per-processor communication volume (max words
// received by any rank).
func (r *Result) CommCost() float64 { return r.Stats.CommCost() }

// Multiply runs CAPS on p = 7^levels simulated processors. The matrices
// must be square n×n with n divisible by 2^levels.
func Multiply(a, b *matrix.Dense, levels int, cfg machine.Config) (*Result, error) {
	if a.Rows() != a.Cols() || b.Rows() != b.Cols() || a.Cols() != b.Rows() {
		return nil, fmt.Errorf("caps: need square matrices, got %dx%d · %dx%d: %w", a.Rows(), a.Cols(), b.Rows(), b.Cols(), core.ErrBadDims)
	}
	n := a.Rows()
	if levels < 0 {
		return nil, fmt.Errorf("caps: negative levels: %w", core.ErrBadProcessorCount)
	}
	if n%(1<<levels) != 0 {
		return nil, fmt.Errorf("caps: n=%d not divisible by 2^%d: %w", n, levels, core.ErrGridMismatch)
	}
	p := 1
	for i := 0; i < levels; i++ {
		p *= 7
	}

	w := machine.NewWorld(p, cfg)
	shares := make([][]float64, p)
	runErr := w.Run(func(r *machine.Rank) {
		aShare := extractShare(a, levels, p, r.ID())
		bShare := extractShare(b, levels, p, r.ID())
		r.GrowMemory(float64(len(aShare) + len(bShare)))
		group := make([]int, p)
		for i := range group {
			group[i] = i
		}
		shares[r.ID()] = capsNode(r, group, n, aShare, bShare, 0)
	})
	if runErr != nil {
		return nil, runErr
	}

	c := assemble(n, levels, p, shares)
	return &Result{C: c, Stats: w.Stats(), Levels: levels}, nil
}

// PredictedVolumes returns the exact per-rank received-word counts of the
// BFS schedule, computed by a pure counting twin of the executor's
// interval arithmetic (same balanced partitions, same overlaps). Tests
// assert the simulated volumes equal these word-for-word.
func PredictedVolumes(n, levels int) []float64 {
	p := 1
	for i := 0; i < levels; i++ {
		p *= 7
	}
	recv := make([]float64, p)
	countNode(0, p, n, recv)
	return recv
}

// countNode mirrors capsNode's communication for the group
// [groupStart, groupStart+q) on a size-n problem.
func countNode(groupStart, q, n int, recv []float64) {
	if q == 1 {
		return
	}
	d := log7(q)
	subSize := q / 7
	numLeaves := pow4(d - 1)
	half := n / 2
	leafW := (half * half) / numLeaves
	// Downward: member me of subgroup i receives, from every src ≠ me,
	// the overlap of src's q-partition range with me's subSize-partition
	// range, per leaf, for both T and S.
	for i := 0; i < 7; i++ {
		for idx := 0; idx < subSize; idx++ {
			me := i*subSize + idx
			nStart := pStart(leafW, subSize, idx)
			nSize := pSize(leafW, subSize, idx)
			for src := 0; src < q; src++ {
				if src == me {
					continue
				}
				sStart := pStart(leafW, q, src)
				sSize := pSize(leafW, q, src)
				lo, hi := overlap(sStart, sStart+sSize, nStart, nStart+nSize)
				if lo < hi {
					recv[groupStart+me] += 2 * float64(numLeaves*(hi-lo)) // T and S
				}
			}
		}
	}
	// Recurse per subgroup.
	for i := 0; i < 7; i++ {
		countNode(groupStart+i*subSize, subSize, half, recv)
	}
	// Upward: rank me receives, from every member s of every subgroup i
	// (except itself), the overlap of s's subSize-partition range with
	// me's q-partition range, per leaf.
	for me := 0; me < q; me++ {
		mStart := pStart(leafW, q, me)
		mSize := pSize(leafW, q, me)
		for i := 0; i < 7; i++ {
			for sIdx := 0; sIdx < subSize; sIdx++ {
				src := i*subSize + sIdx
				if src == me {
					continue
				}
				sStart := pStart(leafW, subSize, sIdx)
				sSize := pSize(leafW, subSize, sIdx)
				lo, hi := overlap(sStart, sStart+sSize, mStart, mStart+mSize)
				if lo < hi {
					recv[groupStart+me] += float64(numLeaves * (hi - lo))
				}
			}
		}
	}
}

func pStart(w, p, i int) int {
	q, r := w/p, w%p
	if i < r {
		return i * (q + 1)
	}
	return r*(q+1) + (i-r)*q
}

func pSize(w, p, i int) int {
	q, r := w/p, w%p
	if i < r {
		return q + 1
	}
	return q
}

// FastLeadingTerm returns n²/P^{2/ω0}, the fast memory-independent leading
// term CAPS tracks (Ballard et al. 2012b).
func FastLeadingTerm(n, p int) float64 {
	return float64(n) * float64(n) / math.Pow(float64(p), 2/math.Log2(7))
}
