package caps

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/matrix"
)

// FuzzCAPSCorrectness fuzzes sizes, seeds, and recursion depths of the
// parallel Strassen execution against the classical serial product, and
// the measured volumes against the counting twin.
func FuzzCAPSCorrectness(f *testing.F) {
	f.Add(uint8(8), uint8(1), uint64(1))
	f.Add(uint8(16), uint8(2), uint64(2))
	f.Add(uint8(22), uint8(1), uint64(3))
	f.Fuzz(func(t *testing.T, nRaw, lRaw uint8, seed uint64) {
		levels := int(lRaw % 3)
		unit := 1 << levels
		n := (int(nRaw%24) + 1) * unit // guarantees divisibility
		if levels == 2 && n > 32 {
			n = 32 // keep 49-rank runs small
		}
		a := matrix.Random(n, n, seed)
		b := matrix.Random(n, n, seed+1)
		res, err := Multiply(a, b, levels, machine.BandwidthOnly())
		if err != nil {
			t.Fatal(err)
		}
		want := matrix.Mul(a, b)
		if diff := res.C.MaxAbsDiff(want); diff > 1e-9*float64(n+1)*float64(uint(1)<<uint(2*levels)) {
			t.Fatalf("n=%d levels=%d: max diff %g", n, levels, diff)
		}
		pred := PredictedVolumes(n, levels)
		for r, rs := range res.Stats.Ranks {
			if rs.WordsRecv != pred[r] {
				t.Fatalf("n=%d levels=%d rank %d: measured %v predicted %v", n, levels, r, rs.WordsRecv, pred[r])
			}
		}
	})
}
