package caps

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/matrix"
)

// tag layout per recursion level: 14 downward tags (T and S per branch),
// 7 upward tags, stepped by tagStride per level.
const tagStride = 64

// capsNode executes one BFS Strassen node for the calling rank: group is
// the participating ranks (ascending), n the current square size, aShare
// and bShare the rank's shares under the invariant at leaf depth
// log7(len(group)). It returns the rank's share of the product under the
// same invariant.
func capsNode(r *machine.Rank, group []int, n int, aShare, bShare []float64, tagBase int) []float64 {
	q := len(group)
	if q == 1 {
		a := matrix.New(n, n)
		a.Unpack(aShare)
		b := matrix.New(n, n)
		b.Unpack(bShare)
		r.Compute(float64(n) * float64(n) * float64(n))
		return matrix.Mul(a, b).Pack()
	}
	d := log7(q)
	subSize := q / 7
	me := indexOf(group, r.ID())
	mySub := me / subSize
	idx := me % subSize
	numLeaves := pow4(d - 1)
	half := n / 2
	leafW := (half * half) / numLeaves // == (n >> d)²

	quarter := len(aShare) / 4
	a11, a12 := aShare[0:quarter], aShare[quarter:2*quarter]
	a21, a22 := aShare[2*quarter:3*quarter], aShare[3*quarter:]
	b11, b12 := bShare[0:quarter], bShare[quarter:2*quarter]
	b21, b22 := bShare[2*quarter:3*quarter], bShare[3*quarter:]

	// Strassen operand combinations (local vector arithmetic).
	t := [7][]float64{
		vAdd(a11, a22), // M1
		vAdd(a21, a22), // M2
		vCopy(a11),     // M3
		vCopy(a22),     // M4
		vAdd(a11, a12), // M5
		vSub(a21, a11), // M6
		vSub(a12, a22), // M7
	}
	s := [7][]float64{
		vAdd(b11, b22),
		vCopy(b11),
		vSub(b12, b22),
		vSub(b21, b11),
		vCopy(b22),
		vAdd(b11, b12),
		vAdd(b21, b22),
	}
	r.Compute(float64(10 * quarter)) // 5 A-side + 5 B-side vector adds

	myOldSize := matrix.PartSize(leafW, q, me)
	myOldStart := matrix.PartStart(leafW, q, me)
	if len(t[0]) != numLeaves*myOldSize {
		panic(fmt.Sprintf("caps: share layout broken: %d != %d*%d", len(t[0]), numLeaves, myOldSize))
	}

	// Downward sends: my pieces of every T_i, S_i to their new owners in
	// subgroup i. One batched message per (destination, matrix): the
	// per-leaf overlap is at the same offset within every leaf's range.
	for i := 0; i < 7; i++ {
		for tt := 0; tt < subSize; tt++ {
			dst := group[i*subSize+tt]
			if dst == r.ID() {
				continue
			}
			nStart := matrix.PartStart(leafW, subSize, tt)
			nSize := matrix.PartSize(leafW, subSize, tt)
			lo, hi := overlap(myOldStart, myOldStart+myOldSize, nStart, nStart+nSize)
			if lo >= hi {
				continue
			}
			r.Send(dst, tagBase+2*i, gatherPieces(t[i], numLeaves, myOldSize, lo-myOldStart, hi-lo))
			r.Send(dst, tagBase+2*i+1, gatherPieces(s[i], numLeaves, myOldSize, lo-myOldStart, hi-lo))
		}
	}

	// Downward receives: assemble my new shares of T_{mySub}, S_{mySub}.
	newSize := matrix.PartSize(leafW, subSize, idx)
	newStart := matrix.PartStart(leafW, subSize, idx)
	newT := make([]float64, numLeaves*newSize)
	newS := make([]float64, numLeaves*newSize)
	r.GrowMemory(float64(2 * len(newT)))
	for src := 0; src < q; src++ {
		sStart := matrix.PartStart(leafW, q, src)
		sSize := matrix.PartSize(leafW, q, src)
		lo, hi := overlap(sStart, sStart+sSize, newStart, newStart+newSize)
		if lo >= hi {
			continue
		}
		if group[src] == r.ID() {
			scatterPieces(newT, numLeaves, newSize, lo-newStart,
				gatherPieces(t[mySub], numLeaves, myOldSize, lo-myOldStart, hi-lo), hi-lo)
			scatterPieces(newS, numLeaves, newSize, lo-newStart,
				gatherPieces(s[mySub], numLeaves, myOldSize, lo-myOldStart, hi-lo), hi-lo)
			continue
		}
		scatterPieces(newT, numLeaves, newSize, lo-newStart, r.Recv(group[src], tagBase+2*mySub), hi-lo)
		scatterPieces(newS, numLeaves, newSize, lo-newStart, r.Recv(group[src], tagBase+2*mySub+1), hi-lo)
	}

	// Recurse on my subgroup's subproblem.
	sub := group[mySub*subSize : (mySub+1)*subSize]
	mShare := capsNode(r, sub, half, newT, newS, tagBase+tagStride)

	// Upward sends: my pieces of M_{mySub} to every rank of the full
	// group (each needs its 1/q range of every leaf of every M).
	for t2 := 0; t2 < q; t2++ {
		dst := group[t2]
		if dst == r.ID() {
			continue
		}
		tStart := matrix.PartStart(leafW, q, t2)
		tSize := matrix.PartSize(leafW, q, t2)
		lo, hi := overlap(newStart, newStart+newSize, tStart, tStart+tSize)
		if lo >= hi {
			continue
		}
		r.Send(dst, tagBase+32+mySub, gatherPieces(mShare, numLeaves, newSize, lo-newStart, hi-lo))
	}

	// Upward receives: my 1/q range of every leaf of all seven products.
	m := make([][]float64, 7)
	for i := range m {
		m[i] = make([]float64, numLeaves*myOldSize)
	}
	r.GrowMemory(float64(7 * numLeaves * myOldSize))
	for i := 0; i < 7; i++ {
		for sIdx := 0; sIdx < subSize; sIdx++ {
			srcRank := group[i*subSize+sIdx]
			sStart := matrix.PartStart(leafW, subSize, sIdx)
			sSize := matrix.PartSize(leafW, subSize, sIdx)
			lo, hi := overlap(sStart, sStart+sSize, myOldStart, myOldStart+myOldSize)
			if lo >= hi {
				continue
			}
			if srcRank == r.ID() {
				scatterPieces(m[i], numLeaves, myOldSize, lo-myOldStart,
					gatherPieces(mShare, numLeaves, newSize, lo-newStart, hi-lo), hi-lo)
				continue
			}
			scatterPieces(m[i], numLeaves, myOldSize, lo-myOldStart, r.Recv(srcRank, tagBase+32+i), hi-lo)
		}
	}

	// Combine into the C quadrants (Strassen's reconstruction).
	c11 := vAdd(vSub(vAdd(m[0], m[3]), m[4]), m[6])
	c12 := vAdd(m[2], m[4])
	c21 := vAdd(m[1], m[3])
	c22 := vAdd(vSub(vAdd(m[0], m[2]), m[1]), m[5])
	r.Compute(float64(8 * numLeaves * myOldSize))

	out := make([]float64, 0, 4*numLeaves*myOldSize)
	out = append(out, c11...)
	out = append(out, c12...)
	out = append(out, c21...)
	out = append(out, c22...)
	return out
}

// gatherPieces extracts, from a share vector of numLeaves leaves of
// perLeaf words each, the sub-range [off, off+length) of every leaf,
// concatenated.
func gatherPieces(share []float64, numLeaves, perLeaf, off, length int) []float64 {
	out := make([]float64, 0, numLeaves*length)
	for j := 0; j < numLeaves; j++ {
		base := j*perLeaf + off
		out = append(out, share[base:base+length]...)
	}
	return out
}

// scatterPieces writes a gatherPieces-formatted message into the target
// share vector at per-leaf offset off.
func scatterPieces(share []float64, numLeaves, perLeaf, off int, data []float64, length int) {
	if len(data) != numLeaves*length {
		panic(fmt.Sprintf("caps: piece message has %d words, want %d", len(data), numLeaves*length))
	}
	for j := 0; j < numLeaves; j++ {
		copy(share[j*perLeaf+off:j*perLeaf+off+length], data[j*length:(j+1)*length])
	}
}

func indexOf(group []int, rank int) int {
	for i, g := range group {
		if g == rank {
			return i
		}
	}
	panic("caps: rank not in group")
}
