package caps

import (
	"fmt"

	"repro/internal/matrix"
)

// leafBlocks returns the depth-d quadtree leaf views of the square matrix
// m, in recursive NW, NE, SW, SE order (4^d equally sized blocks).
func leafBlocks(m *matrix.Dense, d int) []*matrix.Dense {
	if d == 0 {
		return []*matrix.Dense{m}
	}
	n := m.Rows()
	if n%2 != 0 {
		panic(fmt.Sprintf("caps: odd dimension %d at depth %d", n, d))
	}
	h := n / 2
	var out []*matrix.Dense
	for _, q := range []*matrix.Dense{
		m.View(0, 0, h, h), m.View(0, h, h, h),
		m.View(h, 0, h, h), m.View(h, h, h, h),
	} {
		out = append(out, leafBlocks(q, d-1)...)
	}
	return out
}

// extractShare returns rank me's share of matrix m under the CAPS
// invariant at leaf depth d over q ranks: the concatenation, per leaf, of
// the me'th balanced range of the leaf's packed words.
func extractShare(m *matrix.Dense, d, q, me int) []float64 {
	leaves := leafBlocks(m, d)
	w := leaves[0].Size()
	ps := matrix.PartSize(w, q, me)
	st := matrix.PartStart(w, q, me)
	out := make([]float64, 0, len(leaves)*ps)
	for _, leaf := range leaves {
		packed := leaf.Pack()
		out = append(out, packed[st:st+ps]...)
	}
	return out
}

// assemble reconstructs the n×n product from the per-rank C shares.
func assemble(n, d, q int, shares [][]float64) *matrix.Dense {
	c := matrix.New(n, n)
	leaves := leafBlocks(c, d)
	w := leaves[0].Size()
	buf := make([]float64, w)
	for j, leaf := range leaves {
		for r := 0; r < q; r++ {
			ps := matrix.PartSize(w, q, r)
			st := matrix.PartStart(w, q, r)
			copy(buf[st:st+ps], shares[r][j*ps:(j+1)*ps])
		}
		leaf.Unpack(buf)
	}
	return c
}

// overlap returns the intersection of [a1, a2) and [b1, b2).
func overlap(a1, a2, b1, b2 int) (int, int) {
	lo, hi := a1, a2
	if b1 > lo {
		lo = b1
	}
	if b2 < hi {
		hi = b2
	}
	return lo, hi
}

// vec helpers: elementwise combinations of equal-length share vectors.

func vAdd(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

func vSub(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

func vCopy(a []float64) []float64 {
	out := make([]float64, len(a))
	copy(out, a)
	return out
}

func log7(q int) int {
	d := 0
	for q > 1 {
		q /= 7
		d++
	}
	return d
}

func pow4(d int) int {
	out := 1
	for i := 0; i < d; i++ {
		out *= 4
	}
	return out
}
