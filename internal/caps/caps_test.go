package caps

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/matrix"
)

func TestLeafBlocksOrderAndCount(t *testing.T) {
	m := matrix.Indexed(4, 4)
	leaves := leafBlocks(m, 1)
	if len(leaves) != 4 {
		t.Fatalf("%d leaves", len(leaves))
	}
	// NW leaf holds element (0,0); SE leaf holds (3,3).
	if leaves[0].At(0, 0) != m.At(0, 0) || leaves[3].At(1, 1) != m.At(3, 3) {
		t.Fatal("leaf order wrong")
	}
	if got := len(leafBlocks(m, 2)); got != 16 {
		t.Fatalf("depth-2 leaves = %d", got)
	}
}

func TestExtractAssembleRoundTrip(t *testing.T) {
	for _, c := range []struct{ n, d, q int }{
		{8, 1, 7}, {8, 2, 49}, {12, 1, 7}, {16, 0, 1},
	} {
		m := matrix.Random(c.n, c.n, uint64(c.n))
		shares := make([][]float64, c.q)
		for r := 0; r < c.q; r++ {
			shares[r] = extractShare(m, c.d, c.q, r)
		}
		got := assemble(c.n, c.d, c.q, shares)
		if !got.Equal(m, 0) {
			t.Fatalf("n=%d d=%d q=%d: round trip failed", c.n, c.d, c.q)
		}
	}
}

func TestMultiplySingleRank(t *testing.T) {
	a := matrix.Random(6, 6, 1)
	b := matrix.Random(6, 6, 2)
	res, err := Multiply(a, b, 0, machine.BandwidthOnly())
	if err != nil {
		t.Fatal(err)
	}
	if !res.C.Equal(matrix.Mul(a, b), 1e-9) {
		t.Fatal("wrong product at P=1")
	}
	if res.CommCost() != 0 {
		t.Fatal("P=1 should not communicate")
	}
}

func TestMultiplyP7(t *testing.T) {
	for _, n := range []int{8, 12, 16, 22} {
		a := matrix.Random(n, n, uint64(n))
		b := matrix.Random(n, n, uint64(n)+1)
		res, err := Multiply(a, b, 1, machine.BandwidthOnly())
		if err != nil {
			t.Fatal(err)
		}
		if diff := res.C.MaxAbsDiff(matrix.Mul(a, b)); diff > 1e-9*float64(n) {
			t.Fatalf("n=%d: wrong product (max diff %g)", n, diff)
		}
	}
}

func TestMultiplyP49(t *testing.T) {
	for _, n := range []int{16, 28} {
		a := matrix.Random(n, n, uint64(n)*3)
		b := matrix.Random(n, n, uint64(n)*3+1)
		res, err := Multiply(a, b, 2, machine.BandwidthOnly())
		if err != nil {
			t.Fatal(err)
		}
		if diff := res.C.MaxAbsDiff(matrix.Mul(a, b)); diff > 1e-8*float64(n) {
			t.Fatalf("n=%d P=49: wrong product (max diff %g)", n, diff)
		}
	}
}

func TestMultiplyValidation(t *testing.T) {
	sq := matrix.Random(8, 8, 1)
	if _, err := Multiply(matrix.Random(8, 4, 1), matrix.Random(4, 8, 2), 1, machine.BandwidthOnly()); err == nil {
		t.Fatal("expected square requirement error")
	}
	if _, err := Multiply(matrix.Random(6, 6, 1), matrix.Random(6, 6, 2), 2, machine.BandwidthOnly()); err == nil {
		t.Fatal("expected divisibility error")
	}
	if _, err := Multiply(sq, sq, -1, machine.BandwidthOnly()); err == nil {
		t.Fatal("expected negative levels error")
	}
}

// TestMeasuredMatchesCountingTwin: the simulator's per-rank received words
// equal the pure counting twin's prediction exactly.
func TestMeasuredMatchesCountingTwin(t *testing.T) {
	for _, c := range []struct{ n, levels int }{{8, 1}, {16, 1}, {16, 2}, {28, 2}} {
		a := matrix.Random(c.n, c.n, 5)
		b := matrix.Random(c.n, c.n, 6)
		res, err := Multiply(a, b, c.levels, machine.BandwidthOnly())
		if err != nil {
			t.Fatal(err)
		}
		pred := PredictedVolumes(c.n, c.levels)
		for r, rs := range res.Stats.Ranks {
			if math.Abs(rs.WordsRecv-pred[r]) > 1e-9 {
				t.Fatalf("n=%d levels=%d rank %d: measured %v, predicted %v",
					c.n, c.levels, r, rs.WordsRecv, pred[r])
			}
		}
	}
}

// TestStrassenFlopCount: the total multiplications are 7^L·(n/2^L)³, below
// the classical n³.
func TestStrassenFlopCount(t *testing.T) {
	n, levels := 16, 2
	a := matrix.Random(n, n, 7)
	b := matrix.Random(n, n, 8)
	res, err := Multiply(a, b, levels, machine.BandwidthOnly())
	if err != nil {
		t.Fatal(err)
	}
	mults := 0.0
	for _, rs := range res.Stats.Ranks {
		mults += rs.Flops
	}
	want := matrix.StrassenFlops(n, levels)
	// Flops include the O(n²) combination additions; the multiplication
	// term must match and dominate.
	if mults < want {
		t.Fatalf("total flops %v below the multiplication count %v", mults, want)
	}
	if mults > want+float64(10*n*n*49) {
		t.Fatalf("total flops %v too far above multiplications %v", mults, want)
	}
	if want >= float64(n)*float64(n)*float64(n) {
		t.Fatal("Strassen should do fewer multiplications than classical")
	}
}

// TestCAPSBeatsClassicalBoundShape: at P = 49 the measured CAPS volume
// sits near the fast leading term and the classical-vs-fast ordering is as
// §2.3 predicts: the fast floor is lower than the classical Case 3 bound.
func TestCAPSBeatsClassicalBoundShape(t *testing.T) {
	n, levels, p := 56, 2, 49
	a := matrix.Random(n, n, 9)
	b := matrix.Random(n, n, 10)
	res, err := Multiply(a, b, levels, machine.BandwidthOnly())
	if err != nil {
		t.Fatal(err)
	}
	fast := FastLeadingTerm(n, p)
	classical := 3 * core.LeadingTerm(core.Square(n), p)
	if fast >= classical {
		t.Fatalf("fast floor %v not below classical bound %v", fast, classical)
	}
	// CAPS volume is a small constant times the fast term (BFS constant).
	ratio := res.CommCost() / fast
	if ratio < 1 || ratio > 8 {
		t.Fatalf("CAPS volume %v is %.2fx the fast term %v — expected a small constant", res.CommCost(), ratio, fast)
	}
}

// TestCAPSScalesLikeFastExponent: doubling levels (P ×49) scales the
// per-processor volume like P^{-2/ω0}, not the classical P^{-2/3}.
func TestCAPSScalesLikeFastExponent(t *testing.T) {
	n := 56
	a := matrix.Random(n, n, 11)
	b := matrix.Random(n, n, 12)
	r1, err := Multiply(a, b, 1, machine.BandwidthOnly())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Multiply(a, b, 2, machine.BandwidthOnly())
	if err != nil {
		t.Fatal(err)
	}
	gotRatio := r1.CommCost() / r2.CommCost()
	fastRatio := FastLeadingTerm(n, 7) / FastLeadingTerm(n, 49)
	if math.Abs(gotRatio-fastRatio)/fastRatio > 0.6 {
		t.Fatalf("volume ratio P7/P49 = %.3f, fast-exponent prediction %.3f", gotRatio, fastRatio)
	}
}
