package hbl

import (
	"fmt"
	"math"
	"math/big"

	"repro/internal/core"
	"repro/internal/kkt"
)

// Bound is the memory-independent communication lower bound for a program
// on P processors: the generalization of Theorem 3's constant layer beyond
// matmul, using the program's optimal HBL exponents.
type Bound struct {
	// Exponents is the exact LP solution (σ, per-array s*, dual).
	Exponents Exponents
	// Sigma is σ_HBL as a float64.
	Sigma float64
	// Exponent is 1/σ: footprint ≥ (Volume/P)^Exponent.
	Exponent float64
	// Volume is the iteration-space size Π n_i.
	Volume float64
	// TotalWords is Σ_j Π_{i∈φ_j} n_i, the one-copy footprint of all arrays.
	TotalWords float64
	// AccessBounds holds the Lemma 1 per-array access bounds
	// Π_{i∈φ_j} n_i / P, aligned with Program.Arrays.
	AccessBounds []float64
	// X holds the optimal per-array footprints x*_j of the Lemma 2
	// generalization, aligned with Program.Arrays.
	X []float64
	// FreeArrays is the number of arrays governed by the water level rather
	// than pinned at their access bound — the generalization of Theorem 3's
	// case index (matmul: 1, 2, 3 in the paper's Cases 1, 2, 3).
	FreeArrays int
	// Footprint is Σ_j x*_j, the minimum per-processor data footprint.
	Footprint float64
	// LowerBound is Footprint − TotalWords/P: words each processor must
	// communicate, in the memory-independent regime.
	LowerBound float64
}

// MemIndependentBound computes the memory-independent lower bound for the
// program on procs processors. The program must carry extents.
//
// The chain is the paper's, array-program generalized: the HBL inequality
// with the optimal exponents s* bounds a processor's 1/P share of the
// iteration space by Π_j x_j^{s*_j} ≥ V/P over its per-array footprints
// x_j, Lemma 1 gives x_j ≥ Π_{i∈φ_j} n_i / P, and the footprint optimum
//
//	min Σ_j x_j   s.t.   Π_j x_j^{s*_j} ≥ V/P,   x_j ≥ access bound j
//
// is found by water-filling. When the positive exponents are all equal —
// matmul, every cuboid, every symmetric contraction — the constraint is
// rewritten as Π x_j ≥ (V/P)^{1/s} and handed to kkt.ProductMin verbatim,
// which on cuboid programs reproduces internal/extension bit for bit (the
// same L is formed by the same loop when 1/s is integral). Arrays with
// s*_j = 0 do not appear in the product constraint, so they sit at their
// access bounds; genuinely non-uniform exponents go through a weighted
// water-filling with the same active-set structure.
func MemIndependentBound(p Program, procs int) (Bound, error) {
	if err := p.Validate(); err != nil {
		return Bound{}, err
	}
	if len(p.Extents) == 0 {
		return Bound{}, fmt.Errorf("hbl: a memory-independent bound needs extents for every index: %w", core.ErrBadProgram)
	}
	if procs < 1 {
		return Bound{}, fmt.Errorf("hbl: processor count %d must be positive: %w", procs, core.ErrBadProcessorCount)
	}
	e, err := Solve(p)
	if err != nil {
		return Bound{}, err
	}

	fp := float64(procs)
	m := len(p.Arrays)
	b := Bound{
		Exponents:    e,
		Sigma:        e.SigmaFloat(),
		Volume:       p.Volume(),
		TotalWords:   p.TotalWords(),
		AccessBounds: make([]float64, m),
		X:            make([]float64, m),
	}
	b.Exponent = 1 / b.Sigma
	for j := 0; j < m; j++ {
		b.AccessBounds[j] = p.ArraySize(j) / fp
	}
	share := b.Volume / fp

	// Partition arrays by exponent sign. Zero-exponent arrays are absent
	// from the product constraint: minimizing Σ x_j pins them at their
	// access bounds.
	positive := make([]int, 0, m)
	for j, s := range e.S {
		if s.Sign() > 0 {
			positive = append(positive, j)
		} else {
			b.X[j] = b.AccessBounds[j]
		}
	}
	lower := make(kkt.Vector, len(positive))
	for t, j := range positive {
		lower[t] = b.AccessBounds[j]
	}

	if s, ok := uniformPositive(e.S, positive); ok {
		// Π x_j^s ≥ share  ⇔  Π x_j ≥ share^(1/s). When 1/s is an integer w
		// (matmul and cuboids: w = d−1), form L by multiplying share w
		// times — the same arithmetic internal/extension performs, which is
		// what makes the cuboid collapse bit-exact.
		var l float64
		if w, integral := intReciprocal(s); integral {
			l = 1.0
			for i := 0; i < w; i++ {
				l *= share
			}
		} else {
			inv, _ := new(big.Rat).Inv(s).Float64()
			l = math.Pow(share, inv)
		}
		x, free := kkt.ProductMin{L: l, Lower: lower}.Solve()
		for t, j := range positive {
			b.X[j] = x[t]
		}
		b.FreeArrays = free
	} else {
		sf := make([]float64, len(positive))
		for t, j := range positive {
			sf[t], _ = e.S[j].Float64()
		}
		x, free := weightedWaterFill(sf, lower, math.Log(share))
		for t, j := range positive {
			b.X[j] = x[t]
		}
		b.FreeArrays = free
	}

	for _, x := range b.X {
		b.Footprint += x
	}
	b.LowerBound = b.Footprint - b.TotalWords/fp
	return b, nil
}

// uniformPositive reports whether all positive exponents are equal,
// returning the common value. Compared exactly in rationals, so matmul and
// cuboid programs always take the bit-exact ProductMin path.
func uniformPositive(s []*big.Rat, positive []int) (*big.Rat, bool) {
	if len(positive) == 0 {
		return nil, false
	}
	first := s[positive[0]]
	for _, j := range positive[1:] {
		if s[j].Cmp(first) != 0 {
			return nil, false
		}
	}
	return first, true
}

// intReciprocal returns 1/s as an int when s is the reciprocal of a small
// integer (s = 1/w with w ≤ MaxArrays·MaxIndices, generously above any
// exponent the LP can produce for a capped program).
func intReciprocal(s *big.Rat) (int, bool) {
	inv := new(big.Rat).Inv(s)
	if !inv.IsInt() {
		return 0, false
	}
	w := inv.Num()
	if !w.IsInt64() || w.Int64() < 1 || w.Int64() > int64(MaxArrays*MaxIndices) {
		return 0, false
	}
	return int(w.Int64()), true
}

// weightedWaterFill minimizes Σ x_j subject to Σ s_j·ln x_j ≥ lnShare and
// x_j ≥ lower_j > 0, for positive weights s. The KKT stationarity condition
// gives x_j = μ·s_j for every variable off its bound, so the solver peels
// an active set: start with every variable free, compute the water level μ
// that makes the product constraint tight, pin every variable that μ would
// push below its bound, and repeat. The set shrinks monotonically, so the
// loop terminates; if the bounds alone satisfy the constraint the corner is
// optimal and freeVars is 0. freeVars matches kkt.ProductMin's activeFree
// semantics (and its values, when the weights are uniform).
func weightedWaterFill(s []float64, lower kkt.Vector, lnShare float64) (x kkt.Vector, freeVars int) {
	n := len(s)
	x = lower.Clone()
	corner := 0.0
	for j := range x {
		corner += s[j] * math.Log(lower[j])
	}
	if corner >= lnShare {
		return x, 0
	}
	free := make([]bool, n)
	freeVars = n
	for j := range free {
		free[j] = true
	}
	for {
		// Water level for the current free set: Σ_F s_j ln(μ s_j) =
		// lnShare − Σ_pinned s_j ln(lower_j).
		target := lnShare
		wsum := 0.0
		for j := 0; j < n; j++ {
			if free[j] {
				wsum += s[j]
				target -= s[j] * math.Log(s[j])
			} else {
				target -= s[j] * math.Log(lower[j])
			}
		}
		if wsum == 0 {
			// Everything pinned yet the corner was infeasible — cannot
			// happen for positive weights; fall back to the corner.
			return lower.Clone(), 0
		}
		lnMu := target / wsum
		pinned := false
		for j := 0; j < n; j++ {
			if free[j] && lnMu+math.Log(s[j]) < math.Log(lower[j])-1e-12 {
				free[j] = false
				freeVars--
				pinned = true
			}
		}
		if pinned {
			continue
		}
		for j := 0; j < n; j++ {
			if free[j] {
				x[j] = math.Exp(lnMu) * s[j]
			}
		}
		return x, freeVars
	}
}
