package hbl

import (
	"errors"
	"testing"

	"repro/internal/core"
)

func TestValidateRejects(t *testing.T) {
	ref := func(name string, idx ...string) Array { return Array{Name: name, Indices: idx} }
	cases := []struct {
		name string
		p    Program
	}{
		{"no indices", Program{Arrays: []Array{ref("A", "i")}}},
		{"no arrays", Program{Indices: []string{"i"}}},
		{"duplicate index", Program{Indices: []string{"i", "i"}, Arrays: []Array{ref("A", "i")}}},
		{"duplicate array", Program{Indices: []string{"i"}, Arrays: []Array{ref("A", "i"), ref("A", "i")}}},
		{"unknown index", Program{Indices: []string{"i"}, Arrays: []Array{ref("A", "j")}}},
		{"repeated subscript", Program{Indices: []string{"i"}, Arrays: []Array{ref("A", "i", "i")}}},
		{"scalar array", Program{Indices: []string{"i"}, Arrays: []Array{{Name: "A"}, ref("B", "i")}}},
		{"uncovered index", Program{Indices: []string{"i", "j"}, Arrays: []Array{ref("A", "i")}}},
		{"bad output", Program{Indices: []string{"i"}, Arrays: []Array{ref("A", "i")}, Output: "Z"}},
		{"extent count", Program{Indices: []string{"i"}, Extents: []int{2, 3}, Arrays: []Array{ref("A", "i")}}},
		{"non-positive extent", Program{Indices: []string{"i"}, Extents: []int{0}, Arrays: []Array{ref("A", "i")}}},
		{"volume overflow", Program{
			Indices: []string{"i", "j"},
			Extents: []int{1 << 30, 1 << 30},
			Arrays:  []Array{ref("A", "i"), ref("B", "j")},
		}},
		{"reserved characters", Program{Indices: []string{"i,j"}, Arrays: []Array{ref("A", "i,j")}}},
		{"empty name", Program{Indices: []string{""}, Arrays: []Array{ref("A", "")}}},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(); !errors.Is(err, core.ErrBadProgram) {
			t.Errorf("%s: Validate = %v, want ErrBadProgram", tc.name, err)
		}
	}
	if err := MatMul(4, 5, 6).Validate(); err != nil {
		t.Fatalf("MatMul(4,5,6).Validate = %v", err)
	}
}

func TestParseProgram(t *testing.T) {
	for _, src := range []string{
		"A[i,k]*B[k,j] -> C[i,j]",
		"A[i,k]*B[k,j]->C[i,j] | i=9600 k=600 j=2400",
		"C[i,j] += A[i,k] * B[k,j]",
		"F[i] += X[i] * Y[j] | i=1000 j=1000",
	} {
		p, err := ParseProgram(src)
		if err != nil {
			t.Fatalf("ParseProgram(%q) = %v", src, err)
		}
		if p.Output == "" || len(p.Arrays) < 2 {
			t.Fatalf("ParseProgram(%q) = %+v, missing output or arrays", src, p)
		}
	}

	p, err := ParseProgram("A[i,k]*B[k,j]->C[i,j] | i=7 k=5 j=3")
	if err != nil {
		t.Fatal(err)
	}
	want := MatMul(7, 3, 5)
	if p.String() != want.String() {
		t.Fatalf("parsed %q, MatMul gives %q", p.String(), want.String())
	}

	for _, src := range []string{
		"",
		"A[i,k]*B[k,j]",                     // no output
		"A[i]->B[i]->C[i]",                  // two arrows
		"C[i] += A[i] += B[i]",              // two +=
		"C[i,j] += A[i,k] -> B[k,j]",        // mixed forms
		"A[i]*B -> C[i]",                    // missing subscripts
		"A[i] -> C[i] | i=",                 // bad extent value
		"A[i] -> C[i] | i=3 i=4",            // duplicate extent
		"A[i] -> C[i] | j=3",                // extent for unknown index
		"A[i] -> C[i] | i=2 | i=3",          // two extents clauses
		"A[i,k]*B[k,j] -> C[i,j] | i=1 k=2", // missing extent for j
	} {
		if _, err := ParseProgram(src); !errors.Is(err, core.ErrBadProgram) {
			t.Errorf("ParseProgram(%q) = %v, want ErrBadProgram", src, err)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, p := range []Program{
		MatMul(9600, 2400, 600),
		Cuboid(32, 16, 16, 8),
		TensorContraction([]int{4, 5}, []int{6}, []int{7, 8}),
		NBody(1000),
		Conv2D(128, 128, 3, 3),
	} {
		q, err := ParseProgram(p.String())
		if err != nil {
			t.Fatalf("ParseProgram(%q) = %v", p.String(), err)
		}
		if q.String() != p.String() {
			t.Errorf("round trip %q -> %q", p.String(), q.String())
		}
		if q.Volume() != p.Volume() || q.TotalWords() != p.TotalWords() {
			t.Errorf("%q: round trip changed volume or words", p.String())
		}
	}
}

func TestWithExtents(t *testing.T) {
	p := Program{
		Indices: []string{"i", "j"},
		Arrays:  []Array{{Name: "A", Indices: []string{"i"}}, {Name: "B", Indices: []string{"j"}}},
	}
	q, err := p.WithExtents(map[string]int{"i": 3, "j": 4})
	if err != nil {
		t.Fatal(err)
	}
	if q.Extents[0] != 3 || q.Extents[1] != 4 {
		t.Fatalf("Extents = %v", q.Extents)
	}
	if _, err := p.WithExtents(map[string]int{"i": 3}); !errors.Is(err, core.ErrBadProgram) {
		t.Fatalf("missing extent: %v", err)
	}
	if _, err := p.WithExtents(map[string]int{"i": 3, "j": 4, "z": 5}); !errors.Is(err, core.ErrBadProgram) {
		t.Fatalf("unknown extent: %v", err)
	}
}

func TestOutputIndex(t *testing.T) {
	p := MatMul(2, 3, 4)
	if got := p.OutputIndex(); got != 2 {
		t.Fatalf("OutputIndex = %d, want 2", got)
	}
	p.Output = "A"
	if got := p.OutputIndex(); got != 0 {
		t.Fatalf("OutputIndex = %d, want 0", got)
	}
}
