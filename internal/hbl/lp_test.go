package hbl

import (
	"errors"
	"math/big"
	"testing"

	"repro/internal/core"
)

func rat(a, b int64) *big.Rat { return big.NewRat(a, b) }

func TestSolveMatMul(t *testing.T) {
	e, err := Solve(MatMul(9600, 2400, 600))
	if err != nil {
		t.Fatal(err)
	}
	if e.Sigma.Cmp(rat(3, 2)) != 0 {
		t.Fatalf("σ = %v, want 3/2", e.Sigma)
	}
	if e.BoundExponent().Cmp(rat(2, 3)) != 0 {
		t.Fatalf("exponent = %v, want 2/3", e.BoundExponent())
	}
	for j, s := range e.S {
		if s.Cmp(rat(1, 2)) != 0 {
			t.Fatalf("s[%d] = %v, want 1/2", j, s)
		}
	}
	for i, y := range e.Dual {
		if y.Cmp(rat(1, 2)) != 0 {
			t.Fatalf("y[%d] = %v, want 1/2", i, y)
		}
	}
}

func TestSolveZoo(t *testing.T) {
	cases := []struct {
		name  string
		p     Program
		sigma *big.Rat
	}{
		{"cuboid-2", Cuboid(8, 4), rat(2, 1)},
		{"cuboid-3", Cuboid(8, 4, 2), rat(3, 2)},
		{"cuboid-4", Cuboid(32, 16, 16, 8), rat(4, 3)},
		{"cuboid-6", Cuboid(4, 4, 4, 4, 4, 4), rat(6, 5)},
		{"contraction", TensorContraction([]int{4, 5}, []int{6}, []int{7, 8}), rat(3, 2)},
		{"nbody", NBody(1000), rat(2, 1)},
		{"conv2d", Conv2D(128, 128, 3, 3), rat(2, 1)},
	}
	for _, tc := range cases {
		e, err := Solve(tc.p)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if e.Sigma.Cmp(tc.sigma) != 0 {
			t.Errorf("%s: σ = %v, want %v", tc.name, e.Sigma, tc.sigma)
		}
		if err := e.Verify(tc.p); err != nil {
			t.Errorf("%s: certificate: %v", tc.name, err)
		}
	}
}

func TestSolveCuboidUniform(t *testing.T) {
	// The cuboid LP has the unique optimum s_j = 1/(d−1); the simplex must
	// land on it exactly for the bit-exact ProductMin path to engage.
	for d := 2; d <= 7; d++ {
		dims := make([]int, d)
		for i := range dims {
			dims[i] = 4
		}
		e, err := Solve(Cuboid(dims...))
		if err != nil {
			t.Fatal(err)
		}
		want := rat(1, int64(d-1))
		for j, s := range e.S {
			if s.Cmp(want) != 0 {
				t.Fatalf("d=%d: s[%d] = %v, want %v", d, j, s, want)
			}
		}
	}
}

func TestSolveRejectsInvalid(t *testing.T) {
	if _, err := Solve(Program{}); !errors.Is(err, core.ErrBadProgram) {
		t.Fatalf("Solve(empty) = %v, want ErrBadProgram", err)
	}
}

func TestSolveSingleArray(t *testing.T) {
	// One array covering everything: s = 1, σ = 1, exponent 1.
	p := Program{
		Indices: []string{"i", "j"},
		Arrays:  []Array{{Name: "T", Indices: []string{"i", "j"}}},
	}
	e, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if e.Sigma.Cmp(rat(1, 1)) != 0 || e.S[0].Cmp(rat(1, 1)) != 0 {
		t.Fatalf("σ = %v, s = %v, want 1, [1]", e.Sigma, e.S)
	}
}

func TestVerifyCatchesTampering(t *testing.T) {
	p := MatMul(64, 64, 64)
	e, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	bad := e
	bad.S = append([]*big.Rat{}, e.S...)
	bad.S[0] = rat(1, 4) // breaks coverage of index i
	if err := bad.Verify(p); err == nil {
		t.Fatal("Verify accepted a tampered certificate")
	}
}
