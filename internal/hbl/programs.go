package hbl

import "fmt"

// The program zoo: constructors for the workloads the subsystem opens up.
// Each returns a validated-by-construction Program; callers still run
// Validate (extent caps can only be checked against concrete sizes).

// MatMul returns classical matrix multiplication C[i,j] += A[i,k]·B[k,j]
// with C m×n, A m×k, B k×n. Its HBL optimum is s = (1/2, 1/2, 1/2),
// σ = 3/2, reproducing Theorem 3: footprint ≥ (mnk/P)^{2/3} with the
// 1/2/3-case constants.
func MatMul(m, n, k int) Program {
	return Program{
		Indices: []string{"i", "j", "k"},
		Extents: []int{m, n, k},
		Arrays: []Array{
			{Name: "A", Indices: []string{"i", "k"}},
			{Name: "B", Indices: []string{"k", "j"}},
			{Name: "C", Indices: []string{"i", "j"}},
		},
		Output: "C",
	}
}

// Cuboid returns the d-dimensional cuboid computation of internal/extension
// (§6.3): iteration space N_0 × … × N_{d−1}, one array per omitted
// dimension (array A_j is indexed by every index except i_j), the last
// array the output. The array order matches extension.Problem exactly —
// MemIndependentBound on this program reproduces extension's LowerBound bit
// for bit. Its HBL optimum is s_j = 1/(d−1), σ = d/(d−1).
func Cuboid(dims ...int) Program {
	d := len(dims)
	p := Program{
		Indices: make([]string, d),
		Extents: make([]int, d),
		Arrays:  make([]Array, d),
	}
	for i, n := range dims {
		p.Indices[i] = fmt.Sprintf("i%d", i)
		p.Extents[i] = n
	}
	for j := 0; j < d; j++ {
		a := Array{Name: fmt.Sprintf("A%d", j)}
		for i := 0; i < d; i++ {
			if i != j {
				a.Indices = append(a.Indices, p.Indices[i])
			}
		}
		p.Arrays[j] = a
	}
	p.Output = p.Arrays[d-1].Name
	return p
}

// TensorContraction returns a binary tensor contraction
// C[a…,b…] += A[a…,c…]·B[c…,b…]: freeA extents stay with A and the output,
// freeB with B and the output, contracted extents are shared by A and B.
// With every group non-empty the HBL optimum is s = (1/2, 1/2, 1/2),
// σ = 3/2 — matmul's exponent, whatever the tensor orders — because the
// coverage constraints collapse to the same three pairwise inequalities.
func TensorContraction(freeA, freeB, contracted []int) Program {
	var p Program
	add := func(prefix string, extents []int) []string {
		names := make([]string, len(extents))
		for i, n := range extents {
			names[i] = fmt.Sprintf("%s%d", prefix, i)
			p.Indices = append(p.Indices, names[i])
			p.Extents = append(p.Extents, n)
		}
		return names
	}
	a := add("a", freeA)
	b := add("b", freeB)
	c := add("c", contracted)
	p.Arrays = []Array{
		{Name: "A", Indices: append(append([]string{}, a...), c...)},
		{Name: "B", Indices: append(append([]string{}, c...), b...)},
		{Name: "C", Indices: append(append([]string{}, a...), b...)},
	}
	p.Output = "C"
	return p
}

// NBody returns the all-pairs n-body force computation
// F[i] += force(X[i], Y[j]) over an n × n interaction space (X and Y are
// two references to the same position array; the bound charges references,
// so they count separately). The HBL optimum is s_X + s_F = 1, s_Y = 1,
// σ = 2: footprint ≥ (n²/P)^{1/2}, the classic √(n²/P) result.
func NBody(n int) Program {
	return Program{
		Indices: []string{"i", "j"},
		Extents: []int{n, n},
		Arrays: []Array{
			{Name: "X", Indices: []string{"i"}},
			{Name: "Y", Indices: []string{"j"}},
			{Name: "F", Indices: []string{"i"}},
		},
		Output: "F",
	}
}

// Conv2D returns a direct 2-D convolution Out[x,y] += Img[x+u,y+v]·K[u,v]
// over an h × w output and kh × kw kernel — under the subset approximation
// that drops the shifts, modeling the image reference as Img[x,y]. The true
// reference is not a subset projection (x+u mixes indices), but its
// projection sizes differ from the dropped-shift ones by at most the kernel
// halo, so the resulting bound σ = 2, footprint ≥ (h·w·kh·kw/P)^{1/2},
// holds up to that additive halo term. CDKSY §6 handles affine references
// exactly; the subset DSL deliberately stops at this approximation.
func Conv2D(h, w, kh, kw int) Program {
	return Program{
		Indices: []string{"x", "y", "u", "v"},
		Extents: []int{h, w, kh, kw},
		Arrays: []Array{
			{Name: "Img", Indices: []string{"x", "y"}},
			{Name: "K", Indices: []string{"u", "v"}},
			{Name: "Out", Indices: []string{"x", "y"}},
		},
		Output: "Out",
	}
}
