// Package hbl generalizes the mathematical core of the repository — the
// Loomis-Whitney product constraint of internal/lattice and the Lemma 2
// water-filling of internal/kkt — from matrix multiplication to arbitrary
// nested-loop array programs, following Christ, Demmel, Knight, Scanlon,
// and Yelick (arXiv 1308.0068).
//
// A Program is a nested loop over indices i_1 … i_d referencing arrays
// A_1 … A_m, where array j is indexed by a subset φ_j of the loop indices
// (matmul: C[i,j] += A[i,k]·B[k,j]). For such programs the discrete
// Hölder-Brascamp-Lieb inequality bounds any finite set V of iteration
// points by the product of its array projections,
//
//	|V| ≤ Π_j |φ_j(V)|^{s_j},
//
// for every s feasible for the HBL linear program
//
//	Σ_{j : i ∈ φ_j} s_j ≥ 1   for every loop index i,   s_j ≥ 0.
//
// Minimizing σ = Σ_j s_j gives the asymptotically best communication
// exponent: a processor performing a 1/P share of the |iteration space| = V
// points has per-array access bounds |φ_j| ≥ (Π_{i∈φ_j} n_i)/P (the Lemma 1
// argument verbatim), and its data footprint is lower-bounded by
//
//	min Σ_j x_j   s.t.   Π_j x_j^{s*_j} ≥ V/P,   x_j ≥ (Π_{i∈φ_j} n_i)/P,
//
// the direct generalization of the paper's Lemma 2, solved by the same
// water-filling (kkt.ProductMin when the positive exponents are equal — the
// matmul/cuboid case — and a weighted variant otherwise). The bound carries
// the same memory-independent case structure: the number of arrays governed
// by the water level generalizes Theorem 3's Case 1/2/3.
//
// Solve computes σ_HBL and the per-array exponents exactly, in rationals,
// with a primal and dual certificate (duality gap zero by construction).
// Program.MemIndependentBound evaluates the constant layer. The d = 3
// matmul program reproduces Theorem 3's constants 1/2/3 exactly, and
// cuboid programs collapse bit-exactly onto internal/extension.
package hbl

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// MaxIndices and MaxArrays cap the program size the exact-rational LP
// solver accepts. The simplex is polynomial in practice but the caps keep
// the service's synchronous path bounded; every workload in the program zoo
// is far below them.
const (
	MaxIndices = 16
	MaxArrays  = 16
)

// Array is one array reference of a program: a name and the subset of loop
// indices it is subscripted by (the projection φ_j).
type Array struct {
	// Name identifies the array ("A").
	Name string
	// Indices is the index subset, in subscript order ("i", "k").
	Indices []string
}

// Program is a typed nested-loop array program: loop indices (optionally
// with extents), the arrays referenced with their index subsets, and an
// optional output designation.
type Program struct {
	// Indices names the loop indices, in loop order.
	Indices []string
	// Extents holds the per-index iteration counts, aligned with Indices.
	// Empty means symbolic: exponents can be computed, bounds cannot.
	Extents []int
	// Arrays holds the array references.
	Arrays []Array
	// Output names the array accumulated into; empty designates the last
	// array (the matmul/cuboid convention). The bound itself is symmetric
	// in the arrays — the designation is carried for presentation and for
	// constructors that encode a convention.
	Output string
}

// maxExactProduct mirrors core.Dims.Validate: extent products beyond 2^53
// would silently round in the float64 arithmetic the bounds use.
const maxExactProduct = int64(1) << 53

// Validate reports whether the program is well-formed, wrapping
// core.ErrBadProgram on every failure: indices and arrays must be named,
// unique, and within the solver caps; every array must reference a
// non-empty duplicate-free subset of the declared indices; every index must
// appear in at least one array (otherwise the HBL linear program is
// infeasible — no product of projections bounds the iteration space);
// extents, when given, must align with Indices, be positive, and keep the
// total iteration-space volume within exact float64 range.
func (p Program) Validate() error {
	if len(p.Indices) == 0 {
		return fmt.Errorf("hbl: program has no loop indices: %w", core.ErrBadProgram)
	}
	if len(p.Indices) > MaxIndices {
		return fmt.Errorf("hbl: %d loop indices exceed the limit %d: %w", len(p.Indices), MaxIndices, core.ErrBadProgram)
	}
	if len(p.Arrays) == 0 {
		return fmt.Errorf("hbl: program references no arrays: %w", core.ErrBadProgram)
	}
	if len(p.Arrays) > MaxArrays {
		return fmt.Errorf("hbl: %d arrays exceed the limit %d: %w", len(p.Arrays), MaxArrays, core.ErrBadProgram)
	}
	idx := make(map[string]int, len(p.Indices))
	for i, name := range p.Indices {
		if err := validName(name, "index"); err != nil {
			return err
		}
		if _, dup := idx[name]; dup {
			return fmt.Errorf("hbl: duplicate loop index %q: %w", name, core.ErrBadProgram)
		}
		idx[name] = i
	}
	covered := make([]bool, len(p.Indices))
	arrays := make(map[string]bool, len(p.Arrays))
	for _, a := range p.Arrays {
		if err := validName(a.Name, "array"); err != nil {
			return err
		}
		if arrays[a.Name] {
			return fmt.Errorf("hbl: duplicate array %q: %w", a.Name, core.ErrBadProgram)
		}
		arrays[a.Name] = true
		if len(a.Indices) == 0 {
			return fmt.Errorf("hbl: array %q has no subscripts (a scalar bounds nothing): %w", a.Name, core.ErrBadProgram)
		}
		seen := make(map[string]bool, len(a.Indices))
		for _, name := range a.Indices {
			i, ok := idx[name]
			if !ok {
				return fmt.Errorf("hbl: array %q references unknown index %q: %w", a.Name, name, core.ErrBadProgram)
			}
			if seen[name] {
				return fmt.Errorf("hbl: array %q repeats index %q: %w", a.Name, name, core.ErrBadProgram)
			}
			seen[name] = true
			covered[i] = true
		}
	}
	for i, ok := range covered {
		if !ok {
			return fmt.Errorf("hbl: index %q appears in no array (HBL linear program infeasible): %w", p.Indices[i], core.ErrBadProgram)
		}
	}
	if p.Output != "" && !arrays[p.Output] {
		return fmt.Errorf("hbl: output %q names no array: %w", p.Output, core.ErrBadProgram)
	}
	if len(p.Extents) > 0 {
		if len(p.Extents) != len(p.Indices) {
			return fmt.Errorf("hbl: %d extents for %d indices: %w", len(p.Extents), len(p.Indices), core.ErrBadProgram)
		}
		// Overflow-free running product, in the style of core.Dims.Validate:
		// for positive integers a·b > limit ⇔ a > limit/b under integer
		// division, so no product is formed before it is known to fit.
		prod := int64(1)
		for i, n := range p.Extents {
			if n <= 0 {
				return fmt.Errorf("hbl: extent of %q must be positive, got %d: %w", p.Indices[i], n, core.ErrBadProgram)
			}
			if int64(n) > maxExactProduct/prod {
				return fmt.Errorf("hbl: iteration-space volume overflows exact float64 range (> 2^53): %w", core.ErrBadProgram)
			}
			prod *= int64(n)
		}
	}
	return nil
}

// validName enforces the token syntax shared by indices and array names.
func validName(name, kind string) error {
	if name == "" {
		return fmt.Errorf("hbl: empty %s name: %w", kind, core.ErrBadProgram)
	}
	if len(name) > 32 {
		return fmt.Errorf("hbl: %s name %q longer than 32 bytes: %w", kind, name, core.ErrBadProgram)
	}
	if strings.ContainsAny(name, "[],*->|= \t\n") {
		return fmt.Errorf("hbl: %s name %q contains reserved characters: %w", kind, name, core.ErrBadProgram)
	}
	return nil
}

// D returns the number of loop indices.
func (p Program) D() int { return len(p.Indices) }

// indexOf maps index names to their position. The program must be
// validated.
func (p Program) indexOf() map[string]int {
	m := make(map[string]int, len(p.Indices))
	for i, name := range p.Indices {
		m[name] = i
	}
	return m
}

// OutputIndex returns the position of the output array (the last array when
// Output is empty). The program must be validated.
func (p Program) OutputIndex() int {
	if p.Output == "" {
		return len(p.Arrays) - 1
	}
	for j, a := range p.Arrays {
		if a.Name == p.Output {
			return j
		}
	}
	return len(p.Arrays) - 1
}

// Volume returns Π_i n_i, the number of iteration points, in float64 (exact
// under Validate's 2^53 cap). It panics without extents.
func (p Program) Volume() float64 {
	if len(p.Extents) == 0 {
		panic("hbl: Volume of a program without extents")
	}
	v := 1.0
	for _, n := range p.Extents {
		v *= float64(n)
	}
	return v
}

// ArraySize returns Π_{i∈φ_j} n_i, the one-copy words of array j, in
// float64. The factors multiply in subscript order; all products are exact
// integers under Validate's 2^53 cap, so the order cannot change the value.
func (p Program) ArraySize(j int) float64 {
	if len(p.Extents) == 0 {
		panic("hbl: ArraySize of a program without extents")
	}
	pos := p.indexOf()
	v := 1.0
	for _, name := range p.Arrays[j].Indices {
		v *= float64(p.Extents[pos[name]])
	}
	return v
}

// TotalWords returns Σ_j Π_{i∈φ_j} n_i, the one-copy footprint of all
// arrays. Distinct references to the same underlying data count separately,
// matching the per-reference access bounds the lower bound charges.
func (p Program) TotalWords() float64 {
	t := 0.0
	for j := range p.Arrays {
		t += p.ArraySize(j)
	}
	return t
}

// String renders the program in the ParseProgram syntax:
// "A[i,k]*B[k,j]->C[i,j] | i=9600 k=600 j=2400". Extents are keyed by the
// order indices first appear in the rendered statement — the same order
// ParseProgram assigns — so String∘ParseProgram is the identity on rendered
// text and the rendering doubles as a canonical memoization key.
func (p Program) String() string {
	var b strings.Builder
	out := p.OutputIndex()
	first := true
	for j, a := range p.Arrays {
		if j == out {
			continue
		}
		if !first {
			b.WriteByte('*')
		}
		first = false
		writeRef(&b, a)
	}
	b.WriteString("->")
	writeRef(&b, p.Arrays[out])
	if len(p.Extents) > 0 {
		b.WriteString(" |")
		pos := p.indexOf()
		seen := make(map[string]bool, len(p.Indices))
		emit := func(a Array) {
			for _, name := range a.Indices {
				if !seen[name] {
					seen[name] = true
					fmt.Fprintf(&b, " %s=%d", name, p.Extents[pos[name]])
				}
			}
		}
		for j, a := range p.Arrays {
			if j != out {
				emit(a)
			}
		}
		emit(p.Arrays[out])
	}
	return b.String()
}

func writeRef(b *strings.Builder, a Array) {
	b.WriteString(a.Name)
	b.WriteByte('[')
	b.WriteString(strings.Join(a.Indices, ","))
	b.WriteByte(']')
}

// WithExtents returns a copy of the program with extents assigned from a
// name→extent map. Every program index must be present in the map; extra
// names are rejected.
func (p Program) WithExtents(extents map[string]int) (Program, error) {
	if len(extents) == 0 {
		return p, nil
	}
	known := make(map[string]bool, len(p.Indices))
	for _, name := range p.Indices {
		known[name] = true
	}
	names := make([]string, 0, len(extents))
	for name := range extents {
		if !known[name] {
			return Program{}, fmt.Errorf("hbl: extent for unknown index %q: %w", name, core.ErrBadProgram)
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) != len(p.Indices) {
		missing := make([]string, 0, len(p.Indices))
		for _, name := range p.Indices {
			if _, ok := extents[name]; !ok {
				missing = append(missing, name)
			}
		}
		return Program{}, fmt.Errorf("hbl: extents missing for %s: %w", strings.Join(missing, ", "), core.ErrBadProgram)
	}
	q := p
	q.Extents = make([]int, len(p.Indices))
	for i, name := range p.Indices {
		q.Extents[i] = extents[name]
	}
	return q, nil
}
