package hbl

import (
	"fmt"
	"math/big"
)

// Exponents is the exact solution of a program's HBL linear program
//
//	minimize  σ = Σ_j s_j
//	subject to Σ_{j : i ∈ φ_j} s_j ≥ 1  for every loop index i,  s_j ≥ 0,
//
// together with the optimal dual (the maximum packing y over indices with
// Σ_{i∈φ_j} y_i ≤ 1 per array). All values are exact rationals; Solve
// guarantees Σ s_j = Σ y_i identically, so the pair is a self-contained
// optimality certificate — no tolerance anywhere.
type Exponents struct {
	// Sigma is the optimal value σ_HBL = Σ_j s_j ≥ 1.
	Sigma *big.Rat
	// S holds the optimal per-array exponents, aligned with Program.Arrays.
	// The HBL inequality |V| ≤ Π_j |φ_j(V)|^{S_j} holds for every finite
	// subset V of the iteration space.
	S []*big.Rat
	// Dual holds the optimal dual variables, aligned with Program.Indices.
	Dual []*big.Rat
}

// BoundExponent returns 1/σ: the exponent of the iteration-space volume in
// the per-processor footprint bound, footprint ≥ (V/P)^{1/σ}. Matmul gives
// 2/3 — the (mnk)^{2/3} of Theorem 3.
func (e Exponents) BoundExponent() *big.Rat {
	return new(big.Rat).Inv(e.Sigma)
}

// SigmaFloat returns σ as a float64.
func (e Exponents) SigmaFloat() float64 {
	f, _ := e.Sigma.Float64()
	return f
}

// SFloat returns the per-array exponents as float64s.
func (e Exponents) SFloat() []float64 {
	s := make([]float64, len(e.S))
	for j, r := range e.S {
		s[j], _ = r.Float64()
	}
	return s
}

// Verify re-checks the certificate against the program from scratch: primal
// feasibility (every index covered with total exponent ≥ 1, s ≥ 0), dual
// feasibility (Σ_{i∈φ_j} y_i ≤ 1 per array, y ≥ 0), and a zero duality gap
// Σ s_j = σ = Σ y_i — all in exact rational arithmetic. A nil return is a
// proof of optimality.
func (e Exponents) Verify(p Program) error {
	if err := p.Validate(); err != nil {
		return err
	}
	d, m := len(p.Indices), len(p.Arrays)
	if len(e.S) != m || len(e.Dual) != d {
		return fmt.Errorf("hbl: certificate shape %d/%d does not match program %d/%d", len(e.S), len(e.Dual), m, d)
	}
	one := big.NewRat(1, 1)
	primal := new(big.Rat)
	for j, s := range e.S {
		if s.Sign() < 0 {
			return fmt.Errorf("hbl: exponent s[%d] = %v is negative", j, s)
		}
		primal.Add(primal, s)
	}
	dual := new(big.Rat)
	for i, y := range e.Dual {
		if y.Sign() < 0 {
			return fmt.Errorf("hbl: dual y[%d] = %v is negative", i, y)
		}
		dual.Add(dual, y)
	}
	pos := p.indexOf()
	cover := make([]*big.Rat, d)
	for i := range cover {
		cover[i] = new(big.Rat)
	}
	for j, a := range p.Arrays {
		pack := new(big.Rat)
		for _, name := range a.Indices {
			i := pos[name]
			cover[i].Add(cover[i], e.S[j])
			pack.Add(pack, e.Dual[i])
		}
		if pack.Cmp(one) > 0 {
			return fmt.Errorf("hbl: dual packing of array %q is %v > 1", a.Name, pack)
		}
	}
	for i, c := range cover {
		if c.Cmp(one) < 0 {
			return fmt.Errorf("hbl: index %q covered with total exponent %v < 1", p.Indices[i], c)
		}
	}
	if primal.Cmp(e.Sigma) != 0 || dual.Cmp(e.Sigma) != 0 {
		return fmt.Errorf("hbl: duality gap: Σs = %v, σ = %v, Σy = %v", primal, e.Sigma, dual)
	}
	return nil
}

// Solve computes the optimal HBL exponents of the program exactly.
//
// It runs a primal simplex, in big.Rat arithmetic with Bland's rule, on the
// dual packing form max{1ᵀy : Σ_{i∈φ_j} y_i ≤ 1 ∀j, y ≥ 0} — the slack
// basis is feasible there (all right-hand sides are 1) and the feasible
// region is bounded (every index lies in some array, so y_i ≤ 1), so no
// phase-1 is needed and the method terminates at an optimum. The primal
// exponents s* are read off as the reduced costs of the slack columns. The
// returned certificate is re-verified from scratch; Validate failures are
// returned as errors (wrapping core.ErrBadProgram) and certificate failures
// panic, since after validation the LP is always feasible and bounded.
func Solve(p Program) (Exponents, error) {
	if err := p.Validate(); err != nil {
		return Exponents{}, err
	}
	d, m := len(p.Indices), len(p.Arrays)
	pos := p.indexOf()

	// Tableau over columns [0,d) = y variables, [d,d+m) = slacks, last =
	// right-hand side. Row 0 is kept separately as the reduced-cost row
	// z_k − c_k (optimal when all entries are ≥ 0) with the objective value
	// in its last cell. All cells are freshly allocated big.Rats and every
	// pivot writes fresh Rats, so no value aliases another.
	width := d + m + 1
	rows := make([][]*big.Rat, m)
	basis := make([]int, m)
	for j, a := range p.Arrays {
		row := make([]*big.Rat, width)
		for k := range row {
			row[k] = new(big.Rat)
		}
		for _, name := range a.Indices {
			row[pos[name]].SetInt64(1)
		}
		row[d+j].SetInt64(1)
		row[width-1].SetInt64(1)
		rows[j] = row
		basis[j] = d + j
	}
	obj := make([]*big.Rat, width)
	for k := range obj {
		obj[k] = new(big.Rat)
	}
	for i := 0; i < d; i++ {
		obj[i].SetInt64(-1)
	}

	for iter := 0; ; iter++ {
		if iter > 1<<16 {
			panic("hbl: simplex did not terminate under Bland's rule")
		}
		// Bland's rule: enter the lowest-numbered improving column.
		enter := -1
		for k := 0; k < width-1; k++ {
			if obj[k].Sign() < 0 {
				enter = k
				break
			}
		}
		if enter < 0 {
			break
		}
		// Ratio test, ties broken toward the lowest-numbered basic variable.
		leave := -1
		var best *big.Rat
		for r := 0; r < m; r++ {
			a := rows[r][enter]
			if a.Sign() <= 0 {
				continue
			}
			ratio := new(big.Rat).Quo(rows[r][width-1], a)
			if leave < 0 || ratio.Cmp(best) < 0 ||
				(ratio.Cmp(best) == 0 && basis[r] < basis[leave]) {
				leave, best = r, ratio
			}
		}
		if leave < 0 {
			panic("hbl: simplex unbounded — impossible, every y_i is capped at 1")
		}
		pivot(rows, obj, basis, leave, enter)
	}

	e := Exponents{
		Sigma: new(big.Rat).Set(obj[width-1]),
		S:     make([]*big.Rat, m),
		Dual:  make([]*big.Rat, d),
	}
	for j := 0; j < m; j++ {
		e.S[j] = new(big.Rat).Set(obj[d+j])
	}
	for i := range e.Dual {
		e.Dual[i] = new(big.Rat)
	}
	for r, b := range basis {
		if b < d {
			e.Dual[b] = new(big.Rat).Set(rows[r][width-1])
		}
	}
	if err := e.Verify(p); err != nil {
		panic(fmt.Sprintf("hbl: simplex produced an invalid certificate: %v", err))
	}
	return e, nil
}

// pivot performs one simplex pivot: row r is scaled so column k reads 1,
// then eliminated from every other row and from the reduced-cost row.
func pivot(rows [][]*big.Rat, obj []*big.Rat, basis []int, r, k int) {
	pr := rows[r]
	pv := new(big.Rat).Set(pr[k])
	for c := range pr {
		pr[c] = new(big.Rat).Quo(pr[c], pv)
	}
	eliminate := func(row []*big.Rat) {
		f := new(big.Rat).Set(row[k])
		if f.Sign() == 0 {
			return
		}
		for c := range row {
			row[c] = new(big.Rat).Sub(row[c], new(big.Rat).Mul(f, pr[c]))
		}
	}
	for i := range rows {
		if i != r {
			eliminate(rows[i])
		}
	}
	eliminate(obj)
	basis[r] = k
}
