package hbl

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// programFromSeed derives a random program (≤6 indices, ≤5 arrays) from a
// fuzzer-controlled seed. Index coverage is NOT enforced, so the generator
// also exercises the validation path.
func programFromSeed(seed int64) Program {
	rng := rand.New(rand.NewSource(seed))
	d := 1 + rng.Intn(6)
	m := 1 + rng.Intn(5)
	p := Program{Indices: make([]string, d), Arrays: make([]Array, m)}
	names := []string{"i", "j", "k", "l", "u", "v"}
	copy(p.Indices, names[:d])
	for j := range p.Arrays {
		a := Array{Name: string(rune('A' + j))}
		for i := 0; i < d; i++ {
			if rng.Intn(2) == 0 {
				a.Indices = append(a.Indices, p.Indices[i])
			}
		}
		if len(a.Indices) == 0 {
			a.Indices = append(a.Indices, p.Indices[rng.Intn(d)])
		}
		p.Arrays[j] = a
	}
	return p
}

// FuzzSolve asserts, for random programs: the primal is feasible, the dual
// gap is exactly zero in rationals, σ ≥ 1, and dropping any array never
// decreases σ (equivalently, never increases the bound exponent 1/σ —
// removing covering capacity can only shrink the feasible region).
func FuzzSolve(f *testing.F) {
	for seed := int64(0); seed < 64; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		p := programFromSeed(seed)
		e, err := Solve(p)
		if err != nil {
			// The only legitimate failure on generated programs is an
			// uncovered index (the generator does not force coverage).
			if !errors.Is(err, core.ErrBadProgram) {
				t.Fatalf("Solve: %v", err)
			}
			return
		}

		// Feasibility and the exact duality gap, from scratch.
		if err := e.Verify(p); err != nil {
			t.Fatalf("certificate: %v", err)
		}
		primal := new(big.Rat)
		for _, s := range e.S {
			primal.Add(primal, s)
		}
		dual := new(big.Rat)
		for _, y := range e.Dual {
			dual.Add(dual, y)
		}
		if gap := new(big.Rat).Sub(primal, dual); gap.Sign() != 0 {
			t.Fatalf("duality gap %v ≠ 0 (Σs=%v Σy=%v)", gap, primal, dual)
		}
		if e.Sigma.Cmp(big.NewRat(1, 1)) < 0 {
			t.Fatalf("σ = %v < 1", e.Sigma)
		}

		// Monotonicity: drop each array in turn.
		for drop := range p.Arrays {
			q := p
			q.Arrays = make([]Array, 0, len(p.Arrays)-1)
			q.Arrays = append(q.Arrays, p.Arrays[:drop]...)
			q.Arrays = append(q.Arrays, p.Arrays[drop+1:]...)
			q.Output = ""
			eq, err := Solve(q)
			if err != nil {
				// Dropping the only array covering some index makes the LP
				// infeasible; Validate must have said so.
				if !errors.Is(err, core.ErrBadProgram) {
					t.Fatalf("drop %d: %v", drop, err)
				}
				continue
			}
			if eq.Sigma.Cmp(e.Sigma) < 0 {
				t.Fatalf("dropping array %d decreased σ: %v < %v", drop, eq.Sigma, e.Sigma)
			}
		}
	})
}

// FuzzParseProgram asserts the parser never panics, only returns validated
// programs, and that String∘ParseProgram is idempotent on accepted input.
func FuzzParseProgram(f *testing.F) {
	f.Add("A[i,k]*B[k,j] -> C[i,j]")
	f.Add("C[i,j] += A[i,k]*B[k,j] | i=4 j=4 k=4")
	f.Add("F[i] += X[i]*Y[j]")
	f.Add("x")
	f.Add("A[] -> B[]")
	f.Add("A[i -> B[i] | i=9e9")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParseProgram(src)
		if err != nil {
			if !errors.Is(err, core.ErrBadProgram) {
				t.Fatalf("ParseProgram(%q) = %v, not ErrBadProgram", src, err)
			}
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("ParseProgram(%q) returned invalid program: %v", src, err)
		}
		canon := p.String()
		q, err := ParseProgram(canon)
		if err != nil {
			t.Fatalf("re-parse of %q: %v", canon, err)
		}
		if q.String() != canon {
			t.Fatalf("String not canonical: %q -> %q", canon, q.String())
		}
	})
}
