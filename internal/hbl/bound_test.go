package hbl

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/extension"
	"repro/internal/kkt"
)

// TestMatMulReproducesTheorem3 pins the generalized engine to the paper:
// for matmul expressed as an hbl.Program, the footprint and lower bound
// must match core's closed forms in all three regimes, and FreeArrays must
// equal the paper's case number.
func TestMatMulReproducesTheorem3(t *testing.T) {
	// 9600×2400×600 sorted is m=9600, n=2400, k=600: thresholds m/n = 4 and
	// mn/k² = 64, so P = 2, 16, 512 land strictly inside Cases 1, 2, 3.
	m, n, k := 9600, 2400, 600
	prog := MatMul(m, n, k)
	dims := core.Dims{N1: m, N2: k, N3: n} // A is m×k, B is k×n, C is m×n
	for _, p := range []int{2, 16, 512} {
		b, err := MemIndependentBound(prog, p)
		if err != nil {
			t.Fatal(err)
		}
		wantCase := core.CaseOf(dims, p)
		if b.FreeArrays != int(wantCase) {
			t.Errorf("P=%d: FreeArrays = %d, want case %d", p, b.FreeArrays, wantCase)
		}
		if b.Exponent != 2.0/3.0 {
			t.Errorf("P=%d: exponent = %v, want 2/3", p, b.Exponent)
		}
		wantFoot := core.D(dims, p)
		if math.Abs(b.Footprint-wantFoot) > 1e-9*(1+wantFoot) {
			t.Errorf("P=%d: footprint = %v, want %v", p, b.Footprint, wantFoot)
		}
		wantLB := core.LowerBound(dims, p)
		if math.Abs(b.LowerBound-wantLB) > 1e-9*(1+wantLB) {
			t.Errorf("P=%d: lower bound = %v, want %v", p, b.LowerBound, wantLB)
		}
	}
}

// TestCuboidBitExact asserts the special-case collapse: on cuboid programs
// the generalized engine reproduces internal/extension bit for bit — same
// access bounds, same footprint, same free count, same lower bound.
func TestCuboidBitExact(t *testing.T) {
	shapes := [][]int{
		{32, 16, 16, 8},
		{7, 5, 6, 4},
		{9, 9, 9},
		{12, 8},
		{100, 100, 100, 10, 10},
	}
	procs := []int{1, 2, 3, 7, 64, 4096}
	for _, dims := range shapes {
		prog := Cuboid(dims...)
		ext, err := extension.NewProblem(dims...)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range procs {
			b, err := MemIndependentBound(prog, p)
			if err != nil {
				t.Fatalf("%v P=%d: %v", dims, p, err)
			}
			foot, free := ext.DataFootprint(p)
			if b.Footprint != foot {
				t.Errorf("%v P=%d: footprint %v != extension %v", dims, p, b.Footprint, foot)
			}
			if b.FreeArrays != free {
				t.Errorf("%v P=%d: free %d != extension %d", dims, p, b.FreeArrays, free)
			}
			if got, want := b.LowerBound, ext.LowerBound(p); got != want {
				t.Errorf("%v P=%d: bound %v != extension %v", dims, p, got, want)
			}
			for j := range dims {
				if got, want := b.AccessBounds[j], ext.ArraySize(j)/float64(p); got != want {
					t.Errorf("%v P=%d: access bound %d: %v != %v", dims, p, j, got, want)
				}
			}
		}
	}
}

func TestMemIndependentBoundErrors(t *testing.T) {
	sym := Program{
		Indices: []string{"i"},
		Arrays:  []Array{{Name: "A", Indices: []string{"i"}}},
	}
	if _, err := MemIndependentBound(sym, 4); !errors.Is(err, core.ErrBadProgram) {
		t.Fatalf("no extents: %v, want ErrBadProgram", err)
	}
	if _, err := MemIndependentBound(MatMul(4, 4, 4), 0); !errors.Is(err, core.ErrBadProcessorCount) {
		t.Fatalf("P=0: %v, want ErrBadProcessorCount", err)
	}
	if _, err := MemIndependentBound(Program{}, 4); !errors.Is(err, core.ErrBadProgram) {
		t.Fatalf("invalid program: %v, want ErrBadProgram", err)
	}
}

// TestNBodyBound checks the classic √(n²/P) result end to end, including
// the zero-exponent handling: one position reference can carry exponent 0
// and must then sit exactly at its access bound.
func TestNBodyBound(t *testing.T) {
	n, p := 1 << 12, 64
	b, err := MemIndependentBound(NBody(n), p)
	if err != nil {
		t.Fatal(err)
	}
	if b.Sigma != 2 {
		t.Fatalf("σ = %v, want 2", b.Sigma)
	}
	fn, fp := float64(n), float64(p)
	// Footprint ≥ 2√(n²/P) + n/P: two references at the water level
	// n/√P > n/P, the third pinned at its access bound.
	want := 2*fn/math.Sqrt(fp) + fn/fp
	if math.Abs(b.Footprint-want) > 1e-9*(1+want) {
		t.Fatalf("footprint = %v, want %v", b.Footprint, want)
	}
	pinned := 0
	for j, s := range b.Exponents.S {
		if s.Sign() == 0 {
			pinned++
			if b.X[j] != b.AccessBounds[j] {
				t.Errorf("zero-exponent array %d not at access bound: %v vs %v", j, b.X[j], b.AccessBounds[j])
			}
		}
	}
	if pinned != 1 {
		t.Fatalf("pinned arrays = %d, want 1", pinned)
	}
}

func TestConv2DBound(t *testing.T) {
	b, err := MemIndependentBound(Conv2D(1024, 1024, 5, 5), 256)
	if err != nil {
		t.Fatal(err)
	}
	if b.Sigma != 2 {
		t.Fatalf("σ = %v, want 2", b.Sigma)
	}
	if b.LowerBound <= 0 {
		t.Fatalf("lower bound = %v, want positive", b.LowerBound)
	}
	if b.Footprint < math.Sqrt(b.Volume/256) {
		t.Fatalf("footprint %v below HBL floor %v", b.Footprint, math.Sqrt(b.Volume/256))
	}
}

func TestWeightedWaterFill(t *testing.T) {
	// Non-uniform weights, both free: x_j = μ·s_j with x₁·x₂² = 100.
	x, free := weightedWaterFill([]float64{1, 2}, kkt.Vector{1, 1}, math.Log(100))
	if free != 2 {
		t.Fatalf("free = %d, want 2", free)
	}
	if math.Abs(x[1]-2*x[0]) > 1e-9*x[1] {
		t.Fatalf("stationarity violated: x = %v", x)
	}
	if got := math.Log(x[0]) + 2*math.Log(x[1]); math.Abs(got-math.Log(100)) > 1e-9 {
		t.Fatalf("constraint not tight: %v", got)
	}

	// One variable pinned: level √20 < 10 forces x₁ to its bound, then
	// x₂ = 20/10 = 2.
	x, free = weightedWaterFill([]float64{1, 1}, kkt.Vector{10, 1}, math.Log(20))
	if free != 1 {
		t.Fatalf("free = %d, want 1", free)
	}
	if x[0] != 10 || math.Abs(x[1]-2) > 1e-9 {
		t.Fatalf("x = %v, want [10 2]", x)
	}

	// Corner: bounds alone satisfy the constraint.
	x, free = weightedWaterFill([]float64{1, 1}, kkt.Vector{10, 10}, math.Log(50))
	if free != 0 || x[0] != 10 || x[1] != 10 {
		t.Fatalf("corner: x = %v free = %d", x, free)
	}

	// Against kkt.ProductMin on uniform weights: same optimum.
	lower := kkt.Vector{3, 5, 11}
	l := 4000.0
	x, free = weightedWaterFill([]float64{1, 1, 1}, lower, math.Log(l))
	want, wantFree := (kkt.ProductMin{L: l, Lower: lower}).Solve()
	if free != wantFree {
		t.Fatalf("free = %d, want %d", free, wantFree)
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-9*(1+want[i]) {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}
