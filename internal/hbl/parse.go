package hbl

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
)

// ParseProgram parses the textual program DSL. Two statement forms are
// accepted:
//
//	A[i,k]*B[k,j] -> C[i,j]          inputs, then the output
//	C[i,j] += A[i,k]*B[k,j]          the output first, loop-body style
//
// optionally followed by an extents clause:
//
//	A[i,k]*B[k,j] -> C[i,j] | i=9600 k=600 j=2400
//
// Loop indices are collected in order of first appearance; when an extents
// clause is present it must assign every index. Whitespace is free between
// tokens. The result is validated; every syntax or semantic failure wraps
// core.ErrBadProgram. Program.String renders this same syntax, and the two
// round-trip.
func ParseProgram(src string) (Program, error) {
	stmt := src
	var extents string
	if i := strings.IndexByte(src, '|'); i >= 0 {
		stmt, extents = src[:i], src[i+1:]
		if strings.IndexByte(extents, '|') >= 0 {
			return Program{}, fmt.Errorf("hbl: more than one extents clause: %w", core.ErrBadProgram)
		}
	}

	var inputs, output string
	switch {
	case strings.Contains(stmt, "->"):
		parts := strings.SplitN(stmt, "->", 2)
		inputs, output = parts[0], parts[1]
		if strings.Contains(output, "->") || strings.Contains(stmt, "+=") {
			return Program{}, fmt.Errorf("hbl: statement %q mixes -> and +=: %w", strings.TrimSpace(stmt), core.ErrBadProgram)
		}
	case strings.Contains(stmt, "+="):
		parts := strings.SplitN(stmt, "+=", 2)
		output, inputs = parts[0], parts[1]
		if strings.Contains(inputs, "+=") {
			return Program{}, fmt.Errorf("hbl: statement %q has more than one +=: %w", strings.TrimSpace(stmt), core.ErrBadProgram)
		}
	default:
		return Program{}, fmt.Errorf("hbl: statement %q has neither -> nor +=: %w", strings.TrimSpace(stmt), core.ErrBadProgram)
	}

	out, err := parseRef(output)
	if err != nil {
		return Program{}, err
	}
	var p Program
	seen := make(map[string]bool)
	addIndices := func(a Array) {
		for _, name := range a.Indices {
			if !seen[name] {
				seen[name] = true
				p.Indices = append(p.Indices, name)
			}
		}
	}
	// Index order follows textual appearance: for the loop-body form the
	// output is written first, so its indices lead.
	if !strings.Contains(stmt, "->") {
		addIndices(out)
	}
	for _, tok := range strings.Split(inputs, "*") {
		a, err := parseRef(tok)
		if err != nil {
			return Program{}, err
		}
		addIndices(a)
		p.Arrays = append(p.Arrays, a)
	}
	addIndices(out)
	p.Arrays = append(p.Arrays, out)
	p.Output = out.Name

	if strings.TrimSpace(extents) != "" {
		ext := make(map[string]int)
		for _, tok := range strings.Fields(extents) {
			name, val, ok := strings.Cut(tok, "=")
			if !ok {
				return Program{}, fmt.Errorf("hbl: extent %q is not name=count: %w", tok, core.ErrBadProgram)
			}
			n, err := strconv.Atoi(val)
			if err != nil {
				return Program{}, fmt.Errorf("hbl: extent %q is not an integer: %w", tok, core.ErrBadProgram)
			}
			if _, dup := ext[name]; dup {
				return Program{}, fmt.Errorf("hbl: extent for %q given twice: %w", name, core.ErrBadProgram)
			}
			ext[name] = n
		}
		if p, err = p.WithExtents(ext); err != nil {
			return Program{}, err
		}
	}
	if err := p.Validate(); err != nil {
		return Program{}, err
	}
	return p, nil
}

// parseRef parses one array reference "Name[i,j,k]".
func parseRef(tok string) (Array, error) {
	tok = strings.TrimSpace(tok)
	open := strings.IndexByte(tok, '[')
	if open < 0 || !strings.HasSuffix(tok, "]") {
		return Array{}, fmt.Errorf("hbl: array reference %q is not Name[indices]: %w", tok, core.ErrBadProgram)
	}
	a := Array{Name: strings.TrimSpace(tok[:open])}
	for _, name := range strings.Split(tok[open+1:len(tok)-1], ",") {
		a.Indices = append(a.Indices, strings.TrimSpace(name))
	}
	return a, nil
}
