package core

import "math"

// This file carries the §2.3 context on fast matrix multiplication:
// Ballard et al. 2012b, which introduced the memory-dependent vs
// memory-independent distinction the paper builds on, also proved
// memory-independent bounds for Strassen-like algorithms. For a
// Strassen-like algorithm with exponent ω0 (classical: 3; Strassen:
// log₂ 7 ≈ 2.807) on square n×n matrices, the per-processor
// memory-independent bound has leading term Ω((n^{ω0}/P)^{2/ω0}) =
// n²/P^{2/ω0}, asymptotic only — no tight constants are known in the fast
// case, which is precisely the gap the paper closes for the classical one.

// OmegaStrassen is log₂ 7, the exponent of Strassen's algorithm.
var OmegaStrassen = math.Log2(7)

// FastMatmulLeading returns the leading term n²/P^{2/ω0} of the
// memory-independent communication lower bound for a Strassen-like
// algorithm with exponent omega0 multiplying square n×n matrices on p
// processors (Ballard et al. 2012b). No constant factor is attached: the
// fast-matmul constants are open.
func FastMatmulLeading(n, p int, omega0 float64) float64 {
	fn := float64(n)
	return fn * fn / math.Pow(float64(p), 2/omega0)
}

// ClassicalVsStrassenBoundRatio returns the ratio of the classical Case 3
// leading term to the Strassen memory-independent leading term at p
// processors: P^{2/log₂7 − 2/3} > 1 for p > 1. A Strassen-like algorithm
// performs fewer multiplications, so its communication floor is lower and
// falls faster with P.
func ClassicalVsStrassenBoundRatio(p int) float64 {
	return math.Pow(float64(p), 2/OmegaStrassen-2.0/3.0)
}
