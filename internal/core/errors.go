package core

import "errors"

// The public error taxonomy. Every validation failure in the library wraps
// exactly one of these sentinels (with %w), so callers dispatch with
// errors.Is instead of matching message strings — the HTTP service maps
// them onto status codes the same way. The root parmm package re-exports
// them.
var (
	// ErrBadDims marks invalid matrix dimensions: non-positive sizes,
	// operand shapes that do not conform, or shapes so large their
	// products exceed 2^53 and would lose precision in the float64
	// arithmetic the bounds use.
	ErrBadDims = errors.New("invalid matrix dimensions")

	// ErrBadProcessorCount marks a processor count an algorithm cannot use:
	// non-positive, non-square for Cannon, not a power of two for CARMA,
	// not q²c for 2.5D, and so on.
	ErrBadProcessorCount = errors.New("invalid processor count")

	// ErrGridMismatch marks a processor grid that does not fit the run: the
	// wrong total size, non-positive extents, extents exceeding (or not
	// dividing, where exactness demands it) the matrix dimensions, or an
	// analytic §5.2 grid that is not integral.
	ErrGridMismatch = errors.New("processor grid mismatch")

	// ErrUnsupportedAlg marks a request for an algorithm this library does
	// not implement (e.g. an unknown registry name).
	ErrUnsupportedAlg = errors.New("unsupported algorithm")

	// ErrBadOpts marks invalid run options: negative worker or layer
	// counts, an unknown collective family, chunk counts below one.
	ErrBadOpts = errors.New("invalid options")

	// ErrBadTopology marks an invalid interconnect topology: an unknown or
	// malformed spec, a shape whose endpoint count does not match the
	// machine's rank count, an unknown placement policy, or a non-flat
	// topology too large for per-pair charge tables.
	ErrBadTopology = errors.New("invalid topology")

	// ErrTooManyRanks marks a world size beyond what the selected execution
	// engine supports: the goroutine engine's packed idle accounting caps P
	// at machine.MaxRanks, and the event engine at 2^31−1. The HTTP service
	// maps it to 400 so an oversize request is rejected, not a crash.
	ErrTooManyRanks = errors.New("too many ranks")

	// ErrBadPlanRange marks an invalid strong-scaling plan request: a
	// non-positive per-rank memory, an empty or inverted processor range, a
	// negative stride, a range too large for the serving limits, or a
	// fixed-size topology spec asked to span more than one processor count.
	ErrBadPlanRange = errors.New("invalid plan range")

	// ErrBadProgram marks an invalid HBL array program: no loop indices,
	// duplicate index or array names, an array referencing an unknown or
	// repeated index, a loop index no array refers to (the HBL linear
	// program is infeasible there — no product of projections can bound the
	// iteration space), extents that are missing where a bound needs them,
	// non-positive, or so large their product exceeds 2^53, or a program
	// over the size caps the exact-rational solver accepts. The HTTP service
	// maps it to 400 with kind "bad_program".
	ErrBadProgram = errors.New("invalid array program")
)
