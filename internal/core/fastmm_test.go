package core

import (
	"math"
	"testing"
)

func TestFastMatmulLeadingClassicalRecoversCase3(t *testing.T) {
	n, p := 1024, 64
	want := LeadingTerm(Square(n), p)
	got := FastMatmulLeading(n, p, 3)
	if !approx(got, want, 1e-12) {
		t.Fatalf("classical exponent: %v, want %v", got, want)
	}
}

func TestStrassenBoundBelowClassical(t *testing.T) {
	n := 4096
	for _, p := range []int{8, 64, 512} {
		classical := FastMatmulLeading(n, p, 3)
		strassen := FastMatmulLeading(n, p, OmegaStrassen)
		if strassen >= classical {
			t.Errorf("P=%d: strassen bound %v not below classical %v", p, strassen, classical)
		}
		ratio := ClassicalVsStrassenBoundRatio(p)
		if ratio <= 1 {
			t.Errorf("P=%d: ratio %v should exceed 1", p, ratio)
		}
		if !approx(classical/strassen, ratio, 1e-9) {
			t.Errorf("P=%d: ratio mismatch %v vs %v", p, classical/strassen, ratio)
		}
	}
	// At P=1 both coincide with n².
	if !approx(FastMatmulLeading(n, 1, OmegaStrassen), float64(n)*float64(n), 1e-12) {
		t.Fatal("P=1 should give n²")
	}
}

func TestOmegaStrassen(t *testing.T) {
	if math.Abs(OmegaStrassen-2.807354922) > 1e-9 {
		t.Fatalf("ω0 = %v", OmegaStrassen)
	}
}
