package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, rel float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return true
	}
	return math.Abs(a-b) <= rel*scale
}

func TestSorted(t *testing.T) {
	cases := []struct {
		d       Dims
		m, n, k int
	}{
		{Dims{9600, 2400, 600}, 9600, 2400, 600},
		{Dims{600, 2400, 9600}, 9600, 2400, 600},
		{Dims{2400, 9600, 600}, 9600, 2400, 600},
		{Dims{5, 5, 5}, 5, 5, 5},
		{Dims{1, 2, 2}, 2, 2, 1},
	}
	for _, c := range cases {
		m, n, k := c.d.Sorted()
		if m != c.m || n != c.n || k != c.k {
			t.Errorf("%v sorted = %d,%d,%d", c.d, m, n, k)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Dims{1, 1, 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Dims{0, 1, 1}).Validate(); err == nil {
		t.Fatal("expected error for zero dimension")
	}
	if err := (Dims{3, -1, 2}).Validate(); err == nil {
		t.Fatal("expected error for negative dimension")
	}
}

// TestValidateOverflow is the regression test for the silent-precision bug:
// shapes whose products exceed 2^53 used to pass Validate and round in the
// float64 bound arithmetic; now they are rejected with ErrBadDims.
func TestValidateOverflow(t *testing.T) {
	const big = 1 << 27 // big² = 2^54 > 2^53
	reject := []Dims{
		{big, big, 1},               // pairwise n1·n2 overflows
		{1, big, big},               // pairwise n2·n3 overflows
		{big, 1, big},               // pairwise n1·n3 overflows
		{1 << 18, 1 << 18, 1 << 18}, // triple product 2^54 overflows, pairwise fine
	}
	for _, d := range reject {
		err := d.Validate()
		if err == nil {
			t.Errorf("%v: expected overflow error", d)
			continue
		}
		if !errors.Is(err, ErrBadDims) {
			t.Errorf("%v: error %v does not wrap ErrBadDims", d, err)
		}
	}
	accept := []Dims{
		{1 << 26, 1 << 27, 1},       // n1·n2 = 2^53 exactly
		{1 << 17, 1 << 18, 1 << 18}, // triple product 2^53 exactly
		{94906265, 94906265, 1},     // largest square under 2^53
	}
	for _, d := range accept {
		if err := d.Validate(); err != nil {
			t.Errorf("%v: unexpected error %v", d, err)
		}
	}
}

func TestSizesAndFlops(t *testing.T) {
	d := Dims{2, 3, 4}
	if d.SizeA() != 6 || d.SizeB() != 12 || d.SizeC() != 8 {
		t.Fatalf("sizes %v %v %v", d.SizeA(), d.SizeB(), d.SizeC())
	}
	if d.Flops() != 24 || d.InputOutputWords() != 26 {
		t.Fatalf("flops %v io %v", d.Flops(), d.InputOutputWords())
	}
	if Square(7) != (Dims{7, 7, 7}) {
		t.Fatal("Square wrong")
	}
	if d.String() != "2x3x4" {
		t.Fatalf("String = %q", d.String())
	}
}

// TestCaseOfPaperExample uses the paper's §5.3 example: 9600×2400×600,
// thresholds m/n = 4 and mn/k² = 64, with P = 3, 36, 512 falling in
// cases 1, 2, 3.
func TestCaseOfPaperExample(t *testing.T) {
	d := Dims{9600, 2400, 600}
	t1, t2 := Thresholds(d)
	if t1 != 4 || t2 != 64 {
		t.Fatalf("thresholds = %v, %v; want 4, 64", t1, t2)
	}
	for _, c := range []struct {
		p    int
		want Case
	}{
		{1, Case1}, {3, Case1}, {4, Case1}, {5, Case2}, {36, Case2},
		{64, Case2}, {65, Case3}, {512, Case3},
	} {
		if got := CaseOf(d, c.p); got != c.want {
			t.Errorf("CaseOf(P=%d) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestCaseStringAndGridDim(t *testing.T) {
	if Case1.String() != "Case 1 (1D)" || Case2.GridDim() != 2 || Case3.GridDim() != 3 {
		t.Fatal("Case metadata wrong")
	}
	if Case(9).String() != "Case(9)" {
		t.Fatal("unknown case String wrong")
	}
}

func TestSquareAlwaysCase3(t *testing.T) {
	for _, p := range []int{1, 2, 8, 1000} {
		if CaseOf(Square(100), p) == Case3 == false && p > 1 {
			t.Errorf("square multiplication at P=%d not Case 3", p)
		}
	}
}

// TestLemma2ClosedMatchesNumeric asserts the closed-form case solutions
// agree with the independent water-filling solver across random shapes.
func TestLemma2ClosedMatchesNumeric(t *testing.T) {
	f := func(aRaw, bRaw, cRaw, pRaw uint8) bool {
		d := Dims{int(aRaw%60) + 1, int(bRaw%60) + 1, int(cRaw%60) + 1}
		p := int(pRaw%128) + 1
		closed := Lemma2Closed(d, p)
		numeric := Lemma2Numeric(d, p)
		return approx(closed.X1, numeric.X1, 1e-9) &&
			approx(closed.X2, numeric.X2, 1e-9) &&
			approx(closed.X3, numeric.X3, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestLemma2KKT machine-checks the proof of Lemma 2: at the closed-form
// optimum, the paper's dual variables satisfy all KKT conditions.
func TestLemma2KKT(t *testing.T) {
	shapes := []Dims{
		{9600, 2400, 600}, {100, 100, 100}, {1000, 10, 10},
		{64, 32, 2}, {7, 5, 3}, {1, 1, 1}, {500, 500, 1},
	}
	ps := []int{1, 2, 3, 4, 7, 16, 64, 100, 512, 4096}
	for _, d := range shapes {
		for _, p := range ps {
			res := Lemma2KKTResiduals(d, p)
			tol := 1e-7 * (1 + d.Flops())
			if res.Max() > tol {
				t.Errorf("dims %v P=%d: KKT residuals %+v", d, p, res)
			}
		}
	}
}

func TestLemma2SolutionContinuityAtThresholds(t *testing.T) {
	// At P = m/n and P = mn/k² adjacent case formulas agree (the paper
	// notes the optimum is continuous in P).
	d := Dims{9600, 2400, 600} // thresholds 4 and 64
	m, n, k := d.Sorted()
	fm, fn, fk := float64(m), float64(n), float64(k)

	// P = 4: Case 1 and Case 2 formulas.
	c1 := Lemma2Solution{X1: fn * fk, X2: fm * fk / 4, X3: fm * fn / 4}
	c2 := Lemma2Solution{X1: math.Sqrt(fm * fn * fk * fk / 4), X2: math.Sqrt(fm * fn * fk * fk / 4), X3: fm * fn / 4}
	if !approx(c1.Sum(), c2.Sum(), 1e-12) {
		t.Errorf("discontinuity at P=m/n: %v vs %v", c1.Sum(), c2.Sum())
	}

	// P = 64: Case 2 and Case 3 formulas.
	c2b := 2*math.Sqrt(fm*fn*fk*fk/64) + fm*fn/64
	c3 := 3 * math.Pow(fm*fn*fk/64, 2.0/3.0)
	if !approx(c2b, c3, 1e-12) {
		t.Errorf("discontinuity at P=mn/k²: %v vs %v", c2b, c3)
	}
}

func TestDAndLowerBound(t *testing.T) {
	d := Dims{9600, 2400, 600}
	// Case 1, P=3: D = (mn+mk)/3 + nk.
	wantD := (9600.0*2400+9600*600)/3 + 2400*600
	if got := D(d, 3); !approx(got, wantD, 1e-12) {
		t.Errorf("D(P=3) = %v, want %v", got, wantD)
	}
	wantLB := wantD - d.InputOutputWords()/3
	if got := LowerBound(d, 3); !approx(got, wantLB, 1e-12) {
		t.Errorf("LowerBound(P=3) = %v, want %v", got, wantLB)
	}
}

// TestAttainableEqualsLowerBound is the §5.2 tightness claim at the level
// of formulas: the algebraic cost of Algorithm 1 with the optimal grid
// equals the lower bound in every case.
func TestAttainableEqualsLowerBound(t *testing.T) {
	f := func(aRaw, bRaw, cRaw, pRaw uint8) bool {
		d := Dims{int(aRaw%100) + 1, int(bRaw%100) + 1, int(cRaw%100) + 1}
		p := int(pRaw) + 1
		return approx(AttainableCost(d, p), LowerBound(d, p), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDMonotonicNonincreasingInP(t *testing.T) {
	// D — the per-processor data footprint — never increases with more
	// processors, and the *total* communication P·LowerBound never
	// decreases. (LowerBound itself is not monotone: it is 0 at P = 1 and
	// grows through Case 1, where every processor still needs all of the
	// smallest matrix.)
	d := Dims{9600, 2400, 600}
	prevD := math.Inf(1)
	prevTotal := 0.0
	for p := 1; p <= 65536; p *= 2 {
		dv := D(d, p)
		if dv > prevD*(1+1e-12) {
			t.Fatalf("D increased at P=%d: %v > %v", p, dv, prevD)
		}
		total := float64(p) * LowerBound(d, p)
		if total < prevTotal*(1-1e-12) {
			t.Fatalf("total communication decreased at P=%d: %v < %v", p, total, prevTotal)
		}
		prevD, prevTotal = dv, total
	}
	if LowerBound(d, 1) != 0 {
		t.Fatal("bound at P=1 should be zero")
	}
}

func TestLowerBoundNonNegative(t *testing.T) {
	f := func(aRaw, bRaw, cRaw, pRaw uint8) bool {
		d := Dims{int(aRaw%50) + 1, int(bRaw%50) + 1, int(cRaw%50) + 1}
		p := int(pRaw) + 1
		return LowerBound(d, p) >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCorollary4(t *testing.T) {
	n := 100
	for _, p := range []int{1, 8, 27, 64, 1000} {
		want := LowerBound(Square(n), p)
		got := Corollary4(n, p)
		if !approx(got, want, 1e-12) {
			t.Errorf("Corollary4(P=%d) = %v, Theorem3 = %v", p, got, want)
		}
	}
	if Corollary4(100, 1) != 0 {
		t.Error("Corollary 4 should vanish at P=1")
	}
}

func TestLeadingTermByCase(t *testing.T) {
	d := Dims{9600, 2400, 600}
	if got := LeadingTerm(d, 3); got != 2400*600 {
		t.Errorf("Case1 leading term = %v", got)
	}
	if got := LeadingTerm(d, 36); !approx(got, math.Sqrt(9600*2400*600*600/36.0), 1e-12) {
		t.Errorf("Case2 leading term = %v", got)
	}
	if got := LeadingTerm(d, 512); !approx(got, math.Pow(9600*2400*600/512.0, 2.0/3.0), 1e-12) {
		t.Errorf("Case3 leading term = %v", got)
	}
}

// TestTable1Constants pins down every cell of the paper's Table 1.
func TestTable1Constants(t *testing.T) {
	check := func(w PriorWork, c Case, want float64) {
		got := w.Constant(c)
		if math.IsNaN(want) {
			if !math.IsNaN(got) {
				t.Errorf("%v %v = %v, want NaN", w, c, got)
			}
			return
		}
		if !approx(got, want, 1e-12) {
			t.Errorf("%v %v = %v, want %v", w, c, got, want)
		}
	}
	nan := math.NaN()
	check(AggarwalChandraSnir1990, Case1, nan)
	check(AggarwalChandraSnir1990, Case2, nan)
	check(AggarwalChandraSnir1990, Case3, math.Pow(0.5, 2.0/3.0))
	check(IronyToledoTiskin2004, Case1, nan)
	check(IronyToledoTiskin2004, Case2, nan)
	check(IronyToledoTiskin2004, Case3, 0.5)
	check(DemmelEtAl2013, Case1, 0.64)
	check(DemmelEtAl2013, Case2, math.Sqrt(2.0/3.0))
	check(DemmelEtAl2013, Case3, 1)
	check(ThisPaper, Case1, 1)
	check(ThisPaper, Case2, 2)
	check(ThisPaper, Case3, 3)
}

// TestTheorem3ImprovesAllPriors verifies the paper's headline claim: the
// new constants strictly dominate every prior row in every case where that
// row proved a bound.
func TestTheorem3ImprovesAllPriors(t *testing.T) {
	for _, w := range AllWorks() {
		if w == ThisPaper {
			continue
		}
		for _, c := range []Case{Case1, Case2, Case3} {
			prior := w.Constant(c)
			if math.IsNaN(prior) {
				continue
			}
			if ThisPaper.Constant(c) <= prior {
				t.Errorf("%v not improved in %v: %v vs %v", w, c, ThisPaper.Constant(c), prior)
			}
			if f := ImprovementFactor(w, c); f <= 1 {
				t.Errorf("improvement factor %v for %v %v", f, w, c)
			}
		}
	}
}

func TestPriorWorkBoundEvaluation(t *testing.T) {
	d := Dims{9600, 2400, 600}
	// In Case 3 (P=512), Demmel et al. give exactly the leading term.
	if got, want := DemmelEtAl2013.Bound(d, 512), LeadingTerm(d, 512); !approx(got, want, 1e-12) {
		t.Errorf("Demmel bound = %v, want %v", got, want)
	}
	// Aggarwal has no Case 1 bound.
	if !math.IsNaN(AggarwalChandraSnir1990.Bound(d, 3)) {
		t.Error("Aggarwal should have no Case 1 bound")
	}
	if PriorWork(99).String() != "unknown" || !math.IsNaN(PriorWork(99).Constant(Case3)) {
		t.Error("unknown PriorWork handling")
	}
}

// TestMemoryCrossover checks the §6.2 algebra: the memory-dependent bound
// overtakes the Case 3 memory-independent bound exactly when
// P > (8/27)·mnk/M^{3/2}, equivalently M < (4/9)(mnk/P)^{2/3}.
func TestMemoryCrossover(t *testing.T) {
	d := Square(1200)
	mem := 3 * float64(1200*1200) / 64 // enough for P=64's data, scarce beyond
	pc := CrossoverP(d, mem)
	// The memory-dependent bound decays like 1/P versus the Case 3 bound's
	// P^{-2/3}, so it dominates for P *below* the crossover and loses above.
	for _, p := range []int{int(pc / 4), int(pc / 2), int(pc * 2), int(pc * 4)} {
		if p < 2 {
			continue
		}
		wantDominates := float64(p) < pc
		if got := MemoryDependentDominates(d, p, mem); got != wantDominates {
			t.Errorf("P=%d M=%v: dominates=%v, want %v (crossover %v)", p, mem, got, wantDominates, pc)
		}
	}
	// Consistency of the two §6.2 characterizations: at P = CrossoverP,
	// M equals CriticalMemory.
	p := pc
	cm := CriticalMemory(d, int(math.Round(p)))
	if !approx(cm, mem, 0.05) {
		t.Errorf("CriticalMemory at crossover = %v, want ≈ %v", cm, mem)
	}
}

// TestCase2NeverMemoryDominated encodes §6.2's claim that in Cases 1 and 2
// the memory-independent bound always dominates, because M > mn/P is forced
// by having to store the largest matrix.
func TestCase2NeverMemoryDominated(t *testing.T) {
	f := func(aRaw, bRaw, cRaw, pRaw uint8) bool {
		d := Dims{int(aRaw%60) + 2, int(bRaw%60) + 2, int(cRaw%60) + 2}
		p := int(pRaw)%64 + 1
		if CaseOf(d, p) == Case3 {
			return true // claim is about cases 1 and 2
		}
		mem := MinLocalMemory(d, p) // smallest legal memory
		return !MemoryDependentDominates(d, p, mem)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBindingBound(t *testing.T) {
	d := Square(1024)
	p := 4096
	// Generous memory: memory-independent binds.
	b, md := BindingBound(d, p, 1e12)
	if md || !approx(b, 3*LeadingTerm(d, p), 1e-12) {
		t.Errorf("generous memory: bound %v md=%v", b, md)
	}
	// Tiny memory: memory-dependent binds.
	b2, md2 := BindingBound(d, p, 1000)
	if !md2 || !approx(b2, MemoryDependentLeading(d, p, 1000), 1e-12) {
		t.Errorf("tiny memory: bound %v md=%v", b2, md2)
	}
}

func TestAlg1LocalMemoryAtLeastMinimum(t *testing.T) {
	f := func(aRaw, bRaw, cRaw, pRaw uint8) bool {
		d := Dims{int(aRaw%60) + 1, int(bRaw%60) + 1, int(cRaw%60) + 1}
		p := int(pRaw) + 1
		return Alg1LocalMemory(d, p) >= MinLocalMemory(d, p)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNewDimsAndStrings(t *testing.T) {
	if NewDims(2, 3, 4) != (Dims{N1: 2, N2: 3, N3: 4}) {
		t.Fatal("NewDims wrong")
	}
	for c, want := range map[Case]string{Case1: "Case 1 (1D)", Case2: "Case 2 (2D)", Case3: "Case 3 (3D)"} {
		if c.String() != want {
			t.Fatalf("Case %d String = %q", c, c.String())
		}
	}
	for _, w := range AllWorks() {
		if w.String() == "unknown" || w.String() == "" {
			t.Fatalf("work %d has no name", w)
		}
	}
}

func TestLemma2KKTRelativeResidualSmall(t *testing.T) {
	for _, p := range []int{1, 5, 64, 512, 1 << 14} {
		if r := Lemma2KKTRelativeResidual(Dims{N1: 9600, N2: 2400, N3: 600}, p); r > 1e-12 {
			t.Fatalf("P=%d: relative residual %g", p, r)
		}
	}
}

func TestPerfectStrongScalingLimitEqualsCrossover(t *testing.T) {
	d := Square(1024)
	if PerfectStrongScalingLimit(d, 5e4) != CrossoverP(d, 5e4) {
		t.Fatal("limit should equal the crossover")
	}
}
