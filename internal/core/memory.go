package core

import "math"

// This file implements the §6.2 limited-memory analysis: the interplay
// between Theorem 3's memory-independent bound and the classical
// memory-dependent bound with leading term 2·mnk/(P·sqrt(M))
// (Smith et al. 2019; Kwasniewski et al. 2019; Olivry et al. 2020).

// MemoryDependentLeading returns the leading term of the memory-dependent
// communication lower bound, 2·mnk/(P·sqrt(M)), for local memory size M
// words per processor.
func MemoryDependentLeading(d Dims, p int, mem float64) float64 {
	return 2 * d.Flops() / (float64(p) * math.Sqrt(mem))
}

// MinLocalMemory returns (mn + mk + nk)/P, the smallest local memory that
// can hold a 1/P share of the inputs and output — a hard floor on M for
// any algorithm meeting Theorem 3's one-copy assumptions.
func MinLocalMemory(d Dims, p int) float64 {
	return d.InputOutputWords() / float64(p)
}

// Alg1LocalMemory returns the per-processor memory Algorithm 1 needs with
// the optimal grid: the communicated data plus the owned data, which equals
// D (the positive terms of eq. 3) — see §6.2.
func Alg1LocalMemory(d Dims, p int) float64 { return D(d, p) }

// MemoryDependentDominates reports whether, for the given instance and
// local memory M, the memory-dependent leading term 2mnk/(P·sqrt(M))
// exceeds the memory-independent bound D of Theorem 3. Per §6.2 this can
// happen only in Case 3 (where D = 3(mnk/P)^{2/3}), and only when
// mn/k² < P < (8/27)·mnk/M^{3/2}; in Cases 1 and 2 the forced M > mn/P
// makes the memory-independent bound dominate always (the paper's AM-GM
// argument compares the full bounds, which is why D, not the leading term,
// is used here).
func MemoryDependentDominates(d Dims, p int, mem float64) bool {
	return MemoryDependentLeading(d, p, mem) > D(d, p)
}

// CrossoverP returns the processor count below which (and above mn/k²) the
// memory-dependent bound dominates the Case 3 memory-independent bound for
// memory M: the §6.2 threshold P = (8/27)·mnk/M^{3/2}. For P beyond it the
// memory-independent bound, which decays only as P^{-2/3}, is the binding
// one — the strong-scaling limit of Ballard et al. 2012b.
func CrossoverP(d Dims, mem float64) float64 {
	return 8.0 / 27.0 * d.Flops() / math.Pow(mem, 1.5)
}

// CriticalMemory returns M* = (4/9)·(mnk/P)^{2/3}, the memory size below
// which the memory-dependent bound dominates in Case 3 (equivalently, the
// memory at which Algorithm 1's 3D footprint no longer fits — §6.2).
func CriticalMemory(d Dims, p int) float64 {
	return 4.0 / 9.0 * math.Pow(d.Flops()/float64(p), 2.0/3.0)
}

// PerfectStrongScalingLimit returns the largest P for which the
// memory-dependent bound (whose total communication P·(bound) is constant,
// allowing perfect strong scaling) remains the binding one given
// per-processor memory M — beyond P = (8/27)·mnk/M^{3/2} the
// memory-independent Case 3 bound, which decays only as P^{-2/3}, takes
// over and perfect strong scaling must end (Ballard et al. 2012b, §2.3).
func PerfectStrongScalingLimit(d Dims, mem float64) float64 {
	return CrossoverP(d, mem)
}

// BindingBound returns the larger of the memory-independent bound D of
// Theorem 3 and the memory-dependent leading-term bound for the instance,
// along with which one binds.
func BindingBound(d Dims, p int, mem float64) (bound float64, memoryDependent bool) {
	mi := D(d, p)
	md := MemoryDependentLeading(d, p, mem)
	if md > mi {
		return md, true
	}
	return mi, false
}
