package core

import (
	"math"

	"repro/internal/kkt"
)

// Lemma2Solution is the optimum of the paper's key optimization problem
// (Lemma 2): minimize x1+x2+x3 subject to x1·x2·x3 ≥ (mnk/P)², x1 ≥ nk/P,
// x2 ≥ mk/P, x3 ≥ mn/P, where m ≥ n ≥ k are the sorted dimensions.
//
// X1 corresponds to the projection onto the smallest matrix (size nk),
// X2 to the middle one (mk), and X3 to the largest (mn).
type Lemma2Solution struct {
	X1, X2, X3 float64
	Case       Case
}

// Sum returns x1* + x2* + x3*, the paper's D.
func (s Lemma2Solution) Sum() float64 { return s.X1 + s.X2 + s.X3 }

// Lemma2Closed evaluates the paper's closed-form solution of Lemma 2:
//
//	Case 1 (P ≤ m/n):        x* = (nk, mk/P, mn/P)
//	Case 2 (m/n ≤ P ≤ mn/k²): x* = (sqrt(mnk²/P), sqrt(mnk²/P), mn/P)
//	Case 3 (mn/k² ≤ P):       x* = ((mnk/P)^{2/3}, ·, ·)
func Lemma2Closed(d Dims, p int) Lemma2Solution {
	m, n, k := d.Sorted()
	fm, fn, fk, fp := float64(m), float64(n), float64(k), float64(p)
	switch c := CaseOf(d, p); c {
	case Case1:
		return Lemma2Solution{X1: fn * fk, X2: fm * fk / fp, X3: fm * fn / fp, Case: c}
	case Case2:
		t := math.Sqrt(fm * fn * fk * fk / fp)
		return Lemma2Solution{X1: t, X2: t, X3: fm * fn / fp, Case: c}
	default:
		t := math.Pow(fm*fn*fk/fp, 2.0/3.0)
		return Lemma2Solution{X1: t, X2: t, X3: t, Case: Case3}
	}
}

// Lemma2Problem returns the Lemma 2 instance as a generic ProductMin
// problem over (x1, x2, x3), suitable for the water-filling solver and for
// KKT verification.
func Lemma2Problem(d Dims, p int) kkt.ProductMin {
	m, n, k := d.Sorted()
	fm, fn, fk, fp := float64(m), float64(n), float64(k), float64(p)
	l := fm * fn * fk / fp
	return kkt.ProductMin{
		L:     l * l,
		Lower: kkt.Vector{fn * fk / fp, fm * fk / fp, fm * fn / fp},
	}
}

// Lemma2Numeric solves Lemma 2 via the generic water-filling solver of
// internal/kkt, independently of the closed forms. Tests assert it agrees
// with Lemma2Closed everywhere.
func Lemma2Numeric(d Dims, p int) Lemma2Solution {
	x, _ := Lemma2Problem(d, p).Solve()
	return Lemma2Solution{X1: x[0], X2: x[1], X3: x[2], Case: CaseOf(d, p)}
}

// Lemma2Duals returns the explicit dual variables μ* the paper exhibits in
// the proof of Lemma 2 for the regime of (d, p), in the constraint order
// (product, x1-bound, x2-bound, x3-bound):
//
//	Case 1: μ = (P²/(m²nk), 0, 1 − Pn/m, 1 − Pk/m)
//	Case 2: μ = ((P/(mnk^{2/3}))^{3/2}, 0, 0, 1 − (Pk²/(mn))^{1/2})
//	Case 3: μ = ((P/(mnk))^{4/3}, 0, 0, 0)
//
// Note on Case 2: the paper's typeset first component "(P/(mnk^{2/3}))^{3/2}"
// is the rendering of μ₁ = (P/(mn))^{3/2}/k; stationarity fixes it uniquely
// to μ₁ = 1/(x2*·x3*) with the case's x* — which is the value returned here.
func Lemma2Duals(d Dims, p int) []float64 {
	m, n, k := d.Sorted()
	fm, fn, fk, fp := float64(m), float64(n), float64(k), float64(p)
	switch CaseOf(d, p) {
	case Case1:
		return []float64{
			fp * fp / (fm * fm * fn * fk),
			0,
			1 - fp*fn/fm,
			1 - fp*fk/fm,
		}
	case Case2:
		// μ₁ = 1/(x2*·x3*) with x2* = sqrt(mnk²/P), x3* = mn/P:
		// μ₁ = P^{3/2} / ((mn)^{3/2}·k).
		x2 := math.Sqrt(fm * fn * fk * fk / fp)
		x3 := fm * fn / fp
		return []float64{
			1 / (x2 * x3),
			0,
			0,
			1 - math.Sqrt(fp*fk*fk/(fm*fn)),
		}
	default:
		return []float64{math.Pow(fp/(fm*fn*fk), 4.0/3.0), 0, 0, 0}
	}
}

// Lemma2KKTResiduals evaluates the KKT conditions of Definition 4 at the
// closed-form optimum with the paper's dual variables. All residuals are
// zero (up to floating-point error) in every case — this is the
// machine-checked version of the proof of Lemma 2.
func Lemma2KKTResiduals(d Dims, p int) kkt.Residuals {
	sol := Lemma2Closed(d, p)
	pt := kkt.Point{
		X:  kkt.Vector{sol.X1, sol.X2, sol.X3},
		Mu: Lemma2Duals(d, p),
	}
	return Lemma2Problem(d, p).Problem().Check(pt)
}

// Lemma2KKTRelativeResidual returns the largest KKT residual normalized by
// the problem scale: the primal-feasibility and complementary-slackness
// terms involve the product constraint, whose magnitude is
// L = (mnk/P)², so their raw values carry that scale's floating-point
// noise; stationarity and dual feasibility are already O(1). Values within
// a few ulps of machine precision certify the paper's dual variables.
func Lemma2KKTRelativeResidual(d Dims, p int) float64 {
	res := Lemma2KKTResiduals(d, p)
	scale := 1 + Lemma2Problem(d, p).L
	r := res.PrimalFeasibility / scale
	if v := res.ComplementarySlackness / scale; v > r {
		r = v
	}
	if res.DualFeasibility > r {
		r = res.DualFeasibility
	}
	if res.Stationarity > r {
		r = res.Stationarity
	}
	return r
}
