// Package core implements the paper's primary contribution: tight
// memory-independent communication lower bounds for parallel classical
// matrix multiplication (Al Daas, Ballard, Grigori, Kumar, Rouse,
// SPAA 2022).
//
// The central objects are:
//
//   - Dims: the problem shape (an n1×n2 matrix times an n2×n3 matrix) and
//     its sorted aspect view m ≥ n ≥ k used throughout the paper.
//   - Case: which of Theorem 3's three regimes a (Dims, P) pair falls in,
//     with thresholds P = m/n and P = mn/k².
//   - Lemma2: the key constrained optimization problem and its analytic
//     solution x*, both in the paper's closed form and via the generic
//     water-filling solver of internal/kkt, together with the explicit dual
//     certificates from the proof.
//   - Theorem3: the lower bound D − (mn+mk+nk)/P with tight constants
//     1, 2, 3 in the three cases, and Corollary 4 for square matrices.
//   - Prior-work bounds (Table 1): Aggarwal-Chandra-Snir 1990,
//     Irony-Toledo-Tiskin 2004, and Demmel et al. 2013 constants.
//   - The memory-dependent bound 2mnk/(P·sqrt(M)) and the §6.2 analysis of
//     when it dominates.
//
// All bounds are in words of data moved along the critical path, matching
// the α-β-γ machine model of §3.1 (see internal/machine for the simulator
// that measures the same quantity).
package core

import (
	"fmt"
	"sort"
)

// Dims describes a classical matrix multiplication C = A·B with A of size
// N1×N2 and B of size N2×N3 (so C is N1×N3).
type Dims struct {
	N1, N2, N3 int
}

// Sorted returns the dimensions ordered as the paper's m ≥ n ≥ k:
// m = max, n = median, k = min.
func (d Dims) Sorted() (m, n, k int) {
	v := []int{d.N1, d.N2, d.N3}
	sort.Ints(v)
	return v[2], v[1], v[0]
}

// maxExactProduct is the largest integer float64 arithmetic represents
// exactly (2^53). Everything downstream of Validate — Flops, the matrix
// sizes, Lemma 2, Theorem 3 — computes products like n1·n2·n3 in float64,
// so a shape whose pairwise or triple product exceeds this would silently
// round and corrupt the bounds rather than fail.
const maxExactProduct = int64(1) << 53

// Validate reports an error when any dimension is non-positive, or when a
// pairwise or triple product of the dimensions exceeds 2^53 and would lose
// precision in the float64 arithmetic the bounds are computed with. Shapes
// with n1·n2·n3 ≤ 2^53 (≈ 9.0e15) are exact.
func (d Dims) Validate() error {
	if d.N1 <= 0 || d.N2 <= 0 || d.N3 <= 0 {
		return fmt.Errorf("core: dimensions must be positive, got %dx%dx%d: %w", d.N1, d.N2, d.N3, ErrBadDims)
	}
	// Overflow-free checks: for positive integers a·b > limit ⇔
	// a > limit/b under integer division, so no product is formed before
	// it is known to fit.
	n1, n2, n3 := int64(d.N1), int64(d.N2), int64(d.N3)
	if n1 > maxExactProduct/n2 || n2 > maxExactProduct/n3 || n1 > maxExactProduct/n3 {
		return fmt.Errorf("core: dimensions %dx%dx%d overflow exact float64 range (pairwise product > 2^53): %w", d.N1, d.N2, d.N3, ErrBadDims)
	}
	if prod := n1 * n2; n3 > maxExactProduct/prod {
		return fmt.Errorf("core: dimensions %dx%dx%d overflow exact float64 range (n1·n2·n3 > 2^53): %w", d.N1, d.N2, d.N3, ErrBadDims)
	}
	return nil
}

// Flops returns the number of scalar multiplications n1·n2·n3.
func (d Dims) Flops() float64 {
	return float64(d.N1) * float64(d.N2) * float64(d.N3)
}

// InputOutputWords returns mn + mk + nk, the total number of words of the
// three matrices (one copy of each): |A| + |B| + |C|.
func (d Dims) InputOutputWords() float64 {
	return float64(d.N1)*float64(d.N2) + float64(d.N2)*float64(d.N3) + float64(d.N1)*float64(d.N3)
}

// SizeA returns n1·n2, the number of words of A.
func (d Dims) SizeA() float64 { return float64(d.N1) * float64(d.N2) }

// SizeB returns n2·n3, the number of words of B.
func (d Dims) SizeB() float64 { return float64(d.N2) * float64(d.N3) }

// SizeC returns n1·n3, the number of words of C.
func (d Dims) SizeC() float64 { return float64(d.N1) * float64(d.N3) }

// Square returns the Dims of an n×n by n×n multiplication.
func Square(n int) Dims { return Dims{n, n, n} }

// String renders the shape as "n1xn2xn3".
func (d Dims) String() string { return fmt.Sprintf("%dx%dx%d", d.N1, d.N2, d.N3) }

// Case identifies which regime of Theorem 3 (equivalently, which active set
// of Lemma 2) applies. The numbering matches the paper.
type Case int

const (
	// Case1 is 1 ≤ P ≤ m/n: a 1D processor grid is optimal and the bound's
	// leading term is nk with constant 1.
	Case1 Case = 1
	// Case2 is m/n ≤ P ≤ mn/k²: a 2D grid is optimal and the leading term
	// is (mnk²/P)^{1/2} with constant 2.
	Case2 Case = 2
	// Case3 is mn/k² ≤ P: a 3D grid is optimal and the leading term is
	// (mnk/P)^{2/3} with constant 3.
	Case3 Case = 3
)

// String names the case with its grid dimensionality.
func (c Case) String() string {
	switch c {
	case Case1:
		return "Case 1 (1D)"
	case Case2:
		return "Case 2 (2D)"
	case Case3:
		return "Case 3 (3D)"
	}
	return fmt.Sprintf("Case(%d)", int(c))
}

// GridDim returns the effective processor-grid dimensionality (1, 2 or 3)
// of the optimal algorithm in this case.
func (c Case) GridDim() int { return int(c) }

// CaseOf returns the Theorem 3 regime for multiplying with dims d on p
// processors. At the exact thresholds P = m/n and P = mn/k² adjacent cases
// coincide (the bound is continuous); CaseOf returns the lower-numbered
// case there.
func CaseOf(d Dims, p int) Case {
	m, n, k := d.Sorted()
	fp := float64(p)
	if fp <= float64(m)/float64(n) {
		return Case1
	}
	if fp <= float64(m)*float64(n)/(float64(k)*float64(k)) {
		return Case2
	}
	return Case3
}

// Thresholds returns the two case boundaries (m/n, mn/k²) of Theorem 3.
func Thresholds(d Dims) (oneToTwo, twoToThree float64) {
	m, n, k := d.Sorted()
	return float64(m) / float64(n), float64(m) * float64(n) / (float64(k) * float64(k))
}

// NewDims is a convenience constructor for Dims.
func NewDims(n1, n2, n3 int) Dims { return Dims{N1: n1, N2: n2, N3: n3} }
