package core

import "math"

// D evaluates the paper's D — the minimum total data footprint
// (|φ_A| + |φ_B| + |φ_C|) of a processor that performs a 1/P share of the
// computation — which equals the optimum of Lemma 2:
//
//	Case 1: (mn + mk)/P + nk
//	Case 2: 2·sqrt(mnk²/P) + mn/P
//	Case 3: 3·(mnk/P)^{2/3}
func D(d Dims, p int) float64 {
	return Lemma2Closed(d, p).Sum()
}

// LowerBound returns Theorem 3's memory-independent communication lower
// bound in words: D − (mn + mk + nk)/P. Any parallel algorithm on P
// processors that starts with one copy of the inputs, ends with one copy of
// the output, and load-balances either the computation or the data must
// move at least this many words along its critical path.
func LowerBound(d Dims, p int) float64 {
	return D(d, p) - d.InputOutputWords()/float64(p)
}

// LeadingTerm returns the leading-order term of the bound in the regime of
// (d, p) — the quantity whose constants Table 1 compares:
//
//	Case 1: nk,  Case 2: (mnk²/P)^{1/2},  Case 3: (mnk/P)^{2/3}.
func LeadingTerm(d Dims, p int) float64 {
	m, n, k := d.Sorted()
	fm, fn, fk, fp := float64(m), float64(n), float64(k), float64(p)
	switch CaseOf(d, p) {
	case Case1:
		return fn * fk
	case Case2:
		return math.Sqrt(fm * fn * fk * fk / fp)
	default:
		return math.Pow(fm*fn*fk/fp, 2.0/3.0)
	}
}

// TightConstant returns the constant of the leading term proved tight by
// Theorem 3 together with the §5 algorithm: 1, 2, or 3 by case.
func TightConstant(c Case) float64 { return float64(c) }

// Corollary4 returns the square-matrix specialization of Theorem 3: for
// n×n matrices, at least 3n²/P^{2/3} − 3n²/P words must be communicated.
// (For P ≥ 1 square multiplication always falls in Case 3 because
// mn/k² = 1.)
func Corollary4(n, p int) float64 {
	fn, fp := float64(n), float64(p)
	return 3*fn*fn/math.Pow(fp, 2.0/3.0) - 3*fn*fn/fp
}

// AttainableCost returns the communication cost of the optimal Algorithm 1
// with the best processor grid, which by §5.2 matches LowerBound exactly in
// every case (when the grid divides the dimensions):
//
//	Case 1: (1 − 1/P)·nk
//	Case 2: 2·sqrt(mnk²/P) − (mk + nk)/P
//	Case 3: 3·(mnk/P)^{2/3} − (mn + mk + nk)/P
//
// These are algebraically identical to LowerBound; the function exists so
// experiments can report "bound" and "attained" from independent formulas.
func AttainableCost(d Dims, p int) float64 {
	m, n, k := d.Sorted()
	fm, fn, fk, fp := float64(m), float64(n), float64(k), float64(p)
	switch CaseOf(d, p) {
	case Case1:
		return (1 - 1/fp) * fn * fk
	case Case2:
		return 2*math.Sqrt(fm*fn*fk*fk/fp) - (fm*fk+fn*fk)/fp
	default:
		return 3*math.Pow(fm*fn*fk/fp, 2.0/3.0) - (fm*fn+fm*fk+fn*fk)/fp
	}
}
