package core

import "math"

// This file encodes the prior-work constants compared in the paper's
// Table 1. Each prior bound is expressed as constant × leading term, where
// the leading term is the case-appropriate expression of Theorem 3
// (nk, (mnk²/P)^{1/2}, or (mnk/P)^{2/3}). A NaN constant means the work
// proved no bound for that case.

// PriorWork identifies a row of Table 1.
type PriorWork int

const (
	// AggarwalChandraSnir1990 — "Communication complexity of PRAMs",
	// LPRAM model; constant (1/2)^{2/3} ≈ 0.63 in Case 3 only.
	AggarwalChandraSnir1990 PriorWork = iota
	// IronyToledoTiskin2004 — "Communication lower bounds for
	// distributed-memory matrix multiplication"; constant 1/2 in Case 3
	// only (rectangular generalization, minimized over local memory).
	IronyToledoTiskin2004
	// DemmelEtAl2013 — "Communication-optimal parallel recursive
	// rectangular matrix multiplication"; the first three-case result,
	// constants 16/25, (2/3)^{1/2}, 1.
	DemmelEtAl2013
	// ThisPaper — Theorem 3, tight constants 1, 2, 3.
	ThisPaper
)

// String returns the citation-style name of the row.
func (w PriorWork) String() string {
	switch w {
	case AggarwalChandraSnir1990:
		return "Aggarwal et al. (1990)"
	case IronyToledoTiskin2004:
		return "Irony et al. (2004)"
	case DemmelEtAl2013:
		return "Demmel et al. (2013)"
	case ThisPaper:
		return "Theorem 3 (this paper)"
	}
	return "unknown"
}

// AllWorks lists the Table 1 rows in the paper's order.
func AllWorks() []PriorWork {
	return []PriorWork{AggarwalChandraSnir1990, IronyToledoTiskin2004, DemmelEtAl2013, ThisPaper}
}

// Constant returns the leading-term constant that work w proved for the
// given case, or NaN if the work established no bound in that case.
func (w PriorWork) Constant(c Case) float64 {
	switch w {
	case AggarwalChandraSnir1990:
		if c == Case3 {
			return math.Pow(0.5, 2.0/3.0) // ≈ 0.63
		}
		return math.NaN()
	case IronyToledoTiskin2004:
		if c == Case3 {
			return 0.5
		}
		return math.NaN()
	case DemmelEtAl2013:
		switch c {
		case Case1:
			return 16.0 / 25.0 // = 0.64
		case Case2:
			return math.Sqrt(2.0 / 3.0) // ≈ 0.82
		default:
			return 1
		}
	case ThisPaper:
		return TightConstant(c)
	}
	return math.NaN()
}

// Bound evaluates work w's lower bound (constant × leading term of the
// applicable case) on a concrete instance, or NaN where the work proved no
// bound. Only the leading term is compared, as in Table 1.
func (w PriorWork) Bound(d Dims, p int) float64 {
	return w.Constant(CaseOf(d, p)) * LeadingTerm(d, p)
}

// ImprovementFactor returns the ratio of Theorem 3's constant to work w's
// constant in the given case (NaN if w has no bound there). Values > 1
// quantify how much the paper tightens each prior row.
func ImprovementFactor(w PriorWork, c Case) float64 {
	return ThisPaper.Constant(c) / w.Constant(c)
}
