package topo

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
)

// divisorTriples enumerates every ordered (p1, p2, p3) with p1·p2·p3 = p.
func divisorTriples(p int) []grid.Grid {
	var out []grid.Grid
	for p1 := 1; p1 <= p; p1++ {
		if p%p1 != 0 {
			continue
		}
		q := p / p1
		for p2 := 1; p2 <= q; p2++ {
			if q%p2 == 0 {
				out = append(out, grid.Grid{P1: p1, P2: p2, P3: q / p2})
			}
		}
	}
	return out
}

// smallestDivisor returns the smallest divisor of p greater than 1, or 1.
func smallestDivisor(p int) int {
	for d := 2; d*d <= p; d++ {
		if p%d == 0 {
			return d
		}
	}
	if p > 1 {
		return p
	}
	return 1
}

// TestPlacementBijection is the property test of the placement mapper:
// for every divisor triple of every P ≤ 512, every policy on every
// applicable topology yields a permutation of the ranks — no grid cell is
// dropped or doubled on the fabric.
func TestPlacementBijection(t *testing.T) {
	for p := 1; p <= 512; p++ {
		triples := divisorTriples(p)
		topos := []Topology{NewFlat(p, testLink)}
		if g := smallestDivisor(p); g > 1 && g < p {
			topos = append(topos, NewTwoLevel(p/g, g, testLink, testLink))
		}
		for _, g := range triples {
			// The grid's own shape doubles as a torus of the same size.
			torus, err := NewTorus([]int{g.P1, g.P2, g.P3}, testLink)
			if err != nil {
				t.Fatalf("P=%d torus %v: %v", p, g, err)
			}
			for _, topo := range append(topos, Topology(torus)) {
				for _, pol := range []Policy{Contiguous, RoundRobin} {
					pl, err := Map(g, topo, pol)
					if err != nil {
						t.Fatalf("Map(%v, %s, %v): %v", g, topo.Name(), pol, err)
					}
					if len(pl.ToEndpoint) != p {
						t.Fatalf("Map(%v, %s, %v): %d entries, want %d", g, topo.Name(), pol, len(pl.ToEndpoint), p)
					}
					seen := make([]bool, p)
					for r, e := range pl.ToEndpoint {
						if e < 0 || e >= p || seen[e] {
							t.Fatalf("Map(%v, %s, %v): rank %d → endpoint %d is out of range or duplicated", g, topo.Name(), pol, r, e)
						}
						seen[e] = true
					}
				}
			}
		}
	}
}

// TestPlaceRanksContiguousIsIdentity pins the contiguous embedding: rank i
// sits on endpoint i, so Flat + contiguous is exactly the paper's machine.
func TestPlaceRanksContiguousIsIdentity(t *testing.T) {
	pl, err := PlaceRanks(16, NewFlat(16, testLink), Contiguous)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range pl.ToEndpoint {
		if e != i {
			t.Fatalf("contiguous placement moved rank %d to endpoint %d", i, e)
		}
	}
}

// TestPlaceRanksRoundRobinScatters checks round-robin deals consecutive
// ranks onto distinct locality units.
func TestPlaceRanksRoundRobinScatters(t *testing.T) {
	topo := NewTwoLevel(8, 8, testLink, testLink) // 64 ranks, nodes of 8
	pl, err := PlaceRanks(64, topo, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		a, b := pl.ToEndpoint[i]/8, pl.ToEndpoint[i+1]/8
		if a == b {
			t.Fatalf("round-robin put consecutive ranks %d, %d on the same node %d", i, i+1, a)
		}
	}
}

// TestPlaceRanksMismatch checks a rank/endpoint count mismatch wraps
// core.ErrBadTopology.
func TestPlaceRanksMismatch(t *testing.T) {
	if _, err := PlaceRanks(8, NewFlat(16, testLink), Contiguous); !errors.Is(err, core.ErrBadTopology) {
		t.Errorf("PlaceRanks size mismatch = %v, want ErrBadTopology", err)
	}
	if _, err := Map(grid.Grid{P1: 2, P2: 2, P3: 2}, NewFlat(16, testLink), Contiguous); !errors.Is(err, core.ErrBadTopology) {
		t.Errorf("Map size mismatch = %v, want ErrBadTopology", err)
	}
}

// TestParsePolicy covers the placement-name parser.
func TestParsePolicy(t *testing.T) {
	for spec, want := range map[string]Policy{
		"": Contiguous, "contiguous": Contiguous, "contig": Contiguous,
		"roundrobin": RoundRobin, "RR": RoundRobin, " RoundRobin ": RoundRobin,
	} {
		got, err := ParsePolicy(spec)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", spec, got, err, want)
		}
	}
	if _, err := ParsePolicy("random"); !errors.Is(err, core.ErrBadTopology) {
		t.Errorf("ParsePolicy(random) = %v, want ErrBadTopology", err)
	}
}
