package topo

import (
	"fmt"

	"repro/internal/core"
)

// FatTree is a radix-ary tree of switches over radix^levels leaf endpoints.
// The tree edge between a level-ℓ subtree (radix^ℓ leaves) and its parent
// consists of widths[ℓ] parallel cables; routes climb to the lowest common
// ancestor and descend, picking one cable per level deterministically from
// the (src, dst) pair so flows spread across the parallel cables. With the
// default widths (radix^ℓ, a full-bisection fat-tree) no tree edge is
// oversubscribed; with widths all 1 (a "skinny" tree, spec "tree=RxL") the
// root edge carries every cross-half flow and congestion is maximal.
type FatTree struct {
	radix, levels int
	widths        []int
	link          Link
	p             int
	offsets       []int // link-id offset of each level's cable block
	numLinks      int
}

// NewFatTree builds a fat-tree. widths may be nil (full bisection:
// widths[ℓ] = radix^ℓ) or give the cable count per level (level 0 is the
// leaf edge). Invalid shapes wrap core.ErrBadTopology.
func NewFatTree(radix, levels int, widths []int, link Link) (*FatTree, error) {
	if radix < 2 || levels < 1 {
		return nil, fmt.Errorf("topo: fat-tree needs radix ≥ 2 and levels ≥ 1, got %dx%d: %w",
			radix, levels, core.ErrBadTopology)
	}
	p := 1
	for i := 0; i < levels; i++ {
		if p > 1<<22/radix {
			return nil, fmt.Errorf("topo: fat-tree %dx%d has too many leaves: %w", radix, levels, core.ErrBadTopology)
		}
		p *= radix
	}
	if widths == nil {
		widths = make([]int, levels)
		w := 1
		for i := range widths {
			widths[i] = w
			w *= radix
		}
	}
	if len(widths) != levels {
		return nil, fmt.Errorf("topo: fat-tree %dx%d wants %d widths, got %d: %w",
			radix, levels, levels, len(widths), core.ErrBadTopology)
	}
	for _, w := range widths {
		if w <= 0 {
			return nil, fmt.Errorf("topo: fat-tree width %d must be positive: %w", w, core.ErrBadTopology)
		}
	}
	t := &FatTree{
		radix:  radix,
		levels: levels,
		widths: append([]int(nil), widths...),
		link:   link,
		p:      p,
	}
	t.offsets = make([]int, levels)
	id, nodes := 0, p
	for l := 0; l < levels; l++ {
		t.offsets[l] = id
		id += nodes * t.widths[l] * 2
		nodes /= radix
	}
	t.numLinks = id
	return t, nil
}

// Name returns the spec string ("fattree=RxL", or "tree=RxL" when every
// level has a single cable).
func (t *FatTree) Name() string {
	kind := "tree"
	for _, w := range t.widths {
		if w != 1 {
			kind = "fattree"
			break
		}
	}
	return fmt.Sprintf("%s=%dx%d", kind, t.radix, t.levels)
}

// P returns the leaf count radix^levels.
func (t *FatTree) P() int { return t.p }

// NodeSize returns the radix: consecutive leaves share a first-level
// switch.
func (t *FatTree) NodeSize() int { return t.radix }

// NumLinks returns the total cable count (up and down, all levels).
func (t *FatTree) NumLinks() int { return t.numLinks }

// linkID identifies cable c (dir 0 = up, 1 = down) between level-l node
// `node` and its parent.
func (t *FatTree) linkID(l, node, cable, dir int) int {
	return t.offsets[l] + (node*t.widths[l]+cable)*2 + dir
}

// Route climbs from src to the lowest common ancestor and descends to dst,
// choosing cables deterministically from the endpoint pair.
func (t *FatTree) Route(buf []int, src, dst int) []int {
	if src == dst {
		return buf
	}
	// Find the LCA level: the smallest l with equal level-l ancestors.
	lca, s, d := 0, src, dst
	for s != d {
		s /= t.radix
		d /= t.radix
		lca++
	}
	for l, node := 0, src; l < lca; l++ {
		cable := (src*31 + dst) % t.widths[l]
		buf = append(buf, t.linkID(l, node, cable, 0))
		node /= t.radix
	}
	for l := lca - 1; l >= 0; l-- {
		node := dst
		for i := 0; i < l; i++ {
			node /= t.radix
		}
		cable := (src*31 + dst) % t.widths[l]
		buf = append(buf, t.linkID(l, node, cable, 1))
	}
	return buf
}

// Link returns the uniform per-cable link cost.
func (t *FatTree) Link(int) Link { return t.link }

// Scalable reports whether every level's cable count divides its subtree
// leaf count. When it does, the deterministic cable choice
// (31·src + dst) mod widths[ℓ] spreads the level's all-to-all flows
// exactly uniformly across the cables (for any fixed src, the dst
// residues modulo the width are equidistributed over both a subtree and
// its complement, because both have width-aligned sizes), giving the link
// loads a closed form. Both Parse shapes qualify: full-bisection widths
// radix^ℓ and skinny width-1 trees.
func (t *FatTree) Scalable() bool {
	sub := 1
	for l := 0; l < t.levels; l++ {
		if sub%t.widths[l] != 0 {
			return false
		}
		sub *= t.radix
	}
	return true
}

// Diameter returns 2·levels: up to the root and back down.
func (t *FatTree) Diameter() int { return 2 * t.levels }

// LinkFlows fills the all-to-all crossing count of every link (flows must
// be zeroed). The level-ℓ tree edge above a node with sub = radix^ℓ leaves
// carries the sub·(p−sub) pairs crossing it in each direction, split
// exactly evenly over the widths[ℓ] cables — see Scalable for why the
// cable hash is uniform. Only valid when Scalable() is true.
func (t *FatTree) LinkFlows(flows []int) {
	sub := 1
	for l := 0; l < t.levels; l++ {
		w := t.widths[l]
		per := sub * (t.p - sub) / w
		nodes := t.p / sub
		for node := 0; node < nodes; node++ {
			for c := 0; c < w; c++ {
				flows[t.linkID(l, node, c, 0)] = per
				flows[t.linkID(l, node, c, 1)] = per
			}
		}
		sub *= t.radix
	}
}

// WalkCharge prices one message in Route's link order — climb to the LCA,
// then descend — without materializing the route or allocating.
func (t *FatTree) WalkCharge(effBeta []float64, src, dst int) (alpha, maxEff float64) {
	if src == dst {
		return 0, 0
	}
	lca, s, d := 0, src, dst
	for s != d {
		s /= t.radix
		d /= t.radix
		lca++
	}
	for l, node := 0, src; l < lca; l++ {
		cable := (src*31 + dst) % t.widths[l]
		alpha += t.link.Alpha
		if e := effBeta[t.linkID(l, node, cable, 0)]; e > maxEff {
			maxEff = e
		}
		node /= t.radix
	}
	for l := lca - 1; l >= 0; l-- {
		node := dst
		for i := 0; i < l; i++ {
			node /= t.radix
		}
		cable := (src*31 + dst) % t.widths[l]
		alpha += t.link.Alpha
		if e := effBeta[t.linkID(l, node, cable, 1)]; e > maxEff {
			maxEff = e
		}
	}
	return alpha, maxEff
}
