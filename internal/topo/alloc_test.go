package topo

import "testing"

// TestChargeDoesNotAllocate pins the Charge hot path: the simulator calls
// it once per message, so both the Flat uniform fast path and the
// table-backed non-flat path must be allocation-free.
func TestChargeDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts shift under -race instrumentation")
	}
	for _, spec := range []string{"flat", "twolevel=8", "torus=4x4x4"} {
		n := mustNetwork(t, spec, 64, Contiguous)
		var sink float64
		got := testing.AllocsPerRun(100, func() {
			for s := 0; s < 64; s++ {
				a, b := n.Charge(s, (s+17)%64)
				sink += a + b
			}
		})
		if got != 0 {
			t.Errorf("%s: Charge allocates %.1f per 64 calls, want 0", spec, got)
		}
		_ = sink
	}
}

// TestChargeDoesNotAllocateAtScale pins the walk path at datacenter size:
// P=65536 is far past tableP, so Charge prices each route arithmetically
// through WalkCharge — which must stay allocation-free, since the
// simulator calls it once per message and an event-engine run at this
// scale sends tens of millions.
func TestChargeDoesNotAllocateAtScale(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts shift under -race instrumentation")
	}
	const p = 1 << 16
	for _, spec := range []string{"twolevel=64", "torus=16x16x16x16", "fattree=4x8", "tree=2x16"} {
		n := mustNetwork(t, spec, p, Contiguous)
		if n.Tabulated() {
			t.Fatalf("%s at P=%d built per-pair tables, want walk mode", spec, p)
		}
		var sink float64
		got := testing.AllocsPerRun(100, func() {
			for s := 0; s < 64; s++ {
				a, b := n.Charge(s*977+13, ((s+29)*1993)%p)
				sink += a + b
			}
		})
		if got != 0 {
			t.Errorf("%s: walk Charge allocates %.1f per 64 calls, want 0", spec, got)
		}
		_ = sink
	}
}

// TestRouteReusesBuffer pins the Route contract: routing into a
// pre-grown buffer must not allocate.
func TestRouteReusesBuffer(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts shift under -race instrumentation")
	}
	for _, spec := range []string{"flat", "twolevel=8", "torus=4x4x4", "fattree=4x3"} {
		topo, err := Parse(spec, 64, testLink)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]int, 0, 64)
		got := testing.AllocsPerRun(100, func() {
			for s := 0; s < 64; s++ {
				buf = topo.Route(buf[:0], s, (s+21)%64)
			}
		})
		if got != 0 {
			t.Errorf("%s: Route allocates %.1f per 64 calls with warm buffer, want 0", spec, got)
		}
	}
}
