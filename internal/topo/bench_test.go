package topo

import (
	"fmt"
	"testing"
)

// benchFabrics names one spec per fabric kind at each benchmarked rank
// count: near-cubic tori, full-bisection fat-trees, and 64-rank nodes.
func benchFabrics(p int) []string {
	switch p {
	case 64:
		return []string{"twolevel=8", "torus=4x4x4", "fattree=4x3"}
	case 1024:
		return []string{"twolevel=32", "torus=8x8x16", "fattree=4x5"}
	case 4096:
		return []string{"twolevel=64", "torus=16x16x16", "fattree=4x6"}
	case 1 << 16:
		return []string{"twolevel=64", "torus=16x16x16x16", "fattree=4x8"}
	default:
		return nil
	}
}

// BenchmarkNewNetwork measures charge-oracle construction across fabrics
// and rank counts: table mode (P ≤ 2048) pays the p² materialization,
// walk mode (P = 65536) only the O(links) analytic flow pass.
func BenchmarkNewNetwork(b *testing.B) {
	for _, p := range []int{64, 1024, 4096, 1 << 16} {
		for _, spec := range benchFabrics(p) {
			tp, err := Parse(spec, p, Link{Alpha: 1, Beta: 1})
			if err != nil {
				b.Fatal(err)
			}
			pl, err := PlaceRanks(p, tp, Contiguous)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/P=%d", spec, p), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := NewNetwork(tp, pl); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkChargeScaling measures the per-message pricing hot path in both
// modes: two slice loads at P ≤ 2048, an O(hops) arithmetic walk at
// P = 65536. The simulator calls this once per message, so ns/op here
// bounds topology-aware simulation throughput.
func BenchmarkChargeScaling(b *testing.B) {
	for _, p := range []int{1024, 1 << 16} {
		for _, spec := range benchFabrics(p) {
			tp, err := Parse(spec, p, Link{Alpha: 1, Beta: 1})
			if err != nil {
				b.Fatal(err)
			}
			pl, err := PlaceRanks(p, tp, Contiguous)
			if err != nil {
				b.Fatal(err)
			}
			n, err := NewNetwork(tp, pl)
			if err != nil {
				b.Fatal(err)
			}
			mode := "walk"
			if n.Tabulated() {
				mode = "table"
			}
			b.Run(fmt.Sprintf("%s/P=%d/%s", spec, p, mode), func(b *testing.B) {
				b.ReportAllocs()
				var sink float64
				s, d := 0, 1
				for i := 0; i < b.N; i++ {
					a, bb := n.Charge(s, d)
					sink += a + bb
					s = (s + 479) % p // odd strides cycle through pairs
					d = (d + 281) % p
					if s == d {
						d = (d + 1) % p
					}
				}
				benchSink = sink
			})
		}
	}
}

var benchSink float64
