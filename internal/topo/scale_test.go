package topo

import (
	"testing"

	"repro/internal/grid"
)

// scaleSpecs maps rank counts to every Parse-able non-flat spec shape at
// that size, covering even and odd torus extents (forward/backward ring
// asymmetry), full-bisection and skinny trees, and two-level nodes.
func scaleSpecs(p int) []string {
	switch p {
	case 12:
		return []string{"twolevel=4", "torus=3x4", "torus=12"}
	case 64:
		return []string{"twolevel=8", "torus=4x4x4", "torus=8x8", "fattree=4x3", "tree=4x3", "fattree=8x2"}
	case 100:
		return []string{"twolevel=10", "torus=5x20", "torus=10x10", "torus=5x5x4"}
	case 256:
		return []string{"twolevel=16", "torus=4x8x8", "fattree=4x4", "tree=2x8"}
	case 2048:
		return []string{"twolevel=32", "torus=8x16x16", "fattree=2x11", "tree=2x11"}
	default:
		return nil
	}
}

func mustParse(t *testing.T, spec string, p int) Topology {
	t.Helper()
	tp, err := Parse(spec, p, testLink)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// TestAnalyticLinkFlowsMatchEnumerated holds every fabric's closed-form
// LinkFlows and Diameter against the all-pairs route enumeration.
func TestAnalyticLinkFlowsMatchEnumerated(t *testing.T) {
	for _, p := range []int{12, 64, 100, 256} {
		for _, spec := range scaleSpecs(p) {
			tp := mustParse(t, spec, p)
			s, ok := tp.(ScalableFabric)
			if !ok || !s.Scalable() {
				t.Fatalf("%s at P=%d: Parse built a non-scalable fabric", spec, p)
			}
			got := make([]int, tp.NumLinks())
			s.LinkFlows(got)
			want := make([]int, tp.NumLinks())
			maxHops := enumerateFlows(tp, want)
			for l := range want {
				if got[l] != want[l] {
					t.Fatalf("%s at P=%d: link %d analytic flows %d, enumerated %d", spec, p, l, got[l], want[l])
				}
			}
			if d := s.Diameter(); d != maxHops {
				t.Errorf("%s at P=%d: Diameter %d, enumerated longest route %d", spec, p, d, maxHops)
			}
		}
	}
}

// TestFatTreeUnevenWidthsFallBack checks a cable count that does not
// divide its subtree size reports non-scalable, and that NewNetwork still
// builds it through the enumeration fallback.
func TestFatTreeUnevenWidthsFallBack(t *testing.T) {
	tp, err := NewFatTree(2, 2, []int{1, 3}, testLink)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Scalable() {
		t.Fatal("widths {1, 3} on radix 2 reported scalable; 3 does not divide the subtree size 2")
	}
	pl, err := PlaceRanks(tp.P(), tp, Contiguous)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNetwork(tp, pl)
	if err != nil {
		t.Fatal(err)
	}
	if n.MaxHops() != 4 {
		t.Errorf("MaxHops = %d, want 4", n.MaxHops())
	}
}

// walkOnly returns a copy of n with the per-pair tables dropped, forcing
// Charge onto the O(hops) walk path.
func walkOnly(t *testing.T, n *Network) *Network {
	t.Helper()
	if n.walker == nil {
		t.Fatalf("%s has no walker", n.Topology().Name())
	}
	c := *n
	c.lat, c.bw = nil, nil
	return &c
}

// TestWalkChargeMatchesTableCharge pins the bit-identity contract between
// the two Charge modes for every fabric × placement: the table fast path
// and the on-demand route walk must return exactly the same floats, so a
// simulation's critical path cannot depend on which mode the rank count
// selects.
func TestWalkChargeMatchesTableCharge(t *testing.T) {
	for _, p := range []int{12, 64, 100, 256, 2048} {
		if p > 256 && (raceEnabled || testing.Short()) {
			continue // the 2048-rank table builds dominate instrumented runs
		}
		// Full pair sweeps at small P, strided sampling at 2048.
		ss, ds := 1, 1
		if p > 256 {
			ss, ds = 7, 13
		}
		for _, spec := range scaleSpecs(p) {
			for _, pol := range []Policy{Contiguous, RoundRobin} {
				table := mustNetwork(t, spec, p, pol)
				if !table.Tabulated() {
					t.Fatalf("%s at P=%d built without tables", spec, p)
				}
				walk := walkOnly(t, table)
				for s := 0; s < p; s += ss {
					for d := 0; d < p; d += ds {
						ta, tb := table.Charge(s, d)
						wa, wb := walk.Charge(s, d)
						if ta != wa || tb != wb {
							t.Fatalf("%s/%v at P=%d: Charge(%d, %d) table (%v, %v) != walk (%v, %v)",
								spec, pol, p, s, d, ta, tb, wa, wb)
						}
					}
				}
			}
		}
	}
}

// TestTranslationEquivariance verifies the Translatable contract the
// symmetry-class shortcuts rely on: translating both endpoints of a pair
// translates every link of its route, link by link in order.
func TestTranslationEquivariance(t *testing.T) {
	for _, spec := range []string{"torus=3x4", "torus=4x4x4", "torus=5x5x4", "twolevel=8"} {
		p := map[string]int{"torus=3x4": 12, "torus=4x4x4": 64, "torus=5x5x4": 100, "twolevel=8": 64}[spec]
		tp := mustParse(t, spec, p)
		tr, ok := tp.(Translatable)
		if !ok {
			t.Fatalf("%s does not implement Translatable", spec)
		}
		var base, shifted []int
		for from := 0; from < p; from += 3 {
			for to := 0; to < p; to += 5 {
				tok, ok := tr.Translation(from, to)
				if !ok {
					continue
				}
				if got := tr.TranslateEndpoint(from, tok); got != to {
					t.Fatalf("%s: Translation(%d, %d) token moves to %d", spec, from, to, got)
				}
				if got := tr.TranslateEndpoint(to, tr.Invert(tok)); got != from {
					t.Fatalf("%s: Invert does not undo Translation(%d, %d)", spec, from, to)
				}
				for d := 0; d < p; d += 7 {
					base = tp.Route(base[:0], from, d)
					shifted = tp.Route(shifted[:0], tr.TranslateEndpoint(from, tok), tr.TranslateEndpoint(d, tok))
					if len(base) != len(shifted) {
						t.Fatalf("%s: route %d→%d translates to a different length", spec, from, d)
					}
					for i, l := range base {
						if tr.TranslateLink(l, tok) != shifted[i] {
							t.Fatalf("%s: hop %d of route %d→%d breaks equivariance under token %d", spec, i, from, d, tok)
						}
					}
				}
			}
		}
	}
}

// TestCongestMatchesExhaustive holds the symmetry-class congestion path
// against the original full enumeration for every fabric × placement over
// all divisor triples of each rank count — flows, busiest-link load, χ,
// and hop statistics must agree exactly.
func TestCongestMatchesExhaustive(t *testing.T) {
	for _, p := range []int{12, 64, 100} {
		specs := append([]string{"flat"}, scaleSpecs(p)...)
		for _, g := range divisorTriples(p) {
			for _, spec := range specs {
				tp := mustParse(t, spec, p)
				for _, pol := range []Policy{Contiguous, RoundRobin} {
					pl, err := Map(g, tp, pol)
					if err != nil {
						t.Fatal(err)
					}
					got, err := Congest(g, tp, pl)
					if err != nil {
						t.Fatal(err)
					}
					want, err := congestExhaustive(g, tp, pl)
					if err != nil {
						t.Fatal(err)
					}
					if len(got.Phases) != len(want.Phases) {
						t.Fatalf("%s/%v on %v: phase count %d != %d", spec, pol, g, len(got.Phases), len(want.Phases))
					}
					for i := range got.Phases {
						if got.Phases[i] != want.Phases[i] {
							t.Fatalf("%s/%v on %v, %s:\n scaled     %+v\n exhaustive %+v",
								spec, pol, g, want.Phases[i].Phase, got.Phases[i], want.Phases[i])
						}
					}
				}
			}
		}
	}
}

// TestCongestAtScale checks the symmetry-class path handles a P=65536
// torus and two-level fabric in well under a second of work per report,
// with the known closed-form answers.
func TestCongestAtScale(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("large-P congestion reports")
	}
	const p = 1 << 16
	g := grid.Grid{P1: 64, P2: 32, P3: 32}
	for _, spec := range []string{"twolevel=32", "torus=16x16x16x16", "fattree=4x8", "flat"} {
		tp := mustParse(t, spec, p)
		pl, err := Map(g, tp, Contiguous)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Congest(g, tp, pl)
		if err != nil {
			t.Fatal(err)
		}
		for i, k := range []int{g.P3, g.P1, g.P2} { // phase order: Axis3, Axis1, Axis2
			ph := rep.Phases[i]
			if ph.Flows != p*(k-1) {
				t.Errorf("%s %s: Flows = %d, want %d", spec, ph.Phase, ph.Flows, p*(k-1))
			}
			if ph.MaxChi < 1 {
				t.Errorf("%s %s: MaxChi = %v < 1", spec, ph.Phase, ph.MaxChi)
			}
		}
		// Contiguous keeps each Axis3 fiber (32 consecutive ranks) inside
		// one 32-rank node: the A All-Gather runs on dedicated intra links.
		if spec == "twolevel=32" && rep.Phases[0].MaxChi != 1 {
			t.Errorf("twolevel=32 contiguous allgather-A MaxChi = %v, want 1", rep.Phases[0].MaxChi)
		}
		if spec == "flat" && rep.MaxChi() != 1 {
			t.Errorf("flat MaxChi = %v, want 1", rep.MaxChi())
		}
	}
}
