package topo

import (
	"fmt"

	"repro/internal/core"
)

// maxNetworkP bounds the rank count for which Network precomputes per-pair
// charge tables (two p² float64 slices plus the all-to-all route
// enumeration). Flat networks bypass the tables and have no cap.
const maxNetworkP = 2048

// Network is the cost oracle the machine simulator charges sends through:
// for every ordered rank pair it answers the effective (α, β) of one
// message, under the max-congested-link model.
//
// Latency is additive over the route: α(s, d) = Σ_{l ∈ route} Link(l).Alpha.
// Bandwidth is throttled by the route's most contended link:
// β(s, d) = max_{l ∈ route} Link(l).Beta · χ_l, where the concurrent-use
// factor χ_l = max(1, flows_l / (p−1)) counts the ordered endpoint pairs
// whose route crosses l, normalized so that a dedicated per-pair link — each
// endpoint talking to its p−1 peers over p−1 private links — has χ = 1.
// The factors are static (all-to-all enumeration at construction), keeping
// the simulator deterministic: charges never depend on goroutine timing.
//
// All tables are computed once in NewNetwork; Charge is a pair of slice
// loads, allocation-free and safe for concurrent use. A Flat topology is
// special-cased to a uniform charge with no tables at all, so the paper's
// model runs unchanged at any p.
type Network struct {
	p    int
	topo Topology
	pl   Placement

	// uniform covers Flat: every pair charges exactly (alpha, beta).
	uniform     bool
	alpha, beta float64

	// lat[s*p+d], bw[s*p+d] are the per-pair charges otherwise.
	lat, bw []float64

	maxChi  float64 // largest χ over links any route uses
	maxHops int     // longest route, in links
}

// NewNetwork precomputes the charge tables for topology t under placement
// pl. The placement must cover exactly t.P() ranks; non-flat topologies are
// limited to maxNetworkP ranks (the tables are quadratic). Violations wrap
// core.ErrBadTopology.
func NewNetwork(t Topology, pl Placement) (*Network, error) {
	p := t.P()
	if len(pl.ToEndpoint) != p {
		return nil, fmt.Errorf("topo: placement covers %d ranks, %s has %d endpoints: %w",
			len(pl.ToEndpoint), t.Name(), p, core.ErrBadTopology)
	}
	n := &Network{p: p, topo: t, pl: pl}
	if f, ok := t.(*Flat); ok {
		n.uniform = true
		n.alpha, n.beta = f.link.Alpha, f.link.Beta
		n.maxChi, n.maxHops = 1, 1
		return n, nil
	}
	if p > maxNetworkP {
		return nil, fmt.Errorf("topo: %s has %d ranks, per-pair charge tables support at most %d: %w",
			t.Name(), p, maxNetworkP, core.ErrBadTopology)
	}

	// Pass 1: all-to-all flow counts per link.
	flows := make([]int, t.NumLinks())
	var buf []int
	for s := 0; s < p; s++ {
		for d := 0; d < p; d++ {
			if s == d {
				continue
			}
			buf = t.Route(buf[:0], pl.ToEndpoint[s], pl.ToEndpoint[d])
			for _, l := range buf {
				flows[l]++
			}
		}
	}

	// Pass 2: per-pair charges under χ_l = max(1, flows_l/(p−1)).
	chi := make([]float64, len(flows))
	norm := float64(p - 1)
	if norm < 1 {
		norm = 1
	}
	for l, f := range flows {
		c := float64(f) / norm
		if c < 1 {
			c = 1
		}
		chi[l] = c
	}
	n.lat = make([]float64, p*p)
	n.bw = make([]float64, p*p)
	n.maxHops = 0
	n.maxChi = 1
	for s := 0; s < p; s++ {
		for d := 0; d < p; d++ {
			if s == d {
				continue
			}
			buf = t.Route(buf[:0], pl.ToEndpoint[s], pl.ToEndpoint[d])
			if len(buf) > n.maxHops {
				n.maxHops = len(buf)
			}
			var a, b float64
			for _, l := range buf {
				lk := t.Link(l)
				a += lk.Alpha
				if eff := lk.Beta * chi[l]; eff > b {
					b = eff
				}
				if chi[l] > n.maxChi {
					n.maxChi = chi[l]
				}
			}
			n.lat[s*p+d] = a
			n.bw[s*p+d] = b
		}
	}
	return n, nil
}

// Charge returns the effective per-message latency α and per-word cost β
// for one message from rank src to rank dst. It never allocates.
func (n *Network) Charge(src, dst int) (alpha, beta float64) {
	if n.uniform {
		return n.alpha, n.beta
	}
	i := src*n.p + dst
	return n.lat[i], n.bw[i]
}

// P returns the rank count.
func (n *Network) P() int { return n.p }

// Topology returns the underlying fabric.
func (n *Network) Topology() Topology { return n.topo }

// Placement returns the rank→endpoint embedding the charges were computed
// under.
func (n *Network) Placement() Placement { return n.pl }

// MaxCongestion returns the largest concurrent-use factor χ over all links
// any route crosses: 1 means no link is busier than a dedicated per-pair
// link under all-to-all traffic.
func (n *Network) MaxCongestion() float64 { return n.maxChi }

// MaxHops returns the longest route length in links.
func (n *Network) MaxHops() int { return n.maxHops }
