package topo

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// tableP bounds the rank count for which Network additionally materializes
// per-pair charge tables (two p² float64 slices): below it, Charge is two
// slice loads; above it, Charge walks the route arithmetically in O(hops).
const tableP = 2048

// maxEnumP bounds the rank count for fabrics without closed-form link
// loads (no ScalableFabric implementation): their construction enumerates
// all P² routes, which is only affordable at small P. Every fabric Parse
// builds implements the closed forms, so this cap is unreachable through
// specs; it guards custom Topology implementations.
const maxEnumP = 2048

// Network is the cost oracle the machine simulator charges sends through:
// for every ordered rank pair it answers the effective (α, β) of one
// message, under the max-congested-link model.
//
// Latency is additive over the route: α(s, d) = Σ_{l ∈ route} Link(l).Alpha.
// Bandwidth is throttled by the route's most contended link:
// β(s, d) = max_{l ∈ route} Link(l).Beta · χ_l, where the concurrent-use
// factor χ_l = max(1, flows_l / (p−1)) counts the ordered endpoint pairs
// whose route crosses l, normalized so that a dedicated per-pair link — each
// endpoint talking to its p−1 peers over p−1 private links — has χ = 1.
// The factors are static, keeping the simulator deterministic: charges
// never depend on goroutine timing.
//
// Construction is O(links): fabrics implementing ScalableFabric supply
// their all-to-all flow counts in closed form, and the only per-link state
// kept is the effective-β table effBeta[l] = β_l·χ_l. At p ≤ tableP the
// per-pair (α, β) tables are additionally materialized (in parallel) so
// Charge is two slice loads; at larger p Charge walks the route
// arithmetically via WalkCharge — O(hops), allocation-free, and
// bit-identical to the table path, which is built through the same
// arithmetic. A Flat topology is special-cased to a uniform charge with no
// tables at all, so the paper's model runs unchanged at any p.
type Network struct {
	p    int
	topo Topology
	pl   Placement

	// uniform covers Flat: every pair charges exactly (alpha, beta).
	uniform     bool
	alpha, beta float64

	// effBeta[l] = Link(l).Beta · χ_l, the only O(links) state the charge
	// model needs.
	effBeta []float64
	// walker prices routes in O(hops) when the fabric supports it.
	walker ScalableFabric

	// lat[s*p+d], bw[s*p+d] are the per-pair fast-path tables at small p.
	lat, bw []float64

	maxChi  float64 // largest χ over links any route uses
	maxHops int     // longest route, in links
}

// MaxP returns the largest rank count NewNetwork accepts for topology t:
// unbounded for Flat and for fabrics with closed-form link loads
// (everything Parse builds), maxEnumP for custom fabrics that need the
// quadratic route enumeration.
func MaxP(t Topology) int {
	if _, ok := t.(*Flat); ok {
		return math.MaxInt
	}
	if s, ok := t.(ScalableFabric); ok && s.Scalable() {
		return math.MaxInt
	}
	return maxEnumP
}

// NewNetwork builds the charge oracle for topology t under placement pl.
// The placement must cover exactly t.P() ranks; fabrics without
// closed-form link loads are limited to MaxP(t) ranks. Violations wrap
// core.ErrBadTopology.
func NewNetwork(t Topology, pl Placement) (*Network, error) {
	p := t.P()
	if len(pl.ToEndpoint) != p {
		return nil, fmt.Errorf("topo: placement covers %d ranks, %s has %d endpoints: %w",
			len(pl.ToEndpoint), t.Name(), p, core.ErrBadTopology)
	}
	n := &Network{p: p, topo: t, pl: pl}
	if f, ok := t.(*Flat); ok {
		n.uniform = true
		n.alpha, n.beta = f.link.Alpha, f.link.Beta
		n.maxChi, n.maxHops = 1, 1
		return n, nil
	}

	flows := make([]int, t.NumLinks())
	if s, ok := t.(ScalableFabric); ok && s.Scalable() {
		s.LinkFlows(flows)
		n.walker = s
		n.maxHops = s.Diameter()
	} else {
		if p > maxEnumP {
			return nil, fmt.Errorf("topo: %s has %d ranks, fabrics without closed-form link loads support at most %d (route enumeration is quadratic): %w",
				t.Name(), p, maxEnumP, core.ErrBadTopology)
		}
		n.maxHops = enumerateFlows(t, flows)
	}

	// χ_l = max(1, flows_l/(p−1)) folded into the per-link effective β.
	norm := float64(p - 1)
	if norm < 1 {
		norm = 1
	}
	n.effBeta = make([]float64, len(flows))
	n.maxChi = 1
	for l, f := range flows {
		c := float64(f) / norm
		if c < 1 {
			c = 1
		}
		if c > n.maxChi {
			n.maxChi = c
		}
		n.effBeta[l] = t.Link(l).Beta * c
	}

	// Non-scalable fabrics always fit under tableP, so every Network has
	// either tables or a walker.
	if p <= tableP {
		n.buildTables()
	}
	return n, nil
}

// buildTables materializes the per-pair (α, β) fast path. Prices come from
// the same effBeta table the walk path reads, with routes priced in
// Route's link order, so both paths return bit-identical charges. Sources
// are sharded across GOMAXPROCS goroutines writing disjoint rows, so the
// build is deterministic.
func (n *Network) buildTables() {
	p := n.p
	n.lat = make([]float64, p*p)
	n.bw = make([]float64, p*p)
	t, eps := n.topo, n.pl.ToEndpoint
	parallelFor(p, func(lo, hi int) {
		var buf []int
		for s := lo; s < hi; s++ {
			for d := 0; d < p; d++ {
				if s == d {
					continue
				}
				var a, b float64
				if n.walker != nil {
					a, b = n.walker.WalkCharge(n.effBeta, eps[s], eps[d])
				} else {
					buf = t.Route(buf[:0], eps[s], eps[d])
					for _, l := range buf {
						a += t.Link(l).Alpha
						if e := n.effBeta[l]; e > b {
							b = e
						}
					}
				}
				n.lat[s*p+d] = a
				n.bw[s*p+d] = b
			}
		}
	})
}

// Charge returns the effective per-message latency α and per-word cost β
// for one message from rank src to rank dst. It never allocates at any
// scale: uniform constant, two slice loads, or an arithmetic route walk.
func (n *Network) Charge(src, dst int) (alpha, beta float64) {
	if n.uniform {
		return n.alpha, n.beta
	}
	if n.lat != nil {
		i := src*n.p + dst
		return n.lat[i], n.bw[i]
	}
	return n.walker.WalkCharge(n.effBeta, n.pl.ToEndpoint[src], n.pl.ToEndpoint[dst])
}

// P returns the rank count.
func (n *Network) P() int { return n.p }

// Topology returns the underlying fabric.
func (n *Network) Topology() Topology { return n.topo }

// Placement returns the rank→endpoint embedding the charges were computed
// under.
func (n *Network) Placement() Placement { return n.pl }

// Uniform reports whether every ordered pair charges the same (α, β) —
// true exactly for Flat. Fiber sweeps use it to price one pair instead of
// all of them.
func (n *Network) Uniform() bool { return n.uniform }

// Tabulated reports whether Charge serves from the per-pair tables (small
// p) rather than walking routes on demand.
func (n *Network) Tabulated() bool { return n.lat != nil }

// MaxCongestion returns the largest concurrent-use factor χ over all links
// any route crosses: 1 means no link is busier than a dedicated per-pair
// link under all-to-all traffic.
func (n *Network) MaxCongestion() float64 { return n.maxChi }

// MaxHops returns the longest route length in links.
func (n *Network) MaxHops() int { return n.maxHops }
