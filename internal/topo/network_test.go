package topo

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
)

func mustNetwork(t *testing.T, spec string, p int, pol Policy) *Network {
	t.Helper()
	topo, err := Parse(spec, p, testLink)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := PlaceRanks(p, topo, pol)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNetwork(topo, pl)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestFlatChargeIsExactBase pins the bit-identity contract: on a Flat
// network every pair charges exactly the base link's (α, β), so the
// simulator's a + b·w arithmetic is indistinguishable from the scalar
// cfg.Alpha + cfg.Beta·w path.
func TestFlatChargeIsExactBase(t *testing.T) {
	n := mustNetwork(t, "flat", 16, Contiguous)
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s == d {
				continue
			}
			a, b := n.Charge(s, d)
			if a != testLink.Alpha || b != testLink.Beta {
				t.Fatalf("flat Charge(%d, %d) = (%v, %v), want exactly (%v, %v)", s, d, a, b, testLink.Alpha, testLink.Beta)
			}
		}
	}
	if n.MaxCongestion() != 1 {
		t.Errorf("flat MaxCongestion = %v, want 1", n.MaxCongestion())
	}
	// Flat takes the uniform fast path at any size — no quadratic tables.
	big, err := NewNetwork(NewFlat(1<<16, testLink), Placement{Policy: Contiguous, ToEndpoint: make([]int, 1<<16)})
	if err != nil {
		t.Fatalf("flat at 65536 ranks: %v", err)
	}
	if a, b := big.Charge(3, 9); a != testLink.Alpha || b != testLink.Beta {
		t.Errorf("large flat Charge = (%v, %v)", a, b)
	}
}

// TestTwoLevelCharges checks the NIC-sharing math: an intra-node pair pays
// the dedicated link, an inter-node pair pays two latencies and the NIC
// oversubscription factor χ = g(p−g)/(p−1) on bandwidth.
func TestTwoLevelCharges(t *testing.T) {
	const p, g = 64, 8
	n := mustNetwork(t, "twolevel=8", p, Contiguous)

	a, b := n.Charge(1, 3) // same node
	if a != testLink.Alpha || b != testLink.Beta {
		t.Errorf("intra-node Charge = (%v, %v), want (%v, %v)", a, b, testLink.Alpha, testLink.Beta)
	}

	a, b = n.Charge(1, 60) // different nodes
	wantChi := float64(g*(p-g)) / float64(p-1) // 448/63 ≈ 7.11
	if a != 2*testLink.Alpha {
		t.Errorf("inter-node latency = %v, want %v", a, 2*testLink.Alpha)
	}
	if math.Abs(b-testLink.Beta*wantChi) > 1e-12 {
		t.Errorf("inter-node bandwidth = %v, want β·χ = %v", b, testLink.Beta*wantChi)
	}
	if math.Abs(n.MaxCongestion()-wantChi) > 1e-12 {
		t.Errorf("MaxCongestion = %v, want %v", n.MaxCongestion(), wantChi)
	}
	if n.MaxHops() != 2 {
		t.Errorf("MaxHops = %d, want 2", n.MaxHops())
	}
}

// TestTorusChargeSymmetry checks torus charges are symmetric under rank
// swap (minimal ring routes have equal length both ways) and latency grows
// with hop count.
func TestTorusChargeSymmetry(t *testing.T) {
	n := mustNetwork(t, "torus=4x4x4", 64, Contiguous)
	for s := 0; s < 64; s += 3 {
		for d := 0; d < 64; d += 5 {
			if s == d {
				continue
			}
			a1, _ := n.Charge(s, d)
			a2, _ := n.Charge(d, s)
			if a1 != a2 {
				t.Fatalf("torus latency asymmetric: %d↔%d gives %v vs %v", s, d, a1, a2)
			}
		}
	}
	near, _ := n.Charge(0, 1)  // one hop
	far, _ := n.Charge(0, 42) // multi-hop
	if near >= far {
		t.Errorf("one-hop latency %v not below multi-hop %v", near, far)
	}
}

// opaqueTopo hides a fabric's ScalableFabric implementation, forcing
// NewNetwork onto the quadratic enumeration fallback.
type opaqueTopo struct{ inner Topology }

func (o *opaqueTopo) Name() string                      { return o.inner.Name() }
func (o *opaqueTopo) P() int                            { return o.inner.P() }
func (o *opaqueTopo) NodeSize() int                     { return o.inner.NodeSize() }
func (o *opaqueTopo) NumLinks() int                     { return o.inner.NumLinks() }
func (o *opaqueTopo) Route(buf []int, s, d int) []int   { return o.inner.Route(buf, s, d) }
func (o *opaqueTopo) Link(id int) Link                  { return o.inner.Link(id) }

// TestNetworkCapOnlyBindsEnumeratedFabrics checks the lifted cap: every
// Parse-able fabric has closed-form link loads, so it builds beyond the
// old 2048-rank limit (serving walk charges instead of tables), while a
// custom fabric without closed forms still hits the quadratic-enumeration
// cap with an error naming the actual limit.
func TestNetworkCapOnlyBindsEnumeratedFabrics(t *testing.T) {
	const p = maxEnumP * 2
	n := mustNetwork(t, "twolevel=2", p, Contiguous)
	if n.Tabulated() {
		t.Errorf("twolevel at %d ranks built per-pair tables, want walk mode", p)
	}
	if a, _ := n.Charge(0, 3); a != 2*testLink.Alpha {
		t.Errorf("walk-mode inter-node latency = %v, want %v", a, 2*testLink.Alpha)
	}
	if MaxP(n.Topology()) != math.MaxInt {
		t.Errorf("MaxP(twolevel) = %d, want unbounded", MaxP(n.Topology()))
	}

	topo := &opaqueTopo{NewTwoLevel(p/2, 2, testLink, testLink)}
	if MaxP(topo) != maxEnumP {
		t.Errorf("MaxP(opaque) = %d, want %d", MaxP(topo), maxEnumP)
	}
	pl := Placement{Policy: Contiguous, ToEndpoint: make([]int, p)}
	for i := range pl.ToEndpoint {
		pl.ToEndpoint[i] = i
	}
	_, err := NewNetwork(topo, pl)
	if !errors.Is(err, core.ErrBadTopology) {
		t.Fatalf("oversized enumerated network = %v, want ErrBadTopology", err)
	}
	if !strings.Contains(err.Error(), fmt.Sprint(maxEnumP)) {
		t.Errorf("cap error %q does not name the limit %d", err, maxEnumP)
	}
}

// TestNetworkEnumeratedFallbackMatchesScalable checks the enumeration
// fallback prices a hidden-closed-form fabric identically to the scalable
// path at small P.
func TestNetworkEnumeratedFallbackMatchesScalable(t *testing.T) {
	const p = 64
	want := mustNetwork(t, "twolevel=8", p, Contiguous)
	topo := &opaqueTopo{want.Topology()}
	pl, err := PlaceRanks(p, topo, Contiguous)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewNetwork(topo, pl)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < p; s++ {
		for d := 0; d < p; d++ {
			ga, gb := got.Charge(s, d)
			wa, wb := want.Charge(s, d)
			if ga != wa || gb != wb {
				t.Fatalf("Charge(%d, %d): enumerated (%v, %v) != scalable (%v, %v)", s, d, ga, gb, wa, wb)
			}
		}
	}
	if got.MaxHops() != want.MaxHops() || got.MaxCongestion() != want.MaxCongestion() {
		t.Errorf("enumerated stats (%d, %v) != scalable (%d, %v)",
			got.MaxHops(), got.MaxCongestion(), want.MaxHops(), want.MaxCongestion())
	}
}

// TestNetworkPlacementMismatch checks a short placement is rejected.
func TestNetworkPlacementMismatch(t *testing.T) {
	if _, err := NewNetwork(NewFlat(8, testLink), Placement{ToEndpoint: make([]int, 4)}); !errors.Is(err, core.ErrBadTopology) {
		t.Errorf("short placement = %v, want ErrBadTopology", err)
	}
}

// TestCongestFlatIsUncontended checks the Alg1 phase analysis reports χ = 1
// on the paper's dedicated-link model for every phase.
func TestCongestFlatIsUncontended(t *testing.T) {
	g := grid.Grid{P1: 4, P2: 4, P3: 4}
	topo := NewFlat(64, testLink)
	pl, err := Map(g, topo, Contiguous)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Congest(g, topo, pl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) != 3 {
		t.Fatalf("want 3 phases, got %d", len(rep.Phases))
	}
	for _, ph := range rep.Phases {
		if ph.MaxChi != 1 {
			t.Errorf("flat %s MaxChi = %v, want 1", ph.Phase, ph.MaxChi)
		}
		if ph.MaxLinkLoad != 1 {
			t.Errorf("flat %s MaxLinkLoad = %d, want 1", ph.Phase, ph.MaxLinkLoad)
		}
		if ph.Flows != 64*3 { // 16 fibers × 4·3 ordered pairs
			t.Errorf("flat %s Flows = %d, want 192", ph.Phase, ph.Flows)
		}
	}
	if rep.MaxChi() != 1 {
		t.Errorf("report MaxChi = %v, want 1", rep.MaxChi())
	}
}

// TestCongestPlacementMatters checks the headline phenomenon behind
// experiment E17: on a node/NIC cluster, scattering the grid's innermost
// fibers across nodes (round-robin) congests the NICs that a contiguous
// embedding keeps idle.
func TestCongestPlacementMatters(t *testing.T) {
	g := grid.Grid{P1: 4, P2: 4, P3: 4}
	topo, err := Parse("twolevel=8", 64, testLink)
	if err != nil {
		t.Fatal(err)
	}
	report := func(pol Policy) CongestionReport {
		pl, err := Map(g, topo, pol)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Congest(g, topo, pl)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	cont, rr := report(Contiguous), report(RoundRobin)
	// Contiguous keeps each Axis3 fiber (4 consecutive ranks) inside one
	// 8-rank node: the A All-Gather runs on dedicated intra links.
	if got := cont.Phases[0].MaxChi; got != 1 {
		t.Errorf("contiguous allgather-A MaxChi = %v, want 1", got)
	}
	// Round-robin scatters every Axis3 fiber across nodes; each NIC uplink
	// then carries 8 endpoints × 3 partners = 24 flows for fan-in 3.
	if got := rr.Phases[0].MaxChi; got != 8 {
		t.Errorf("roundrobin allgather-A MaxChi = %v, want 8", got)
	}
	// Round-robin on this shape is a transpose of the node×slot matrix: it
	// trades the A phase's locality for the B phase's (allgather-B becomes
	// node-local), so the congestion moves to whichever phase carries the
	// most words — the lever experiment E17 measures.
	if got := rr.Phases[1].MaxChi; got != 1 {
		t.Errorf("roundrobin allgather-B MaxChi = %v, want 1 (fiber becomes node-local)", got)
	}
	if got := cont.Phases[1].MaxChi; got <= 1 {
		t.Errorf("contiguous allgather-B MaxChi = %v, want > 1 (fiber spans nodes)", got)
	}
}

// TestCongestSizeMismatch checks disagreeing sizes wrap core.ErrBadTopology.
func TestCongestSizeMismatch(t *testing.T) {
	g := grid.Grid{P1: 2, P2: 2, P3: 2}
	topo := NewFlat(16, testLink)
	pl := Placement{ToEndpoint: make([]int, 16)}
	if _, err := Congest(g, topo, pl); !errors.Is(err, core.ErrBadTopology) {
		t.Errorf("Congest size mismatch = %v, want ErrBadTopology", err)
	}
}
