//go:build race

package topo

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation changes allocation counts, so the alloc-regression tests
// skip themselves.
const raceEnabled = true
