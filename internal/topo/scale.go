package topo

import (
	"runtime"
	"strconv"
	"sync"
)

// ScalableFabric is the optional contract a Topology implements when its
// all-to-all link loads have a closed form and its routes can be priced
// without materializing them. It is what lets Network drop the quadratic
// construction: LinkFlows replaces the all-pairs route enumeration with
// O(links) arithmetic, and WalkCharge prices a single message in O(hops)
// with no allocation, so the charge oracle works at P = 65536 and beyond.
//
// Implementations must make WalkCharge price exactly the links Route would
// emit, in the same order, summing per-link α and maximizing effBeta — the
// table fast path is built through the same arithmetic, so the two paths
// return bit-identical charges and simulations stay deterministic across
// table and walk modes.
type ScalableFabric interface {
	// Scalable reports whether the closed forms apply to this instance.
	// (A fat-tree with cable counts that do not divide its subtree sizes
	// has no uniform per-cable load, for example.)
	Scalable() bool
	// LinkFlows fills flows[l] with the number of ordered endpoint pairs
	// whose route crosses link l — the same counts enumerating Route over
	// all P(P−1) pairs would produce. flows has NumLinks entries and must
	// be zeroed by the caller.
	LinkFlows(flows []int)
	// WalkCharge prices one message from endpoint src to endpoint dst:
	// alpha is the route's summed per-link α, maxEff the largest
	// effBeta[l] over the route's links (effBeta holds β_l·χ_l, indexed by
	// link id). It must not allocate.
	WalkCharge(effBeta []float64, src, dst int) (alpha, maxEff float64)
	// Diameter returns the longest route length in links over all
	// endpoint pairs.
	Diameter() int
}

// Translatable is the optional symmetry contract of fabrics whose routing
// is equivariant under a transitive-enough translation group: translating
// both endpoints of a pair translates every link of its route. Congestion
// reports and the model's worst-fiber sweep use it to route one
// representative fiber per symmetry class instead of every fiber.
//
// Tokens t name group elements. Implementations must guarantee
// Route(T_t(s), T_t(d)) = T_t(Route(s, d)) link by link, and that the
// all-to-all flow count (hence β·χ) of link T_t(l) equals that of l.
type Translatable interface {
	// Translation returns a token carrying endpoint from onto endpoint to,
	// or ok=false when no group element does.
	Translation(from, to int) (t int, ok bool)
	// Invert returns the token of the inverse translation.
	Invert(t int) int
	// TranslateEndpoint applies token t to an endpoint.
	TranslateEndpoint(e, t int) int
	// TranslateLink applies token t to a link id.
	TranslateLink(l, t int) int
	// Anchor returns the canonical image of endpoint e: the target
	// Translation(e, Anchor(e)) must reach. Canonicalizing a fiber moves
	// its first member to its anchor, so translated fibers canonicalize
	// to the same representative.
	Anchor(e int) int
}

// canonicalFiber translates the fiber's endpoint list so its first member
// lands on the fabric's anchor, returning the canonical representative,
// its encoded class key, and the inverse token mapping canonical links
// back onto this fiber's links.
func canonicalFiber(tr Translatable, eps []int) (key string, canon []int, inv int, ok bool) {
	t0, ok := tr.Translation(eps[0], tr.Anchor(eps[0]))
	if !ok {
		return "", nil, 0, false
	}
	canon = make([]int, len(eps))
	buf := make([]byte, 0, 8*len(eps))
	for i, e := range eps {
		ce := tr.TranslateEndpoint(e, t0)
		canon[i] = ce
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(ce), 36)
	}
	return string(buf), canon, tr.Invert(t0), true
}

// FiberClassKey returns a key identifying the translation-symmetry class
// of the given ranks' endpoint images, and whether the fabric has the
// symmetry at all. Fibers with equal keys are exact translates: their
// routes cross translated links with identical per-link α and flow counts,
// so any aggregate of Network charges over a fiber's pairs is identical
// across the class. Callers use this to visit one fiber per class;
// ok=false means no symmetry is available and every fiber must be visited.
func FiberClassKey(t Topology, pl Placement, ranks []int) (string, bool) {
	tr, ok := t.(Translatable)
	if !ok || len(ranks) == 0 {
		return "", false
	}
	eps := make([]int, len(ranks))
	for i, r := range ranks {
		eps[i] = pl.ToEndpoint[r]
	}
	key, _, _, ok := canonicalFiber(tr, eps)
	return key, ok
}

// enumerateFlows routes every ordered endpoint pair of t, accumulating
// per-link crossing counts into flows (NumLinks entries, zeroed by the
// caller), and returns the longest route in links. The placement does not
// matter: a placement is a bijection rank→endpoint, so summing routes over
// all ordered rank pairs visits exactly the ordered endpoint pairs. The
// enumeration is quadratic in P — it is the construction fallback for
// fabrics without closed-form loads and the small-P equivalence oracle for
// the analytic LinkFlows implementations. Sources are sharded across
// GOMAXPROCS goroutines into per-worker count arrays merged afterwards, so
// the result is deterministic.
func enumerateFlows(t Topology, flows []int) (maxHops int) {
	p := t.P()
	workers := runtime.GOMAXPROCS(0)
	if workers > p {
		workers = p
	}
	if workers < 1 {
		workers = 1
	}
	type part struct {
		flows   []int
		maxHops int
	}
	parts := make([]part, workers)
	chunk := (p + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > p {
			hi = p
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			local := make([]int, len(flows))
			var buf []int
			longest := 0
			for s := lo; s < hi; s++ {
				for d := 0; d < p; d++ {
					if s == d {
						continue
					}
					buf = t.Route(buf[:0], s, d)
					for _, l := range buf {
						local[l]++
					}
					if len(buf) > longest {
						longest = len(buf)
					}
				}
			}
			parts[w] = part{local, longest}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, pt := range parts {
		if pt.flows == nil {
			continue
		}
		for l, f := range pt.flows {
			flows[l] += f
		}
		if pt.maxHops > maxHops {
			maxHops = pt.maxHops
		}
	}
	return maxHops
}

// parallelFor splits [0, n) into GOMAXPROCS contiguous chunks and runs fn
// on each concurrently. fn must only write state owned by its chunk.
func parallelFor(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
