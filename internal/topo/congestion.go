package topo

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/grid"
)

// PhaseReport measures how one of Algorithm 1's collective phases loads the
// fabric: the phase's flows are every ordered rank pair within each fiber of
// its axis (the superset of the pairs any collective schedule on that fiber
// uses), routed through the placement.
type PhaseReport struct {
	// Phase names the collective ("allgather-A", "allgather-B", "reduce-C").
	Phase string `json:"phase"`
	// Axis is the grid axis whose fibers the collective runs along.
	Axis string `json:"axis"`
	// Flows is the number of ordered pairs routed.
	Flows int `json:"flows"`
	// MaxLinkLoad is the largest number of the phase's flows crossing any
	// single link.
	MaxLinkLoad int `json:"max_link_load"`
	// MaxChi is MaxLinkLoad normalized by fiber fan-in (fiber length − 1):
	// the factor by which the busiest link is oversubscribed relative to a
	// dedicated per-pair network, ≥ 1 whenever the phase communicates.
	MaxChi float64 `json:"max_chi"`
	// MeanHops and MaxHops are route-length statistics over the flows.
	MeanHops float64 `json:"mean_hops"`
	MaxHops  int     `json:"max_hops"`
}

// CongestionReport is the per-phase fabric load of Algorithm 1 on one
// grid/topology/placement combination.
type CongestionReport struct {
	Topology  string        `json:"topology"`
	Placement string        `json:"placement"`
	Grid      string        `json:"grid"`
	Phases    []PhaseReport `json:"phases"`
}

// MaxChi returns the worst per-phase oversubscription factor.
func (r CongestionReport) MaxChi() float64 {
	m := 1.0
	for _, ph := range r.Phases {
		if ph.MaxChi > m {
			m = ph.MaxChi
		}
	}
	return m
}

// alg1Phases pairs each collective of Algorithm 1 with the axis its
// communicator fibers run along (§5: the A panel is gathered across Axis3,
// the B panel across Axis1, and C contributions are reduced across Axis2).
var alg1Phases = []struct {
	name string
	axis grid.Axis
}{
	{"allgather-A", grid.Axis3},
	{"allgather-B", grid.Axis1},
	{"reduce-C", grid.Axis2},
}

// Congest analyzes Algorithm 1's three collective phases on grid g embedded
// into topology t by placement pl, returning the per-phase busiest-link
// load and route-length statistics. The placement must cover g.Size()
// ranks; a mismatch wraps core.ErrBadTopology.
//
// On Translatable fabrics, fibers are grouped into translation-symmetry
// classes and only one representative per class is routed; the
// representative's link loads are stamped back under each member's inverse
// translation, which is exact (not sampled) by route equivariance. On a
// torus every fiber of an axis is one class, so the per-phase cost drops
// from P·(k−1)·hops route walks to k·(k−1)·hops plus an O(touched links)
// stamp per fiber. Flat is answered in closed form without touching its p²
// link id space. Fabrics with neither structure (the fat-tree's cable hash
// breaks translation symmetry) are enumerated fiber by fiber, which stays
// O(P·k·hops) — linear in P — because loads only ever accumulate into an
// O(links) array.
func Congest(g grid.Grid, t Topology, pl Placement) (CongestionReport, error) {
	if err := g.Validate(); err != nil {
		return CongestionReport{}, err
	}
	if g.Size() != t.P() || len(pl.ToEndpoint) != t.P() {
		return CongestionReport{}, fmt.Errorf("topo: grid %v (%d ranks), topology %s (%d endpoints), placement (%d ranks) disagree: %w",
			g, g.Size(), t.Name(), t.P(), len(pl.ToEndpoint), core.ErrBadTopology)
	}
	rep := CongestionReport{
		Topology:  t.Name(),
		Placement: pl.Policy.String(),
		Grid:      g.String(),
	}
	if _, ok := t.(*Flat); ok {
		for _, phase := range alg1Phases {
			rep.Phases = append(rep.Phases, flatPhase(g, phase.name, phase.axis))
		}
		return rep, nil
	}
	tr, trOK := t.(Translatable)
	load := make([]int, t.NumLinks())
	for _, phase := range alg1Phases {
		rep.Phases = append(rep.Phases, congestPhase(g, t, tr, trOK, pl, phase.name, phase.axis, load))
	}
	return rep, nil
}

// flatPhase answers a phase on the fully connected fabric in closed form:
// every pair owns a dedicated one-hop link, so each of the
// g.Size()·(k−1) flows loads its own link exactly once.
func flatPhase(g grid.Grid, name string, axis grid.Axis) PhaseReport {
	ph := PhaseReport{Phase: name, Axis: axis.String()}
	if k := g.FiberLen(axis); k > 1 {
		ph.Flows = g.Size() * (k - 1)
		ph.MaxLinkLoad = 1
		ph.MaxChi = 1
		ph.MeanHops = 1
		ph.MaxHops = 1
	}
	return ph
}

// congestPhase routes one phase's fibers into load (reused scratch of
// NumLinks entries) and summarizes the result.
func congestPhase(g grid.Grid, t Topology, tr Translatable, trOK bool, pl Placement, name string, axis grid.Axis, load []int) PhaseReport {
	for i := range load {
		load[i] = 0
	}
	k := g.FiberLen(axis)
	flows, totalHops, maxHops := 0, 0, 0
	fiber := make([]int, k)
	eps := make([]int, k)
	seen := make([]bool, g.Size())
	var route []int

	// One entry per translation-symmetry class of this phase's fibers:
	// the canonical representative's endpoints, and the inverse tokens
	// mapping its link loads back onto each member fiber.
	type fiberClass struct {
		eps           []int
		shifts        []int
		links, counts []int
		hops, maxHops int
	}
	classes := make(map[string]*fiberClass)
	var order []*fiberClass

	for r := 0; r < g.Size(); r++ {
		if seen[r] {
			continue
		}
		g.FiberInto(fiber, r, axis)
		for _, m := range fiber {
			seen[m] = true
		}
		for i, m := range fiber {
			eps[i] = pl.ToEndpoint[m]
		}
		if trOK && k > 1 {
			if key, canon, inv, ok := canonicalFiber(tr, eps); ok {
				c := classes[key]
				if c == nil {
					c = &fiberClass{eps: canon}
					classes[key] = c
					order = append(order, c)
				}
				c.shifts = append(c.shifts, inv)
				continue
			}
		}
		// No usable symmetry: route this fiber directly.
		for _, s := range eps {
			for _, d := range eps {
				if s == d {
					continue
				}
				route = t.Route(route[:0], s, d)
				for _, l := range route {
					load[l]++
				}
				flows++
				totalHops += len(route)
				if len(route) > maxHops {
					maxHops = len(route)
				}
			}
		}
	}

	// Route each class's representative once, then stamp its loads under
	// every member's inverse translation. Loads are integer sums, so the
	// map's iteration order never shows in the result.
	for _, c := range order {
		acc := make(map[int]int)
		for _, s := range c.eps {
			for _, d := range c.eps {
				if s == d {
					continue
				}
				route = t.Route(route[:0], s, d)
				for _, l := range route {
					acc[l]++
				}
				c.hops += len(route)
				if len(route) > c.maxHops {
					c.maxHops = len(route)
				}
			}
		}
		c.links = make([]int, 0, len(acc))
		c.counts = make([]int, 0, len(acc))
		for l, cnt := range acc {
			c.links = append(c.links, l)
			c.counts = append(c.counts, cnt)
		}
		for _, shift := range c.shifts {
			for i, l := range c.links {
				load[tr.TranslateLink(l, shift)] += c.counts[i]
			}
		}
		flows += len(c.shifts) * k * (k - 1)
		totalHops += len(c.shifts) * c.hops
		if c.maxHops > maxHops {
			maxHops = c.maxHops
		}
	}

	maxLoad := 0
	for _, l := range load {
		if l > maxLoad {
			maxLoad = l
		}
	}
	ph := PhaseReport{
		Phase:       name,
		Axis:        axis.String(),
		Flows:       flows,
		MaxLinkLoad: maxLoad,
		MaxHops:     maxHops,
	}
	// A dedicated per-pair network carries one flow per link; within a
	// fiber of length k each endpoint has k−1 partners, so normalize the
	// busiest link by that fan-in.
	fan := k - 1
	if fan < 1 {
		fan = 1
	}
	ph.MaxChi = float64(maxLoad) / float64(fan)
	if ph.MaxChi < 1 && flows > 0 {
		ph.MaxChi = 1
	}
	if flows > 0 {
		ph.MeanHops = float64(totalHops) / float64(flows)
	}
	return ph
}

// congestExhaustive is the original fiber-by-fiber enumeration, kept as
// the small-P equivalence oracle the tests hold Congest's symmetry-class
// path against. It materializes load over the full link id space (p² for
// Flat), so it is only affordable at small P.
func congestExhaustive(g grid.Grid, t Topology, pl Placement) (CongestionReport, error) {
	if err := g.Validate(); err != nil {
		return CongestionReport{}, err
	}
	if g.Size() != t.P() || len(pl.ToEndpoint) != t.P() {
		return CongestionReport{}, fmt.Errorf("topo: grid %v (%d ranks), topology %s (%d endpoints), placement (%d ranks) disagree: %w",
			g, g.Size(), t.Name(), t.P(), len(pl.ToEndpoint), core.ErrBadTopology)
	}
	rep := CongestionReport{
		Topology:  t.Name(),
		Placement: pl.Policy.String(),
		Grid:      g.String(),
	}
	load := make([]int, t.NumLinks())
	var route []int
	for _, phase := range alg1Phases {
		for i := range load {
			load[i] = 0
		}
		flows, totalHops, maxHops := 0, 0, 0
		fiber := make([]int, g.FiberLen(phase.axis))
		seen := make([]bool, g.Size())
		for r := 0; r < g.Size(); r++ {
			if seen[r] {
				continue
			}
			g.FiberInto(fiber, r, phase.axis)
			for _, m := range fiber {
				seen[m] = true
			}
			for _, s := range fiber {
				for _, d := range fiber {
					if s == d {
						continue
					}
					route = t.Route(route[:0], pl.ToEndpoint[s], pl.ToEndpoint[d])
					for _, l := range route {
						load[l]++
					}
					flows++
					totalHops += len(route)
					if len(route) > maxHops {
						maxHops = len(route)
					}
				}
			}
		}
		maxLoad := 0
		for _, l := range load {
			if l > maxLoad {
				maxLoad = l
			}
		}
		ph := PhaseReport{
			Phase:       phase.name,
			Axis:        phase.axis.String(),
			Flows:       flows,
			MaxLinkLoad: maxLoad,
			MaxHops:     maxHops,
		}
		fan := g.FiberLen(phase.axis) - 1
		if fan < 1 {
			fan = 1
		}
		ph.MaxChi = float64(maxLoad) / float64(fan)
		if ph.MaxChi < 1 && flows > 0 {
			ph.MaxChi = 1
		}
		if flows > 0 {
			ph.MeanHops = float64(totalHops) / float64(flows)
		}
		rep.Phases = append(rep.Phases, ph)
	}
	return rep, nil
}
