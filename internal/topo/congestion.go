package topo

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/grid"
)

// PhaseReport measures how one of Algorithm 1's collective phases loads the
// fabric: the phase's flows are every ordered rank pair within each fiber of
// its axis (the superset of the pairs any collective schedule on that fiber
// uses), routed through the placement.
type PhaseReport struct {
	// Phase names the collective ("allgather-A", "allgather-B", "reduce-C").
	Phase string `json:"phase"`
	// Axis is the grid axis whose fibers the collective runs along.
	Axis string `json:"axis"`
	// Flows is the number of ordered pairs routed.
	Flows int `json:"flows"`
	// MaxLinkLoad is the largest number of the phase's flows crossing any
	// single link.
	MaxLinkLoad int `json:"max_link_load"`
	// MaxChi is MaxLinkLoad normalized by fiber fan-in (fiber length − 1):
	// the factor by which the busiest link is oversubscribed relative to a
	// dedicated per-pair network, ≥ 1 whenever the phase communicates.
	MaxChi float64 `json:"max_chi"`
	// MeanHops and MaxHops are route-length statistics over the flows.
	MeanHops float64 `json:"mean_hops"`
	MaxHops  int     `json:"max_hops"`
}

// CongestionReport is the per-phase fabric load of Algorithm 1 on one
// grid/topology/placement combination.
type CongestionReport struct {
	Topology  string        `json:"topology"`
	Placement string        `json:"placement"`
	Grid      string        `json:"grid"`
	Phases    []PhaseReport `json:"phases"`
}

// MaxChi returns the worst per-phase oversubscription factor.
func (r CongestionReport) MaxChi() float64 {
	m := 1.0
	for _, ph := range r.Phases {
		if ph.MaxChi > m {
			m = ph.MaxChi
		}
	}
	return m
}

// alg1Phases pairs each collective of Algorithm 1 with the axis its
// communicator fibers run along (§5: the A panel is gathered across Axis3,
// the B panel across Axis1, and C contributions are reduced across Axis2).
var alg1Phases = []struct {
	name string
	axis grid.Axis
}{
	{"allgather-A", grid.Axis3},
	{"allgather-B", grid.Axis1},
	{"reduce-C", grid.Axis2},
}

// Congest analyzes Algorithm 1's three collective phases on grid g embedded
// into topology t by placement pl, returning the per-phase busiest-link
// load and route-length statistics. The placement must cover g.Size()
// ranks; a mismatch wraps core.ErrBadTopology.
func Congest(g grid.Grid, t Topology, pl Placement) (CongestionReport, error) {
	if err := g.Validate(); err != nil {
		return CongestionReport{}, err
	}
	if g.Size() != t.P() || len(pl.ToEndpoint) != t.P() {
		return CongestionReport{}, fmt.Errorf("topo: grid %v (%d ranks), topology %s (%d endpoints), placement (%d ranks) disagree: %w",
			g, g.Size(), t.Name(), t.P(), len(pl.ToEndpoint), core.ErrBadTopology)
	}
	rep := CongestionReport{
		Topology:  t.Name(),
		Placement: pl.Policy.String(),
		Grid:      g.String(),
	}
	load := make([]int, t.NumLinks())
	var route []int
	for _, phase := range alg1Phases {
		for i := range load {
			load[i] = 0
		}
		flows, totalHops, maxHops := 0, 0, 0
		fiber := make([]int, g.FiberLen(phase.axis))
		seen := make([]bool, g.Size())
		for r := 0; r < g.Size(); r++ {
			if seen[r] {
				continue
			}
			g.FiberInto(fiber, r, phase.axis)
			for _, m := range fiber {
				seen[m] = true
			}
			for _, s := range fiber {
				for _, d := range fiber {
					if s == d {
						continue
					}
					route = t.Route(route[:0], pl.ToEndpoint[s], pl.ToEndpoint[d])
					for _, l := range route {
						load[l]++
					}
					flows++
					totalHops += len(route)
					if len(route) > maxHops {
						maxHops = len(route)
					}
				}
			}
		}
		maxLoad := 0
		for _, l := range load {
			if l > maxLoad {
				maxLoad = l
			}
		}
		ph := PhaseReport{
			Phase:       phase.name,
			Axis:        phase.axis.String(),
			Flows:       flows,
			MaxLinkLoad: maxLoad,
			MaxHops:     maxHops,
		}
		// A dedicated per-pair network carries one flow per link; within a
		// fiber of length k each endpoint has k−1 partners, so normalize the
		// busiest link by that fan-in.
		fan := g.FiberLen(phase.axis) - 1
		if fan < 1 {
			fan = 1
		}
		ph.MaxChi = float64(maxLoad) / float64(fan)
		if ph.MaxChi < 1 && flows > 0 {
			ph.MaxChi = 1
		}
		if flows > 0 {
			ph.MeanHops = float64(totalHops) / float64(flows)
		}
		rep.Phases = append(rep.Phases, ph)
	}
	return rep, nil
}
