package topo

import "fmt"

// Flat is the paper's fully connected network: a dedicated directed link
// per ordered endpoint pair, so no two flows ever share a link and every
// message is charged exactly (α, β). It exists so topology-aware code paths
// can be exercised while reproducing the uniform model bit-for-bit —
// Network special-cases it to a uniform charge with no per-pair tables.
type Flat struct {
	p    int
	link Link
}

// NewFlat builds the fully connected topology on p endpoints.
func NewFlat(p int, link Link) *Flat {
	if p <= 0 {
		panic(fmt.Sprintf("topo: flat with %d endpoints", p))
	}
	return &Flat{p: p, link: link}
}

// Name returns "flat".
func (f *Flat) Name() string { return "flat" }

// P returns the endpoint count.
func (f *Flat) P() int { return f.p }

// NodeSize returns 1: a flat network has no locality unit.
func (f *Flat) NodeSize() int { return 1 }

// NumLinks returns p², one dedicated link per ordered pair (diagonal ids
// unused).
func (f *Flat) NumLinks() int { return f.p * f.p }

// Route returns the single dedicated link of the pair.
func (f *Flat) Route(buf []int, src, dst int) []int {
	if src == dst {
		return buf
	}
	return append(buf, src*f.p+dst)
}

// Link returns the uniform link cost.
func (f *Flat) Link(int) Link { return f.link }
