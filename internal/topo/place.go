package topo

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/grid"
)

// Policy selects how machine ranks are laid out on a topology's endpoints.
type Policy int

const (
	// Contiguous places rank i on endpoint i: consecutive ranks — and thus
	// the innermost fibers of a p1×p2×p3 grid, whose i3 coordinate varies
	// fastest — share the topology's locality unit. The default.
	Contiguous Policy = iota
	// RoundRobin deals consecutive ranks across locality units like cards:
	// rank i lands on endpoint (i mod nb)·b + i/b·... (one rank per unit
	// before reusing any), scattering every grid fiber across the machine.
	// The adversarial placement for locality, useful to bound how much
	// placement alone costs.
	RoundRobin
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Contiguous:
		return "contiguous"
	case RoundRobin:
		return "roundrobin"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Policies lists the accepted placement names.
func Policies() []string { return []string{"contiguous", "roundrobin"} }

// ParsePolicy resolves a placement name (case-insensitive); the empty
// string selects Contiguous. Unknown names wrap core.ErrBadTopology.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "contiguous", "contig":
		return Contiguous, nil
	case "roundrobin", "rr":
		return RoundRobin, nil
	default:
		return 0, fmt.Errorf("topo: unknown placement %q (valid: %s): %w",
			s, strings.Join(Policies(), ", "), core.ErrBadTopology)
	}
}

// Placement is a bijection from machine ranks to topology endpoints.
type Placement struct {
	// Policy is the policy that produced the placement.
	Policy Policy
	// ToEndpoint maps rank → endpoint; it is always a permutation of
	// [0, P).
	ToEndpoint []int
}

// Endpoint returns the endpoint hosting rank r.
func (pl Placement) Endpoint(r int) int { return pl.ToEndpoint[r] }

// PlaceRanks lays p machine ranks onto t's endpoints under the policy. The
// rank count must equal the endpoint count (the simulator identifies ranks
// with network attachment points); a mismatch wraps core.ErrBadTopology.
func PlaceRanks(p int, t Topology, policy Policy) (Placement, error) {
	if t.P() != p {
		return Placement{}, fmt.Errorf("topo: %s has %d endpoints, machine has %d ranks: %w",
			t.Name(), t.P(), p, core.ErrBadTopology)
	}
	pl := Placement{Policy: policy, ToEndpoint: make([]int, p)}
	switch policy {
	case Contiguous:
		for i := range pl.ToEndpoint {
			pl.ToEndpoint[i] = i
		}
	case RoundRobin:
		b := t.NodeSize()
		if b <= 1 || p%b != 0 {
			// No whole locality units to deal across; identity is the only
			// sensible bijection.
			for i := range pl.ToEndpoint {
				pl.ToEndpoint[i] = i
			}
			break
		}
		nb := p / b
		// Rank i goes to unit (i mod nb), slot (i / nb): consecutive ranks
		// land on distinct units until every unit holds one, then wrap.
		for i := range pl.ToEndpoint {
			pl.ToEndpoint[i] = (i%nb)*b + i/nb
		}
	default:
		return Placement{}, fmt.Errorf("topo: unknown placement policy %d: %w", int(policy), core.ErrBadTopology)
	}
	return pl, nil
}

// Map embeds the logical p1×p2×p3 grid onto the topology: machine rank
// g.Rank(i1,i2,i3) (i3 fastest) is assigned a topology endpoint under the
// policy. The grid size must equal the endpoint count. Contiguous keeps
// each Axis3 fiber — the partners of Algorithm 1's A All-Gather — within
// consecutive endpoints; RoundRobin scatters every fiber across locality
// units.
func Map(g grid.Grid, t Topology, policy Policy) (Placement, error) {
	if err := g.Validate(); err != nil {
		return Placement{}, err
	}
	return PlaceRanks(g.Size(), t, policy)
}
