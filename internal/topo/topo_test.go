package topo

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
)

var testLink = Link{Alpha: 2, Beta: 0.5}

// TestParseValid checks every spec kind parses to the right shape.
func TestParseValid(t *testing.T) {
	cases := []struct {
		spec     string
		p        int
		name     string
		nodeSize int
	}{
		{"flat", 7, "flat", 1},
		{"  Flat ", 64, "flat", 1},
		{"twolevel=8", 64, "twolevel=8", 8},
		{"twolevel=1", 5, "twolevel=1", 1},
		{"torus=4x4x4", 64, "torus=4x4x4", 4},
		{"torus=8", 8, "torus=8", 8},
		{"torus=2x3", 6, "torus=2x3", 3},
		{"fattree=4x3", 64, "fattree=4x3", 4},
		{"tree=4x3", 64, "tree=4x3", 4},
		{"tree=2x1", 2, "tree=2x1", 2},
	}
	for _, tc := range cases {
		topo, err := Parse(tc.spec, tc.p, testLink)
		if err != nil {
			t.Errorf("Parse(%q, %d): %v", tc.spec, tc.p, err)
			continue
		}
		if topo.Name() != tc.name {
			t.Errorf("Parse(%q).Name() = %q, want %q", tc.spec, topo.Name(), tc.name)
		}
		if topo.P() != tc.p {
			t.Errorf("Parse(%q).P() = %d, want %d", tc.spec, topo.P(), tc.p)
		}
		if topo.NodeSize() != tc.nodeSize {
			t.Errorf("Parse(%q).NodeSize() = %d, want %d", tc.spec, topo.NodeSize(), tc.nodeSize)
		}
	}
}

// TestParseInvalid checks malformed and mismatched specs wrap
// core.ErrBadTopology and name the valid kinds where the kind is unknown.
func TestParseInvalid(t *testing.T) {
	cases := []struct {
		spec string
		p    int
	}{
		{"mesh", 16},          // unknown kind
		{"", 16},              // empty
		{"flat=3", 16},        // flat takes no parameter
		{"twolevel=0", 16},    // non-positive group
		{"twolevel=x", 16},    // non-numeric
		{"twolevel=5", 16},    // does not divide
		{"torus=", 16},        // empty extents
		{"torus=4x0", 16},     // non-positive extent
		{"torus=4x4", 64},     // wrong product
		{"fattree=4", 64},     // missing levels
		{"fattree=1x3", 1},    // radix < 2
		{"fattree=4x0", 1},    // levels < 1
		{"fattree=4x2", 64},   // wrong leaf count
		{"tree=4x4x4", 64},    // too many extents
		{"flat", 0},           // non-positive p
		{"fattree=2x40", 1 << 30}, // overflow guard
	}
	for _, tc := range cases {
		_, err := Parse(tc.spec, tc.p, testLink)
		if !errors.Is(err, core.ErrBadTopology) {
			t.Errorf("Parse(%q, %d) = %v, want ErrBadTopology", tc.spec, tc.p, err)
		}
	}
	_, err := Parse("mesh", 16, testLink)
	for _, kind := range Kinds() {
		if !strings.Contains(err.Error(), strings.SplitN(kind, "=", 2)[0]) {
			t.Errorf("unknown-kind error %q does not mention %q", err, kind)
		}
	}
}

// TestRouteLinkIDsInRange checks every route of every topology yields ids
// within [0, NumLinks) and that src == dst routes are empty.
func TestRouteLinkIDsInRange(t *testing.T) {
	for _, spec := range []string{"flat", "twolevel=8", "torus=4x4x4", "fattree=4x3", "tree=4x3", "torus=2x32"} {
		topo, err := Parse(spec, 64, testLink)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		var buf []int
		for s := 0; s < topo.P(); s++ {
			for d := 0; d < topo.P(); d++ {
				buf = topo.Route(buf[:0], s, d)
				if s == d && len(buf) != 0 {
					t.Fatalf("%s: Route(%d, %d) = %v, want empty", spec, s, d, buf)
				}
				if s != d && len(buf) == 0 {
					t.Fatalf("%s: Route(%d, %d) is empty", spec, s, d)
				}
				for _, id := range buf {
					if id < 0 || id >= topo.NumLinks() {
						t.Fatalf("%s: Route(%d, %d) uses link %d outside [0, %d)", spec, s, d, id, topo.NumLinks())
					}
				}
			}
		}
	}
}

// TestTwoLevelRoutes checks the node/NIC route shapes: one dedicated link
// within a node, exactly up-then-down across nodes.
func TestTwoLevelRoutes(t *testing.T) {
	tl := NewTwoLevel(4, 4, testLink, testLink)
	if got := tl.Route(nil, 1, 3); len(got) != 1 {
		t.Errorf("intra-node route = %v, want one link", got)
	}
	got := tl.Route(nil, 1, 14)
	if len(got) != 2 {
		t.Fatalf("inter-node route = %v, want two links", got)
	}
	if got[0] != tl.up(0) || got[1] != tl.down(3) {
		t.Errorf("inter-node route = %v, want [up(0)=%d down(3)=%d]", got, tl.up(0), tl.down(3))
	}
	// Distinct intra-node pairs must use distinct links (dedicated pair links).
	a := tl.Route(nil, 1, 2)
	b := tl.Route(nil, 1, 3)
	if a[0] == b[0] {
		t.Errorf("intra-node pairs (1,2) and (1,3) share link %d", a[0])
	}
}

// TestTorusRouteLength checks dimension-ordered routing takes the minimal
// ring distance in every dimension.
func TestTorusRouteLength(t *testing.T) {
	torus, err := NewTorus([]int{4, 4, 4}, testLink)
	if err != nil {
		t.Fatal(err)
	}
	ringDist := func(a, b, k int) int {
		f := (b - a + k) % k
		if k-f < f {
			return k - f
		}
		return f
	}
	for s := 0; s < torus.P(); s++ {
		for d := 0; d < torus.P(); d++ {
			want := 0
			for dim := 0; dim < 3; dim++ {
				want += ringDist(torus.coord(s, dim), torus.coord(d, dim), 4)
			}
			if got := len(torus.Route(nil, s, d)); got != want {
				t.Fatalf("torus route %d→%d has %d hops, want %d", s, d, got, want)
			}
		}
	}
}

// TestFatTreeRouteLength checks routes climb to the LCA and back: 2·lca
// links, and siblings under one leaf switch use exactly 2.
func TestFatTreeRouteLength(t *testing.T) {
	ft, err := NewFatTree(4, 3, nil, testLink)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < ft.P(); s++ {
		for d := 0; d < ft.P(); d++ {
			if s == d {
				continue
			}
			lca, a, b := 0, s, d
			for a != b {
				a /= 4
				b /= 4
				lca++
			}
			if got := len(ft.Route(nil, s, d)); got != 2*lca {
				t.Fatalf("fattree route %d→%d has %d hops, want %d", s, d, got, 2*lca)
			}
		}
	}
	if got := len(ft.Route(nil, 0, 3)); got != 2 {
		t.Errorf("sibling route has %d hops, want 2", got)
	}
}

// TestRouteDeterminism checks routing twice gives identical link sequences.
func TestRouteDeterminism(t *testing.T) {
	for _, spec := range []string{"torus=4x4x4", "fattree=4x3"} {
		topo, err := Parse(spec, 64, testLink)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < topo.P(); s += 7 {
			for d := 0; d < topo.P(); d += 5 {
				a := topo.Route(nil, s, d)
				b := topo.Route(nil, s, d)
				if len(a) != len(b) {
					t.Fatalf("%s: route %d→%d changed length", spec, s, d)
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("%s: route %d→%d changed: %v vs %v", spec, s, d, a, b)
					}
				}
			}
		}
	}
}
