package topo

import (
	"fmt"

	"repro/internal/core"
)

// Torus is a k-ary d-dimensional torus: endpoints are lattice points of
// dims (last coordinate varying fastest, matching grid.Grid's rank order),
// each connected to its two neighbors per dimension by directed links.
// Routing is dimension-ordered and minimal, taking the shorter way around
// each ring (ties break toward increasing coordinates), so a message
// traverses Σ_d ringdist(src_d, dst_d) links and congestion concentrates on
// the ring links exactly as in a physical torus fabric.
type Torus struct {
	dims []int
	link Link
	p    int
}

// NewTorus builds a torus with the given extents (at least one, all
// positive). Shapes wrap core.ErrBadTopology on failure.
func NewTorus(dims []int, link Link) (*Torus, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("topo: torus needs at least one extent: %w", core.ErrBadTopology)
	}
	p := 1
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("topo: torus extent %d must be positive: %w", d, core.ErrBadTopology)
		}
		p *= d
	}
	return &Torus{dims: append([]int(nil), dims...), link: link, p: p}, nil
}

// Name returns the spec string.
func (t *Torus) Name() string {
	s := "torus="
	for i, d := range t.dims {
		if i > 0 {
			s += "x"
		}
		s += fmt.Sprintf("%d", d)
	}
	return s
}

// P returns the product of the extents.
func (t *Torus) P() int { return t.p }

// Dims returns a copy of the extents.
func (t *Torus) Dims() []int { return append([]int(nil), t.dims...) }

// NodeSize returns the innermost (fastest-varying) extent: consecutive
// endpoints lie along that ring.
func (t *Torus) NodeSize() int { return t.dims[len(t.dims)-1] }

// NumLinks returns 2 directed links per endpoint per dimension.
func (t *Torus) NumLinks() int { return t.p * len(t.dims) * 2 }

// linkID identifies the directed link leaving endpoint e along dim in
// direction dir (0 = +1, 1 = −1).
func (t *Torus) linkID(e, dim, dir int) int {
	return (e*len(t.dims)+dim)*2 + dir
}

// coord returns endpoint e's coordinate along dim.
func (t *Torus) coord(e, dim int) int {
	for d := len(t.dims) - 1; d > dim; d-- {
		e /= t.dims[d]
	}
	return e % t.dims[dim]
}

// step returns the endpoint one hop from e along dim in direction dir.
func (t *Torus) step(e, dim, dir int) int {
	stride := 1
	for d := len(t.dims) - 1; d > dim; d-- {
		stride *= t.dims[d]
	}
	k := t.dims[dim]
	c := t.coord(e, dim)
	nc := c + 1
	if dir == 1 {
		nc = c - 1 + k
	}
	return e + (nc%k-c)*stride
}

// Route walks dimension by dimension, taking the shorter ring direction.
func (t *Torus) Route(buf []int, src, dst int) []int {
	cur := src
	for dim := range t.dims {
		k := t.dims[dim]
		fwd := (t.coord(dst, dim) - t.coord(cur, dim) + k) % k
		if fwd == 0 {
			continue
		}
		dir, steps := 0, fwd
		if k-fwd < fwd {
			dir, steps = 1, k-fwd
		}
		for s := 0; s < steps; s++ {
			buf = append(buf, t.linkID(cur, dim, dir))
			cur = t.step(cur, dim, dir)
		}
	}
	return buf
}

// Link returns the uniform per-hop link cost.
func (t *Torus) Link(int) Link { return t.link }
