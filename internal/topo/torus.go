package topo

import (
	"fmt"

	"repro/internal/core"
)

// Torus is a k-ary d-dimensional torus: endpoints are lattice points of
// dims (last coordinate varying fastest, matching grid.Grid's rank order),
// each connected to its two neighbors per dimension by directed links.
// Routing is dimension-ordered and minimal, taking the shorter way around
// each ring (ties break toward increasing coordinates), so a message
// traverses Σ_d ringdist(src_d, dst_d) links and congestion concentrates on
// the ring links exactly as in a physical torus fabric.
type Torus struct {
	dims []int
	link Link
	p    int
}

// NewTorus builds a torus with the given extents (at least one, all
// positive). Shapes wrap core.ErrBadTopology on failure.
func NewTorus(dims []int, link Link) (*Torus, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("topo: torus needs at least one extent: %w", core.ErrBadTopology)
	}
	p := 1
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("topo: torus extent %d must be positive: %w", d, core.ErrBadTopology)
		}
		p *= d
	}
	return &Torus{dims: append([]int(nil), dims...), link: link, p: p}, nil
}

// Name returns the spec string.
func (t *Torus) Name() string {
	s := "torus="
	for i, d := range t.dims {
		if i > 0 {
			s += "x"
		}
		s += fmt.Sprintf("%d", d)
	}
	return s
}

// P returns the product of the extents.
func (t *Torus) P() int { return t.p }

// Dims returns a copy of the extents.
func (t *Torus) Dims() []int { return append([]int(nil), t.dims...) }

// NodeSize returns the innermost (fastest-varying) extent: consecutive
// endpoints lie along that ring.
func (t *Torus) NodeSize() int { return t.dims[len(t.dims)-1] }

// NumLinks returns 2 directed links per endpoint per dimension.
func (t *Torus) NumLinks() int { return t.p * len(t.dims) * 2 }

// linkID identifies the directed link leaving endpoint e along dim in
// direction dir (0 = +1, 1 = −1).
func (t *Torus) linkID(e, dim, dir int) int {
	return (e*len(t.dims)+dim)*2 + dir
}

// coord returns endpoint e's coordinate along dim.
func (t *Torus) coord(e, dim int) int {
	for d := len(t.dims) - 1; d > dim; d-- {
		e /= t.dims[d]
	}
	return e % t.dims[dim]
}

// step returns the endpoint one hop from e along dim in direction dir.
func (t *Torus) step(e, dim, dir int) int {
	stride := 1
	for d := len(t.dims) - 1; d > dim; d-- {
		stride *= t.dims[d]
	}
	k := t.dims[dim]
	c := t.coord(e, dim)
	nc := c + 1
	if dir == 1 {
		nc = c - 1 + k
	}
	return e + (nc%k-c)*stride
}

// Route walks dimension by dimension, taking the shorter ring direction.
func (t *Torus) Route(buf []int, src, dst int) []int {
	cur := src
	for dim := range t.dims {
		k := t.dims[dim]
		fwd := (t.coord(dst, dim) - t.coord(cur, dim) + k) % k
		if fwd == 0 {
			continue
		}
		dir, steps := 0, fwd
		if k-fwd < fwd {
			dir, steps = 1, k-fwd
		}
		for s := 0; s < steps; s++ {
			buf = append(buf, t.linkID(cur, dim, dir))
			cur = t.step(cur, dim, dir)
		}
	}
	return buf
}

// Link returns the uniform per-hop link cost.
func (t *Torus) Link(int) Link { return t.link }

// Scalable reports that the torus has closed-form all-to-all link loads.
func (t *Torus) Scalable() bool { return true }

// Diameter returns Σ_d ⌊k_d/2⌋, the longest dimension-ordered route.
func (t *Torus) Diameter() int {
	h := 0
	for _, k := range t.dims {
		h += k / 2
	}
	return h
}

// LinkFlows fills the all-to-all crossing count of every link (flows must
// be zeroed). On a ring of extent k, minimal routing with ties breaking
// forward sends ordered pairs at ring distance s ≤ ⌊k/2⌋ forward and
// s ≤ ⌊(k−1)/2⌋ backward; a fixed forward link is crossed by exactly s
// pairs of each forward distance s, so it carries W⁺ = Σ_{s=1}^{⌊k/2⌋} s
// crossings (and a backward link W⁻ = Σ_{s=1}^{⌊(k−1)/2⌋} s), the same for
// every link of the ring by rotational symmetry. Dimension-ordered routing
// makes a dim-t ring see one all-to-all per combination of the other
// coordinates, so every dim-t link carries (p/k_t)·W^± flows.
func (t *Torus) LinkFlows(flows []int) {
	for dim, k := range t.dims {
		rest := t.p / k
		fb, bb := k/2, (k-1)/2
		wplus := rest * fb * (fb + 1) / 2
		wminus := rest * bb * (bb + 1) / 2
		for e := 0; e < t.p; e++ {
			flows[t.linkID(e, dim, 0)] = wplus
			flows[t.linkID(e, dim, 1)] = wminus
		}
	}
}

// WalkCharge prices one message without materializing its route: it
// mirrors Route's dimension-ordered walk in the same link order, summing
// per-hop α and maximizing the per-link effective β, so the result is
// bit-identical to pricing the enumerated route. Coordinates are tracked
// incrementally (no per-hop division), and it does not allocate.
func (t *Torus) WalkCharge(effBeta []float64, src, dst int) (alpha, maxEff float64) {
	nd := len(t.dims)
	cur, stride := src, t.p
	for dim, k := range t.dims {
		stride /= k
		c := (cur / stride) % k
		fwd := ((dst/stride)%k - c + k) % k
		if fwd == 0 {
			continue
		}
		dir, steps := 0, fwd
		if k-fwd < fwd {
			dir, steps = 1, k-fwd
		}
		for s := 0; s < steps; s++ {
			alpha += t.link.Alpha
			if e := effBeta[(cur*nd+dim)*2+dir]; e > maxEff {
				maxEff = e
			}
			if dir == 0 {
				if c++; c == k {
					c = 0
					cur -= (k - 1) * stride
				} else {
					cur += stride
				}
			} else {
				if c == 0 {
					c = k - 1
					cur += (k - 1) * stride
				} else {
					c--
					cur -= stride
				}
			}
		}
	}
	return alpha, maxEff
}

// addCoords returns the endpoint whose coordinates are a's plus (or, with
// neg, minus) b's, per dimension modulo the extent.
func (t *Torus) addCoords(a, b int, neg bool) int {
	res, mul := 0, 1
	for d := len(t.dims) - 1; d >= 0; d-- {
		k := t.dims[d]
		da, db := a%k, b%k
		a /= k
		b /= k
		var dc int
		if neg {
			dc = (da - db + k) % k
		} else {
			dc = (da + db) % k
		}
		res += dc * mul
		mul *= k
	}
	return res
}

// Translation returns the coordinate-wise shift carrying from onto to. The
// torus's full translation group acts transitively, so ok is always true.
// Dimension-ordered routing only looks at coordinate differences modulo
// each extent, so routes are equivariant under these shifts.
func (t *Torus) Translation(from, to int) (int, bool) {
	return t.addCoords(to, from, true), true
}

// Invert returns the token of the opposite shift.
func (t *Torus) Invert(tok int) int { return t.addCoords(0, tok, true) }

// TranslateEndpoint shifts endpoint e by the token's coordinates.
func (t *Torus) TranslateEndpoint(e, tok int) int { return t.addCoords(e, tok, false) }

// TranslateLink shifts the link's owning endpoint, keeping dimension and
// direction.
func (t *Torus) TranslateLink(l, tok int) int {
	d := len(t.dims)
	dir := l % 2
	rest := l / 2
	dim := rest % d
	e := rest / d
	return (t.addCoords(e, tok, false)*d+dim)*2 + dir
}

// Anchor returns endpoint 0: every endpoint canonicalizes to the origin.
func (t *Torus) Anchor(int) int { return 0 }
