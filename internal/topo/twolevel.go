package topo

import "fmt"

// TwoLevel is the node/NIC hierarchy of a commodity cluster: endpoints are
// grouped into nodes of perNode ranks; ranks on the same node exchange over
// dedicated intra-node links (one per ordered pair, cost intra), while
// every inter-node message traverses exactly two shared links — the source
// node's NIC uplink and the destination node's NIC downlink (cost nic
// each). The uplink of a node is shared by all of its ranks' outbound
// traffic, which is where NIC oversubscription (χ ≈ ranks-per-node under
// uniform traffic) comes from.
type TwoLevel struct {
	nodes, perNode int
	intra, nic     Link
}

// NewTwoLevel builds a cluster of nodes × perNode endpoints.
func NewTwoLevel(nodes, perNode int, intra, nic Link) *TwoLevel {
	if nodes <= 0 || perNode <= 0 {
		panic(fmt.Sprintf("topo: twolevel %d nodes x %d ranks", nodes, perNode))
	}
	return &TwoLevel{nodes: nodes, perNode: perNode, intra: intra, nic: nic}
}

// Name returns the spec string.
func (t *TwoLevel) Name() string { return fmt.Sprintf("twolevel=%d", t.perNode) }

// P returns nodes · perNode.
func (t *TwoLevel) P() int { return t.nodes * t.perNode }

// NodeSize returns the ranks-per-node count.
func (t *TwoLevel) NodeSize() int { return t.perNode }

// NumLinks returns the id-space size: 2 NIC links per node followed by the
// dedicated intra-node pair links.
func (t *TwoLevel) NumLinks() int {
	return 2*t.nodes + t.nodes*t.perNode*t.perNode
}

// up and down are the NIC link ids of a node.
func (t *TwoLevel) up(node int) int   { return 2 * node }
func (t *TwoLevel) down(node int) int { return 2*node + 1 }

// Route is one intra-node hop within a node, or up-then-down across nodes.
func (t *TwoLevel) Route(buf []int, src, dst int) []int {
	if src == dst {
		return buf
	}
	sn, dn := src/t.perNode, dst/t.perNode
	if sn == dn {
		sl, dl := src%t.perNode, dst%t.perNode
		id := 2*t.nodes + (sn*t.perNode+sl)*t.perNode + dl
		return append(buf, id)
	}
	return append(buf, t.up(sn), t.down(dn))
}

// Link returns nic for the shared NIC links and intra for the dedicated
// intra-node links.
func (t *TwoLevel) Link(id int) Link {
	if id < 2*t.nodes {
		return t.nic
	}
	return t.intra
}

// Scalable reports that the hierarchy has closed-form all-to-all link
// loads.
func (t *TwoLevel) Scalable() bool { return true }

// Diameter returns the longest route: two NIC hops across nodes, one
// intra-node hop inside a single node, zero for a single endpoint.
func (t *TwoLevel) Diameter() int {
	if t.nodes > 1 {
		return 2
	}
	if t.perNode > 1 {
		return 1
	}
	return 0
}

// LinkFlows fills the all-to-all crossing count of every link (flows must
// be zeroed): each NIC uplink and downlink carries its node's
// perNode·(P−perNode) cross-node pairs, and each dedicated intra-node pair
// link carries exactly its one pair (diagonal ids stay unused).
func (t *TwoLevel) LinkFlows(flows []int) {
	cross := t.perNode * (t.P() - t.perNode)
	for n := 0; n < t.nodes; n++ {
		flows[t.up(n)] = cross
		flows[t.down(n)] = cross
	}
	for n := 0; n < t.nodes; n++ {
		base := 2*t.nodes + n*t.perNode*t.perNode
		for sl := 0; sl < t.perNode; sl++ {
			for dl := 0; dl < t.perNode; dl++ {
				if sl != dl {
					flows[base+sl*t.perNode+dl] = 1
				}
			}
		}
	}
}

// WalkCharge prices one message in Route's link order — intra link, or
// uplink then downlink — without materializing the route or allocating.
func (t *TwoLevel) WalkCharge(effBeta []float64, src, dst int) (alpha, maxEff float64) {
	if src == dst {
		return 0, 0
	}
	sn, dn := src/t.perNode, dst/t.perNode
	if sn == dn {
		id := 2*t.nodes + (sn*t.perNode+src%t.perNode)*t.perNode + dst%t.perNode
		return t.intra.Alpha, effBeta[id]
	}
	alpha = t.nic.Alpha + t.nic.Alpha
	maxEff = effBeta[t.up(sn)]
	if e := effBeta[t.down(dn)]; e > maxEff {
		maxEff = e
	}
	return alpha, maxEff
}

// Translation returns the whole-node shift carrying from onto to; it
// exists only when both endpoints occupy the same intra-node slot, since
// routing distinguishes slots through the dedicated intra links.
func (t *TwoLevel) Translation(from, to int) (int, bool) {
	if from%t.perNode != to%t.perNode {
		return 0, false
	}
	return (to/t.perNode - from/t.perNode + t.nodes) % t.nodes, true
}

// Invert returns the opposite node shift.
func (t *TwoLevel) Invert(tok int) int { return (t.nodes - tok) % t.nodes }

// TranslateEndpoint shifts the endpoint's node, keeping its slot.
func (t *TwoLevel) TranslateEndpoint(e, tok int) int {
	return ((e/t.perNode+tok)%t.nodes)*t.perNode + e%t.perNode
}

// TranslateLink shifts the link's owning node, keeping NIC direction or
// intra-node slot pair.
func (t *TwoLevel) TranslateLink(l, tok int) int {
	if l < 2*t.nodes {
		node, dir := l/2, l%2
		return 2*((node+tok)%t.nodes) + dir
	}
	rel := l - 2*t.nodes
	per := t.perNode * t.perNode
	node, off := rel/per, rel%per
	return 2*t.nodes + ((node+tok)%t.nodes)*per + off
}

// Anchor keeps the endpoint's slot on node 0.
func (t *TwoLevel) Anchor(e int) int { return e % t.perNode }
