package topo

import "fmt"

// TwoLevel is the node/NIC hierarchy of a commodity cluster: endpoints are
// grouped into nodes of perNode ranks; ranks on the same node exchange over
// dedicated intra-node links (one per ordered pair, cost intra), while
// every inter-node message traverses exactly two shared links — the source
// node's NIC uplink and the destination node's NIC downlink (cost nic
// each). The uplink of a node is shared by all of its ranks' outbound
// traffic, which is where NIC oversubscription (χ ≈ ranks-per-node under
// uniform traffic) comes from.
type TwoLevel struct {
	nodes, perNode int
	intra, nic     Link
}

// NewTwoLevel builds a cluster of nodes × perNode endpoints.
func NewTwoLevel(nodes, perNode int, intra, nic Link) *TwoLevel {
	if nodes <= 0 || perNode <= 0 {
		panic(fmt.Sprintf("topo: twolevel %d nodes x %d ranks", nodes, perNode))
	}
	return &TwoLevel{nodes: nodes, perNode: perNode, intra: intra, nic: nic}
}

// Name returns the spec string.
func (t *TwoLevel) Name() string { return fmt.Sprintf("twolevel=%d", t.perNode) }

// P returns nodes · perNode.
func (t *TwoLevel) P() int { return t.nodes * t.perNode }

// NodeSize returns the ranks-per-node count.
func (t *TwoLevel) NodeSize() int { return t.perNode }

// NumLinks returns the id-space size: 2 NIC links per node followed by the
// dedicated intra-node pair links.
func (t *TwoLevel) NumLinks() int {
	return 2*t.nodes + t.nodes*t.perNode*t.perNode
}

// up and down are the NIC link ids of a node.
func (t *TwoLevel) up(node int) int   { return 2 * node }
func (t *TwoLevel) down(node int) int { return 2*node + 1 }

// Route is one intra-node hop within a node, or up-then-down across nodes.
func (t *TwoLevel) Route(buf []int, src, dst int) []int {
	if src == dst {
		return buf
	}
	sn, dn := src/t.perNode, dst/t.perNode
	if sn == dn {
		sl, dl := src%t.perNode, dst%t.perNode
		id := 2*t.nodes + (sn*t.perNode+sl)*t.perNode + dl
		return append(buf, id)
	}
	return append(buf, t.up(sn), t.down(dn))
}

// Link returns nic for the shared NIC links and intra for the dedicated
// intra-node links.
func (t *TwoLevel) Link(id int) Link {
	if id < 2*t.nodes {
		return t.nic
	}
	return t.intra
}
