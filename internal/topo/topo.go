// Package topo models interconnect topologies for the simulated machine.
//
// The paper's α-β-γ model (§3.1) assumes a fully connected network: every
// processor pair owns a dedicated bidirectional link, so a message costs
// α + β·w regardless of who else is communicating. Real machines are
// hierarchical — ranks share NICs, switches, and torus or fat-tree fabrics —
// and the question the topology subsystem answers is *when the paper's
// tight constants survive contention and locality*.
//
// A Topology describes the fabric as a set of directed links, each with its
// own per-message latency α and per-word cost β, plus a deterministic
// routing function mapping every ordered endpoint pair to the sequence of
// links its messages traverse. On top of it:
//
//   - Placement (place.go) embeds the machine's ranks — in particular the
//     §5.2 optimal p1×p2×p3 grid — onto the topology's endpoints, either
//     contiguously (consecutive ranks share a locality unit) or round-robin
//     (consecutive ranks scattered across locality units).
//   - Network (network.go) precomputes the effective per-message charge of
//     every rank pair under the max-congested-link model: latency is the
//     route's total α, bandwidth is the words times the largest β·χ over
//     the route's links, where χ is the link's concurrent-use factor (its
//     all-to-all flow count normalized so a dedicated per-pair link has
//     χ = 1). The machine simulator charges sends through this oracle.
//   - Congestion reports (congestion.go) analyze Algorithm 1's three
//     collective phases pattern-exactly: for the flows of each phase, the
//     busiest link's concurrent-use count and the route-length statistics.
//
// The Flat topology reproduces the paper's model bit-for-bit: one dedicated
// link per ordered pair, χ ≡ 1, so every charge is exactly (α, β).
package topo

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Link is one directed communication channel of a topology.
type Link struct {
	// Alpha is the per-message latency of traversing the link.
	Alpha float64
	// Beta is the per-word cost of the link at full, uncontended capacity.
	Beta float64
}

// Topology is an interconnect fabric: endpoints (one per machine rank),
// directed links with individual costs, and a deterministic routing
// function. Implementations must be immutable after construction and safe
// for concurrent use; Route must not allocate beyond growing buf.
type Topology interface {
	// Name returns the topology's spec string (e.g. "torus=4x4x4").
	Name() string
	// P returns the number of endpoints.
	P() int
	// NodeSize returns the topology's locality unit — the number of
	// consecutive endpoints that share the cheapest level of the hierarchy
	// (ranks per node, innermost torus extent, fat-tree radix). Placement
	// policies use it as the round-robin block size; it is 1 when the
	// topology has no locality to exploit.
	NodeSize() int
	// NumLinks returns the size of the link id space; Route only yields
	// ids in [0, NumLinks).
	NumLinks() int
	// Route appends the link ids of the path from endpoint src to endpoint
	// dst to buf and returns it. src == dst yields no links. Routing is
	// deterministic and minimal for every implementation in this package.
	Route(buf []int, src, dst int) []int
	// Link returns the cost parameters of one link.
	Link(id int) Link
}

// Kinds lists the accepted Parse spec shapes, for error messages and CLI
// usage strings.
func Kinds() []string {
	return []string{
		"flat",
		"twolevel=<ranks-per-node>",
		"torus=<d1>x<d2>[x<d3>...]",
		"fattree=<radix>x<levels>",
		"tree=<radix>x<levels>",
	}
}

// Parse builds the topology named by spec for a machine of p ranks, with
// every link costing base. Specs:
//
//	flat                     dedicated link per pair (the paper's model)
//	twolevel=<g>             nodes of g ranks around a central switch
//	torus=<d1>x<d2>[x...]    k-ary torus with dimension-ordered routing
//	fattree=<radix>x<levels> full-bisection fat-tree (widths radix^level)
//	tree=<radix>x<levels>    skinny tree (every level width 1)
//
// A malformed spec, a shape that does not multiply out to p, or an unknown
// kind wraps core.ErrBadTopology.
func Parse(spec string, p int, base Link) (Topology, error) {
	if p <= 0 {
		return nil, fmt.Errorf("topo: need a positive rank count, got %d: %w", p, core.ErrBadTopology)
	}
	kind, arg, hasArg := strings.Cut(strings.TrimSpace(strings.ToLower(spec)), "=")
	switch kind {
	case "flat":
		if hasArg {
			return nil, fmt.Errorf("topo: flat takes no parameter, got %q: %w", spec, core.ErrBadTopology)
		}
		return NewFlat(p, base), nil
	case "twolevel":
		g, err := strconv.Atoi(arg)
		if err != nil || g <= 0 {
			return nil, fmt.Errorf("topo: twolevel wants a positive ranks-per-node count, got %q (valid: %s): %w",
				spec, strings.Join(Kinds(), ", "), core.ErrBadTopology)
		}
		if p%g != 0 {
			return nil, fmt.Errorf("topo: twolevel=%d does not divide %d ranks into whole nodes: %w", g, p, core.ErrBadTopology)
		}
		return NewTwoLevel(p/g, g, base, base), nil
	case "torus":
		dims, err := parseExtents(arg)
		if err != nil {
			return nil, fmt.Errorf("topo: torus wants extents like 4x4x4, got %q: %w", spec, core.ErrBadTopology)
		}
		t, err := NewTorus(dims, base)
		if err != nil {
			return nil, err
		}
		if t.P() != p {
			return nil, fmt.Errorf("topo: torus %s has %d endpoints, machine has %d ranks: %w", arg, t.P(), p, core.ErrBadTopology)
		}
		return t, nil
	case "fattree", "tree":
		dims, err := parseExtents(arg)
		if err != nil || len(dims) != 2 {
			return nil, fmt.Errorf("topo: %s wants <radix>x<levels>, got %q: %w", kind, spec, core.ErrBadTopology)
		}
		radix, levels := dims[0], dims[1]
		var widths []int
		if kind == "tree" {
			widths = make([]int, levels)
			for i := range widths {
				widths[i] = 1
			}
		}
		t, err := NewFatTree(radix, levels, widths, base)
		if err != nil {
			return nil, err
		}
		if t.P() != p {
			return nil, fmt.Errorf("topo: %s=%s has %d leaves, machine has %d ranks: %w", kind, arg, t.P(), p, core.ErrBadTopology)
		}
		return t, nil
	default:
		return nil, fmt.Errorf("topo: unknown topology %q (valid: %s): %w",
			spec, strings.Join(Kinds(), ", "), core.ErrBadTopology)
	}
}

// parseExtents parses "4x4x4" into positive ints.
func parseExtents(s string) ([]int, error) {
	parts := strings.Split(s, "x")
	out := make([]int, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.Atoi(part)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad extent %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty extents")
	}
	return out, nil
}
