// Package plan turns §6.2's limited-memory strong-scaling analysis into a
// sweep: given a problem shape, a per-rank memory budget, and a processor
// range, it computes for every P the cheapest feasible grid, the predicted
// Algorithm 1 time (optionally on a concrete interconnect), and both
// communication lower bounds — the memory-dependent 2mnk/(P√M) leading
// term and Theorem 3's memory-independent bound with its tight constant —
// marking which one binds, where perfect strong scaling must end, and the
// memory-dependent→independent crossover P = (8/27)·mnk/M^{3/2}.
//
// The sweep is embarrassingly parallel and chunked: Planner.Sweep fans
// points out over the experiments worker pool and hands results to an emit
// callback one chunk at a time, so a 10⁵-point range streams in bounded
// memory. The service layer memoizes individual points through
// Planner.PointMemo; the package itself has no cache and no HTTP types.
package plan

import (
	"context"
	"fmt"
	"math"
	"strconv"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/topo"
)

// Request describes one strong-scaling plan: a problem, a memory budget,
// and the processor counts to evaluate.
type Request struct {
	// Dims is the problem shape (C = A·B with A m×k, B k×n in the paper's
	// terms; N1×N2 times N2×N3 here).
	Dims core.Dims
	// Mem is the local memory per processor in words. Every feasibility
	// check, the memory-dependent bound, and the crossover derive from it.
	Mem float64
	// PMin and PMax bound the processor range, inclusive on both ends.
	PMin, PMax int
	// PStep is the linear stride through [PMin, PMax]; ≤ 0 means 1. It is
	// ignored when Log2 is set.
	PStep int
	// Log2 sweeps geometrically instead: PMin, 2·PMin, 4·PMin, … ≤ PMax.
	Log2 bool
	// Config sets the α-β-γ machine for time predictions. The zero value
	// selects machine.BandwidthOnly(), so points read directly in words.
	Config machine.Config
	// TopoSpec, when non-empty, prices each point on that interconnect
	// (topo.Parse syntax) instead of the paper's fully connected model.
	// Only size-flexible fabrics (flat, twolevel=g) can span a multi-point
	// range; a fixed-size spec is rejected by Validate. Fabrics with
	// closed-form link loads (torus, twolevel, fat/skinny trees) price in
	// O(links) per point, so datacenter-scale sweeps — twolevel=64 across
	// P up to 2^17 and beyond — stay cheap.
	TopoSpec string
	// Place names the rank placement policy for TopoSpec ("" = contiguous).
	Place string
	// MaxPoints, when positive, caps how many points the range may expand
	// to; Validate rejects larger ranges with ErrBadPlanRange. Servers set
	// it from their admission config.
	MaxPoints int
}

// config returns the effective machine config: the zero value means
// bandwidth-only, the convention the simulator's counting worlds use.
func (r Request) config() machine.Config {
	if r.Config == (machine.Config{}) {
		return machine.BandwidthOnly()
	}
	return r.Config
}

// Points returns how many processor counts the range expands to. It is 0
// when the range is empty (which Validate rejects).
func (r Request) Points() int {
	if r.Log2 {
		n := 0
		for p := r.PMin; p > 0 && p <= r.PMax; {
			n++
			if p > r.PMax/2 {
				break
			}
			p <<= 1
		}
		return n
	}
	if r.PMax < r.PMin {
		return 0
	}
	step := r.PStep
	if step <= 0 {
		step = 1
	}
	return (r.PMax-r.PMin)/step + 1
}

// Validate checks the request against the error taxonomy: ErrBadDims for
// the shape, ErrBadPlanRange for the memory budget, processor range, or
// point budget, and ErrBadTopology (or ErrBadPlanRange, for a fixed-size
// spec asked to span several P) for the topology block.
func (r Request) Validate() error {
	if err := r.Dims.Validate(); err != nil {
		return err
	}
	if !(r.Mem > 0) || math.IsInf(r.Mem, 1) {
		return fmt.Errorf("plan: memory per rank must be positive and finite, got %g: %w", r.Mem, core.ErrBadPlanRange)
	}
	if r.PMin < 1 || r.PMax < r.PMin {
		return fmt.Errorf("plan: processor range [%d, %d] is empty or inverted: %w", r.PMin, r.PMax, core.ErrBadPlanRange)
	}
	if r.PStep < 0 {
		return fmt.Errorf("plan: negative stride %d: %w", r.PStep, core.ErrBadPlanRange)
	}
	n := r.Points()
	if r.MaxPoints > 0 && n > r.MaxPoints {
		return fmt.Errorf("plan: range expands to %d points, limit %d: %w", n, r.MaxPoints, core.ErrBadPlanRange)
	}
	if r.Place != "" || r.TopoSpec != "" {
		if _, err := topo.ParsePolicy(r.Place); err != nil {
			return err
		}
	}
	if r.TopoSpec != "" {
		cfg := r.config()
		link := topo.Link{Alpha: cfg.Alpha, Beta: cfg.Beta}
		if _, err := topo.Parse(r.TopoSpec, r.PMin, link); err != nil {
			return err
		}
		if n > 1 {
			s := newSweeper(r)
			if _, err := topo.Parse(r.TopoSpec, s.pAt(1), link); err != nil {
				return fmt.Errorf("plan: topology %q is fixed-size and cannot span the processor range: %w",
					r.TopoSpec, core.ErrBadPlanRange)
			}
		}
	}
	return nil
}

// GridRef is the chosen processor grid, serialization-friendly.
type GridRef struct {
	P1 int `json:"p1"`
	P2 int `json:"p2"`
	P3 int `json:"p3"`
}

// Point is the plan for one processor count. Bounds are always present;
// the schedule fields (Grid, costs, time) only when a grid fits in memory.
type Point struct {
	// P is the processor count.
	P int `json:"p"`
	// Case is the Theorem 3 regime (1, 2, or 3) and TightConstant its
	// attainable constant (1, 2, or 3 — the paper's headline result).
	Case          int     `json:"case"`
	TightConstant float64 `json:"tight_constant"`
	// Bound is Theorem 3's memory-independent lower bound (D minus the
	// owned words) and LeadingTerm its dominant term.
	Bound       float64 `json:"bound"`
	LeadingTerm float64 `json:"leading_term"`
	// MemBound is the memory-dependent leading term 2mnk/(P√M).
	MemBound float64 `json:"memory_dependent_bound"`
	// Binding is max(Bound's footprint D, MemBound) — the §6.2 binding
	// bound — and MemoryDependent reports which side won.
	Binding         float64 `json:"binding_bound"`
	MemoryDependent bool    `json:"memory_dependent"`
	// Crossover marks the first swept P where the binding bound switched
	// from memory-dependent to memory-independent — the strong-scaling
	// wall. At most one point of a plan carries it.
	Crossover bool `json:"crossover,omitempty"`
	// Fits reports whether any grid's footprint fits in Mem words; when
	// false the remaining fields are zero (P is left of the memory floor).
	Fits bool `json:"fits"`
	// PerfectScaling marks points inside the perfect-strong-scaling range
	// of Ballard et al. 2012b: P holds a distributed copy of the problem
	// (P ≥ (mn+mk+nk)/M) and the memory-dependent bound — whose total
	// communication P·bound is constant in P, so doubling P can halve the
	// per-processor cost — still binds. It is a property of the bounds:
	// attaining it takes a memory-adaptive algorithm (2.5D-style), not
	// Algorithm 1, whose grids need M ≥ D and therefore always sit past
	// the crossover (Fits ⇒ memory-independent regime).
	PerfectScaling bool `json:"perfect_scaling"`
	// Grid is the cheapest feasible grid; CommCost and MemoryCost its
	// per-processor communication and footprint words.
	Grid       *GridRef `json:"grid,omitempty"`
	CommCost   float64  `json:"comm_cost,omitempty"`
	MemoryCost float64  `json:"memory_cost,omitempty"`
	// Time is the predicted Algorithm 1 execution time on the request's
	// machine (topology-aware when a spec was given), Words its
	// per-processor communication volume, and Speedup/Efficiency the
	// derived strong-scaling measures (zero when γ = 0 makes serial time
	// meaningless).
	Time       float64 `json:"time,omitempty"`
	Words      float64 `json:"words,omitempty"`
	Speedup    float64 `json:"speedup,omitempty"`
	Efficiency float64 `json:"efficiency,omitempty"`
	// Slowdown is the topology degradation factor (1 on flat; only set
	// when the request named a topology).
	Slowdown float64 `json:"slowdown,omitempty"`
}

// Summary is the range-level analysis: the analytic boundaries that frame
// every point, computed once per plan.
type Summary struct {
	N1     int     `json:"n1"`
	N2     int     `json:"n2"`
	N3     int     `json:"n3"`
	Mem    float64 `json:"mem"`
	PMin   int     `json:"p_min"`
	PMax   int     `json:"p_max"`
	PStep  int     `json:"p_step,omitempty"`
	Log2   bool    `json:"log2,omitempty"`
	Points int     `json:"points"`
	// CaseBoundaries are the P thresholds where Theorem 3 switches regime:
	// case 1→2 at m/n and 2→3 at mn/k² (sorted dims).
	CaseBoundaries [2]float64 `json:"case_boundaries"`
	// MemoryFloorP is the smallest P whose 1/P share of inputs and output
	// fits in Mem: ⌈(mn+mk+nk)/M⌉. Below it no one-copy algorithm runs.
	MemoryFloorP float64 `json:"memory_floor_p"`
	// CrossoverP is the §6.2 threshold (8/27)·mnk/M^{3/2}: past it the
	// memory-independent bound binds and perfect strong scaling must end
	// (it equals core.PerfectStrongScalingLimit).
	CrossoverP       float64 `json:"crossover_p"`
	CrossoverInRange bool    `json:"crossover_in_range"`
	// ObservedCrossoverP is the first swept P whose binding bound is
	// memory-independent while its predecessor's was memory-dependent
	// (0 when the sweep never witnesses the switch). It is the P whose
	// Point carries the Crossover flag.
	ObservedCrossoverP int    `json:"observed_crossover_p,omitempty"`
	Topology           string `json:"topology,omitempty"`
	Placement          string `json:"placement,omitempty"`
}

// Planner computes plans. The zero value works; PointMemo optionally puts
// a cache in front of per-point computation.
type Planner struct {
	// PointMemo, when non-nil, wraps every point computation. key uniquely
	// identifies the point (problem, memory, machine, topology, and P —
	// range-independent, so a point cached from one sweep is valid in any
	// other), and compute is the miss path. Implementations typically
	// collapse concurrent identical computations (singleflight) and return
	// the shared result.
	PointMemo func(key string, compute func() (Point, error)) (Point, error)
}

// sweeper is a validated request plus everything derived from it once.
type sweeper struct {
	req    Request
	cfg    machine.Config
	step   int
	policy topo.Policy
	serial float64
	prefix string
}

func newSweeper(r Request) *sweeper {
	s := &sweeper{req: r, cfg: r.config(), step: r.PStep}
	if s.step <= 0 {
		s.step = 1
	}
	// Validate vetted the policy name; the zero value is Contiguous anyway.
	s.policy, _ = topo.ParsePolicy(r.Place)
	s.serial = model.SerialTime(r.Dims, s.cfg)
	s.prefix = fmt.Sprintf("%d:%d:%d:%g:%g:%g:%g:%s:%s:",
		r.Dims.N1, r.Dims.N2, r.Dims.N3, r.Mem,
		s.cfg.Alpha, s.cfg.Beta, s.cfg.Gamma, r.TopoSpec, r.Place)
	return s
}

// pAt maps a point index to its processor count.
func (s *sweeper) pAt(i int) int {
	if s.req.Log2 {
		return s.req.PMin << i
	}
	return s.req.PMin + i*s.step
}

// indexAtLeast returns the index of the first point with pAt(i) ≥ x,
// clamped into [0, n). Float rounding makes it approximate; callers scan a
// small window around it.
func (s *sweeper) indexAtLeast(x float64, n int) int {
	var i int
	if s.req.Log2 {
		if x > float64(s.req.PMin) {
			i = int(math.Ceil(math.Log2(x / float64(s.req.PMin))))
		}
	} else {
		if x > float64(s.req.PMin) {
			i = int(math.Ceil((x - float64(s.req.PMin)) / float64(s.step)))
		}
	}
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// summary computes the range-level analysis. The observed crossover needs
// only a constant number of bound evaluations: the switch can happen only
// where the swept range crosses the analytic CrossoverP, so a ±2-point
// window around that index is scanned rather than the whole range.
func (s *sweeper) summary() Summary {
	d, mem := s.req.Dims, s.req.Mem
	one, two := core.Thresholds(d)
	sum := Summary{
		N1: d.N1, N2: d.N2, N3: d.N3,
		Mem:  mem,
		PMin: s.req.PMin, PMax: s.req.PMax, Log2: s.req.Log2,
		Points:         s.req.Points(),
		CaseBoundaries: [2]float64{one, two},
		MemoryFloorP:   math.Ceil(d.InputOutputWords() / mem),
		CrossoverP:     core.CrossoverP(d, mem),
		Topology:       s.req.TopoSpec,
	}
	if !s.req.Log2 {
		sum.PStep = s.step
	}
	if s.req.TopoSpec != "" {
		sum.Placement = s.policy.String()
	}
	sum.CrossoverInRange = sum.CrossoverP > float64(s.req.PMin) && sum.CrossoverP <= float64(s.req.PMax)
	n := sum.Points
	i0 := s.indexAtLeast(sum.CrossoverP, n)
	for i := max(1, i0-2); i < min(n, i0+3); i++ {
		if s.crossoverAt(i) {
			sum.ObservedCrossoverP = s.pAt(i)
			break
		}
	}
	return sum
}

// crossoverAt reports whether point i is the memory-dependent→independent
// switch: its predecessor's binding bound was memory-dependent and its own
// is not.
func (s *sweeper) crossoverAt(i int) bool {
	if i < 1 {
		return false
	}
	_, prevMD := core.BindingBound(s.req.Dims, s.pAt(i-1), s.req.Mem)
	if !prevMD {
		return false
	}
	_, md := core.BindingBound(s.req.Dims, s.pAt(i), s.req.Mem)
	return !md
}

// compute builds the range-independent part of point P (everything except
// the Crossover flag, which depends on the neighboring swept P).
func (s *sweeper) compute(p int) (Point, error) {
	d, mem := s.req.Dims, s.req.Mem
	c := core.CaseOf(d, p)
	pt := Point{
		P:             p,
		Case:          int(c),
		TightConstant: core.TightConstant(c),
		Bound:         core.LowerBound(d, p),
		LeadingTerm:   core.LeadingTerm(d, p),
		MemBound:      core.MemoryDependentLeading(d, p, mem),
	}
	pt.Binding, pt.MemoryDependent = core.BindingBound(d, p, mem)
	pt.PerfectScaling = pt.MemoryDependent && core.MinLocalMemory(d, p) <= mem
	g, ok := grid.OptimalUnderMemory(d, p, mem)
	pt.Fits = ok
	if !ok {
		return pt, nil
	}
	pt.Grid = &GridRef{g.P1, g.P2, g.P3}
	pt.CommCost = grid.CommCost(d, g)
	pt.MemoryCost = grid.MemoryCost(d, g)
	if s.req.TopoSpec != "" {
		fabric, err := topo.Parse(s.req.TopoSpec, p, topo.Link{Alpha: s.cfg.Alpha, Beta: s.cfg.Beta})
		if err != nil {
			return Point{}, err
		}
		pl, err := topo.Map(g, fabric, s.policy)
		if err != nil {
			return Point{}, err
		}
		net, err := topo.NewNetwork(fabric, pl)
		if err != nil {
			return Point{}, err
		}
		pred, err := model.Alg1TimeTopo(d, g, s.cfg, collective.Auto, net)
		if err != nil {
			return Point{}, err
		}
		pt.Time = pred.Total()
		pt.Words = pred.Words
		pt.Slowdown = pred.Slowdown
	} else {
		pred := model.Alg1Time(d, g, s.cfg, collective.Auto)
		pt.Time = pred.Total()
		pt.Words = pred.Words
	}
	if pt.Time > 0 && s.serial > 0 {
		pt.Speedup = s.serial / pt.Time
		pt.Efficiency = pt.Speedup / float64(p)
	}
	return pt, nil
}

// at computes point i: the memoizable body plus the range-dependent
// Crossover flag (set after memo retrieval so cached points stay valid
// across ranges with different strides).
func (s *sweeper) at(pl Planner, i int) (Point, error) {
	p := s.pAt(i)
	var pt Point
	var err error
	if pl.PointMemo != nil {
		pt, err = pl.PointMemo(s.prefix+strconv.Itoa(p), func() (Point, error) { return s.compute(p) })
	} else {
		pt, err = s.compute(p)
	}
	if err != nil {
		return Point{}, err
	}
	pt.Crossover = !pt.MemoryDependent && s.crossoverAt(i)
	return pt, nil
}

// Sweep validates req, then evaluates its points across the experiments
// worker pool in chunks of chunk (≤ 0 selects 256), calling emit with each
// completed chunk in index order before the next chunk starts — the
// bounded-memory contract that lets a server stream a 10⁵-point range.
// The returned Summary is computed up front and is valid even when the
// sweep is later cancelled. Cancellation of ctx stops workers from
// claiming new points and returns ctx's error; a point error aborts with
// the lowest failing index's error; an emit error aborts with that error.
func (pl Planner) Sweep(ctx context.Context, req Request, chunk int, emit func([]Point) error) (Summary, error) {
	if err := req.Validate(); err != nil {
		return Summary{}, err
	}
	s := newSweeper(req)
	sum := s.summary()
	err := experiments.MapChunksContext(ctx, sum.Points, chunk,
		func(i int) (Point, error) { return s.at(pl, i) }, emit)
	return sum, err
}

// Run evaluates the whole plan in memory and returns every point. Large
// ranges should prefer Sweep with an emit callback.
func (pl Planner) Run(ctx context.Context, req Request) (Summary, []Point, error) {
	var pts []Point
	sum, err := pl.Sweep(ctx, req, 0, func(chunk []Point) error {
		pts = append(pts, chunk...)
		return nil
	})
	if err != nil {
		return sum, nil, err
	}
	return sum, pts, nil
}

// Run evaluates req with a zero Planner (no memo).
func Run(ctx context.Context, req Request) (Summary, []Point, error) {
	return Planner{}.Run(ctx, req)
}

// Summarize validates req and returns only its range-level analysis.
func Summarize(req Request) (Summary, error) {
	if err := req.Validate(); err != nil {
		return Summary{}, err
	}
	return newSweeper(req).summary(), nil
}
