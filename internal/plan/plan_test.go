package plan

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
)

func relEq(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// TestCrossoverPinnedRectangular pins the §6.2 threshold against a
// hand-computed rectangular example: dims 9600×2400×600 and M = 40000
// words give mnk = 1.3824·10¹⁰ and M^{3/2} = 8·10⁶, so
// P* = (8/27)·1728 = 512 exactly. Sorted dims 9600 ≥ 2400 ≥ 600 put the
// case boundaries at m/n = 4 and mn/k² = 64, and the one-copy memory
// floor at ⌈(mn+mk+nk)/M⌉ = ⌈30240000/40000⌉ = 756.
func TestCrossoverPinnedRectangular(t *testing.T) {
	req := Request{
		Dims: core.NewDims(9600, 2400, 600),
		Mem:  40000,
		PMin: 64, PMax: 1024,
	}
	sum, err := Summarize(req)
	if err != nil {
		t.Fatal(err)
	}
	if !relEq(sum.CrossoverP, 512, 1e-9) {
		t.Errorf("CrossoverP = %v, want 512", sum.CrossoverP)
	}
	if sum.CaseBoundaries != [2]float64{4, 64} {
		t.Errorf("CaseBoundaries = %v, want [4 64]", sum.CaseBoundaries)
	}
	if sum.MemoryFloorP != 756 {
		t.Errorf("MemoryFloorP = %v, want 756", sum.MemoryFloorP)
	}
	if !sum.CrossoverInRange {
		t.Error("CrossoverInRange = false, want true (512 ∈ (64, 1024])")
	}
	if sum.Points != 961 {
		t.Errorf("Points = %d, want 961", sum.Points)
	}
}

// TestCrossoverObservedSquare pins the swept crossover on a square
// hand-computed example: n = 2000, M = 10⁴ gives
// P* = (8/27)·8·10⁹/10⁶ = 64000/27 ≈ 2370.37, so a unit-stride sweep
// of [2300, 2400] must flip from memory-dependent to independent at
// P = 2371 — at 2370 the bounds are 2mnk/(P√M) ≈ 67510 vs
// D = 3(mnk/P)^{2/3} ≈ 67507, at 2371 the order reverses. The one-copy
// floor is 3n²/M = 1200 < 2300, so every memory-dependent point sits in
// the perfect-strong-scaling range; and Algorithm 1's footprint
// D > 66000 ≫ M means no grid fits anywhere in the sweep.
func TestCrossoverObservedSquare(t *testing.T) {
	req := Request{
		Dims: core.NewDims(2000, 2000, 2000),
		Mem:  1e4,
		PMin: 2300, PMax: 2400,
	}
	sum, pts, err := Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if sum.ObservedCrossoverP != 2371 {
		t.Fatalf("ObservedCrossoverP = %d, want 2371", sum.ObservedCrossoverP)
	}
	if !relEq(sum.CrossoverP, 64000.0/27.0, 1e-12) {
		t.Errorf("CrossoverP = %v, want 64000/27", sum.CrossoverP)
	}
	if sum.MemoryFloorP != 1200 {
		t.Errorf("MemoryFloorP = %v, want 1200", sum.MemoryFloorP)
	}
	if len(pts) != 101 {
		t.Fatalf("got %d points, want 101", len(pts))
	}
	crossings := 0
	for i, pt := range pts {
		if pt.P != 2300+i {
			t.Fatalf("pts[%d].P = %d, want %d", i, pt.P, 2300+i)
		}
		wantMD := pt.P <= 2370
		if pt.MemoryDependent != wantMD {
			t.Errorf("P=%d MemoryDependent = %v, want %v", pt.P, pt.MemoryDependent, wantMD)
		}
		if pt.PerfectScaling != wantMD {
			t.Errorf("P=%d PerfectScaling = %v, want %v", pt.P, pt.PerfectScaling, wantMD)
		}
		if pt.Crossover {
			crossings++
			if pt.P != 2371 {
				t.Errorf("Crossover flag on P=%d, want 2371", pt.P)
			}
		}
		if pt.Fits || pt.Grid != nil || pt.Time != 0 {
			t.Errorf("P=%d claims a feasible grid under M=10⁴ (needs ≥ D ≈ 6.7·10⁴)", pt.P)
		}
		if pt.Case != 3 || pt.TightConstant != 3 {
			t.Errorf("P=%d case/constant = %d/%v, want 3/3", pt.P, pt.Case, pt.TightConstant)
		}
		if pt.Binding < pt.MemBound || pt.Binding+1e-9 < pt.Bound {
			t.Errorf("P=%d binding %v below a bound (mem %v, mi %v)", pt.P, pt.Binding, pt.MemBound, pt.Bound)
		}
	}
	if crossings != 1 {
		t.Errorf("%d points carry the Crossover flag, want 1", crossings)
	}
}

// TestLog2Sweep checks the geometric range: 1, 2, 4, …, 4096 is 13
// points, and with n = 2000, M = 10⁴ the crossover (≈ 2370.37) is first
// witnessed at the swept point 4096 (2048 is still memory-dependent).
func TestLog2Sweep(t *testing.T) {
	req := Request{
		Dims: core.NewDims(2000, 2000, 2000),
		Mem:  1e4,
		PMin: 1, PMax: 4096,
		Log2: true,
	}
	if n := req.Points(); n != 13 {
		t.Fatalf("Points = %d, want 13", n)
	}
	sum, pts, err := Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if sum.ObservedCrossoverP != 4096 {
		t.Errorf("ObservedCrossoverP = %d, want 4096", sum.ObservedCrossoverP)
	}
	for i, pt := range pts {
		if pt.P != 1<<i {
			t.Fatalf("pts[%d].P = %d, want %d", i, pt.P, 1<<i)
		}
	}
	last := pts[len(pts)-1]
	if !last.Crossover || last.MemoryDependent {
		t.Errorf("P=4096: Crossover=%v MemoryDependent=%v, want true/false", last.Crossover, last.MemoryDependent)
	}
}

// TestFeasiblePoint checks the schedule fields once memory admits a grid:
// at P = 65536 the n = 2000 footprint 3(n³/P)^{2/3} ≈ 7390 fits in 10⁴,
// and under the default bandwidth-only machine the predicted time reads
// directly in words, at or above the memory-independent bound.
func TestFeasiblePoint(t *testing.T) {
	req := Request{
		Dims: core.NewDims(2000, 2000, 2000),
		Mem:  1e4,
		PMin: 65536, PMax: 65536,
	}
	_, pts, err := Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	pt := pts[0]
	if !pt.Fits || pt.Grid == nil {
		t.Fatalf("P=65536 should fit: %+v", pt)
	}
	if pt.MemoryCost > req.Mem {
		t.Errorf("MemoryCost %v exceeds budget %v", pt.MemoryCost, req.Mem)
	}
	if pt.Time != pt.Words || pt.Words <= 0 {
		t.Errorf("bandwidth-only Time %v != Words %v", pt.Time, pt.Words)
	}
	if pt.Words+1e-9 < pt.Bound {
		t.Errorf("predicted words %v below the lower bound %v", pt.Words, pt.Bound)
	}
	if pt.Speedup != 0 || pt.Efficiency != 0 {
		t.Errorf("γ=0 speedup/efficiency = %v/%v, want 0", pt.Speedup, pt.Efficiency)
	}

	req.Config = machine.Config{Alpha: 1, Beta: 1, Gamma: 1}
	_, pts, err = Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Speedup <= 0 || pts[0].Efficiency <= 0 {
		t.Errorf("γ>0 speedup/efficiency = %v/%v, want > 0", pts[0].Speedup, pts[0].Efficiency)
	}
}

// TestValidate walks the rejection taxonomy.
func TestValidate(t *testing.T) {
	ok := Request{Dims: core.NewDims(100, 100, 100), Mem: 1e6, PMin: 1, PMax: 8}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Request)
		want error
	}{
		{"zero mem", func(r *Request) { r.Mem = 0 }, core.ErrBadPlanRange},
		{"negative mem", func(r *Request) { r.Mem = -5 }, core.ErrBadPlanRange},
		{"infinite mem", func(r *Request) { r.Mem = math.Inf(1) }, core.ErrBadPlanRange},
		{"zero pmin", func(r *Request) { r.PMin = 0 }, core.ErrBadPlanRange},
		{"inverted range", func(r *Request) { r.PMin = 8; r.PMax = 4 }, core.ErrBadPlanRange},
		{"negative stride", func(r *Request) { r.PStep = -1 }, core.ErrBadPlanRange},
		{"too many points", func(r *Request) { r.PMax = 100; r.MaxPoints = 10 }, core.ErrBadPlanRange},
		{"bad dims", func(r *Request) { r.Dims = core.NewDims(0, 1, 1) }, core.ErrBadDims},
		{"unknown topology", func(r *Request) { r.TopoSpec = "bogus" }, core.ErrBadTopology},
		{"unknown placement", func(r *Request) { r.TopoSpec = "flat"; r.Place = "bogus" }, core.ErrBadTopology},
		{"fixed-size topology over a range", func(r *Request) {
			r.PMin, r.PMax = 64, 128
			r.TopoSpec = "torus=4x4x4"
		}, core.ErrBadPlanRange},
	}
	for _, tc := range cases {
		r := ok
		tc.mut(&r)
		if err := r.Validate(); !errors.Is(err, tc.want) {
			t.Errorf("%s: Validate = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestSweepChunks checks the streaming contract: chunks arrive in index
// order with the requested size (last one ragged) and concatenate to the
// full sweep.
func TestSweepChunks(t *testing.T) {
	req := Request{Dims: core.NewDims(100, 100, 100), Mem: 1e6, PMin: 1, PMax: 100}
	var sizes []int
	var all []Point
	_, err := Planner{}.Sweep(context.Background(), req, 16, func(chunk []Point) error {
		sizes = append(sizes, len(chunk))
		all = append(all, chunk...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 7 {
		t.Fatalf("got %d chunks (%v), want 7", len(sizes), sizes)
	}
	for i, n := range sizes {
		want := 16
		if i == 6 {
			want = 4
		}
		if n != want {
			t.Errorf("chunk %d has %d points, want %d", i, n, want)
		}
	}
	for i, pt := range all {
		if pt.P != i+1 {
			t.Fatalf("all[%d].P = %d, want %d", i, pt.P, i+1)
		}
	}
}

// TestSweepCancel checks a cancelled context aborts the sweep with the
// context's error.
func TestSweepCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := Request{Dims: core.NewDims(100, 100, 100), Mem: 1e6, PMin: 1, PMax: 1000}
	_, err := Planner{}.Sweep(ctx, req, 0, func([]Point) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Sweep on cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestPointMemo checks the memo hook carries points across sweeps — keys
// are range-independent, so a second overlapping range computes nothing
// new — while the range-dependent Crossover flag is still recomputed.
func TestPointMemo(t *testing.T) {
	var mu sync.Mutex
	store := map[string]Point{}
	computes := 0
	pl := Planner{PointMemo: func(key string, compute func() (Point, error)) (Point, error) {
		mu.Lock()
		pt, hit := store[key]
		mu.Unlock()
		if hit {
			return pt, nil
		}
		pt, err := compute()
		if err != nil {
			return Point{}, err
		}
		mu.Lock()
		computes++
		store[key] = pt
		mu.Unlock()
		return pt, nil
	}}

	req := Request{Dims: core.NewDims(2000, 2000, 2000), Mem: 1e4, PMin: 2300, PMax: 2400}
	if _, _, err := pl.Run(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if computes != 101 {
		t.Fatalf("first sweep computed %d points, want 101", computes)
	}
	sub := req
	sub.PMin = 2350
	_, pts, err := pl.Run(context.Background(), sub)
	if err != nil {
		t.Fatal(err)
	}
	if computes != 101 {
		t.Errorf("overlapping sweep recomputed: %d total computes, want 101", computes)
	}
	found := false
	for _, pt := range pts {
		if pt.Crossover {
			found = pt.P == 2371
		}
	}
	if !found {
		t.Error("cached sweep lost the Crossover flag at P=2371")
	}
}

// TestTopologyPlan checks the topology-priced path: a flat fabric matches
// the uniform model exactly (slowdown 1) and a shared-NIC two-level
// fabric degrades it.
func TestTopologyPlan(t *testing.T) {
	req := Request{
		Dims: core.NewDims(64, 64, 64),
		Mem:  1e9,
		PMin: 8, PMax: 64,
		Log2:     true,
		Config:   machine.Config{Alpha: 2, Beta: 1, Gamma: 1.0 / 16},
		TopoSpec: "flat",
	}
	sum, pts, err := Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Topology != "flat" || sum.Placement != "contiguous" {
		t.Errorf("summary fabric = %q/%q", sum.Topology, sum.Placement)
	}
	for _, pt := range pts {
		if pt.Slowdown != 1 {
			t.Errorf("flat P=%d slowdown = %v, want 1", pt.P, pt.Slowdown)
		}
	}

	req.TopoSpec = "twolevel=4"
	_, tl, err := Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range tl {
		if pt.Slowdown < 1 {
			t.Errorf("twolevel P=%d slowdown = %v, want ≥ 1", pt.P, pt.Slowdown)
		}
		if pt.Time < pts[i].Time {
			t.Errorf("twolevel P=%d time %v below flat %v", pt.P, pt.Time, pts[i].Time)
		}
	}
}

// TestTopologyPlanDatacenterP sweeps a shared-NIC fabric across P = 8192 …
// 65536 — every point above the charge oracle's table fast path, priced
// through the O(links) analytic loads and the walk-mode Charge. The sweep
// exists to pin that datacenter-scale topology planning stays feasible.
func TestTopologyPlanDatacenterP(t *testing.T) {
	req := Request{
		Dims: core.NewDims(4096, 4096, 4096),
		Mem:  1e9,
		PMin: 8192, PMax: 65536,
		Log2:     true,
		Config:   machine.Config{Alpha: 2, Beta: 1, Gamma: 1.0 / 16},
		TopoSpec: "twolevel=64",
		Place:    "roundrobin",
	}
	_, pts, err := Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4", len(pts))
	}
	for _, pt := range pts {
		if !pt.Fits {
			t.Errorf("P=%d does not fit", pt.P)
			continue
		}
		if pt.Slowdown < 1 {
			t.Errorf("P=%d slowdown = %v, want ≥ 1", pt.P, pt.Slowdown)
		}
		if pt.Time <= 0 || math.IsInf(pt.Time, 0) || math.IsNaN(pt.Time) {
			t.Errorf("P=%d time = %v", pt.P, pt.Time)
		}
	}
}
