package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func newFS(t *testing.T) *FS {
	t.Helper()
	s, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatalf("NewFS: %v", err)
	}
	return s
}

func TestFSPutOpenRoundTrip(t *testing.T) {
	s := newFS(t)
	body := []byte("hello, artifacts")
	n, err := s.Put("a/b/c.txt", bytes.NewReader(body))
	if err != nil || n != int64(len(body)) {
		t.Fatalf("Put = %d, %v", n, err)
	}
	obj, size, err := s.Open("a/b/c.txt")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer obj.Close()
	if size != int64(len(body)) {
		t.Fatalf("size = %d, want %d", size, len(body))
	}
	got, err := io.ReadAll(obj)
	if err != nil || !bytes.Equal(got, body) {
		t.Fatalf("read back %q, %v", got, err)
	}
	// Seek works — required for HTTP Range serving.
	if _, err := obj.Seek(7, io.SeekStart); err != nil {
		t.Fatalf("Seek: %v", err)
	}
	tail, _ := io.ReadAll(obj)
	if string(tail) != "artifacts" {
		t.Fatalf("after seek read %q", tail)
	}
	if sz, err := s.Stat("a/b/c.txt"); err != nil || sz != int64(len(body)) {
		t.Fatalf("Stat = %d, %v", sz, err)
	}
}

func TestFSPutReplaces(t *testing.T) {
	s := newFS(t)
	s.Put("k", strings.NewReader("old old old"))
	if _, err := s.Put("k", strings.NewReader("new")); err != nil {
		t.Fatalf("replace Put: %v", err)
	}
	obj, size, err := s.Open("k")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer obj.Close()
	got, _ := io.ReadAll(obj)
	if string(got) != "new" || size != 3 {
		t.Fatalf("after replace: %q size %d", got, size)
	}
}

func TestFSMissingWrapsErrNotExist(t *testing.T) {
	s := newFS(t)
	if _, _, err := s.Open("nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Open missing = %v, want ErrNotExist", err)
	}
	if _, err := s.Stat("nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Stat missing = %v, want ErrNotExist", err)
	}
	if err := s.Delete("nope"); err != nil {
		t.Fatalf("Delete missing must be a no-op, got %v", err)
	}
}

func TestFSDelete(t *testing.T) {
	s := newFS(t)
	s.Put("gone", strings.NewReader("x"))
	if err := s.Delete("gone"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Stat("gone"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Stat after delete = %v", err)
	}
}

func TestFSListSortedAndPrefixBounded(t *testing.T) {
	s := newFS(t)
	for _, k := range []string{"m/j1/b", "m/j1/a", "m/j10/z", "m/j2/c", "other/x"} {
		if _, err := s.Put(k, strings.NewReader(k)); err != nil {
			t.Fatalf("Put %s: %v", k, err)
		}
	}
	keys, err := s.List("m/j1/")
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	want := []string{"m/j1/a", "m/j1/b"}
	if len(keys) != len(want) {
		t.Fatalf("List = %v, want %v (j10 must not leak into the j1 prefix)", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("List = %v, want %v", keys, want)
		}
	}
	// Listing a prefix with no objects is empty, not an error.
	if keys, err := s.List("m/j99/"); err != nil || len(keys) != 0 {
		t.Fatalf("empty prefix List = %v, %v", keys, err)
	}
}

func TestKeyValidationRejectsTraversal(t *testing.T) {
	s := newFS(t)
	for _, bad := range []string{
		"", "..", "a/../b", "/abs", "a//b", "a/./b", "a\\b", "a b", "a\x00b",
		strings.Repeat("k", 600),
	} {
		if _, err := s.Put(bad, strings.NewReader("x")); !errors.Is(err, ErrBadKey) {
			t.Errorf("Put(%q) = %v, want ErrBadKey", bad, err)
		}
		if _, _, err := s.Open(bad); !errors.Is(err, ErrBadKey) {
			t.Errorf("Open(%q) = %v, want ErrBadKey", bad, err)
		}
	}
	// Names additionally refuse slashes.
	for _, bad := range []string{"a/b", "..", ".", ""} {
		if err := ValidateName(bad); !errors.Is(err, ErrBadKey) {
			t.Errorf("ValidateName(%q) = %v, want ErrBadKey", bad, err)
		}
	}
	if err := ValidateName("trace-3.json"); err != nil {
		t.Errorf("ValidateName(trace-3.json) = %v", err)
	}
}

func TestFSConcurrentPutOpen(t *testing.T) {
	// Hammer one key with writers and readers; atomic rename means every
	// read observes a complete value. Run with -race.
	s := newFS(t)
	s.Put("k", strings.NewReader("v00"))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := s.Put("k", strings.NewReader(fmt.Sprintf("v%d%d", w, i))); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				obj, size, err := s.Open("k")
				if err != nil {
					t.Errorf("Open: %v", err)
					return
				}
				got, err := io.ReadAll(obj)
				obj.Close()
				if err != nil || int64(len(got)) != size || len(got) != 3 {
					t.Errorf("read %q (size %d): %v — partial write visible", got, size, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestArtifactsWriteListOpen(t *testing.T) {
	a := NewArtifacts(newFS(t), 0)
	body := []byte(`{"trace":[1,2,3]}`)
	info, err := a.Write("j1", "trace.json", "application/json", func(w io.Writer) error {
		_, err := w.Write(body)
		return err
	})
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	wantSum := sha256.Sum256(body)
	if info.SHA256 != hex.EncodeToString(wantSum[:]) {
		t.Fatalf("sha256 = %s, want %x", info.SHA256, wantSum)
	}
	if info.Size != int64(len(body)) || info.Name != "trace.json" || info.ContentType != "application/json" {
		t.Fatalf("info = %+v", info)
	}
	infos, err := a.List("j1")
	if err != nil || len(infos) != 1 || infos[0].SHA256 != info.SHA256 {
		t.Fatalf("List = %+v, %v", infos, err)
	}
	got, obj, err := a.Open("j1", "trace.json")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer obj.Close()
	if got.SHA256 != info.SHA256 {
		t.Fatalf("Open info = %+v", got)
	}
	read, _ := io.ReadAll(obj)
	if !bytes.Equal(read, body) {
		t.Fatalf("content = %q", read)
	}
}

func TestArtifactsListSortedMultiple(t *testing.T) {
	a := NewArtifacts(newFS(t), 0)
	for _, name := range []string{"z.csv", "a.json", "m.ndjson"} {
		if _, err := a.Write("j1", name, "text/plain", func(w io.Writer) error {
			_, err := io.WriteString(w, name)
			return err
		}); err != nil {
			t.Fatalf("Write %s: %v", name, err)
		}
	}
	infos, err := a.List("j1")
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	var names []string
	for _, in := range infos {
		names = append(names, in.Name)
	}
	if strings.Join(names, ",") != "a.json,m.ndjson,z.csv" {
		t.Fatalf("names = %v, want sorted", names)
	}
	// Unknown job: empty, not an error.
	if infos, err := a.List("j404"); err != nil || len(infos) != 0 {
		t.Fatalf("unknown job List = %v, %v", infos, err)
	}
}

func TestArtifactsDedupeSharesBlob(t *testing.T) {
	fs := newFS(t)
	a := NewArtifacts(fs, 0)
	write := func(job string) Info {
		info, err := a.Write(job, "out.csv", "text/csv", func(w io.Writer) error {
			_, err := io.WriteString(w, "p,phi\n64,1\n")
			return err
		})
		if err != nil {
			t.Fatalf("Write %s: %v", job, err)
		}
		return info
	}
	i1, i2 := write("j1"), write("j2")
	if i1.SHA256 != i2.SHA256 {
		t.Fatalf("identical content hashed differently: %s vs %s", i1.SHA256, i2.SHA256)
	}
	blobs, err := fs.List("blobs/")
	if err != nil {
		t.Fatalf("List blobs: %v", err)
	}
	if len(blobs) != 1 {
		t.Fatalf("expected 1 shared blob, got %v", blobs)
	}
	// Both jobs still open the shared content independently.
	for _, job := range []string{"j1", "j2"} {
		_, obj, err := a.Open(job, "out.csv")
		if err != nil {
			t.Fatalf("Open %s: %v", job, err)
		}
		obj.Close()
	}
}

func TestArtifactsSizeCap(t *testing.T) {
	a := NewArtifacts(newFS(t), 16)
	_, err := a.Write("j1", "big.bin", "application/octet-stream", func(w io.Writer) error {
		chunk := bytes.Repeat([]byte("x"), 8)
		for i := 0; i < 10; i++ {
			if _, err := w.Write(chunk); err != nil {
				return err
			}
		}
		return nil
	})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized Write = %v, want ErrTooLarge", err)
	}
	// The failed write must not leave a manifest behind.
	if infos, _ := a.List("j1"); len(infos) != 0 {
		t.Fatalf("failed write left artifacts: %+v", infos)
	}
	// At the cap exactly is fine.
	if _, err := a.Write("j1", "ok.bin", "application/octet-stream", func(w io.Writer) error {
		_, err := w.Write(bytes.Repeat([]byte("y"), 16))
		return err
	}); err != nil {
		t.Fatalf("at-cap Write = %v", err)
	}
}

func TestArtifactsCallbackErrorPropagates(t *testing.T) {
	a := NewArtifacts(newFS(t), 0)
	boom := errors.New("producer failed")
	if _, err := a.Write("j1", "x", "text/plain", func(io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Write = %v, want wrapped producer error", err)
	}
	if infos, _ := a.List("j1"); len(infos) != 0 {
		t.Fatalf("failed write left artifacts: %+v", infos)
	}
}

func TestArtifactsMissingWrapsErrNotExist(t *testing.T) {
	a := NewArtifacts(newFS(t), 0)
	if _, _, err := a.Open("j1", "nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Open missing = %v, want ErrNotExist", err)
	}
}

func TestArtifactsRejectBadNames(t *testing.T) {
	a := NewArtifacts(newFS(t), 0)
	if _, err := a.Write("../j1", "x", "text/plain", nil); !errors.Is(err, ErrBadKey) {
		t.Fatalf("bad job id = %v", err)
	}
	if _, err := a.Write("j1", "a/b", "text/plain", nil); !errors.Is(err, ErrBadKey) {
		t.Fatalf("bad name = %v", err)
	}
	if _, _, err := a.Open("j1", ".."); !errors.Is(err, ErrBadKey) {
		t.Fatalf("bad open name = %v", err)
	}
	if _, err := a.List("a/b"); !errors.Is(err, ErrBadKey) {
		t.Fatalf("bad list job = %v", err)
	}
}

func TestArtifactsConcurrentWriters(t *testing.T) {
	// Many jobs writing identical and distinct artifacts concurrently;
	// with -race this exercises blob dedupe racing itself.
	a := NewArtifacts(newFS(t), 0)
	var wg sync.WaitGroup
	for j := 0; j < 8; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			job := fmt.Sprintf("j%d", j)
			for i := 0; i < 20; i++ {
				name := fmt.Sprintf("a%d.txt", i%5)
				content := fmt.Sprintf("shared-%d", i%5) // same across jobs → dedupe
				if _, err := a.Write(job, name, "text/plain", func(w io.Writer) error {
					_, err := io.WriteString(w, content)
					return err
				}); err != nil {
					t.Errorf("Write %s/%s: %v", job, name, err)
					return
				}
			}
		}(j)
	}
	wg.Wait()
	for j := 0; j < 8; j++ {
		infos, err := a.List(fmt.Sprintf("j%d", j))
		if err != nil || len(infos) != 5 {
			t.Fatalf("job j%d List = %d infos, %v", j, len(infos), err)
		}
	}
}

func TestFSListSkipsTempFiles(t *testing.T) {
	s := newFS(t)
	s.Put("real", strings.NewReader("x"))
	// Simulate a crashed Put leaving a temp file behind.
	if err := os.WriteFile(filepath.Join(s.Root(), ".put-crash123"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := s.List("")
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(keys) != 1 || keys[0] != "real" {
		t.Fatalf("List = %v, temp file leaked", keys)
	}
}
