package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"
)

// DefaultMaxArtifactBytes caps a single artifact when the caller does not
// choose a limit: 64 MiB holds the largest Chrome trace the simulator
// emits at datacenter scale with an order of magnitude to spare.
const DefaultMaxArtifactBytes = 64 << 20

// Info describes one artifact in a job's catalog. It is the manifest's
// JSON shape and doubles as the API listing entry.
type Info struct {
	// Name is the artifact's name within its job, a single path segment.
	Name string `json:"name"`
	// Size is the exact byte length of the content.
	Size int64 `json:"size"`
	// SHA256 is the lowercase hex digest of the content; it is both the
	// integrity hash surfaced to clients and the blob's storage address.
	SHA256 string `json:"sha256"`
	// ContentType is the MIME type to serve the artifact with.
	ContentType string `json:"content_type"`
	// Created is when the artifact was written.
	Created time.Time `json:"created"`
}

// Artifacts is the content-addressed catalog over a Store. Content lives
// once under blobs/sha256/<aa>/<hash> (identical outputs share bytes);
// each (job, name) pair gets a small JSON manifest under
// manifests/<job>/<name> pointing at its blob. The catalog never deletes
// on job eviction — artifact durability past retention is the point.
type Artifacts struct {
	store    Store
	maxBytes int64
}

// NewArtifacts wraps a Store. maxBytes caps a single artifact's size;
// zero or negative selects DefaultMaxArtifactBytes.
func NewArtifacts(s Store, maxBytes int64) *Artifacts {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxArtifactBytes
	}
	return &Artifacts{store: s, maxBytes: maxBytes}
}

// MaxBytes returns the per-artifact size cap.
func (a *Artifacts) MaxBytes() int64 { return a.maxBytes }

func blobKey(sum string) string {
	return "blobs/sha256/" + sum[:2] + "/" + sum
}

func manifestKey(job, name string) string {
	return "manifests/" + job + "/" + name
}

// capWriter counts bytes through to w and fails the write once the cap is
// crossed, so a runaway producer stops early instead of spooling the
// whole oversized artifact.
type capWriter struct {
	w     io.Writer
	n     int64
	limit int64
}

func (cw *capWriter) Write(p []byte) (int, error) {
	if cw.n+int64(len(p)) > cw.limit {
		return 0, fmt.Errorf("%w (limit %d bytes)", ErrTooLarge, cw.limit)
	}
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// Write creates (or replaces) the artifact (job, name). The content is
// produced by the write callback, spooled through a SHA-256 hash with the
// size cap enforced as bytes arrive, stored as a deduplicated blob, and
// recorded in the job's manifest. Returns the resulting Info.
//
// Spooling in memory is deliberate: the cap bounds the buffer, and it
// lets the blob be addressed by its final hash in a single Store.Put.
func (a *Artifacts) Write(job, name, contentType string, write func(io.Writer) error) (Info, error) {
	if err := ValidateName(job); err != nil {
		return Info{}, fmt.Errorf("store: job id: %w", err)
	}
	if err := ValidateName(name); err != nil {
		return Info{}, fmt.Errorf("store: artifact name: %w", err)
	}
	var buf bytes.Buffer
	h := sha256.New()
	cw := &capWriter{w: io.MultiWriter(&buf, h), limit: a.maxBytes}
	if err := write(cw); err != nil {
		return Info{}, fmt.Errorf("store: artifact %s/%s: %w", job, name, err)
	}
	sum := hex.EncodeToString(h.Sum(nil))
	bk := blobKey(sum)
	// Dedupe: an existing blob with this hash already holds these bytes.
	if _, err := a.store.Stat(bk); err != nil {
		if !errors.Is(err, ErrNotExist) {
			return Info{}, err
		}
		if _, err := a.store.Put(bk, bytes.NewReader(buf.Bytes())); err != nil {
			return Info{}, err
		}
	}
	info := Info{
		Name:        name,
		Size:        int64(buf.Len()),
		SHA256:      sum,
		ContentType: contentType,
		Created:     time.Now().UTC(),
	}
	mj, err := json.Marshal(info)
	if err != nil {
		return Info{}, fmt.Errorf("store: encode manifest %s/%s: %w", job, name, err)
	}
	if _, err := a.store.Put(manifestKey(job, name), bytes.NewReader(mj)); err != nil {
		return Info{}, err
	}
	return info, nil
}

// List returns the job's artifacts sorted by name. A job with no
// artifacts (or one that never existed — the catalog cannot tell) returns
// an empty slice, not an error.
func (a *Artifacts) List(job string) ([]Info, error) {
	if err := ValidateName(job); err != nil {
		return nil, fmt.Errorf("store: job id: %w", err)
	}
	keys, err := a.store.List("manifests/" + job + "/")
	if err != nil {
		return nil, err
	}
	infos := make([]Info, 0, len(keys))
	for _, k := range keys {
		info, err := a.readManifest(k)
		if err != nil {
			return nil, err
		}
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos, nil
}

// Open returns the artifact's Info and a random-access reader over its
// content. A missing artifact wraps ErrNotExist.
func (a *Artifacts) Open(job, name string) (Info, Object, error) {
	if err := ValidateName(job); err != nil {
		return Info{}, nil, fmt.Errorf("store: job id: %w", err)
	}
	if err := ValidateName(name); err != nil {
		return Info{}, nil, fmt.Errorf("store: artifact name: %w", err)
	}
	info, err := a.readManifest(manifestKey(job, name))
	if err != nil {
		return Info{}, nil, err
	}
	obj, size, err := a.store.Open(blobKey(info.SHA256))
	if err != nil {
		return Info{}, nil, err
	}
	if size != info.Size {
		obj.Close()
		return Info{}, nil, fmt.Errorf("store: artifact %s/%s: blob size %d != manifest %d", job, name, size, info.Size)
	}
	return info, obj, nil
}

func (a *Artifacts) readManifest(key string) (Info, error) {
	obj, _, err := a.store.Open(key)
	if err != nil {
		return Info{}, err
	}
	defer obj.Close()
	var info Info
	if err := json.NewDecoder(obj).Decode(&info); err != nil {
		return Info{}, fmt.Errorf("store: decode manifest %q: %w", key, err)
	}
	if info.SHA256 == "" || len(info.SHA256) != 64 {
		return Info{}, fmt.Errorf("store: manifest %q has bad hash %q", key, info.SHA256)
	}
	return info, nil
}
