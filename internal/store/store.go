// Package store is the durable artifact layer behind the service's async
// jobs: large job outputs (Chrome traces, sweep CSVs, plan NDJSON) are
// written once as named, content-addressed artifacts and stay fetchable
// after the job-retention policy has evicted the job's in-memory metadata.
//
// The package splits in two:
//
//   - Store is the blob backend — a flat key → bytes namespace with atomic
//     writes, random-access reads, and prefix listing. It is deliberately
//     S3-shaped (PutObject/GetObject/HeadObject/ListObjects/DeleteObject),
//     so an object-store implementation can drop in behind the same
//     interface later; FS is the filesystem implementation shipped now.
//
//   - Artifacts is the content-addressed catalog on top: blobs are stored
//     once under their SHA-256 (identical outputs from different jobs
//     share bytes), and a small JSON manifest per (job, name) records the
//     hash, size, and content type. Deleting job metadata never touches
//     the catalog — that is the retention-vs-durability contract.
package store

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

// ErrNotExist is returned (possibly wrapped) when a key or artifact does
// not exist.
var ErrNotExist = errors.New("store: object does not exist")

// ErrTooLarge is returned (possibly wrapped) when an artifact write
// exceeds the configured size cap.
var ErrTooLarge = errors.New("store: artifact exceeds the size cap")

// ErrBadKey is returned (possibly wrapped) for malformed keys, artifact
// names, or job ids.
var ErrBadKey = errors.New("store: malformed key")

// Object is a readable blob: random access for HTTP Range serving, closed
// by the caller.
type Object interface {
	io.Reader
	io.Seeker
	io.Closer
}

// Store is the blob backend. Keys are slash-separated paths of simple
// segments (see ValidateKey); implementations must make Put atomic — a
// concurrent Open sees either the old object or the complete new one,
// never a partial write.
type Store interface {
	// Put writes r under key, replacing any existing object, and returns
	// the byte count written.
	Put(key string, r io.Reader) (int64, error)
	// Open returns a random-access reader over the object and its size;
	// a missing key wraps ErrNotExist.
	Open(key string) (Object, int64, error)
	// Stat returns the object's size; a missing key wraps ErrNotExist.
	Stat(key string) (int64, error)
	// List returns every key with the given prefix, sorted.
	List(prefix string) ([]string, error)
	// Delete removes the object; deleting a missing key is a no-op.
	Delete(key string) error
}

// maxKeyLen bounds a full key; generous next to the fixed-shape keys the
// catalog builds (a 64-hex-digit hash plus short prefixes).
const maxKeyLen = 512

// ValidateKey checks that key is a slash-separated path of segments each
// matching [A-Za-z0-9._-]+ with no "." or ".." segments — the grammar that
// is simultaneously a safe relative filesystem path and a safe object-store
// key. Every Store implementation applies it, so path traversal is refused
// before any backend sees the key.
func ValidateKey(key string) error {
	if key == "" || len(key) > maxKeyLen {
		return fmt.Errorf("store: key %q is empty or over %d bytes: %w", key, maxKeyLen, ErrBadKey)
	}
	for _, seg := range strings.Split(key, "/") {
		if err := validateSegment(seg); err != nil {
			return fmt.Errorf("store: key %q: %w", key, err)
		}
	}
	return nil
}

// validateSegment enforces the single-segment grammar shared by key
// segments, artifact names, and job ids.
func validateSegment(seg string) error {
	if seg == "" || seg == "." || seg == ".." {
		return fmt.Errorf("segment %q: %w", seg, ErrBadKey)
	}
	for i := 0; i < len(seg); i++ {
		c := seg[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("segment %q has byte %q: %w", seg, c, ErrBadKey)
		}
	}
	return nil
}

// ValidateName checks a single path segment (an artifact name or job id).
func ValidateName(name string) error {
	if len(name) > 255 {
		return fmt.Errorf("store: name %q over 255 bytes: %w", name, ErrBadKey)
	}
	if err := validateSegment(name); err != nil {
		return fmt.Errorf("store: name %q: %w", name, err)
	}
	return nil
}
