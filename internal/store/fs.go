package store

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FS is the filesystem Store: each key maps to a file under the root
// directory, with the key's slash-separated segments as path components.
// Put is atomic (temp file + rename in the destination directory), so a
// crash or a concurrent reader never observes a partial object.
type FS struct {
	root string
}

// NewFS opens (creating if needed) a filesystem store rooted at dir.
func NewFS(dir string) (*FS, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty root directory")
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("store: resolve root %q: %w", dir, err)
	}
	if err := os.MkdirAll(abs, 0o755); err != nil {
		return nil, fmt.Errorf("store: create root %q: %w", abs, err)
	}
	return &FS{root: abs}, nil
}

// Root returns the absolute root directory.
func (s *FS) Root() string { return s.root }

// path maps a validated key to its file path.
func (s *FS) path(key string) (string, error) {
	if err := ValidateKey(key); err != nil {
		return "", err
	}
	return filepath.Join(s.root, filepath.FromSlash(key)), nil
}

// Put implements Store. The object is staged in a temp file in the final
// directory and renamed into place, which is atomic on POSIX filesystems.
func (s *FS) Put(key string, r io.Reader) (int64, error) {
	p, err := s.path(key)
	if err != nil {
		return 0, err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return 0, fmt.Errorf("store: put %q: %w", key, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".put-*")
	if err != nil {
		return 0, fmt.Errorf("store: put %q: %w", key, err)
	}
	n, err := io.Copy(tmp, r)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), p)
	}
	if err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("store: put %q: %w", key, err)
	}
	return n, nil
}

// Open implements Store.
func (s *FS) Open(key string) (Object, int64, error) {
	p, err := s.path(key)
	if err != nil {
		return nil, 0, err
	}
	f, err := os.Open(p)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, fmt.Errorf("store: open %q: %w", key, ErrNotExist)
		}
		return nil, 0, fmt.Errorf("store: open %q: %w", key, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("store: open %q: %w", key, err)
	}
	return f, fi.Size(), nil
}

// Stat implements Store.
func (s *FS) Stat(key string) (int64, error) {
	p, err := s.path(key)
	if err != nil {
		return 0, err
	}
	fi, err := os.Stat(p)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, fmt.Errorf("store: stat %q: %w", key, ErrNotExist)
		}
		return 0, fmt.Errorf("store: stat %q: %w", key, err)
	}
	if fi.IsDir() {
		return 0, fmt.Errorf("store: stat %q: %w", key, ErrNotExist)
	}
	return fi.Size(), nil
}

// List implements Store. The prefix is matched against whole keys, so
// "manifests/j1" matches "manifests/j1/a" but not "manifests/j10/a" —
// prefix boundaries fall on path segments unless the prefix itself ends
// mid-segment, in which case it must name an existing directory prefix.
func (s *FS) List(prefix string) ([]string, error) {
	// Walk the deepest directory the prefix pins down, then filter by the
	// exact string prefix on the reconstructed keys.
	dir := s.root
	if prefix != "" {
		// Only the directory part of the prefix narrows the walk; a
		// trailing partial segment is handled by the string filter.
		if i := strings.LastIndexByte(prefix, '/'); i >= 0 {
			sub := prefix[:i]
			if err := ValidateKey(sub); err != nil {
				return nil, err
			}
			dir = filepath.Join(s.root, filepath.FromSlash(sub))
		}
	}
	var keys []string
	err := filepath.WalkDir(dir, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return filepath.SkipAll
			}
			return err
		}
		if d.IsDir() || strings.HasPrefix(d.Name(), ".put-") {
			return nil
		}
		rel, err := filepath.Rel(s.root, p)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: list %q: %w", prefix, err)
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete implements Store. Empty parent directories are left in place;
// they are harmless and avoiding them would race concurrent Puts.
func (s *FS) Delete(key string) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: delete %q: %w", key, err)
	}
	return nil
}
