package algs

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/matrix"
)

// TestAlg1PropertyRandomShapes drives Alg1 over random shapes, processor
// counts, and cost models: the product always matches the serial reference
// and the communication never beats Theorem 3.
func TestAlg1PropertyRandomShapes(t *testing.T) {
	f := func(n1Raw, n2Raw, n3Raw, pRaw, seedRaw uint8) bool {
		n1 := int(n1Raw%14) + 1
		n2 := int(n2Raw%14) + 1
		n3 := int(n3Raw%14) + 1
		p := int(pRaw%12) + 1
		d := core.NewDims(n1, n2, n3)
		a := matrix.Random(n1, n2, uint64(seedRaw))
		b := matrix.Random(n2, n3, uint64(seedRaw)+1)
		res, err := Alg1(a, b, p, Opts{Config: machine.BandwidthOnly()})
		if err != nil {
			// Only acceptable failure: the optimal grid exceeds a tiny
			// dimension (P larger than the iteration space allows).
			return p > n1 || p > n2 || p > n3 || p > n1*n2*n3
		}
		if !res.C.Equal(matrix.Mul(a, b), 1e-9*float64(n2+1)) {
			return false
		}
		return res.CommCost() >= core.LowerBound(d, p)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestAllAlgorithmsAgreeProperty cross-checks every applicable algorithm
// against each other on a shared random instance.
func TestAllAlgorithmsAgreeProperty(t *testing.T) {
	f := func(seedRaw uint8) bool {
		n := 12
		p := 4
		a := matrix.Random(n, n, uint64(seedRaw)*3+1)
		b := matrix.Random(n, n, uint64(seedRaw)*3+2)
		var first *matrix.Dense
		for _, e := range Registry() {
			res, err := e.Run(a, b, p, Opts{Config: machine.BandwidthOnly()})
			if err != nil {
				return false
			}
			if first == nil {
				first = res.C
			} else if !res.C.Equal(first, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestOptimal3DFamilyMatchesEquation3 checks that the Optimal3D-flagged
// algorithms measure exactly the eq.(3) volume of their grid when every
// block divides its fiber.
func TestOptimal3DFamilyMatchesEquation3(t *testing.T) {
	d := core.NewDims(32, 16, 8)
	p := 16
	a := matrix.Random(d.N1, d.N2, 5)
	b := matrix.Random(d.N2, d.N3, 6)
	for _, e := range Registry() {
		if !e.Optimal3D {
			continue
		}
		res, err := e.Run(a, b, p, Opts{Config: machine.BandwidthOnly()})
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		want := 0.0
		// eq.(3) via the grid actually used by the run.
		g := res.Grid
		want = d.SizeA()/float64(g.P1*g.P2)*frac(g.P3) +
			d.SizeB()/float64(g.P2*g.P3)*frac(g.P1) +
			d.SizeC()/float64(g.P1*g.P3)*frac(g.P2)
		if math.Abs(res.CommCost()-want) > 1e-9 {
			t.Errorf("%s grid %v: measured %v, eq.(3) %v", e.Name, g, res.CommCost(), want)
		}
	}
}

func frac(p int) float64 {
	if p <= 1 {
		return 0
	}
	return 1 - 1/float64(p)
}
