package algs

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/topo"
)

// TestFlatTopologyBitIdentical pins the acceptance contract of the topology
// subsystem: selecting the Flat topology — the paper's dedicated-link
// network — must reproduce the plain uniform-model run exactly, for every
// registered algorithm, down to the last bit of every per-rank statistic.
// The charge arithmetic is literally the same floats (a + b·w with
// a = cfg.Alpha, b = cfg.Beta), so reflect.DeepEqual, not tolerances.
func TestFlatTopologyBitIdentical(t *testing.T) {
	const n, p = 48, 16
	a := matrix.Random(n, n, 17)
	b := matrix.Random(n, n, 18)
	cfg := machine.Config{Alpha: 2, Beta: 0.5, Gamma: 0.125}
	flat := topo.NewFlat(p, topo.Link{Alpha: cfg.Alpha, Beta: cfg.Beta})
	for _, e := range Registry() {
		base, err := e.Run(a, b, p, Opts{Config: cfg})
		if err != nil {
			t.Fatalf("%s plain: %v", e.Name, err)
		}
		for _, place := range []topo.Policy{topo.Contiguous, topo.RoundRobin} {
			got, err := e.Run(a, b, p, Opts{Config: cfg, Topo: flat, Place: place})
			if err != nil {
				t.Fatalf("%s flat/%v: %v", e.Name, place, err)
			}
			if !reflect.DeepEqual(base.Stats, got.Stats) {
				t.Errorf("%s: flat topology (%v placement) changed WorldStats:\nplain: %+v\nflat:  %+v",
					e.Name, place, base.Stats, got.Stats)
			}
			if !base.C.Equal(got.C, 0) {
				t.Errorf("%s: flat topology changed the numerical result", e.Name)
			}
		}
	}
}

// TestTopologyChangesCosts checks a congested topology moves the simulated
// critical path while leaving the communication pattern — and therefore the
// word and message counts — untouched.
func TestTopologyChangesCosts(t *testing.T) {
	const n, p = 48, 16
	a := matrix.Random(n, n, 17)
	b := matrix.Random(n, n, 18)
	cfg := machine.Config{Alpha: 2, Beta: 0.5, Gamma: 0.125}
	base, err := Alg1(a, b, p, Opts{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := topo.Parse("tree=2x4", p, topo.Link{Alpha: cfg.Alpha, Beta: cfg.Beta})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Alg1(a, b, p, Opts{Config: cfg, Topo: tree})
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.CriticalPath <= base.Stats.CriticalPath {
		t.Errorf("skinny tree critical path %v not above flat %v", got.Stats.CriticalPath, base.Stats.CriticalPath)
	}
	if got.Stats.TotalWordsSent != base.Stats.TotalWordsSent || got.Stats.TotalMessages != base.Stats.TotalMessages {
		t.Errorf("topology changed the communication pattern: %v words/%d msgs vs %v/%d",
			got.Stats.TotalWordsSent, got.Stats.TotalMessages, base.Stats.TotalWordsSent, base.Stats.TotalMessages)
	}
	if !base.C.Equal(got.C, 0) {
		t.Error("topology changed the numerical result")
	}
}

// TestTopologySizeMismatch checks a topology of the wrong size is rejected
// with core.ErrBadTopology before any simulation starts.
func TestTopologySizeMismatch(t *testing.T) {
	a := matrix.Random(16, 16, 3)
	b := matrix.Random(16, 16, 4)
	wrong := topo.NewFlat(8, topo.Link{Beta: 1})
	if _, err := Alg1(a, b, 16, Opts{Config: machine.BandwidthOnly(), Topo: wrong}); !errors.Is(err, core.ErrBadTopology) {
		t.Errorf("mismatched topology = %v, want ErrBadTopology", err)
	}
}

// TestValidateRejectsBadPlacement checks Opts.Validate catches an
// out-of-range placement policy.
func TestValidateRejectsBadPlacement(t *testing.T) {
	if err := (Opts{Place: topo.Policy(99)}).Validate(); !errors.Is(err, core.ErrBadTopology) {
		t.Errorf("bad placement = %v, want ErrBadTopology", err)
	}
	if err := (Opts{}).Validate(); err != nil {
		t.Errorf("zero Opts = %v, want nil", err)
	}
}

// TestNames checks the registry name list matches the entries.
func TestNames(t *testing.T) {
	names := Names()
	entries := Registry()
	if len(names) != len(entries) {
		t.Fatalf("%d names for %d entries", len(names), len(entries))
	}
	for i, e := range entries {
		if names[i] != e.Name {
			t.Errorf("Names()[%d] = %q, want %q", i, names[i], e.Name)
		}
	}
}
