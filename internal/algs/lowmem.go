package algs

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/matrix"
)

// Alg1LowMem implements the §6.2 adaptation of Algorithm 1: "Alg. 1 can be
// adapted to reduce the temporary memory required to a negligible amount at
// the expense of higher latency cost but without affecting the bandwidth
// cost." Instead of All-Gathering the full A and B panels before the local
// multiplication, the contracted dimension of the panels is processed in
// `chunks` slices: each step All-Gathers only a 1/chunks strip of each
// panel, multiplies it into the local C contribution, and releases it. The
// words moved are identical (the strips partition the panels); the latency
// grows by the factor `chunks`; the peak temporary memory for the gathered
// panels drops by the same factor. The C contribution buffer is unchanged —
// in the 3D case it is the component that cannot shrink without raising
// bandwidth, which is exactly the paper's caveat for 3D grids.
func Alg1LowMem(a, b *matrix.Dense, p, chunks int, opts Opts) (*Result, error) {
	d, err := dimsOf(a, b)
	if err != nil {
		return nil, err
	}
	if chunks < 1 {
		return nil, fmt.Errorf("algs: Alg1LowMem needs chunks ≥ 1, got %d: %w", chunks, core.ErrBadOpts)
	}
	g := opts.Grid
	if g == (grid.Grid{}) {
		g = grid.Optimal(d, p)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.Size() != p {
		return nil, fmt.Errorf("algs: grid %v has %d processors, want %d: %w", g, g.Size(), p, core.ErrGridMismatch)
	}
	if g.P1 > d.N1 || g.P2 > d.N2 || g.P3 > d.N3 {
		return nil, fmt.Errorf("algs: grid %v exceeds dims %v: %w", g, d, core.ErrGridMismatch)
	}

	w, tr, err := newWorld(p, opts)
	if err != nil {
		return nil, err
	}
	resultChunks := make([][]float64, p)
	runErr := w.Run(func(r *machine.Rank) {
		i1, i2, i3 := g.Coords(r.ID())
		aBlk := matrix.BlockOf(a, g.P1, g.P2, i1, i2)
		bBlk := matrix.BlockOf(b, g.P2, g.P3, i2, i3)
		kLocal := aBlk.Cols() // == bBlk.Rows(): the local contracted extent

		grpA := collective.NewGroup(r, g.Fiber(r.ID(), grid.Axis3), 1, opts.Collective)
		grpB := collective.NewGroup(r, g.Fiber(r.ID(), grid.Axis1), 2, opts.Collective)

		dBlk := matrix.New(aBlk.Rows(), bBlk.Cols())
		r.GrowMemory(float64(dBlk.Size()))
		nChunks := chunks
		if nChunks > kLocal {
			nChunks = kLocal
		}
		if nChunks == 0 {
			nChunks = 1
		}
		for s := 0; s < nChunks; s++ {
			k0 := matrix.PartStart(kLocal, nChunks, s)
			kw := matrix.PartSize(kLocal, nChunks, s)
			if kw == 0 {
				continue
			}
			// Strip s of the A panel: columns [k0, k0+kw) of the block,
			// still distributed over the Axis3 fiber by packed ranges.
			aStrip := aBlk.View(0, k0, aBlk.Rows(), kw)
			packedA := aStrip.Pack()
			countsA := shareCounts(len(packedA), g.P3)
			loA, hiA := shareRange(len(packedA), g.P3, i3)
			r.SetPhase(PhaseGatherA)
			fullA := grpA.AllGatherV(packedA[loA:hiA], countsA)
			r.GrowMemory(float64(len(fullA)))
			gatheredA := matrix.New(aBlk.Rows(), kw)
			gatheredA.Unpack(fullA)

			bStrip := bBlk.View(k0, 0, kw, bBlk.Cols())
			packedB := bStrip.Pack()
			countsB := shareCounts(len(packedB), g.P1)
			loB, hiB := shareRange(len(packedB), g.P1, i1)
			r.SetPhase(PhaseGatherB)
			fullB := grpB.AllGatherV(packedB[loB:hiB], countsB)
			r.GrowMemory(float64(len(fullB)))
			gatheredB := matrix.New(kw, bBlk.Cols())
			gatheredB.Unpack(fullB)

			r.SetPhase("")
			localMulAdd(r, dBlk, gatheredA, gatheredB, opts.Workers)
			// Strips are dead after accumulation.
			r.ShrinkMemory(float64(len(fullA) + len(fullB)))
		}

		packedD := dBlk.Pack()
		countsC := shareCounts(len(packedD), g.P2)
		grpC := collective.NewGroup(r, g.Fiber(r.ID(), grid.Axis2), 3, opts.Collective)
		r.SetPhase(PhaseReduceC)
		myC := grpC.ReduceScatterV(packedD, countsC)
		r.SetPhase("")
		resultChunks[r.ID()] = myC
	})
	if runErr != nil {
		return nil, runErr
	}
	cOut := assembleC(d, g, resultChunks)
	return &Result{Name: "Alg1LowMem", C: cOut, Grid: g, Stats: w.Stats(), Trace: tr}, nil
}
