package algs

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/matrix"
)

func TestCARMAGridSplitsLargest(t *testing.T) {
	cases := []struct {
		d    core.Dims
		p    int
		want grid.Grid
	}{
		// Square: splits rotate through the dimensions.
		{core.Square(64), 8, grid.Grid{P1: 2, P2: 2, P3: 2}},
		// Tall-skinny: all splits go to the large dimension first.
		{core.NewDims(1024, 16, 16), 8, grid.Grid{P1: 8, P2: 1, P3: 1}},
		// Paper shape: m gets halved until it ties with n, then both.
		{core.NewDims(9600, 2400, 600), 4, grid.Grid{P1: 4, P2: 1, P3: 1}},
		{core.NewDims(9600, 2400, 600), 16, grid.Grid{P1: 8, P2: 2, P3: 1}},
	}
	for _, c := range cases {
		g, err := CARMAGrid(c.d, c.p)
		if err != nil {
			t.Fatalf("%v P=%d: %v", c.d, c.p, err)
		}
		if g != c.want {
			t.Errorf("CARMAGrid(%v, %d) = %v, want %v", c.d, c.p, g, c.want)
		}
	}
}

func TestCARMAGridErrors(t *testing.T) {
	if _, err := CARMAGrid(core.Square(8), 3); err == nil {
		t.Fatal("expected power-of-two error")
	}
	if _, err := CARMAGrid(core.NewDims(1, 1, 1), 8); err == nil {
		t.Fatal("expected grid-exceeds-dims error")
	}
}

func TestCARMACorrectness(t *testing.T) {
	for _, c := range []struct{ n1, n2, n3, p int }{
		{16, 16, 16, 8}, {64, 8, 8, 16}, {12, 24, 48, 4}, {9, 9, 9, 1},
		{13, 7, 5, 4},
	} {
		verify(t, "CARMA", CARMA, c.n1, c.n2, c.n3, c.p, bwOpts())
	}
}

func TestCARMARejectsNonPowerOfTwo(t *testing.T) {
	a := matrix.Random(8, 8, 1)
	b := matrix.Random(8, 8, 2)
	if _, err := CARMA(a, b, 6, bwOpts()); err == nil {
		t.Fatal("expected power-of-two error")
	}
}

// TestCARMAAsymptoticallyOptimal: on a square problem with cube-of-two P,
// CARMA's greedy grid equals the optimal cubic grid, so it attains the
// bound exactly.
func TestCARMAAsymptoticallyOptimal(t *testing.T) {
	n, p := 32, 64
	d := core.Square(n)
	res := verify(t, "CARMA", CARMA, n, n, n, p, bwOpts())
	bound := core.LowerBound(d, p)
	if math.Abs(res.CommCost()-bound) > 1e-9 {
		t.Errorf("CARMA cost %v, bound %v", res.CommCost(), bound)
	}
}

// TestCARMAWithinConstantOfBound: across shapes, the greedy grid's cost is
// within a small constant of the lower bound (Demmel et al. prove ≤ 2× the
// asymptotic terms; we check 3× as a conservative envelope including
// lower-order effects).
func TestCARMAWithinConstantOfBound(t *testing.T) {
	shapes := []core.Dims{
		core.NewDims(96, 24, 6), core.NewDims(64, 64, 64),
		core.NewDims(256, 16, 16), core.NewDims(8, 128, 32),
	}
	for _, d := range shapes {
		for _, p := range []int{2, 4, 8, 16, 32} {
			g, err := CARMAGrid(d, p)
			if err != nil {
				continue
			}
			cost := grid.CommCost(d, g)
			bound := core.LowerBound(d, p)
			if bound > 0 && cost > 3*bound {
				t.Errorf("%v P=%d: CARMA grid %v costs %v > 3x bound %v", d, p, g, cost, bound)
			}
			if cost < bound-1e-9 {
				t.Errorf("%v P=%d: CARMA grid beats the bound", d, p)
			}
		}
	}
}
