package algs

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/matrix"
)

func bwOpts() Opts { return Opts{Config: machine.BandwidthOnly()} }

// verify runs an algorithm and checks the product against the serial
// reference, returning the result for further cost assertions.
func verify(t *testing.T, name string, run Runner, n1, n2, n3, p int, opts Opts) *Result {
	t.Helper()
	a := matrix.Random(n1, n2, uint64(n1*7+n2))
	b := matrix.Random(n2, n3, uint64(n2*13+n3))
	res, err := run(a, b, p, opts)
	if err != nil {
		t.Fatalf("%s(%dx%dx%d, P=%d): %v", name, n1, n2, n3, p, err)
	}
	want := matrix.Mul(a, b)
	if diff := res.C.MaxAbsDiff(want); diff > 1e-9*float64(n2) {
		t.Fatalf("%s(%dx%dx%d, P=%d): wrong product, max diff %g", name, n1, n2, n3, p, diff)
	}
	return res
}

func TestAlg1CorrectnessAcrossShapes(t *testing.T) {
	cases := []struct{ n1, n2, n3, p int }{
		{1, 1, 1, 1}, {8, 8, 8, 1}, {8, 8, 8, 8}, {12, 12, 12, 27},
		{16, 8, 4, 8}, {4, 8, 16, 8}, {96, 24, 6, 3}, {96, 24, 6, 36},
		{13, 7, 5, 6},   // nothing divides: balanced partitions
		{10, 10, 10, 7}, // prime P → skinny optimal grid
		{5, 9, 33, 12},
	}
	for _, c := range cases {
		verify(t, "Alg1", Alg1, c.n1, c.n2, c.n3, c.p, bwOpts())
	}
}

func TestAlg1ExplicitGrid(t *testing.T) {
	opts := bwOpts()
	opts.Grid = grid.Grid{P1: 2, P2: 3, P3: 4}
	verify(t, "Alg1", Alg1, 10, 9, 8, 24, opts)
}

func TestAlg1GridErrors(t *testing.T) {
	a := matrix.Random(4, 4, 1)
	b := matrix.Random(4, 4, 2)
	opts := bwOpts()
	opts.Grid = grid.Grid{P1: 2, P2: 2, P3: 2}
	if _, err := Alg1(a, b, 9, opts); err == nil {
		t.Fatal("expected grid-size mismatch error")
	}
	opts.Grid = grid.Grid{P1: 8, P2: 1, P3: 1}
	if _, err := Alg1(a, b, 8, opts); err == nil {
		t.Fatal("expected grid-exceeds-dims error")
	}
	if _, err := Alg1(matrix.Random(4, 5, 1), matrix.Random(4, 4, 2), 1, bwOpts()); err == nil {
		t.Fatal("expected inner-dimension error")
	}
}

// TestAlg1AttainsBoundAllCases is the headline §5.2 tightness experiment at
// test scale: with the paper's case grids on a 768×192×48 problem (the
// Figure 2 shape scaled by 1/12.5, preserving the thresholds m/n = 4 and
// mn/k² = 64), the measured per-rank communication equals Theorem 3's
// lower bound to the word, in all three cases. The dimensions are chosen so
// every §5 even-distribution assumption holds exactly (blocks divide by
// their fiber sizes) at each P below.
func TestAlg1AttainsBoundAllCases(t *testing.T) {
	d := core.NewDims(768, 192, 48)
	for _, p := range []int{1, 2, 3, 4, 16, 36, 64, 512} {
		g, err := grid.CaseGrid(d, p)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		opts := bwOpts()
		opts.Grid = g
		res := verify(t, "Alg1", Alg1, 768, 192, 48, p, opts)
		bound := core.LowerBound(d, p)
		if math.Abs(res.CommCost()-bound) > 1e-9*(1+bound) {
			t.Errorf("P=%d grid %v case %v: measured %v words, bound %v",
				p, g, core.CaseOf(d, p), res.CommCost(), bound)
		}
		// Every rank moves the same volume (perfect balance).
		for r, rs := range res.Stats.Ranks {
			if math.Abs(rs.WordsRecv-bound) > 1e-9*(1+bound) {
				t.Errorf("P=%d rank %d recv %v, bound %v", p, r, rs.WordsRecv, bound)
			}
		}
	}
}

// TestAllToAll3DSameBandwidthMoreMessages verifies the paper's §5.1 remark:
// replacing the Reduce-Scatter by an All-to-All keeps the bandwidth equal
// but increases the message count.
func TestAllToAll3DSameBandwidthMoreMessages(t *testing.T) {
	d := core.NewDims(24, 24, 24)
	p := 64 // grid 4x4x4
	g, err := grid.CaseGrid(d, p)
	if err != nil {
		t.Fatal(err)
	}
	opts := bwOpts()
	opts.Grid = g
	rs := verify(t, "Alg1", Alg1, 24, 24, 24, p, opts)
	aa := verify(t, "AllToAll3D", AllToAll3D, 24, 24, 24, p, opts)
	if math.Abs(rs.CommCost()-aa.CommCost()) > 1e-9 {
		t.Errorf("bandwidth differs: RS %v vs A2A %v", rs.CommCost(), aa.CommCost())
	}
	if aa.Stats.TotalMessages <= rs.Stats.TotalMessages {
		t.Errorf("A2A messages %d not more than RS %d", aa.Stats.TotalMessages, rs.Stats.TotalMessages)
	}
}

func TestOneDCorrectnessAndCost(t *testing.T) {
	res := verify(t, "OneD", OneD, 18, 6, 4, 6, bwOpts())
	// Cost: (1 − 1/P)·n2·n3 received per rank (P divides n2·n3 so the
	// shares are exactly even).
	want := (1 - 1.0/6) * 6 * 4
	if math.Abs(res.CommCost()-want) > 1e-9 {
		t.Errorf("OneD cost %v, want %v", res.CommCost(), want)
	}
	verify(t, "OneD", OneD, 7, 3, 9, 7, bwOpts())
	if _, err := OneD(matrix.Random(3, 3, 1), matrix.Random(3, 3, 2), 5, bwOpts()); err == nil {
		t.Fatal("expected P ≤ n1 error")
	}
}

// TestOneDMatchesCase1Bound: in Case 1 with n1 the largest dimension, the
// 1D algorithm is optimal.
func TestOneDMatchesCase1Bound(t *testing.T) {
	d := core.NewDims(96, 24, 6)
	for _, p := range []int{2, 3, 4} {
		res := verify(t, "OneD", OneD, 96, 24, 6, p, bwOpts())
		bound := core.LowerBound(d, p)
		if math.Abs(res.CommCost()-bound) > 1e-9 {
			t.Errorf("P=%d OneD cost %v, bound %v", p, res.CommCost(), bound)
		}
	}
}

func TestSUMMACorrectness(t *testing.T) {
	cases := []struct{ n1, n2, n3, p int }{
		{8, 8, 8, 4}, {8, 12, 16, 4}, {6, 12, 6, 6}, {16, 16, 16, 16}, {9, 6, 9, 9},
		{10, 12, 10, 1},
	}
	for _, c := range cases {
		verify(t, "SUMMA", SUMMA, c.n1, c.n2, c.n3, c.p, bwOpts())
	}
}

func TestSUMMACostFormula(t *testing.T) {
	// On a pr×pc grid with tree broadcasts, per-rank received words are
	// (1−1/pc)·n1n2/pr + (1−1/pr)·n2n3/pc.
	n := 16
	p := 16
	opts := bwOpts()
	opts.Grid = grid.Grid{P1: 4, P2: 1, P3: 4}
	res := verify(t, "SUMMA", SUMMA, n, n, n, p, opts)
	want := (1-0.25)*float64(n*n)/4 + (1-0.25)*float64(n*n)/4
	if math.Abs(res.CommCost()-want) > 1e-9 {
		t.Errorf("SUMMA cost %v, want %v", res.CommCost(), want)
	}
}

func TestSUMMAErrors(t *testing.T) {
	a := matrix.Random(8, 7, 1)
	b := matrix.Random(7, 8, 2)
	if _, err := SUMMA(a, b, 4, bwOpts()); err == nil {
		t.Fatal("expected divisibility error for n2=7 on 2x2 grid")
	}
	opts := bwOpts()
	opts.Grid = grid.Grid{P1: 2, P2: 2, P3: 1}
	if _, err := SUMMA(matrix.Random(8, 8, 1), matrix.Random(8, 8, 2), 4, opts); err == nil {
		t.Fatal("expected P2=1 requirement error")
	}
}

func TestCannonCorrectness(t *testing.T) {
	for _, c := range []struct{ n1, n2, n3, p int }{
		{8, 8, 8, 4}, {12, 8, 4, 16}, {6, 6, 6, 9}, {5, 5, 5, 1},
	} {
		verify(t, "Cannon", Cannon, c.n1, c.n2, c.n3, c.p, bwOpts())
	}
}

func TestCannonCostFormula(t *testing.T) {
	// Skew (one A block + one B block) plus q−1 shifts of each.
	n, p, q := 12, 9, 3
	res := verify(t, "Cannon", Cannon, n, n, n, p, bwOpts())
	blk := float64(n * n / (q * q))
	want := 2 * blk * float64(q-1+1) // q−1 shifts + 1 skew, each A and B
	if math.Abs(res.CommCost()-want) > 1e-9 {
		t.Errorf("Cannon cost %v, want %v", res.CommCost(), want)
	}
}

func TestCannonErrors(t *testing.T) {
	if _, err := Cannon(matrix.Random(8, 8, 1), matrix.Random(8, 8, 2), 5, bwOpts()); err == nil {
		t.Fatal("expected non-square P error")
	}
	if _, err := Cannon(matrix.Random(7, 7, 1), matrix.Random(7, 7, 2), 4, bwOpts()); err == nil {
		t.Fatal("expected divisibility error")
	}
}

func TestTwoPointFiveDCorrectness(t *testing.T) {
	for _, c := range []struct{ n, p, layers int }{
		{8, 4, 1},   // degenerates to Cannon
		{8, 8, 2},   // q=2, c=2: 3D limit
		{16, 32, 2}, // q=4, c=2
		{12, 36, 1}, // q=6 c=1
		{27, 27, 3}, // q=3, c=3: full 3D
	} {
		opts := bwOpts()
		opts.Layers = c.layers
		verify(t, "TwoPointFiveD", TwoPointFiveD, c.n, c.n, c.n, c.p, opts)
	}
}

func TestTwoPointFiveDAutoLayers(t *testing.T) {
	if got := ChooseLayers(27); got != 3 {
		t.Errorf("ChooseLayers(27) = %d, want 3", got)
	}
	if got := ChooseLayers(4); got != 1 {
		t.Errorf("ChooseLayers(4) = %d, want 1", got)
	}
	if got := ChooseLayers(32); got != 2 {
		t.Errorf("ChooseLayers(32) = %d, want 2", got)
	}
	verify(t, "TwoPointFiveD", TwoPointFiveD, 12, 12, 12, 27, bwOpts())
}

// TestTwoPointFiveDReplicationReducesComm is the memory/bandwidth
// trade-off: more layers, less communication (and more memory).
func TestTwoPointFiveDReplicationReducesComm(t *testing.T) {
	// Replication pays off only when the Cannon phase dominates the
	// replication overhead (q/c ≫ 1): P = 256 admits c=1 (q=16) and c=4
	// (q=8, 2 rounds per layer), where the c=4 volume is strictly lower.
	n := 32
	p := 256
	o1 := bwOpts()
	o1.Layers = 1
	r1 := verify(t, "TwoPointFiveD", TwoPointFiveD, n, n, n, p, o1)
	o4 := bwOpts()
	o4.Layers = 4
	r4 := verify(t, "TwoPointFiveD", TwoPointFiveD, n, n, n, p, o4)
	if r4.CommCost() >= r1.CommCost() {
		t.Errorf("c=4 comm %v not below c=1 comm %v", r4.CommCost(), r1.CommCost())
	}
	if r4.Stats.MaxPeakMemory <= r1.Stats.MaxPeakMemory {
		t.Errorf("c=4 memory %v not above c=1 memory %v", r4.Stats.MaxPeakMemory, r1.Stats.MaxPeakMemory)
	}
}

func TestTwoPointFiveDErrors(t *testing.T) {
	sq := matrix.Random(8, 8, 1)
	if _, err := TwoPointFiveD(matrix.Random(8, 4, 1), matrix.Random(4, 8, 2), 4, bwOpts()); err == nil {
		t.Fatal("expected square-matrix error")
	}
	opts := bwOpts()
	opts.Layers = 3
	if _, err := TwoPointFiveD(sq, sq, 4, opts); err == nil {
		t.Fatal("expected c|P error")
	}
	opts.Layers = 2
	if _, err := TwoPointFiveD(sq, sq, 4, opts); err == nil {
		t.Fatal("expected P=q²c error")
	}
}

// TestFigure1PhaseBreakdown reproduces the structure of the paper's
// Figure 1: on a 3×3×3 grid, each processor's communication splits into the
// three collectives with volumes (1−1/p)·(block size) each.
func TestFigure1PhaseBreakdown(t *testing.T) {
	n := 18 // blocks are 6×6 = 36 words, divisible by the fiber size 3
	p := 27
	d := core.Square(n)
	g, err := grid.CaseGrid(d, p)
	if err != nil {
		t.Fatal(err)
	}
	opts := bwOpts()
	opts.Grid = g
	res := verify(t, "Alg1", Alg1, n, n, n, p, opts)
	blockWords := float64(n / 3 * n / 3)
	wantPerPhase := (1 - 1.0/3) * blockWords
	for _, phase := range []string{PhaseGatherA, PhaseGatherB, PhaseReduceC} {
		if got := res.Stats.MaxPhaseRecv(phase); math.Abs(got-wantPerPhase) > 1e-9 {
			t.Errorf("phase %s recv %v, want %v", phase, got, wantPerPhase)
		}
	}
}

// TestAlg1MemoryFootprint checks the §6.2 claim that Algorithm 1's local
// memory is the gathered panels plus the C block — i.e. D — up to the
// initially owned shares.
func TestAlg1MemoryFootprint(t *testing.T) {
	d := core.NewDims(96, 24, 6)
	for _, p := range []int{3, 36, 512} {
		g, err := grid.CaseGrid(d, p)
		if err != nil {
			t.Fatal(err)
		}
		opts := bwOpts()
		opts.Grid = g
		res := verify(t, "Alg1", Alg1, 96, 24, 6, p, opts)
		upper := core.D(d, p) + d.InputOutputWords()/float64(p) + 1
		if res.Stats.MaxPeakMemory > upper {
			t.Errorf("P=%d peak memory %v exceeds D + owned = %v", p, res.Stats.MaxPeakMemory, upper)
		}
		if res.Stats.MaxPeakMemory < core.D(d, p)-1 {
			t.Errorf("P=%d peak memory %v below D = %v (accounting broken?)", p, res.Stats.MaxPeakMemory, core.D(d, p))
		}
	}
}

// TestBaselinesNeverBeatBound: no algorithm communicates less than
// Theorem 3 allows.
func TestBaselinesNeverBeatBound(t *testing.T) {
	n := 24
	d := core.Square(n)
	p := 16
	for _, e := range Registry() {
		res, err := e.Run(matrix.Random(n, n, 3), matrix.Random(n, n, 4), p, bwOpts())
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		bound := core.LowerBound(d, p)
		if res.CommCost() < bound-1e-9 {
			t.Errorf("%s cost %v beats the bound %v", e.Name, res.CommCost(), bound)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (float64, float64) {
		res := verify(t, "Alg1", Alg1, 13, 11, 9, 8, Opts{Config: machine.Config{Alpha: 2, Beta: 1, Gamma: 0.1}})
		return res.Stats.CriticalPath, res.CommCost()
	}
	cp1, cc1 := run()
	for i := 0; i < 3; i++ {
		cp, cc := run()
		if cp != cp1 || cc != cc1 {
			t.Fatalf("nondeterministic: (%v,%v) vs (%v,%v)", cp, cc, cp1, cc1)
		}
	}
}

func TestRegistryNames(t *testing.T) {
	names := map[string]bool{}
	for _, e := range Registry() {
		if e.Name == "" || names[e.Name] {
			t.Fatalf("bad registry entry %q", e.Name)
		}
		names[e.Name] = true
	}
	for _, want := range []string{"Alg1", "AllToAll3D", "OneD", "SUMMA", "Cannon", "TwoPointFiveD"} {
		if !names[want] {
			t.Fatalf("registry missing %s", want)
		}
	}
}

func TestResultNameAndGrid(t *testing.T) {
	res := verify(t, "Alg1", Alg1, 8, 8, 8, 8, bwOpts())
	if res.Name != "Alg1" || res.Grid.Size() != 8 {
		t.Fatalf("result metadata: %q %v", res.Name, res.Grid)
	}
	if !strings.Contains(res.Grid.String(), "x") {
		t.Fatal("grid string")
	}
}
