package algs

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/topo"
)

// The golden-stats test pins the simulator's observable accounting across
// engine rewrites: every scheduler change (global lock → sharded mailboxes,
// broadcast wakeups → targeted signals) must leave WorldStats bit-identical,
// because critical paths and per-phase word counts are the measured
// quantities the paper's experiments compare against Theorem 3. The golden
// file is regenerated with
//
//	go test ./internal/algs -run TestGoldenWorldStats -update-golden
//
// and must only ever be refreshed for a change that deliberately alters the
// simulated communication pattern, never for an engine-internal one.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_stats.json from the current engine")

// goldenRun is one pinned simulation: an algorithm on fixed inputs under a
// fixed cost model, with the full per-rank statistics it produced.
type goldenRun struct {
	Name  string           `json:"name"`
	Stats goldenWorldStats `json:"stats"`
}

// goldenWorldStats mirrors machine.WorldStats field-for-field. JSON encodes
// float64 with the shortest round-tripping representation, so an exact ==
// comparison after decode pins the values bit-for-bit.
type goldenWorldStats struct {
	CriticalPath   float64           `json:"criticalPath"`
	MaxWordsRecv   float64           `json:"maxWordsRecv"`
	MaxWordsSent   float64           `json:"maxWordsSent"`
	TotalWordsSent float64           `json:"totalWordsSent"`
	TotalMessages  int               `json:"totalMessages"`
	MaxPeakMemory  float64           `json:"maxPeakMemory"`
	Ranks          []goldenRankStats `json:"ranks"`
}

type goldenRankStats struct {
	WordsSent      float64            `json:"wordsSent"`
	WordsRecv      float64            `json:"wordsRecv"`
	MsgsSent       int                `json:"msgsSent"`
	MsgsRecv       int                `json:"msgsRecv"`
	Flops          float64            `json:"flops"`
	PeakMemory     float64            `json:"peakMemory"`
	FinalClock     float64            `json:"finalClock"`
	PhaseRecvWords map[string]float64 `json:"phaseRecvWords,omitempty"`
	PhaseSentWords map[string]float64 `json:"phaseSentWords,omitempty"`
}

func toGolden(s machine.WorldStats) goldenWorldStats {
	g := goldenWorldStats{
		CriticalPath:   s.CriticalPath,
		MaxWordsRecv:   s.MaxWordsRecv,
		MaxWordsSent:   s.MaxWordsSent,
		TotalWordsSent: s.TotalWordsSent,
		TotalMessages:  s.TotalMessages,
		MaxPeakMemory:  s.MaxPeakMemory,
	}
	for _, r := range s.Ranks {
		g.Ranks = append(g.Ranks, goldenRankStats{
			WordsSent:      r.WordsSent,
			WordsRecv:      r.WordsRecv,
			MsgsSent:       r.MsgsSent,
			MsgsRecv:       r.MsgsRecv,
			Flops:          r.Flops,
			PeakMemory:     r.PeakMemory,
			FinalClock:     r.FinalClock,
			PhaseRecvWords: r.PhaseRecvWords,
			PhaseSentWords: r.PhaseSentWords,
		})
	}
	return g
}

// goldenSuite runs every registered algorithm on fixed inputs under two cost
// models (bandwidth-only and a full α-β-γ), covering both collective
// families through the power-of-two / non-power-of-two processor counts,
// plus one topology-enabled case so contention charging is pinned too. The
// engine parameter selects the scheduler; every engine must reproduce the
// same suite bit-for-bit, which is what makes the event backend a drop-in
// replacement for the goroutine reference.
func goldenSuite(t *testing.T, engine machine.Engine) []goldenRun {
	t.Helper()
	n := 48
	a := matrix.Random(n, n, 17)
	b := matrix.Random(n, n, 18)
	ra := matrix.Random(96, 36, 21)
	rb := matrix.Random(36, 60, 22)
	full := machine.Config{Alpha: 2, Beta: 0.5, Gamma: 0.125}

	var runs []goldenRun
	add := func(name string, res *Result, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("golden run %s: %v", name, err)
		}
		runs = append(runs, goldenRun{Name: name, Stats: toGolden(res.Stats)})
	}
	for _, e := range Registry() {
		res, err := e.Run(a, b, 16, Opts{Config: machine.BandwidthOnly(), Engine: engine})
		add(fmt.Sprintf("%s/n=%d/p=16/bandwidth", e.Name, n), res, err)
		res, err = e.Run(a, b, 16, Opts{Config: full, Engine: engine})
		add(fmt.Sprintf("%s/n=%d/p=16/abg", e.Name, n), res, err)
	}
	// Non-power-of-two fibers exercise the ring collectives; a rectangular
	// instance exercises uneven shares.
	for _, e := range []struct {
		name string
		run  Runner
	}{{"Alg1", Alg1}, {"AllToAll3D", AllToAll3D}, {"OneD", OneD}} {
		res, err := e.run(ra, rb, 12, Opts{Config: full, Engine: engine})
		add(fmt.Sprintf("%s/rect/p=12/abg", e.name), res, err)
	}
	// A congested tree topology pins the contention-aware charge arithmetic
	// on top of the scheduler, so an engine rewrite cannot silently bypass
	// the network oracle.
	tree, err := topo.Parse("tree=2x4", 16, topo.Link{Alpha: full.Alpha, Beta: full.Beta})
	if err != nil {
		t.Fatalf("golden topology: %v", err)
	}
	res, err := Alg1(a, b, 16, Opts{Config: full, Topo: tree, Engine: engine})
	add("Alg1/n=48/p=16/abg/tree=2x4", res, err)
	return runs
}

func TestGoldenWorldStats(t *testing.T) {
	path := filepath.Join("testdata", "golden_stats.json")
	got := goldenSuite(t, machine.EngineGoroutine)

	if *updateGolden {
		blob, err := json.MarshalIndent(got, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d runs", path, len(got))
		return
	}

	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-golden): %v", err)
	}
	var want []goldenRun
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatalf("decoding golden file: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("suite has %d runs, golden file has %d", len(got), len(want))
	}
	for i := range got {
		compareGoldenRun(t, got[i], want[i])
	}
}

// TestGoldenWorldStatsEventEngine replays the identical pinned suite on the
// event-driven backend and holds it to the same golden file. Stats are pure
// functions of the deterministic communication pattern, so a correct
// scheduler — any correct scheduler — must land on the same bits the
// goroutine reference produced; the weakest acceptable claim ("close
// enough") is deliberately not on offer.
func TestGoldenWorldStatsEventEngine(t *testing.T) {
	if *updateGolden {
		t.Skip("golden file is regenerated from the goroutine reference engine")
	}
	path := filepath.Join("testdata", "golden_stats.json")
	got := goldenSuite(t, machine.EngineEvent)

	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-golden): %v", err)
	}
	var want []goldenRun
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatalf("decoding golden file: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("suite has %d runs, golden file has %d", len(got), len(want))
	}
	for i := range got {
		compareGoldenRun(t, got[i], want[i])
	}
}

func compareGoldenRun(t *testing.T, got, want goldenRun) {
	t.Helper()
	if got.Name != want.Name {
		t.Errorf("run %q: golden file has %q at this position", got.Name, want.Name)
		return
	}
	g, w := got.Stats, want.Stats
	if g.CriticalPath != w.CriticalPath {
		t.Errorf("%s: CriticalPath = %v, golden %v", got.Name, g.CriticalPath, w.CriticalPath)
	}
	if g.MaxWordsRecv != w.MaxWordsRecv || g.MaxWordsSent != w.MaxWordsSent {
		t.Errorf("%s: max words recv/sent = %v/%v, golden %v/%v", got.Name, g.MaxWordsRecv, g.MaxWordsSent, w.MaxWordsRecv, w.MaxWordsSent)
	}
	if g.TotalWordsSent != w.TotalWordsSent || g.TotalMessages != w.TotalMessages {
		t.Errorf("%s: totals = %v words / %d msgs, golden %v / %d", got.Name, g.TotalWordsSent, g.TotalMessages, w.TotalWordsSent, w.TotalMessages)
	}
	if g.MaxPeakMemory != w.MaxPeakMemory {
		t.Errorf("%s: MaxPeakMemory = %v, golden %v", got.Name, g.MaxPeakMemory, w.MaxPeakMemory)
	}
	if len(g.Ranks) != len(w.Ranks) {
		t.Errorf("%s: %d ranks, golden %d", got.Name, len(g.Ranks), len(w.Ranks))
		return
	}
	for r := range g.Ranks {
		gr, wr := g.Ranks[r], w.Ranks[r]
		if gr.WordsSent != wr.WordsSent || gr.WordsRecv != wr.WordsRecv ||
			gr.MsgsSent != wr.MsgsSent || gr.MsgsRecv != wr.MsgsRecv ||
			gr.Flops != wr.Flops || gr.PeakMemory != wr.PeakMemory ||
			gr.FinalClock != wr.FinalClock {
			t.Errorf("%s: rank %d scalar stats differ: got %+v, golden %+v", got.Name, r, gr, wr)
		}
		comparePhases(t, got.Name, r, "recv", gr.PhaseRecvWords, wr.PhaseRecvWords)
		comparePhases(t, got.Name, r, "sent", gr.PhaseSentWords, wr.PhaseSentWords)
	}
}

func comparePhases(t *testing.T, run string, rank int, kind string, got, want map[string]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: rank %d has %d %s phases, golden %d", run, rank, len(got), kind, len(want))
		return
	}
	for phase, v := range want {
		if gv, ok := got[phase]; !ok || gv != v {
			t.Errorf("%s: rank %d %s phase %q = %v, golden %v", run, rank, kind, phase, gv, v)
		}
	}
}
