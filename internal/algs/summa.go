package algs

import (
	"fmt"
	"math"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/matrix"
)

// SUMMA runs the Scalable Universal Matrix Multiplication Algorithm (van de
// Geijn & Watts) on a pr×pc 2D processor grid with C stationary: the
// algorithm iterates over panels of the contracted dimension, broadcasting
// the current A panel within processor rows and the current B panel within
// processor columns, and accumulates local outer products.
//
// Grid selection: opts.Grid.P1×opts.Grid.P3 is used as pr×pc when set
// (P2 must be 1); otherwise the divisor pair minimizing the broadcast
// volume is chosen. The contracted dimension must be divisible by
// lcm(pr, pc) so panels nest in both distributions.
func SUMMA(a, b *matrix.Dense, p int, opts Opts) (*Result, error) {
	d, err := dimsOf(a, b)
	if err != nil {
		return nil, err
	}
	var pr, pc int
	if opts.Grid != (grid.Grid{}) {
		if opts.Grid.P2 != 1 {
			return nil, fmt.Errorf("algs: SUMMA grid must have P2 = 1, got %v: %w", opts.Grid, core.ErrGridMismatch)
		}
		pr, pc = opts.Grid.P1, opts.Grid.P3
	} else {
		pr, pc = summaGrid(d, p)
	}
	if pr*pc != p {
		return nil, fmt.Errorf("algs: SUMMA grid %dx%d has %d processors, want %d: %w", pr, pc, pr*pc, p, core.ErrGridMismatch)
	}
	if pr > d.N1 || pc > d.N3 {
		return nil, fmt.Errorf("algs: SUMMA grid %dx%d exceeds dims %v: %w", pr, pc, d, core.ErrGridMismatch)
	}
	steps := lcm(pr, pc)
	if d.N2%steps != 0 {
		return nil, fmt.Errorf("algs: SUMMA needs n2 divisible by lcm(pr,pc)=%d, got %d: %w", steps, d.N2, core.ErrGridMismatch)
	}
	panelW := d.N2 / steps

	g := grid.Grid{P1: pr, P2: 1, P3: pc}
	w, tr, err := newWorld(p, opts)
	if err != nil {
		return nil, err
	}
	blocks := make([][]float64, p)
	runErr := w.Run(func(r *machine.Rank) {
		i1, _, i3 := g.Coords(r.ID())
		// Local blocks: A is distributed pr×pc (rows × contracted), B is
		// distributed pc... careful: B rows are the contracted dimension,
		// distributed over pr? Standard SUMMA distributes all matrices on
		// the pr×pc grid: A(i1, i3) is the (n1/pr)×(n2/pc) block, B(i1, i3)
		// the (n2/pr)×(n3/pc) block, C(i1, i3) the (n1/pr)×(n3/pc) block.
		aBlk := matrix.BlockOf(a, pr, pc, i1, i3)
		bBlk := matrix.BlockOf(b, pr, pc, i1, i3)
		r.GrowMemory(float64(aBlk.Size() + bBlk.Size()))

		rowFiber := g.FiberInto(r.GetInts(pc), r.ID(), grid.Axis3) // same i1, varying i3
		colFiber := g.FiberInto(r.GetInts(pr), r.ID(), grid.Axis1) // same i3, varying i1
		var rowGrp, colGrp collective.Group
		rowGrp.Init(r, rowFiber, 1, opts.Collective)
		colGrp.Init(r, colFiber, 2, opts.Collective)

		cBlk := matrix.New(aBlk.Rows(), matrix.PartSize(d.N3, pc, i3))
		r.GrowMemory(float64(cBlk.Size() + aBlk.Rows()*panelW + panelW*cBlk.Cols()))

		aColStart := matrix.PartStart(d.N2, pc, i3) // my A block's global col range
		bRowStart := matrix.PartStart(d.N2, pr, i1)

		// The panel matrices are reused across steps; the packed panels
		// travel in pooled buffers recycled after each unpack.
		aP := matrix.New(aBlk.Rows(), panelW)
		bP := matrix.New(panelW, cBlk.Cols())
		for s := 0; s < steps; s++ {
			k0 := s * panelW // global start of the contracted panel
			// A panel: columns [k0, k0+panelW) live on processor column
			// k0*pc/n2; the owner broadcasts its (n1/pr)×panelW slice
			// within the processor row.
			ownerCol := k0 * pc / d.N2
			var aPanel []float64
			if i3 == ownerCol {
				aPanel = aBlk.View(0, k0-aColStart, aBlk.Rows(), panelW).PackInto(r.GetBuffer(aBlk.Rows() * panelW))
			}
			r.SetPhase(PhaseGatherA)
			aPanel = rowGrp.Bcast(aPanel, ownerCol)
			aP.Unpack(aPanel)
			r.PutBuffer(aPanel)

			// B panel: rows [k0, k0+panelW) live on processor row
			// k0*pr/n2; the owner broadcasts its panelW×(n3/pc) slice
			// within the processor column.
			ownerRow := k0 * pr / d.N2
			var bPanel []float64
			if i1 == ownerRow {
				bPanel = bBlk.View(k0-bRowStart, 0, panelW, bBlk.Cols()).PackInto(r.GetBuffer(panelW * bBlk.Cols()))
			}
			r.SetPhase(PhaseGatherB)
			bPanel = colGrp.Bcast(bPanel, ownerRow)
			bP.Unpack(bPanel)
			r.PutBuffer(bPanel)

			r.SetPhase("")
			localMulAdd(r, cBlk, aP, bP, opts.Workers)
		}
		rowGrp.Release()
		colGrp.Release()
		r.PutInts(rowFiber)
		r.PutInts(colFiber)
		blocks[r.ID()] = cBlk.Pack()
	})
	if runErr != nil {
		return nil, runErr
	}

	c := matrix.New(d.N1, d.N3)
	for i1 := 0; i1 < pr; i1++ {
		for i3 := 0; i3 < pc; i3++ {
			r0, h := blockRange(d.N1, pr, i1)
			c0, wd := blockRange(d.N3, pc, i3)
			if h > 0 && wd > 0 {
				c.View(r0, c0, h, wd).Unpack(blocks[g.Rank(i1, 0, i3)])
			}
		}
	}
	return &Result{Name: "SUMMA", C: c, Grid: g, Stats: w.Stats(), Trace: tr}, nil
}

// summaGrid picks the divisor pair pr×pc = p minimizing the per-rank
// broadcast volume (1−1/pc)·n1n2/pr + (1−1/pr)·n2n3/pc.
func summaGrid(d core.Dims, p int) (pr, pc int) {
	best := math.Inf(1)
	pr, pc = p, 1
	for r := 1; r <= p; r++ {
		if p%r != 0 {
			continue
		}
		c := p / r
		fr, fc := float64(r), float64(c)
		cost := (1-1/fc)*d.SizeA()/fr + (1-1/fr)*d.SizeB()/fc
		if cost < best {
			best, pr, pc = cost, r, c
		}
	}
	return pr, pc
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }
