package algs

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/matrix"
)

// Runner is the common signature of every parallel algorithm in this
// package.
type Runner func(a, b *matrix.Dense, p int, opts Opts) (*Result, error)

// Entry describes a registered algorithm for sweep experiments.
type Entry struct {
	// Name is the display name used in reports.
	Name string
	// Run executes the algorithm.
	Run Runner
	// Optimal3D marks the algorithms that should attain Theorem 3's bound
	// with the right grid (the paper's Algorithm 1 family).
	Optimal3D bool
}

// Registry lists all implemented parallel multiplication algorithms in
// report order.
func Registry() []Entry {
	return []Entry{
		{Name: "Alg1", Run: Alg1, Optimal3D: true},
		{Name: "AllToAll3D", Run: AllToAll3D, Optimal3D: true},
		{Name: "CARMA", Run: CARMA},
		{Name: "Alg1LowMem", Run: func(a, b *matrix.Dense, p int, opts Opts) (*Result, error) {
			return Alg1LowMem(a, b, p, 4, opts)
		}, Optimal3D: true},
		{Name: "OneD", Run: OneD},
		{Name: "SUMMA", Run: SUMMA},
		{Name: "Cannon", Run: Cannon},
		{Name: "TwoPointFiveD", Run: TwoPointFiveD},
	}
}

// Names returns every registered algorithm name in report order, for CLI
// usage strings and unknown-name error messages.
func Names() []string {
	entries := Registry()
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name
	}
	return names
}

// Lookup resolves a registered algorithm by name (case-insensitive). An
// unknown name wraps core.ErrUnsupportedAlg.
func Lookup(name string) (Entry, error) {
	for _, e := range Registry() {
		if strings.EqualFold(e.Name, name) {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("algs: no algorithm %q: %w", name, core.ErrUnsupportedAlg)
}
