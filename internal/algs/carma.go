package algs

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/matrix"
)

// CARMA runs the recursive communication-avoiding algorithm of Demmel et
// al. 2013 (§2.4 of the paper) for P = 2^t processors. CARMA recursively
// splits the largest of the three dimensions in half, halving the processor
// group with it (BFS steps). Because every branch at a given depth has the
// same shape, the recursion's leaf bricks tile a regular 2^a×2^b×2^c grid
// with a+b+c = t, so the execution reduces to Algorithm 1's data movement
// on the greedily chosen grid — which is how CARMA achieves the asymptotic
// bounds in all three cases without solving the §5.2 optimization. Its
// constant factor can exceed the optimum when the greedy halving sequence
// diverges from the analytic grid; the ablation benchmarks quantify that
// gap.
func CARMA(a, b *matrix.Dense, p int, opts Opts) (*Result, error) {
	d, err := dimsOf(a, b)
	if err != nil {
		return nil, err
	}
	if p&(p-1) != 0 {
		return nil, fmt.Errorf("algs: CARMA needs a power-of-two processor count, got %d: %w", p, core.ErrBadProcessorCount)
	}
	g, err := CARMAGrid(d, p)
	if err != nil {
		return nil, err
	}
	opts.Grid = g
	res, err := run3D("CARMA", a, b, p, opts, true)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// CARMAGrid returns the processor grid produced by CARMA's recursive
// splitting rule: t = log₂(P) halving steps, each applied to the currently
// largest dimension (ties broken toward the earlier of n1, n2, n3, matching
// a deterministic depth-first implementation).
func CARMAGrid(d core.Dims, p int) (grid.Grid, error) {
	if p <= 0 || p&(p-1) != 0 {
		return grid.Grid{}, fmt.Errorf("algs: CARMAGrid needs a power of two, got %d: %w", p, core.ErrBadProcessorCount)
	}
	dims := [3]float64{float64(d.N1), float64(d.N2), float64(d.N3)}
	splits := [3]int{1, 1, 1}
	for rem := p; rem > 1; rem /= 2 {
		largest := 0
		for i := 1; i < 3; i++ {
			if dims[i] > dims[largest] {
				largest = i
			}
		}
		dims[largest] /= 2
		splits[largest] *= 2
	}
	g := grid.Grid{P1: splits[0], P2: splits[1], P3: splits[2]}
	if g.P1 > d.N1 || g.P2 > d.N2 || g.P3 > d.N3 {
		return grid.Grid{}, fmt.Errorf("algs: CARMA grid %v exceeds dims %v: %w", g, d, core.ErrGridMismatch)
	}
	return g, nil
}
