package algs

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/matrix"
)

// OneD runs the classical block-row algorithm: processor i owns a band of
// rows of A and computes the same band of C after All-Gathering the whole
// of B. Its communication cost is (1 − 1/P)·n2·n3 words per processor,
// which matches Theorem 3's bound exactly when the problem is in Case 1
// with n1 the largest dimension, and is suboptimal otherwise — the
// comparison experiments use it as the 1D baseline.
func OneD(a, b *matrix.Dense, p int, opts Opts) (*Result, error) {
	d, err := dimsOf(a, b)
	if err != nil {
		return nil, err
	}
	if p > d.N1 {
		return nil, fmt.Errorf("algs: OneD needs P ≤ n1, got P=%d n1=%d: %w", p, d.N1, core.ErrBadProcessorCount)
	}

	w, tr, err := newWorld(p, opts)
	if err != nil {
		return nil, err
	}
	bands := make([][]float64, p)
	members := make([]int, p)
	for i := range members {
		members[i] = i
	}
	packedB := b.Pack()
	countsB := shareCounts(len(packedB), p)
	runErr := w.Run(func(r *machine.Rank) {
		me := r.ID()
		// Initial distribution: row band of A (and later C) is local; B is
		// spread evenly across all processors.
		r0, h := blockRange(d.N1, p, me)
		aBand := a.View(r0, 0, h, d.N2).Clone()
		loB, hiB := shareRange(len(packedB), p, me)
		myB := packedB[loB:hiB]
		r.GrowMemory(float64(aBand.Size() + len(myB)))

		r.SetPhase(PhaseGatherB)
		var grp collective.Group
		grp.Init(r, members, 1, opts.Collective)
		fullB := grp.AllGatherVInto(myB, countsB, r.GetBuffer(len(packedB)))
		grp.Release()
		r.SetPhase("")
		r.GrowMemory(float64(len(fullB) - len(myB)))
		bMat := matrix.New(d.N2, d.N3)
		bMat.Unpack(fullB)
		r.PutBuffer(fullB)

		cBand := localMul(r, aBand, bMat, opts.Workers)
		r.GrowMemory(float64(cBand.Size()))
		bands[me] = cBand.Pack()
	})
	if runErr != nil {
		return nil, runErr
	}

	c := matrix.New(d.N1, d.N3)
	for i := 0; i < p; i++ {
		r0, h := blockRange(d.N1, p, i)
		if h > 0 {
			c.View(r0, 0, h, d.N3).Unpack(bands[i])
		}
	}
	return &Result{Name: "OneD", C: c, Grid: grid.Grid{P1: p, P2: 1, P3: 1}, Stats: w.Stats(), Trace: tr}, nil
}
