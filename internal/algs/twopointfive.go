package algs

import (
	"fmt"
	"math"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/matrix"
)

// TwoPointFiveD runs the Solomonik-Demmel 2.5D algorithm for square n×n
// multiplication on a q×q×c grid with P = q²·c: the inputs are replicated
// across the c layers, each layer executes 1/c of the Cannon rounds at its
// own offset, and the partial C contributions are Reduce-Scattered across
// layers. The replication trades c× memory for roughly sqrt(c)× less
// bandwidth — the classical memory/communication trade-off the paper's
// §6.2 situates between the memory-dependent and memory-independent bounds.
//
// c = 1 degenerates to Cannon; c = q = P^{1/3} reaches the 3D regime.
// Requirements: n1 = n2 = n3 = n, P = q²c with c | q and q | n.
func TwoPointFiveD(a, b *matrix.Dense, p int, opts Opts) (*Result, error) {
	d, err := dimsOf(a, b)
	if err != nil {
		return nil, err
	}
	if d.N1 != d.N2 || d.N2 != d.N3 {
		return nil, fmt.Errorf("algs: TwoPointFiveD requires square matrices, got %v: %w", d, core.ErrBadDims)
	}
	n := d.N1
	c := opts.Layers
	if c == 0 {
		c = ChooseLayers(p)
	}
	if c < 1 || p%c != 0 {
		return nil, fmt.Errorf("algs: TwoPointFiveD layers c=%d does not divide P=%d: %w", c, p, core.ErrBadProcessorCount)
	}
	q := int(math.Round(math.Sqrt(float64(p / c))))
	if q*q*c != p {
		return nil, fmt.Errorf("algs: TwoPointFiveD needs P = q²c, got P=%d c=%d: %w", p, c, core.ErrBadProcessorCount)
	}
	if q%c != 0 {
		return nil, fmt.Errorf("algs: TwoPointFiveD needs c | q, got q=%d c=%d: %w", q, c, core.ErrBadProcessorCount)
	}
	if n%q != 0 {
		return nil, fmt.Errorf("algs: TwoPointFiveD needs q | n, got n=%d q=%d: %w", n, q, core.ErrGridMismatch)
	}

	g := grid.Grid{P1: q, P2: c, P3: q} // Axis2 indexes the replication layer
	w, tr, err := newWorld(p, opts)
	if err != nil {
		return nil, err
	}
	chunks := make([][]float64, p)
	const (
		tagAlignA = 200
		tagAlignB = 201
		tagShiftA = 202
		tagShiftB = 203
	)
	rounds := q / c
	runErr := w.Run(func(r *machine.Rank) {
		i, l, j := g.Coords(r.ID())
		blk := n / q

		// Replication: layer 0 owns the canonical block distribution; the
		// layer fiber broadcasts A and B blocks to all layers. Both the
		// root's pack buffer and the non-roots' received payloads are pooled,
		// and double as the align/shift exchange scratch below.
		var packedA, packedB []float64
		if l == 0 {
			packedA = matrix.BlockOf(a, q, q, i, j).PackInto(r.GetBuffer(blk * blk))
			packedB = matrix.BlockOf(b, q, q, i, j).PackInto(r.GetBuffer(blk * blk))
		}
		layerFiber := g.FiberInto(r.GetInts(c), r.ID(), grid.Axis2)
		var layerGrp collective.Group
		layerGrp.Init(r, layerFiber, 3, opts.Collective)
		r.SetPhase("replicate")
		packedA = layerGrp.Bcast(packedA, 0)
		packedB = layerGrp.Bcast(packedB, 0)
		aBlk := matrix.New(blk, blk)
		aBlk.Unpack(packedA)
		bBlk := matrix.New(blk, blk)
		bBlk.Unpack(packedB)
		r.GrowMemory(float64(2 * 2 * blk * blk)) // blocks + shift buffers

		// Alignment: layer l starts its Cannon rounds at contraction
		// offset o = l·q/c, so processor (i, l, j) needs
		// A(i, (i+j+o) mod q) and B((i+j+o) mod q, j).
		o := l * rounds
		r.SetPhase("align")
		if q > 1 && (i+o)%q != 0 {
			dst := g.Rank(i, l, ((j-i-o)%q+q)%q)
			src := g.Rank(i, l, (j+i+o)%q)
			exchangeBlock(r, dst, src, tagAlignA, aBlk, packedA)
		}
		if q > 1 && (j+o)%q != 0 {
			dst := g.Rank(((i-j-o)%q+q)%q, l, j)
			src := g.Rank((i+j+o)%q, l, j)
			exchangeBlock(r, dst, src, tagAlignB, bBlk, packedB)
		}

		cBlk := matrix.New(blk, blk)
		r.GrowMemory(float64(blk * blk))
		r.SetPhase("")
		for s := 0; s < rounds; s++ {
			localMulAdd(r, cBlk, aBlk, bBlk, opts.Workers)
			if s == rounds-1 {
				break
			}
			r.SetPhase("shift")
			left := g.Rank(i, l, (j-1+q)%q)
			right := g.Rank(i, l, (j+1)%q)
			exchangeBlock(r, left, right, tagShiftA, aBlk, packedA)
			up := g.Rank((i-1+q)%q, l, j)
			down := g.Rank((i+1)%q, l, j)
			exchangeBlock(r, up, down, tagShiftB, bBlk, packedB)
			r.SetPhase("")
		}
		r.PutBuffer(packedA)
		r.PutBuffer(packedB)

		// Combine the layers' partial sums: Reduce-Scatter over the layer
		// fiber leaves C block (i, j) spread evenly across layers.
		packedC := cBlk.PackInto(r.GetBuffer(cBlk.Size()))
		counts := shareCountsInto(r.GetInts(c), len(packedC))
		r.SetPhase(PhaseReduceC)
		myC := layerGrp.ReduceScatterV(packedC, counts)
		r.PutBuffer(packedC)
		layerGrp.Release()
		r.PutInts(layerFiber)
		r.PutInts(counts)
		r.SetPhase("")
		chunks[r.ID()] = myC
	})
	if runErr != nil {
		return nil, runErr
	}

	cOut := assembleC(d, g, chunks)
	return &Result{Name: "TwoPointFiveD", C: cOut, Grid: g, Stats: w.Stats(), Trace: tr}, nil
}

// ChooseLayers returns the largest replication factor c such that
// P = q²·c with integers q and c | q — the most communication-efficient
// 2.5D configuration for P when memory permits (c = P^{1/3} when P is a
// perfect cube, recovering the 3D algorithm's volume).
func ChooseLayers(p int) int {
	best := 1
	for c := 1; c*c*c <= p; c++ {
		if p%c != 0 {
			continue
		}
		q := int(math.Round(math.Sqrt(float64(p / c))))
		if q*q*c == p && q%c == 0 && c > best {
			best = c
		}
	}
	return best
}
