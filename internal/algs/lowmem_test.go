package algs

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/matrix"
)

func runLowMem(t *testing.T, n1, n2, n3, p, chunks int, opts Opts) *Result {
	t.Helper()
	run := func(a, b *matrix.Dense, pp int, o Opts) (*Result, error) {
		return Alg1LowMem(a, b, pp, chunks, o)
	}
	return verify(t, "Alg1LowMem", run, n1, n2, n3, p, opts)
}

func TestAlg1LowMemCorrectness(t *testing.T) {
	for _, c := range []struct{ n1, n2, n3, p, chunks int }{
		{16, 16, 16, 8, 1},
		{16, 16, 16, 8, 2},
		{16, 16, 16, 8, 4},
		{16, 16, 16, 8, 100}, // more chunks than the local extent
		{13, 11, 9, 6, 3},    // nothing divides
		{96, 24, 6, 36, 4},
	} {
		runLowMem(t, c.n1, c.n2, c.n3, c.p, c.chunks, bwOpts())
	}
}

func TestAlg1LowMemValidation(t *testing.T) {
	a := matrix.Random(8, 8, 1)
	b := matrix.Random(8, 8, 2)
	if _, err := Alg1LowMem(a, b, 4, 0, bwOpts()); err == nil {
		t.Fatal("expected chunks validation error")
	}
	opts := bwOpts()
	opts.Grid = grid.Grid{P1: 2, P2: 2, P3: 2}
	if _, err := Alg1LowMem(a, b, 9, 2, opts); err == nil {
		t.Fatal("expected grid size error")
	}
}

// TestAlg1LowMemSameBandwidthMoreLatencyLessMemory is the §6.2 adaptation
// claim, measured: chunking leaves the words moved unchanged, multiplies
// the message count, and divides the gathered-panel memory.
func TestAlg1LowMemSameBandwidthMoreLatencyLessMemory(t *testing.T) {
	d := core.NewDims(768, 192, 48)
	p := 36
	g, err := grid.CaseGrid(d, p) // 12x3x1: 2D, panel memory dominates
	if err != nil {
		t.Fatal(err)
	}
	opts := bwOpts()
	opts.Grid = g
	base := runLowMem(t, 768, 192, 48, p, 1, opts)
	chunked := runLowMem(t, 768, 192, 48, p, 8, opts)

	// Bandwidth identical, and exactly the Theorem 3 bound.
	bound := core.LowerBound(d, p)
	if math.Abs(base.CommCost()-bound) > 1e-9 || math.Abs(chunked.CommCost()-bound) > 1e-9 {
		t.Fatalf("bandwidth changed: base %v chunked %v bound %v", base.CommCost(), chunked.CommCost(), bound)
	}
	// Latency: message count grows with the chunk factor.
	if chunked.Stats.TotalMessages <= 4*base.Stats.TotalMessages {
		t.Fatalf("messages: base %d chunked %d — expected ≈8x", base.Stats.TotalMessages, chunked.Stats.TotalMessages)
	}
	// Peak memory shrinks.
	if chunked.Stats.MaxPeakMemory >= base.Stats.MaxPeakMemory {
		t.Fatalf("memory: base %v chunked %v — expected reduction", base.Stats.MaxPeakMemory, chunked.Stats.MaxPeakMemory)
	}
}

// TestAlg1LowMem3DResidualMemory documents the §6.2 caveat: on a 3D grid
// the C contribution buffer (the eq.(3) mk/(p1p3) term) does not shrink
// with chunking — reducing it would necessarily raise bandwidth.
func TestAlg1LowMem3DResidualMemory(t *testing.T) {
	d := core.NewDims(768, 192, 48)
	p := 512
	g, err := grid.CaseGrid(d, p) // 32x8x2
	if err != nil {
		t.Fatal(err)
	}
	opts := bwOpts()
	opts.Grid = g
	res := runLowMem(t, 768, 192, 48, p, 16, opts)
	dBuffer := d.SizeC() / float64(g.P1*g.P3)
	if res.Stats.MaxPeakMemory < dBuffer {
		t.Fatalf("peak %v below the irreducible C buffer %v", res.Stats.MaxPeakMemory, dBuffer)
	}
}
