package algs

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/matrix"
)

// chromeTraceDoc mirrors the Chrome Trace Event Format schema that
// chrome://tracing and Perfetto consume; the test decodes the export
// through it so schema drift fails loudly.
type chromeTraceDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   *float64       `json:"ts"`
		Dur  *float64       `json:"dur"`
		Pid  *int           `json:"pid"`
		Tid  *int           `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestAlg1ChromeTraceSchema runs a small Alg1 instance with tracing on and
// checks the Chrome-trace export's shape: valid JSON in the trace-event
// format, exactly one phase slice per rank for each of Algorithm 1's three
// phases (All-Gather A, All-Gather B, Reduce-Scatter C), non-negative
// durations, and per-rank thread metadata.
func TestAlg1ChromeTraceSchema(t *testing.T) {
	const p = 8
	opts := bwOpts()
	opts.Trace = true
	a := matrix.Random(16, 16, 3)
	b := matrix.Random(16, 16, 4)
	res, err := Alg1(a, b, p, opts)
	if err != nil {
		t.Fatalf("Alg1: %v", err)
	}
	if res.Trace == nil {
		t.Fatal("Opts.Trace set but Result.Trace is nil")
	}

	var buf bytes.Buffer
	if err := res.Trace.WriteChromeTrace(&buf, p); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc chromeTraceDoc
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("export is not trace-event JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}

	threadNames := map[int]bool{}
	phaseSlices := map[string]map[int]int{} // phase name -> tid -> count
	for i, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				threadNames[*e.Tid] = true
			}
		case "X":
			if e.Ts == nil || e.Dur == nil || e.Tid == nil {
				t.Fatalf("event %d: X slice missing ts/dur/tid: %+v", i, e)
			}
			if *e.Dur < 0 {
				t.Errorf("event %d (%s): negative duration %g", i, e.Name, *e.Dur)
			}
			if *e.Tid < 0 || *e.Tid >= p {
				t.Errorf("event %d (%s): tid %d outside [0,%d)", i, e.Name, *e.Tid, p)
			}
			if e.Cat == "phase" {
				if phaseSlices[e.Name] == nil {
					phaseSlices[e.Name] = map[int]int{}
				}
				phaseSlices[e.Name][*e.Tid]++
			}
		default:
			t.Errorf("event %d: unexpected phase type %q", i, e.Ph)
		}
	}
	for r := 0; r < p; r++ {
		if !threadNames[r] {
			t.Errorf("missing thread_name metadata for rank %d", r)
		}
	}
	for _, phase := range []string{PhaseGatherA, PhaseGatherB, PhaseReduceC} {
		for r := 0; r < p; r++ {
			if got := phaseSlices[phase][r]; got != 1 {
				t.Errorf("phase %q rank %d: %d slices, want 1", phase, r, got)
			}
		}
	}
}
