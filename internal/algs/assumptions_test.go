package algs

import (
	"testing"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/matrix"
)

// TestOneCopyAssumptionNecessity demonstrates why Theorem 3 assumes the
// inputs start as ONE copy: if B is fully replicated on every processor
// before the algorithm begins, the block-row algorithm communicates zero
// words — far below the bound — so the bound genuinely depends on the
// starting distribution, not just on the computation.
func TestOneCopyAssumptionNecessity(t *testing.T) {
	n1, n2, n3, p := 16, 8, 8, 4
	d := core.NewDims(n1, n2, n3)
	a := matrix.Random(n1, n2, 1)
	b := matrix.Random(n2, n3, 2)
	want := matrix.Mul(a, b)

	w := machine.NewWorld(p, machine.BandwidthOnly())
	bands := make([][]float64, p)
	err := w.Run(func(r *machine.Rank) {
		// Cheating start: every rank already holds all of B (P copies in
		// the machine) plus its row band of A.
		r0, h := blockRange(n1, p, r.ID())
		aBand := a.View(r0, 0, h, n2).Clone()
		cBand := localMul(r, aBand, b, 0)
		bands[r.ID()] = cBand.Pack()
	})
	if err != nil {
		t.Fatal(err)
	}
	c := matrix.New(n1, n3)
	for i := 0; i < p; i++ {
		r0, h := blockRange(n1, p, i)
		c.View(r0, 0, h, n3).Unpack(bands[i])
	}
	if !c.Equal(want, 1e-9) {
		t.Fatal("replicated-input run produced a wrong product")
	}
	if got := w.Stats().CommCost(); got != 0 {
		t.Fatalf("replicated-input run communicated %v words", got)
	}
	if bound := core.LowerBound(d, p); bound <= 0 {
		t.Fatalf("bound should be positive here, got %v", bound)
	}
	// With a legal one-copy start, the same 1D schedule must pay ≥ bound.
	res, err := OneD(a, b, p, Opts{Config: machine.BandwidthOnly()})
	if err != nil {
		t.Fatal(err)
	}
	if res.CommCost() < core.LowerBound(d, p)-1e-9 {
		t.Fatalf("one-copy run beat the bound: %v < %v", res.CommCost(), core.LowerBound(d, p))
	}
}

// TestLoadBalanceAssumptionNecessity shows the other hypothesis at work:
// an algorithm that assigns ALL computation and data to one processor
// communicates nothing — it is neither computation- nor data-balanced, so
// Theorem 3 is silent about it.
func TestLoadBalanceAssumptionNecessity(t *testing.T) {
	n, p := 8, 4
	a := matrix.Random(n, n, 3)
	b := matrix.Random(n, n, 4)
	w := machine.NewWorld(p, machine.BandwidthOnly())
	var c *matrix.Dense
	err := w.Run(func(r *machine.Rank) {
		if r.ID() == 0 {
			c = localMul(r, a, b, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().CommCost(); got != 0 {
		t.Fatalf("degenerate run communicated %v words", got)
	}
	if !c.Equal(matrix.Mul(a, b), 1e-9) {
		t.Fatal("degenerate run wrong")
	}
	if core.LowerBound(core.Square(n), p) <= 0 {
		t.Fatal("bound should be positive for balanced algorithms")
	}
}

// TestCollectiveChoiceDoesNotAffectVolume pins a §5.1 assumption: the
// collective implementation family changes latency, never the bandwidth
// that Theorem 3 constrains.
func TestCollectiveChoiceDoesNotAffectVolume(t *testing.T) {
	a := matrix.Random(32, 32, 5)
	b := matrix.Random(32, 32, 6)
	var vols []float64
	for _, alg := range []collective.Algorithm{collective.Ring, collective.Recursive, collective.Auto} {
		res, err := Alg1(a, b, 8, Opts{Config: machine.BandwidthOnly(), Collective: alg})
		if err != nil {
			t.Fatal(err)
		}
		vols = append(vols, res.CommCost())
	}
	if vols[0] != vols[1] || vols[1] != vols[2] {
		t.Fatalf("collective family changed the volume: %v", vols)
	}
}
